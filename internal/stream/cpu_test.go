package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
)

// heavyCatalog is a CPU-bound workload: 40ms per unit at reference speed,
// so a 0.6-speed node saturates its CPU at 15 units/sec.
func heavyCatalog() services.Catalog {
	return services.Catalog{
		"crunch": spec.ServiceDef{Name: "crunch", ProcPerUnit: 40 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
	}
}

// cpuSystem builds a deployment where bandwidth is plentiful but CPU is
// the scarce resource.
func cpuSystem(seed int64) *deploy.System {
	return deploy.NewSystem(deploy.SystemOptions{
		Nodes:            10,
		Seed:             seed,
		Catalog:          heavyCatalog(),
		ServiceNames:     []string{"crunch"},
		ServicesPerNode:  1,
		HeterogeneousCPU: true,
		ProcJitter:       0.1,
	})
}

// runCPU submits one heavy request with the given composer and returns the
// total laxity+queue drops across the system plus the delivered fraction.
func runCPU(t *testing.T, composerName string, seed int64) (drops int64, delivered float64) {
	t.Helper()
	s := cpuSystem(seed)
	// Warm the CPU monitors: submit a small pilot stream so busy
	// fractions are measured before the real composition.
	pilot := spec.Request{
		ID:         "pilot",
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: []string{"crunch"}, Rate: 4}},
	}
	composer, err := core.ByName(composerName)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	s.Engines[0].Submit(pilot, composer, 10*time.Second, func(*core.ExecutionGraph, error) { done = true })
	for i := 0; i < 100 && !done; i++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)

	req := spec.Request{
		ID:         "heavy",
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: []string{"crunch"}, Rate: 20}},
	}
	done = false
	var submitErr error
	s.Engines[1].Submit(req, composer, 10*time.Second, func(_ *core.ExecutionGraph, err error) {
		done = true
		submitErr = err
	})
	for i := 0; i < 100 && !done; i++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if submitErr != nil {
		t.Skipf("%s rejected the heavy request on seed %d: %v", composerName, seed, submitErr)
	}
	s.Sim.RunUntil(s.Sim.Now() + 20*time.Second)
	for _, e := range s.Engines {
		drops += e.DropsLaxity + e.DropsQueueFull
	}
	sink := s.Engines[1].Sink("heavy", 0)
	emitted := s.Engines[1].EmittedUnits("heavy", 0)
	if emitted > 0 {
		delivered = float64(sink.Received) / float64(emitted)
	}
	return drops, delivered
}

// TestCPUAwareCompositionReducesCPUDrops compares RASC with and without
// the multi-resource extension on a CPU-bound workload: the CPU-aware
// composer must lose no more units to deadline/queue drops than the
// bandwidth-only composer, and should deliver at least as well on
// average. (The paper names multiple resource constraints as future
// work; this test pins the implementation's benefit.)
func TestCPUAwareCompositionHelps(t *testing.T) {
	var plainDrops, cpuDrops int64
	var plainDelivered, cpuDelivered float64
	runs := 0
	for seed := int64(1); seed <= 4; seed++ {
		pd, pf := runCPU(t, "mincost", seed)
		cd, cf := runCPU(t, "mincost-cpu", seed)
		plainDrops += pd
		cpuDrops += cd
		plainDelivered += pf
		cpuDelivered += cf
		runs++
	}
	if runs == 0 {
		t.Skip("no comparable runs")
	}
	if cpuDrops > plainDrops {
		t.Fatalf("CPU-aware composition dropped more: %d vs %d", cpuDrops, plainDrops)
	}
	if cpuDelivered < plainDelivered-0.05*float64(runs) {
		t.Fatalf("CPU-aware delivered fraction regressed: %.3f vs %.3f (sum over %d runs)",
			cpuDelivered, plainDelivered, runs)
	}
}
