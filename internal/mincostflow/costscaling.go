package mincostflow

// Cost-scaling minimum-cost flow (Goldberg's ε-relaxation method, the
// algorithm the RASC paper cites for solving its composition reduction at
// scale). The successive-shortest-path solver in solver.go is the default
// for composition-sized graphs; this implementation exists as an
// independently-derived alternative — the two are cross-checked on random
// instances in the tests — and wins on dense graphs with large flows.

import "fmt"

// carc is one arc of the cost-scaling working copy.
type carc struct {
	to, rev   int
	cap, flow int64
	cost      int64 // scaled cost
}

// arcMapping ties a working-copy arc back to its arc in the input graph.
type arcMapping struct{ u, i, cu, ci int }

// MinCostFlowScaling routes up to want units from s to t at minimum cost
// using cost scaling. It is semantically identical to MinCostFlow:
// it returns the achieved flow (≤ want) and its total cost, leaving
// per-arc flows readable through Flow. Costs must be non-negative. It
// draws a pooled Solver for its scratch.
func (g *Graph) MinCostFlowScaling(s, t int, want int64) (Result, error) {
	sv := AcquireSolver()
	defer sv.Release()
	return sv.MinCostFlowScaling(g, s, t, want)
}

// growScaling sizes the cost-scaling scratch for n nodes, recycling the
// working-copy adjacency arena like Graph.Reset does.
func (s *Solver) growScaling(n int) {
	if cap(s.excess) < n {
		s.excess = make([]int64, n)
		s.inQueue = make([]bool, n)
	}
	s.excess = s.excess[:n]
	s.inQueue = s.inQueue[:n]
	for i := 0; i < n; i++ {
		s.excess[i] = 0
		s.inQueue[i] = false
	}
	s.active = s.active[:0]
	full := s.cadj[:cap(s.cadj)]
	for i := range full {
		full[i] = full[i][:0]
	}
	if cap(s.cadj) < n {
		grown := make([][]carc, n)
		copy(grown, full)
		s.cadj = grown
	} else {
		s.cadj = s.cadj[:n]
	}
	s.maps = s.maps[:0]
}

// MinCostFlowScaling is the cost-scaling solve using this solver's
// scratch; semantics match Graph.MinCostFlowScaling.
func (s *Solver) MinCostFlowScaling(g *Graph, src, dst int, want int64) (Result, error) {
	defer func() { s.warm = true }()
	n := len(g.adj)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Result{}, errBadEndpoints(src, dst)
	}
	if src == dst || want <= 0 {
		return Result{}, nil
	}
	for u := range g.adj {
		for i := range g.adj[u] {
			if g.adj[u][i].cap > 0 && g.adj[u][i].cost < 0 {
				return Result{}, fmt.Errorf("mincostflow: cost scaling requires non-negative costs")
			}
		}
	}

	// Phase 1: find the throughput with plain max-flow (the scaling
	// phase needs an exact excess to cancel). Saturate up to want.
	maxed := g.maxFlowUpTo(src, dst, want)
	if maxed == 0 {
		return Result{}, nil
	}

	// Phase 2: cost scaling on the circulation. Add an artificial arc
	// t→s with capacity maxed and cost 0 carrying the flow back, then
	// reduce ε until the circulation is optimal.
	//
	// Costs are scaled by (n+1) so that ε < 1/(n+1) implies optimality
	// with integer costs.
	alpha := int64(n + 1)
	s.grow(n)
	s.growScaling(n)
	adj := s.cadj
	addArc := func(u, v int, capacity, cost int64) {
		adj[u] = append(adj[u], carc{to: v, rev: len(adj[v]), cap: capacity, cost: cost * alpha})
		adj[v] = append(adj[v], carc{to: u, rev: len(adj[u]) - 1, cap: 0, cost: -cost * alpha})
	}
	// Copy the residual graph including current flow as residual caps.
	maxCost := int64(0)
	for u := range g.adj {
		for i := range g.adj[u] {
			a := g.adj[u][i]
			if a.cap == 0 {
				continue // reverse arc: handled with its forward twin
			}
			addArc(u, a.to, a.cap, a.cost)
			cu, ci := u, len(adj[u])-1
			// Mirror the existing flow into the copy.
			adj[cu][ci].flow = a.flow
			adj[a.to][adj[cu][ci].rev].flow = -a.flow
			s.maps = append(s.maps, arcMapping{u: u, i: i, cu: cu, ci: ci})
			if a.cost > maxCost {
				maxCost = a.cost
			}
		}
	}
	// The artificial return arc must carry a reward larger than any
	// possible path cost, otherwise the optimal circulation is simply
	// zero flow. -(n·maxCost+1) in unscaled units dominates every path.
	returnReward := maxCost*int64(n) + 1
	addArc(dst, src, maxed, -returnReward)
	adj[dst][len(adj[dst])-1].flow = maxed
	adj[src][adj[dst][len(adj[dst])-1].rev].flow = -maxed

	pot := s.pot
	for i := range pot {
		pot[i] = 0
	}
	excess := s.excess
	eps := returnReward * alpha
	if eps == 0 {
		eps = 1
	}
	redCost := func(u int, a *carc) int64 { return a.cost + pot[u] - pot[a.to] }

	phases := 0
	for ; eps >= 1; eps /= 2 {
		phases++
		// Saturate every negative-reduced-cost arc.
		for u := range adj {
			for i := range adj[u] {
				a := &adj[u][i]
				if a.cap-a.flow > 0 && redCost(u, a) < 0 {
					delta := a.cap - a.flow
					a.flow += delta
					adj[a.to][a.rev].flow -= delta
					excess[u] -= delta
					excess[a.to] += delta
				}
			}
		}
		// Push/relabel until no active nodes remain.
		active := s.active[:0]
		inQueue := s.inQueue
		for i := range inQueue {
			inQueue[i] = false
		}
		for v := range excess {
			if excess[v] > 0 {
				active = append(active, v)
				inQueue[v] = true
			}
		}
		for len(active) > 0 {
			u := active[len(active)-1]
			active = active[:len(active)-1]
			inQueue[u] = false
			for excess[u] > 0 {
				pushed := false
				for i := range adj[u] {
					a := &adj[u][i]
					if a.cap-a.flow > 0 && redCost(u, a) < 0 {
						delta := excess[u]
						if r := a.cap - a.flow; r < delta {
							delta = r
						}
						a.flow += delta
						adj[a.to][a.rev].flow -= delta
						excess[u] -= delta
						excess[a.to] += delta
						if excess[a.to] > 0 && !inQueue[a.to] && a.to != u {
							active = append(active, a.to)
							inQueue[a.to] = true
						}
						pushed = true
						if excess[u] == 0 {
							break
						}
					}
				}
				if !pushed {
					// Relabel: lower the potential just enough to
					// create an admissible arc.
					best := int64(1) << 62
					for i := range adj[u] {
						a := &adj[u][i]
						if a.cap-a.flow > 0 {
							if rc := redCost(u, a); rc < best {
								best = rc
							}
						}
					}
					if best == int64(1)<<62 {
						return Result{}, fmt.Errorf("mincostflow: scaling relabel stuck (disconnected excess)")
					}
					pot[u] -= best + eps/2 + 1
				}
			}
		}
		s.active = active // keep the grown backing array
	}

	// Write the optimized flows back and total the cost.
	var res Result
	res.Flow = maxed
	res.Iterations = phases
	for _, m := range s.maps {
		f := adj[m.cu][m.ci].flow
		a := &g.adj[m.u][m.i]
		rev := &g.adj[a.to][a.rev]
		a.flow = f
		rev.flow = -f
		if f > 0 {
			res.Cost += f * a.cost
		}
	}
	return res, nil
}

// maxFlowUpTo augments along BFS shortest paths (Edmonds-Karp) until the
// flow reaches want or no augmenting path remains, returning the amount.
func (g *Graph) maxFlowUpTo(s, t int, want int64) int64 {
	n := len(g.adj)
	var total int64
	for total < want {
		prevNode := make([]int, n)
		prevArc := make([]int, n)
		for i := range prevNode {
			prevNode[i] = -1
		}
		prevNode[s] = s
		queue := []int{s}
		for len(queue) > 0 && prevNode[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for i := range g.adj[u] {
				a := g.adj[u][i]
				if a.cap-a.flow > 0 && prevNode[a.to] == -1 {
					prevNode[a.to] = u
					prevArc[a.to] = i
					queue = append(queue, a.to)
				}
			}
		}
		if prevNode[t] == -1 {
			break
		}
		push := want - total
		for v := t; v != s; v = prevNode[v] {
			a := g.adj[prevNode[v]][prevArc[v]]
			if r := a.cap - a.flow; r < push {
				push = r
			}
		}
		for v := t; v != s; v = prevNode[v] {
			a := &g.adj[prevNode[v]][prevArc[v]]
			a.flow += push
			g.adj[v][a.rev].flow -= push
		}
		total += push
	}
	return total
}
