package workload

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names()}, 9)
	want := g.Batch(20)
	var buf bytes.Buffer
	if err := Save(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("round trip changed the workload")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":     "{{{{",
		"bad request":  `[{"id":"x","unitBytes":0,"substreams":[{"services":["a"],"rate":1}]}]`,
		"duplicate id": `[{"id":"x","unitBytes":100,"substreams":[{"services":["a"],"rate":1}]},{"id":"x","unitBytes":100,"substreams":[{"services":["a"],"rate":1}]}]`,
	}
	for name, body := range cases {
		if _, err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := NewGenerator(Config{Services: services.Standard().Names()}, 10)
	want := g.Batch(5)
	path := filepath.Join(t.TempDir(), "workload.json")
	if err := SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[3].ID != want[3].ID {
		t.Fatalf("file round trip: %+v", got)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadPreservesExtendedFields(t *testing.T) {
	reqs := []spec.Request{{
		ID:           "media",
		UnitBytes:    2500,
		PlayoutDelay: 500_000_000,
		Substreams: []spec.Substream{
			{Services: []string{"transcode"}, Rate: 10, Burstiness: 0.4},
		},
	}}
	var buf bytes.Buffer
	if err := Save(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].PlayoutDelay != reqs[0].PlayoutDelay || got[0].Substreams[0].Burstiness != 0.4 {
		t.Fatalf("extended fields lost: %+v", got[0])
	}
}
