package transport

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkTransportSend compares the synchronous TCP path (one write
// syscall per message, serialized under the pool mutex) with the resilient
// pipeline (async enqueue, coalesced batch frames) on loopback TCP. The
// batched path should clear >= 2x the sync throughput.
func BenchmarkTransportSend(b *testing.B) {
	msg := Message{Type: "bench", Payload: make([]byte, 128)}

	b.Run("sync", func(b *testing.B) {
		recv, sendEP, count := benchPair(b, false)
		dst := recv
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sendEP.Send(dst, msg); err != nil {
				b.Fatal(err)
			}
		}
		benchWait(b, count, int64(b.N))
	})

	b.Run("resilient", func(b *testing.B) {
		recv, sendEP, count := benchPair(b, true)
		dst := recv
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// ErrBacklog is flow control, not failure: yield and re-offer.
			for sendEP.Send(dst, msg) != nil {
				runtime.Gosched()
			}
		}
		benchWait(b, count, int64(b.N))
	})
}

// benchPair builds a loopback receiver (always Resilient-wrapped, so batch
// frames unpack either way) and a sender, plain TCP or Resilient-wrapped.
func benchPair(b *testing.B, resilient bool) (dst Addr, sender Endpoint, count *atomic.Int64) {
	b.Helper()
	recvTCP, err := NewTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	recv := NewResilient(recvTCP, ResilientConfig{})
	count = new(atomic.Int64)
	recv.SetHandler(func(from Addr, msg Message) { count.Add(1) })
	b.Cleanup(func() { recv.Close() })

	sendTCP, err := NewTCP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	if !resilient {
		b.Cleanup(func() { sendTCP.Close() })
		return recv.Addr(), sendTCP, count
	}
	r := NewResilient(sendTCP, ResilientConfig{QueueLen: 16384, MaxBatch: 256, MaxBatchBytes: 1 << 20})
	b.Cleanup(func() { r.Close() })
	return recv.Addr(), r, count
}

// benchWait blocks until the receiver has seen want messages, so the timed
// region covers delivery, not just enqueueing.
func benchWait(b *testing.B, count *atomic.Int64, want int64) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for count.Load() < want {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d/%d", count.Load(), want)
		}
		runtime.Gosched()
	}
}
