package stream

import (
	"time"

	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
)

// pendingSubmit is a submission parked by the admission gate (queued or
// preempted), replayed when the gate promotes the tenant.
type pendingSubmit struct {
	req      spec.Request
	composer core.Composer
	timeout  time.Duration
}

// SetTenantGate installs the cluster's admission gate in front of this
// engine's Submit path. Every origin-side submission then passes the
// gate: rejected requests fail fast with a typed error before any RPC,
// queued ones are replayed automatically on promotion, and admitted ones
// are capped to their fair-share rate.
func (e *Engine) SetTenantGate(g *tenant.Gate) {
	e.tenantGate = g
	if e.pendingAdmission == nil {
		e.pendingAdmission = make(map[string]pendingSubmit)
	}
}

// TenantGate returns the installed admission gate (nil without tenancy).
func (e *Engine) TenantGate() *tenant.Gate { return e.tenantGate }

// admit runs the submission through the admission gate. It returns the
// (possibly rate-capped) request to compose and a wrapped callback; done
// is true when the gate disposed of the submission (queued or rejected)
// and the pipeline must stop.
func (e *Engine) admit(req spec.Request, composer core.Composer, timeout time.Duration,
	cb func(*core.ExecutionGraph, error)) (spec.Request, func(*core.ExecutionGraph, error), bool) {

	if e.tenantGate == nil {
		return req, cb, false
	}
	dec := e.tenantGate.Admit(req.ID, req.Priority, req.BitsPerSecond(req.TotalRate()), e)
	switch dec.State {
	case tenant.StateQueued:
		// Parked: remember the submission so a later promotion replays
		// it. The caller still sees the typed queued error — the stream
		// is not running yet.
		e.pendingAdmission[req.ID] = pendingSubmit{req: req, composer: composer, timeout: timeout}
		cb(nil, dec.Err)
		return req, nil, true
	case tenant.StateRejected:
		cb(nil, dec.Err)
		return req, nil, true
	}
	capped := tenant.CapRequest(req, dec.CapBps)
	if dec.New {
		// A brand-new admission holds its slot only if the composition
		// pipeline succeeds; a recompose of an existing tenant keeps its
		// admission through a failed attempt (the controller retries).
		inner := cb
		app := req.ID
		cb = func(g *core.ExecutionGraph, err error) {
			if err != nil {
				e.tenantGate.Release(app)
			}
			inner(g, err)
		}
	}
	return capped, cb, false
}

// chargePlacements reports the application's placed per-host rate to the
// admission gate's capacity ledger, so feasibility probes track the hosts
// the tenant actually landed on. No-op without tenancy or a per-host
// ledger.
func (e *Engine) chargePlacements(g *core.ExecutionGraph) {
	if e.tenantGate == nil || !e.tenantGate.PerHostLedger() || g == nil {
		return
	}
	perHost := make(map[string]float64, len(g.Placements))
	sizes := make(map[int][]int, len(g.Request.Substreams))
	for _, p := range g.Placements {
		s, ok := sizes[p.Substream]
		if !ok {
			s = e.stageUnitBytes(g.Request, p.Substream)
			sizes[p.Substream] = s
		}
		perHost[p.Host.ID.String()] += p.Rate * float64(s[p.Stage]) * 8
	}
	e.tenantGate.SetPlacements(g.Request.ID, perHost)
}

// The engine is the tenant.Owner of every application it originates. The
// gate calls from arbitrary goroutines and outside its own lock; each
// hook hops onto the engine's event loop before touching engine state.

// TenantCapChanged converges the application onto its new fair-share cap
// by publishing the fair_share_changed control event; the controller's
// recompose resubmits the desired request and the admission hook clamps
// it to the new cap.
func (e *Engine) TenantCapChanged(app string, capBps float64) {
	e.clk.After(0, func() {
		if _, ok := e.origins[app]; !ok {
			return
		}
		e.ensureController().Publish(control.Event{Kind: control.FairShareChanged, App: app})
	})
}

// TenantPreempted tears the application down; the gate holds it in the
// admission queue and the engine replays the submission on promotion.
func (e *Engine) TenantPreempted(app string) {
	e.clk.After(0, func() {
		st, ok := e.origins[app]
		if !ok {
			return
		}
		cfg := e.adaptConfig()
		// Remember the original (uncapped) request for the replay; only
		// while the gate still tracks the tenant — a preemption into a
		// full queue drops it entirely.
		if e.tenantGate != nil && e.tenantGate.Has(app) {
			e.pendingAdmission[app] = pendingSubmit{req: st.desired, composer: cfg.Composer, timeout: cfg.Timeout}
		}
		e.teardown(st.graph, cfg.Timeout)
		// The application delivers nothing while parked: charge the whole
		// parked window to the availability meter.
		e.availDown[app] = e.clk.Now()
	})
}

// TenantPromoted replays the parked submission of a tenant the gate just
// admitted from the queue.
func (e *Engine) TenantPromoted(app string) {
	e.clk.After(0, func() {
		p, ok := e.pendingAdmission[app]
		if !ok {
			return
		}
		delete(e.pendingAdmission, app)
		e.Submit(p.req, p.composer, p.timeout, func(_ *core.ExecutionGraph, err error) {
			if err != nil && e.tenantGate != nil {
				// The promotion did not stick (composition failed): give
				// the slot back so the gate can promote someone else.
				e.tenantGate.Release(app)
				delete(e.availDown, app)
			}
		})
	})
}
