package transport

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	var seen []BreakerState
	b := newBreaker(BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second},
		func(_, to BreakerState) { seen = append(seen, to) })
	now := time.Now()
	for i := 0; i < 2; i++ {
		b.failure(now)
		if b.state != BreakerClosed {
			t.Fatalf("opened after %d failures", i+1)
		}
	}
	b.failure(now)
	if b.state != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.state)
	}
	if len(seen) != 1 || seen[0] != BreakerOpen {
		t.Fatalf("transitions = %v", seen)
	}
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker allowed a send inside the window")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second}, nil)
	now := time.Now()
	b.failure(now)
	after := now.Add(2 * time.Second)
	if !b.allow(after) {
		t.Fatal("expired open window refused the probe")
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.state)
	}
	if b.allow(after) {
		t.Fatal("second send admitted while probe in flight")
	}
	b.success()
	if b.state != BreakerClosed {
		t.Fatalf("state = %v after probe success, want closed", b.state)
	}
	if !b.allow(after) {
		t.Fatal("closed breaker refused a send")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Second}, nil)
	now := time.Now()
	b.failure(now)
	probeAt := now.Add(2 * time.Second)
	if !b.allow(probeAt) {
		t.Fatal("probe refused")
	}
	b.failure(probeAt)
	if b.state != BreakerOpen {
		t.Fatalf("state = %v after probe failure, want open", b.state)
	}
	// The window restarts from the failed probe.
	if b.allow(probeAt.Add(500 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted a send inside the fresh window")
	}
	if !b.allow(probeAt.Add(2 * time.Second)) {
		t.Fatal("re-opened breaker never re-probed")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := newBreaker(BreakerConfig{FailureThreshold: 2, OpenTimeout: time.Second}, nil)
	now := time.Now()
	b.failure(now)
	b.success()
	b.failure(now)
	if b.state != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}
