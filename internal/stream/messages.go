// Package stream is the data-plane runtime of RASC: component instances
// hosted on overlay nodes receive data units, queue them under the laxity
// scheduler, simulate the service's processing cost, and forward the
// results downstream — splitting the stream across multiple instances of
// the same service according to the composed rates. Sources emit units at
// the requested rate; sinks measure delivery (delay, jitter, ordering,
// timeliness), producing the metrics of §4.2.
package stream

import (
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
)

// Application names on the overlay.
const (
	appData = "stream-data"
	// appDataBatch carries binary-coded unit batches (see dataplane.go).
	// Engines register both handlers unconditionally so nodes with
	// different DataPlane configs interoperate in one deployment.
	appDataBatch   = "stream-data-batch"
	appInstantiate = "stream-instantiate"
	appTeardown    = "stream-teardown"
	appStats       = "stats"
)

// outSpec tells a component (or source) where to forward output and at
// what rate share.
type outSpec struct {
	To      overlay.NodeInfo `json:"to"`
	ToStage int              `json:"toStage"`
	Rate    float64          `json:"rate"`
}

// instantiateMsg asks a host to create one component instance.
type instantiateMsg struct {
	Req       string        `json:"req"`
	Substream int           `json:"sub"`
	Stage     int           `json:"stage"`
	Service   string        `json:"service"`
	Rate      float64       `json:"rate"`      // assigned input rate, units/sec
	UnitBytes int           `json:"unitBytes"` // input unit size at this stage
	ProcHint  time.Duration `json:"procHint"`  // reference per-unit cost
	RateRatio float64       `json:"rateRatio"`
	BytesOut  int           `json:"bytesOut"` // output unit size
	Outs      []outSpec     `json:"outs"`
}

// teardownMsg removes all components of a request from a host.
type teardownMsg struct {
	Req string `json:"req"`
}

// dataMsg is one data unit on the wire. Its simulated size is carried via
// transport padding; Size records it for the receiver's accounting.
type dataMsg struct {
	Req       string        `json:"req"`
	Substream int           `json:"sub"`
	Stage     int           `json:"stage"` // stage this unit is addressed to; len(chain) = sink
	Seq       int64         `json:"seq"`
	Created   time.Duration `json:"created"` // source emission time (virtual clock)
	Size      int           `json:"size"`
}

// componentKey identifies a component instance within an engine.
func componentKey(req string, substream, stage int) string {
	return req + "/" + itoa(substream) + "/" + itoa(stage)
}

// itoa avoids pulling strconv into the hot path signature; small ints only.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// graphOuts extracts, for every placement in an execution graph, the
// downstream targets with their rate shares; and the source's stage-0
// targets per substream.
func graphOuts(g *core.ExecutionGraph) (byPlacement map[string][]outSpec, sourceOuts map[int][]outSpec) {
	byPlacement = make(map[string][]outSpec)
	sourceOuts = make(map[int][]outSpec)
	for _, e := range g.Edges {
		o := outSpec{To: e.To, ToStage: e.ToStage, Rate: e.Rate}
		if e.FromStage == -1 {
			sourceOuts[e.Substream] = append(sourceOuts[e.Substream], o)
			continue
		}
		key := componentKey(g.Request.ID, e.Substream, e.FromStage) + "@" + e.From.ID.String()
		byPlacement[key] = append(byPlacement[key], o)
	}
	return byPlacement, sourceOuts
}
