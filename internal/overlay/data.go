package overlay

import "rasc.dev/rasc/internal/transport"

// msgTypeData is the transport message type of the binary data envelope.
// The JSON envelope (msgType) carries every control message; the data
// envelope exists solely for the stream data plane's batched units, where
// per-message JSON marshal cost dominates. Its layout is:
//
//	appLen:u8 app srcAddrLen:u8 srcAddr srcID[IDBytes] body
const msgTypeData = "overlay-data"

// dataEnvelopeOverhead is the encoded envelope size minus app, source
// address and body.
const dataEnvelopeOverhead = 2 + IDBytes

// DirectDataPadded is DirectPadded on the binary data envelope: datagram
// (loss-tolerant) delivery, pad extra bytes charged on the wire, and the
// returned error reporting local send failures. The payload is built with
// one exact-size allocation — the transport retains it until delivery, so
// the buffer cannot be pooled here. App and address names longer than 255
// bytes fall back to the JSON envelope.
func (n *Node) DirectDataPadded(to transport.Addr, app string, body []byte, pad int) error {
	if len(app) > 255 || len(n.info.Addr) > 255 {
		return n.DirectPadded(to, app, body, pad)
	}
	buf := make([]byte, 0, dataEnvelopeOverhead+len(app)+len(n.info.Addr)+len(body))
	buf = append(buf, byte(len(app)))
	buf = append(buf, app...)
	buf = append(buf, byte(len(n.info.Addr)))
	buf = append(buf, n.info.Addr...)
	buf = append(buf, n.info.ID[:]...)
	buf = append(buf, body...)
	return n.ep.Send(to, transport.Message{Type: msgTypeData, Payload: buf, Pad: pad, Datagram: true})
}

// parseDataEnvelope decodes a binary data envelope.
func parseDataEnvelope(b []byte) (app string, src NodeInfo, body []byte, ok bool) {
	if len(b) < 1 {
		return "", NodeInfo{}, nil, false
	}
	al := int(b[0])
	b = b[1:]
	if len(b) < al+1 {
		return "", NodeInfo{}, nil, false
	}
	app = string(b[:al])
	sl := int(b[al])
	b = b[al+1:]
	if len(b) < sl+IDBytes {
		return "", NodeInfo{}, nil, false
	}
	src.Addr = transport.Addr(b[:sl])
	copy(src.ID[:], b[sl:])
	return app, src, b[sl+IDBytes:], true
}

// onDataMessage delivers a binary data envelope to its app handler. Like
// the JSON direct path it learns the sender, so data traffic keeps
// refreshing overlay state.
func (n *Node) onDataMessage(msg transport.Message) {
	app, src, body, ok := parseDataEnvelope(msg.Payload)
	if !ok {
		return // malformed: drop
	}
	n.learn(src)
	if h, ok := n.apps[app]; ok {
		h(n.info.ID, src, body)
	}
}

// onDataDropped routes a dropped binary data envelope to the app's drop
// observer, mirroring the JSON direct path in onDropped.
func (n *Node) onDataDropped(msg transport.Message) {
	app, src, body, ok := parseDataEnvelope(msg.Payload)
	if !ok {
		return
	}
	if h, ok := n.dropObs[app]; ok {
		h(n.info.ID, src, body)
	}
}
