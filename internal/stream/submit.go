package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/metrics"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// Submit runs the full RASC composition pipeline for a request originated
// at this engine (the steps of §3.1): discover the hosts offering each
// requested service through the DHT, fetch their monitoring reports,
// compose the execution graph with the given composer, instantiate the
// components on their hosts, and start the sources and sinks. The callback
// runs exactly once with the composed graph or an error.
//
// The engine must have been built with a discovery directory.
func (e *Engine) Submit(req spec.Request, composer core.Composer, timeout time.Duration, cb func(*core.ExecutionGraph, error)) {
	if err := req.Validate(); err != nil {
		cb(nil, err)
		return
	}
	if e.Dir == nil {
		cb(nil, fmt.Errorf("stream: engine has no discovery directory"))
		return
	}
	// The admission gate decides before any network work: a rejected or
	// queued request costs no RPC and leaves no state anywhere, and an
	// admitted one is capped to its fair-share rate. desired keeps the
	// original rates, so upgrades know what the application wants.
	desired := req
	req, cb, parked := e.admit(req, composer, timeout, cb)
	if parked {
		return
	}
	services := req.Services()
	e.Dir.LookupMany(services, timeout, func(hosts map[string][]overlay.NodeInfo, err error) {
		if err != nil {
			cb(nil, fmt.Errorf("stream: discovery: %w", err))
			return
		}
		e.gatherStats(req, desired, composer, timeout, hosts, cb)
	})
}

// gatherStats fetches monitoring reports from every distinct candidate
// host, then proceeds to composition.
func (e *Engine) gatherStats(req, desired spec.Request, composer core.Composer, timeout time.Duration,
	hosts map[string][]overlay.NodeInfo, cb func(*core.ExecutionGraph, error)) {

	e.collectStats(hosts, timeout, func(reports map[overlay.ID]monitor.Report) {
		e.compose(req, desired, composer, timeout, hosts, reports, cb)
	})
}

// collectStats fetches monitoring reports for every distinct host in the
// candidate map — from the local monitor, the gossip-fresh stats provider,
// or a stats RPC, in that order — and calls finish with what it got.
func (e *Engine) collectStats(hosts map[string][]overlay.NodeInfo, timeout time.Duration,
	finishWith func(map[overlay.ID]monitor.Report)) {

	// Deterministic ordering: distinct hosts sorted by ID.
	byID := make(map[overlay.ID]overlay.NodeInfo)
	for _, list := range hosts {
		for _, h := range list {
			byID[h.ID] = h
		}
	}
	var unique []overlay.NodeInfo
	for _, h := range byID {
		unique = append(unique, h)
	}
	sort.Slice(unique, func(i, j int) bool { return unique[i].ID.Cmp(unique[j].ID) < 0 })

	reports := make(map[overlay.ID]monitor.Report)
	remaining := len(unique)
	finish := func() {
		finishWith(reports)
	}
	if remaining == 0 {
		finish()
		return
	}
	for _, h := range unique {
		h := h
		if h.ID == e.node.ID() {
			// Local host: read the monitor directly.
			reports[h.ID] = e.Monitor.Report(e.clk.Now())
			remaining--
			if remaining == 0 {
				finish()
			}
			continue
		}
		if e.statsProvider != nil {
			if rep, ok := e.statsProvider(h.ID); ok {
				// Gossip-fresh digest: no fetch round trip.
				reports[h.ID] = rep
				remaining--
				if remaining == 0 {
					finish()
				}
				continue
			}
		}
		e.node.Request(h.Addr, appStats, nil, timeout, func(body []byte, err error) {
			if err == nil {
				var rep monitor.Report
				if json.Unmarshal(body, &rep) == nil {
					reports[h.ID] = rep
				}
			} else if errors.Is(err, overlay.ErrTimeout) {
				// A silent host is treated as failed: prune it from
				// the local routing state so subsequent lookups and
				// routes steer around it.
				e.node.RemovePeer(h.ID)
			}
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}

// buildInput assembles the composer input from discovery and monitoring
// results: the origin is both source and destination, and hosts whose
// stats fetch failed are excluded from candidacy.
func (e *Engine) buildInput(req spec.Request, hosts map[string][]overlay.NodeInfo,
	reports map[overlay.ID]monitor.Report) core.Input {

	self := e.node.Info()
	own := e.Monitor.Report(e.clk.Now())
	in := core.Input{
		Request:      req,
		Source:       self,
		Dest:         self,
		SourceReport: own,
		DestReport:   own,
		Candidates:   make(map[string][]core.Candidate),
		Catalog:      e.Catalog,
		Rand:         e.rng,
	}
	for svc, list := range hosts {
		var cands []core.Candidate
		for _, h := range list {
			rep, ok := reports[h.ID]
			if !ok {
				continue // stats fetch failed: exclude the host
			}
			cands = append(cands, core.Candidate{Info: h, Report: rep})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Info.ID.Cmp(cands[j].Info.ID) < 0 })
		in.Candidates[svc] = cands
	}
	// Federated deployments compose over the local cluster alone; the
	// filter is the identity in flat deployments (empty cluster), keeping
	// their composition bit-identical to the unfederated composer.
	// Request.Cluster overrides the origin's own cluster (a no-op in flat
	// deployments, which carry no cluster tags to filter on).
	cluster := e.cluster
	if req.Cluster != "" && cluster != "" {
		cluster = req.Cluster
	}
	return core.FilterCluster(in, cluster)
}

// compose builds the composer input and runs composition, then moves on to
// instantiation.
func (e *Engine) compose(req, desired spec.Request, composer core.Composer, timeout time.Duration,
	hosts map[string][]overlay.NodeInfo, reports map[overlay.ID]monitor.Report,
	cb func(*core.ExecutionGraph, error)) {

	in := e.buildInput(req, hosts, reports)
	st := e.composeCapture[req.ID]
	if st != nil {
		in.Stats = st
	}
	start := e.clk.Now()
	g, err := composer.Compose(in)
	if st != nil {
		e.observeSolve(req.ID, st, start, err)
	}
	if err != nil {
		if e.fed != nil && errors.Is(err, core.ErrNoFeasiblePlacement) {
			// The local cluster cannot carry the request: try to hand the
			// unplaceable substreams across a boundary. The coordinator
			// falls back to the original error when no remote cluster
			// answers, so a flat failure stays a flat failure.
			e.fed.ComposeFederated(in, composer, err, func(g *core.ExecutionGraph, ferr error) {
				if ferr != nil {
					cb(nil, ferr)
					return
				}
				e.instantiate(g, desired, timeout, cb)
			})
			return
		}
		cb(nil, err)
		return
	}
	e.instantiate(g, desired, timeout, cb)
}

// stageUnitBytes computes the input unit size at every stage of a
// substream, applying the services' byte ratios.
func (e *Engine) stageUnitBytes(req spec.Request, substream int) []int {
	chain := req.Substreams[substream].Services
	sizes := make([]int, len(chain)+1)
	size := float64(req.UnitBytes)
	for j, svc := range chain {
		sizes[j] = int(size)
		if def, ok := e.Catalog[svc]; ok && def.BytesRatio > 0 {
			size *= def.BytesRatio
		}
	}
	sizes[len(chain)] = int(size)
	return sizes
}

// instantiate ships every placement to its host and, once all acks are in,
// starts the request's sinks and sources.
func (e *Engine) instantiate(g *core.ExecutionGraph, desired spec.Request, timeout time.Duration, cb func(*core.ExecutionGraph, error)) {
	byPlacement, sourceOuts := graphOuts(g)
	remaining := len(g.Placements)
	failed := false
	done := func() {
		if failed {
			// Roll back the partial instantiation: hosts that acked are
			// holding components that will never see traffic, silently
			// consuming their capacity. Teardown is idempotent on hosts
			// that never acked, so blanket-tearing the graph leaves every
			// host's view exactly as before the attempt.
			e.teardown(g, timeout)
			cb(nil, fmt.Errorf("stream: instantiation failed for request %s", g.Request.ID))
			return
		}
		e.activate(g, sourceOuts, desired)
		cb(g, nil)
	}
	if remaining == 0 {
		done()
		return
	}
	for _, p := range g.Placements {
		p := p
		body, _ := json.Marshal(e.instantiateMsgFor(g, p, byPlacement))
		e.node.Request(p.Host.Addr, appInstantiate, body, timeout, func(_ []byte, err error) {
			if err != nil {
				failed = true
			}
			remaining--
			if remaining == 0 {
				done()
			}
		})
	}
}

// instantiateMsgFor builds the instantiation message for one placement of
// an execution graph.
func (e *Engine) instantiateMsgFor(g *core.ExecutionGraph, p core.Placement, byPlacement map[string][]outSpec) instantiateMsg {
	sizes := e.stageUnitBytes(g.Request, p.Substream)
	def := e.Catalog[p.Service]
	ratio := def.RateRatio
	if ratio <= 0 {
		ratio = 1
	}
	return instantiateMsg{
		Req:       g.Request.ID,
		Substream: p.Substream,
		Stage:     p.Stage,
		Service:   p.Service,
		Rate:      p.Rate,
		UnitBytes: sizes[p.Stage],
		ProcHint:  def.ProcPerUnit,
		RateRatio: ratio,
		BytesOut:  sizes[p.Stage+1],
		Outs:      byPlacement[componentKey(g.Request.ID, p.Substream, p.Stage)+"@"+p.Host.ID.String()],
	}
}

// activate creates the request's sinks and starts its sources, and
// registers the application for adaptation. desired is the request as
// originally submitted (its rates may exceed a best-effort admission).
func (e *Engine) activate(g *core.ExecutionGraph, sourceOuts map[int][]outSpec, desired spec.Request) {
	for l, ss := range g.Request.Substreams {
		period := time.Duration(float64(time.Second) / float64(ss.Rate))
		slack := time.Duration(float64(period) * e.cfg.TimelyFactor)
		sink := newSink(g.Request.ID, l, len(ss.Services), period, slack, g.Request.PlayoutDelay)
		if e.cfg.KeepDelaySamples {
			sink.Delays = &metrics.Histogram{}
		}
		e.sinks[sinkKey(g.Request.ID, l)] = sink
		e.startSource(g.Request.ID, l, ss, g.Request.UnitBytes, sourceOuts[l])
	}
	e.origins[g.Request.ID] = &originState{
		graph:         g,
		desired:       desired,
		lastReceived:  make(map[int]int64),
		lastCheck:     e.clk.Now(),
		availReceived: make(map[int]int64),
		availAt:       e.clk.Now(),
	}
	e.chargePlacements(g)
}

// Teardown stops a request everywhere: local sources/components plus a
// teardown RPC to every placement host in the graph. The application's
// admission is released — this is the origin-side "the stream is done"
// path; internal restarts (recompose, preemption, rollback) use teardown
// directly so the tenant keeps or re-queues its slot.
func (e *Engine) Teardown(g *core.ExecutionGraph, timeout time.Duration) {
	if e.tenantGate != nil {
		e.tenantGate.Release(g.Request.ID)
		delete(e.pendingAdmission, g.Request.ID)
	}
	e.teardown(g, timeout)
}

// teardown is Teardown without the admission release.
func (e *Engine) teardown(g *core.ExecutionGraph, timeout time.Duration) {
	if e.fed != nil {
		// Refund the request's boundary-link credits (local ledger and
		// remote clusters); exactly-once even when a failed instantiation
		// rollback and the final teardown both pass through here.
		e.fed.ReleaseApp(g.Request.ID)
	}
	e.StopRequest(g.Request.ID)
	body, _ := json.Marshal(teardownMsg{Req: g.Request.ID})
	sent := make(map[overlay.ID]bool)
	for _, p := range g.Placements {
		if sent[p.Host.ID] || p.Host.ID == e.node.ID() {
			continue
		}
		sent[p.Host.ID] = true
		hostID := p.Host.ID
		e.node.Request(p.Host.Addr, appTeardown, body, timeout, func(_ []byte, err error) {
			if errors.Is(err, overlay.ErrTimeout) {
				e.node.RemovePeer(hostID)
			}
		})
	}
}
