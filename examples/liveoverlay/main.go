// Liveoverlay: the same RASC stack on real TCP sockets and the wall
// clock. Five nodes boot on loopback, form a Pastry ring, register
// services in the DHT, and one of them composes and streams a request for
// a couple of real seconds.
package main

import (
	"fmt"
	"log"
	"time"

	"rasc.dev/rasc/internal/live"
	"rasc.dev/rasc/internal/spec"
)

func main() {
	plan := [][]string{
		nil, // node 0: pure requester
		{"filter"},
		{"filter", "encrypt"},
		{"encrypt", "transcode"},
		{"transcode"},
	}
	var nodes []*live.Node
	var bootstrap string
	for i, services := range plan {
		node, err := live.Start(live.Config{
			Listen:    "127.0.0.1:0",
			Name:      fmt.Sprintf("live-%d", i),
			Bootstrap: bootstrap,
			Services:  services,
		})
		if err != nil {
			log.Fatalf("node %d: %v", i, err)
		}
		defer node.Close()
		nodes = append(nodes, node)
		if i == 0 {
			bootstrap = node.Addr()
		}
		fmt.Printf("node %d up at %s offering %v\n", i, node.Addr(), services)
	}
	// Give the ring and registrations a moment to converge.
	time.Sleep(500 * time.Millisecond)

	req := spec.Request{
		ID:        "live-demo",
		UnitBytes: 500,
		Substreams: []spec.Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 25},
		},
	}
	graph, err := nodes[0].Submit(req, "mincost", 10*time.Second)
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	fmt.Println("\ncomposed:")
	for _, p := range graph.Placements {
		fmt.Printf("  stage %d %-8s on %s at %.0f units/sec\n", p.Stage, p.Service, p.Host.Addr, p.Rate)
	}

	fmt.Println("\nstreaming for 3 seconds of real time...")
	time.Sleep(3 * time.Second)
	s := nodes[0].Stats(req.ID, 0)
	fmt.Printf("emitted %d, delivered %d (%.1f%%), delay %v, jitter %v\n",
		s.Emitted, s.Received,
		100*float64(s.Received)/float64(max64(s.Emitted, 1)),
		s.MeanDelay.Round(time.Millisecond), s.MeanJitter.Round(time.Millisecond))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
