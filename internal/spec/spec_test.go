package spec

import "testing"

func valid() Request {
	return Request{
		ID:        "r",
		UnitBytes: 1250,
		Substreams: []Substream{
			{Services: []string{"a", "b"}, Rate: 5},
			{Services: []string{"c"}, Rate: 3},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := valid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Request){
		"empty ID":      func(r *Request) { r.ID = "" },
		"zero unit":     func(r *Request) { r.UnitBytes = 0 },
		"negative unit": func(r *Request) { r.UnitBytes = -1 },
		"no substreams": func(r *Request) { r.Substreams = nil },
		"empty chain":   func(r *Request) { r.Substreams[0].Services = nil },
		"zero rate":     func(r *Request) { r.Substreams[1].Rate = 0 },
		"negative rate": func(r *Request) { r.Substreams[1].Rate = -4 },
	}
	for name, mutate := range cases {
		r := valid()
		mutate(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}

func TestServicesDistinct(t *testing.T) {
	r := valid()
	r.Substreams[1].Services = []string{"a", "c"} // "a" repeats
	got := r.Services()
	if len(got) != 3 {
		t.Fatalf("Services = %v, want 3 distinct", got)
	}
}

func TestTotalRate(t *testing.T) {
	if got := valid().TotalRate(); got != 8 {
		t.Fatalf("TotalRate = %d, want 8", got)
	}
}

func TestBitsPerSecond(t *testing.T) {
	r := valid()
	// 1250 bytes = 10000 bits; 5 units/sec = 50 kbit/s.
	if got := r.BitsPerSecond(5); got != 50000 {
		t.Fatalf("BitsPerSecond = %g", got)
	}
}
