package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/spec"
)

func TestVBRSourceVariesSizesAroundMean(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 10, Seed: 51})
	req := spec.Request{
		ID:        "vbr",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter"}, Rate: 20, Burstiness: 0.5},
		},
	}
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 30*time.Second)
	// Mean emitted size must stay near UnitBytes while individual sizes
	// vary: check via the byte counter.
	emitted := s.Engines[0].EmittedUnits("vbr", 0)
	bytes := s.Engines[0].EmittedBytes("vbr", 0)
	if emitted < 400 {
		t.Fatalf("emitted only %d units", emitted)
	}
	mean := float64(bytes) / float64(emitted)
	if mean < 1100 || mean > 1400 {
		t.Fatalf("mean unit size %.0f outside [1100,1400]", mean)
	}
}

func TestCBRSourceExactSizes(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 10, Seed: 52})
	req := simpleRequest("cbr", 10, "filter")
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	emitted := s.Engines[0].EmittedUnits("cbr", 0)
	bytes := s.Engines[0].EmittedBytes("cbr", 0)
	if bytes != emitted*1250 {
		t.Fatalf("CBR bytes = %d for %d units, want exact multiples of 1250", bytes, emitted)
	}
}

func TestPlayoutNoStallsOnHealthyStream(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 53})
	req := spec.Request{
		ID:           "smooth",
		UnitBytes:    1250,
		PlayoutDelay: 2 * time.Second, // generous buffer
		Substreams: []spec.Substream{
			{Services: []string{"filter"}, Rate: 10},
		},
	}
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 30*time.Second)
	sink := s.Engines[0].Sink("smooth", 0)
	if sink.Received < 200 {
		t.Fatalf("received only %d", sink.Received)
	}
	if sink.Stalls != 0 {
		t.Fatalf("healthy stream stalled %d times with a 2s buffer", sink.Stalls)
	}
}

func TestPlayoutStallsAfterDeliveryGap(t *testing.T) {
	// Kill the pipeline mid-stream, then restore delivery by adaptation:
	// the gap forces at least one rebuffering stall once units resume.
	// Simpler and deterministic: drive a synthetic gap through the
	// engine-level API is not possible, so the arithmetic itself is
	// pinned by TestSinkPlayoutArithmetic (internal); here we assert the
	// tight-buffer case accrues stalls under congestion.
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 10, Seed: 54,
		// Tight access links so the competing streams congest them.
		Topology:         netsim.PlanetLabTopology(netsim.TopologyConfig{Nodes: 10, MinBps: 2.6e5, MaxBps: 6e5}, 54),
		MaxLinkBacklog:   300 * time.Millisecond,
		CongestionJitter: 1.0,
	})
	req := spec.Request{
		ID:           "stally",
		UnitBytes:    1250,
		PlayoutDelay: 20 * time.Millisecond, // buffer far below jitter
		Substreams: []spec.Substream{
			{Services: []string{"filter", "transcode", "analyze"}, Rate: 20, Burstiness: 0.5},
		},
	}
	submit(t, s, 0, req, &core.MinCost{})
	// Add three competing streams to congest the pipeline hosts.
	for i := 1; i <= 3; i++ {
		bg := spec.Request{
			ID:        "bg-" + string(rune('0'+i)),
			UnitBytes: 1250,
			Substreams: []spec.Substream{
				{Services: []string{"filter", "transcode"}, Rate: 20},
			},
		}
		done := false
		s.Engines[i].Submit(bg, &core.MinCost{}, 10*time.Second, func(*core.ExecutionGraph, error) { done = true })
		for j := 0; j < 100 && !done; j++ {
			s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
		}
	}
	s.Sim.RunUntil(s.Sim.Now() + 30*time.Second)
	sink := s.Engines[0].Sink("stally", 0)
	if sink.Received == 0 {
		t.Fatal("nothing delivered")
	}
	if sink.Stalls == 0 {
		t.Fatalf("no stalls with a 20ms buffer under congestion (received %d)", sink.Received)
	}
}

func TestStatsCacheServesBoundedAge(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 8, Seed: 56,
		StatsMaxAge: 10 * time.Second,
	})
	// Load node 1 so its fresh report would differ over time.
	req := simpleRequest("cacheload", 10, "filter")
	submit(t, s, 0, req, &core.MinCost{})
	// Fetch node 1's stats twice within the cache window: identical
	// bytes mean the cache answered.
	var first, second []byte
	node := s.Engines[0].Node()
	target := s.Engines[1].Node()
	node.Request(target.Addr(), "stats", nil, 5*time.Second, func(b []byte, err error) { first = b })
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	node.Request(target.Addr(), "stats", nil, 5*time.Second, func(b []byte, err error) { second = b })
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	if first == nil || second == nil {
		t.Fatal("stats fetch failed")
	}
	if string(first) != string(second) {
		t.Fatal("reports within the max-age window must be byte-identical (cached)")
	}
	// After the window, the report refreshes (its At field advances).
	s.Sim.RunUntil(s.Sim.Now() + 11*time.Second)
	var third []byte
	node.Request(target.Addr(), "stats", nil, 5*time.Second, func(b []byte, err error) { third = b })
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	if string(third) == string(first) {
		t.Fatal("report did not refresh after the max age elapsed")
	}
}

func TestPlayoutModelUnit(t *testing.T) {
	// Direct unit test of the playback model via the integration seam:
	// period 100ms, playout delay 300ms.
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 8, Seed: 55})
	req := spec.Request{
		ID:           "pm",
		UnitBytes:    1250,
		PlayoutDelay: 300 * time.Millisecond,
		Substreams:   []spec.Substream{{Services: []string{"filter"}, Rate: 10}},
	}
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	sink := s.Engines[0].Sink("pm", 0)
	if sink.PlayoutDelay != 300*time.Millisecond {
		t.Fatalf("PlayoutDelay = %v", sink.PlayoutDelay)
	}
}
