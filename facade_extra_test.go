package rasc

import (
	"testing"
	"time"
)

func TestFacadeKillAndAdaptation(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 12, Seed: 31})
	sys.EnableAdaptation(0, 3*time.Second)
	req := Request{
		ID:         "facade-adapt",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 8}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * time.Second)
	// Kill every non-origin host of the composition.
	for _, p := range comp.Placements() {
		for i := 1; i < sys.Nodes(); i++ {
			if sys.NodeAddr(i) == string(p.Host.Addr) {
				sys.Kill(i)
			}
		}
	}
	sys.Run(40 * time.Second)
	if sys.Recompositions(0) == 0 {
		t.Fatal("facade adaptation never re-composed")
	}
	before := comp.Stats().Received
	sys.Run(10 * time.Second)
	if comp.Stats().Received <= before {
		t.Fatal("no delivery after facade-level recovery")
	}
}

func TestFacadeTracing(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 10, Seed: 32})
	buf := sys.EnableTracing(50_000)
	req := Request{
		ID:         "facade-trace",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter", "compress"}, Rate: 6}},
	}
	if _, err := sys.Submit(0, req, ComposerMinCost); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	if buf.Total() == 0 {
		t.Fatal("no trace events")
	}
	if len(buf.StageLatencies("facade-trace", 0)) == 0 {
		t.Fatal("no stage latencies")
	}
}

func TestFacadePlayoutStats(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 10, Seed: 33})
	req := Request{
		ID:           "facade-playout",
		UnitBytes:    1250,
		PlayoutDelay: 2 * time.Second,
		Substreams:   []Substream{{Services: []string{"filter"}, Rate: 8}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(15 * time.Second)
	s := comp.Stats()
	if s.Received == 0 {
		t.Fatal("nothing delivered")
	}
	if s.Stalls != 0 {
		t.Fatalf("generous playout buffer stalled %d times", s.Stalls)
	}
}

func TestFacadeCPUComposer(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 12, Seed: 34})
	req := Request{
		ID:         "facade-cpu",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"analyze"}, Rate: 5}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCostCPU)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * time.Second)
	if comp.Stats().Received == 0 {
		t.Fatal("CPU-aware composer delivered nothing")
	}
}
