package trace

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalDecisionLifecycle(t *testing.T) {
	j := NewJournal(8)
	a := j.Begin(10*time.Millisecond, "app-1", "member_dead", "member dead: 0a")
	if a.Trace() != 1 || a.App() != "app-1" || a.TriggeredAt() != 10*time.Millisecond {
		t.Fatalf("active decision header wrong: %d %s %v", a.Trace(), a.App(), a.TriggeredAt())
	}
	a.Span("decide", 10*time.Millisecond, 11*time.Millisecond, A("mode", "incremental"))
	a.Span("solve", 11*time.Millisecond, 12*time.Millisecond, AInt("iterations", 4))
	if j.Len() != 0 {
		t.Fatalf("decision visible before Complete: Len = %d", j.Len())
	}
	a.Complete(30*time.Millisecond, "incremental", nil)
	a.Complete(40*time.Millisecond, "full", errors.New("ignored")) // idempotent

	ds := j.Decisions()
	if len(ds) != 1 {
		t.Fatalf("Len = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Trigger != "member_dead" || d.Cause != "member dead: 0a" ||
		d.Mode != "incremental" || d.Outcome != "success" || d.Err != "" {
		t.Fatalf("decision = %+v", d)
	}
	if d.TriggeredAt != 10*time.Millisecond || d.CompletedAt != 30*time.Millisecond {
		t.Fatalf("timestamps = %v..%v", d.TriggeredAt, d.CompletedAt)
	}
	if len(d.Spans) != 3 {
		t.Fatalf("spans = %d, want root+decide+solve", len(d.Spans))
	}
	root := d.Spans[0]
	if root.ID != 1 || root.Parent != 0 || root.Name != "decision" || root.End != 30*time.Millisecond {
		t.Fatalf("root span = %+v", root)
	}
	for _, s := range d.Spans[1:] {
		if s.Parent != 1 {
			t.Fatalf("span %q parent = %d, want root", s.Name, s.Parent)
		}
	}
	if v, ok := d.Spans[2].Attr("iterations"); !ok || v != "4" {
		t.Fatalf("solve iterations attr = %q %v", v, ok)
	}
	if d.Converged {
		t.Fatal("converged before Converge")
	}

	j.Converge("app-1", 45*time.Millisecond)
	d = j.Decisions()[0]
	if !d.Converged || d.ConvergedAt != 45*time.Millisecond {
		t.Fatalf("after Converge: %+v", d)
	}
	// Converging again must not move the timestamp.
	j.Converge("app-1", 60*time.Millisecond)
	if got := j.Decisions()[0].ConvergedAt; got != 45*time.Millisecond {
		t.Fatalf("ConvergedAt moved to %v", got)
	}
}

func TestJournalFailedDecisionsDoNotConverge(t *testing.T) {
	j := NewJournal(4)
	a := j.Begin(0, "app-1", "rate_below_threshold", "substreams [0] below threshold")
	a.Complete(time.Millisecond, "full", errors.New("no feasible placement"))
	j.Converge("app-1", 2*time.Millisecond)
	d := j.Decisions()[0]
	if d.Outcome != "failed" || d.Err == "" {
		t.Fatalf("decision = %+v", d)
	}
	if d.Converged {
		t.Fatal("failed decision marked converged")
	}
}

func TestJournalEviction(t *testing.T) {
	j := NewJournal(2)
	for i := 0; i < 3; i++ {
		a := j.Begin(time.Duration(i)*time.Second, "app", "member_dead", "")
		a.Complete(time.Duration(i)*time.Second+time.Millisecond, "full", nil)
	}
	if j.Len() != 2 || j.Total() != 3 || j.Evicted() != 1 {
		t.Fatalf("Len=%d Total=%d Evicted=%d", j.Len(), j.Total(), j.Evicted())
	}
	ds := j.Decisions()
	if ds[0].Trace != 2 || ds[1].Trace != 3 {
		t.Fatalf("retained traces %d,%d, want 2,3 (oldest evicted)", ds[0].Trace, ds[1].Trace)
	}
}

func TestJournalLastByApp(t *testing.T) {
	j := NewJournal(8)
	for i, app := range []string{"a", "b", "a"} {
		d := j.Begin(time.Duration(i)*time.Second, app, "member_dead", "")
		d.Complete(time.Duration(i)*time.Second+time.Millisecond, "incremental", nil)
	}
	last := j.LastByApp()
	if len(last) != 2 || last["a"].Trace != 3 || last["b"].Trace != 2 {
		t.Fatalf("LastByApp = %+v", last)
	}
}

func TestSealedDecisionDropsLateSpans(t *testing.T) {
	j := NewJournal(2)
	a := j.Begin(0, "app", "breaker_open", "breaker open: 0b")
	a.Complete(time.Millisecond, "incremental", nil)
	if id := a.Span("late", 2*time.Millisecond, 3*time.Millisecond); id != 0 {
		t.Fatalf("late span got ID %d", id)
	}
	a.Annotate(A("late", "true"))
	d := j.Decisions()[0]
	if len(d.Spans) != 1 {
		t.Fatalf("spans = %d after sealed appends", len(d.Spans))
	}
	if _, ok := d.Spans[0].Attr("late"); ok {
		t.Fatal("late annotation leaked into sealed decision")
	}
}

func TestFormatDecision(t *testing.T) {
	j := NewJournal(2)
	a := j.Begin(100*time.Millisecond, "chain", "member_dead", "member dead: 0042")
	a.Span("decide", 100*time.Millisecond, 101*time.Millisecond, A("mode", "incremental"))
	a.Complete(120*time.Millisecond, "incremental", nil)
	j.Converge("chain", 500*time.Millisecond)
	out := FormatDecision(j.Decisions()[0])
	for _, want := range []string{
		"app=chain", "trigger=member_dead", "mode=incremental", "outcome=success",
		"cause: member dead: 0042", "converged 500ms (+400ms)", "decide", "mode=incremental",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatDecision missing %q in:\n%s", want, out)
		}
	}
}

// TestConcurrentJournal is the -race regression test for the decision
// journal: span appends on one active decision race admin reads and other
// decisions completing.
func TestConcurrentJournal(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	a := j.Begin(0, "shared", "member_dead", "")
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Span("solve", time.Duration(i), time.Duration(i+1), AInt("w", int64(w)))
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				d := j.Begin(time.Duration(i), "other", "breaker_open", "")
				d.Complete(time.Duration(i+1), "full", nil)
				_ = j.Decisions()
				_ = j.LastByApp()
				j.Converge("other", time.Duration(i+2))
			}
		}(w)
	}
	wg.Wait()
	a.Complete(time.Second, "incremental", nil)
	var shared *Decision
	for _, d := range j.Decisions() {
		if d.App == "shared" {
			d := d
			shared = &d
		}
	}
	if shared == nil {
		t.Fatal("shared decision missing")
	}
	if len(shared.Spans) != 1+8*200 {
		t.Fatalf("spans = %d, want %d (lost concurrent appends)", len(shared.Spans), 1+8*200)
	}
	seen := make(map[SpanID]bool)
	for _, s := range shared.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}
