// Package rasc is a Go implementation of RASC (RAte Splitting
// Composition), the distributed stream processing system of Drougas and
// Kalogeraki, "RASC: Dynamic Rate Allocation for Distributed Stream
// Processing Applications" (IPDPS 2007).
//
// RASC composes stream-processing applications over a Pastry-style
// overlay: services are discovered through a DHT, node resources (input
// and output bandwidth) are monitored over sliding windows, data units are
// scheduled with a least-laxity-first policy, and applications are
// composed by reducing rate allocation to a minimum-cost flow problem —
// splitting a service across several component instances when no single
// node can carry the requested rate.
//
// The package offers a deterministic simulated deployment (a wide-area
// network model standing in for the paper's PlanetLab testbed) through
// which requests can be submitted with RASC's min-cost composer or the
// paper's two baselines (random and greedy placement), and delivery
// metrics — throughput, end-to-end delay, jitter, ordering, timeliness —
// can be measured. See the examples directory and cmd/rasc-bench for the
// paper's full evaluation.
package rasc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/experiment"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/telemetry"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
)

// Request is a stream-processing request: a service request graph of
// substreams plus per-substream rate requirements.
type Request = spec.Request

// Substream is one sequential chain of services in a request.
type Substream = spec.Substream

// Priority is an application's tenancy class, set on Request.Priority: it
// decides the application's weight in the fair-share allocation and its
// preemption order under contention (deployments built WithTenancy).
type Priority = spec.Priority

// The tenancy classes. The zero value is Standard, so requests that never
// set a priority keep their behavior.
const (
	Critical   = spec.Critical
	Standard   = spec.Standard
	BestEffort = spec.BestEffort
)

// ParsePriority converts a flag or config label ("critical", "standard",
// "best-effort"; empty = Standard) into a Priority.
func ParsePriority(s string) (Priority, error) { return spec.ParsePriority(s) }

// ServiceDef describes one stream-processing service.
type ServiceDef = spec.ServiceDef

// Catalog maps service names to definitions.
type Catalog = services.Catalog

// StandardCatalog returns the ten unit-ratio services used in the paper's
// experiments.
func StandardCatalog() Catalog { return services.Standard() }

// ExtendedCatalog adds services with non-unit rate ratios for the LP
// composer.
func ExtendedCatalog() Catalog { return services.Extended() }

// Options configures a simulated RASC deployment. New code should prefer
// New with functional options; Options remains for callers that assemble
// configuration as a value.
type Options struct {
	// Nodes is the deployment size (default 32, the paper's testbed).
	Nodes int
	// Seed makes the deployment and every run on it reproducible.
	Seed int64
	// Catalog defaults to StandardCatalog().
	Catalog Catalog
	// ServicesPerNode is how many catalog services each node offers
	// (default 5).
	ServicesPerNode int
	// MinBps/MaxBps bound per-node access-link capacity
	// (default 150 Kbps – 1.2 Mbps, the calibrated experiment range).
	MinBps, MaxBps float64
	// SchedPolicy selects the node scheduler: "llf" (default), "edf" or
	// "fifo".
	SchedPolicy string
	// EnableGossip runs the SWIM-style membership protocol on every node:
	// service lookups are answered from the gossip view (DHT fallback),
	// composition reads gossip-disseminated monitoring digests instead of
	// fetching per-host snapshots, and a detected node death immediately
	// re-composes the applications placed on it.
	EnableGossip bool
	// Chaos, when set, wraps every node's transport endpoint with seeded
	// fault injection (see WithChaos).
	Chaos *ChaosConfig
	// Adaptation, when set, enables the event-driven adaptation control
	// plane on every node (see WithAdaptation).
	Adaptation *AdaptationConfig
	// Tenancy, when set, fronts every node's submission path with one
	// shared admission gate (see WithTenancy).
	Tenancy *TenancyConfig
	// DataPlane, when set, enables the batched, sharded data plane on
	// every node (see WithDataPlane).
	DataPlane *DataPlaneConfig
	// Federation, when set, shards the deployment into federated
	// clusters joined by the boundary protocol (see WithFederation).
	// Implies EnableGossip.
	Federation *FederationConfig
}

// System is a running simulated RASC deployment.
type System struct {
	d *deploy.System
}

// NewSimulated builds a deterministic simulated deployment from an Options
// value.
//
// Deprecated: use New with functional options — rasc.New(rasc.WithNodes(16),
// rasc.WithSeed(7)) — which is extensible without breaking callers.
// NewSimulated remains as a thin shim over the same construction path.
func NewSimulated(opts Options) *System { return newSystem(opts) }

// newSystem is the single construction path behind New and NewSimulated:
// it applies the paper's defaults and assembles the deployment.
func newSystem(opts Options) *System {
	if opts.Nodes == 0 {
		opts.Nodes = 32
	}
	if opts.MinBps == 0 {
		opts.MinBps = 1.5e5
	}
	if opts.MaxBps == 0 {
		opts.MaxBps = 1.2e6
	}
	tc := netsim.TopologyConfig{
		Nodes:  opts.Nodes,
		MinBps: opts.MinBps,
		MaxBps: opts.MaxBps,
	}
	// A multi-cluster federation maps clusters onto topology sites, so the
	// wide-area (inter-site) latency distribution is exactly the
	// inter-cluster one. A single cluster keeps the default site layout —
	// part of the bit-identical pin against flat deployments.
	if opts.Federation != nil && opts.Federation.Clusters > 1 {
		tc.Sites = opts.Federation.Clusters
	}
	topo := netsim.PlanetLabTopology(tc, opts.Seed)
	var dataPlane stream.DataPlaneConfig
	if opts.DataPlane != nil {
		dataPlane = *opts.DataPlane
	}
	d := deploy.NewSystem(deploy.SystemOptions{
		Nodes:            opts.Nodes,
		Seed:             opts.Seed,
		Topology:         topo,
		MaxLinkBacklog:   300 * time.Millisecond,
		CongestionJitter: 0.5,
		Catalog:          opts.Catalog,
		ServicesPerNode:  opts.ServicesPerNode,
		SchedPolicy:      opts.SchedPolicy,
		ProcJitter:       0.2,
		HeterogeneousCPU: true,
		EnableGossip:     opts.EnableGossip,
		Chaos:            opts.Chaos,
		Adaptation:       opts.Adaptation,
		Tenancy:          opts.Tenancy,
		DataPlane:        dataPlane,
		Federation:       opts.Federation,
		// The default 300ms probe timeout sits below the topology's worst
		// inter-site RTT (~330ms); 500ms keeps healthy members from being
		// falsely suspected.
		Gossip: gossip.Config{ProbeTimeout: 500 * time.Millisecond},
	})
	return &System{d: d}
}

// Nodes returns the deployment size.
func (s *System) Nodes() int { return len(s.d.Engines) }

// ServicesAt lists the services node i announced.
func (s *System) ServicesAt(i int) []string { return s.d.Placement[i] }

// NodeAddr returns node i's transport address (as it appears in placement
// listings).
func (s *System) NodeAddr(i int) string { return string(s.d.Engines[i].Node().Addr()) }

// Now returns the current virtual time.
func (s *System) Now() time.Duration { return s.d.Sim.Now() }

// Run advances the simulation by d of virtual time (streams keep flowing).
func (s *System) Run(d time.Duration) {
	s.d.Sim.RunUntil(s.d.Sim.Now() + d)
}

// Composition is a successfully composed application.
type Composition struct {
	origin int
	sys    *System
	// Graph is the execution graph: component placements with assigned
	// rates and the data-flow edges between them.
	Graph *core.ExecutionGraph
}

// Placements returns the composed component instances.
func (c *Composition) Placements() []core.Placement { return c.Graph.Placements }

// NumHosts returns how many distinct nodes host the application.
func (c *Composition) NumHosts() int { return core.NumHosts(c.Graph) }

// Submit composes and starts a request from the given origin node using
// the given composer, advancing virtual time until composition completes.
// On success the application is streaming; observe it with Run and
// DeliveryStats. Equivalent to SubmitContext with context.Background().
//
// Failures wrap the facade's sentinel errors — ErrUnknownComposer,
// ErrUnknownService, ErrNoComposition — so callers branch with errors.Is.
func (s *System) Submit(origin int, req Request, composer Composer) (*Composition, error) {
	return s.SubmitContext(context.Background(), origin, req, composer)
}

// SubmitContext is Submit with cancellation: the loop that advances
// virtual time while waiting for composition checks ctx between steps and
// returns ctx.Err() (wrapped) as soon as it is done. Virtual time already
// spent is not rolled back.
func (s *System) SubmitContext(ctx context.Context, origin int, req Request, composer Composer) (*Composition, error) {
	if origin < 0 || origin >= len(s.d.Engines) {
		return nil, fmt.Errorf("rasc: origin %d outside deployment of %d nodes", origin, len(s.d.Engines))
	}
	if _, err := ParseComposer(string(composer)); err != nil {
		return nil, err
	}
	for _, sub := range req.Substreams {
		for _, name := range sub.Services {
			if _, ok := s.d.Options.Catalog[name]; !ok {
				return nil, fmt.Errorf("%w: %q in request %q", ErrUnknownService, name, req.ID)
			}
		}
	}
	comp, err := experiment.NewComposer(string(composer))
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownComposer, composer)
	}
	var graph *core.ExecutionGraph
	var submitErr error
	done := false
	s.d.Engines[origin].Submit(req, comp, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		graph, submitErr, done = g, err, true
	})
	deadline := s.d.Sim.Now() + 60*time.Second
	for !done && s.d.Sim.Now() < deadline {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("rasc: submission of %s: %w", req.ID, err)
		}
		s.d.Sim.RunUntil(s.d.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		return nil, fmt.Errorf("rasc: submission of %s did not complete", req.ID)
	}
	if submitErr != nil {
		if errors.Is(submitErr, core.ErrNoFeasiblePlacement) {
			return nil, fmt.Errorf("%w: request %q: %w", ErrNoComposition, req.ID, submitErr)
		}
		return nil, submitErr
	}
	return &Composition{origin: origin, sys: s, Graph: graph}, nil
}

// Stop tears the application down on every host.
func (c *Composition) Stop() {
	c.sys.d.Engines[c.origin].Teardown(c.Graph, 10*time.Second)
	c.sys.Run(time.Second)
}

// DeliveryStats aggregates a composition's delivery metrics across its
// substreams.
type DeliveryStats struct {
	Emitted    int64
	Received   int64
	Timely     int64
	OutOfOrder int64
	// Stalls counts rebuffering events when the request enables the
	// playout model (Request.PlayoutDelay > 0).
	Stalls     int64
	MeanDelay  time.Duration
	MeanJitter time.Duration
}

// DeliveredFraction is Received/Emitted (0 when nothing was emitted).
func (d DeliveryStats) DeliveredFraction() float64 {
	if d.Emitted == 0 {
		return 0
	}
	return float64(d.Received) / float64(d.Emitted)
}

// TimelyFraction is Timely/Received (0 when nothing was delivered).
func (d DeliveryStats) TimelyFraction() float64 {
	if d.Received == 0 {
		return 0
	}
	return float64(d.Timely) / float64(d.Received)
}

// Throughput is a typed per-substream data-plane snapshot: units and bytes
// emitted by the source, forwarded between components, dropped for any
// cause (queue overflow, missed laxity, uplink and downlink congestion),
// and delivered to the sink.
type Throughput = stream.Throughput

// Throughput aggregates the composition's data-plane counters across every
// node of the deployment, one snapshot per substream in order. Unlike
// Stats (origin-local, source counters reset by teardown) it sees the
// whole pipeline — intermediate-host forwards and drops included — and its
// counters survive Stop, so emitted = delivered + dropped + in-flight
// holds over a drained run.
func (c *Composition) Throughput() []Throughput {
	id := c.Graph.Request.ID
	out := make([]Throughput, len(c.Graph.Request.Substreams))
	for l := range out {
		out[l] = Throughput{Req: id, Substream: l}
		for _, eng := range c.sys.d.Engines {
			out[l].Accumulate(eng.Throughput(id, l))
		}
	}
	return out
}

// Stats reads the composition's current delivery metrics.
//
// The emitted counter comes from the origin's live source, so it reads 0
// after Stop; prefer Throughput for accounting that must survive teardown.
func (c *Composition) Stats() DeliveryStats {
	eng := c.sys.d.Engines[c.origin]
	var out DeliveryStats
	var sumDelay, sumJitter time.Duration
	for l := range c.Graph.Request.Substreams {
		out.Emitted += eng.EmittedUnits(c.Graph.Request.ID, l)
		sink := eng.Sink(c.Graph.Request.ID, l)
		if sink == nil {
			continue
		}
		out.Received += sink.Received
		out.Timely += sink.Timely
		out.OutOfOrder += sink.OutOfOrder
		out.Stalls += sink.Stalls
		sumDelay += sink.TotalDelay
		sumJitter += sink.TotalJitter
	}
	if out.Received > 0 {
		out.MeanDelay = sumDelay / time.Duration(out.Received)
		out.MeanJitter = sumJitter / time.Duration(out.Received)
	}
	return out
}

// Kill fail-stops node i: it stops sending and receiving. Peers observe
// timeouts; enabled adaptation re-composes affected applications.
func (s *System) Kill(i int) { s.d.Kill(i) }

// EnableAdaptation turns on the origin-side adaptation loop at node i:
// applications submitted from that node are re-composed when a substream's
// delivery rate drops below half its requirement (checked every interval).
func (s *System) EnableAdaptation(i int, interval time.Duration) {
	s.d.Engines[i].EnableAdaptation(stream.AdaptationConfig{Interval: interval})
}

// Recompositions reports how many adaptation actions node i has attempted
// (incremental reallocations and full recompositions combined).
func (s *System) Recompositions(i int) int64 { return s.d.Engines[i].Recompositions() }

// Reallocations reports how many of node i's adaptation actions took the
// incremental path — a delta solve that shifted split ratios away from
// degraded hosts without tearing the application down. Always a subset of
// Recompositions.
func (s *System) Reallocations(i int) int64 { return s.d.Engines[i].Reallocations() }

// MembershipSummary is a node's gossip view at a glance: alive, suspect
// and dead member counts plus the age of the stalest monitoring digest it
// holds.
type MembershipSummary = gossip.Summary

// Membership returns node i's gossip membership summary. The second
// result is false when the deployment runs without gossip.
func (s *System) Membership(i int) (MembershipSummary, bool) {
	if s.d.Gossip == nil || s.d.Gossip[i] == nil {
		return MembershipSummary{}, false
	}
	return s.d.Gossip[i].Summary(), true
}

// ClusterOf returns the federation cluster node i belongs to; empty in
// deployments built without WithFederation.
func (s *System) ClusterOf(i int) string {
	if s.d.ClusterOf == nil {
		return ""
	}
	return s.d.ClusterOf[i]
}

// HandoffRef identifies one committed cross-cluster hand-off: the
// application, the substream index, and the remote cluster carrying it.
type HandoffRef = federation.HandoffRef

// Handoffs returns the cross-cluster hand-offs node i's federation
// coordinator currently holds committed. The second result is false when
// the deployment runs without WithFederation.
func (s *System) Handoffs(i int) ([]HandoffRef, bool) {
	if s.d.Federation == nil || s.d.Federation[i] == nil {
		return nil, false
	}
	return s.d.Federation[i].Handoffs(), true
}

// LinkUsage is one boundary link's credit/debit accounting: capacity,
// reserved bandwidth and live credits.
type LinkUsage = federation.LinkUsage

// BoundaryLinks returns cluster k's boundary-ledger accounting, one entry
// per boundary link touching it. The second result is false when the
// deployment runs without WithFederation.
func (s *System) BoundaryLinks(k int) ([]LinkUsage, bool) {
	if s.d.Ledgers == nil || k < 0 || k >= len(s.d.Ledgers) {
		return nil, false
	}
	return s.d.Ledgers[k].Usage(), true
}

// TraceBuffer records per-unit events (emit/arrive/process/forward/drop/
// deliver) for timeline reconstruction and per-hop latency analysis.
type TraceBuffer = trace.Buffer

// Decision is one completed adaptation decision: the causal chain from
// trigger event through controller gates and solver run to the
// reallocation outcome and convergence.
type Decision = trace.Decision

// DecisionJournal is the bounded ring retaining the most recent completed
// decisions.
type DecisionJournal = trace.Journal

// Decisions returns the deployment's adaptation decision log, oldest
// first: every engine writes its decision traces into one shared journal.
func (s *System) Decisions() []Decision { return s.d.Journal.Decisions() }

// Journal exposes the deployment's shared decision journal, e.g. to serve
// it over HTTP with live.DecisionsHandler or format it with
// trace.FormatDecisions.
func (s *System) Journal() *DecisionJournal { return s.d.Journal }

// TenantStatus is one tenant's admission posture: state (admitted or
// queued), priority class, demanded rate and current fair-share cap.
type TenantStatus = tenant.Status

// Tenants lists every application the admission gate tracks — admitted
// ones (sorted by ID) then the queue in promotion order. The second
// result is false when the deployment runs without WithTenancy.
func (s *System) Tenants() ([]TenantStatus, bool) {
	if s.d.Gate == nil {
		return nil, false
	}
	return s.d.Gate.Snapshot(), true
}

// TenantTotals is the admission gate's aggregate posture.
type TenantTotals = tenant.Totals

// TenantGateTotals returns the gate's aggregate posture (admitted and
// queued counts, budget, demand, preemptions, rejections). The second
// result is false without WithTenancy.
func (s *System) TenantGateTotals() (TenantTotals, bool) {
	if s.d.Gate == nil {
		return TenantTotals{}, false
	}
	return s.d.Gate.Totals(), true
}

// EnableTracing attaches a shared event buffer of the given capacity to
// every node's engine and returns it. Use the buffer's Timeline,
// StageLatencies and DropsByCause to analyze where units spend time and
// why they are lost.
func (s *System) EnableTracing(capacity int) *TraceBuffer {
	buf := trace.NewBuffer(capacity)
	for _, e := range s.d.Engines {
		e.SetTracer(buf)
	}
	return buf
}

// TelemetrySnapshot refreshes every engine's monitor gauges and renders
// the process-wide runtime telemetry registry in the Prometheus text
// format — the same catalogue a live node serves on /metrics, dumped once
// at the end of a simulation.
func (s *System) TelemetrySnapshot() string {
	for _, e := range s.d.Engines {
		e.ExportTelemetry()
	}
	return telemetry.Default().String()
}

// Report is a node's monitoring snapshot.
type Report = monitor.Report

// NodeReport returns node i's current monitoring snapshot (availability
// vector, drop ratio, per-component statistics).
func (s *System) NodeReport(i int) Report {
	return s.d.Engines[i].Monitor.Report(s.d.Sim.Now())
}
