package gossip

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the membership protocol (metric catalogue
// rasc_gossip_*). Counters aggregate over every gossip instance in the
// process: one in a live node, all simulated nodes in an experiment.
// Membership gauges capture the most recently exported view (a live node
// has exactly one instance; in simulations the last exporting node wins).
var (
	telProbes = telemetry.Default().CounterVec(
		"rasc_gossip_probes_total",
		"Failure-detector probe outcomes, by result.",
		"result")
	telSuspicions = telemetry.Default().Counter(
		"rasc_gossip_suspicions_total",
		"Members moved to the suspect state.")
	telDeaths = telemetry.Default().Counter(
		"rasc_gossip_deaths_total",
		"Members declared dead after an unrefuted suspicion.")
	telRefutations = telemetry.Default().Counter(
		"rasc_gossip_refutations_total",
		"Suspicions of this node refuted with a higher incarnation.")
	telSyncs = telemetry.Default().Counter(
		"rasc_gossip_syncs_total",
		"Push-pull anti-entropy exchanges completed.")
	telMembers = telemetry.Default().GaugeVec(
		"rasc_gossip_members",
		"Membership view counts at the last probe tick, by state.",
		"state")
	telDigestAge = telemetry.Default().Histogram(
		"rasc_gossip_digest_age_seconds",
		"Age of the probed member's monitoring digest at each probe tick.",
		telemetry.ExpBuckets(0.25, 2, 10))
	telConvergenceRounds = telemetry.Default().Histogram(
		"rasc_gossip_convergence_rounds",
		"Protocol rounds from first suspicion to a member's death.",
		telemetry.LinearBuckets(1, 1, 12))
	telSummaryExchanges = telemetry.Default().Counter(
		"rasc_gossip_summary_exchanges_total",
		"Remote cluster summaries received over the federation boundary.")
	telSummariesHeld = telemetry.Default().Gauge(
		"rasc_gossip_summaries_held",
		"Remote cluster summaries currently held (fresh within TTL).")

	// Pre-resolved handles: probe results sit on the protocol hot path,
	// and eager registration makes every series visible at 0 on /metrics.
	telProbeAck      = telProbes.With("ack")
	telProbeIndirect = telProbes.With("indirect-ack")
	telProbeTimeout  = telProbes.With("timeout")

	telMembersAlive   = telMembers.With("alive")
	telMembersSuspect = telMembers.With("suspect")
	telMembersDead    = telMembers.With("dead")
)
