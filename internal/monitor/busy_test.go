package monitor

import (
	"math"
	"testing"
	"time"
)

func TestBusyMeterHalfLoaded(t *testing.T) {
	m := NewBusyMeter(16)
	// One 50ms busy period completing every 100ms: 50% busy.
	var now time.Duration
	for i := 1; i <= 32; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.Observe(now, 50*time.Millisecond)
	}
	if got := m.Fraction(now); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("Fraction = %g, want ~0.5", got)
	}
}

func TestBusyMeterSaturated(t *testing.T) {
	m := NewBusyMeter(8)
	// Back-to-back 100ms busy periods: fully busy.
	var now time.Duration
	for i := 1; i <= 16; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.Observe(now, 100*time.Millisecond)
	}
	if got := m.Fraction(now); math.Abs(got-1) > 0.05 {
		t.Fatalf("Fraction = %g, want ~1", got)
	}
}

func TestBusyMeterEmptyAndClamp(t *testing.T) {
	m := NewBusyMeter(4)
	if m.Fraction(0) != 0 {
		t.Fatal("empty meter must report 0")
	}
	m.Observe(time.Second, time.Second)
	if m.Fraction(time.Second) != 0 {
		t.Fatal("single sample must report 0")
	}
	// Two samples at the same instant: saturated by convention.
	m.Observe(time.Second, time.Second)
	if m.Fraction(time.Second) != 1 {
		t.Fatalf("zero-span Fraction = %g, want 1", m.Fraction(time.Second))
	}
}

func TestNodeMonitorCPUReport(t *testing.T) {
	m := NewNodeMonitor(1e6, 1e6, 8)
	m.SetCPU(0.8)
	var now time.Duration
	for i := 1; i <= 16; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.ObserveBusy(now, 25*time.Millisecond)
	}
	r := m.Report(now)
	if r.SpeedFactor != 0.8 {
		t.Fatalf("SpeedFactor = %g", r.SpeedFactor)
	}
	if math.Abs(r.CPUFraction-0.25) > 0.05 {
		t.Fatalf("CPUFraction = %g, want ~0.25", r.CPUFraction)
	}
	if math.Abs(r.AvailCPU()-0.75) > 0.05 {
		t.Fatalf("AvailCPU = %g", r.AvailCPU())
	}
}
