package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func fixedLatency(d time.Duration) func(a, b NodeID) time.Duration {
	return func(a, b NodeID) time.Duration { return d }
}

func TestSendDeliveryTime(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{Latency: fixedLatency(10 * time.Millisecond)})
	a := nw.AddNode(1e6, 1e6) // 1 Mbps both ways
	b := nw.AddNode(1e6, 1e6)
	var arrived time.Duration = -1
	nw.SetHandler(b, func(from NodeID, size int, payload interface{}) {
		arrived = s.Now()
		if from != a {
			t.Errorf("from = %v, want %v", from, a)
		}
		if size != 12500 {
			t.Errorf("size = %d, want 12500", size)
		}
		if payload.(string) != "hello" {
			t.Errorf("payload = %v", payload)
		}
	})
	// 12500 bytes = 100000 bits -> 100ms serialization at 1 Mbps on each
	// link, plus 10ms propagation: 210ms total.
	nw.Send(a, b, 12500, "hello")
	s.Run()
	if arrived != 210*time.Millisecond {
		t.Fatalf("arrival = %v, want 210ms", arrived)
	}
}

func TestSendFIFOSerialization(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{Latency: fixedLatency(0)})
	a := nw.AddNode(1e6, 1e6)
	b := nw.AddNode(1e8, 1e8) // fast receiver so uplink dominates
	var arrivals []time.Duration
	nw.SetHandler(b, func(from NodeID, size int, payload interface{}) {
		arrivals = append(arrivals, s.Now())
	})
	// Two back-to-back 12500-byte messages on a 1 Mbps uplink serialize
	// at 100ms and 200ms.
	nw.Send(a, b, 12500, 1)
	nw.Send(a, b, 12500, 2)
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	if gap < 99*time.Millisecond || gap > 101*time.Millisecond {
		t.Fatalf("inter-arrival gap = %v, want ~100ms (uplink FIFO)", gap)
	}
}

func TestLocalSendSkipsLinks(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{Latency: fixedLatency(50 * time.Millisecond)})
	a := nw.AddNode(1e3, 1e3) // tiny links would take ages
	got := false
	nw.SetHandler(a, func(from NodeID, size int, payload interface{}) { got = true })
	nw.Send(a, a, 1e6, nil)
	s.Run()
	if !got {
		t.Fatal("local message not delivered")
	}
	if s.Now() != 0 {
		t.Fatalf("local delivery took %v, want 0", s.Now())
	}
	if nw.BytesSent(a) != 0 {
		t.Fatalf("local send consumed uplink bytes: %d", nw.BytesSent(a))
	}
}

func TestLossRateDropsEverything(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{Latency: fixedLatency(0), LossRate: 1.0})
	a := nw.AddNode(1e6, 1e6)
	b := nw.AddNode(1e6, 1e6)
	delivered := 0
	nw.SetHandler(b, func(NodeID, int, interface{}) { delivered++ })
	for i := 0; i < 50; i++ {
		nw.SendDroppable(a, b, 100, nil)
	}
	s.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d messages with loss rate 1.0", delivered)
	}
	if nw.Lost != 50 {
		t.Fatalf("Lost = %d, want 50", nw.Lost)
	}
}

func TestByteCounters(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{Latency: fixedLatency(time.Millisecond)})
	a := nw.AddNode(1e6, 1e6)
	b := nw.AddNode(1e6, 1e6)
	nw.Send(a, b, 1000, nil)
	nw.Send(a, b, 500, nil)
	s.Run()
	if nw.BytesSent(a) != 1500 {
		t.Fatalf("BytesSent(a) = %d, want 1500", nw.BytesSent(a))
	}
	if nw.BytesReceived(b) != 1500 {
		t.Fatalf("BytesReceived(b) = %d, want 1500", nw.BytesReceived(b))
	}
}

func TestJitterBoundsDelay(t *testing.T) {
	s := New(7)
	jit := 30 * time.Millisecond
	nw := NewNetwork(s, Config{Latency: fixedLatency(10 * time.Millisecond), Jitter: jit})
	a := nw.AddNode(1e9, 1e9) // negligible serialization
	b := nw.AddNode(1e9, 1e9)
	var arrivals []time.Duration
	nw.SetHandler(b, func(NodeID, int, interface{}) { arrivals = append(arrivals, s.Now()) })
	sendAt := make([]time.Duration, 0, 100)
	for i := 0; i < 100; i++ {
		at := time.Duration(i) * time.Second
		sendAt = append(sendAt, at)
		s.At(at, func() { nw.Send(a, b, 10, nil) })
	}
	s.Run()
	if len(arrivals) != 100 {
		t.Fatalf("delivered %d, want 100", len(arrivals))
	}
	for i, arr := range arrivals {
		d := arr - sendAt[i]
		if d < 10*time.Millisecond || d >= 10*time.Millisecond+jit+time.Millisecond {
			t.Fatalf("message %d delay %v outside [10ms, 40ms)", i, d)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		s := New(99)
		nw := NewNetwork(s, Config{Latency: fixedLatency(5 * time.Millisecond), Jitter: 20 * time.Millisecond, LossRate: 0.1})
		a := nw.AddNode(1e6, 1e6)
		b := nw.AddNode(1e6, 1e6)
		var arrivals []time.Duration
		nw.SetHandler(b, func(NodeID, int, interface{}) { arrivals = append(arrivals, s.Now()) })
		for i := 0; i < 200; i++ {
			s.At(time.Duration(i)*10*time.Millisecond, func() { nw.Send(a, b, 300, nil) })
		}
		s.Run()
		return arrivals
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("replay lengths differ: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

// Property: delivery time is always at least serialization+propagation and
// message payloads arrive intact in FIFO order per sender.
func TestDeliveryOrderProperty(t *testing.T) {
	prop := func(sizes []uint16, seed int64) bool {
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		s := New(seed)
		nw := NewNetwork(s, Config{Latency: fixedLatency(3 * time.Millisecond)})
		a := nw.AddNode(5e5, 5e5)
		b := nw.AddNode(5e5, 5e5)
		var got []int
		nw.SetHandler(b, func(_ NodeID, _ int, p interface{}) { got = append(got, p.(int)) })
		for i, sz := range sizes {
			nw.Send(a, b, int(sz)+1, i)
		}
		s.Run()
		if len(got) != len(sizes) {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanetLabTopologyShape(t *testing.T) {
	cfg := TopologyConfig{Nodes: 32}
	topo := PlanetLabTopology(cfg, 5)
	if len(topo.UpBps) != 32 || len(topo.DownBps) != 32 || len(topo.LatencyMatrix) != 32 {
		t.Fatal("topology has wrong dimensions")
	}
	for i := 0; i < 32; i++ {
		if topo.UpBps[i] < 2e6 || topo.UpBps[i] > 10e6 {
			t.Fatalf("node %d up capacity %g outside [2e6,10e6]", i, topo.UpBps[i])
		}
		if topo.LatencyMatrix[i][i] != 0 {
			t.Fatalf("self latency nonzero for %d", i)
		}
		for j := 0; j < 32; j++ {
			if topo.LatencyMatrix[i][j] != topo.LatencyMatrix[j][i] {
				t.Fatalf("latency not symmetric at (%d,%d)", i, j)
			}
			if i != j && topo.LatencyMatrix[i][j] <= 0 {
				t.Fatalf("non-positive latency at (%d,%d)", i, j)
			}
		}
	}
	// Same seed reproduces, different seed differs somewhere.
	topo2 := PlanetLabTopology(cfg, 5)
	if topo2.UpBps[3] != topo.UpBps[3] {
		t.Fatal("same seed produced different topology")
	}
	topo3 := PlanetLabTopology(cfg, 6)
	same := true
	for i := range topo.UpBps {
		if topo.UpBps[i] != topo3.UpBps[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical capacities")
	}
}

func TestTopologyBuild(t *testing.T) {
	topo := PlanetLabTopology(TopologyConfig{Nodes: 8}, 1)
	s := New(1)
	nw := NewNetwork(s, Config{Latency: topo.LatencyFunc()})
	ids := topo.Build(nw)
	if len(ids) != 8 || nw.NumNodes() != 8 {
		t.Fatalf("built %d nodes, want 8", nw.NumNodes())
	}
	if nw.UpCapacity(ids[2]) != topo.UpBps[2] {
		t.Fatal("capacities not applied")
	}
	if nw.Latency(ids[1], ids[5]) != topo.LatencyMatrix[1][5] {
		t.Fatal("latency function not applied")
	}
}
