package stream

import (
	"sort"
	"time"

	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// AdaptationConfig tunes the origin-side adaptation plane: the "dynamic"
// half of dynamic rate allocation. The origin publishes typed events —
// delivered rate below threshold (periodic sink check), member dead
// (gossip), breaker open (transport), drop-ratio spike (disseminated
// digests) — to a control.Controller, which reallocates rate
// incrementally (core.MinCost.ComposeDelta shifts split ratios away from
// the degraded hosts without restarting the stream) and falls back to a
// full teardown-and-recompose when the delta solve is infeasible.
type AdaptationConfig struct {
	// Interval between delivery-rate checks (default 5s).
	Interval time.Duration
	// AvailabilityInterval is the sampling period of the per-application
	// availability meter feeding rasc_app_time_below_requested_seconds_total
	// and decision convergence marking (default min(Interval, 1s)). The
	// meter samples faster than the adaptation check so the journal's
	// convergence timestamps resolve recovery within a reallocation
	// cooldown, not just at check granularity.
	AvailabilityInterval time.Duration
	// MinRateFraction of the required rate below which a substream
	// publishes RateBelowThreshold (default 0.5).
	MinRateFraction float64
	// Composer used for re-composition (default MinCost). Composers
	// implementing core.DeltaComposer get the incremental path; others
	// always recompose in full.
	Composer core.Composer
	// UpgradeComposer is used for upgrade attempts of streams admitted
	// below their desired rate (default MinCost with best-effort at
	// 50%, so a failed upgrade still re-admits at the achievable rate).
	UpgradeComposer core.Composer
	// Timeout for the re-composition RPCs (default 10s).
	Timeout time.Duration
	// DropSpikeRatio is the disseminated drop ratio at or above which a
	// host's digest publishes DropRatioSpike (0 disables the trigger).
	DropSpikeRatio float64
	// Control tunes the event controller (hysteresis, cooldown, retry
	// backoff, concurrency, DisableIncremental). Clock is set by the
	// engine; Cooldown defaults to 2×Interval and StrikeTTL to
	// 2.5×Interval so strikes mean consecutive degraded checks.
	Control control.Config
}

func (c *AdaptationConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MinRateFraction <= 0 {
		c.MinRateFraction = 0.5
	}
	if c.AvailabilityInterval <= 0 {
		c.AvailabilityInterval = c.Interval
		if c.AvailabilityInterval > time.Second {
			c.AvailabilityInterval = time.Second
		}
	}
	if c.Composer == nil {
		c.Composer = &core.MinCost{}
	}
	if c.UpgradeComposer == nil {
		c.UpgradeComposer = &core.MinCost{BestEffortFraction: 0.5}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Control.Cooldown <= 0 {
		// A check measuring the recovery dip of a reallocation that just
		// landed must fall inside the cooldown, or it would trigger a
		// spurious follow-up.
		c.Control.Cooldown = 2 * c.Interval
	}
	if c.Control.StrikeTTL <= 0 {
		c.Control.StrikeTTL = 2*c.Interval + c.Interval/2
	}
}

// originState tracks one application originated at this engine for
// adaptation purposes.
type originState struct {
	graph *core.ExecutionGraph
	// desired is the request as originally submitted; a best-effort
	// admission may have lowered graph.Request's rates below it.
	desired      spec.Request
	lastReceived map[int]int64
	lastCheck    time.Duration
	// availReceived and availAt are the availability meter's own sink
	// cursors — separate from the adaptation check's so the two sampling
	// loops do not disturb each other's rate windows.
	availReceived map[int]int64
	availAt       time.Duration
}

// admittedBelowDesired reports whether the live graph carries less than
// the originally requested rate.
func (st *originState) admittedBelowDesired() bool {
	if len(st.desired.Substreams) != len(st.graph.Request.Substreams) {
		return false
	}
	for l, ss := range st.desired.Substreams {
		if st.graph.Request.Substreams[l].Rate < ss.Rate {
			return true
		}
	}
	return false
}

// EnableAdaptation starts the periodic delivery-rate check and (re)builds
// the event controller. Calling it again replaces the configuration. The
// loop schedules itself forever; deterministic simulations must advance
// time with RunUntil (not Run) once adaptation is enabled, and should
// DisableAdaptation when draining.
func (e *Engine) EnableAdaptation(cfg AdaptationConfig) {
	cfg.defaults()
	e.DisableAdaptation()
	e.adaptCfg = &cfg
	cc := cfg.Control
	cc.Clock = e.clk
	if cc.Observer == nil {
		cc.Observer = e.ensureTracker()
	}
	e.controller = control.New(cc, e)
	var tick func()
	tick = func() {
		e.checkAdaptation(cfg)
		e.adaptCancel = e.clk.After(cfg.Interval, tick)
	}
	e.adaptCancel = e.clk.After(cfg.Interval, tick)
	var sample func()
	sample = func() {
		e.sampleAvailability(cfg)
		e.availCancel = e.clk.After(cfg.AvailabilityInterval, sample)
	}
	e.availCancel = e.clk.After(cfg.AvailabilityInterval, sample)
}

// DisableAdaptation stops the check loop and closes the controller. The
// membership fast path (OnPeerDead) stays armed: it lazily rebuilds a
// controller from the stored configuration, as before the control plane
// existed.
func (e *Engine) DisableAdaptation() {
	if e.adaptCancel != nil {
		e.adaptCancel()
		e.adaptCancel = nil
	}
	if e.availCancel != nil {
		e.availCancel()
		e.availCancel = nil
	}
	if e.controller != nil {
		e.controller.Close()
		e.controller = nil
	}
}

// adaptConfig returns the stored adaptation configuration, installing the
// defaults when adaptation was never enabled.
func (e *Engine) adaptConfig() *AdaptationConfig {
	if e.adaptCfg == nil {
		c := AdaptationConfig{}
		c.defaults()
		e.adaptCfg = &c
	}
	return e.adaptCfg
}

// ensureController returns the engine's controller, lazily building one
// from the stored configuration for engines that never called
// EnableAdaptation (the member-dead fast path works regardless).
func (e *Engine) ensureController() *control.Controller {
	if e.controller == nil {
		cfg := e.adaptConfig()
		cc := cfg.Control
		cc.Clock = e.clk
		if cc.Observer == nil {
			cc.Observer = e.ensureTracker()
		}
		e.controller = control.New(cc, e)
	}
	return e.controller
}

// Controller exposes the engine's adaptation controller (nil until an
// event or EnableAdaptation builds one) for stats and tests.
func (e *Engine) Controller() *control.Controller { return e.controller }

// Recompositions counts adaptation-triggered reallocation attempts, both
// incremental and full (diagnostics and tests).
func (e *Engine) Recompositions() int64 { return e.recompositions }

// Reallocations counts the incremental (delta-compose) subset of
// Recompositions.
func (e *Engine) Reallocations() int64 { return e.reallocations }

// OnPeerDead publishes a MemberDead event for every origin application:
// the membership fast path, fired by the gossip failure detector well
// before the periodic delivery-rate check would notice the degradation.
func (e *Engine) OnPeerDead(id overlay.ID) {
	e.ensureController().Publish(control.Event{Kind: control.MemberDead, Host: id})
}

// OnBreakerOpen publishes a BreakerOpen event: the transport circuit
// breaker observed consecutive send failures toward the host, an earlier
// signal than the gossip verdict.
func (e *Engine) OnBreakerOpen(id overlay.ID) {
	e.ensureController().Publish(control.Event{Kind: control.BreakerOpen, Host: id})
}

// ObserveHostReport feeds a disseminated monitoring digest into the
// control plane: a drop ratio at or above the configured spike threshold
// publishes DropRatioSpike for the host (the controller's hysteresis
// absorbs isolated noisy digests).
func (e *Engine) ObserveHostReport(id overlay.ID, rep monitor.Report) {
	cfg := e.adaptConfig()
	if cfg.DropSpikeRatio <= 0 || rep.DropRatio < cfg.DropSpikeRatio {
		return
	}
	if len(e.origins) == 0 {
		return
	}
	e.ensureController().Publish(control.Event{Kind: control.DropRatioSpike, Host: id})
}

// checkAdaptation measures every live origin application's delivered rate
// and publishes the resulting events. Origins are visited in sorted order
// so event order — and therefore controller scheduling — is deterministic.
func (e *Engine) checkAdaptation(cfg AdaptationConfig) {
	now := e.clk.Now()
	ids := make([]string, 0, len(e.origins))
	for id := range e.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, reqID := range ids {
		st := e.origins[reqID]
		elapsed := now - st.lastCheck
		if elapsed <= 0 {
			continue
		}
		var degraded []int
		for l, ss := range st.graph.Request.Substreams {
			sink := e.sinks[sinkKey(reqID, l)]
			if sink == nil {
				continue
			}
			got := sink.Received - st.lastReceived[l]
			st.lastReceived[l] = sink.Received
			rate := float64(got) / elapsed.Seconds()
			if rate < cfg.MinRateFraction*float64(ss.Rate) {
				degraded = append(degraded, l)
			}
		}
		st.lastCheck = now
		if len(degraded) > 0 {
			// The sink check knows which substreams starve but not which
			// host is at fault; with no one to shift away from, the
			// controller goes straight to a full recompose.
			e.controller.Publish(control.Event{
				Kind: control.RateBelowThreshold, App: reqID, Substreams: degraded,
			})
			continue
		}
		// Upgrade path: a healthy application admitted below its desired
		// rate retries composition at the full requirement — capacity
		// may have freed since admission (dynamic rate allocation).
		if st.admittedBelowDesired() {
			// Unless the tenancy gate still caps the application below
			// its desired rate: the re-submit would clamp right back to
			// the cap, so the recompose would churn for nothing. Cap
			// increases arrive as fair_share_changed events instead.
			if e.tenantGate != nil {
				if cap, ok := e.tenantGate.CapBps(reqID); ok &&
					cap < st.desired.BitsPerSecond(st.desired.TotalRate())-1e-6 {
					continue
				}
			}
			e.controller.Publish(control.Event{Kind: control.UpgradePossible, App: reqID})
		}
	}
}

// sampleAvailability measures every origin application's delivered rate
// over the availability window. Time spent below MinRateFraction of the
// live request accrues into rasc_app_time_below_requested_seconds_total —
// the paper's availability objective as a directly scrapeable counter — and
// a window back at or above threshold marks the application's completed
// decisions converged in the journal.
func (e *Engine) sampleAvailability(cfg AdaptationConfig) {
	now := e.clk.Now()
	ids := make([]string, 0, len(e.origins))
	for id := range e.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, app := range ids {
		st := e.origins[app]
		elapsed := now - st.availAt
		if elapsed <= 0 {
			continue
		}
		if st.availReceived == nil {
			st.availReceived = make(map[int]int64)
		}
		var got int64
		var want int64
		// The availability objective is measured against the rate the
		// user asked for, not the (possibly fair-share-capped or
		// best-effort) rate the live graph carries: a tenant downgraded
		// under contention is below its requested rate even while it
		// delivers its cap perfectly.
		wantSubs := st.graph.Request.Substreams
		if len(st.desired.Substreams) == len(wantSubs) {
			wantSubs = st.desired.Substreams
		}
		for l := range st.graph.Request.Substreams {
			want += int64(wantSubs[l].Rate)
			sink := e.sinks[sinkKey(app, l)]
			if sink == nil {
				continue
			}
			d := sink.Received - st.availReceived[l]
			if d < 0 {
				// The sink was replaced by a full recompose and its
				// counter restarted.
				d = sink.Received
			}
			st.availReceived[l] = sink.Received
			got += d
		}
		st.availAt = now
		rate := float64(got) / elapsed.Seconds()
		if rate < cfg.MinRateFraction*float64(want) {
			telAppTimeBelow.With(app).AddDuration(elapsed)
		} else if e.journal != nil {
			e.journal.Converge(app, now)
		}
	}
	// Applications torn down by a full recompose have no origin state, so
	// the loop above cannot see them: charge their downtime here and move
	// the cursor so re-activation only pays the remainder.
	down := make([]string, 0, len(e.availDown))
	for app := range e.availDown {
		down = append(down, app)
	}
	sort.Strings(down)
	for _, app := range down {
		if _, ok := e.origins[app]; ok {
			delete(e.availDown, app)
			continue
		}
		if elapsed := now - e.availDown[app]; elapsed > 0 {
			telAppTimeBelow.With(app).AddDuration(elapsed)
			e.availDown[app] = now
		}
	}
}

// Recompose implements control.Actions: tear the application down and
// submit it again with fresh discovery and monitoring state. The request
// keeps its ID; its sinks are replaced, so delivery statistics restart
// from the re-composition.
func (e *Engine) Recompose(app string, upgrade bool, done func(error)) {
	st, ok := e.origins[app]
	if !ok {
		done(control.ErrUnknownApp)
		return
	}
	cfg := e.adaptConfig()
	composer := cfg.Composer
	if upgrade {
		composer = cfg.UpgradeComposer
	}
	e.recompositions++
	req := st.desired
	if req.ID == "" {
		req = st.graph.Request
	}
	oldGraph := st.graph
	desired := st.desired
	// Internal teardown: the tenant keeps its admission through the
	// recompose (the re-submit re-admits idempotently at the current cap).
	e.teardown(st.graph, cfg.Timeout)
	delete(e.origins, app)
	// The application delivers nothing between teardown and the new
	// graph's activation; charge that whole window to the availability
	// meter even when it is shorter than one sampling period.
	e.availDown[app] = e.clk.Now()
	// Route the re-composition's solver stats to the open decision trace:
	// compose() picks the capture up by request ID.
	e.composeCapture[app] = &core.ComposeStats{}
	e.Submit(req, composer, cfg.Timeout, func(g *core.ExecutionGraph, err error) {
		delete(e.composeCapture, app)
		if at, ok := e.availDown[app]; ok {
			delete(e.availDown, app)
			if d := e.clk.Now() - at; d > 0 {
				telAppTimeBelow.With(app).AddDuration(d)
			}
		}
		if err != nil {
			// Nothing composable right now — e.g. a lookup routed
			// through a just-failed node. Re-register the old state so
			// the controller's backoff retry finds it; by then the
			// failed RPCs have pruned the dead peer from the routing
			// tables.
			e.origins[app] = &originState{
				graph:        oldGraph,
				desired:      desired,
				lastReceived: make(map[int]int64),
				lastCheck:    e.clk.Now(),
				// The old sinks survive teardown, so the availability
				// meter keeps its cursors instead of re-counting their
				// lifetime totals as one window's delivery.
				availReceived: st.availReceived,
				availAt:       e.clk.Now(),
			}
		}
		done(err)
	})
}
