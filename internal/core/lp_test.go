package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
)

func TestLPMatchesMinCostOnUnitRatios(t *testing.T) {
	in := baseInput(req1(10, "filter", "transcode"))
	in.Catalog = services.Standard()
	in.Candidates["filter"] = []Candidate{
		cand(1, 1000*kbit, 0.1),
		cand(2, 1000*kbit, 0.0),
	}
	in.Candidates["transcode"] = []Candidate{
		cand(3, 60*kbit, 0.0),
		cand(4, 1000*kbit, 0.2),
	}
	flowGraph, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	lpGraph, err := (LP{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(lpGraph, in.Catalog); err != nil {
		t.Fatal(err)
	}
	cost := func(g *ExecutionGraph) float64 {
		total := 0.0
		drops := map[string]float64{
			testHost(1).ID.String(): 0.1,
			testHost(2).ID.String(): 0,
			testHost(3).ID.String(): 0,
			testHost(4).ID.String(): 0.2,
		}
		for _, p := range g.Placements {
			total += p.Rate * drops[p.Host.ID.String()]
		}
		return total
	}
	if math.Abs(cost(flowGraph)-cost(lpGraph)) > 1e-6 {
		t.Fatalf("LP cost %g != flow cost %g on a ratio-1 instance", cost(lpGraph), cost(flowGraph))
	}
}

func TestLPHandlesDownsampling(t *testing.T) {
	// downsample halves the rate: delivering 5 units/sec to the user
	// requires ingesting 10.
	req := spec.Request{
		ID:        "lp1",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"downsample"}, Rate: 5},
		},
	}
	in := baseInput(req)
	in.Catalog = services.Extended()
	in.Candidates["downsample"] = []Candidate{cand(1, 1000*kbit, 0)}
	g, err := (LP{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, in.Catalog); err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 1 {
		t.Fatalf("placements = %+v", g.Placements)
	}
	if math.Abs(g.Placements[0].Rate-10) > 1e-6 {
		t.Fatalf("input rate = %g, want 10 (to deliver 5 after halving)", g.Placements[0].Rate)
	}
	// The destination edge must carry exactly 5.
	for _, e := range g.Edges {
		if e.ToStage == 1 && math.Abs(e.Rate-5) > 1e-6 {
			t.Fatalf("delivery edge rate = %g, want 5", e.Rate)
		}
	}
}

func TestLPSplitsUnderCapacity(t *testing.T) {
	in := baseInput(req1(10, "transcode"))
	in.Catalog = services.Standard()
	in.Candidates["transcode"] = []Candidate{
		cand(1, 60*kbit, 0),
		cand(2, 60*kbit, 0),
	}
	g, err := (LP{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 2 {
		t.Fatalf("LP did not split: %+v", g.Placements)
	}
	total := 0.0
	for _, p := range g.Placements {
		total += p.Rate
	}
	if math.Abs(total-10) > 1e-6 {
		t.Fatalf("total = %g", total)
	}
}

func TestLPExactSharedHostConstraint(t *testing.T) {
	// One host offers both chain services with bandwidth for 10
	// units/sec total. A chain of two stages at rate 10 would need 20
	// units/sec of its input bandwidth if both stages landed there: the
	// exact LP must route stages onto both hosts or reject — never
	// overcommit.
	in := baseInput(req1(8, "filter", "aggregate"))
	in.Catalog = services.Standard()
	shared := cand(1, 100*kbit, 0) // 10 units/sec each direction
	other := cand(2, 100*kbit, 0.5)
	in.Candidates["filter"] = []Candidate{shared, other}
	in.Candidates["aggregate"] = []Candidate{shared, other}
	g, err := (LP{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	// Verify per-host input bandwidth: sum of placement rates on host 1
	// must be ≤ 10 units/sec.
	var onShared float64
	for _, p := range g.Placements {
		if p.Host.ID == testHost(1).ID {
			onShared += p.Rate
		}
	}
	if onShared > 10+1e-6 {
		t.Fatalf("LP overcommitted shared host: %g units/sec", onShared)
	}
}

func TestLPInfeasible(t *testing.T) {
	in := baseInput(req1(50, "filter"))
	in.Catalog = services.Standard()
	in.Candidates["filter"] = []Candidate{cand(1, 60*kbit, 0)}
	if _, err := (LP{}).Compose(in); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

func TestLPUnknownService(t *testing.T) {
	in := baseInput(req1(5, "mystery"))
	in.Catalog = services.Standard()
	if _, err := (LP{}).Compose(in); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v", err)
	}
}

func TestLPMultiSubstreamBudgets(t *testing.T) {
	// Two substreams share a single host's bandwidth; budgets must carry
	// over between substreams.
	req := spec.Request{
		ID:        "lp2",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter"}, Rate: 6},
			{Services: []string{"filter"}, Rate: 6},
		},
	}
	in := baseInput(req)
	in.Catalog = services.Standard()
	in.Candidates["filter"] = []Candidate{
		cand(1, 80*kbit, 0),
		cand(2, 100*kbit, 0.1),
	}
	g, err := (LP{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[string]float64{}
	for _, p := range g.Placements {
		perHost[p.Host.ID.String()] += p.Rate
	}
	if perHost[testHost(1).ID.String()] > 8+1e-6 {
		t.Fatalf("host 1 over budget: %g", perHost[testHost(1).ID.String()])
	}
}

// TestLPAndFlowAgreeOnFeasibility: on random unit-ratio instances the LP
// (exact per-node budgets) must admit whenever the flow reduction admits —
// the flow model is the more permissive of the two only when a host is
// shared across stages, where it may overcommit; in all other cases the
// two must agree, and the LP must never admit something the flow model
// proves infeasible on disjoint hosts.
func TestLPAndFlowAgreeOnFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	agree, lpStricter := 0, 0
	for trial := 0; trial < 60; trial++ {
		nHosts := 2 + rng.Intn(5)
		nStages := 1 + rng.Intn(3)
		rate := 2 + rng.Intn(10)
		chain := make([]string, nStages)
		for j := range chain {
			chain[j] = fmt.Sprintf("s%d", j)
		}
		in := baseInput(req1(rate, chain...))
		in.Catalog = services.Standard()
		var cands []Candidate
		for h := 0; h < nHosts; h++ {
			cands = append(cands, cand(h, float64(1+rng.Intn(15))*10*kbit, rng.Float64()*0.2))
		}
		for _, svc := range chain {
			in.Candidates[svc] = cands
		}
		_, flowErr := (&MinCost{}).Compose(in)
		_, lpErr := (LP{}).Compose(in)
		switch {
		case (flowErr == nil) == (lpErr == nil):
			agree++
		case flowErr == nil && lpErr != nil:
			// The flow model double-counts shared hosts across stages;
			// the exact LP may reject those instances.
			lpStricter++
		default:
			t.Fatalf("trial %d: LP admitted what the flow model rejected (flow: %v)", trial, flowErr)
		}
	}
	if agree == 0 {
		t.Fatal("no agreement at all; generator broken")
	}
	t.Logf("feasibility: %d agree, %d LP-stricter (shared-host cases)", agree, lpStricter)
}
