package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceMetricsCatalogue pins the rasc_trace_* and rasc_decision*
// family catalogue (# HELP / # TYPE lines) exposed on /metrics. Values
// are process-global and order-dependent across tests, so the golden
// captures the catalogue, not samples.
func TestTraceMetricsCatalogue(t *testing.T) {
	// Drive every family at least once: a unit-buffer eviction, a journal
	// eviction, a completed decision (counter + latency histogram), and a
	// convergence observation.
	b := NewBuffer(1)
	b.Append(Event{Kind: KindEmit})
	b.Append(Event{Kind: KindDeliver})

	j := NewJournal(1)
	for i := 0; i < 2; i++ {
		a := j.Begin(time.Duration(i)*time.Second, "app", "member_dead", "")
		a.Complete(time.Duration(i)*time.Second+time.Millisecond, "incremental", nil)
	}
	j.Converge("app", 3*time.Second)

	exp := telemetry.Default().String()
	var got strings.Builder
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, "# HELP rasc_trace_") || strings.HasPrefix(line, "# TYPE rasc_trace_") ||
			strings.HasPrefix(line, "# HELP rasc_decision") || strings.HasPrefix(line, "# TYPE rasc_decision") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "trace_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("trace catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	for _, name := range []string{
		"rasc_trace_evicted_total",
		"rasc_decision_journal_evicted_total",
		"rasc_decisions_total",
		"rasc_decision_latency_seconds",
		"rasc_decision_convergence_seconds",
	} {
		if !strings.Contains(exp, name) {
			t.Errorf("%s missing from exposition", name)
		}
	}
}
