package experiment

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelForVisitsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		var hits [40]int32
		if err := ParallelFor(len(hits), workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		err := ParallelFor(20, workers, func(i int) error {
			if i == 4 || i == 11 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 4 failed" {
			t.Fatalf("workers=%d: err = %v, want cell 4", workers, err)
		}
	}
}

func TestParallelForZeroItems(t *testing.T) {
	if err := ParallelFor(0, 8, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

// TestRunParallelMatchesSerial is the tentpole determinism contract: the
// same sweep at Parallelism 1 and Parallelism 4 must produce identical
// Runs in identical order (Telemetry is process-global and excluded).
func TestRunParallelMatchesSerial(t *testing.T) {
	cfg := quickCfg()
	cfg.Seeds = []int64{1, 2}
	cfg.Rates = []int{5, 8}

	cfg.Parallelism = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts diverged: %d vs %d", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		if !reflect.DeepEqual(serial.Runs[i], parallel.Runs[i]) {
			t.Fatalf("run %d diverged under parallelism:\nserial:   %+v\nparallel: %+v",
				i, serial.Runs[i], parallel.Runs[i])
		}
	}
	if !strings.Contains(parallel.Telemetry, "rasc_experiment_sweep_parallelism 4") {
		t.Error("sweep parallelism gauge missing from telemetry snapshot")
	}
}
