package overlay

import (
	"encoding/json"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

func twoNodes(t *testing.T) (*Node, *Node, *netsim.Simulator) {
	t.Helper()
	sim := netsim.New(1)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 5 * time.Millisecond },
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	a := NewNode(HashID("edge-a"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
	b := NewNode(HashID("edge-b"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
	return a, b, sim
}

func TestJoinTwiceIsHarmless(t *testing.T) {
	a, b, sim := twoNodes(t)
	a.Bootstrap()
	calls := 0
	b.Join(a.Addr(), func() { calls++ })
	sim.Run()
	b.Join(a.Addr(), func() { calls++ })
	sim.Run()
	if calls != 2 {
		t.Fatalf("join callbacks = %d, want 2", calls)
	}
	if !b.Joined() {
		t.Fatal("not joined after double join")
	}
}

func TestBootstrapThenRouteSelf(t *testing.T) {
	a, _, sim := twoNodes(t)
	a.Bootstrap()
	got := false
	a.Register("self", func(ID, NodeInfo, []byte) { got = true })
	a.Route(HashID("any-key"), "self", nil)
	sim.Run()
	if !got {
		t.Fatal("single-node overlay did not deliver to itself")
	}
}

func TestRequestToSelf(t *testing.T) {
	a, _, sim := twoNodes(t)
	a.Bootstrap()
	a.RegisterRequest("echo", func(_ NodeInfo, body []byte, respond func([]byte, string)) {
		respond(body, "")
	})
	var got []byte
	a.Request(a.Addr(), "echo", []byte("loop"), time.Second, func(b []byte, err error) {
		if err != nil {
			t.Errorf("self request: %v", err)
		}
		got = b
	})
	sim.Run()
	if string(got) != "loop" {
		t.Fatalf("got %q", got)
	}
}

func TestHandlerRespondTwiceIgnored(t *testing.T) {
	a, b, sim := twoNodes(t)
	a.Bootstrap()
	b.Join(a.Addr(), nil)
	sim.Run()
	b.RegisterRequest("dup", func(_ NodeInfo, _ []byte, respond func([]byte, string)) {
		respond([]byte("first"), "")
		respond([]byte("second"), "") // must be swallowed
	})
	calls := 0
	var got []byte
	a.Request(b.Addr(), "dup", nil, time.Second, func(body []byte, err error) {
		calls++
		got = body
	})
	sim.Run()
	if calls != 1 {
		t.Fatalf("callback ran %d times", calls)
	}
	if string(got) != "first" {
		t.Fatalf("got %q", got)
	}
}

func TestEnvelopeJSONStability(t *testing.T) {
	// The wire format must round-trip every populated field.
	env := envelope{
		Kind:  kindRoute,
		App:   "app",
		Key:   HashID("k"),
		Src:   NodeInfo{ID: HashID("src"), Addr: "sim://1"},
		Hops:  3,
		Body:  []byte("payload"),
		ReqID: 42,
		Ack:   7,
		Err:   "oops",
		Nodes: []NodeInfo{{ID: HashID("n"), Addr: "sim://2"}},
	}
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var back envelope
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != env.Kind || back.App != env.App || back.Key != env.Key ||
		back.Hops != env.Hops || string(back.Body) != "payload" ||
		back.ReqID != 42 || back.Ack != 7 || back.Err != "oops" ||
		len(back.Nodes) != 1 || back.Nodes[0].ID != env.Nodes[0].ID {
		t.Fatalf("round trip mangled envelope: %+v", back)
	}
}

func TestMonitorReportJSONRoundTrip(t *testing.T) {
	// The stats RPC ships monitor.Report as JSON; spot-check through the
	// overlay request path that arbitrary bodies survive.
	a, b, sim := twoNodes(t)
	a.Bootstrap()
	b.Join(a.Addr(), nil)
	sim.Run()
	payload := []byte(`{"at":123,"inBpsCap":1000000,"components":{"c1":{"service":"filter"}}}`)
	b.RegisterRequest("stats-like", func(_ NodeInfo, _ []byte, respond func([]byte, string)) {
		respond(payload, "")
	})
	var got []byte
	a.Request(b.Addr(), "stats-like", nil, time.Second, func(body []byte, err error) { got = body })
	sim.Run()
	if string(got) != string(payload) {
		t.Fatalf("payload mangled: %s", got)
	}
}
