package live

import (
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
)

// scaledClock runs a base clock at a multiple of real time: Now advances
// scale× faster and timers fire after wall-duration d/scale. Injecting it
// into Config.Clock proves the off-loop waits (join handshake, submit
// drain) run on the node's clock rather than raw time.After.
type scaledClock struct {
	base  clock.Clock
	scale int64
}

func (c scaledClock) Now() time.Duration { return c.base.Now() * time.Duration(c.scale) }

func (c scaledClock) After(d time.Duration, fn func()) func() {
	real := d / time.Duration(c.scale)
	if real <= 0 {
		real = time.Nanosecond
	}
	return c.base.After(real, fn)
}

func TestLiveJoinTimeoutRunsOnInjectedClock(t *testing.T) {
	// A 30-second join timeout against an unreachable bootstrap. Under the
	// old time.After implementation this test would block for the full 30
	// wall-seconds; on the injected 100× clock it must give up in ~300ms.
	start := time.Now()
	_, err := Start(Config{
		Listen:      "127.0.0.1:0",
		Name:        "live-clock-test",
		Bootstrap:   "127.0.0.1:1", // reserved port, nothing listens
		JoinTimeout: 30 * time.Second,
		Clock:       scaledClock{base: clock.NewReal(), scale: 100},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("join against unreachable bootstrap succeeded")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("expected join timeout error, got: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("join timeout took %v wall time; the wait is not running on the injected clock", elapsed)
	}
}
