package sched

import (
	"fmt"
	"testing"
	"time"
)

// TestFIFOOrderAndDrops pins the behaviour the ring refactor must keep:
// arrival order, deadline drops, and capacity rejection.
func TestFIFOOrderAndDrops(t *testing.T) {
	q := NewFIFO(3)
	a := unit("a", 100*time.Millisecond, 5*time.Millisecond)
	late := unit("late", 10*time.Millisecond, 5*time.Millisecond)
	b := unit("b", 200*time.Millisecond, 5*time.Millisecond)
	for _, u := range []*Unit{a, late, b} {
		if !q.Push(u) {
			t.Fatalf("push %s rejected", u.ComponentKey)
		}
	}
	if q.Push(unit("overflow", time.Second, 0)) {
		t.Fatal("push beyond capacity accepted")
	}
	got, dropped := q.Next(20 * time.Millisecond)
	if got != a || len(dropped) != 0 {
		t.Fatalf("Next = %v dropped %v, want a", got, dropped)
	}
	got, dropped = q.Next(20 * time.Millisecond)
	if got != b || len(dropped) != 1 || dropped[0] != late {
		t.Fatalf("Next = %v dropped %v, want b with [late]", got, dropped)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	if got, dropped := q.Next(0); got != nil || dropped != nil {
		t.Fatalf("Next on empty = %v %v", got, dropped)
	}
}

// TestFIFONextReleasesPoppedSlots is the leak regression test: after a
// pop, the queue must not retain the unit through its backing array
// (`units = units[1:]` kept every popped pointer alive until the array
// itself was dropped). The head-index ring nils the slot, so inspecting
// the full backing capacity must find no popped unit.
func TestFIFONextReleasesPoppedSlots(t *testing.T) {
	q := NewFIFO(0).(*fifo)
	popped := map[*Unit]bool{}
	for i := 0; i < 256; i++ {
		q.Push(unit(fmt.Sprintf("u%d", i), time.Hour, 0))
		// Drain every other iteration so head and tail both move and the
		// compaction path (head > 32, head > len/2) gets exercised.
		if i%2 == 1 {
			u, _ := q.Next(0)
			if u == nil {
				t.Fatalf("iter %d: queue unexpectedly empty", i)
			}
			popped[u] = true
		}
	}
	backing := q.units[:cap(q.units)]
	for i, u := range backing {
		if u != nil && popped[u] {
			t.Fatalf("backing slot %d still pins popped unit %q", i, u.ComponentKey)
		}
	}
	if live := q.Len(); live != 128 {
		t.Fatalf("Len = %d, want 128", live)
	}
	// Drain fully and confirm arrival order survived the compactions.
	prev := -1
	for q.Len() > 0 {
		u, _ := q.Next(0)
		var n int
		if _, err := fmt.Sscanf(u.ComponentKey, "u%d", &n); err != nil {
			t.Fatal(err)
		}
		if n <= prev {
			t.Fatalf("order violated: %d after %d", n, prev)
		}
		prev = n
	}
}

// TestFIFOBackingDoesNotGrowUnbounded verifies the compaction: steady
// push/pop traffic must not grow the buffer with the total unit count.
func TestFIFOBackingDoesNotGrowUnbounded(t *testing.T) {
	q := NewFIFO(0).(*fifo)
	for i := 0; i < 10_000; i++ {
		q.Push(unit("u", time.Hour, 0))
		q.Next(0)
	}
	if c := cap(q.units); c > 1024 {
		t.Fatalf("backing array grew to %d slots under steady 1-deep traffic", c)
	}
}
