package monitor

import (
	"math"
	"testing"
	"time"
)

func TestNodeMonitorReport(t *testing.T) {
	m := NewNodeMonitor(1e6, 2e6, 16)
	m.SetQueueLenFunc(func() int { return 3 })
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.ObserveArrival("c1", "filter", now, 1250) // 100 kbps inbound
		m.ObserveProcessed("c1", "filter", 5*time.Millisecond)
		m.ObserveSend(now, 2500) // 200 kbps outbound
	}
	r := m.Report(now)
	if r.At != now {
		t.Fatalf("At = %v", r.At)
	}
	if math.Abs(r.InBpsUsed-100_000) > 100 {
		t.Fatalf("InBpsUsed = %g, want ~100000", r.InBpsUsed)
	}
	if math.Abs(r.OutBpsUsed-200_000) > 200 {
		t.Fatalf("OutBpsUsed = %g, want ~200000", r.OutBpsUsed)
	}
	if math.Abs(r.AvailIn()-(1e6-r.InBpsUsed)) > 1e-9 {
		t.Fatal("AvailIn inconsistent")
	}
	if r.QueueLen != 3 {
		t.Fatalf("QueueLen = %d", r.QueueLen)
	}
	cs, ok := r.Components["c1"]
	if !ok {
		t.Fatal("component missing from report")
	}
	if cs.Service != "filter" {
		t.Fatalf("Service = %q", cs.Service)
	}
	if math.Abs(cs.ArrivalRate-10) > 1e-6 {
		t.Fatalf("ArrivalRate = %g, want 10", cs.ArrivalRate)
	}
	if cs.MeanProc != 5*time.Millisecond {
		t.Fatalf("MeanProc = %v", cs.MeanProc)
	}
	if cs.Processed != 20 || cs.Arrived != 20 || cs.Dropped != 0 {
		t.Fatalf("counters = %+v", cs)
	}
	if av := r.Availability(); len(av) != 2 || av[0] != r.AvailIn() || av[1] != r.AvailOut() {
		t.Fatalf("Availability = %v", av)
	}
}

func TestDropRatioTracksWindow(t *testing.T) {
	m := NewNodeMonitor(1e6, 1e6, 10)
	for i := 0; i < 5; i++ {
		m.ObserveProcessed("c", "s", time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		m.ObserveDrop("c", "s")
	}
	if got := m.DropRatio(); got != 0.5 {
		t.Fatalf("DropRatio = %g, want 0.5", got)
	}
	r := m.Report(0)
	if r.Components["c"].DropRatio != 0.5 {
		t.Fatalf("component DropRatio = %g", r.Components["c"].DropRatio)
	}
	if r.Components["c"].Dropped != 5 {
		t.Fatalf("Dropped = %d", r.Components["c"].Dropped)
	}
}

func TestAvailabilityClampsAtZero(t *testing.T) {
	m := NewNodeMonitor(1000, 1000, 4)
	// Overdrive the link: usage above capacity.
	m.ObserveArrival("c", "s", 0, 100_000)
	m.ObserveArrival("c", "s", time.Second, 100_000)
	r := m.Report(time.Second)
	if r.AvailIn() != 0 {
		t.Fatalf("AvailIn = %g, want 0 (clamped)", r.AvailIn())
	}
}

func TestPerComponentIsolation(t *testing.T) {
	m := NewNodeMonitor(1e6, 1e6, 8)
	for i := 0; i < 10; i++ {
		m.ObserveArrival("a", "sa", time.Duration(i)*10*time.Millisecond, 100)  // 100/s
		m.ObserveArrival("b", "sb", time.Duration(i)*100*time.Millisecond, 100) // 10/s
	}
	if ra, rb := m.ArrivalRate("a"), m.ArrivalRate("b"); math.Abs(ra-100) > 1e-6 || math.Abs(rb-10) > 1e-6 {
		t.Fatalf("rates = %g, %g", ra, rb)
	}
	if m.Period("b") != 100*time.Millisecond {
		t.Fatalf("Period(b) = %v", m.Period("b"))
	}
	if m.ArrivalRate("unknown") != 0 || m.Period("unknown") != 0 || m.MeanProc("unknown") != 0 {
		t.Fatal("unknown component must report zeros")
	}
}
