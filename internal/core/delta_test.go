package core

import (
	"errors"
	"reflect"
	"testing"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// TestComposeDeltaEmptyResidualBitIdentical pins the fidelity contract of
// the incremental path: with no prior graph, no degraded hosts and every
// substream affected, ComposeDelta must produce output bit-identical to
// Compose — across shapes, seeds and scratch-pool reuse.
func TestComposeDeltaEmptyResidualBitIdentical(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		for _, hosts := range []int{3, 8, 16} {
			in := topkInput(hosts, 10+seed, "filter", "transcode", "encrypt")
			full, err := (&MinCost{}).Compose(in)
			if err != nil {
				t.Fatalf("seed %d hosts %d: %v", seed, hosts, err)
			}
			delta, err := (&MinCost{}).ComposeDelta(in, nil, nil, nil)
			if err != nil {
				t.Fatalf("seed %d hosts %d: delta: %v", seed, hosts, err)
			}
			if !reflect.DeepEqual(full, delta) {
				t.Fatalf("seed %d hosts %d: empty-residual ComposeDelta diverged:\n%+v\n%+v",
					seed, hosts, full, delta)
			}
		}
	}
}

// deltaScenario composes a two-host split and returns the input and graph:
// each host alone is too small for the rate, so the flow splits across
// both.
func deltaScenario(t *testing.T) (Input, *ExecutionGraph) {
	t.Helper()
	in := baseInput(req1(10, "filter"))
	// 60 + 60 kbps for a 100 kbps substream: the composer must split.
	in.Candidates["filter"] = []Candidate{cand(1, 60*kbit, 0), cand(2, 60*kbit, 0)}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 2 {
		t.Fatalf("scenario wants a 2-way split, got %d placements", len(g.Placements))
	}
	return in, g
}

// TestComposeDeltaShiftsAwayFromDegraded kills one of the two split hosts
// and checks the delta solve routes the displaced share to a replacement
// while the surviving placement keeps (at least) its prior flow at zero
// cost — even though the survivor's *measured* availability alone could
// not carry its residual plus the displaced share.
func TestComposeDeltaShiftsAwayFromDegraded(t *testing.T) {
	in, prev := deltaScenario(t)
	// Post-failure monitoring state: the survivor (host 1) now carries its
	// share, so its measured availability shrank; host 3 appears fresh.
	dead := testHost(2).ID
	in.Candidates["filter"] = []Candidate{
		cand(1, 10*kbit, 0), // survivor: mostly used by its current flow
		cand(2, 60*kbit, 0), // degraded — must be excluded
		cand(3, 50*kbit, 0), // replacement capacity
	}
	degraded := map[overlay.ID]bool{dead: true}
	g, err := (&MinCost{}).ComposeDelta(in, prev, degraded, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	var survivorPrior float64
	for _, p := range prev.Placements {
		if p.Host.ID == testHost(1).ID {
			survivorPrior = p.Rate
		}
	}
	var survivorNow, replacementNow float64
	for _, p := range g.Placements {
		switch p.Host.ID {
		case dead:
			t.Fatalf("degraded host still placed: %+v", p)
		case testHost(1).ID:
			survivorNow = p.Rate
		case testHost(3).ID:
			replacementNow = p.Rate
		}
	}
	if survivorNow < survivorPrior {
		t.Fatalf("survivor flow fell from %g to %g; residual seeding should keep it", survivorPrior, survivorNow)
	}
	if replacementNow <= 0 {
		t.Fatal("displaced share never reached the replacement host")
	}
}

// TestComposeDeltaInfeasibleFallsOut verifies the incremental solve
// reports ErrNoFeasiblePlacement (the full-recompose fallback trigger)
// when the surviving hosts cannot absorb the displaced rate.
func TestComposeDeltaInfeasibleFallsOut(t *testing.T) {
	in, prev := deltaScenario(t)
	dead := testHost(2).ID
	in.Candidates["filter"] = []Candidate{
		cand(1, 10*kbit, 0), // survivor alone cannot absorb the other half
		cand(2, 60*kbit, 0),
	}
	_, err := (&MinCost{}).ComposeDelta(in, prev, map[overlay.ID]bool{dead: true}, []int{0})
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

// TestComposeDeltaAllProvidersDegraded covers the edge where the degraded
// set swallows a whole stage.
func TestComposeDeltaAllProvidersDegraded(t *testing.T) {
	in, prev := deltaScenario(t)
	degraded := map[overlay.ID]bool{testHost(1).ID: true, testHost(2).ID: true}
	_, err := (&MinCost{}).ComposeDelta(in, prev, degraded, []int{0})
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

// TestComposeDeltaCopiesUnaffectedSubstreams re-solves only substream 1 of
// a two-substream request and checks substream 0 comes back verbatim, with
// its capacity use still accounted against the shared hosts.
func TestComposeDeltaCopiesUnaffectedSubstreams(t *testing.T) {
	req := spec.Request{
		ID:        "r2",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter"}, Rate: 6},
			{Services: []string{"filter"}, Rate: 6},
		},
	}
	in := baseInput(req)
	in.Candidates["filter"] = []Candidate{cand(1, 120*kbit, 0), cand(2, 120*kbit, 0)}
	prev, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	g, err := (&MinCost{}).ComposeDelta(in, prev, nil, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	filter := func(ps []Placement, l int) []Placement {
		var out []Placement
		for _, p := range ps {
			if p.Substream == l {
				out = append(out, p)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(prev.Placements, 0), filter(g.Placements, 0)) {
		t.Fatalf("unaffected substream 0 changed:\nprev %+v\ndelta %+v",
			filter(prev.Placements, 0), filter(g.Placements, 0))
	}
}
