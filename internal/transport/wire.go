package transport

import (
	"encoding/binary"
	"errors"
)

// The TCP transport and the Resilient batch envelope share a compact
// binary message encoding — the control hot path moves enough small frames
// that JSON marshalling (and base64 for nested payloads) dominated CPU:
//
//	u16 type len | type | u32 payload len | payload | u32 pad | u8 flags
//
// A TCP wire frame prefixes the sender address (u16 len | addr) and a
// batch envelope is simply messages back to back.

// errMalformedFrame reports a wire frame that fails structural validation.
var errMalformedFrame = errors.New("transport: malformed wire frame")

const flagDatagram = 1 << 0

// appendMessage appends msg in wire form.
func appendMessage(buf []byte, msg Message) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg.Type)))
	buf = append(buf, msg.Type...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(msg.Payload)))
	buf = append(buf, msg.Payload...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(msg.Pad))
	var flags byte
	if msg.Datagram {
		flags |= flagDatagram
	}
	return append(buf, flags)
}

// readMessage decodes one message from buf and returns the remainder. The
// decoded payload aliases buf, which callers must not reuse.
func readMessage(buf []byte) (Message, []byte, error) {
	var msg Message
	if len(buf) < 2 {
		return msg, nil, errMalformedFrame
	}
	tlen := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < tlen {
		return msg, nil, errMalformedFrame
	}
	msg.Type = string(buf[:tlen])
	buf = buf[tlen:]
	if len(buf) < 4 {
		return msg, nil, errMalformedFrame
	}
	plen := int(binary.BigEndian.Uint32(buf))
	buf = buf[4:]
	if plen > maxFrameSize || len(buf) < plen {
		return msg, nil, errMalformedFrame
	}
	if plen > 0 {
		msg.Payload = buf[:plen:plen]
	}
	buf = buf[plen:]
	if len(buf) < 5 {
		return msg, nil, errMalformedFrame
	}
	msg.Pad = int(binary.BigEndian.Uint32(buf))
	msg.Datagram = buf[4]&flagDatagram != 0
	return msg, buf[5:], nil
}

// appendTCPFrame appends a full TCP frame body (sender address + message);
// the 4-byte length prefix is the caller's.
func appendTCPFrame(buf []byte, from Addr, msg Message) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(from)))
	buf = append(buf, from...)
	return appendMessage(buf, msg)
}

// readTCPFrame decodes a full TCP frame body.
func readTCPFrame(buf []byte) (Addr, Message, error) {
	if len(buf) < 2 {
		return "", Message{}, errMalformedFrame
	}
	alen := int(binary.BigEndian.Uint16(buf))
	buf = buf[2:]
	if len(buf) < alen {
		return "", Message{}, errMalformedFrame
	}
	from := Addr(buf[:alen])
	msg, rest, err := readMessage(buf[alen:])
	if err != nil {
		return "", Message{}, err
	}
	if len(rest) != 0 {
		return "", Message{}, errMalformedFrame
	}
	return from, msg, nil
}

// appendBatch packs the control messages of a collected batch into one
// envelope payload.
func appendBatch(buf []byte, ctrl []queuedMsg) []byte {
	for _, qm := range ctrl {
		buf = appendMessage(buf, qm.msg)
	}
	return buf
}

// readBatch unpacks an envelope payload, invoking fn per message in pack
// order. A truncated envelope delivers the intact prefix and stops.
func readBatch(buf []byte, fn func(Message)) {
	for len(buf) > 0 {
		msg, rest, err := readMessage(buf)
		if err != nil {
			return
		}
		fn(msg)
		buf = rest
	}
}
