package stream

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
)

// AppsOn implements control.Actions: the origin applications with a
// component placed on host, in sorted order.
func (e *Engine) AppsOn(host overlay.ID) []string {
	var apps []string
	for id, st := range e.origins {
		for _, p := range st.graph.Placements {
			if p.Host.ID == host {
				apps = append(apps, id)
				break
			}
		}
	}
	sort.Strings(apps)
	return apps
}

// Reallocate implements control.Actions: incremental rate reallocation.
// Instead of tearing the application down, it re-solves only the affected
// substreams with core.DeltaComposer.ComposeDelta — surviving placements
// pre-seeded as zero-cost residual flow, degraded hosts excluded — and
// re-instantiates just those substreams' components with the new split
// ratios. Sinks and sources keep running, so the delivered-rate dip is
// only as long as detection plus one delta solve, not a full
// teardown-and-readmission.
//
// A wrapped core.ErrNoFeasiblePlacement (surviving hosts cannot absorb the
// displaced rate, or the composer cannot delta-compose) tells the
// controller to fall back to a full recompose.
func (e *Engine) Reallocate(app string, degraded map[overlay.ID]bool, substreams []int, done func(error)) {
	st, ok := e.origins[app]
	if !ok {
		done(control.ErrUnknownApp)
		return
	}
	if e.Dir == nil {
		done(fmt.Errorf("stream: engine has no discovery directory"))
		return
	}
	cfg := e.adaptConfig()
	dc, ok := cfg.Composer.(core.DeltaComposer)
	if !ok {
		done(fmt.Errorf("stream: composer %q cannot delta-compose: %w",
			cfg.Composer.Name(), core.ErrNoFeasiblePlacement))
		return
	}
	// Affected substreams: the ones named by the event plus every one with
	// a placement on a degraded host (a substream left out of the solve
	// would be copied verbatim — including its dead placements).
	affectedSet := make(map[int]bool, len(substreams))
	for _, l := range substreams {
		affectedSet[l] = true
	}
	for _, p := range st.graph.Placements {
		if degraded[p.Host.ID] {
			affectedSet[p.Substream] = true
		}
	}
	if len(affectedSet) == 0 {
		// No live placement rides through the degraded hosts; the event
		// was stale by the time it drained.
		done(nil)
		return
	}
	affected := make([]int, 0, len(affectedSet))
	for l := range affectedSet {
		affected = append(affected, l)
	}
	sort.Ints(affected)
	e.recompositions++
	e.reallocations++
	// The live request — including any best-effort rate reduction — not
	// the originally desired one: the delta solve relocates the rate the
	// application actually carries.
	req := st.graph.Request
	e.Dir.LookupMany(req.Services(), cfg.Timeout, func(hosts map[string][]overlay.NodeInfo, err error) {
		if err != nil {
			done(fmt.Errorf("stream: discovery: %w", err))
			return
		}
		e.collectStats(hosts, cfg.Timeout, func(reports map[overlay.ID]monitor.Report) {
			if cur, ok := e.origins[app]; !ok || cur != st {
				// The application was torn down or fully recomposed
				// while stats were in flight.
				done(control.ErrUnknownApp)
				return
			}
			in := e.buildInput(req, hosts, reports)
			in.Stats = &core.ComposeStats{}
			solveStart := e.clk.Now()
			g, err := dc.ComposeDelta(in, st.graph, degraded, affected)
			e.observeSolve(app, in.Stats, solveStart, err)
			if err != nil {
				done(err)
				return
			}
			applyStart := e.clk.Now()
			e.applyDelta(app, st, g, affectedSet, cfg.Timeout, func(err error) {
				e.observeApply(app, applyStart, err)
				done(err)
			})
		})
	})
}

// applyDelta installs an incrementally re-composed graph: the affected
// substreams' placements are re-instantiated (overwriting survivors with
// their new split ratios and creating the replacements), then the local
// sources are retargeted at the new stage-0 split. Components on abandoned
// hosts are left behind untouched — they stop receiving data once the
// upstream splits move away, and tearing them down per-substream would
// race the request-scoped teardown protocol.
func (e *Engine) applyDelta(app string, st *originState, g *core.ExecutionGraph,
	affected map[int]bool, timeout time.Duration, done func(error)) {

	byPlacement, sourceOuts := graphOuts(g)
	var targets []core.Placement
	for _, p := range g.Placements {
		if affected[p.Substream] {
			targets = append(targets, p)
		}
	}
	remaining := len(targets)
	var firstErr error
	finish := func() {
		if firstErr != nil {
			// Some hosts now run the new split while others kept the
			// old one; the composed graph still describes the intent,
			// so keep the old state and let the controller's backoff
			// retry (or fall back) reconcile.
			done(firstErr)
			return
		}
		st.graph = g
		e.chargePlacements(g)
		for l := range affected {
			if src := e.sources[sinkKey(app, l)]; src != nil {
				src.retarget(sourceOuts[l])
			}
		}
		done(nil)
	}
	if remaining == 0 {
		finish()
		return
	}
	for _, p := range targets {
		p := p
		body, _ := json.Marshal(e.instantiateMsgFor(g, p, byPlacement))
		e.node.Request(p.Host.Addr, appInstantiate, body, timeout, func(_ []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("stream: re-instantiate %s@%s: %w", p.Service, p.Host.Addr, err)
			}
			remaining--
			if remaining == 0 {
				finish()
			}
		})
	}
}
