// Package gossip implements a SWIM-style membership and stats-dissemination
// protocol: periodic ping / ping-req indirect probing with a suspect→dead
// state machine guarded by incarnation numbers, plus a push-pull
// anti-entropy sync for catch-up after partitions. Every protocol message
// piggybacks recent membership updates, and every alive update carries the
// member's monitoring digest (availability vector, drop ratio, service
// offerings, monotonically versioned), so a node's local view converges on
// both liveness and resource state without per-request fan-out fetches.
//
// The protocol runs over an overlay node's direct request layer — and thus
// over the transport.Transport abstraction — so the exact same code is
// exercised deterministically under netsim (seeded, virtual clock) and over
// real TCP in internal/live. Like the rest of the protocol stack, a Gossip
// is not internally synchronized: all methods and timer callbacks must run
// on one goroutine (the simulator event loop or a live node's actor loop).
package gossip

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/transport"
)

// State is a member's liveness state in the local view.
type State uint8

const (
	// StateAlive members answer probes (or have not yet missed one).
	StateAlive State = iota
	// StateSuspect members missed a direct and indirect probe and have
	// SuspicionTimeout to refute with a higher incarnation.
	StateSuspect
	// StateDead members exhausted their suspicion timeout. Terminal until
	// the entry ages out (DeadRetention) or a strictly higher incarnation
	// announces itself.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Digest is the monitoring summary piggybacked on every alive update: the
// origin's availability vector and drop ratio (inside Report), its service
// offerings, and a version that increases with every refresh at the origin
// so receivers keep only the newest snapshot.
type Digest struct {
	// Version orders digests from the same origin; 0 means "no digest
	// yet" and is never published.
	Version uint64 `json:"v"`
	// At is the origin's local clock when the digest was produced
	// (informational; cross-node clocks are not comparable).
	At time.Duration `json:"at"`
	// Report is the origin's monitoring snapshot (component windows are
	// stripped to keep protocol messages small).
	Report monitor.Report `json:"report"`
	// Services are the services the origin announces.
	Services []string `json:"services,omitempty"`
}

// Member is one entry of the local membership view.
type Member struct {
	Info        overlay.NodeInfo
	State       State
	Incarnation uint64
	Digest      Digest
	// DigestAt is the local clock time the digest's current version was
	// learned (local production time for the node itself).
	DigestAt time.Duration
	// StateAt is the local clock time of the last state transition.
	StateAt time.Duration
}

// member is the internal mutable entry behind a Member snapshot.
type member struct {
	Member
	suspectCancel func()
	suspectRound  int64
	removeCancel  func()
}

// Summary are the membership counts exposed on /healthz.
type Summary struct {
	Alive   int `json:"alive"`
	Suspect int `json:"suspect"`
	Dead    int `json:"dead"`
	// OldestDigestAgeMs is the age (local clock) of the stalest digest
	// held for an alive peer, in milliseconds; -1 when no peer digest is
	// held.
	OldestDigestAgeMs int64 `json:"oldestDigestAgeMs"`
}

// Config tunes the protocol. The zero value selects the defaults noted on
// each field.
type Config struct {
	// ProbeInterval is the protocol period T: one member is probed per
	// tick (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds the direct ping before indirect probing starts
	// (default 300ms).
	ProbeTimeout time.Duration
	// IndirectProbes is k, the number of peers asked to ping-req an
	// unresponsive member (default 2).
	IndirectProbes int
	// SuspicionTimeout is how long a suspect may refute before it is
	// declared dead (default 3×ProbeInterval).
	SuspicionTimeout time.Duration
	// SyncInterval is the push-pull anti-entropy period (default
	// 10×ProbeInterval).
	SyncInterval time.Duration
	// MaxPiggyback is the maximum number of membership updates carried
	// per protocol message (default 6).
	MaxPiggyback int
	// RetransmitMult scales each update's rebroadcast budget:
	// RetransmitMult×⌈log₂(n+1)⌉ transmissions (default 3).
	RetransmitMult int
	// DeadRetention is how long a dead entry is remembered before it may
	// rejoin at incarnation 0 (default 20×SuspicionTimeout).
	DeadRetention time.Duration
	// Cluster scopes the protocol to one federation cluster: members of
	// other clusters are never seeded, probed or merged from piggybacked
	// updates, so full digests stay intra-cluster. Empty (the default)
	// keeps the flat, unscoped protocol.
	Cluster string
	// BorderPeers are remote-cluster border nodes this node exchanges
	// compact cluster summaries with (only border nodes set it). Ignored
	// when Cluster is empty.
	BorderPeers []overlay.NodeInfo
	// SummaryInterval is the period of the border summary exchange
	// (default 2×ProbeInterval).
	SummaryInterval time.Duration
	// SummaryTTL is how long a remote cluster summary stays fresh before
	// it expires and OnSummaryLost fires (default 5×SummaryInterval).
	SummaryTTL time.Duration
	// BoundaryBps is the boundary-link capacity this cluster advertises
	// in its summaries (informational; the federation ledger enforces it).
	BoundaryBps float64
}

func (c *Config) defaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 300 * time.Millisecond
	}
	if c.ProbeTimeout >= c.ProbeInterval {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 2
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = 3 * c.ProbeInterval
	}
	if c.SyncInterval <= 0 {
		c.SyncInterval = 10 * c.ProbeInterval
	}
	if c.MaxPiggyback <= 0 {
		c.MaxPiggyback = 6
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = 3
	}
	if c.DeadRetention <= 0 {
		c.DeadRetention = 20 * c.SuspicionTimeout
	}
	if c.SummaryInterval <= 0 {
		c.SummaryInterval = 2 * c.ProbeInterval
	}
	if c.SummaryTTL <= 0 {
		c.SummaryTTL = 5 * c.SummaryInterval
	}
}

// Overlay RPC application names.
const (
	appPing    = "gossip.ping"
	appPingReq = "gossip.ping-req"
	appSync    = "gossip.sync"
)

// update is the dissemination unit piggybacked on protocol messages.
type update struct {
	Node   overlay.NodeInfo `json:"node"`
	State  State            `json:"state"`
	Inc    uint64           `json:"inc"`
	Digest *Digest          `json:"digest,omitempty"`
}

// queued is an update awaiting rebroadcast.
type queued struct {
	u         update
	transmits int
}

type pingMsg struct {
	Updates []update `json:"u,omitempty"`
}

type pingReqMsg struct {
	Target  overlay.NodeInfo `json:"target"`
	Updates []update         `json:"u,omitempty"`
}

// syncMsg carries a full membership snapshot in both directions of an
// anti-entropy exchange.
type syncMsg struct {
	Updates []update `json:"u,omitempty"`
}

// Gossip is one node's membership protocol instance.
type Gossip struct {
	node *overlay.Node
	clk  clock.Clock
	rng  *rand.Rand
	cfg  Config

	members map[overlay.ID]*member
	queue   map[overlay.ID]*queued

	// probe round-robin: a shuffled order of member IDs, reshuffled when
	// exhausted (SWIM's round-robin with random offsets).
	order    []overlay.ID
	orderPos int

	incarnation uint64
	version     uint64
	digestFn    func() Digest
	onDead      []func(overlay.NodeInfo)
	onJoin      []func(overlay.NodeInfo)
	onDigest    []func(overlay.NodeInfo, monitor.Report)

	// Border summary exchange state (cluster-scoped instances only).
	summaryVersion uint64
	summaries      map[string]*remoteSummary
	onSummary      []func(ClusterSummary)
	onSummaryLost  []func(string)
	summaryCancel  func()

	rounds      int64
	syncs       int64
	probeCancel func()
	syncCancel  func()
	running     bool
}

// New attaches a gossip instance to an overlay node. rng drives probe
// target and indirect-relay selection; pass a seeded source for
// deterministic simulations. The node itself appears in the view as an
// alive member.
func New(node *overlay.Node, clk clock.Clock, rng *rand.Rand, cfg Config) *Gossip {
	cfg.defaults()
	g := &Gossip{
		node:    node,
		clk:     clk,
		rng:     rng,
		cfg:     cfg,
		members:   make(map[overlay.ID]*member),
		queue:     make(map[overlay.ID]*queued),
		summaries: make(map[string]*remoteSummary),
	}
	g.members[node.ID()] = &member{Member: Member{
		Info:  node.Info(),
		State: StateAlive,
	}}
	node.RegisterRequest(appPing, g.onPing)
	node.RegisterRequest(appPingReq, g.onPingReq)
	node.RegisterRequest(appSync, g.onSync)
	node.RegisterRequest(appSummary, g.onSummaryExchange)
	return g
}

// foreign reports whether info belongs to a different federation cluster
// than this cluster-scoped instance. Unscoped instances track everyone.
func (g *Gossip) foreign(info overlay.NodeInfo) bool {
	return g.cfg.Cluster != "" && info.Cluster != g.cfg.Cluster
}

// Config returns the effective configuration (defaults applied).
func (g *Gossip) Config() Config { return g.cfg }

// SetDigestFunc installs the producer of this node's own monitoring
// digest. fn runs once per protocol period on the protocol goroutine; the
// gossip layer assigns Version and At and strips per-component windows.
func (g *Gossip) SetDigestFunc(fn func() Digest) { g.digestFn = fn }

// OnMemberDead registers a callback fired (on the protocol goroutine) when
// a member transitions to dead.
func (g *Gossip) OnMemberDead(fn func(overlay.NodeInfo)) { g.onDead = append(g.onDead, fn) }

// OnMemberJoin registers a callback fired when a previously unknown member
// enters the view alive.
func (g *Gossip) OnMemberJoin(fn func(overlay.NodeInfo)) { g.onJoin = append(g.onJoin, fn) }

// OnDigest registers a callback fired (on the protocol goroutine) whenever
// a member's disseminated monitoring digest advances — the stats-driven
// feed of the adaptation control plane (drop-ratio spike detection).
func (g *Gossip) OnDigest(fn func(overlay.NodeInfo, monitor.Report)) {
	g.onDigest = append(g.onDigest, fn)
}

// Seed adds known peers as alive members without any network exchange
// (bootstrap state, e.g. from the overlay leaf set after joining).
func (g *Gossip) Seed(peers []overlay.NodeInfo) {
	now := g.clk.Now()
	for _, p := range peers {
		if p.ID == g.node.ID() || p.Addr == "" || g.foreign(p) {
			continue
		}
		if _, ok := g.members[p.ID]; ok {
			continue
		}
		g.members[p.ID] = &member{Member: Member{Info: p, State: StateAlive, StateAt: now}}
	}
}

// Join seeds the view with peer and immediately runs an anti-entropy sync
// with it, pulling the full converged membership in one round trip.
func (g *Gossip) Join(peer overlay.NodeInfo) {
	g.Seed([]overlay.NodeInfo{peer})
	g.syncWith(peer)
}

// Start begins the probe and anti-entropy loops. The first probe fires one
// ProbeInterval from now. Calling Start twice is a no-op.
func (g *Gossip) Start() {
	if g.running {
		return
	}
	g.running = true
	g.refreshDigest()
	var probe func()
	probe = func() {
		g.tick()
		g.probeCancel = g.clk.After(g.cfg.ProbeInterval, probe)
	}
	g.probeCancel = g.clk.After(g.cfg.ProbeInterval, probe)
	var sync func()
	sync = func() {
		g.antiEntropy()
		g.syncCancel = g.clk.After(g.cfg.SyncInterval, sync)
	}
	g.syncCancel = g.clk.After(g.cfg.SyncInterval, sync)
	if g.cfg.Cluster != "" && len(g.cfg.BorderPeers) > 0 {
		var summary func()
		summary = func() {
			g.summaryRound()
			g.summaryCancel = g.clk.After(g.cfg.SummaryInterval, summary)
		}
		g.summaryCancel = g.clk.After(g.cfg.SummaryInterval, summary)
	}
}

// Stop halts the protocol loops. Pending suspicion timers keep running so
// in-flight state machines settle; inbound messages are still answered.
func (g *Gossip) Stop() {
	g.running = false
	if g.probeCancel != nil {
		g.probeCancel()
		g.probeCancel = nil
	}
	if g.syncCancel != nil {
		g.syncCancel()
		g.syncCancel = nil
	}
	if g.summaryCancel != nil {
		g.summaryCancel()
		g.summaryCancel = nil
	}
}

// Rounds returns the number of protocol periods elapsed since Start.
func (g *Gossip) Rounds() int64 { return g.rounds }

// Members returns a snapshot of the view (self included), sorted by ID.
func (g *Gossip) Members() []Member {
	out := make([]Member, 0, len(g.members))
	for _, m := range g.members {
		out = append(out, m.Member)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Info.ID.Cmp(out[j].Info.ID) < 0 })
	return out
}

// Member returns the view entry for id.
func (g *Gossip) Member(id overlay.ID) (Member, bool) {
	if m, ok := g.members[id]; ok {
		return m.Member, true
	}
	return Member{}, false
}

// Summary condenses the view for health reporting.
func (g *Gossip) Summary() Summary {
	s := Summary{OldestDigestAgeMs: -1}
	now := g.clk.Now()
	for id, m := range g.members {
		switch m.State {
		case StateAlive:
			s.Alive++
		case StateSuspect:
			s.Suspect++
		case StateDead:
			s.Dead++
		}
		if id == g.node.ID() || m.State != StateAlive || m.Digest.Version == 0 {
			continue
		}
		if age := int64((now - m.DigestAt) / time.Millisecond); age > s.OldestDigestAgeMs {
			s.OldestDigestAgeMs = age
		}
	}
	return s
}

// HostsFor returns the alive members whose digest announces service,
// sorted by ID — discovery's gossip-backed lookup path.
func (g *Gossip) HostsFor(service string) []overlay.NodeInfo {
	var out []overlay.NodeInfo
	for _, m := range g.members {
		if m.State != StateAlive || m.Digest.Version == 0 {
			continue
		}
		for _, svc := range m.Digest.Services {
			if svc == service {
				out = append(out, m.Info)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Cmp(out[j].ID) < 0 })
	return out
}

// ReportFor returns the monitoring report from the converged view for an
// alive member (ok=false for unknown, suspect or dead members and members
// whose digest has not arrived yet) — the composer's gossip-fresh stats
// source.
func (g *Gossip) ReportFor(id overlay.ID) (monitor.Report, bool) {
	m, ok := g.members[id]
	if !ok || m.State != StateAlive || m.Digest.Version == 0 {
		return monitor.Report{}, false
	}
	return m.Digest.Report, true
}

// refreshDigest produces and enqueues a new version of the node's own
// digest.
func (g *Gossip) refreshDigest() {
	if g.digestFn == nil {
		return
	}
	d := g.digestFn()
	g.version++
	d.Version = g.version
	d.At = g.clk.Now()
	d.Report.Components = nil // keep protocol messages small
	self := g.members[g.node.ID()]
	self.Digest = d
	self.DigestAt = d.At
	self.Incarnation = g.incarnation
	g.enqueue(update{Node: g.node.Info(), State: StateAlive, Inc: g.incarnation, Digest: &d})
}

// tick runs one protocol period: refresh the local digest, pick the next
// round-robin member and probe it.
func (g *Gossip) tick() {
	g.rounds++
	g.refreshDigest()
	g.exportMembership()
	target, ok := g.nextTarget()
	if !ok {
		return
	}
	if target.Digest.Version > 0 {
		telDigestAge.Observe((g.clk.Now() - target.DigestAt).Seconds())
	}
	g.probe(target.Info)
}

// nextTarget picks the next non-dead peer in the shuffled round-robin
// order, reshuffling when the order is exhausted.
func (g *Gossip) nextTarget() (Member, bool) {
	for attempts := 0; attempts < 2; attempts++ {
		for g.orderPos < len(g.order) {
			id := g.order[g.orderPos]
			g.orderPos++
			if m, ok := g.members[id]; ok && m.State != StateDead {
				return m.Member, true
			}
		}
		// Rebuild: all current non-dead peers, shuffled.
		g.order = g.order[:0]
		g.orderPos = 0
		for id, m := range g.members {
			if id == g.node.ID() || m.State == StateDead {
				continue
			}
			g.order = append(g.order, id)
		}
		sort.Slice(g.order, func(i, j int) bool { return g.order[i].Cmp(g.order[j]) < 0 })
		g.rng.Shuffle(len(g.order), func(i, j int) { g.order[i], g.order[j] = g.order[j], g.order[i] })
	}
	return Member{}, false
}

// probe sends a direct ping; on timeout it falls back to indirect ping-req
// probing, and only when both fail is the target suspected.
func (g *Gossip) probe(target overlay.NodeInfo) {
	body := g.encode(pingMsg{Updates: g.pickUpdates()})
	g.node.Request(target.Addr, appPing, body, g.cfg.ProbeTimeout, func(resp []byte, err error) {
		if err == nil {
			telProbeAck.Inc()
			g.applyEncoded(resp)
			return
		}
		g.indirectProbe(target)
	})
}

// indirectProbe asks k random alive peers to ping target on our behalf.
func (g *Gossip) indirectProbe(target overlay.NodeInfo) {
	relays := g.pickRelays(target.ID, g.cfg.IndirectProbes)
	if len(relays) == 0 {
		telProbeTimeout.Inc()
		g.suspect(target.ID)
		return
	}
	// The indirect phase must finish within the protocol period: relays
	// get the remainder of the period after the direct timeout.
	timeout := g.cfg.ProbeInterval - g.cfg.ProbeTimeout
	body := g.encode(pingReqMsg{Target: target, Updates: g.pickUpdates()})
	remaining := len(relays)
	acked := false
	for _, r := range relays {
		g.node.Request(r.Addr, appPingReq, body, timeout, func(resp []byte, err error) {
			remaining--
			if err == nil && !acked {
				acked = true
				telProbeIndirect.Inc()
				g.applyEncoded(resp)
			}
			if remaining == 0 && !acked {
				telProbeTimeout.Inc()
				g.suspect(target.ID)
			}
		})
	}
}

// pickRelays selects up to k alive peers other than target (and self).
func (g *Gossip) pickRelays(target overlay.ID, k int) []overlay.NodeInfo {
	var pool []overlay.NodeInfo
	for id, m := range g.members {
		if id == g.node.ID() || id == target || m.State != StateAlive {
			continue
		}
		pool = append(pool, m.Info)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID.Cmp(pool[j].ID) < 0 })
	g.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > k {
		pool = pool[:k]
	}
	return pool
}

// SuspectAddr suspects the alive member listening on addr, short-cutting
// the probe path with first-hand transport evidence: when a peer's circuit
// breaker opens, the membership layer need not wait for its own probe
// timeouts to start the suspect→dead state machine. The member still gets
// the usual suspicion window to refute. It reports whether a member was
// suspected; like every Gossip method it must run on the protocol
// goroutine.
// InfoByAddr resolves a transport address to the member carrying it, in
// any state — for callers translating transport-level signals (circuit
// breakers) into identity-keyed control-plane events.
func (g *Gossip) InfoByAddr(addr transport.Addr) (overlay.NodeInfo, bool) {
	for _, m := range g.members {
		if m.Info.Addr == addr {
			return m.Info, true
		}
	}
	return overlay.NodeInfo{}, false
}

func (g *Gossip) SuspectAddr(addr transport.Addr) bool {
	for id, m := range g.members {
		if id == g.node.ID() || m.Info.Addr != addr || m.State != StateAlive {
			continue
		}
		g.suspect(id)
		return true
	}
	return false
}

// suspect transitions an alive member to suspect and starts its suspicion
// timer; the suspicion is broadcast with the member's current incarnation
// so the member can refute it with a higher one.
func (g *Gossip) suspect(id overlay.ID) {
	m, ok := g.members[id]
	if !ok || m.State != StateAlive {
		return
	}
	g.setSuspect(m, m.Incarnation)
	g.enqueue(update{Node: m.Info, State: StateSuspect, Inc: m.Incarnation})
}

// setSuspect applies the suspect state locally (shared by local probing
// and remote updates).
func (g *Gossip) setSuspect(m *member, inc uint64) {
	telSuspicions.Inc()
	m.State = StateSuspect
	m.Incarnation = inc
	m.StateAt = g.clk.Now()
	m.suspectRound = g.rounds
	if m.suspectCancel != nil {
		m.suspectCancel()
	}
	id := m.Info.ID
	m.suspectCancel = g.clk.After(g.cfg.SuspicionTimeout, func() {
		cur, ok := g.members[id]
		if !ok || cur.State != StateSuspect || cur.Incarnation != inc {
			return
		}
		g.declareDead(cur, inc)
		g.enqueue(update{Node: cur.Info, State: StateDead, Inc: inc})
	})
}

// declareDead finalizes a member's death: terminal state, dissemination,
// subscriber callbacks, and eventual removal from the view.
func (g *Gossip) declareDead(m *member, inc uint64) {
	telDeaths.Inc()
	telConvergenceRounds.Observe(float64(g.rounds - m.suspectRound))
	m.State = StateDead
	m.Incarnation = inc
	m.StateAt = g.clk.Now()
	if m.suspectCancel != nil {
		m.suspectCancel()
		m.suspectCancel = nil
	}
	id := m.Info.ID
	if m.removeCancel != nil {
		m.removeCancel()
	}
	m.removeCancel = g.clk.After(g.cfg.DeadRetention, func() {
		if cur, ok := g.members[id]; ok && cur.State == StateDead {
			delete(g.members, id)
		}
	})
	for _, fn := range g.onDead {
		fn(m.Info)
	}
}

// enqueue stages an update for piggybacked rebroadcast. A newer update
// about the same node replaces the queued one and resets its budget.
func (g *Gossip) enqueue(u update) {
	g.queue[u.Node.ID] = &queued{u: u}
}

// retransmitLimit is each update's total piggyback budget:
// RetransmitMult×⌈log₂(n+1)⌉ for an n-member view.
func (g *Gossip) retransmitLimit() int {
	n := len(g.members)
	lim := g.cfg.RetransmitMult * int(math.Ceil(math.Log2(float64(n+1))))
	if lim < 1 {
		lim = 1
	}
	return lim
}

// pickUpdates selects up to MaxPiggyback queued updates, least-transmitted
// first, charging their budgets.
func (g *Gossip) pickUpdates() []update {
	if len(g.queue) == 0 {
		return nil
	}
	entries := make([]*queued, 0, len(g.queue))
	for _, q := range g.queue {
		entries = append(entries, q)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].transmits != entries[j].transmits {
			return entries[i].transmits < entries[j].transmits
		}
		return entries[i].u.Node.ID.Cmp(entries[j].u.Node.ID) < 0
	})
	if len(entries) > g.cfg.MaxPiggyback {
		entries = entries[:g.cfg.MaxPiggyback]
	}
	limit := g.retransmitLimit()
	out := make([]update, 0, len(entries))
	for _, q := range entries {
		out = append(out, q.u)
		q.transmits++
		if q.transmits >= limit {
			delete(g.queue, q.u.Node.ID)
		}
	}
	return out
}

// snapshotUpdates renders the full view as updates (anti-entropy payload).
func (g *Gossip) snapshotUpdates() []update {
	out := make([]update, 0, len(g.members))
	for _, m := range g.members {
		u := update{Node: m.Info, State: m.State, Inc: m.Incarnation}
		if m.Digest.Version > 0 {
			d := m.Digest
			u.Digest = &d
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.ID.Cmp(out[j].Node.ID) < 0 })
	return out
}

// antiEntropy starts a push-pull sync with one random peer. Usually the
// peer is alive; every other period a (not yet aged-out) dead member is
// tried instead, so the two sides of a healed partition — which hold each
// other as dead and therefore never probe each other — rediscover one
// another: the "dead" peer sees its own death rumor in our snapshot and
// refutes it with a higher incarnation.
func (g *Gossip) antiEntropy() {
	g.syncs++
	if g.syncs%2 == 0 {
		if dead := g.pickDead(); dead != nil {
			g.syncWith(*dead)
			return
		}
	}
	peers := g.pickRelays(g.node.ID(), 1)
	if len(peers) == 0 {
		if dead := g.pickDead(); dead != nil {
			g.syncWith(*dead)
		}
		return
	}
	g.syncWith(peers[0])
}

// pickDead selects a random dead member still within its retention window.
func (g *Gossip) pickDead() *overlay.NodeInfo {
	var pool []overlay.NodeInfo
	for _, m := range g.members {
		if m.State == StateDead {
			pool = append(pool, m.Info)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].ID.Cmp(pool[j].ID) < 0 })
	return &pool[g.rng.Intn(len(pool))]
}

// syncWith exchanges full membership snapshots with peer.
func (g *Gossip) syncWith(peer overlay.NodeInfo) {
	body := g.encode(syncMsg{Updates: g.snapshotUpdates()})
	g.node.Request(peer.Addr, appSync, body, g.cfg.SyncInterval/2, func(resp []byte, err error) {
		if err != nil {
			return
		}
		telSyncs.Inc()
		var m syncMsg
		if json.Unmarshal(resp, &m) == nil {
			g.applyUpdates(m.Updates)
		}
	})
}

// onPing answers a direct probe, merging and returning piggybacked
// updates.
func (g *Gossip) onPing(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m pingMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "gossip: bad ping: "+err.Error())
		return
	}
	g.applyUpdates(m.Updates)
	respond(g.encode(pingMsg{Updates: g.pickUpdates()}), "")
}

// onPingReq probes the target on the requester's behalf.
func (g *Gossip) onPingReq(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m pingReqMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "gossip: bad ping-req: "+err.Error())
		return
	}
	g.applyUpdates(m.Updates)
	// The nested probe must answer before the requester's own relay
	// timeout; stay safely inside it.
	timeout := (g.cfg.ProbeInterval - g.cfg.ProbeTimeout) * 3 / 4
	ping := g.encode(pingMsg{Updates: g.pickUpdates()})
	g.node.Request(m.Target.Addr, appPing, ping, timeout, func(resp []byte, err error) {
		if err != nil {
			respond(nil, "gossip: target silent")
			return
		}
		g.applyEncoded(resp)
		respond(g.encode(pingMsg{Updates: g.pickUpdates()}), "")
	})
}

// onSync answers a push-pull exchange with the full local view.
func (g *Gossip) onSync(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m syncMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "gossip: bad sync: "+err.Error())
		return
	}
	telSyncs.Inc()
	resp := g.encode(syncMsg{Updates: g.snapshotUpdates()})
	g.applyUpdates(m.Updates)
	respond(resp, "")
}

// applyEncoded merges the piggybacked updates of an encoded pingMsg.
func (g *Gossip) applyEncoded(body []byte) {
	var m pingMsg
	if json.Unmarshal(body, &m) == nil {
		g.applyUpdates(m.Updates)
	}
}

func (g *Gossip) applyUpdates(us []update) {
	for _, u := range us {
		g.apply(u)
	}
}

// apply merges one remote update into the view under SWIM's precedence
// rules: alive{i} overrides alive/suspect{<i}; suspect{i} overrides
// alive{≤i} and suspect{<i}; dead{i} overrides everything{≤i}. Updates
// that change the view are re-gossiped with a fresh budget.
func (g *Gossip) apply(u update) {
	if u.Node.ID == g.node.ID() {
		g.applySelf(u)
		return
	}
	// A cluster-scoped view only tracks its own cluster; other clusters
	// are known through border summaries, never full membership.
	if g.foreign(u.Node) {
		return
	}
	m, known := g.members[u.Node.ID]
	if !known {
		if u.State == StateDead {
			// Record the tombstone so older alive/suspect gossip cannot
			// resurrect the member.
			m = &member{Member: Member{Info: u.Node, Incarnation: u.Inc, State: StateAlive}}
			g.members[u.Node.ID] = m
			g.declareDead(m, u.Inc)
			g.enqueue(u)
			return
		}
		m = &member{Member: Member{Info: u.Node, State: StateAlive, Incarnation: u.Inc, StateAt: g.clk.Now()}}
		g.members[u.Node.ID] = m
		g.mergeDigest(m, u.Digest)
		if u.State == StateSuspect {
			g.setSuspect(m, u.Inc)
		}
		g.enqueue(u)
		for _, fn := range g.onJoin {
			fn(u.Node)
		}
		return
	}
	changed := false
	switch u.State {
	case StateAlive:
		// Only the node itself ever raises its incarnation, so a strictly
		// higher one proves it is alive again — even over a tombstone.
		if u.Inc > m.Incarnation {
			if m.State == StateDead && m.removeCancel != nil {
				m.removeCancel()
				m.removeCancel = nil
			}
			if m.suspectCancel != nil {
				m.suspectCancel()
				m.suspectCancel = nil
			}
			m.State = StateAlive
			m.Incarnation = u.Inc
			m.StateAt = g.clk.Now()
			changed = true
		}
	case StateSuspect:
		if m.State == StateAlive && u.Inc >= m.Incarnation ||
			m.State == StateSuspect && u.Inc > m.Incarnation {
			g.setSuspect(m, u.Inc)
			changed = true
		}
	case StateDead:
		if m.State != StateDead && u.Inc >= m.Incarnation {
			g.declareDead(m, u.Inc)
			changed = true
		}
	}
	if g.mergeDigest(m, u.Digest) || changed {
		g.enqueue(update{Node: m.Info, State: m.State, Inc: m.Incarnation, Digest: digestPtr(m)})
	}
}

// applySelf handles gossip about this node itself: a suspicion or death
// rumor is refuted by announcing a strictly higher incarnation.
func (g *Gossip) applySelf(u update) {
	if u.State == StateAlive || u.Inc < g.incarnation {
		return
	}
	telRefutations.Inc()
	g.incarnation = u.Inc + 1
	self := g.members[g.node.ID()]
	self.Incarnation = g.incarnation
	g.enqueue(update{Node: g.node.Info(), State: StateAlive, Inc: g.incarnation, Digest: digestPtr(self)})
}

// mergeDigest keeps the newest digest version for a member; it reports
// whether the digest advanced.
func (g *Gossip) mergeDigest(m *member, d *Digest) bool {
	if d == nil || d.Version <= m.Digest.Version {
		return false
	}
	m.Digest = *d
	m.DigestAt = g.clk.Now()
	for _, fn := range g.onDigest {
		fn(m.Info, m.Digest.Report)
	}
	return true
}

// digestPtr returns the member's digest for re-gossip, nil when none held.
func digestPtr(m *member) *Digest {
	if m.Digest.Version == 0 {
		return nil
	}
	d := m.Digest
	return &d
}

func (g *Gossip) encode(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("gossip: marshal: " + err.Error()) // protocol types are always marshalable
	}
	return b
}

// exportMembership publishes the view counts to the telemetry registry.
func (g *Gossip) exportMembership() {
	s := g.Summary()
	telMembersAlive.Set(float64(s.Alive))
	telMembersSuspect.Set(float64(s.Suspect))
	telMembersDead.Set(float64(s.Dead))
}
