package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"rasc.dev/rasc/internal/spec"
)

// Save writes a request sequence as indented JSON, making generated
// workloads inspectable and replayable.
func Save(w io.Writer, reqs []spec.Request) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reqs)
}

// Load reads a request sequence written by Save, validating every request.
func Load(r io.Reader) ([]spec.Request, error) {
	var reqs []spec.Request
	if err := json.NewDecoder(r).Decode(&reqs); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	seen := make(map[string]bool, len(reqs))
	for i, req := range reqs {
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("workload: request %d: %w", i, err)
		}
		if seen[req.ID] {
			return nil, fmt.Errorf("workload: duplicate request ID %q", req.ID)
		}
		seen[req.ID] = true
	}
	return reqs, nil
}

// SaveFile writes a request sequence to path.
func SaveFile(path string, reqs []spec.Request) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, reqs)
}

// LoadFile reads a request sequence from path.
func LoadFile(path string) ([]spec.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
