// Package sched implements RASC's node-local scheduling algorithm (§3.4).
//
// Every data unit awaiting execution gets a deadline equal to the expected
// arrival time of the next data unit for the same component (arrival +
// period p_ci). At each scheduling decision the laxity of a unit is the
// time it can still afford to wait:
//
//	L(du) = d_du − now − t_ci
//
// (the paper prints the negated expression but describes exactly this
// semantics: positive laxity means the unit can still meet its deadline).
// Units whose laxity has gone negative are dropped; among the rest, the one
// with the smallest laxity runs first (least-laxity-first). FIFO and EDF
// policies are provided for ablation experiments.
package sched

import (
	"container/heap"
	"time"
)

// Unit is a schedulable data unit.
type Unit struct {
	// ComponentKey identifies the component c_i the unit belongs to.
	ComponentKey string
	// Deadline is d_du: the expected arrival time of the component's
	// next data unit.
	Deadline time.Duration
	// ExecTime is the estimated running time t_ci at enqueue time.
	ExecTime time.Duration
	// Enqueued is the unit's arrival time at this node.
	Enqueued time.Duration
	// Payload carries the caller's data through the queue.
	Payload interface{}

	index int // heap bookkeeping
}

// laxityKey is the time-independent part of the laxity: L = key − now, so
// ordering by key orders by laxity at any single instant.
func (u *Unit) laxityKey() time.Duration { return u.Deadline - u.ExecTime }

// Laxity returns the unit's laxity at time now.
func (u *Unit) Laxity(now time.Duration) time.Duration { return u.laxityKey() - now }

// Policy is a node scheduling discipline.
type Policy interface {
	// Push enqueues a unit; it returns false (and does not enqueue) when
	// the queue is full.
	Push(u *Unit) bool
	// Next picks the unit to execute at time now. It returns nil if the
	// queue is empty or every unit was dropped. Units dropped for
	// missing their deadlines are returned in dropped.
	Next(now time.Duration) (run *Unit, dropped []*Unit)
	// Len reports the number of queued units.
	Len() int
	// Name identifies the policy in reports.
	Name() string
}

// unitHeap orders units by an arbitrary key function.
type unitHeap struct {
	units []*Unit
	less  func(a, b *Unit) bool
}

func (h *unitHeap) Len() int           { return len(h.units) }
func (h *unitHeap) Less(i, j int) bool { return h.less(h.units[i], h.units[j]) }
func (h *unitHeap) Swap(i, j int) {
	h.units[i], h.units[j] = h.units[j], h.units[i]
	h.units[i].index = i
	h.units[j].index = j
}
func (h *unitHeap) Push(x interface{}) {
	u := x.(*Unit)
	u.index = len(h.units)
	h.units = append(h.units, u)
}
func (h *unitHeap) Pop() interface{} {
	old := h.units
	n := len(old)
	u := old[n-1]
	old[n-1] = nil
	h.units = old[:n-1]
	return u
}

// llf is the paper's least-laxity-first policy.
type llf struct {
	heap     unitHeap
	capacity int
	m        policyMetrics
}

// NewLLF creates a least-laxity-first queue holding at most capacity units
// (capacity <= 0 means unbounded).
func NewLLF(capacity int) Policy {
	q := &llf{capacity: capacity, m: newPolicyMetrics("llf")}
	q.heap.less = func(a, b *Unit) bool {
		if a.laxityKey() != b.laxityKey() {
			return a.laxityKey() < b.laxityKey()
		}
		return a.Enqueued < b.Enqueued
	}
	return q
}

func (q *llf) Name() string { return "llf" }
func (q *llf) Len() int     { return q.heap.Len() }

func (q *llf) Push(u *Unit) bool {
	if q.capacity > 0 && q.heap.Len() >= q.capacity {
		q.m.onReject()
		return false
	}
	heap.Push(&q.heap, u)
	q.m.onPush()
	return true
}

func (q *llf) Next(now time.Duration) (*Unit, []*Unit) {
	var dropped []*Unit
	for q.heap.Len() > 0 {
		u := q.heap.units[0]
		if u.Laxity(now) < 0 {
			heap.Pop(&q.heap)
			q.m.onDrop(u, now)
			dropped = append(dropped, u)
			continue
		}
		heap.Pop(&q.heap)
		q.m.onRun(u, now)
		return u, dropped
	}
	return nil, dropped
}

// edf orders by absolute deadline (earliest-deadline-first), an ablation
// against LLF.
type edf struct {
	heap     unitHeap
	capacity int
	m        policyMetrics
}

// NewEDF creates an earliest-deadline-first queue.
func NewEDF(capacity int) Policy {
	q := &edf{capacity: capacity, m: newPolicyMetrics("edf")}
	q.heap.less = func(a, b *Unit) bool {
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return a.Enqueued < b.Enqueued
	}
	return q
}

func (q *edf) Name() string { return "edf" }
func (q *edf) Len() int     { return q.heap.Len() }

func (q *edf) Push(u *Unit) bool {
	if q.capacity > 0 && q.heap.Len() >= q.capacity {
		q.m.onReject()
		return false
	}
	heap.Push(&q.heap, u)
	q.m.onPush()
	return true
}

func (q *edf) Next(now time.Duration) (*Unit, []*Unit) {
	var dropped []*Unit
	for q.heap.Len() > 0 {
		u := q.heap.units[0]
		if u.Laxity(now) < 0 {
			heap.Pop(&q.heap)
			q.m.onDrop(u, now)
			dropped = append(dropped, u)
			continue
		}
		heap.Pop(&q.heap)
		q.m.onRun(u, now)
		return u, dropped
	}
	return nil, dropped
}

// fifo runs units in arrival order, still dropping units that can no
// longer meet their deadlines (so the ablation isolates ordering, not
// admission). Popping advances a head index instead of reslicing
// (`units = units[1:]` would pin every popped *Unit in the backing array
// until the whole array is released); popped slots are nilled so the
// units become collectable immediately, and the buffer compacts once the
// dead prefix dominates.
type fifo struct {
	units    []*Unit
	head     int
	capacity int
	m        policyMetrics
}

// NewFIFO creates a first-in-first-out queue.
func NewFIFO(capacity int) Policy {
	return &fifo{capacity: capacity, m: newPolicyMetrics("fifo")}
}

func (q *fifo) Name() string { return "fifo" }
func (q *fifo) Len() int     { return len(q.units) - q.head }

func (q *fifo) Push(u *Unit) bool {
	if q.capacity > 0 && q.Len() >= q.capacity {
		q.m.onReject()
		return false
	}
	q.units = append(q.units, u)
	q.m.onPush()
	return true
}

// pop removes and returns the head unit; the caller guarantees Len() > 0.
func (q *fifo) pop() *Unit {
	u := q.units[q.head]
	q.units[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.units):
		// Empty: recycle the buffer from the start.
		q.units = q.units[:0]
		q.head = 0
	case q.head > 32 && q.head > len(q.units)/2:
		// Mostly dead prefix: slide the live tail down so the backing
		// array stops growing without bound under steady traffic.
		n := copy(q.units, q.units[q.head:])
		for i := n; i < len(q.units); i++ {
			q.units[i] = nil
		}
		q.units = q.units[:n]
		q.head = 0
	}
	return u
}

func (q *fifo) Next(now time.Duration) (*Unit, []*Unit) {
	var dropped []*Unit
	for q.Len() > 0 {
		u := q.pop()
		if u.Laxity(now) < 0 {
			q.m.onDrop(u, now)
			dropped = append(dropped, u)
			continue
		}
		q.m.onRun(u, now)
		return u, dropped
	}
	return nil, dropped
}

// DrainN pops up to max runnable units from p at time now, appending them
// to dst and returning it. Units dropped for negative laxity are handed to
// onDrop in the order they are encountered, so the drop/run interleaving
// is exactly that of repeated Next calls. The batched data plane drains a
// whole processing span with one call instead of one Next per unit.
func DrainN(p Policy, now time.Duration, max int, dst []*Unit, onDrop func(*Unit)) []*Unit {
	for len(dst) < max {
		u, dropped := p.Next(now)
		for _, d := range dropped {
			onDrop(d)
		}
		if u == nil {
			break
		}
		dst = append(dst, u)
	}
	return dst
}

// NewPolicy constructs a policy by name ("llf", "edf" or "fifo"); unknown
// names fall back to LLF.
func NewPolicy(name string, capacity int) Policy {
	switch name {
	case "edf":
		return NewEDF(capacity)
	case "fifo":
		return NewFIFO(capacity)
	default:
		return NewLLF(capacity)
	}
}
