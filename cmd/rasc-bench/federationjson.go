package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"rasc.dev/rasc/internal/experiment"
)

// federationReport is the BENCH_federation.json schema: the same
// partitioned-catalog request sequences through a multi-cluster federated
// deployment and a flat single-solver baseline, compared on composition
// success, hand-off reliability and compose latency.
type federationReport struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Nodes      int    `json:"nodes"`
	Clusters   int    `json:"clusters"`
	Seeds      int    `json:"seeds"`
	Requests   int    `json:"requests_per_seed"`

	Federated federationRunJSON `json:"federated"`
	Flat      federationRunJSON `json:"flat"`
	// HandoffSuccessRate is committed hand-offs over attempts — the
	// headline number the CI smoke job checks.
	HandoffSuccessRate float64 `json:"handoff_success_rate"`
	// MaxBoundaryUtilization is the worst reserved/capacity fraction seen
	// on any boundary link; > 1 would mean the ledger oversubscribed.
	MaxBoundaryUtilization float64 `json:"max_boundary_utilization"`
}

// federationRunJSON is one side's aggregate measurement.
type federationRunJSON struct {
	Submitted            int     `json:"submitted"`
	Composed             int     `json:"composed"`
	CrossCluster         int     `json:"cross_cluster"`
	HandoffsOK           int64   `json:"handoffs_ok"`
	HandoffsFailed       int64   `json:"handoffs_failed"`
	HandoffsSaturated    int64   `json:"handoffs_saturated"`
	ComposedFraction     float64 `json:"composed_fraction"`
	DeliveredFraction    float64 `json:"delivered_fraction"`
	MeanComposeLatencyMs float64 `json:"mean_compose_latency_ms"`
}

func federationRunFrom(c experiment.FederationCell) federationRunJSON {
	return federationRunJSON{
		Submitted:            c.Submitted,
		Composed:             c.Composed,
		CrossCluster:         c.CrossCluster,
		HandoffsOK:           c.HandoffsOK,
		HandoffsFailed:       c.HandoffsFailed,
		HandoffsSaturated:    c.HandoffsSaturated,
		ComposedFraction:     c.ComposedFraction(),
		DeliveredFraction:    c.DeliveredFraction(),
		MeanComposeLatencyMs: c.MeanComposeLatencyMs(),
	}
}

// runFederationBenchJSON runs the federation comparison and writes it to
// path. A minSuccess > 0 turns the report into a regression gate on the
// hand-off success rate (and always fails on an oversubscribed boundary).
func runFederationBenchJSON(path string, minSuccess float64) error {
	res, err := experiment.RunFederation(experiment.FederationConfig{
		Nodes:    24,
		Clusters: 3,
		Seeds:    []int64{1, 2, 3},
		Requests: 12,
		Progress: func(line string) { fmt.Println(line) },
	})
	if err != nil {
		return err
	}
	fed := res.Aggregate(func(r experiment.FederationRun) experiment.FederationCell { return r.Federated })
	flat := res.Aggregate(func(r experiment.FederationRun) experiment.FederationCell { return r.Flat })
	report := federationReport{
		GoVersion:              runtime.Version(),
		GoMaxProcs:             runtime.GOMAXPROCS(0),
		Nodes:                  res.Config.Nodes,
		Clusters:               res.Config.Clusters,
		Seeds:                  len(res.Config.Seeds),
		Requests:               res.Config.Requests,
		Federated:              federationRunFrom(fed),
		Flat:                   federationRunFrom(flat),
		HandoffSuccessRate:     fed.HandoffSuccessRate(),
		MaxBoundaryUtilization: fed.MaxBoundaryUtilization,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if report.MaxBoundaryUtilization > 1 {
		return fmt.Errorf("boundary link oversubscribed: utilization %.3f", report.MaxBoundaryUtilization)
	}
	if minSuccess > 0 && report.HandoffSuccessRate < minSuccess {
		return fmt.Errorf("hand-off success rate %.3f below required %.3f", report.HandoffSuccessRate, minSuccess)
	}
	return nil
}
