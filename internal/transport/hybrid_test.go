package transport

import (
	"sync"
	"testing"
)

func newHybridPair(t *testing.T) (*HybridEndpoint, *HybridEndpoint) {
	t.Helper()
	a, err := NewHybrid("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHybrid("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestHybridControlOverTCP(t *testing.T) {
	a, b := newHybridPair(t)
	var mu sync.Mutex
	var got []Message
	b.SetHandler(func(from Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, msg)
	})
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), Message{Type: "ctl", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 50
	})
	mu.Lock()
	defer mu.Unlock()
	for i, m := range got { // TCP preserves order
		if m.Payload[0] != byte(i) {
			t.Fatalf("control message %d out of order", i)
		}
	}
}

func TestHybridDatagramOverUDP(t *testing.T) {
	a, b := newHybridPair(t)
	var mu sync.Mutex
	received := 0
	var from Addr
	b.SetHandler(func(f Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		if msg.Type == "data" && msg.Pad == 1000 {
			received++
			from = f
		}
	})
	for i := 0; i < 20; i++ {
		if err := a.Send(b.Addr(), Message{Type: "data", Datagram: true, Pad: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	// UDP on loopback is effectively lossless; expect most to arrive.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received >= 15
	})
	mu.Lock()
	defer mu.Unlock()
	if from != a.Addr() {
		t.Fatalf("datagram source = %q, want %q", from, a.Addr())
	}
}

func TestHybridOversizedDatagramFallsBackToTCP(t *testing.T) {
	a, b := newHybridPair(t)
	var mu sync.Mutex
	got := 0
	b.SetHandler(func(f Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		if msg.Type == "big" && len(msg.Payload) == 200_000 {
			got++
		}
	})
	big := Message{Type: "big", Datagram: true, Payload: make([]byte, 200_000)}
	if err := a.Send(b.Addr(), big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == 1
	})
}

func TestHybridClose(t *testing.T) {
	a, b := newHybridPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), Message{Type: "x"}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestHybridSharedPort(t *testing.T) {
	a, _ := newHybridPair(t)
	// TCP and UDP must share one advertised address.
	if a.Addr() == "" {
		t.Fatal("no address")
	}
	if a.tcp.Addr() != a.Addr() {
		t.Fatal("TCP address differs from advertised address")
	}
}
