package control

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the adaptation control plane (metric catalogue
// rasc_control_*). The controller sits between failure detection and
// re-composition, so its event mix, suppression behavior and fallback
// ratio are the first place to look when reaction time regresses.
var (
	telEvents = telemetry.Default().CounterVec(
		"rasc_control_events_total",
		"Adaptation events published to the controller, by kind.", "kind")
	telActions = telemetry.Default().CounterVec(
		"rasc_control_reallocations_total",
		"Successful reallocations, by mode (incremental delta solve vs full teardown-and-recompose).", "mode")
	telFallbacks = telemetry.Default().Counter(
		"rasc_control_fallbacks_total",
		"Incremental reallocations that were infeasible and fell back to a full recompose.")
	telFailures = telemetry.Default().Counter(
		"rasc_control_failures_total",
		"Reallocation attempts that errored and were re-armed with backoff.")
	telSuppressed = telemetry.Default().CounterVec(
		"rasc_control_suppressed_total",
		"Events absorbed without immediate action, by reason (hysteresis, cooldown, backoff, inflight, limit).", "reason")
	telInflight = telemetry.Default().Gauge(
		"rasc_control_inflight",
		"Reallocations currently in flight across all applications.")
)
