package federation

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLedgerReserveAndRelease covers the sequential contract: debits
// accumulate, saturation rejects, releases refund.
func TestLedgerReserveAndRelease(t *testing.T) {
	l := NewLedger()
	l.SetLink("c0", "c1", 100)
	id1, err := l.Reserve("c0", "c1", 60)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve normalizes the pair order: c1→c0 draws on the same link.
	if _, err := l.Reserve("c1", "c0", 50); !errors.Is(err, ErrBoundarySaturated) {
		t.Fatalf("oversubscribing reserve: err = %v, want ErrBoundarySaturated", err)
	}
	id2, err := l.Reserve("c1", "c0", 40)
	if err != nil {
		t.Fatal(err)
	}
	u := l.Usage()
	if len(u) != 1 || u[0].ReservedBps != 100 || u[0].Credits != 2 {
		t.Fatalf("usage = %+v, want one link fully reserved with 2 credits", u)
	}
	if _, err := l.Reserve("c0", "c2", 1); !errors.Is(err, ErrBoundarySaturated) {
		t.Fatalf("reserve on an unconfigured link: err = %v, want ErrBoundarySaturated", err)
	}
	if _, err := l.Reserve("c0", "c1", 0); err == nil {
		t.Fatal("reserve of 0 bps succeeded")
	}
	l.Release(id1)
	l.Release(id2)
	u = l.Usage()
	if u[0].ReservedBps != 0 || u[0].Credits != 0 {
		t.Fatalf("usage after releases = %+v, want empty link", u)
	}
}

// TestLedgerConcurrentSolvesNeverOversubscribe is the consistency
// property behind concurrent per-cluster solves (run it with -race):
// goroutines hammer one boundary link with reserves and releases while
// auditors snapshot it, and at no observable moment may the reserved
// total exceed capacity. Everything released at the end must leave the
// link at exactly zero.
func TestLedgerConcurrentSolvesNeverOversubscribe(t *testing.T) {
	const capacityBps = 1000.0
	l := NewLedger()
	l.SetLink("c0", "c1", capacityBps)
	l.SetLink("c0", "c2", capacityBps)
	var wg sync.WaitGroup
	const workers, iters = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			remote := "c1"
			if w%2 == 1 {
				remote = "c2"
			}
			var held []CreditID
			for i := 0; i < iters; i++ {
				if id, err := l.Reserve("c0", remote, 1+rng.Float64()*60); err == nil {
					held = append(held, id)
				}
				for _, u := range l.Usage() {
					if u.ReservedBps > u.CapacityBps+1e-6 {
						t.Errorf("link %s oversubscribed: %.3f of %.3f bps", u.Link, u.ReservedBps, u.CapacityBps)
					}
					if u.Credits < 0 {
						t.Errorf("link %s has negative credits: %d", u.Link, u.Credits)
					}
				}
				if len(held) > 0 && rng.Intn(2) == 0 {
					id := held[len(held)-1]
					held = held[:len(held)-1]
					if !l.Release(id) {
						t.Errorf("live credit %d refused release", id)
					}
				}
			}
			for _, id := range held {
				l.Release(id)
			}
		}(w)
	}
	wg.Wait()
	for _, u := range l.Usage() {
		if u.Credits != 0 || u.ReservedBps > 1e-6 || u.ReservedBps < -1e-6 {
			t.Fatalf("link %s not fully refunded: %+v", u.Link, u)
		}
	}
}

// TestLedgerFailedHandoffRefundsExactlyOnce pins the exactly-once refund
// a failed hand-off relies on: its error paths may all race to release
// the same credit, and precisely one must win — the link balance moves
// by one debit, not several.
func TestLedgerFailedHandoffRefundsExactlyOnce(t *testing.T) {
	l := NewLedger()
	l.SetLink("c0", "c1", 1000)
	for round := 0; round < 200; round++ {
		id, err := l.Reserve("c0", "c1", 10)
		if err != nil {
			t.Fatal(err)
		}
		var refunds int32
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if l.Release(id) {
					atomic.AddInt32(&refunds, 1)
				}
			}()
		}
		wg.Wait()
		if refunds != 1 {
			t.Fatalf("round %d: credit refunded %d times, want exactly once", round, refunds)
		}
	}
	if u := l.Usage(); u[0].ReservedBps != 0 || u[0].Credits != 0 {
		t.Fatalf("link drifted after double-release storm: %+v", u[0])
	}
}
