package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestComposeMetricsCatalogue pins the rasc_compose_* family catalogue
// (# HELP / # TYPE lines) exposed on /metrics. Values are process-global
// and order-dependent across tests, so the golden captures the catalogue,
// not samples.
func TestComposeMetricsCatalogue(t *testing.T) {
	// Populate both families: two back-to-back compositions guarantee at
	// least one warm-scratch acquisition.
	in := topkInput(6, 5, "filter", "transcode")
	for i := 0; i < 3; i++ {
		if _, err := (&MinCost{}).Compose(in); err != nil {
			t.Fatal(err)
		}
	}

	exp := telemetry.Default().String()
	var got strings.Builder
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, "# HELP rasc_compose_") || strings.HasPrefix(line, "# TYPE rasc_compose_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "compose_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("compose catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	if !strings.Contains(exp, "rasc_compose_duration_seconds_count") {
		t.Error("compose duration histogram never observed")
	}
	if !strings.Contains(exp, "rasc_compose_solver_reuse_total") {
		t.Error("solver reuse counter missing from exposition")
	}
}
