package rasc

import (
	"testing"
	"time"
)

// TestWithDataPlaneDelivers checks the batched, sharded data plane end to
// end through the facade: the option threads down to every engine and the
// stream still delivers.
func TestWithDataPlaneDelivers(t *testing.T) {
	sys := New(WithNodes(16), WithSeed(4), WithDataPlane(DefaultDataPlane()))
	req := Request{
		ID:         "dp1",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter", "encrypt"}, Rate: 20}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	s := comp.Stats()
	if s.Emitted < 150 {
		t.Fatalf("emitted = %d, want >= 150", s.Emitted)
	}
	if s.DeliveredFraction() < 0.7 {
		t.Fatalf("delivered fraction = %g under batching", s.DeliveredFraction())
	}
}

// TestCompositionThroughput checks the typed throughput snapshot against
// the origin's delivery statistics and the conservation law it documents.
func TestCompositionThroughput(t *testing.T) {
	sys := New(WithNodes(16), WithSeed(5), WithDataPlane(DefaultDataPlane()))
	req := Request{
		ID:        "dp2",
		UnitBytes: 1250,
		Substreams: []Substream{
			{Services: []string{"filter"}, Rate: 10},
			{Services: []string{"filter", "transcode"}, Rate: 5},
		},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)

	ths := comp.Throughput()
	if len(ths) != 2 {
		t.Fatalf("Throughput returned %d substreams, want 2", len(ths))
	}
	stats := comp.Stats()
	var emitted, delivered int64
	for i, th := range ths {
		if th.Req != "dp2" || th.Substream != i {
			t.Fatalf("substream %d snapshot mislabeled: %+v", i, th)
		}
		if th.EmittedUnits == 0 || th.DeliveredUnits == 0 {
			t.Fatalf("substream %d saw no traffic: %+v", i, th)
		}
		if th.EmittedBytes < th.EmittedUnits || th.DeliveredBytes < th.DeliveredUnits {
			t.Fatalf("substream %d byte counters below unit counters: %+v", i, th)
		}
		if got := th.DeliveredUnits + th.DroppedUnits; got > th.EmittedUnits {
			t.Fatalf("substream %d accounts more fates than emissions: %+v", i, th)
		}
		emitted += th.EmittedUnits
		delivered += th.DeliveredUnits
	}
	if emitted != stats.Emitted {
		t.Fatalf("Throughput emitted %d != Stats emitted %d", emitted, stats.Emitted)
	}
	if delivered != stats.Received {
		t.Fatalf("Throughput delivered %d != Stats received %d", delivered, stats.Received)
	}
}

// TestThroughputSurvivesStop pins the documented difference between the
// deprecated per-engine counters and the Throughput API: counters remain
// readable after the composition is stopped.
func TestThroughputSurvivesStop(t *testing.T) {
	sys := New(WithNodes(12), WithSeed(6))
	req := Request{
		ID:         "dp3",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 10}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5 * time.Second)
	before := comp.Throughput()[0]
	if before.EmittedUnits == 0 {
		t.Fatal("no traffic before Stop")
	}
	comp.Stop()
	after := comp.Throughput()[0]
	if after.EmittedUnits < before.EmittedUnits || after.DeliveredUnits < before.DeliveredUnits {
		t.Fatalf("Throughput regressed across Stop: before %+v, after %+v", before, after)
	}
	if comp.Stats().Emitted != 0 {
		t.Log("note: deprecated Stats().Emitted now survives Stop; update the doc note on Stats")
	}
}
