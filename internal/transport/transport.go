// Package transport defines the message-passing abstraction the overlay and
// stream runtime are written against, with two implementations: an
// in-process transport bound to the network simulator (package mem semantics
// live here) and a TCP transport over real sockets (tcptransport.go).
package transport

import "errors"

// Addr identifies an endpoint. The in-memory transport uses "sim://<n>";
// the TCP transport uses "host:port".
type Addr string

// Message is the unit of exchange. Type routes the message to a protocol
// handler at the receiver; Payload is an opaque encoded body. Pad declares
// additional bytes of application data that the message stands for (stream
// data units carry a Pad instead of their literal bytes so the simulator
// charges their true size without encoding megabytes of padding).
type Message struct {
	Type    string `json:"t"`
	Payload []byte `json:"p,omitempty"`
	Pad     int    `json:"pad,omitempty"`
	// Datagram marks the message as loss-tolerant (UDP-like): it may be
	// dropped under link congestion, and the receiver may be told about
	// drops at its own downlink. Control traffic leaves this false and
	// is delivered reliably (TCP-like), only ever delayed.
	Datagram bool `json:"dg,omitempty"`
}

// WireSize estimates the on-the-wire size of the message in bytes,
// including a fixed per-message header allowance. The simulator charges
// this size against link bandwidth.
func (m Message) WireSize() int {
	const headerOverhead = 48 // framing + type tag + addressing
	return headerOverhead + len(m.Type) + len(m.Payload) + m.Pad
}

// Handler processes an inbound message.
type Handler func(from Addr, msg Message)

// Endpoint is a bound transport endpoint.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() Addr
	// Send transmits msg to the destination. Delivery is best-effort;
	// an error reports only local/immediate failures (for datagrams,
	// that includes a full uplink buffer).
	Send(to Addr, msg Message) error
	// SetHandler installs the inbound message handler. It must be set
	// before the first message can be delivered.
	SetHandler(h Handler)
	// SetDropHandler installs a handler for datagrams dropped at this
	// endpoint's own downlink (receive-buffer overflow). Transports
	// that cannot observe such drops never call it.
	SetDropHandler(h Handler)
	// Close releases the endpoint. Subsequent Sends fail.
	Close() error
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownAddr is returned when the destination address cannot be
// resolved.
var ErrUnknownAddr = errors.New("transport: unknown address")

// ErrBacklog is returned by Send when the local uplink's buffer is full
// and the message was dropped.
var ErrBacklog = errors.New("transport: uplink backlog full")
