package live

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// startCluster boots n live nodes on loopback TCP, the first as bootstrap.
// Services are announced only after the whole ring has formed, so the
// registrations land at their final roots.
func startCluster(t *testing.T, n int, servicesPerNode [][]string) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	var bootstrap string
	for i := 0; i < n; i++ {
		node, err := Start(Config{
			Listen:    "127.0.0.1:0",
			Name:      fmt.Sprintf("live-test-%d", i),
			Bootstrap: bootstrap,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		t.Cleanup(node.Close)
		nodes[i] = node
		if i == 0 {
			bootstrap = node.Addr()
		}
	}
	// Let the ring converge before registering services.
	for _, node := range nodes {
		node.DoSync(func() { node.Overlay.Stabilize() })
	}
	time.Sleep(200 * time.Millisecond)
	for i, node := range nodes {
		if servicesPerNode == nil || servicesPerNode[i] == nil {
			continue
		}
		svcs := servicesPerNode[i]
		node.DoSync(func() {
			for _, svc := range svcs {
				node.Dir.Announce(svc)
			}
		})
	}
	return nodes
}

func TestLiveJoin(t *testing.T) {
	nodes := startCluster(t, 4, nil)
	for i, n := range nodes {
		joined := false
		n.DoSync(func() { joined = n.Overlay.Joined() })
		if !joined {
			t.Fatalf("node %d not joined", i)
		}
	}
	// Everyone should know at least one peer.
	for i, n := range nodes {
		known := 0
		n.DoSync(func() { known = n.Overlay.NumKnown() })
		if known == 0 {
			t.Fatalf("node %d knows no peers", i)
		}
	}
}

func TestLiveDiscovery(t *testing.T) {
	nodes := startCluster(t, 4, [][]string{
		nil,
		{"filter"},
		{"filter", "encrypt"},
		{"encrypt"},
	})
	// Allow announcements to propagate.
	time.Sleep(300 * time.Millisecond)
	found := make(chan int, 1)
	nodes[0].Do(func() {
		nodes[0].Dir.Lookup("filter", 5*time.Second, func(hosts []overlay.NodeInfo, err error) {
			if err != nil {
				t.Errorf("lookup: %v", err)
			}
			found <- len(hosts)
		})
	})
	select {
	case n := <-found:
		if n != 2 {
			t.Fatalf("found %d filter hosts, want 2", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lookup never completed")
	}
}

func TestLiveUDPDataPath(t *testing.T) {
	// Same scenario as TestLiveSubmitAndStream but with stream data on
	// UDP: control must still work, and most data units must arrive.
	var nodes []*Node
	var bootstrap string
	plan := [][]string{nil, {"filter"}, {"filter", "encrypt"}, {"encrypt"}}
	for i, svcs := range plan {
		node, err := Start(Config{
			Listen:    "127.0.0.1:0",
			Name:      fmt.Sprintf("udp-test-%d", i),
			Bootstrap: bootstrap,
			UDPData:   true,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		t.Cleanup(node.Close)
		nodes = append(nodes, node)
		if i == 0 {
			bootstrap = node.Addr()
		}
		_ = svcs
	}
	for _, node := range nodes {
		node.DoSync(func() { node.Overlay.Stabilize() })
	}
	time.Sleep(200 * time.Millisecond)
	for i, svcs := range plan {
		node := nodes[i]
		list := svcs
		node.DoSync(func() {
			for _, svc := range list {
				node.Dir.Announce(svc)
			}
		})
	}
	time.Sleep(300 * time.Millisecond)
	req := spec.Request{
		ID:        "udp-req",
		UnitBytes: 800,
		Substreams: []spec.Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 25},
		},
	}
	if _, err := nodes[0].Submit(req, "mincost", 10*time.Second); err != nil {
		t.Fatalf("submit: %v", err)
	}
	time.Sleep(1500 * time.Millisecond)
	s := nodes[0].Stats("udp-req", 0)
	if s.Emitted < 10 {
		t.Fatalf("emitted only %d", s.Emitted)
	}
	if s.Received < s.Emitted/2 {
		t.Fatalf("UDP path delivered %d of %d", s.Received, s.Emitted)
	}
}

func TestLiveSubmitAndStream(t *testing.T) {
	nodes := startCluster(t, 5, [][]string{
		nil,
		{"filter"},
		{"filter", "encrypt"},
		{"encrypt"},
		{"filter", "encrypt"},
	})
	time.Sleep(300 * time.Millisecond)
	req := spec.Request{
		ID:        "live-req",
		UnitBytes: 500,
		Substreams: []spec.Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 20},
		},
	}
	graph, err := nodes[0].Submit(req, "mincost", 10*time.Second)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if len(graph.Placements) != 2 {
		t.Fatalf("placements = %d, want 2", len(graph.Placements))
	}
	// Stream for a bit of real time, then check delivery.
	time.Sleep(1500 * time.Millisecond)
	s := nodes[0].Stats("live-req", 0)
	if s.Emitted < 10 {
		t.Fatalf("source emitted only %d units", s.Emitted)
	}
	if s.Received < s.Emitted/2 {
		t.Fatalf("delivered %d of %d units", s.Received, s.Emitted)
	}
	if s.MeanDelay <= 0 {
		t.Fatal("mean delay must be positive")
	}
}
