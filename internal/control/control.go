// Package control is the origin-side adaptation control plane: the
// "dynamic" half of dynamic rate allocation, unified behind one
// event-driven controller. Monitoring digests, the gossip failure
// detector, transport circuit breakers and the periodic delivery-rate
// check all publish typed events onto a single channel; the controller
// applies hysteresis, cooldown and concurrency limits, then reallocates
// rate *incrementally* — re-solving only the affected substreams with the
// surviving placements pre-seeded as zero-cost residual flow
// (core.MinCost.ComposeDelta) — and falls back to a full
// teardown-and-recompose only when the incremental solve is infeasible.
package control

import (
	"errors"
	"sync"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
)

// ErrUnknownApp is returned by Actions implementations when the
// application no longer exists (finished or torn down); the controller
// drops its state instead of retrying.
var ErrUnknownApp = errors.New("control: unknown application")

// Actions is the controller's view of the stream engine. Implementations
// must invoke the done callback exactly once, from the controller's
// execution context (the engine loop in live deployments, the simulator
// event loop in simulations).
type Actions interface {
	// AppsOn returns the IDs of live origin applications with a component
	// placed on host, in deterministic (sorted) order.
	AppsOn(host overlay.ID) []string
	// Reallocate incrementally shifts the application's rate away from
	// the degraded hosts: only the listed substreams (nil = all affected)
	// are re-solved, surviving placements keep their flow, sinks and
	// sources are not restarted. A wrapped core.ErrNoFeasiblePlacement
	// reports that the surviving hosts cannot absorb the displaced rate.
	Reallocate(app string, degraded map[overlay.ID]bool, substreams []int, done func(error))
	// Recompose tears the application down and re-composes it from fresh
	// discovery and monitoring state. upgrade selects the best-effort
	// upgrade composer for below-desired admissions.
	Recompose(app string, upgrade bool, done func(error))
}

// Config tunes the controller. The zero value plus a Clock is usable; all
// other fields default as documented.
type Config struct {
	// Clock schedules event draining and retry timers. Required.
	Clock clock.Clock
	// RateHysteresis is how many RateBelowThreshold strikes an application
	// accumulates before the controller acts (default 1: act on the first,
	// matching the pre-control-plane behavior).
	RateHysteresis int
	// DropHysteresis is how many DropRatioSpike strikes a host accumulates
	// before the controller shifts rate away from it (default 2: a single
	// noisy digest is not actionable).
	DropHysteresis int
	// StrikeTTL expires a strike counter when the next strike arrives more
	// than this long after the previous one (0 = never expire). Origins
	// publishing periodic rate events set this to a small multiple of
	// their check interval so strikes mean *consecutive* degradation.
	StrikeTTL time.Duration
	// Cooldown suppresses further actions on an application for this long
	// after a successful reallocation, letting the new split take effect
	// before it is judged (default 5s). Work arriving during cooldown is
	// merged and launched when the cooldown expires.
	Cooldown time.Duration
	// RetryBackoff is the delay before retrying a failed reallocation
	// (default 1s); it doubles per consecutive failure up to
	// MaxRetryBackoff (default 30s) and resets on success.
	RetryBackoff    time.Duration
	MaxRetryBackoff time.Duration
	// MaxConcurrent bounds reallocations in flight across all
	// applications (default 4). Excess work queues FIFO.
	MaxConcurrent int
	// DisableIncremental forces every action through the full
	// teardown-and-recompose path — the pre-control-plane baseline, kept
	// for comparison experiments.
	DisableIncremental bool
	// Observer, when set, receives decision-plane callbacks (event gate
	// verdicts, launches, outcomes) for the tracing layer.
	Observer Observer
}

func (c *Config) defaults() {
	if c.RateHysteresis <= 0 {
		c.RateHysteresis = 1
	}
	if c.DropHysteresis <= 0 {
		c.DropHysteresis = 2
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Second
	}
	if c.MaxRetryBackoff <= 0 {
		c.MaxRetryBackoff = 30 * time.Second
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
}

// work is the merged reallocation demand for one application.
type work struct {
	degraded map[overlay.ID]bool
	// substreams nil = all; otherwise the union of affected indexes.
	substreams map[int]bool
	allSubs    bool
	full       bool
	upgrade    bool
}

func (w *work) merge(o *work) {
	if o.full {
		w.full = true
	}
	if o.upgrade {
		w.upgrade = true
	}
	for id := range o.degraded {
		if w.degraded == nil {
			w.degraded = make(map[overlay.ID]bool)
		}
		w.degraded[id] = true
	}
	if o.allSubs {
		w.allSubs = true
	}
	for l := range o.substreams {
		if w.substreams == nil {
			w.substreams = make(map[int]bool)
		}
		w.substreams[l] = true
	}
}

func (w *work) substreamList() []int {
	if w.allSubs || w.substreams == nil {
		return nil
	}
	list := make([]int, 0, len(w.substreams))
	for l := range w.substreams {
		list = append(list, l)
	}
	// Deterministic order for the delta solve and its telemetry.
	for i := 1; i < len(list); i++ {
		for j := i; j > 0 && list[j] < list[j-1]; j-- {
			list[j], list[j-1] = list[j-1], list[j]
		}
	}
	return list
}

// appState tracks one application's controller-side lifecycle.
type appState struct {
	inflight      bool
	cooldownUntil time.Duration
	backoff       time.Duration
	rateStrikes   int
	lastStrike    time.Duration
	pending       *work
	// timerArmed marks a scheduled flushPending (cooldown expiry or retry
	// backoff); cancelTimer cancels it.
	timerArmed  bool
	cancelTimer func()
}

// hostState tracks per-host drop-spike hysteresis.
type hostState struct {
	strikes    int
	lastStrike time.Duration
}

// Stats is a snapshot of the controller's action counters.
type Stats struct {
	// Incremental counts successful delta reallocations; Full counts
	// successful full recompositions (including fallbacks and upgrades).
	Incremental int64
	Full        int64
	// Fallbacks counts incremental solves that were infeasible and fell
	// back to a full recompose.
	Fallbacks int64
	// Failures counts reallocation attempts that errored and were
	// re-armed with backoff.
	Failures int64
}

// AppStatus is one application's controller-side posture, as reported by
// AppStatuses for introspection endpoints.
type AppStatus struct {
	App      string        `json:"app"`
	Inflight bool          `json:"inflight"`
	Pending  bool          `json:"pending"`
	Backoff  time.Duration `json:"backoff"`
	// CooldownRemaining is how much of the post-success cooldown is left
	// (0 when expired).
	CooldownRemaining time.Duration `json:"cooldown_remaining"`
	RateStrikes       int           `json:"rate_strikes"`
}

// AppStatuses snapshots every tracked application's gate state, sorted by
// application ID. Like the rest of the controller it must be called from
// the Clock's execution context.
func (c *Controller) AppStatuses() []AppStatus {
	now := c.cfg.Clock.Now()
	out := make([]AppStatus, 0, len(c.apps))
	for app, st := range c.apps {
		s := AppStatus{
			App:         app,
			Inflight:    st.inflight,
			Pending:     st.pending != nil,
			Backoff:     st.backoff,
			RateStrikes: st.rateStrikes,
		}
		if st.cooldownUntil > now {
			s.CooldownRemaining = st.cooldownUntil - now
		}
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].App < out[j-1].App; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Controller consumes adaptation events and drives reallocations through
// an Actions implementation. Publish is safe for concurrent use; all other
// processing runs in the Clock's execution context.
type Controller struct {
	cfg Config
	act Actions

	mu             sync.Mutex
	queue          []Event
	drainScheduled bool
	closed         bool

	apps    map[string]*appState
	hosts   map[overlay.ID]*hostState
	inTotal int
	waiting []string // apps with pending work blocked on MaxConcurrent, FIFO

	stats Stats
}

// New builds a controller. cfg.Clock is required.
func New(cfg Config, act Actions) *Controller {
	cfg.defaults()
	if cfg.Clock == nil {
		panic("control: Config.Clock is required")
	}
	return &Controller{
		cfg:   cfg,
		act:   act,
		apps:  make(map[string]*appState),
		hosts: make(map[overlay.ID]*hostState),
	}
}

// Publish enqueues one event and schedules a drain on the controller's
// clock. It is the only method safe to call from outside the controller's
// execution context.
func (c *Controller) Publish(ev Event) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, ev)
	schedule := !c.drainScheduled
	c.drainScheduled = true
	c.mu.Unlock()
	if schedule {
		c.cfg.Clock.After(0, c.drain)
	}
}

// Close cancels pending timers and makes further events no-ops. In-flight
// reallocations finish but trigger no follow-up work.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.queue = nil
	apps := c.apps
	c.mu.Unlock()
	for _, st := range apps {
		if st.cancelTimer != nil {
			st.cancelTimer()
		}
	}
}

// Stats returns a snapshot of the action counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Inflight returns the number of reallocations currently running.
func (c *Controller) Inflight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inTotal
}

func (c *Controller) drain() {
	c.mu.Lock()
	evs := c.queue
	c.queue = nil
	c.drainScheduled = false
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	for _, ev := range evs {
		c.handle(ev)
	}
}

func (c *Controller) app(id string) *appState {
	st := c.apps[id]
	if st == nil {
		st = &appState{}
		c.apps[id] = st
	}
	return st
}

// strike advances a TTL-expiring counter and reports whether it reached
// the threshold (resetting it when it did).
func (c *Controller) strike(count *int, last *time.Duration, threshold int) bool {
	now := c.cfg.Clock.Now()
	if c.cfg.StrikeTTL > 0 && *count > 0 && now-*last > c.cfg.StrikeTTL {
		*count = 0
	}
	*count++
	*last = now
	if *count < threshold {
		return false
	}
	*count = 0
	return true
}

func (c *Controller) handle(ev Event) {
	telEvents.With(ev.Kind.String()).Inc()
	switch ev.Kind {
	case MemberDead, BreakerOpen:
		// Failure-detector verdicts act immediately: the host is (or is
		// about to be declared) gone, waiting only widens the dip. They
		// are edge-triggered — fired once — so gated work is latched.
		c.forApps(ev, func(app string) {
			c.request(app, &ev, &work{degraded: map[overlay.ID]bool{ev.Host: true}, allSubs: true}, true)
		})
	case DropRatioSpike:
		h := c.hosts[ev.Host]
		if h == nil {
			h = &hostState{}
			c.hosts[ev.Host] = h
		}
		if !c.strike(&h.strikes, &h.lastStrike, c.cfg.DropHysteresis) {
			telSuppressed.With("hysteresis").Inc()
			c.observeGate(ev.App, ev, GateHysteresis, false)
			return
		}
		c.forApps(ev, func(app string) {
			c.request(app, &ev, &work{degraded: map[overlay.ID]bool{ev.Host: true}, allSubs: true}, false)
		})
	case RateBelowThreshold:
		st := c.app(ev.App)
		if !c.strike(&st.rateStrikes, &st.lastStrike, c.cfg.RateHysteresis) {
			telSuppressed.With("hysteresis").Inc()
			c.observeGate(ev.App, ev, GateHysteresis, false)
			return
		}
		w := &work{}
		if ev.Host == (overlay.ID{}) {
			// No culprit to shift away from: the incremental solve has
			// nothing to exclude, so go straight to a full recompose.
			w.full = true
		} else {
			w.degraded = map[overlay.ID]bool{ev.Host: true}
		}
		if ev.Substreams == nil {
			w.allSubs = true
		} else {
			w.substreams = make(map[int]bool, len(ev.Substreams))
			for _, l := range ev.Substreams {
				w.substreams[l] = true
			}
		}
		c.request(ev.App, &ev, w, false)
	case UpgradePossible:
		c.request(ev.App, &ev, &work{full: true, upgrade: true, allSubs: true}, false)
	case FairShareChanged:
		// A fairness recompute moved the tenant's rate cap. The cap is
		// applied by the submission path, so a full recompose (with the
		// upgrade composer — the cap may have risen) converges the
		// application onto it. Edge-triggered: the gate fires once per
		// recompute, so gated work is latched.
		c.request(ev.App, &ev, &work{full: true, upgrade: true, allSubs: true}, true)
	case BoundaryLinkSaturated:
		// A hand-off was refused at the boundary ledger. There is no host
		// to shift away from (the scarcity is the inter-cluster link), so
		// re-plan the whole application. Edge-triggered per refusal.
		c.request(ev.App, &ev, &work{full: true, allSubs: true}, true)
	case RemoteCandidateLost:
		// A remote cluster went silent past its summary TTL. Its fragments
		// are unreachable state: tear down and re-compose from what still
		// answers. Edge-triggered — the TTL expiry fires once.
		c.request(ev.App, &ev, &work{full: true, allSubs: true}, true)
	}
}

// forApps resolves an event's target applications: the explicit App, or
// every application placed on the event's host.
func (c *Controller) forApps(ev Event, fn func(app string)) {
	if ev.App != "" {
		fn(ev.App)
		return
	}
	for _, app := range c.act.AppsOn(ev.Host) {
		fn(app)
	}
}

// request routes merged work for an application through the single-flight,
// cooldown and global-concurrency gates. latch decides what happens to
// gated work: edge-triggered events (a host died — the signal fires once)
// are remembered and launched when the gate clears; level-triggered events
// (delivered rate below threshold — re-published every check interval
// while the condition persists) are dropped, so that a condition which
// cleared on its own does not trigger a stale reallocation later. ev is
// the event that carried the work, nil when re-requesting merged pending
// work (the original events were already observed).
func (c *Controller) request(app string, ev *Event, w *work, latch bool) {
	st := c.app(app)
	if st.inflight {
		if latch {
			c.addPending(st, w)
		}
		telSuppressed.With("inflight").Inc()
		if ev != nil {
			c.observeGate(app, *ev, GateInflight, latch)
		}
		return
	}
	if st.timerArmed {
		// A backoff retry (or cooldown flush) is already scheduled for this
		// application. Fold latched work into it instead of racing it: this
		// is what paces a failing application at the backoff rate rather
		// than the event rate.
		if latch {
			c.addPending(st, w)
		}
		telSuppressed.With("backoff").Inc()
		if ev != nil {
			c.observeGate(app, *ev, GateBackoff, latch)
		}
		return
	}
	now := c.cfg.Clock.Now()
	if now < st.cooldownUntil {
		if latch {
			c.addPending(st, w)
			c.armTimer(app, st, st.cooldownUntil-now)
		}
		telSuppressed.With("cooldown").Inc()
		if ev != nil {
			c.observeGate(app, *ev, GateCooldown, latch)
		}
		return
	}
	if c.inTotal >= c.cfg.MaxConcurrent {
		if latch {
			c.addPending(st, w)
			c.enqueueWaiting(app)
		}
		telSuppressed.With("limit").Inc()
		if ev != nil {
			c.observeGate(app, *ev, GateLimit, latch)
		}
		return
	}
	if ev != nil {
		c.observeGate(app, *ev, GateNone, false)
	}
	c.launch(app, st, w)
}

func (c *Controller) addPending(st *appState, w *work) {
	if st.pending == nil {
		st.pending = &work{}
	}
	st.pending.merge(w)
}

func (c *Controller) enqueueWaiting(app string) {
	for _, a := range c.waiting {
		if a == app {
			return
		}
	}
	c.waiting = append(c.waiting, app)
}

// armTimer schedules flushPending after d, unless one is already armed.
func (c *Controller) armTimer(app string, st *appState, d time.Duration) {
	if st.timerArmed {
		return
	}
	st.timerArmed = true
	st.cancelTimer = c.cfg.Clock.After(d, func() {
		st.timerArmed = false
		st.cancelTimer = nil
		c.flushPending(app)
	})
}

// flushPending re-requests an application's merged pending work.
func (c *Controller) flushPending(app string) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	st := c.app(app)
	if st.pending == nil || st.inflight {
		return
	}
	w := st.pending
	st.pending = nil
	c.request(app, nil, w, true)
}

// dispatchWaiting launches queued work as global slots free up.
func (c *Controller) dispatchWaiting() {
	for len(c.waiting) > 0 && c.inTotal < c.cfg.MaxConcurrent {
		app := c.waiting[0]
		c.waiting = c.waiting[1:]
		c.flushPending(app)
	}
}

// launch runs one reallocation for an application.
func (c *Controller) launch(app string, st *appState, w *work) {
	st.inflight = true
	st.rateStrikes = 0
	c.inTotal++
	telInflight.Set(float64(c.inTotal))
	if c.cfg.DisableIncremental {
		w.full = true
	}
	mode := "incremental"
	if w.full {
		mode = "full"
	}
	c.observeLaunch(app, mode, w)
	fellBack := false
	onDone := func(err error) { c.finish(app, st, w, mode, fellBack, err) }
	if w.full {
		c.act.Recompose(app, w.upgrade, onDone)
		return
	}
	c.act.Reallocate(app, w.degraded, w.substreamList(), func(err error) {
		if err != nil && errors.Is(err, core.ErrNoFeasiblePlacement) {
			// The surviving hosts cannot absorb the displaced rate:
			// fall back to the teardown-and-recompose path.
			telFallbacks.Inc()
			c.mu.Lock()
			c.stats.Fallbacks++
			c.mu.Unlock()
			mode = "full"
			fellBack = true
			c.act.Recompose(app, false, onDone)
			return
		}
		onDone(err)
	})
}

// finish settles one completed reallocation: cooldown on success, backoff
// re-arm on failure, then hands freed slots to waiting applications.
func (c *Controller) finish(app string, st *appState, w *work, mode string, fellBack bool, err error) {
	st.inflight = false
	c.inTotal--
	telInflight.Set(float64(c.inTotal))
	now := c.cfg.Clock.Now()
	switch {
	case err == nil:
		telActions.With(mode).Inc()
		c.mu.Lock()
		if mode == "full" {
			c.stats.Full++
		} else {
			c.stats.Incremental++
		}
		c.mu.Unlock()
		st.backoff = 0
		st.cooldownUntil = now + c.cfg.Cooldown
		if st.pending != nil {
			c.armTimer(app, st, c.cfg.Cooldown)
		}
	case errors.Is(err, ErrUnknownApp):
		// The application finished while the work was queued; forget it.
		if st.cancelTimer != nil {
			st.cancelTimer()
		}
		delete(c.apps, app)
	default:
		telFailures.Inc()
		c.mu.Lock()
		c.stats.Failures++
		c.mu.Unlock()
		// A failed attempt re-arms immediately with exponential backoff —
		// the old adaptation loop instead parked the application until
		// the next periodic check.
		if st.backoff == 0 {
			st.backoff = c.cfg.RetryBackoff
		} else if st.backoff *= 2; st.backoff > c.cfg.MaxRetryBackoff {
			st.backoff = c.cfg.MaxRetryBackoff
		}
		c.addPending(st, w)
		c.armTimer(app, st, st.backoff)
	}
	if c.cfg.Observer != nil {
		c.cfg.Observer.OnOutcome(app, mode, fellBack, err, st.backoff)
	}
	c.dispatchWaiting()
}
