// Package mincostflow implements integer minimum-cost flow by successive
// shortest paths with node potentials (Bellman-Ford initialization followed
// by Dijkstra), the well-studied reduction RASC builds its composition
// algorithm on (the paper cites Edmonds-Karp and Goldberg's scaling
// algorithms; for composition graphs of at most a few hundred nodes SSP is
// the appropriate choice).
package mincostflow

import (
	"errors"
	"fmt"
	"math"
)

// ErrNegativeCycle is returned when the input graph contains a cycle of
// negative total cost reachable from the source.
var ErrNegativeCycle = errors.New("mincostflow: negative-cost cycle")

type arc struct {
	to   int
	rev  int // index of the reverse arc in adj[to]
	cap  int64
	cost int64
	flow int64
}

// ArcID identifies an arc added to a graph.
type ArcID struct{ node, idx int }

// Graph is a directed flow network with integer capacities and costs.
type Graph struct {
	adj [][]arc
}

// NewGraph creates a graph with n nodes numbered 0..n-1.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]arc, n)}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumArcs returns the number of arcs added with AddArc (forward arcs;
// their residual twins are not counted).
func (g *Graph) NumArcs() int {
	n := 0
	for u := range g.adj {
		n += len(g.adj[u])
	}
	return n / 2
}

// AddNode appends a new node and returns its index. On a graph recycled
// with Reset the node reuses the arc storage of its previous life.
func (g *Graph) AddNode() int {
	if len(g.adj) < cap(g.adj) {
		g.adj = g.adj[:len(g.adj)+1] // slot already truncated by Reset
	} else {
		g.adj = append(g.adj, nil)
	}
	return len(g.adj) - 1
}

// AddArc inserts a directed arc with the given capacity and per-unit cost
// and returns its identifier. Capacity must be non-negative.
func (g *Graph) AddArc(from, to int, capacity, cost int64) ArcID {
	if capacity < 0 {
		panic(fmt.Sprintf("mincostflow: negative capacity %d", capacity))
	}
	if from < 0 || from >= len(g.adj) || to < 0 || to >= len(g.adj) {
		panic(fmt.Sprintf("mincostflow: arc %d->%d outside graph of %d nodes", from, to, len(g.adj)))
	}
	fwd := arc{to: to, rev: len(g.adj[to]), cap: capacity, cost: cost}
	bwd := arc{to: from, rev: len(g.adj[from]), cap: 0, cost: -cost}
	g.adj[from] = append(g.adj[from], fwd)
	g.adj[to] = append(g.adj[to], bwd)
	return ArcID{node: from, idx: len(g.adj[from]) - 1}
}

// Flow returns the flow currently routed on the arc.
func (g *Graph) Flow(id ArcID) int64 { return g.adj[id.node][id.idx].flow }

// Residual returns the arc's remaining capacity.
func (g *Graph) Residual(id ArcID) int64 {
	a := g.adj[id.node][id.idx]
	return a.cap - a.flow
}

// ZeroCapacity removes an arc from further consideration by setting its
// capacity to its current flow.
func (g *Graph) ZeroCapacity(id ArcID) {
	a := &g.adj[id.node][id.idx]
	a.cap = a.flow
}

// ResetFlows clears all flow, preserving nodes, arcs and capacities.
func (g *Graph) ResetFlows() {
	for u := range g.adj {
		for i := range g.adj[u] {
			g.adj[u][i].flow = 0
		}
	}
}

// Reset reinitialises the graph to n empty nodes, recycling the adjacency
// arena: per-node arc slices keep their backing arrays, so rebuilding a
// similarly-shaped graph (the per-substream composition pattern) allocates
// nothing once the arena is warm.
func (g *Graph) Reset(n int) {
	full := g.adj[:cap(g.adj)]
	for i := range full {
		full[i] = full[i][:0]
	}
	if cap(g.adj) < n {
		grown := make([][]arc, n)
		copy(grown, full)
		g.adj = grown
	} else {
		g.adj = g.adj[:n]
	}
}

// Result reports the outcome of a min-cost flow computation.
type Result struct {
	// Flow is the amount actually routed (≤ the requested amount).
	Flow int64
	// Cost is the total cost of the routed flow.
	Cost int64
	// Iterations counts the solver's basic work units: augmenting paths
	// for successive shortest paths, scaling phases for cost scaling.
	Iterations int
}

const inf = int64(math.MaxInt64) / 4

// errBadEndpoints builds the shared bad-endpoint error.
func errBadEndpoints(s, t int) error {
	return fmt.Errorf("mincostflow: bad endpoints %d,%d", s, t)
}

// MinCostFlow routes up to want units from s to t at minimum total cost,
// augmenting along successive shortest paths. It returns the achieved flow
// and its cost. Costs may be negative as long as the graph has no
// negative-cost cycle. It draws a pooled Solver for its scratch; callers
// solving many instances should hold a Solver themselves.
func (g *Graph) MinCostFlow(s, t int, want int64) (Result, error) {
	sv := AcquireSolver()
	defer sv.Release()
	return sv.MinCostFlow(g, s, t, want)
}

func (g *Graph) hasNegativeCost() bool {
	for u := range g.adj {
		for i := range g.adj[u] {
			a := g.adj[u][i]
			if a.cap > a.flow && a.cost < 0 {
				return true
			}
		}
	}
	return false
}

// bellmanFord computes shortest distances from s over residual arcs into
// pot. It returns false when a negative cycle is reachable.
func (g *Graph) bellmanFord(s int, pot []int64) bool {
	n := len(g.adj)
	for i := range pot {
		pot[i] = inf
	}
	pot[s] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if pot[u] == inf {
				continue
			}
			for i := range g.adj[u] {
				a := g.adj[u][i]
				if a.cap <= a.flow {
					continue
				}
				if nd := pot[u] + a.cost; nd < pot[a.to] {
					pot[a.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
		if iter == n-1 {
			return false
		}
	}
	return true
}

// pqItem is one Dijkstra heap entry (see Solver.dijkstra).
type pqItem struct {
	node int
	dist int64
}

// PathFlow is one source-to-sink path carrying a positive amount of flow.
type PathFlow struct {
	Nodes  []int
	Amount int64
}

// Decompose splits the current flow into s→t paths. The flow on the graph
// is left untouched. Cycles in the flow (possible after cancelling) are
// ignored.
func (g *Graph) Decompose(s, t int) []PathFlow {
	// Work on a copy of the per-arc flows.
	rem := make([][]int64, len(g.adj))
	for u := range g.adj {
		rem[u] = make([]int64, len(g.adj[u]))
		for i := range g.adj[u] {
			rem[u][i] = g.adj[u][i].flow
		}
	}
	var out []PathFlow
	for {
		// Greedy path trace following positive remaining flow.
		path := []int{s}
		arcIdx := []int{}
		seen := map[int]bool{s: true}
		u := s
		for u != t {
			found := -1
			for i := range g.adj[u] {
				if g.adj[u][i].cap > 0 && rem[u][i] > 0 { // forward arcs only
					found = i
					break
				}
			}
			if found < 0 {
				return out // no more flow leaving u
			}
			v := g.adj[u][found].to
			if seen[v] {
				// Cycle: cancel it and restart.
				rem[u][found] = 0
				break
			}
			seen[v] = true
			path = append(path, v)
			arcIdx = append(arcIdx, found)
			u = v
		}
		if u != t {
			continue
		}
		amount := int64(math.MaxInt64)
		for i, idx := range arcIdx {
			if rem[path[i]][idx] < amount {
				amount = rem[path[i]][idx]
			}
		}
		if amount <= 0 {
			return out
		}
		for i, idx := range arcIdx {
			rem[path[i]][idx] -= amount
		}
		out = append(out, PathFlow{Nodes: path, Amount: amount})
	}
}
