package netsim

import (
	"testing"
	"time"
)

func TestUplinkBacklogDropsDatagrams(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{
		Latency:        fixedLatency(time.Millisecond),
		MaxLinkBacklog: 50 * time.Millisecond,
	})
	a := nw.AddNode(1e5, 1e5) // 100 kbit/s: a 1250-byte message takes 100ms
	b := nw.AddNode(1e7, 1e7)
	delivered := 0
	nw.SetHandler(b, func(NodeID, int, interface{}) { delivered++ })
	accepted := 0
	for i := 0; i < 10; i++ {
		if nw.SendDroppable(a, b, 1250, i) {
			accepted++
		}
	}
	s.Run()
	// First message starts serializing immediately; the second finds
	// 100ms of backlog (> 50ms) and is dropped, as are the rest.
	if accepted != 1 {
		t.Fatalf("accepted %d datagrams, want 1", accepted)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	if nw.Lost != 9 {
		t.Fatalf("Lost = %d, want 9", nw.Lost)
	}
}

func TestReliableSendNeverBacklogDropped(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{
		Latency:        fixedLatency(time.Millisecond),
		MaxLinkBacklog: 50 * time.Millisecond,
	})
	a := nw.AddNode(1e5, 1e5)
	b := nw.AddNode(1e7, 1e7)
	delivered := 0
	nw.SetHandler(b, func(NodeID, int, interface{}) { delivered++ })
	for i := 0; i < 10; i++ {
		if !nw.Send(a, b, 1250, i) {
			t.Fatal("reliable send reported rejection")
		}
	}
	s.Run()
	if delivered != 10 {
		t.Fatalf("delivered %d reliable messages, want 10", delivered)
	}
	if nw.Lost != 0 {
		t.Fatalf("Lost = %d", nw.Lost)
	}
}

func TestDownlinkBacklogNotifiesDropHandler(t *testing.T) {
	s := New(1)
	nw := NewNetwork(s, Config{
		Latency:        fixedLatency(time.Millisecond),
		MaxLinkBacklog: 50 * time.Millisecond,
	})
	// Two fast senders swamp one slow receiver downlink.
	a := nw.AddNode(1e8, 1e8)
	b := nw.AddNode(1e8, 1e8)
	c := nw.AddNode(1e8, 1e5) // 100 kbit/s downlink
	delivered, droppedAtC := 0, 0
	nw.SetHandler(c, func(NodeID, int, interface{}) { delivered++ })
	nw.SetDropHandler(c, func(from NodeID, size int, payload interface{}) {
		droppedAtC++
		if size != 1250 {
			t.Errorf("drop handler size = %d", size)
		}
	})
	for i := 0; i < 5; i++ {
		nw.SendDroppable(a, c, 1250, i)
		nw.SendDroppable(b, c, 1250, i)
	}
	s.Run()
	if droppedAtC == 0 {
		t.Fatal("drop handler never invoked")
	}
	if delivered+droppedAtC != 10 {
		t.Fatalf("delivered %d + dropped %d != 10", delivered, droppedAtC)
	}
	if nw.Lost != int64(droppedAtC) {
		t.Fatalf("Lost = %d, want %d", nw.Lost, droppedAtC)
	}
}

func TestCongestionJitterGrowsWithBacklog(t *testing.T) {
	delaysFor := func(congJitter float64) []time.Duration {
		s := New(5)
		nw := NewNetwork(s, Config{
			Latency:          fixedLatency(time.Millisecond),
			CongestionJitter: congJitter,
		})
		a := nw.AddNode(1e5, 1e5) // slow uplink builds backlog
		b := nw.AddNode(1e8, 1e8)
		var arrivals []time.Duration
		nw.SetHandler(b, func(NodeID, int, interface{}) { arrivals = append(arrivals, s.Now()) })
		for i := 0; i < 10; i++ {
			nw.SendDroppable(a, b, 1250, i)
		}
		s.Run()
		return arrivals
	}
	plain := delaysFor(0)
	jittered := delaysFor(1.0)
	if len(plain) != 10 || len(jittered) != 10 {
		t.Fatalf("deliveries: %d / %d", len(plain), len(jittered))
	}
	// With congestion jitter the later (more backlogged) messages must
	// arrive strictly later than without it, on average.
	var extra time.Duration
	for i := 5; i < 10; i++ {
		extra += jittered[i] - plain[i]
	}
	if extra <= 0 {
		t.Fatalf("congestion jitter added no delay (sum %v)", extra)
	}
}

func TestBackgroundFlowConsumesCapacity(t *testing.T) {
	s := New(3)
	nw := NewNetwork(s, Config{Latency: fixedLatency(time.Millisecond)})
	a := nw.AddNode(1e5, 1e5) // 100 kbit/s
	b := nw.AddNode(1e7, 1e7)
	// A 50 kbit/s background flow occupies half of a's uplink.
	nw.AddBackgroundFlow(a, b, 5e4, 1250)
	delivered := 0
	nw.SetHandler(b, func(NodeID, int, interface{}) { delivered++ })
	// Our own message now queues behind background packets: at t=1s,
	// send one application message and measure its delay.
	var appArrival time.Duration
	s.At(time.Second, func() {
		nw.SetHandler(b, func(_ NodeID, _ int, p interface{}) {
			if p == "app" {
				appArrival = s.Now()
			}
		})
		nw.Send(a, b, 1250, "app")
	})
	s.RunUntil(3 * time.Second)
	if appArrival == 0 {
		t.Fatal("application message never delivered")
	}
	// Serialization alone is 100ms; queueing behind background packets
	// must add delay beyond the bare 101ms minimum.
	delay := appArrival - time.Second
	if delay <= 101*time.Millisecond {
		t.Fatalf("no queueing behind background flow: delay %v", delay)
	}
	// Background packets themselves must never reach the handler.
	// (delivered counted only before the handler swap; the post-swap
	// handler filters for the app payload explicitly.)
}

func TestBackgroundFlowInvisibleToHandlers(t *testing.T) {
	s := New(4)
	nw := NewNetwork(s, Config{Latency: fixedLatency(time.Millisecond)})
	a := nw.AddNode(1e6, 1e6)
	b := nw.AddNode(1e6, 1e6)
	got := 0
	nw.SetHandler(b, func(NodeID, int, interface{}) { got++ })
	nw.AddBackgroundFlow(a, b, 1e5, 1250)
	s.RunUntil(2 * time.Second)
	if got != 0 {
		t.Fatalf("handler saw %d background packets", got)
	}
	if nw.Delivered == 0 {
		t.Fatal("background flow never transmitted")
	}
}

// TestQueueingDelayMonotoneInUtilization: the access-link model must show
// the fundamental queueing behaviour — mean delivery delay grows
// monotonically (and sharply near saturation) with offered load.
func TestQueueingDelayMonotoneInUtilization(t *testing.T) {
	meanDelay := func(utilization float64) time.Duration {
		s := New(8)
		nw := NewNetwork(s, Config{Latency: fixedLatency(time.Millisecond)})
		a := nw.AddNode(1e6, 1e6) // 1 Mbps uplink
		b := nw.AddNode(1e8, 1e8)
		var total time.Duration
		var count int
		sendTimes := map[int]time.Duration{}
		nw.SetHandler(b, func(_ NodeID, _ int, p interface{}) {
			total += s.Now() - sendTimes[p.(int)]
			count++
		})
		// Offered load: utilization × capacity with ±50% jittered gaps.
		unit := 1250 // 10 kbit
		meanGap := time.Duration(float64(10*time.Millisecond) / utilization)
		rng := s.Rand()
		at := time.Duration(0)
		for i := 0; i < 400; i++ {
			i := i
			at += meanGap/2 + time.Duration(rng.Int63n(int64(meanGap)))
			s.At(at, func() {
				sendTimes[i] = s.Now()
				nw.Send(a, b, unit, i)
			})
		}
		s.Run()
		if count == 0 {
			t.Fatal("nothing delivered")
		}
		return total / time.Duration(count)
	}
	low := meanDelay(0.3)
	mid := meanDelay(0.7)
	high := meanDelay(1.05) // transient overload
	if !(low < mid && mid < high) {
		t.Fatalf("delay not monotone in utilization: %v, %v, %v", low, mid, high)
	}
	if high < 2*low {
		t.Fatalf("no queueing blow-up near saturation: low %v, high %v", low, high)
	}
}

func TestPartitionBlocksBothDirections(t *testing.T) {
	s := New(6)
	nw := NewNetwork(s, Config{Latency: fixedLatency(time.Millisecond)})
	a := nw.AddNode(1e7, 1e7)
	b := nw.AddNode(1e7, 1e7)
	delivered := 0
	nw.SetHandler(a, func(NodeID, int, interface{}) { delivered++ })
	nw.SetHandler(b, func(NodeID, int, interface{}) { delivered++ })
	nw.SetPartition(a, b, true)
	nw.Send(a, b, 100, nil)
	nw.SendDroppable(b, a, 100, nil)
	s.Run()
	if delivered != 0 {
		t.Fatalf("partitioned pair delivered %d messages", delivered)
	}
	// Healing the partition restores delivery.
	nw.SetPartition(a, b, false)
	nw.Send(a, b, 100, nil)
	s.Run()
	if delivered != 1 {
		t.Fatalf("after healing delivered %d, want 1", delivered)
	}
}
