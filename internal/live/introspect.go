package live

import (
	"encoding/json"
	"net/http"
	"strconv"

	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
)

// The /debug/rasc/* handlers are standalone http.Handlers so deployments
// other than a live node — simulations under httptest, embedders of the
// rasc facade — can serve the same introspection surface over their own
// journals and buffers.

// decisionsResponse is the JSON body of /debug/rasc/decisions.
type decisionsResponse struct {
	// Total counts decisions ever completed; Evicted how many the ring
	// has since overwritten. Decisions is the retained window,
	// oldest-first.
	Total     int64            `json:"total"`
	Evicted   int64            `json:"evicted"`
	Decisions []trace.Decision `json:"decisions"`
}

// DecisionsHandler serves a decision journal: indented JSON by default,
// readable text with ?format=text, optionally filtered to one application
// with ?app=.
func DecisionsHandler(j *trace.Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if j == nil {
			http.Error(w, "decision journal disabled", http.StatusServiceUnavailable)
			return
		}
		ds := j.Decisions()
		if app := r.URL.Query().Get("app"); app != "" {
			kept := ds[:0]
			for _, d := range ds {
				if d.App == app {
					kept = append(kept, d)
				}
			}
			ds = kept
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(trace.FormatDecisions(ds)))
			return
		}
		writeJSON(w, decisionsResponse{Total: j.Total(), Evicted: j.Evicted(), Decisions: ds})
	})
}

// CompositionHandler serves the live execution graphs of every origin
// application as indented JSON. snapshot runs per request; wire it through
// the node's actor loop.
func CompositionHandler(snapshot func() []stream.AppComposition) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, snapshot())
	})
}

// TraceHandler serves the per-unit event buffer: ?req= and ?substream=
// select a stream; with ?seq= it renders that unit's timeline as text,
// without it the per-hop mean latencies as JSON. buffer runs per request
// and may return nil when tracing is off.
func TraceHandler(buffer func() *trace.Buffer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b := buffer()
		if b == nil {
			http.Error(w, "unit tracing disabled", http.StatusServiceUnavailable)
			return
		}
		q := r.URL.Query()
		req := q.Get("req")
		if req == "" {
			http.Error(w, "missing req parameter", http.StatusBadRequest)
			return
		}
		substream, _ := strconv.Atoi(q.Get("substream"))
		if seqStr := q.Get("seq"); seqStr != "" {
			seq, err := strconv.ParseInt(seqStr, 10, 64)
			if err != nil {
				http.Error(w, "bad seq parameter", http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write([]byte(trace.FormatTimeline(b.Timeline(req, substream, seq))))
			return
		}
		type hop struct {
			Stage int    `json:"stage"`
			Count int    `json:"count"`
			Mean  string `json:"mean"`
		}
		lats := b.StageLatencies(req, substream)
		hops := make([]hop, 0, len(lats))
		for _, l := range lats {
			hops = append(hops, hop{Stage: l.Stage, Count: l.Count, Mean: l.Mean.String()})
		}
		writeJSON(w, hops)
	})
}

// DataPlaneHandler serves the engine's data-plane posture — effective
// batching/sharding configuration, per-shard queue depths, open batch
// state, drop counters and per-substream throughput snapshots — as
// indented JSON, optionally filtered to one request with ?req=. status
// runs per request; wire it through the node's actor loop.
func DataPlaneHandler(status func() stream.DataPlaneStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := status()
		if req := r.URL.Query().Get("req"); req != "" {
			kept := st.Throughputs[:0]
			for _, t := range st.Throughputs {
				if t.Req == req {
					kept = append(kept, t)
				}
			}
			st.Throughputs = kept
		}
		writeJSON(w, st)
	})
}

// tenantsResponse is the JSON body of /debug/rasc/tenants.
type tenantsResponse struct {
	// Totals is the gate's aggregate posture; Tenants every tracked
	// application — admitted ones first (sorted by ID), then the
	// admission queue in promotion order. Hosts is the per-host
	// capacity ledger (absent unless the gate runs one).
	Totals  tenant.Totals       `json:"totals"`
	Tenants []tenant.Status     `json:"tenants"`
	Hosts   []tenant.HostBudget `json:"hosts,omitempty"`
}

// TenantsHandler serves the admission gate's posture as indented JSON,
// optionally filtered to one application with ?app=. gate runs per
// request and may return nil when tenancy is off.
func TenantsHandler(gate func() *tenant.Gate) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := gate()
		if g == nil {
			http.Error(w, "tenancy disabled", http.StatusServiceUnavailable)
			return
		}
		ts := g.Snapshot()
		if app := r.URL.Query().Get("app"); app != "" {
			kept := ts[:0]
			for _, t := range ts {
				if t.App == app {
					kept = append(kept, t)
				}
			}
			ts = kept
		}
		resp := tenantsResponse{Totals: g.Totals(), Tenants: ts}
		if g.PerHostLedger() {
			resp.Hosts = g.Hosts()
		}
		writeJSON(w, resp)
	})
}

// ClustersStatus is the JSON body of /debug/rasc/clusters: one node's
// federation posture — its own cluster summary, the remote summaries it
// holds, boundary-link accounting and committed cross-cluster hand-offs.
type ClustersStatus struct {
	Cluster string `json:"cluster"`
	// Local is the summary this node would advertise across a boundary.
	Local gossip.ClusterSummary `json:"local"`
	// Remotes are the fresh (within TTL) remote cluster summaries held.
	Remotes []gossip.ClusterSummary `json:"remotes,omitempty"`
	// Links is the boundary ledger's per-link credit/debit accounting.
	Links []federation.LinkUsage `json:"links,omitempty"`
	// Handoffs are this node's committed cross-cluster hand-offs.
	Handoffs []federation.HandoffRef `json:"handoffs,omitempty"`
	Stats    federation.Stats        `json:"stats"`
}

// ClustersHandler serves a node's federation posture as indented JSON.
// status runs per request (wire it through the node's actor loop) and may
// return nil when federation is off.
func ClustersHandler(status func() *ClustersStatus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		st := status()
		if st == nil {
			http.Error(w, "federation disabled", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, st)
	})
}

// writeJSON writes v as indented JSON (these are debugging endpoints read
// by humans and golden tests; compactness does not matter).
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
