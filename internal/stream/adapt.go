package stream

import (
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// AdaptationConfig tunes the origin-side adaptation loop: the "dynamic"
// half of dynamic rate allocation. The origin watches each of its live
// applications' delivery rates; when a substream falls below
// MinRateFraction of its requirement over a check interval (a failed or
// badly congested component), the application is torn down and re-composed
// from fresh discovery and monitoring state.
type AdaptationConfig struct {
	// Interval between checks (default 5s).
	Interval time.Duration
	// MinRateFraction of the required rate below which a substream
	// triggers re-composition (default 0.5).
	MinRateFraction float64
	// Composer used for re-composition (default MinCost).
	Composer core.Composer
	// UpgradeComposer is used for upgrade attempts of streams admitted
	// below their desired rate (default MinCost with best-effort at
	// 50%, so a failed upgrade still re-admits at the achievable rate).
	UpgradeComposer core.Composer
	// Timeout for the re-composition RPCs (default 10s).
	Timeout time.Duration
}

func (c *AdaptationConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Second
	}
	if c.MinRateFraction <= 0 {
		c.MinRateFraction = 0.5
	}
	if c.Composer == nil {
		c.Composer = &core.MinCost{}
	}
	if c.UpgradeComposer == nil {
		c.UpgradeComposer = &core.MinCost{BestEffortFraction: 0.5}
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
}

// originState tracks one application originated at this engine for
// adaptation purposes.
type originState struct {
	graph *core.ExecutionGraph
	// desired is the request as originally submitted; a best-effort
	// admission may have lowered graph.Request's rates below it.
	desired      spec.Request
	lastReceived map[int]int64
	lastCheck    time.Duration
	recomposing  bool
}

// admittedBelowDesired reports whether the live graph carries less than
// the originally requested rate.
func (st *originState) admittedBelowDesired() bool {
	if len(st.desired.Substreams) != len(st.graph.Request.Substreams) {
		return false
	}
	for l, ss := range st.desired.Substreams {
		if st.graph.Request.Substreams[l].Rate < ss.Rate {
			return true
		}
	}
	return false
}

// EnableAdaptation starts the periodic delivery-rate check. Calling it
// again replaces the configuration. The loop schedules itself forever;
// deterministic simulations must advance time with RunUntil (not Run) once
// adaptation is enabled, and should DisableAdaptation when draining.
func (e *Engine) EnableAdaptation(cfg AdaptationConfig) {
	cfg.defaults()
	e.DisableAdaptation()
	e.adaptCfg = &cfg
	var tick func()
	tick = func() {
		e.checkAdaptation(cfg)
		e.adaptCancel = e.clk.After(cfg.Interval, tick)
	}
	e.adaptCancel = e.clk.After(cfg.Interval, tick)
}

// DisableAdaptation stops the check loop.
func (e *Engine) DisableAdaptation() {
	if e.adaptCancel != nil {
		e.adaptCancel()
		e.adaptCancel = nil
	}
}

// Recompositions counts adaptation-triggered re-compositions (diagnostics
// and tests).
func (e *Engine) Recompositions() int64 { return e.recompositions }

// OnPeerDead re-composes every origin application that has a component
// placed on the dead node, immediately — the membership-event fast path,
// fired by the gossip failure detector well before the periodic
// delivery-rate check would notice the degradation. It uses the
// configuration stored by EnableAdaptation (or its defaults when
// adaptation was never enabled).
func (e *Engine) OnPeerDead(id overlay.ID) {
	cfg := e.adaptCfg
	if cfg == nil {
		c := AdaptationConfig{}
		c.defaults()
		cfg = &c
	}
	for reqID, st := range e.origins {
		if st.recomposing {
			continue
		}
		for _, p := range st.graph.Placements {
			if p.Host.ID == id {
				e.recompose(reqID, st, cfg.Composer, cfg.Timeout)
				break
			}
		}
	}
}

// checkAdaptation inspects every live origin application and re-composes
// the degraded ones.
func (e *Engine) checkAdaptation(cfg AdaptationConfig) {
	now := e.clk.Now()
	for reqID, st := range e.origins {
		if st.recomposing {
			continue
		}
		elapsed := now - st.lastCheck
		if elapsed <= 0 {
			continue
		}
		degraded := false
		for l, ss := range st.graph.Request.Substreams {
			sink := e.sinks[sinkKey(reqID, l)]
			if sink == nil {
				continue
			}
			got := sink.Received - st.lastReceived[l]
			st.lastReceived[l] = sink.Received
			rate := float64(got) / elapsed.Seconds()
			if rate < cfg.MinRateFraction*float64(ss.Rate) {
				degraded = true
			}
		}
		st.lastCheck = now
		if degraded {
			e.recompose(reqID, st, cfg.Composer, cfg.Timeout)
			continue
		}
		// Upgrade path: a healthy application admitted below its desired
		// rate retries composition at the full requirement — capacity
		// may have freed since admission (dynamic rate allocation).
		if st.admittedBelowDesired() {
			e.recompose(reqID, st, cfg.UpgradeComposer, cfg.Timeout)
		}
	}
}

// recompose tears the application down and submits it again with fresh
// state. The request keeps its ID; its sinks are replaced, so delivery
// statistics restart from the re-composition.
func (e *Engine) recompose(reqID string, st *originState, composer core.Composer, timeout time.Duration) {
	st.recomposing = true
	e.recompositions++
	req := st.desired
	if req.ID == "" {
		req = st.graph.Request
	}
	oldGraph := st.graph
	desired := st.desired
	e.Teardown(st.graph, timeout)
	delete(e.origins, reqID)
	e.Submit(req, composer, timeout, func(g *core.ExecutionGraph, err error) {
		if err != nil {
			// Nothing composable right now — e.g. a lookup routed
			// through a just-failed node. Re-register the old state so
			// the next check retries; by then the failed RPCs have
			// pruned the dead peer from the routing tables.
			e.origins[reqID] = &originState{
				graph:        oldGraph,
				desired:      desired,
				lastReceived: make(map[int]int64),
				lastCheck:    e.clk.Now(),
			}
		}
	})
}
