package core

import (
	"fmt"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simplex"
)

// LP is the generalized composer the paper sketches for rate ratios ≠ 1
// ("a linear programming method can be used to solve equations 1-4"). It
// solves each substream as a linear program whose variables are the
// per-component input rates and the per-edge flows, with exact per-node
// bandwidth constraints (equation 3) — unlike the flow reduction, which
// bounds each (stage, host) component separately.
type LP struct {
	// UseCPU adds exact per-host CPU rows to the program (the
	// multi-resource extension): for every host, the summed CPU demand
	// of its components — rate × procPerUnit / speed — must fit the
	// host's available CPU fraction.
	UseCPU bool
}

// Name implements Composer.
func (l LP) Name() string {
	if l.UseCPU {
		return "lp-cpu"
	}
	return "lp"
}

// hostBudget tracks remaining directional bandwidth in bits/sec plus,
// when tracked, CPU fraction and speed.
type hostBudget struct {
	in, out  float64
	cpu      float64
	speed    float64
	cpuKnown bool
}

// Compose implements Composer.
func (lp LP) Compose(in Input) (*ExecutionGraph, error) {
	defer observeCompose(time.Now())
	defer observeStats(in.Stats, time.Now())
	if err := in.Request.Validate(); err != nil {
		return nil, err
	}
	g := &ExecutionGraph{
		Request:  in.Request,
		Composer: lp.Name(),
		Source:   in.Source,
		Dest:     in.Dest,
	}
	h := in.headroom()
	budgets := map[overlay.ID]*hostBudget{
		in.Source.ID: {in: h * in.SourceReport.AvailIn(), out: h * in.SourceReport.AvailOut()},
		in.Dest.ID:   {in: h * in.DestReport.AvailIn(), out: h * in.DestReport.AvailOut()},
	}
	for _, cands := range in.Candidates {
		for _, c := range cands {
			if _, ok := budgets[c.Info.ID]; !ok {
				b := &hostBudget{in: h * c.Report.AvailIn(), out: h * c.Report.AvailOut()}
				if lp.UseCPU && c.Report.SpeedFactor > 0 {
					b.cpuKnown = true
					b.speed = c.Report.SpeedFactor
					b.cpu = h * c.Report.AvailCPU()
				}
				budgets[c.Info.ID] = b
			}
		}
	}
	for l := range in.Request.Substreams {
		if err := composeSubstreamLP(in, g, budgets, l); err != nil {
			return nil, fmt.Errorf("substream %d: %w", l, err)
		}
	}
	if in.Stats != nil {
		in.Stats.Feasible = true
	}
	return g, nil
}

// ratioFor returns the rate ratio R for a service (1 when unspecified).
func ratioFor(in Input, svc string) float64 {
	if in.Catalog != nil {
		if def, ok := in.Catalog[svc]; ok && def.RateRatio > 0 {
			return def.RateRatio
		}
	}
	return 1
}

// bytesRatioFor returns the unit-size ratio for a service (1 when
// unspecified).
func bytesRatioFor(in Input, svc string) float64 {
	if in.Catalog != nil {
		if def, ok := in.Catalog[svc]; ok && def.BytesRatio > 0 {
			return def.BytesRatio
		}
	}
	return 1
}

func composeSubstreamLP(in Input, g *ExecutionGraph, budgets map[overlay.ID]*hostBudget, l int) error {
	chain := stageServices(in.Request, l)
	q := len(chain)
	rate := float64(in.Request.Substreams[l].Rate)

	// Per-stage candidates.
	cands := make([][]Candidate, q)
	for j, svc := range chain {
		cands[j] = in.Candidates[svc]
		if len(cands[j]) == 0 {
			return fmt.Errorf("%w: no hosts offer %q", ErrNoFeasiblePlacement, svc)
		}
	}
	// Unit sizes (bits) entering and leaving each stage.
	inBits := make([]float64, q)
	outBits := make([]float64, q)
	bits := unitBits(in.Request)
	for j := 0; j < q; j++ {
		inBits[j] = bits
		bits *= bytesRatioFor(in, chain[j])
		outBits[j] = bits
	}
	ratios := make([]float64, q)
	for j := 0; j < q; j++ {
		ratios[j] = ratioFor(in, chain[j])
	}

	// Variable layout: x[j][k] input rates, then y[j][k][k'] inter-stage
	// flows (j = 0..q-2).
	xIdx := make([][]int, q)
	nVars := 0
	for j := 0; j < q; j++ {
		xIdx[j] = make([]int, len(cands[j]))
		for k := range cands[j] {
			xIdx[j][k] = nVars
			nVars++
		}
	}
	yIdx := make([][][]int, q-1)
	for j := 0; j < q-1; j++ {
		yIdx[j] = make([][]int, len(cands[j]))
		for k := range cands[j] {
			yIdx[j][k] = make([]int, len(cands[j+1]))
			for k2 := range cands[j+1] {
				yIdx[j][k][k2] = nVars
				nVars++
			}
		}
	}

	// Objective: minimize expected drops = sum over components of
	// x[j][k] * dropRatio(host), with the same utilization tie-break as
	// the flow composer (three orders below one drop-window granule) so
	// zero-drop ties prefer idle hosts instead of stacking.
	obj := make([]float64, nVars)
	for j := 0; j < q; j++ {
		for k, c := range cands[j] {
			obj[xIdx[j][k]] = c.Report.DropRatio + c.Report.Utilization()*1e-3
		}
	}
	p := simplex.NewMinimize(obj)
	row := func() []float64 { return make([]float64, nVars) }

	// Output conservation: sum_{k'} y[j][k][k'] = R_j * x[j][k].
	for j := 0; j < q-1; j++ {
		for k := range cands[j] {
			r := row()
			for k2 := range cands[j+1] {
				r[yIdx[j][k][k2]] = 1
			}
			r[xIdx[j][k]] = -ratios[j]
			p.AddConstraint(r, simplex.EQ, 0)
		}
	}
	// Input conservation: x[j+1][k'] = sum_k y[j][k][k'].
	for j := 0; j < q-1; j++ {
		for k2 := range cands[j+1] {
			r := row()
			r[xIdx[j+1][k2]] = 1
			for k := range cands[j] {
				r[yIdx[j][k][k2]] = -1
			}
			p.AddConstraint(r, simplex.EQ, 0)
		}
	}
	// Delivery requirement: sum_k R_q * x[q-1][k] = rate.
	r := row()
	for k := range cands[q-1] {
		r[xIdx[q-1][k]] = ratios[q-1]
	}
	p.AddConstraint(r, simplex.EQ, rate)

	// Exact per-host bandwidth constraints (equation 3). Components of
	// this substream sharing a host share its budget.
	type hostUse struct {
		inRow, outRow, cpuRow []float64
	}
	uses := make(map[overlay.ID]*hostUse)
	use := func(id overlay.ID) *hostUse {
		u, ok := uses[id]
		if !ok {
			u = &hostUse{inRow: row(), outRow: row(), cpuRow: row()}
			uses[id] = u
		}
		return u
	}
	for j := 0; j < q; j++ {
		for k, c := range cands[j] {
			u := use(c.Info.ID)
			u.inRow[xIdx[j][k]] += inBits[j]
			u.outRow[xIdx[j][k]] += ratios[j] * outBits[j]
			if b := budgets[c.Info.ID]; b != nil && b.cpuKnown {
				// CPU seconds per delivered unit on this host.
				u.cpuRow[xIdx[j][k]] += procFor(in, chain[j]).Seconds() / b.speed
			}
		}
	}
	// Source sends the stage-0 input; destination receives the final
	// output.
	srcUse := use(in.Source.ID)
	for k := range cands[0] {
		srcUse.outRow[xIdx[0][k]] += inBits[0]
	}
	dstUse := use(in.Dest.ID)
	for k := range cands[q-1] {
		dstUse.inRow[xIdx[q-1][k]] += ratios[q-1] * outBits[q-1]
	}
	for id, u := range uses {
		b := budgets[id]
		if b == nil {
			b = &hostBudget{}
		}
		p.AddConstraint(u.inRow, simplex.LE, b.in)
		p.AddConstraint(u.outRow, simplex.LE, b.out)
		if b.cpuKnown {
			p.AddConstraint(u.cpuRow, simplex.LE, b.cpu)
		}
	}

	sol, err := p.Solve()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoFeasiblePlacement, err)
	}

	const tol = 1e-6
	// Read back placements.
	for j := 0; j < q; j++ {
		for k, c := range cands[j] {
			x := sol.X[xIdx[j][k]]
			if x <= tol {
				continue
			}
			g.Placements = append(g.Placements, Placement{
				Substream: l, Stage: j, Service: chain[j], Host: c.Info, Rate: x,
			})
			b := budgets[c.Info.ID]
			b.in -= x * inBits[j]
			b.out -= x * ratios[j] * outBits[j]
			if b.cpuKnown {
				b.cpu -= x * procFor(in, chain[j]).Seconds() / b.speed
				if b.cpu < 0 {
					b.cpu = 0
				}
			}
		}
	}
	// Edges: source → stage 0 (rate = x), inter-stage (y), last stage →
	// dest (R_q * x).
	var srcTotal float64
	for k, c := range cands[0] {
		x := sol.X[xIdx[0][k]]
		if x <= tol {
			continue
		}
		g.Edges = append(g.Edges, Edge{
			Substream: l, FromStage: -1, ToStage: 0, From: in.Source, To: c.Info, Rate: x,
		})
		srcTotal += x
	}
	for j := 0; j < q-1; j++ {
		for k, a := range cands[j] {
			for k2, b := range cands[j+1] {
				y := sol.X[yIdx[j][k][k2]]
				if y <= tol {
					continue
				}
				g.Edges = append(g.Edges, Edge{
					Substream: l, FromStage: j, ToStage: j + 1, From: a.Info, To: b.Info, Rate: y,
				})
			}
		}
	}
	var dstTotal float64
	for k, c := range cands[q-1] {
		out := ratios[q-1] * sol.X[xIdx[q-1][k]]
		if out <= tol {
			continue
		}
		g.Edges = append(g.Edges, Edge{
			Substream: l, FromStage: q - 1, ToStage: q, From: c.Info, To: in.Dest, Rate: out,
		})
		dstTotal += out
	}
	if dstTotal < rate-1e-3 {
		return fmt.Errorf("%w: LP delivered %g of %g", ErrNoFeasiblePlacement, dstTotal, rate)
	}
	srcBudget := budgets[in.Source.ID]
	srcBudget.out -= srcTotal * inBits[0]
	dstBudget := budgets[in.Dest.ID]
	dstBudget.in -= dstTotal * outBits[q-1]
	return nil
}
