package transport

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/netsim"
)

func newTestNet(t *testing.T, n int) (*netsim.Simulator, *MemNetwork, []Endpoint) {
	t.Helper()
	sim := netsim.New(1)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 5 * time.Millisecond },
	})
	mem := NewMemNetwork(nw)
	eps := make([]Endpoint, n)
	for i := 0; i < n; i++ {
		id := nw.AddNode(1e7, 1e7)
		eps[i] = mem.Endpoint(id)
	}
	return sim, mem, eps
}

func TestMemSendReceive(t *testing.T) {
	sim, _, eps := newTestNet(t, 2)
	var gotFrom Addr
	var gotMsg Message
	eps[1].SetHandler(func(from Addr, msg Message) { gotFrom, gotMsg = from, msg })
	if err := eps[0].Send(eps[1].Addr(), Message{Type: "ping", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if gotFrom != eps[0].Addr() {
		t.Fatalf("from = %q, want %q", gotFrom, eps[0].Addr())
	}
	if gotMsg.Type != "ping" || string(gotMsg.Payload) != "x" {
		t.Fatalf("msg = %+v", gotMsg)
	}
}

func TestMemUnknownAddr(t *testing.T) {
	_, _, eps := newTestNet(t, 1)
	err := eps[0].Send("sim://99", Message{Type: "x"})
	if err == nil {
		t.Fatal("expected error for unknown address")
	}
}

func TestMemClosedEndpoint(t *testing.T) {
	sim, _, eps := newTestNet(t, 2)
	received := 0
	eps[1].SetHandler(func(Addr, Message) { received++ })
	if err := eps[1].Close(); err != nil {
		t.Fatal(err)
	}
	// Send to the closed endpoint fails to resolve.
	if err := eps[0].Send(eps[1].Addr(), Message{Type: "x"}); err == nil {
		t.Fatal("expected error sending to closed endpoint")
	}
	// Send from the closed endpoint fails immediately.
	if err := eps[1].Send(eps[0].Addr(), Message{Type: "x"}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	sim.Run()
	if received != 0 {
		t.Fatalf("closed endpoint received %d messages", received)
	}
}

func TestMemAddrFormat(t *testing.T) {
	if MemAddr(7) != "sim://7" {
		t.Fatalf("MemAddr(7) = %q", MemAddr(7))
	}
}

func TestWireSizeMonotonic(t *testing.T) {
	small := Message{Type: "a", Payload: make([]byte, 10)}
	big := Message{Type: "a", Payload: make([]byte, 1000)}
	if small.WireSize() >= big.WireSize() {
		t.Fatal("WireSize not monotonic in payload length")
	}
	if small.WireSize() <= len(small.Payload) {
		t.Fatal("WireSize must include header overhead")
	}
}
