package overlay

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/transport"
)

// DefaultLeafSetSize matches Pastry's |L| = 16 (8 per side).
const DefaultLeafSetSize = 16

// msgType is the transport message type used for all overlay traffic.
const msgType = "overlay"

// DeliverFunc receives a routed message at the node responsible for key.
type DeliverFunc func(key ID, src NodeInfo, body []byte)

// RequestHandler serves a direct request; it must call respond exactly once
// (errStr empty on success).
type RequestHandler func(from NodeInfo, body []byte, respond func(body []byte, errStr string))

// ErrTimeout is passed to request callbacks whose peer did not answer in
// time.
var ErrTimeout = errors.New("overlay: request timed out")

// envelope is the wire format for every overlay message, JSON-encoded into
// transport.Message.Payload.
type envelope struct {
	Kind   string     `json:"k"`
	App    string     `json:"a,omitempty"`
	Key    ID         `json:"key,omitempty"`
	Src    NodeInfo   `json:"src,omitempty"`
	Hops   int        `json:"h,omitempty"`
	Body   []byte     `json:"b,omitempty"`
	ReqID  uint64     `json:"r,omitempty"`
	Ack    uint64     `json:"ack,omitempty"` // hop-by-hop route ack id
	Err    string     `json:"e,omitempty"`
	Nodes  []NodeInfo `json:"n,omitempty"`
	Joiner NodeInfo   `json:"j,omitempty"`
}

const (
	kindRoute       = "route"
	kindJoin        = "join"
	kindJoinReply   = "join-reply"
	kindAnnounce    = "announce"
	kindAnnounceAck = "announce-ack"
	kindRequest     = "req"
	kindResponse    = "resp"
	kindLeafXchg    = "ls-exchange"
	kindDirect      = "direct"
	kindRouteAck    = "route-ack"
)

type pendingReq struct {
	cb     func(body []byte, err error)
	cancel func()
}

type pendingAck struct {
	env    envelope
	hop    ID
	cancel func()
}

// Node is a Pastry overlay node. Node is not internally synchronized: all
// methods and all transport callbacks must run on a single goroutine (the
// simulator event loop, or a live runtime's actor loop).
type Node struct {
	info    NodeInfo
	ep      transport.Endpoint
	clk     clock.Clock
	rt      routingTable
	leaf    *leafSet
	apps    map[string]DeliverFunc
	rpcs    map[string]RequestHandler
	dropObs map[string]DeliverFunc
	pending map[uint64]*pendingReq
	nextReq uint64

	// Hop-by-hop route acknowledgement state: every forwarded routed
	// message awaits a quick ack from the chosen hop; a silent hop is
	// pruned and the message re-routed.
	pendingAcks map[uint64]*pendingAck
	nextAck     uint64
	// RouteAckTimeout bounds how long a forwarded message waits for the
	// next hop's acknowledgement before the hop is declared dead.
	RouteAckTimeout time.Duration

	joined bool
	onJoin []func()

	// MaxHops caps route forwarding as a loop safety net.
	MaxHops int
	// ProximityAware enables Pastry's proximity neighbor selection:
	// when two peers compete for the same routing-table slot, both are
	// RTT-probed and the closer one wins, biasing each hop toward
	// nearby nodes without affecting where keys are delivered.
	ProximityAware bool
	rtts           map[ID]time.Duration
	probing        map[ID]bool
	// Stats counters.
	RoutedSent, RoutedDelivered, Forwarded int64
}

// NewNode creates a node with the given identifier bound to ep. The node
// installs itself as ep's handler.
func NewNode(id ID, ep transport.Endpoint, clk clock.Clock) *Node {
	n := &Node{
		info:            NodeInfo{ID: id, Addr: ep.Addr()},
		ep:              ep,
		clk:             clk,
		rt:              routingTable{owner: id},
		leaf:            newLeafSet(id, DefaultLeafSetSize),
		apps:            make(map[string]DeliverFunc),
		rpcs:            make(map[string]RequestHandler),
		pending:         make(map[uint64]*pendingReq),
		pendingAcks:     make(map[uint64]*pendingAck),
		rtts:            make(map[ID]time.Duration),
		probing:         make(map[ID]bool),
		MaxHops:         64,
		RouteAckTimeout: 3 * time.Second,
	}
	ep.SetHandler(n.onMessage)
	n.rpcs[pingApp] = func(_ NodeInfo, _ []byte, respond func([]byte, string)) {
		respond(nil, "")
	}
	return n
}

// pingApp is the built-in liveness probe used by HealRoute.
const pingApp = "$ping"

// HealRoute probes the node's current next hop toward key; if the hop does
// not answer within timeout it is removed from the routing state and the
// new next hop is probed, until a live hop answers or this node has become
// the key's root. done (may be nil) fires when healing has finished. Use
// after a routed request (e.g. a DHT lookup) times out: failed nodes on
// the local segment of the route are pruned so a retry can succeed.
func (n *Node) HealRoute(key ID, timeout time.Duration, done func()) {
	hop, ok := n.nextHop(key)
	if !ok {
		if done != nil {
			done()
		}
		return
	}
	n.Request(hop.Addr, pingApp, nil, timeout, func(_ []byte, err error) {
		if err == nil {
			if done != nil {
				done()
			}
			return
		}
		n.RemovePeer(hop.ID)
		n.HealRoute(key, timeout, done)
	})
}

// Info returns the node's own identity.
func (n *Node) Info() NodeInfo { return n.info }

// SetCluster stamps the node's federation cluster onto its identity. Call
// it before Bootstrap/Join so every peer that learns the node also learns
// its cluster; changing it on a joined node is a configuration error.
func (n *Node) SetCluster(cluster string) { n.info.Cluster = cluster }

// ID returns the node's overlay identifier.
func (n *Node) ID() ID { return n.info.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() transport.Addr { return n.info.Addr }

// Joined reports whether the node is part of an overlay (Bootstrap or a
// completed Join).
func (n *Node) Joined() bool { return n.joined }

// NumKnown returns the number of distinct peers in the node's state tables
// (diagnostic).
func (n *Node) NumKnown() int {
	seen := make(map[ID]bool)
	for _, e := range n.rt.all() {
		seen[e.ID] = true
	}
	for _, e := range n.leaf.all() {
		seen[e.ID] = true
	}
	return len(seen)
}

// Leafset returns a copy of the node's current leaf set members.
func (n *Node) Leafset() []NodeInfo { return n.leaf.all() }

// Register installs the deliver handler for a named application. Routed
// messages addressed to the application are delivered at the key's root.
func (n *Node) Register(app string, h DeliverFunc) { n.apps[app] = h }

// RegisterRequest installs a direct request handler for a named application.
func (n *Node) RegisterRequest(app string, h RequestHandler) { n.rpcs[app] = h }

// Bootstrap marks this node as the first member of a new overlay.
func (n *Node) Bootstrap() {
	n.joined = true
	n.fireJoin()
}

// Join starts the Pastry join protocol through a node at bootstrap. The
// onDone callback (optional) fires when the join reply has been processed
// and the node has announced itself.
func (n *Node) Join(bootstrap transport.Addr, onDone func()) {
	if onDone != nil {
		n.onJoin = append(n.onJoin, onDone)
	}
	n.send(bootstrap, envelope{Kind: kindJoin, Key: n.info.ID, Joiner: n.info, Src: n.info})
}

func (n *Node) fireJoin() {
	cbs := n.onJoin
	n.onJoin = nil
	for _, cb := range cbs {
		cb()
	}
}

// Route sends body toward the node whose ID is closest to key; the app's
// DeliverFunc runs there.
func (n *Node) Route(key ID, app string, body []byte) {
	n.RoutedSent++
	n.routeEnvelope(envelope{Kind: kindRoute, Key: key, App: app, Src: n.info, Body: body})
}

// Direct sends body straight to a specific node, bypassing key routing.
// The app's DeliverFunc runs there with the receiver's own ID as the key.
func (n *Node) Direct(to transport.Addr, app string, body []byte) {
	n.send(to, envelope{Kind: kindDirect, App: app, Src: n.info, Body: body})
}

// DirectPadded is Direct with pad extra bytes charged on the wire and
// datagram (loss-tolerant) delivery — used for stream data units whose
// simulated size exceeds their encoded header. The returned error reports
// local send failures (notably a full uplink buffer), which the stream
// runtime counts as drops.
func (n *Node) DirectPadded(to transport.Addr, app string, body []byte, pad int) error {
	b, err := json.Marshal(envelope{Kind: kindDirect, App: app, Src: n.info, Body: body})
	if err != nil {
		panic(fmt.Sprintf("overlay: marshal: %v", err))
	}
	return n.ep.Send(to, transport.Message{Type: msgType, Payload: b, Pad: pad, Datagram: true})
}

// RegisterDropObserver installs a callback for datagrams addressed to the
// given app that were dropped at this node's own downlink (the transport's
// receive-buffer overflow signal).
func (n *Node) RegisterDropObserver(app string, h DeliverFunc) {
	if n.dropObs == nil {
		n.dropObs = make(map[string]DeliverFunc)
		n.ep.SetDropHandler(n.onDropped)
	}
	n.dropObs[app] = h
}

func (n *Node) onDropped(from transport.Addr, msg transport.Message) {
	if msg.Type == msgTypeData {
		n.onDataDropped(msg)
		return
	}
	if msg.Type != msgType {
		return
	}
	var env envelope
	if err := json.Unmarshal(msg.Payload, &env); err != nil {
		return
	}
	if env.Kind != kindDirect {
		return
	}
	if h, ok := n.dropObs[env.App]; ok {
		h(n.info.ID, env.Src, env.Body)
	}
}

// Request sends a direct request to a specific node and invokes cb with the
// response or an error. The callback always runs exactly once.
func (n *Node) Request(to transport.Addr, app string, body []byte, timeout time.Duration, cb func(body []byte, err error)) {
	n.nextReq++
	id := n.nextReq
	p := &pendingReq{cb: cb}
	p.cancel = n.clk.After(timeout, func() {
		if _, ok := n.pending[id]; ok {
			delete(n.pending, id)
			cb(nil, ErrTimeout)
		}
	})
	n.pending[id] = p
	n.send(to, envelope{Kind: kindRequest, App: app, ReqID: id, Src: n.info, Body: body})
}

// Stabilize exchanges leaf sets with every current leaf-set member,
// repairing gaps left by joins that raced each other.
func (n *Node) Stabilize() {
	for _, peer := range n.leaf.all() {
		n.send(peer.Addr, envelope{Kind: kindLeafXchg, Src: n.info, Nodes: n.leaf.all()})
	}
}

// AddPeer seeds the node's state with a known peer (used by tests and by
// the live runtime's static configuration).
func (n *Node) AddPeer(info NodeInfo) { n.learn(info) }

// RemovePeer drops a failed peer from all state tables.
func (n *Node) RemovePeer(id ID) {
	n.rt.remove(id)
	n.leaf.remove(id)
}

// learn incorporates a peer reference into the routing table and leaf set.
func (n *Node) learn(info NodeInfo) {
	if info.ID == n.info.ID || info.Addr == "" {
		return
	}
	if !n.rt.add(info) && n.ProximityAware {
		// Slot contested: keep the closer of the incumbent and the
		// candidate once both RTTs are known.
		row, col := n.rt.slotFor(info.ID)
		if cur := n.rt.lookup(row, col); cur != nil && cur.ID != info.ID {
			n.contest(*cur, info)
		}
	}
	n.leaf.add(info)
}

// contest probes both peers competing for a slot and installs the closer
// one. Probes are deduplicated; dead candidates get an infinite RTT (and
// an incumbent that is found dead is pruned entirely).
func (n *Node) contest(incumbent, candidate NodeInfo) {
	n.probeRTT(incumbent, func() { n.settleSlot(incumbent, candidate) })
	n.probeRTT(candidate, func() { n.settleSlot(incumbent, candidate) })
}

// settleSlot applies the proximity decision once both RTTs are cached.
func (n *Node) settleSlot(incumbent, candidate NodeInfo) {
	ri, okI := n.rtts[incumbent.ID]
	rc, okC := n.rtts[candidate.ID]
	if !okI || !okC {
		return // the other probe has not finished yet
	}
	if rc < ri {
		n.rt.replace(candidate)
	}
}

// probeRTT measures the round-trip time to a peer (once) and then runs
// done. A timeout records an effectively infinite RTT.
func (n *Node) probeRTT(peer NodeInfo, done func()) {
	if _, ok := n.rtts[peer.ID]; ok {
		done()
		return
	}
	if n.probing[peer.ID] {
		return // an in-flight probe will settle contested slots later
	}
	n.probing[peer.ID] = true
	start := n.clk.Now()
	n.Request(peer.Addr, pingApp, nil, 3*time.Second, func(_ []byte, err error) {
		delete(n.probing, peer.ID)
		if err != nil {
			n.rtts[peer.ID] = time.Hour // unreachable
		} else {
			n.rtts[peer.ID] = n.clk.Now() - start
		}
		done()
	})
}

// RTTOf returns the cached RTT measurement for a peer (ok=false when the
// peer was never probed).
func (n *Node) RTTOf(id ID) (time.Duration, bool) {
	d, ok := n.rtts[id]
	return d, ok
}

func (n *Node) send(to transport.Addr, env envelope) {
	b, err := json.Marshal(env)
	if err != nil {
		panic(fmt.Sprintf("overlay: marshal: %v", err)) // envelope is always marshalable
	}
	// Send errors are best-effort; a dead peer is handled by timeouts.
	_ = n.ep.Send(to, transport.Message{Type: msgType, Payload: b})
}

// nextHop picks the Pastry next hop for key, or ok=false when this node is
// the key's root.
func (n *Node) nextHop(key ID) (NodeInfo, bool) {
	if key == n.info.ID {
		return NodeInfo{}, false
	}
	if n.leaf.covers(key) {
		best, ok := n.leaf.closest(key)
		if !ok {
			return NodeInfo{}, false // self is closest
		}
		return best, true
	}
	row := n.info.ID.CommonPrefixLen(key)
	if e := n.rt.lookup(row, key.Digit(row)); e != nil {
		return *e, true
	}
	// Rare case: any known node strictly closer to key with at least as
	// long a shared prefix.
	var best *NodeInfo
	consider := func(e NodeInfo) {
		if e.ID.CommonPrefixLen(key) < row {
			return
		}
		if !Closer(key, e.ID, n.info.ID) {
			return
		}
		if best == nil || Closer(key, e.ID, best.ID) {
			cp := e
			best = &cp
		}
	}
	for _, e := range n.rt.all() {
		consider(e)
	}
	for _, e := range n.leaf.all() {
		consider(e)
	}
	if best != nil {
		return *best, true
	}
	return NodeInfo{}, false
}

func (n *Node) routeEnvelope(env envelope) {
	if env.Hops >= n.MaxHops {
		return // drop: routing loop safety net
	}
	hop, ok := n.nextHop(env.Key)
	if !ok {
		n.deliverLocal(env)
		return
	}
	env.Hops++
	n.Forwarded++
	// Ask the hop to acknowledge receipt; a silent hop is pruned and the
	// message re-routed around it.
	n.nextAck++
	ackID := n.nextAck
	env.Ack = ackID
	p := &pendingAck{env: env, hop: hop.ID}
	p.cancel = n.clk.After(n.RouteAckTimeout, func() {
		pa, ok := n.pendingAcks[ackID]
		if !ok {
			return
		}
		delete(n.pendingAcks, ackID)
		n.RemovePeer(pa.hop)
		retry := pa.env
		retry.Ack = 0
		n.routeEnvelope(retry)
	})
	n.pendingAcks[ackID] = p
	n.send(hop.Addr, env)
}

func (n *Node) deliverLocal(env envelope) {
	switch env.Kind {
	case kindRoute:
		n.RoutedDelivered++
		if h, ok := n.apps[env.App]; ok {
			h(env.Key, env.Src, env.Body)
		}
	case kindJoin:
		// This node is the joiner's root Z: reply with accumulated rows
		// plus Z's own leaf set and identity.
		nodes := append(env.Nodes, n.leaf.all()...)
		nodes = append(nodes, n.info)
		n.learn(env.Joiner)
		n.send(env.Joiner.Addr, envelope{Kind: kindJoinReply, Src: n.info, Nodes: nodes})
	}
}

func (n *Node) onMessage(from transport.Addr, msg transport.Message) {
	if msg.Type == msgTypeData {
		n.onDataMessage(msg)
		return
	}
	if msg.Type != msgType {
		return
	}
	var env envelope
	if err := json.Unmarshal(msg.Payload, &env); err != nil {
		return // malformed: drop
	}
	n.learn(env.Src)
	// Acknowledge routed messages hop-by-hop before processing.
	if env.Ack != 0 && (env.Kind == kindRoute || env.Kind == kindJoin) {
		n.send(from, envelope{Kind: kindRouteAck, Src: n.info, Ack: env.Ack})
		env.Ack = 0
	}
	switch env.Kind {
	case kindRouteAck:
		if p, ok := n.pendingAcks[env.Ack]; ok {
			delete(n.pendingAcks, env.Ack)
			p.cancel()
		}
	case kindRoute:
		n.routeEnvelope(env)
	case kindDirect:
		if h, ok := n.apps[env.App]; ok {
			h(n.info.ID, env.Src, env.Body)
		}
	case kindJoin:
		// Contribute the routing-table row the joiner needs, then
		// forward toward the joiner's ID.
		row := n.info.ID.CommonPrefixLen(env.Joiner.ID)
		if row < NumDigits {
			env.Nodes = append(env.Nodes, n.rt.row(row)...)
		}
		env.Nodes = append(env.Nodes, n.info)
		n.learn(env.Joiner)
		n.routeEnvelope(env)
	case kindJoinReply:
		for _, info := range env.Nodes {
			n.learn(info)
		}
		n.joined = true
		// Announce ourselves to everyone we now know about.
		for _, peer := range n.allKnown() {
			n.send(peer.Addr, envelope{Kind: kindAnnounce, Src: n.info})
		}
		n.fireJoin()
	case kindAnnounce:
		n.send(env.Src.Addr, envelope{Kind: kindAnnounceAck, Src: n.info, Nodes: n.leaf.all()})
	case kindAnnounceAck:
		for _, info := range env.Nodes {
			n.learn(info)
		}
	case kindLeafXchg:
		for _, info := range env.Nodes {
			n.learn(info)
		}
	case kindRequest:
		h, ok := n.rpcs[env.App]
		if !ok {
			n.send(env.Src.Addr, envelope{Kind: kindResponse, ReqID: env.ReqID, Src: n.info, Err: "overlay: no handler for app " + env.App})
			return
		}
		reqID := env.ReqID
		src := env.Src
		responded := false
		h(src, env.Body, func(body []byte, errStr string) {
			if responded {
				return
			}
			responded = true
			n.send(src.Addr, envelope{Kind: kindResponse, ReqID: reqID, Src: n.info, Body: body, Err: errStr})
		})
	case kindResponse:
		p, ok := n.pending[env.ReqID]
		if !ok {
			return // late or duplicate response
		}
		delete(n.pending, env.ReqID)
		p.cancel()
		if env.Err != "" {
			p.cb(nil, errors.New(env.Err))
			return
		}
		p.cb(env.Body, nil)
	}
}

func (n *Node) allKnown() []NodeInfo {
	seen := make(map[ID]bool)
	var out []NodeInfo
	for _, e := range append(n.rt.all(), n.leaf.all()...) {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	return out
}
