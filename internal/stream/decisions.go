package stream

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/trace"
)

// decisionTracker implements control.Observer: it turns the controller's
// gate/launch/outcome callbacks into decision traces in a trace.Journal.
// One trace is open per application at a time — further events that merge
// into pending work become spans on the open trace. The tracker runs in
// the engine's execution context, so its map needs no locking; the journal
// locks internally.
type decisionTracker struct {
	journal *trace.Journal
	clk     clock.Clock
	active  map[string]*trace.ActiveDecision
}

func newDecisionTracker(j *trace.Journal, clk clock.Clock) *decisionTracker {
	return &decisionTracker{journal: j, clk: clk, active: make(map[string]*trace.ActiveDecision)}
}

// eventCause renders the human-readable cause line for a trigger event.
func eventCause(ev control.Event) string {
	switch ev.Kind {
	case control.MemberDead:
		return "member dead: " + ev.Host.String()
	case control.BreakerOpen:
		return "breaker open: " + ev.Host.String()
	case control.DropRatioSpike:
		return "drop-ratio spike: " + ev.Host.String()
	case control.RateBelowThreshold:
		return fmt.Sprintf("substreams %v below threshold", ev.Substreams)
	case control.UpgradePossible:
		return "admitted below desired rate"
	}
	return ""
}

// eventAttrs builds the structured attributes carried by trigger and gate
// spans.
func eventAttrs(ev control.Event) []trace.Attr {
	var attrs []trace.Attr
	if ev.Host != (overlay.ID{}) {
		attrs = append(attrs, trace.A("host", ev.Host.String()))
	}
	if len(ev.Substreams) > 0 {
		attrs = append(attrs, trace.A("substreams", fmt.Sprint(ev.Substreams)))
	}
	return attrs
}

// OnEventGate implements control.Observer: an event cleared the gates
// (GateNone) or was held. Events that open work — cleared or latched —
// begin a trace; held events on an open trace become gate spans; dropped
// events with nothing open leave no record.
func (t *decisionTracker) OnEventGate(app string, ev control.Event, gate string, latched bool) {
	if app == "" {
		return // host-scoped hysteresis: no application resolved yet
	}
	now := t.clk.Now()
	a := t.active[app]
	if a == nil {
		if gate != control.GateNone && !latched {
			return
		}
		a = t.journal.Begin(now, app, ev.Kind.String(), eventCause(ev))
		t.active[app] = a
		if gate != control.GateNone {
			a.Span("gate:"+gate, now, now, append(eventAttrs(ev), trace.ABool("latched", latched))...)
		}
		return
	}
	// A further event arrived while a decision is open (inflight or
	// latched): record its fate as a span on the same trace.
	name := "trigger:" + ev.Kind.String()
	attrs := eventAttrs(ev)
	if gate != control.GateNone {
		name = "gate:" + gate
		attrs = append(attrs,
			trace.A("trigger", ev.Kind.String()),
			trace.ABool("latched", latched))
	}
	a.Span(name, now, now, attrs...)
}

// OnLaunch implements control.Observer: the controller is starting a
// reallocation. A launch with no open trace is a backoff retry of work
// whose original trace already completed with its failure.
func (t *decisionTracker) OnLaunch(app string, mode string, degraded []overlay.ID, substreams []int, upgrade bool) {
	now := t.clk.Now()
	a := t.active[app]
	if a == nil {
		a = t.journal.Begin(now, app, "retry_backoff", "controller retry of pending work")
		t.active[app] = a
	}
	attrs := []trace.Attr{trace.A("mode", mode)}
	if len(degraded) > 0 {
		strs := make([]string, len(degraded))
		for i, id := range degraded {
			strs[i] = id.String()
		}
		attrs = append(attrs, trace.A("degraded", strings.Join(strs, ",")))
	}
	if substreams != nil {
		attrs = append(attrs, trace.A("substreams", fmt.Sprint(substreams)))
	}
	if upgrade {
		attrs = append(attrs, trace.ABool("upgrade", true))
	}
	a.Span("decide", a.TriggeredAt(), now, attrs...)
}

// OnOutcome implements control.Observer: the reallocation completed. The
// trace seals with the outcome; convergence is marked later by the
// availability sampler once the delivered rate recovers.
func (t *decisionTracker) OnOutcome(app string, mode string, fellBack bool, err error, backoff time.Duration) {
	a := t.active[app]
	if a == nil {
		return
	}
	delete(t.active, app)
	if fellBack {
		a.Annotate(trace.ABool("fell_back", true))
	}
	if backoff > 0 {
		a.Annotate(trace.ADur("backoff", backoff))
	}
	a.Complete(t.clk.Now(), mode, err)
}

// observeSolve records a composition solve as a span on the application's
// open decision trace: candidate/arc/iteration counts from the solver,
// feasibility, and the wall-clock solve time.
func (e *Engine) observeSolve(app string, st *core.ComposeStats, start time.Duration, err error) {
	if e.tracker == nil {
		return
	}
	a := e.tracker.active[app]
	if a == nil {
		return
	}
	attrs := []trace.Attr{
		trace.AInt("substreams", int64(st.Substreams)),
		trace.AInt("copied", int64(st.Copied)),
		trace.AInt("candidates", int64(st.Candidates)),
		trace.AInt("nodes", int64(st.Nodes)),
		trace.AInt("arcs", int64(st.Arcs)),
		trace.AInt("iterations", int64(st.Iterations)),
		trace.AInt("flow", st.Flow),
		trace.ABool("feasible", st.Feasible),
		trace.ADur("wall", st.Duration),
	}
	if err != nil {
		attrs = append(attrs, trace.A("err", err.Error()))
	}
	a.Span("solve", start, e.clk.Now(), attrs...)
}

// observeApply records the re-instantiation round of an incremental
// reallocation as a span on the application's open decision trace.
func (e *Engine) observeApply(app string, start time.Duration, err error) {
	if e.tracker == nil {
		return
	}
	a := e.tracker.active[app]
	if a == nil {
		return
	}
	var attrs []trace.Attr
	if err != nil {
		attrs = append(attrs, trace.A("err", err.Error()))
	}
	a.Span("apply", start, e.clk.Now(), attrs...)
}

// AppComposition is one origin application's live composition, as served
// by the /debug/rasc/composition endpoint.
type AppComposition struct {
	App string `json:"app"`
	// Desired is the request as originally submitted; a best-effort
	// admission may run below it.
	Desired spec.Request         `json:"desired"`
	Graph   *core.ExecutionGraph `json:"graph"`
}

// CompositionSnapshot returns every origin application's live execution
// graph, sorted by application ID. Like every engine method it must run in
// the engine's execution context; the graphs are shared, treat them as
// read-only.
func (e *Engine) CompositionSnapshot() []AppComposition {
	out := make([]AppComposition, 0, len(e.origins))
	for app, st := range e.origins {
		out = append(out, AppComposition{App: app, Desired: st.desired, Graph: st.graph})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}
