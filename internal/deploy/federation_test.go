package deploy

import (
	"encoding/json"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
)

// submitOK submits req at engine origin and runs the simulator until the
// composition completes.
func submitOK(t *testing.T, s *System, origin int, req spec.Request) *core.ExecutionGraph {
	t.Helper()
	var graph *core.ExecutionGraph
	var serr error
	done := false
	s.Engines[origin].Submit(req, &core.MinCost{}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		graph, serr, done = g, err, true
	})
	deadline := s.Sim.Now() + 120*time.Second
	for !done && s.Sim.Now() < deadline {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		t.Fatal("composition did not complete")
	}
	if serr != nil {
		t.Fatalf("submit: %v", serr)
	}
	return graph
}

// TestFederatedSingleClusterEquivalence is the refactor's pin: a
// federated deployment with one cluster must compose bit-identically to
// the flat (unfederated) composer — same seed, same topology, same
// request, byte-equal execution graphs.
func TestFederatedSingleClusterEquivalence(t *testing.T) {
	gcfg := gossip.Config{ProbeTimeout: 500 * time.Millisecond}
	req := spec.Request{
		ID:        "equiv",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 8},
			{Services: []string{"transcode"}, Rate: 4},
		},
	}
	flat := NewSystem(SystemOptions{Nodes: 16, Seed: 11, EnableGossip: true, Gossip: gcfg})
	fed := NewSystem(SystemOptions{
		Nodes: 16, Seed: 11, EnableGossip: true, Gossip: gcfg,
		Federation: &FederationOptions{Clusters: 1},
	})
	gFlat := submitOK(t, flat, 0, req)
	gFed := submitOK(t, fed, 0, req)
	if gFed.Composer != gFlat.Composer {
		t.Fatalf("composer diverged: flat %q, federated %q", gFlat.Composer, gFed.Composer)
	}
	bFlat, _ := json.Marshal(gFlat)
	bFed, _ := json.Marshal(gFed)
	// The only allowed difference is the cluster tag every federated
	// NodeInfo carries; both sides run through the same normalization.
	if stripCluster(t, bFlat) != stripCluster(t, bFed) {
		t.Fatalf("single-cluster federated graph diverged from flat composer:\nflat: %s\nfed:  %s", bFlat, bFed)
	}
}

// stripCluster removes the "cluster" tags a federated deployment's node
// infos carry, leaving the placement/edge/rate structure for comparison.
func stripCluster(t *testing.T, b []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatal(err)
	}
	var walk func(any)
	walk = func(x any) {
		switch m := x.(type) {
		case map[string]any:
			delete(m, "cluster")
			for _, vv := range m {
				walk(vv)
			}
		case []any:
			for _, vv := range m {
				walk(vv)
			}
		}
	}
	walk(v)
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// newHandoffSystem builds a two-cluster deployment where cluster c0 (the
// origin's) announces only "filter" and cluster c1 only "encrypt", so an
// encrypt request from c0 can complete only through a cross-boundary
// hand-off.
func newHandoffSystem(t *testing.T, tenancy *tenant.Config) *System {
	t.Helper()
	s := NewSystem(SystemOptions{
		Nodes:           12,
		Seed:            21,
		ServicesPerNode: 1,
		Gossip:          gossip.Config{ProbeTimeout: 500 * time.Millisecond},
		Tenancy:         tenancy,
		Federation: &FederationOptions{
			Clusters:        2,
			BoundaryBps:     1e8,
			ClusterServices: [][]string{{"filter"}, {"encrypt"}},
		},
	})
	// Let the border summary exchange and digest dissemination converge
	// before composing: discovery needs a fresh remote catalog.
	s.Sim.RunUntil(s.Sim.Now() + 30*time.Second)
	return s
}

// TestFederatedCrossClusterHandoff drives a full hand-off: composition
// fails inside the origin cluster, the coordinator discovers the remote
// cluster through border summaries, hands the substream off, and the
// stitched graph's placements run in the remote cluster with boundary
// capacity reserved on both ledgers. Teardown refunds every credit.
func TestFederatedCrossClusterHandoff(t *testing.T) {
	s := newHandoffSystem(t, nil)
	req := spec.Request{
		ID:         "handoff",
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: []string{"encrypt"}, Rate: 5}},
	}
	g := submitOK(t, s, 0, req) // node 0 is in cluster c0
	if g.Composer != "federated+mincost" {
		t.Fatalf("composer = %q, want federated+mincost", g.Composer)
	}
	for _, p := range g.Placements {
		if p.Host.Cluster != "c1" {
			t.Fatalf("placement on %s (cluster %q), want cluster c1", p.Host.ID, p.Host.Cluster)
		}
	}
	refs := s.Federation[0].Handoffs()
	if len(refs) != 1 || refs[0].RemoteCluster != "c1" {
		t.Fatalf("handoffs = %+v, want one to c1", refs)
	}
	for k, name := range []string{"origin", "remote"} {
		usage := s.Ledgers[k].Usage()
		if len(usage) != 1 || usage[0].Credits != 1 || usage[0].ReservedBps <= 0 {
			t.Fatalf("%s ledger usage = %+v, want one live credit", name, usage)
		}
		if usage[0].ReservedBps > usage[0].CapacityBps {
			t.Fatalf("%s ledger oversubscribed: %+v", name, usage)
		}
	}
	// The stream must actually deliver across the boundary.
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	sink := s.Engines[0].Sink(req.ID, 0)
	if sink == nil || sink.Received == 0 {
		t.Fatal("no units delivered across the boundary")
	}
	s.Engines[0].Teardown(g, 5*time.Second)
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	for k, name := range []string{"origin", "remote"} {
		usage := s.Ledgers[k].Usage()
		if len(usage) != 1 || usage[0].Credits != 0 || usage[0].ReservedBps != 0 {
			t.Fatalf("%s ledger not refunded after teardown: %+v", name, usage)
		}
	}
}

// TestFederatedRemoteDeathKeepsLocalLedger is the tenancy regression pin:
// with per-cluster per-host ledgers, a death in a remote cluster must
// release budget only from its own cluster's gate — the local cluster's
// budget stays exactly as seeded (no double release through the shared
// death fan-out).
func TestFederatedRemoteDeathKeepsLocalLedger(t *testing.T) {
	s := newHandoffSystem(t, &tenant.Config{PerHostLedger: true})
	if len(s.Gates) != 2 {
		t.Fatalf("gates = %d, want one per cluster", len(s.Gates))
	}
	localBefore := s.Gates[0].CapacityBps()
	remoteBefore := s.Gates[1].CapacityBps()
	// Kill a non-border node of cluster c1 (node 3 = 1 mod 2).
	s.Kill(3)
	s.Sim.RunUntil(s.Sim.Now() + 60*time.Second)
	if got := s.Gates[0].CapacityBps(); got != localBefore {
		t.Fatalf("local cluster budget moved on a remote death: %v -> %v", localBefore, got)
	}
	if got := s.Gates[1].CapacityBps(); got >= remoteBefore {
		t.Fatalf("remote cluster budget did not shrink: %v -> %v", remoteBefore, got)
	}
}
