package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/stream"
)

// churnTopology is upgradeTopology at testbed scale: a well-provisioned
// origin (node 0), one capable worker (node 1, ~100 units/sec) and thirty
// small workers (~10 units/sec each — enough headroom that gossip's own
// control traffic does not starve them).
func churnTopology() *netsim.Topology {
	const n = 32
	topo := &netsim.Topology{
		UpBps:         make([]float64, n),
		DownBps:       make([]float64, n),
		LatencyMatrix: make([][]time.Duration, n),
		Site:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		topo.LatencyMatrix[i] = make([]time.Duration, n)
		for j := 0; j < n; j++ {
			if i != j {
				topo.LatencyMatrix[i][j] = 10 * time.Millisecond
			}
		}
		switch i {
		case 0:
			topo.UpBps[i], topo.DownBps[i] = 3e6, 3e6
		case 1:
			topo.UpBps[i], topo.DownBps[i] = 1e6, 1e6
		default:
			topo.UpBps[i], topo.DownBps[i] = 1e5, 1e5
		}
	}
	return topo
}

// TestUpgradeChurnNoDuplicateAttempts runs the upgrade scenario on the
// paper's 32-node scale with an aggressive 1-second check interval and
// membership churn, and pins the controller's dedup guarantees: upgrade
// attempts racing the periodic check are absorbed by single-flight and
// cooldown (the attempt count stays bounded by the cooldown pacing, not
// the check frequency), and once the stream reaches its desired rate no
// further attempts fire.
func TestUpgradeChurnNoDuplicateAttempts(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes:           32,
		Seed:            26,
		Topology:        churnTopology(),
		ServiceNames:    []string{"filter"},
		ServicesPerNode: 1,
		EnableGossip:    true,
		Gossip:          gossip.Config{ProbeTimeout: 500 * time.Millisecond},
	})
	origin := s.Engines[0]
	// Scarcity: only the big worker and two small workers keep offering
	// "filter" (hard capacity cap ≈ 100+10+10 units/sec, of which the
	// competitor takes 85 — well short of the desired 40). Withdraw before
	// digests disseminate so the view converges on the final provider set.
	for i := 0; i < 32; i++ {
		if i != 1 && i != 2 && i != 3 {
			s.Dirs[i].Withdraw("filter")
		}
	}
	s.Sim.RunUntil(s.Sim.Now() + 20*time.Second)

	// The competitor occupies most of the big worker.
	comp := simpleRequest("competitor", 85, "filter")
	var compGraph *core.ExecutionGraph
	done := false
	s.Engines[1].Submit(comp, &core.MinCost{BestEffortFraction: 0.3}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		done = true
		compGraph = g
	})
	for j := 0; j < 200 && !done; j++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if compGraph == nil {
		t.Fatal("competitor not admitted")
	}
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)

	const desiredRate = 40
	req := simpleRequest("upgrade-me", desiredRate, "filter")
	done = false
	var g *core.ExecutionGraph
	var subErr error
	origin.Submit(req, &core.MinCost{BestEffortFraction: 0.1}, 10*time.Second, func(gr *core.ExecutionGraph, err error) {
		done = true
		g, subErr = gr, err
	})
	for j := 0; j < 200 && !done; j++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if g == nil {
		t.Fatalf("best-effort admission failed outright: %v", subErr)
	}
	if admitted := g.Request.Substreams[0].Rate; admitted >= desiredRate {
		t.Fatalf("admission landed at full rate %d; contention broken", admitted)
	}
	// A 1-second interval publishes UpgradePossible far faster than an
	// upgrade attempt completes; the default cooldown (2×interval) is what
	// paces attempts.
	origin.EnableAdaptation(stream.AdaptationConfig{Interval: time.Second})
	defer origin.DisableAdaptation()

	fullAttempts := func() int64 { return origin.Recompositions() - origin.Reallocations() }

	// Phase 1: capacity is still taken, so every attempt re-admits below
	// the desired rate and the check keeps publishing. Attempts must pace
	// at the cooldown, not the check interval.
	s.Sim.RunUntil(s.Sim.Now() + 4*time.Second)
	// Membership churn mid-phase: kill two tiny workers that host nothing
	// of ours; their member-dead events drain through the same controller
	// as the racing upgrade events.
	streaming := hostIndexes(s, g)
	killed := 0
	for i := 31; i >= 2 && killed < 2; i-- {
		if !streaming[i] {
			s.Kill(i)
			killed++
		}
	}
	s.Sim.RunUntil(s.Sim.Now() + 4*time.Second)
	attempts := fullAttempts()
	if attempts == 0 {
		t.Fatal("no upgrade attempted while admitted below desired rate")
	}
	// 8 seconds of racing 1s-interval checks: without single-flight and
	// cooldown dedup there would be ≥8 attempts; the cooldown allows ~3.
	if attempts > 6 {
		t.Fatalf("%d upgrade attempts in 8s; duplicates raced the periodic check", attempts)
	}

	// Phase 2: capacity returns; the next attempt must land at the full
	// desired rate.
	s.Engines[1].Teardown(compGraph, 5*time.Second)
	deadline := s.Sim.Now() + 60*time.Second
	wantPeriod := time.Second / desiredRate
	for s.Sim.Now() < deadline {
		if sink := origin.Sink("upgrade-me", 0); sink != nil && sink.Period == wantPeriod {
			break
		}
		s.Sim.RunUntil(s.Sim.Now() + time.Second)
	}
	sink := origin.Sink("upgrade-me", 0)
	if sink == nil || sink.Period != wantPeriod {
		t.Fatalf("stream never upgraded to the desired rate after capacity returned")
	}

	// Phase 3: at the desired rate there is nothing to upgrade; the
	// attempt counter must hold still through further periodic checks.
	settled := fullAttempts()
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	if got := fullAttempts(); got != settled {
		t.Fatalf("upgrade attempts kept firing after reaching the desired rate: %d -> %d", settled, got)
	}
	// And delivery actually flows at the upgraded rate. Incremental
	// reallocations may still re-place the stream (consolidating once
	// fresher digests arrive), which replaces the sink and resets its
	// counter — accumulate per-window deltas with reset handling.
	var delivered int64
	last := origin.Sink("upgrade-me", 0).Received
	for i := 0; i < 10; i++ {
		s.Sim.RunUntil(s.Sim.Now() + time.Second)
		cur := origin.Sink("upgrade-me", 0).Received
		d := cur - last
		if d < 0 {
			d = cur
		}
		delivered += d
		last = cur
	}
	gotRate := float64(delivered) / 10
	if gotRate < 0.7*desiredRate {
		t.Fatalf("post-upgrade delivery rate %.1f, want ≈%d", gotRate, desiredRate)
	}
}

// TestFailedRecomposeRearmsWithBackoff is the regression test for the
// recomposing-flag lifecycle: a recompose attempt that fails (here: the
// only provider of the service is dead, so composition is infeasible)
// must re-arm and retry with exponential backoff rather than stall until
// the next periodic event. Under the old one-shot flag the origin would
// attempt exactly once; the controller's backoff keeps retrying well
// before the next check interval.
func TestFailedRecomposeRearmsWithBackoff(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes:           8,
		Seed:            27,
		ServiceNames:    []string{"filter"},
		ServicesPerNode: 1,
	})
	// Leave node 1 as the sole provider.
	for i := 0; i < 8; i++ {
		if i != 1 {
			s.Dirs[i].Withdraw("filter")
		}
	}
	s.Sim.Run()
	origin := s.Engines[0]
	req := simpleRequest("rearm", 5, "filter")
	submit(t, s, 0, req, &core.MinCost{})
	// A long interval separates the periodic checks by a full minute; a
	// short RPC timeout keeps each doomed attempt brief.
	origin.EnableAdaptation(stream.AdaptationConfig{
		Interval: 30 * time.Second,
		Timeout:  time.Second,
	})
	defer origin.DisableAdaptation()
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	s.Kill(1)
	// First check at ~30s sees the dead stream and publishes; every
	// recompose attempt fails (no provider left). By 55s — still before
	// the second periodic check — backoff must have driven several
	// attempts.
	s.Sim.RunUntil(s.Sim.Now() + 27*time.Second)
	first := origin.Recompositions()
	if first == 0 {
		t.Fatal("degraded stream never triggered a recompose")
	}
	s.Sim.RunUntil(s.Sim.Now() + 23*time.Second)
	got := origin.Recompositions()
	if got < 3 {
		t.Fatalf("failed recompose did not re-arm: %d attempts after %d initial, want ≥3 via backoff",
			got, first)
	}
}
