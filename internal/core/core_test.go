package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/transport"
)

// testHost fabricates a host identity.
func testHost(i int) overlay.NodeInfo {
	return overlay.NodeInfo{
		ID:   overlay.HashID(fmt.Sprintf("host-%d", i)),
		Addr: transport.Addr(fmt.Sprintf("sim://%d", i)),
	}
}

// report builds a monitoring report with the given available bandwidth
// (both directions) and drop ratio.
func report(availBps float64, drop float64) monitor.Report {
	return monitor.Report{InBpsCap: availBps, OutBpsCap: availBps, DropRatio: drop}
}

// cand pairs a host with a report.
func cand(i int, availBps, drop float64) Candidate {
	return Candidate{Info: testHost(i), Report: report(availBps, drop)}
}

// req1 builds a single-substream request: chain of services at rate
// units/sec with 1250-byte units (10 kbit → rate r means r*10 kbps).
func req1(rate int, chain ...string) spec.Request {
	return spec.Request{
		ID:         "r1",
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: chain, Rate: rate}},
	}
}

const kbit = 1000.0

func baseInput(req spec.Request) Input {
	return Input{
		Request:      req,
		Source:       testHost(1000),
		Dest:         testHost(1001),
		SourceReport: report(10_000*kbit, 0),
		DestReport:   report(10_000*kbit, 0),
		Candidates:   map[string][]Candidate{},
		Rand:         rand.New(rand.NewSource(1)),
		Headroom:     1, // exact capacities: tests reason in whole units
	}
}

func TestMinCostSimpleChain(t *testing.T) {
	in := baseInput(req1(10, "filter", "transcode"))
	in.Candidates["filter"] = []Candidate{cand(1, 1000*kbit, 0)}
	in.Candidates["transcode"] = []Candidate{cand(2, 1000*kbit, 0)}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 2 {
		t.Fatalf("placements = %d, want 2", len(g.Placements))
	}
	for _, p := range g.Placements {
		if p.Rate != 10 {
			t.Fatalf("placement rate = %g, want 10", p.Rate)
		}
	}
	if g.Composer != "mincost" {
		t.Fatalf("Composer = %q", g.Composer)
	}
}

func TestMinCostSplitsAcrossInstances(t *testing.T) {
	// Rate 10 but each transcode host can carry only 6 units/sec
	// (60 kbps avail / 10 kbit units): RASC must split 6/4 or similar.
	in := baseInput(req1(10, "transcode"))
	in.Candidates["transcode"] = []Candidate{
		cand(1, 60*kbit, 0),
		cand(2, 60*kbit, 0),
	}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 2 {
		t.Fatalf("expected a split across 2 instances, got %d placements", len(g.Placements))
	}
	total := 0.0
	for _, p := range g.Placements {
		if p.Rate > 6 {
			t.Fatalf("placement exceeds host capacity: %g", p.Rate)
		}
		total += p.Rate
	}
	if total != 10 {
		t.Fatalf("split total = %g, want 10", total)
	}

	// The same request must be rejected by both baselines: no single
	// host has capacity 10.
	for _, c := range []Composer{Random{}, Greedy{}} {
		if _, err := c.Compose(in); !errors.Is(err, ErrNoFeasiblePlacement) {
			t.Fatalf("%s: err = %v, want ErrNoFeasiblePlacement", c.Name(), err)
		}
	}
}

func TestMinCostPrefersLowDropHosts(t *testing.T) {
	in := baseInput(req1(5, "filter"))
	in.Candidates["filter"] = []Candidate{
		cand(1, 1000*kbit, 0.30),
		cand(2, 1000*kbit, 0.00),
	}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 1 || g.Placements[0].Host.ID != testHost(2).ID {
		t.Fatalf("placements = %+v, want all flow on the zero-drop host", g.Placements)
	}
}

func TestMinCostCapacityUpdateAcrossSubstreams(t *testing.T) {
	// Two substreams use the same service; one host has capacity for
	// only the first.
	req := spec.Request{
		ID:        "r2",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter"}, Rate: 6},
			{Services: []string{"filter"}, Rate: 6},
		},
	}
	in := baseInput(req)
	in.Candidates["filter"] = []Candidate{
		cand(1, 80*kbit, 0),  // 8 units/sec: fits one substream only
		cand(2, 100*kbit, 0), // 10 units/sec
	}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	// Total per host across substreams must respect capacity.
	perHost := map[overlay.ID]float64{}
	for _, p := range g.Placements {
		perHost[p.Host.ID] += p.Rate
	}
	if perHost[testHost(1).ID] > 8 {
		t.Fatalf("host 1 overcommitted: %g", perHost[testHost(1).ID])
	}
	if perHost[testHost(2).ID] > 10 {
		t.Fatalf("host 2 overcommitted: %g", perHost[testHost(2).ID])
	}
}

func TestMinCostRejectsWhenCumulativeCapacityInsufficient(t *testing.T) {
	in := baseInput(req1(20, "transcode"))
	in.Candidates["transcode"] = []Candidate{
		cand(1, 60*kbit, 0),
		cand(2, 60*kbit, 0), // 12 units/sec total < 20
	}
	_, err := (&MinCost{}).Compose(in)
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

func TestMinCostRejectsUnknownService(t *testing.T) {
	in := baseInput(req1(5, "nonexistent"))
	_, err := (&MinCost{}).Compose(in)
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v", err)
	}
}

func TestMinCostSourceUplinkBounds(t *testing.T) {
	in := baseInput(req1(10, "filter"))
	in.SourceReport = report(50*kbit, 0) // 5 units/sec uplink
	in.Candidates["filter"] = []Candidate{cand(1, 1000*kbit, 0)}
	_, err := (&MinCost{}).Compose(in)
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want rejection on source uplink", err)
	}
}

func TestMinCostDestDownlinkBounds(t *testing.T) {
	in := baseInput(req1(10, "filter"))
	in.DestReport = report(50*kbit, 0)
	in.Candidates["filter"] = []Candidate{cand(1, 1000*kbit, 0)}
	_, err := (&MinCost{}).Compose(in)
	if !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want rejection on destination downlink", err)
	}
}

func TestMinCostNoSplitAblation(t *testing.T) {
	in := baseInput(req1(10, "transcode"))
	in.Candidates["transcode"] = []Candidate{
		cand(1, 200*kbit, 0.1),
		cand(2, 200*kbit, 0),
	}
	m := &MinCost{NoSplit: true}
	if m.Name() != "mincost-nosplit" {
		t.Fatalf("Name = %q", m.Name())
	}
	g, err := m.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Placements) != 1 {
		t.Fatalf("nosplit produced %d placements", len(g.Placements))
	}
	if g.Placements[0].Host.ID != testHost(2).ID {
		t.Fatal("nosplit must pick the lowest-drop feasible host")
	}
	// And it must reject what split composition could carry.
	in2 := baseInput(req1(10, "transcode"))
	in2.Candidates["transcode"] = []Candidate{
		cand(1, 60*kbit, 0),
		cand(2, 60*kbit, 0),
	}
	if _, err := m.Compose(in2); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("nosplit err = %v, want rejection", err)
	}
}

func TestGreedyPicksLowestDrop(t *testing.T) {
	in := baseInput(req1(5, "filter", "aggregate"))
	in.Candidates["filter"] = []Candidate{
		cand(1, 1000*kbit, 0.2),
		cand(2, 1000*kbit, 0.05),
	}
	in.Candidates["aggregate"] = []Candidate{
		cand(3, 1000*kbit, 0.5),
		cand(4, 1000*kbit, 0.1),
	}
	g, err := (Greedy{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	if g.Placements[0].Host.ID != testHost(2).ID || g.Placements[1].Host.ID != testHost(4).ID {
		t.Fatalf("greedy placements = %+v", g.Placements)
	}
}

func TestGreedyStacksOnBestNodeUntilFull(t *testing.T) {
	// The §4.2 failure mode: greedy reads drops once and keeps loading
	// the best node. Host 1 (drop 0) has capacity 10; two stages at
	// rate 5 both land on it.
	in := baseInput(req1(5, "filter", "aggregate"))
	in.Candidates["filter"] = []Candidate{cand(1, 100*kbit, 0), cand(2, 1000*kbit, 0.1)}
	in.Candidates["aggregate"] = []Candidate{cand(1, 100*kbit, 0), cand(2, 1000*kbit, 0.1)}
	g, err := (Greedy{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Placements[0].Host.ID != testHost(1).ID || g.Placements[1].Host.ID != testHost(1).ID {
		t.Fatalf("greedy should stack on host 1: %+v", g.Placements)
	}
	if NumHosts(g) != 1 {
		t.Fatalf("NumHosts = %d", NumHosts(g))
	}
}

func TestRandomDeterministicUnderSeed(t *testing.T) {
	mk := func(seed int64) *ExecutionGraph {
		in := baseInput(req1(5, "filter"))
		in.Rand = rand.New(rand.NewSource(seed))
		in.Candidates["filter"] = []Candidate{
			cand(1, 1000*kbit, 0), cand(2, 1000*kbit, 0), cand(3, 1000*kbit, 0),
		}
		g, err := (Random{}).Compose(in)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(7), mk(7)
	if a.Placements[0].Host.ID != b.Placements[0].Host.ID {
		t.Fatal("same seed produced different placements")
	}
}

func TestRandomRespectsCapacity(t *testing.T) {
	in := baseInput(req1(10, "filter"))
	in.Candidates["filter"] = []Candidate{
		cand(1, 50*kbit, 0),   // 5 units/sec: infeasible
		cand(2, 1000*kbit, 0), // feasible
	}
	for seed := int64(0); seed < 20; seed++ {
		in.Rand = rand.New(rand.NewSource(seed))
		g, err := (Random{}).Compose(in)
		if err != nil {
			t.Fatal(err)
		}
		if g.Placements[0].Host.ID != testHost(2).ID {
			t.Fatal("random picked an infeasible host")
		}
	}
}

func TestRandomNeedsRand(t *testing.T) {
	in := baseInput(req1(1, "filter"))
	in.Rand = nil
	in.Candidates["filter"] = []Candidate{cand(1, 1000*kbit, 0)}
	if _, err := (Random{}).Compose(in); err == nil {
		t.Fatal("expected error without Rand")
	}
}

func TestInvalidRequestRejected(t *testing.T) {
	bad := spec.Request{ID: "x", UnitBytes: 1250} // no substreams
	for _, c := range []Composer{&MinCost{}, Random{}, Greedy{}} {
		in := baseInput(bad)
		if _, err := c.Compose(in); err == nil {
			t.Fatalf("%s accepted an invalid request", c.Name())
		}
	}
}

func TestCheckGraphCatchesViolations(t *testing.T) {
	g := &ExecutionGraph{
		Request: req1(5, "filter"),
		Source:  testHost(1000),
		Dest:    testHost(1001),
		Placements: []Placement{
			{Substream: 0, Stage: 0, Service: "filter", Host: testHost(1), Rate: 5},
		},
		Edges: []Edge{
			{Substream: 0, FromStage: -1, ToStage: 0, From: testHost(1000), To: testHost(1), Rate: 5},
			{Substream: 0, FromStage: 0, ToStage: 1, From: testHost(1), To: testHost(1001), Rate: 3}, // deficit!
		},
	}
	if err := CheckGraph(g, nil); err == nil {
		t.Fatal("CheckGraph missed a conservation violation")
	}
	g.Edges[1].Rate = 5
	if err := CheckGraph(g, nil); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestMultiSubstreamComposition(t *testing.T) {
	// Mirrors Figure 2: substream 1 = s1→s2, substream 2 = s3.
	req := spec.Request{
		ID:        "fig2",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"s1", "s2"}, Rate: 8},
			{Services: []string{"s3"}, Rate: 4},
		},
	}
	in := baseInput(req)
	// Figure 4's hosting: s1 on n3,n4; s2 on n1,n2; s3 on n1,n3.
	in.Candidates["s1"] = []Candidate{cand(3, 500*kbit, 0), cand(4, 500*kbit, 0)}
	in.Candidates["s2"] = []Candidate{cand(1, 500*kbit, 0), cand(2, 500*kbit, 0)}
	in.Candidates["s3"] = []Candidate{cand(1, 500*kbit, 0), cand(3, 500*kbit, 0)}
	for _, c := range []Composer{&MinCost{}, Greedy{}, Random{}} {
		g, err := c.Compose(in)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if err := CheckGraph(g, nil); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestMinCostScalingSolverEquivalent(t *testing.T) {
	// Both solvers must admit the same requests and meet the same rate
	// requirements (solutions may differ among cost ties).
	mkInput := func() Input {
		in := baseInput(req1(10, "transcode", "filter"))
		in.Candidates["transcode"] = []Candidate{
			cand(1, 60*kbit, 0.05),
			cand(2, 80*kbit, 0.0),
		}
		in.Candidates["filter"] = []Candidate{
			cand(3, 70*kbit, 0.1),
			cand(4, 90*kbit, 0.02),
		}
		return in
	}
	ssp, err := (&MinCost{}).Compose(mkInput())
	if err != nil {
		t.Fatal(err)
	}
	scaling, err := (&MinCost{Solver: "scaling"}).Compose(mkInput())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(scaling, nil); err != nil {
		t.Fatal(err)
	}
	cost := func(g *ExecutionGraph, in Input) float64 {
		drops := map[string]float64{}
		for _, cands := range in.Candidates {
			for _, c := range cands {
				drops[c.Info.ID.String()] = c.Report.DropRatio
			}
		}
		total := 0.0
		for _, p := range g.Placements {
			total += p.Rate * drops[p.Host.ID.String()]
		}
		return total
	}
	if a, b := cost(ssp, mkInput()), cost(scaling, mkInput()); a != b {
		t.Fatalf("solver costs differ: ssp %g vs scaling %g", a, b)
	}
}

// Property: on random feasible instances, min-cost composition always
// meets the rate and never overcommits a host.
func TestMinCostPropertyRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		nHosts := 2 + rng.Intn(6)
		nStages := 1 + rng.Intn(3)
		rate := 2 + rng.Intn(12)
		chain := make([]string, nStages)
		in := baseInput(req1(rate, chain...))
		capacity := make(map[overlay.ID]int)
		totalCap := 0
		var cands []Candidate
		for h := 0; h < nHosts; h++ {
			units := 1 + rng.Intn(15)
			c := cand(h, float64(units)*10*kbit, rng.Float64()*0.3)
			cands = append(cands, c)
			capacity[c.Info.ID] = units
			totalCap += units
		}
		for j := range chain {
			chain[j] = fmt.Sprintf("svc%d", j)
			in.Request.Substreams[0].Services[j] = chain[j]
			in.Candidates[chain[j]] = cands
		}
		g, err := (&MinCost{}).Compose(in)
		if errors.Is(err, ErrNoFeasiblePlacement) {
			continue // genuinely infeasible instance
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckGraph(g, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Within one substream the flow reduction bounds each
		// (stage, host) component by the host capacity — the paper's
		// approximation of eq. 3 (the exact per-node constraint is
		// only enforced by the LP composer).
		for _, p := range g.Placements {
			if p.Rate > float64(capacity[p.Host.ID])+1e-9 {
				t.Fatalf("trial %d: component overcommitted %g > %d", trial, p.Rate, capacity[p.Host.ID])
			}
		}
	}
}

func TestBestEffortAdmission(t *testing.T) {
	// Capacity for 12 of the requested 20 units/sec.
	mk := func() Input {
		in := baseInput(req1(20, "transcode"))
		in.Candidates["transcode"] = []Candidate{
			cand(1, 60*kbit, 0),
			cand(2, 60*kbit, 0),
		}
		return in
	}
	// All-or-nothing rejects.
	if _, err := (&MinCost{}).Compose(mk()); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v", err)
	}
	// Best effort at 50% admits at 12 units/sec.
	m := &MinCost{BestEffortFraction: 0.5}
	if m.Name() != "mincost-besteffort" {
		t.Fatalf("Name = %q", m.Name())
	}
	in := mk()
	g, err := m.Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Request.Substreams[0].Rate != 12 {
		t.Fatalf("admitted rate = %d, want 12", g.Request.Substreams[0].Rate)
	}
	// The caller's request must not be mutated.
	if in.Request.Substreams[0].Rate != 20 {
		t.Fatal("caller's request mutated")
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	// Below the fraction it still rejects.
	strict := &MinCost{BestEffortFraction: 0.7}
	if _, err := strict.Compose(mk()); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want rejection below fraction", err)
	}
}

func TestBestEffortByName(t *testing.T) {
	c, err := ByName("mincost-besteffort")
	if err != nil || c.Name() != "mincost-besteffort" {
		t.Fatalf("ByName: %v / %v", c, err)
	}
}
