package experiment

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the evaluation harness (metric catalogue
// rasc_experiment_*).
var telSweepParallelism = telemetry.Default().Gauge(
	"rasc_experiment_sweep_parallelism",
	"Effective worker-pool size of the most recently started experiment sweep.")
