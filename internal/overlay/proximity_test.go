package overlay

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

// proximityCluster builds a two-site topology (near nodes at 2ms, far
// nodes at 100ms from node 0) and joins everyone with proximity-aware
// routing enabled or disabled.
func proximityCluster(t *testing.T, n int, aware bool, seed int64) ([]*Node, *netsim.Simulator) {
	t.Helper()
	sim := netsim.New(seed)
	lat := func(a, b netsim.NodeID) time.Duration {
		if a == b {
			return 0
		}
		// Even nodes form one site, odd nodes the other.
		if (int(a)%2 == 0) == (int(b)%2 == 0) {
			return 2 * time.Millisecond
		}
		return 100 * time.Millisecond
	}
	nw := netsim.NewNetwork(sim, netsim.Config{Latency: lat})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		id := HashID(fmt.Sprintf("prox-%d-%d", seed, i))
		nodes[i] = NewNode(id, mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
		nodes[i].ProximityAware = aware
	}
	nodes[0].Bootstrap()
	for i := 1; i < n; i++ {
		nodes[i].Join(nodes[0].Addr(), nil)
		sim.Run()
	}
	for _, nd := range nodes {
		nd.Stabilize()
	}
	sim.Run()
	return nodes, sim
}

// meanTableRTT averages the true latency of every routing-table entry as
// seen from its owner.
func meanTableRTT(nodes []*Node) float64 {
	idx := make(map[ID]int, len(nodes))
	for i, nd := range nodes {
		idx[nd.ID()] = i
	}
	var total float64
	var count int
	for i, nd := range nodes {
		for _, e := range nd.rt.all() {
			j := idx[e.ID]
			if (i%2 == 0) == (j%2 == 0) {
				total += 2
			} else {
				total += 100
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

func TestProximitySelectionPrefersNearPeers(t *testing.T) {
	blind, _ := proximityCluster(t, 24, false, 3)
	aware, _ := proximityCluster(t, 24, true, 3)
	b, a := meanTableRTT(blind), meanTableRTT(aware)
	if a >= b {
		t.Fatalf("proximity-aware mean table latency %.1fms not below blind %.1fms", a, b)
	}
}

func TestProximityRoutingStillConverges(t *testing.T) {
	nodes, sim := proximityCluster(t, 20, true, 7)
	root := func(key ID) *Node {
		best := nodes[0]
		for _, nd := range nodes[1:] {
			if Closer(key, nd.ID(), best.ID()) {
				best = nd
			}
		}
		return best
	}
	for trial := 0; trial < 30; trial++ {
		key := HashID(fmt.Sprintf("prox-key-%d", trial))
		var deliveredAt *Node
		for _, nd := range nodes {
			nd := nd
			nd.Register("p", func(ID, NodeInfo, []byte) { deliveredAt = nd })
		}
		nodes[trial%len(nodes)].Route(key, "p", nil)
		sim.Run()
		if deliveredAt != root(key) {
			t.Fatalf("proximity routing misdelivered key %v", key)
		}
	}
}

func TestProbeRTTCachesAndMeasures(t *testing.T) {
	nodes, sim := proximityCluster(t, 6, true, 11)
	// After joining with proximity on, contested slots have measurements.
	measured := 0
	for _, nd := range nodes {
		for _, other := range nodes {
			if rtt, ok := nd.RTTOf(other.ID()); ok {
				measured++
				if rtt <= 0 {
					t.Fatalf("non-positive RTT %v", rtt)
				}
			}
		}
	}
	_ = sim
	// Probing only happens for contested slots; with 6 nodes there may
	// be few, but RTTOf must never fabricate entries.
	if _, ok := nodes[0].RTTOf(HashID("stranger")); ok {
		t.Fatal("RTTOf returned a measurement for an unknown peer")
	}
}
