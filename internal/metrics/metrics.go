// Package metrics provides the statistics used to aggregate experiment
// results: streaming mean/variance (Welford), fixed-bucket histograms with
// percentile queries, and labelled series for rendering the paper's
// figures as tables and CSV.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates a streaming mean and variance.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance (0 with fewer than two observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Histogram is an exact-percentile accumulator: it retains observations
// and sorts on demand. Suitable for experiment-scale data volumes.
type Histogram struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.vals = append(h.vals, x)
	h.sorted = false
}

// N returns the observation count.
func (h *Histogram) N() int { return len(h.vals) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank, or
// 0 when empty.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.vals) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
	if p <= 0 {
		return h.vals[0]
	}
	if p >= 100 {
		return h.vals[len(h.vals)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(h.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return h.vals[rank]
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank, or 0
// when empty: Quantile(0.5) == Percentile(50). It exists so experiment
// code and runtime telemetry agree on percentile semantics (p0 is the
// minimum, p100 the maximum, nearest-rank in between).
func (h *Histogram) Quantile(q float64) float64 { return h.Percentile(q * 100) }

// Merge incorporates every observation of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || len(other.vals) == 0 {
		return
	}
	h.vals = append(h.vals, other.vals...)
	h.sorted = false
}

// Mean returns the arithmetic mean.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.vals {
		sum += v
	}
	return sum / float64(len(h.vals))
}

// Series is one labelled line of a figure: a y-value per x-value.
type Series struct {
	Label  string
	Points map[int]float64
}

// Table renders a figure: one row per x value, one column per series —
// the same rows/columns the paper's plots show. Column order is the order
// series were first Set, regardless of later updates.
type Table struct {
	Title  string
	XLabel string
	YLabel string
	XVals  []int
	Series []Series

	// index maps a series label to its position in Series, so Set/Get on
	// wide tables stay O(1) instead of scanning every column. It is
	// rebuilt lazily, which keeps literal-constructed Tables working.
	index map[string]int
}

// NewTable creates a table with the given axes.
func NewTable(title, xlabel, ylabel string, xvals []int) *Table {
	return &Table{Title: title, XLabel: xlabel, YLabel: ylabel, XVals: xvals}
}

// seriesIndex returns the position of label in Series, rebuilding the
// index if the Series slice was modified out from under it.
func (t *Table) seriesIndex(label string) (int, bool) {
	if t.index == nil || len(t.index) != len(t.Series) {
		t.index = make(map[string]int, len(t.Series))
		for i := range t.Series {
			t.index[t.Series[i].Label] = i
		}
	}
	i, ok := t.index[label]
	return i, ok
}

// Set records a point for a series, creating the series on first use.
func (t *Table) Set(label string, x int, y float64) {
	if i, ok := t.seriesIndex(label); ok {
		t.Series[i].Points[x] = y
		return
	}
	t.index[label] = len(t.Series)
	t.Series = append(t.Series, Series{Label: label, Points: map[int]float64{x: y}})
}

// Get returns a point's value (0 when absent).
func (t *Table) Get(label string, x int) float64 {
	if i, ok := t.seriesIndex(label); ok {
		return t.Series[i].Points[x]
	}
	return 0
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&b, " %14s", s.Label)
	}
	b.WriteByte('\n')
	for _, x := range t.XVals {
		fmt.Fprintf(&b, "%-12d", x)
		for _, s := range t.Series {
			fmt.Fprintf(&b, " %14.4f", s.Points[x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(t.XLabel)
	for _, s := range t.Series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for _, x := range t.XVals {
		fmt.Fprintf(&b, "%d", x)
		for _, s := range t.Series {
			fmt.Fprintf(&b, ",%g", s.Points[x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
