package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/trace"
)

func TestTracingEndToEnd(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 10, Seed: 61})
	buf := trace.NewBuffer(100_000)
	for _, e := range s.Engines {
		e.SetTracer(buf)
	}
	req := simpleRequest("traced", 10, "filter", "encrypt")
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)

	if buf.Total() == 0 {
		t.Fatal("no events recorded")
	}
	// Pick a delivered unit and reconstruct its timeline: it must pass
	// emit → (arrive, process, forward) per stage → deliver, in order.
	var seq int64 = -1
	for _, e := range buf.Events() {
		if e.Kind == trace.KindDeliver && e.Req == "traced" && e.Seq > 10 {
			seq = e.Seq
			break
		}
	}
	if seq < 0 {
		t.Fatal("no delivered unit found in the trace")
	}
	tl := buf.Timeline("traced", 0, seq)
	kinds := map[trace.Kind]int{}
	for _, e := range tl {
		kinds[e.Kind]++
	}
	if kinds[trace.KindEmit] != 1 {
		t.Fatalf("timeline emits = %d", kinds[trace.KindEmit])
	}
	if kinds[trace.KindArrive] != 2 || kinds[trace.KindProcess] != 2 || kinds[trace.KindForward] != 2 {
		t.Fatalf("timeline kinds = %v\n%s", kinds, trace.FormatTimeline(tl))
	}
	if kinds[trace.KindDeliver] != 1 {
		t.Fatalf("timeline delivers = %d", kinds[trace.KindDeliver])
	}

	// Per-stage latencies must exist for stages 0..2 and their sum must
	// be close to (bounded by) the unit's end-to-end delay components.
	lat := buf.StageLatencies("traced", 0)
	if len(lat) != 3 {
		t.Fatalf("stage latencies = %+v", lat)
	}
	var sum time.Duration
	positive := 0
	for _, sl := range lat {
		if sl.Mean < 0 || sl.Count == 0 {
			t.Fatalf("degenerate stage latency %+v", sl)
		}
		if sl.Mean > 0 {
			positive++ // co-located hops legitimately measure 0
		}
		sum += sl.Mean
	}
	if positive == 0 {
		t.Fatal("every hop measured zero latency")
	}
	sink := s.Engines[0].Sink("traced", 0)
	// Network hop time must account for most of the end-to-end delay;
	// processing adds the rest. Allow generous slack.
	if sum > 2*sink.MeanDelay() {
		t.Fatalf("stage latency sum %v inconsistent with mean delay %v", sum, sink.MeanDelay())
	}

	// Drop causes (if any) must use known labels.
	for cause := range buf.DropsByCause() {
		switch cause {
		case "uplink", "downlink", "queue-full", "laxity":
		default:
			t.Fatalf("unknown drop cause %q", cause)
		}
	}
}
