package transport

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// batchType marks a coalesced frame: its payload is a sequence of
// wire-encoded Messages (see wire.go) packed by a Resilient sender and
// unpacked transparently by the receiving Resilient before the application
// handler runs.
const batchType = "transport.batch"

// ResilientConfig tunes a Resilient endpoint. The zero value selects the
// defaults noted on each field.
type ResilientConfig struct {
	// QueueLen bounds each peer's send queue; Send returns ErrBacklog
	// when it is full (default 1024).
	QueueLen int
	// MaxBatch is the most messages coalesced into one wire frame
	// (default 64).
	MaxBatch int
	// MaxBatchBytes bounds a batch's estimated wire size (default 256 KiB).
	MaxBatchBytes int
	// SendDeadline is each message's time budget from enqueue: messages
	// still undelivered past it are dropped rather than retried forever
	// (default 5s).
	SendDeadline time.Duration
	// MaxRetries is how many times a failed batch is retried before its
	// messages are dropped and the failure counts toward the breaker
	// (default 4).
	MaxRetries int
	// RetryBase is the first retry's backoff delay; each subsequent retry
	// doubles it up to RetryMax, with ±50% jitter (defaults 20ms, 1s).
	RetryBase, RetryMax time.Duration
	// IdleTimeout reaps a peer whose queue stayed empty this long —
	// sender goroutine exits and any pooled connection is dropped —
	// provided its breaker is closed (default 60s).
	IdleTimeout time.Duration
	// Breaker tunes the per-peer circuit breaker.
	Breaker BreakerConfig
	// Seed makes retry jitter reproducible; 0 seeds from the wall clock.
	Seed int64
	// OnBreakerChange, when set, observes every breaker transition. It is
	// invoked from a dedicated notifier goroutine in transition order and
	// must not block for long; notifications are dropped when more than
	// 256 are pending.
	OnBreakerChange func(peer Addr, state BreakerState)
}

func (c *ResilientConfig) defaults() {
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
	if c.SendDeadline <= 0 {
		c.SendDeadline = 5 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 60 * time.Second
	}
	c.Breaker.defaults()
}

// connDropper is implemented by inner endpoints that pool outbound
// connections (TCPEndpoint); a Resilient drops the pooled connection when
// it reaps an idle peer.
type connDropper interface{ DropConn(to Addr) }

// breakerEvent is one transition handed to the notifier goroutine.
type breakerEvent struct {
	peer  Addr
	state BreakerState
}

// Resilient wraps an Endpoint with a per-peer delivery pipeline: Send
// enqueues onto a bounded per-peer queue and returns immediately; a
// dedicated sender goroutine per peer coalesces queued control messages
// into batch frames, retries failed sends with exponential backoff and
// jitter, and trips a circuit breaker after repeated failures so a sick
// peer fails fast instead of back-pressuring the caller. Datagram-flagged
// messages ride the same queue but are sent individually and never
// retried, preserving their loss-tolerant contract; because they report no
// outcome to the breaker they are rejected outright whenever the breaker
// is not closed, leaving recovery probing to control traffic.
//
// Delivery of control messages is at-least-once: a batch whose write
// succeeded at the transport but was lost before the peer processed it is
// retried, so handlers may observe duplicates after connection failures.
// Peers idle longer than IdleTimeout are reaped (their pooled connection
// closed) and re-created on demand by the next Send.
type Resilient struct {
	inner Endpoint
	cfg   ResilientConfig

	mu     sync.Mutex
	peers  map[Addr]*rpeer
	closed bool

	done   chan struct{}
	notifq chan breakerEvent
	wg     sync.WaitGroup
}

var _ Endpoint = (*Resilient)(nil)

// queued is one message waiting in a peer's send queue.
type queuedMsg struct {
	msg Message
	at  time.Time
}

// rpeer is the per-destination pipeline: queue, sender goroutine, breaker.
type rpeer struct {
	to Addr
	q  chan queuedMsg

	bmu sync.Mutex
	b   *breaker
}

// NewResilient wraps inner. Close the Resilient, not the inner endpoint;
// Close tears both down.
func NewResilient(inner Endpoint, cfg ResilientConfig) *Resilient {
	cfg.defaults()
	r := &Resilient{
		inner:  inner,
		cfg:    cfg,
		peers:  make(map[Addr]*rpeer),
		done:   make(chan struct{}),
		notifq: make(chan breakerEvent, 256),
	}
	r.wg.Add(1)
	go r.notifyLoop()
	return r
}

// Addr returns the inner endpoint's address.
func (r *Resilient) Addr() Addr { return r.inner.Addr() }

// SetHandler installs the inbound handler, transparently unpacking batch
// frames packed by the peer's Resilient sender.
func (r *Resilient) SetHandler(h Handler) {
	r.inner.SetHandler(func(from Addr, msg Message) {
		if msg.Type != batchType {
			h(from, msg)
			return
		}
		readBatch(msg.Payload, func(m Message) { h(from, m) })
	})
}

// SetDropHandler passes through to the inner endpoint.
func (r *Resilient) SetDropHandler(h Handler) { r.inner.SetDropHandler(h) }

// Send enqueues msg for the destination and returns immediately. It fails
// fast with ErrPeerDown while the peer's breaker is open, and with
// ErrBacklog when the peer's queue is full (the message is dropped).
// Delivery errors discovered later are absorbed by the retry pipeline.
func (r *Resilient) Send(to Addr, msg Message) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	p, ok := r.peers[to]
	if !ok {
		p = r.newPeer(to)
		r.peers[to] = p
	}
	// Fail fast while the breaker is open; an expired open window admits
	// this message as the half-open probe. Datagrams never claim the probe
	// slot: they are sent without retry and never report an outcome to the
	// breaker, so a datagram probe would leave the slot claimed forever —
	// any non-closed state rejects them instead. The closed-state fast
	// path skips allow()'s clock read: reading the clock is the hot path's
	// single biggest cost and a closed breaker never consults it.
	p.bmu.Lock()
	closedBreaker := p.b.state == BreakerClosed
	allowed := closedBreaker || (!msg.Datagram && p.b.allow(time.Now()))
	probe := allowed && !closedBreaker
	p.bmu.Unlock()
	if !allowed {
		r.mu.Unlock()
		telResDropped.With("breaker-open").Inc()
		return ErrPeerDown
	}
	// Enqueue under r.mu so the idle reaper (which also holds r.mu)
	// cannot retire the peer between lookup and enqueue. The gauge update
	// also stays under r.mu so Close's drain of abandoned queues cannot
	// interleave with it.
	select {
	case p.q <- queuedMsg{msg: msg, at: time.Now()}:
		telResQueueDepth.Inc()
		r.mu.Unlock()
		return nil
	default:
		r.mu.Unlock()
		if probe {
			// The admitted probe was never enqueued; hand the slot back
			// so the breaker is not stuck waiting for an outcome that can
			// never arrive.
			p.bmu.Lock()
			p.b.abortProbe()
			p.bmu.Unlock()
		}
		telResDropped.With("queue-full").Inc()
		return ErrBacklog
	}
}

// State returns the peer's breaker state (BreakerClosed for unknown
// peers, which have nothing queued and nothing failing).
func (r *Resilient) State(to Addr) BreakerState {
	r.mu.Lock()
	p, ok := r.peers[to]
	r.mu.Unlock()
	if !ok {
		return BreakerClosed
	}
	p.bmu.Lock()
	defer p.bmu.Unlock()
	return p.b.state
}

// PeerStates snapshots every tracked peer's breaker state.
func (r *Resilient) PeerStates() map[Addr]BreakerState {
	r.mu.Lock()
	peers := make([]*rpeer, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	out := make(map[Addr]BreakerState, len(peers))
	for _, p := range peers {
		p.bmu.Lock()
		out[p.to] = p.b.state
		p.bmu.Unlock()
	}
	return out
}

// SickPeers lists the peers whose breaker is currently not closed: links
// the transport has recent first-hand evidence against. The membership
// layer can suspect them ahead of its own probe timeouts.
func (r *Resilient) SickPeers() []Addr {
	var out []Addr
	for addr, st := range r.PeerStates() {
		if st != BreakerClosed {
			out = append(out, addr)
		}
	}
	return out
}

// Close drains nothing: queued messages are discarded, sender goroutines
// stopped, and the inner endpoint closed.
func (r *Resilient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	peers := make([]*rpeer, 0, len(r.peers))
	for _, p := range r.peers {
		peers = append(peers, p)
	}
	r.mu.Unlock()
	close(r.done)
	err := r.inner.Close()
	r.wg.Wait()
	// The sender goroutines are gone, so whatever is still queued is
	// abandoned and each peer's breaker state is final. Settle the gauges,
	// or endpoint churn leaves them permanently inflated.
	for _, p := range peers {
		if n := len(p.q); n > 0 {
			telResQueueDepth.Add(-float64(n))
		}
		p.bmu.Lock()
		st := p.b.state
		p.bmu.Unlock()
		telResBreakerPeers.With(st.String()).Dec()
	}
	return err
}

// newPeer spawns the per-destination pipeline. Caller holds r.mu.
func (r *Resilient) newPeer(to Addr) *rpeer {
	p := &rpeer{to: to, q: make(chan queuedMsg, r.cfg.QueueLen)}
	p.b = newBreaker(r.cfg.Breaker, func(from, state BreakerState) {
		telResBreakerPeers.With(from.String()).Dec()
		telResBreakerPeers.With(state.String()).Inc()
		telResBreakerTransitions.With(state.String()).Inc()
		select {
		case r.notifq <- breakerEvent{peer: to, state: state}:
		default: // notifier saturated: drop rather than block the pipeline
		}
	})
	telResBreakerPeers.With(BreakerClosed.String()).Inc()
	r.wg.Add(1)
	go r.sendLoop(p)
	return p
}

// notifyLoop delivers breaker transitions to the configured observer in
// order, off the send path.
func (r *Resilient) notifyLoop() {
	defer r.wg.Done()
	for {
		select {
		case ev := <-r.notifq:
			if r.cfg.OnBreakerChange != nil {
				r.cfg.OnBreakerChange(ev.peer, ev.state)
			}
		case <-r.done:
			return
		}
	}
}

// sendLoop is a peer's sender goroutine: collect a batch, flush it,
// repeat; retire the peer after IdleTimeout of quiet.
func (r *Resilient) sendLoop(p *rpeer) {
	defer r.wg.Done()
	rng := r.newJitterRand(p.to)
	idle := time.NewTimer(r.cfg.IdleTimeout)
	defer idle.Stop()
	for {
		select {
		case qm := <-p.q:
			r.flush(p, rng, r.collect(p, qm))
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(r.cfg.IdleTimeout)
		case <-idle.C:
			if r.reapIfIdle(p) {
				return
			}
			idle.Reset(r.cfg.IdleTimeout)
		case <-r.done:
			return
		}
	}
}

// collect drains the peer queue (without blocking) into a batch bounded by
// MaxBatch and MaxBatchBytes, starting from first.
func (r *Resilient) collect(p *rpeer, first queuedMsg) []queuedMsg {
	batch := []queuedMsg{first}
	bytes := first.msg.WireSize()
	for len(batch) < r.cfg.MaxBatch && bytes < r.cfg.MaxBatchBytes {
		select {
		case qm := <-p.q:
			batch = append(batch, qm)
			bytes += qm.msg.WireSize()
		default:
			return batch
		}
	}
	return batch
}

// flush delivers a collected batch: control messages coalesced with
// retry/backoff, datagrams individually without retry.
func (r *Resilient) flush(p *rpeer, rng *rand.Rand, batch []queuedMsg) {
	telResQueueDepth.Add(-float64(len(batch)))
	var ctrl, dgram []queuedMsg
	for _, qm := range batch {
		if qm.msg.Datagram {
			dgram = append(dgram, qm)
		} else {
			ctrl = append(ctrl, qm)
		}
	}
	if len(ctrl) > 0 {
		r.flushCtrl(p, rng, ctrl)
	}
	if len(dgram) == 0 {
		return
	}
	now := time.Now()
	for _, qm := range dgram {
		if r.expired(qm, now) {
			telResDropped.With("deadline").Inc()
			continue
		}
		if err := r.inner.Send(p.to, qm.msg); err != nil {
			telResDropped.With("datagram-error").Inc()
			continue
		}
		telResSendLatency.ObserveDuration(now.Sub(qm.at))
	}
}

func (r *Resilient) expired(qm queuedMsg, now time.Time) bool {
	return now.Sub(qm.at) > r.cfg.SendDeadline
}

// flushCtrl sends the control portion of a batch as one coalesced frame
// (or bare for a single message), retrying failures with exponential
// backoff and jitter, and records the outcome in the peer's breaker.
func (r *Resilient) flushCtrl(p *rpeer, rng *rand.Rand, ctrl []queuedMsg) {
	for attempt := 0; ; attempt++ {
		// Shed messages whose time budget ran out while queued or during
		// earlier retries (one clock read per attempt, not per message).
		now := time.Now()
		live := ctrl[:0]
		for _, qm := range ctrl {
			if r.expired(qm, now) {
				telResDropped.With("deadline").Inc()
				continue
			}
			live = append(live, qm)
		}
		ctrl = live
		if len(ctrl) == 0 {
			// Everything was shed before a send attempt: no outcome will
			// reach the breaker, so release the half-open probe slot in
			// case one of the shed messages had claimed it.
			p.bmu.Lock()
			p.b.abortProbe()
			p.bmu.Unlock()
			return
		}
		err := r.sendCtrl(p.to, ctrl)
		if err == nil {
			now = time.Now()
			for _, qm := range ctrl {
				telResSendLatency.ObserveDuration(now.Sub(qm.at))
			}
			telResBatchSize.Observe(float64(len(ctrl)))
			p.bmu.Lock()
			p.b.success()
			p.bmu.Unlock()
			return
		}
		if errors.Is(err, ErrClosed) {
			telResDropped.With("closed").Add(uint64(len(ctrl)))
			p.bmu.Lock()
			p.b.abortProbe()
			p.bmu.Unlock()
			return
		}
		if attempt >= r.cfg.MaxRetries {
			telResDropped.With("retries-exhausted").Add(uint64(len(ctrl)))
			p.bmu.Lock()
			p.b.failure(time.Now())
			p.bmu.Unlock()
			return
		}
		telResRetries.Inc()
		if !r.sleep(backoff(r.cfg, rng, attempt)) {
			return // endpoint closed while backing off
		}
	}
}

// sendCtrl writes the messages as one frame: bare for a single message, a
// batch envelope otherwise.
func (r *Resilient) sendCtrl(to Addr, ctrl []queuedMsg) error {
	if len(ctrl) == 1 {
		return r.inner.Send(to, ctrl[0].msg)
	}
	size := 0
	for _, qm := range ctrl {
		size += qm.msg.WireSize()
	}
	return r.inner.Send(to, Message{Type: batchType, Payload: appendBatch(make([]byte, 0, size), ctrl)})
}

// backoff is the attempt'th retry delay: RetryBase doubled per attempt,
// capped at RetryMax, with ±50% jitter so retry storms decorrelate.
func backoff(cfg ResilientConfig, rng *rand.Rand, attempt int) time.Duration {
	d := cfg.RetryBase << uint(attempt)
	if d > cfg.RetryMax || d <= 0 {
		d = cfg.RetryMax
	}
	half := d / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}

// sleep waits for d or until the endpoint closes; it reports whether the
// endpoint is still open.
func (r *Resilient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.done:
		return false
	}
}

// reapIfIdle retires the peer if its queue is still empty and its breaker
// closed, dropping any pooled connection. It reports whether the sender
// goroutine should exit.
func (r *Resilient) reapIfIdle(p *rpeer) bool {
	r.mu.Lock()
	if len(p.q) > 0 {
		r.mu.Unlock()
		return false
	}
	p.bmu.Lock()
	closedBreaker := p.b.state == BreakerClosed
	p.bmu.Unlock()
	if !closedBreaker {
		// Keep open/half-open breakers around: their state is the
		// evidence the health surface reports.
		r.mu.Unlock()
		return false
	}
	delete(r.peers, p.to)
	r.mu.Unlock()
	telResBreakerPeers.With(BreakerClosed.String()).Dec()
	if d, ok := r.inner.(connDropper); ok {
		d.DropConn(p.to)
	}
	return true
}

// newJitterRand derives a per-peer jitter source; seeded configs get
// reproducible backoff sequences.
func (r *Resilient) newJitterRand(to Addr) *rand.Rand {
	seed := r.cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	for _, b := range []byte(to) {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed))
}
