// Package trace records the life of data units as structured events — a
// unit is emitted by a source, arrives at a component, is processed or
// dropped, is forwarded, and is finally delivered at the sink — and
// reconstructs per-unit timelines and per-stage latency breakdowns from
// them. It exists for debugging and for the per-hop analysis behind the
// delay figures.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a trace event.
type Kind uint8

// Event kinds, in the rough order of a unit's life.
const (
	KindEmit Kind = iota + 1
	KindArrive
	KindProcess
	KindForward
	KindDrop
	KindDeliver
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindEmit:
		return "emit"
	case KindArrive:
		return "arrive"
	case KindProcess:
		return "process"
	case KindForward:
		return "forward"
	case KindDrop:
		return "drop"
	case KindDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Event is one recorded occurrence.
type Event struct {
	At        time.Duration
	Kind      Kind
	Node      string // the node where the event happened
	Req       string
	Substream int
	Stage     int // -1 source, len(chain) sink
	Seq       int64
	Note      string // cause for drops, service name for processing
}

// Buffer is a bounded ring of events. A zero Buffer is unusable; create
// one with NewBuffer. Buffer is safe for concurrent appenders and readers:
// simulations append from the single event-loop goroutine, but live nodes
// and tests may append from many goroutines at once.
type Buffer struct {
	mu      sync.Mutex
	events  []Event
	head    int
	n       int
	total   int64
	evicted int64
}

// NewBuffer creates a buffer retaining the most recent capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{events: make([]Event, capacity)}
}

// Append records an event, evicting the oldest when full.
func (b *Buffer) Append(e Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == len(b.events) {
		b.evicted++
		telEvicted.Inc()
	}
	b.events[b.head] = e
	b.head = (b.head + 1) % len(b.events)
	if b.n < len(b.events) {
		b.n++
	}
	b.total++
}

// Len returns the number of retained events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Total returns the number of events ever appended.
func (b *Buffer) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// Evicted returns how many events the ring has overwritten; non-zero
// means timelines reconstructed from the buffer may be truncated.
func (b *Buffer) Evicted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.evicted
}

// Events returns the retained events oldest-first.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, b.n)
	start := (b.head - b.n + len(b.events)) % len(b.events)
	for i := 0; i < b.n; i++ {
		out = append(out, b.events[(start+i)%len(b.events)])
	}
	return out
}

// Timeline returns the events of one data unit in time order.
func (b *Buffer) Timeline(req string, substream int, seq int64) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Req == req && e.Substream == substream && e.Seq == seq {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// FormatTimeline renders a unit's timeline as readable text.
func FormatTimeline(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		fmt.Fprintf(&sb, "%12v %-8s stage %2d on %-12s", e.At, e.Kind, e.Stage, e.Node)
		if e.Note != "" {
			fmt.Fprintf(&sb, " (%s)", e.Note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// StageLatency summarizes one hop of a substream's pipeline.
type StageLatency struct {
	Stage int
	// Count is the number of units measured across this hop.
	Count int
	// Mean is the average time from the previous stage's forward (or
	// the source emit) to this stage's arrival-or-delivery.
	Mean time.Duration
}

// StageLatencies computes per-hop mean latencies for a substream from the
// retained events: hop k covers leaving stage k-1 (emit/forward) until
// arriving at stage k (arrive/deliver).
func (b *Buffer) StageLatencies(req string, substream int) []StageLatency {
	type leaveKey struct {
		stage int
		seq   int64
	}
	leaves := make(map[leaveKey]time.Duration)
	sums := make(map[int]time.Duration)
	counts := make(map[int]int)
	for _, e := range b.Events() {
		if e.Req != req || e.Substream != substream {
			continue
		}
		switch e.Kind {
		case KindEmit:
			leaves[leaveKey{-1, e.Seq}] = e.At
		case KindForward:
			leaves[leaveKey{e.Stage, e.Seq}] = e.At
		case KindArrive, KindDeliver:
			if left, ok := leaves[leaveKey{e.Stage - 1, e.Seq}]; ok {
				sums[e.Stage] += e.At - left
				counts[e.Stage]++
			}
		}
	}
	var stages []int
	for s := range counts {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	out := make([]StageLatency, 0, len(stages))
	for _, s := range stages {
		out = append(out, StageLatency{Stage: s, Count: counts[s], Mean: sums[s] / time.Duration(counts[s])})
	}
	return out
}

// DropsByCause counts drop events per note.
func (b *Buffer) DropsByCause() map[string]int {
	out := make(map[string]int)
	for _, e := range b.Events() {
		if e.Kind == KindDrop {
			out[e.Note]++
		}
	}
	return out
}
