package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"rasc.dev/rasc/internal/experiment"
)

// tenancyScaleReport is the BENCH_tenancy_scale.json schema: the same
// 5k-tenant churn+storm scenario through the incremental allocator and
// the full-recompute baseline, compared on admission decision latency.
type tenancyScaleReport struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// The scenario: Apps tenants over Hosts ledger hosts at Contention
	// over-subscription, with churn batches and host-death storms (see
	// experiment.RunTenancyScale).
	Apps       int     `json:"apps"`
	Hosts      int     `json:"hosts"`
	Contention float64 `json:"contention"`
	// Deadband is the relative fair-share deadband both runs use (the
	// production default posture; suppressed updates are counted, not
	// lost).
	Deadband float64 `json:"fair_share_deadband"`

	Incremental   tenancyScaleRun `json:"incremental"`
	FullRecompute tenancyScaleRun `json:"full_recompute"`
	// AdmitP50Speedup is full-recompute admit p50 over incremental — the
	// headline number the CI floor checks.
	AdmitP50Speedup float64 `json:"admit_p50_speedup"`
}

// tenancyScaleRun is one allocator configuration's measurement.
type tenancyScaleRun struct {
	TimedAdmits      int     `json:"timed_admits"`
	AdmitP50Micros   float64 `json:"admit_p50_micros"`
	AdmitP95Micros   float64 `json:"admit_p95_micros"`
	AdmitMaxMicros   float64 `json:"admit_max_micros"`
	RecomputeP50Mics float64 `json:"recompute_p50_micros"`
	RecomputeP95Mics float64 `json:"recompute_p95_micros"`
	Recomputes       int64   `json:"recomputes"`
	CapNotifications int64   `json:"cap_notifications"`
	CoalescedEvents  int64   `json:"coalesced_cap_events"`
	NotifsPerRecomp  float64 `json:"notifications_per_recompute"`
	Preempted        int64   `json:"preempted"`
	Promoted         int64   `json:"promoted"`
	AdmittedAtEnd    int     `json:"admitted_at_end"`
	QueuedAtEnd      int     `json:"queued_at_end"`
}

const (
	tsApps     = 5000
	tsHosts    = 128
	tsDeadband = 1e-3
)

func tenancyScaleRunFrom(res *experiment.TenancyScaleResults) tenancyScaleRun {
	mics := func(d interface{ Microseconds() int64 }) float64 {
		return float64(d.Microseconds())
	}
	return tenancyScaleRun{
		TimedAdmits:      res.TimedAdmits,
		AdmitP50Micros:   mics(res.AdmitP50),
		AdmitP95Micros:   mics(res.AdmitP95),
		AdmitMaxMicros:   mics(res.AdmitMax),
		RecomputeP50Mics: mics(res.RecomputeP50),
		RecomputeP95Mics: mics(res.RecomputeP95),
		Recomputes:       res.Stats.Recomputes,
		CapNotifications: res.Stats.CapNotifications,
		CoalescedEvents:  res.Stats.CoalescedCapEvents,
		NotifsPerRecomp:  res.NotificationsPerRecompute,
		Preempted:        res.Preempted,
		Promoted:         res.Promoted,
		AdmittedAtEnd:    res.Totals.Admitted,
		QueuedAtEnd:      res.Totals.Queued,
	}
}

// runTenancyScaleBenchJSON runs the scale scenario with the incremental
// allocator and the full-recompute baseline and writes the comparison to
// path. A minSpeedup > 0 turns the report into a regression gate on the
// admission p50.
func runTenancyScaleBenchJSON(path string, minSpeedup float64) error {
	// Lighter churn than the experiment defaults: the full-recompute
	// baseline pays a solver pass per release and per queued promotion
	// probe, and the smoke job runs this gate on every push.
	cfg := experiment.TenancyScaleConfig{
		Apps:              tsApps,
		Hosts:             tsHosts,
		FairShareDeadband: tsDeadband,
		ChurnBatches:      4,
		BatchSize:         15,
		StormRounds:       1,
		RecomputeOps:      24,
	}
	// Warm up once at a small size (first-use allocations, map growth),
	// then measure both allocators on the identical sequence.
	warm := cfg
	warm.Apps, warm.Hosts = 200, 16
	if _, err := experiment.RunTenancyScale(warm); err != nil {
		return fmt.Errorf("warmup: %w", err)
	}
	inc, err := experiment.RunTenancyScale(cfg)
	if err != nil {
		return fmt.Errorf("incremental: %w", err)
	}
	base := cfg
	base.DisableIncremental = true
	full, err := experiment.RunTenancyScale(base)
	if err != nil {
		return fmt.Errorf("full recompute: %w", err)
	}

	report := tenancyScaleReport{
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Apps:          inc.Config.Apps,
		Hosts:         inc.Config.Hosts,
		Contention:    inc.Config.Contention,
		Deadband:      tsDeadband,
		Incremental:   tenancyScaleRunFrom(inc),
		FullRecompute: tenancyScaleRunFrom(full),
	}
	if inc.AdmitP50 > 0 {
		report.AdmitP50Speedup = float64(full.AdmitP50) / float64(inc.AdmitP50)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if minSpeedup > 0 && report.AdmitP50Speedup < minSpeedup {
		return fmt.Errorf("incremental admit p50 speedup %.2fx below required %.2fx", report.AdmitP50Speedup, minSpeedup)
	}
	return nil
}
