package stream_test

import (
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/spec"
)

const rpcTimeout = 5 * time.Second

// runUntilDone advances virtual time until the flag is set (or a deadline
// passes). Sim.Run() cannot be used once sources are streaming: they
// reschedule themselves forever, so the event queue never drains.
func runUntilDone(t *testing.T, s *deploy.System, done *bool) {
	t.Helper()
	for i := 0; i < 600 && !*done; i++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !*done {
		t.Fatal("submit callback never ran")
	}
}

// submit composes req from origin and fails the test on error.
func submit(t *testing.T, s *deploy.System, origin int, req spec.Request, c core.Composer) *core.ExecutionGraph {
	t.Helper()
	var graph *core.ExecutionGraph
	var gotErr error
	done := false
	s.Engines[origin].Submit(req, c, rpcTimeout, func(g *core.ExecutionGraph, err error) {
		graph, gotErr, done = g, err, true
	})
	runUntilDone(t, s, &done)
	if gotErr != nil {
		t.Fatalf("submit: %v", gotErr)
	}
	return graph
}

func simpleRequest(id string, rate int, chain ...string) spec.Request {
	return spec.Request{
		ID:         id,
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: chain, Rate: rate}},
	}
}

func TestEndToEndDelivery(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 1})
	req := simpleRequest("r1", 10, "filter", "transcode")
	g := submit(t, s, 0, req, &core.MinCost{})
	if err := core.CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
	// Run 10 simulated seconds of streaming.
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	sink := s.Engines[0].Sink("r1", 0)
	if sink == nil {
		t.Fatal("no sink at origin")
	}
	emitted := s.Engines[0].EmittedUnits("r1", 0)
	if emitted < 80 {
		t.Fatalf("source emitted only %d units in 10s at rate 10", emitted)
	}
	if sink.Received < emitted*8/10 {
		t.Fatalf("delivered %d of %d units", sink.Received, emitted)
	}
	if sink.MeanDelay() <= 0 {
		t.Fatal("mean delay must be positive")
	}
	if sink.MeanDelay() > 2*time.Second {
		t.Fatalf("mean delay implausibly high: %v", sink.MeanDelay())
	}
}

func TestDeliveryMeetsRate(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 2})
	req := simpleRequest("r1", 8, "filter")
	submit(t, s, 3, req, &core.MinCost{})
	start := s.Sim.Now()
	s.Sim.RunUntil(start + 20*time.Second)
	sink := s.Engines[3].Sink("r1", 0)
	perSec := float64(sink.Received) / 20
	if perSec < 7 {
		t.Fatalf("delivery rate %.1f units/sec, want ≈8", perSec)
	}
}

func TestMultiSubstreamRequest(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 16, Seed: 3})
	req := spec.Request{
		ID:        "multi",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"filter", "aggregate"}, Rate: 6},
			{Services: []string{"annotate"}, Rate: 4},
		},
	}
	submit(t, s, 1, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	for l := 0; l < 2; l++ {
		sink := s.Engines[1].Sink("multi", l)
		if sink == nil || sink.Received == 0 {
			t.Fatalf("substream %d delivered nothing", l)
		}
	}
}

func TestAllComposersDeliver(t *testing.T) {
	for _, mk := range []func() core.Composer{
		func() core.Composer { return &core.MinCost{} },
		func() core.Composer { return core.Greedy{} },
		func() core.Composer { return core.Random{} },
	} {
		c := mk()
		s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 4})
		req := simpleRequest("r-"+c.Name(), 5, "filter", "encrypt")
		submit(t, s, 0, req, c)
		s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
		sink := s.Engines[0].Sink("r-"+c.Name(), 0)
		if sink.Received == 0 {
			t.Fatalf("%s: nothing delivered", c.Name())
		}
	}
}

func TestSubmitRejectsOversizedRequest(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 8, Seed: 5})
	// 10 Mbps max uplinks; 1250-byte units at rate 5000 = 50 Mbps.
	req := simpleRequest("huge", 5000, "filter")
	var gotErr error
	done := false
	s.Engines[0].Submit(req, &core.MinCost{}, rpcTimeout, func(g *core.ExecutionGraph, err error) { gotErr, done = err, true })
	runUntilDone(t, s, &done)
	if !errors.Is(gotErr, core.ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", gotErr)
	}
}

func TestSubmitUnknownService(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 8, Seed: 6})
	req := simpleRequest("u", 5, "no-such-service")
	var gotErr error
	done := false
	s.Engines[0].Submit(req, &core.MinCost{}, rpcTimeout, func(g *core.ExecutionGraph, err error) {
		gotErr = err
		done = true
	})
	runUntilDone(t, s, &done)
	if gotErr == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestSubmitInvalidRequest(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 4, Seed: 7})
	var gotErr error
	s.Engines[0].Submit(spec.Request{ID: "bad"}, &core.MinCost{}, rpcTimeout, func(g *core.ExecutionGraph, err error) { gotErr = err })
	if gotErr == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestTeardownStopsStreaming(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 8})
	req := simpleRequest("tear", 10, "filter")
	g := submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	sink := s.Engines[0].Sink("tear", 0)
	before := sink.Received
	if before == 0 {
		t.Fatal("nothing delivered before teardown")
	}
	s.Engines[0].Teardown(g, rpcTimeout)
	s.Sim.RunUntil(s.Sim.Now() + time.Second) // drain in-flight units
	after := sink.Received
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	if sink.Received > after {
		t.Fatalf("units still arriving after teardown: %d -> %d", after, sink.Received)
	}
	// Components must be gone from every engine.
	for i, e := range s.Engines {
		if e.Components() != 0 {
			t.Fatalf("engine %d still hosts %d components", i, e.Components())
		}
	}
}

func TestRateSplittingDeliversAcrossInstances(t *testing.T) {
	// Constrain the topology so a single host cannot carry the stream:
	// every node gets ~1 Mbps links, the request needs 800 kbps, and
	// concurrent requests force splitting. Simpler: request rate beyond
	// any single host's min(b_in,b_out) in units.
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 9})
	// 10 Mbps max → 1000 units/sec of 1250B; use a 25000-byte unit so
	// capacity is ≈ 10-50 units/sec and a rate of 45 forces a split on
	// most topologies.
	req := spec.Request{
		ID:         "split",
		UnitBytes:  25000,
		Substreams: []spec.Substream{{Services: []string{"transcode"}, Rate: 45}},
	}
	var graph *core.ExecutionGraph
	var gotErr error
	done := false
	s.Engines[0].Submit(req, &core.MinCost{}, rpcTimeout, func(g *core.ExecutionGraph, err error) { graph, gotErr, done = g, err, true })
	runUntilDone(t, s, &done)
	if gotErr != nil {
		t.Skipf("topology too small for the split scenario: %v", gotErr)
	}
	if len(graph.Placements) < 2 {
		t.Skip("seed did not force a split; covered deterministically in core tests")
	}
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	sink := s.Engines[0].Sink("split", 0)
	emitted := s.Engines[0].EmittedUnits("split", 0)
	if sink.Received < emitted/2 {
		t.Fatalf("split delivery too lossy: %d of %d", sink.Received, emitted)
	}
}

func TestStatsReflectLoad(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 12, Seed: 10})
	req := simpleRequest("load", 10, "filter")
	g := submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	// The filter host's monitor must show arrivals.
	host := g.Placements[0].Host
	for i, e := range s.Engines {
		if e.Node().ID() == host.ID {
			rep := e.Monitor.Report(s.Sim.Now())
			if rep.InBpsUsed <= 0 {
				t.Fatal("host monitor shows no inbound traffic")
			}
			found := false
			for _, cs := range rep.Components {
				if cs.Service == "filter" && cs.Arrived > 0 {
					found = true
				}
			}
			if !found {
				t.Fatal("component stats missing")
			}
			return
		}
		_ = i
	}
	t.Fatal("placement host not found among engines")
}

func TestSequentialRequestsAccumulate(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{Nodes: 16, Seed: 11})
	for i := 0; i < 4; i++ {
		req := simpleRequest("seq-"+string(rune('a'+i)), 5, "filter", "project")
		submit(t, s, i, req, &core.MinCost{})
		s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	}
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	for i := 0; i < 4; i++ {
		sink := s.Engines[i].Sink("seq-"+string(rune('a'+i)), 0)
		if sink == nil || sink.Received == 0 {
			t.Fatalf("request %d delivered nothing", i)
		}
	}
}
