// Failover: dynamic adaptation in action. An application streams through
// a composed pipeline; one of its hosts fail-stops; the origin's
// adaptation loop notices the delivery rate collapse, re-runs discovery,
// monitoring and min-cost composition (the dead host no longer answers
// the stats probe, so it is excluded), and the stream resumes on new
// hosts.
package main

import (
	"fmt"
	"log"
	"time"

	"rasc.dev/rasc"
)

func main() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 16, Seed: 5})
	sys.EnableAdaptation(0, 3*time.Second)

	req := rasc.Request{
		ID:        "resilient",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			{Services: []string{"filter", "compress"}, Rate: 10},
		},
	}
	comp, err := sys.Submit(0, req, rasc.ComposerMinCost)
	if err != nil {
		log.Fatalf("composition failed: %v", err)
	}
	fmt.Println("initial placement:")
	victim := -1
	for _, p := range comp.Placements() {
		fmt.Printf("  stage %d %-10s on %s\n", p.Stage, p.Service, p.Host.Addr)
		for i := 0; i < sys.Nodes(); i++ {
			if i != 0 && sys.NodeAddr(i) == string(p.Host.Addr) {
				victim = i
			}
		}
	}
	sys.Run(10 * time.Second)
	fmt.Printf("before failure: delivered %d units\n", comp.Stats().Received)

	fmt.Printf("\nkilling node %d...\n", victim)
	sys.Kill(victim)
	sys.Run(40 * time.Second) // adaptation notices, re-composes, resumes

	fmt.Printf("re-compositions: %d\n", sys.Recompositions(0))
	s := comp.Stats()
	fmt.Printf("after recovery: emitted %d, delivered %d units (%.1f%%)\n",
		s.Emitted, s.Received, 100*s.DeliveredFraction())
}
