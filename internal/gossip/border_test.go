package gossip

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simnet"
)

// borderCluster is a two-cluster fixture: nodes 0..half-1 in cluster "a",
// the rest in "b", every node seeded with its own cluster's roster only,
// and node 0 / node half configured as the border pair.
type borderCluster struct {
	c  *simnet.Cluster
	gs []*Gossip
}

func newBorderCluster(t *testing.T, n int, seed int64, cfg Config) *borderCluster {
	t.Helper()
	half := n / 2
	clusterOf := func(i int) string {
		if i < half {
			return "a"
		}
		return "b"
	}
	c := simnet.New(simnet.Options{
		N:    n,
		Seed: seed,
		ConfigureNode: func(i int, node *overlay.Node) {
			node.SetCluster(clusterOf(i))
		},
	})
	tc := &borderCluster{c: c}
	for i, node := range c.Nodes {
		ncfg := cfg
		ncfg.Cluster = clusterOf(i)
		ncfg.BoundaryBps = 5e7
		// Node 0 and node half are the border pair; everyone else runs
		// the intra-cluster protocol only.
		if i == 0 {
			ncfg.BorderPeers = []overlay.NodeInfo{c.Nodes[half].Info()}
		} else if i == half {
			ncfg.BorderPeers = []overlay.NodeInfo{c.Nodes[0].Info()}
		}
		rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
		g := New(node, c.Clock, rng, ncfg)
		idx := i
		g.SetDigestFunc(func() Digest {
			return Digest{
				Report:   monitor.Report{InBpsCap: 1000, OutBpsCap: 2000},
				Services: []string{fmt.Sprintf("svc-%s", clusterOf(idx))},
			}
		})
		tc.gs = append(tc.gs, g)
	}
	// Seed every node with the FULL roster: the cluster scope must skip
	// the foreign half on its own.
	var infos []overlay.NodeInfo
	for _, node := range c.Nodes {
		infos = append(infos, node.Info())
	}
	for _, g := range tc.gs {
		g.Seed(infos)
		g.Start()
	}
	return tc
}

func (tc *borderCluster) step(d time.Duration) {
	tc.c.Sim.RunUntil(tc.c.Sim.Now() + d)
}

// TestClusterScopedMembershipSkipsForeignNodes pins the scoping contract:
// a cluster-scoped instance seeded with the full deployment roster tracks
// only its own cluster — foreign members never enter the view, even
// after rounds of probing and anti-entropy.
func TestClusterScopedMembershipSkipsForeignNodes(t *testing.T) {
	const n = 8
	tc := newBorderCluster(t, n, 11, testConfig())
	tc.step(20 * time.Second)
	for i, g := range tc.gs {
		want := "a"
		if i >= n/2 {
			want = "b"
		}
		members := g.Members()
		if len(members) != n/2 {
			t.Fatalf("node %d tracks %d members, want its own cluster of %d", i, len(members), n/2)
		}
		for _, m := range members {
			if m.Info.Cluster != want {
				t.Fatalf("node %d (cluster %s) tracks foreign member %s of cluster %s",
					i, want, m.Info.ID, m.Info.Cluster)
			}
		}
	}
}

// TestBorderSummaryExchange drives the push-pull border protocol: the
// border pair converges on each other's cluster summary — members,
// exported catalog, advertised boundary capacity — while non-border nodes
// hold no summaries at all.
func TestBorderSummaryExchange(t *testing.T) {
	const n = 8
	tc := newBorderCluster(t, n, 11, testConfig())
	tc.step(20 * time.Second)

	for i, wantRemote := range map[int]string{0: "b", n / 2: "a"} {
		s, ok := tc.gs[i].SummaryFor(wantRemote)
		if !ok {
			t.Fatalf("border node %d holds no summary for cluster %s", i, wantRemote)
		}
		if s.Members != n/2 {
			t.Errorf("summary of %s reports %d members, want %d", wantRemote, s.Members, n/2)
		}
		if !s.Offers("svc-"+wantRemote) || s.Offers("svc-none") {
			t.Errorf("summary of %s exports %v, want [svc-%s]", wantRemote, s.Services, wantRemote)
		}
		if s.BoundaryBps != 5e7 {
			t.Errorf("summary of %s advertises %.0f boundary bps, want 5e7", wantRemote, s.BoundaryBps)
		}
		if s.Border.Cluster != wantRemote {
			t.Errorf("summary of %s produced by border of cluster %q", wantRemote, s.Border.Cluster)
		}
	}
	for _, i := range []int{1, 2, n/2 + 1} {
		if got := tc.gs[i].Summaries(); len(got) != 0 {
			t.Errorf("non-border node %d holds summaries %+v", i, got)
		}
	}
}

// TestBorderSummaryTTLExpiry kills one cluster's border and checks the
// other side expires the stale summary and fires OnSummaryLost exactly
// once.
func TestBorderSummaryTTLExpiry(t *testing.T) {
	const n = 8
	tc := newBorderCluster(t, n, 11, testConfig())
	var lost []string
	tc.gs[0].OnSummaryLost(func(cluster string) { lost = append(lost, cluster) })
	tc.step(20 * time.Second)
	if _, ok := tc.gs[0].SummaryFor("b"); !ok {
		t.Fatal("border never converged")
	}
	// Fail-stop the whole remote cluster so no refresh can arrive.
	for i := n / 2; i < n; i++ {
		tc.gs[i].Stop()
		tc.c.Endpoints[i].Close()
	}
	cfg := tc.gs[0].Config()
	tc.step(cfg.SummaryTTL + 2*cfg.SummaryInterval)
	if _, ok := tc.gs[0].SummaryFor("b"); ok {
		t.Fatal("summary of the dead cluster b never expired")
	}
	if len(lost) != 1 || lost[0] != "b" {
		t.Fatalf("OnSummaryLost fired %v, want exactly [b]", lost)
	}
}

// TestSummaryExchangeRejectedWhenUnscoped pins the boundary of the
// boundary: a flat (unscoped) node refuses the summary RPC, so a
// misconfigured border cannot leak summaries into flat deployments.
func TestSummaryExchangeRejectedWhenUnscoped(t *testing.T) {
	c := simnet.New(simnet.Options{N: 2, Seed: 3})
	cfgA := testConfig()
	cfgA.Cluster = "a"
	cfgA.BorderPeers = []overlay.NodeInfo{c.Nodes[1].Info()}
	rng := rand.New(rand.NewSource(1))
	border := New(c.Nodes[0], c.Clock, rng, cfgA)
	flat := New(c.Nodes[1], c.Clock, rand.New(rand.NewSource(2)), testConfig())
	border.Seed([]overlay.NodeInfo{c.Nodes[0].Info()})
	flat.Seed([]overlay.NodeInfo{c.Nodes[0].Info(), c.Nodes[1].Info()})
	border.Start()
	flat.Start()
	c.Sim.RunUntil(c.Sim.Now() + 20*time.Second)
	if got := border.Summaries(); len(got) != 0 {
		t.Fatalf("border holds summaries %+v from an unscoped peer", got)
	}
	if got := flat.Summaries(); len(got) != 0 {
		t.Fatalf("flat node holds summaries %+v", got)
	}
}
