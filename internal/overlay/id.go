// Package overlay implements a Pastry-style structured overlay network:
// 128-bit node identifiers, prefix-based routing with a routing table and a
// leaf set, a join protocol, and request/response messaging. It replaces
// the FreePastry library used by the RASC prototype.
package overlay

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"math/rand"
)

const (
	// IDBytes is the identifier length in bytes (128 bits, as in Pastry).
	IDBytes = 16
	// DigitBits is the bits per routing digit (b=4: hexadecimal digits).
	DigitBits = 4
	// NumDigits is the number of digits in an ID.
	NumDigits = IDBytes * 8 / DigitBits
	// DigitBase is the radix of a digit.
	DigitBase = 1 << DigitBits
)

// ID is a 128-bit overlay identifier, compared as a big-endian unsigned
// integer.
type ID [IDBytes]byte

// HashID derives an ID from arbitrary text via SHA-1, the scheme the paper
// uses for component IDs.
func HashID(s string) ID {
	sum := sha1.Sum([]byte(s))
	var id ID
	copy(id[:], sum[:IDBytes])
	return id
}

// RandomID draws a uniformly random ID from rng.
func RandomID(rng *rand.Rand) ID {
	var id ID
	for i := range id {
		id[i] = byte(rng.Intn(256))
	}
	return id
}

// ParseID decodes a 32-hex-digit string.
func ParseID(s string) (ID, error) {
	var id ID
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("overlay: bad ID %q: %v", s, err)
	}
	if len(b) != IDBytes {
		return id, fmt.Errorf("overlay: bad ID length %d", len(b))
	}
	copy(id[:], b)
	return id, nil
}

// String returns the ID as lowercase hex.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// MarshalText implements encoding.TextMarshaler so IDs embed cleanly in
// JSON messages.
func (a ID) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *ID) UnmarshalText(b []byte) error {
	id, err := ParseID(string(b))
	if err != nil {
		return err
	}
	*a = id
	return nil
}

// Cmp compares a and b as unsigned integers: -1, 0 or +1.
func (a ID) Cmp(b ID) int {
	for i := 0; i < IDBytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Digit returns the i-th base-16 digit of the ID, most significant first.
func (a ID) Digit(i int) int {
	byteIdx := i / 2
	if i%2 == 0 {
		return int(a[byteIdx] >> 4)
	}
	return int(a[byteIdx] & 0x0f)
}

// CommonPrefixLen returns the number of leading digits a and b share.
func (a ID) CommonPrefixLen(b ID) int {
	for i := 0; i < IDBytes; i++ {
		if a[i] == b[i] {
			continue
		}
		if a[i]>>4 == b[i]>>4 {
			return 2*i + 1
		}
		return 2 * i
	}
	return NumDigits
}

// sub returns a-b mod 2^128.
func sub(a, b ID) ID {
	var out ID
	var borrow int
	for i := IDBytes - 1; i >= 0; i-- {
		d := int(a[i]) - int(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

// CWDist returns the clockwise ring distance from a to b, i.e. (b-a) mod
// 2^128.
func CWDist(a, b ID) ID { return sub(b, a) }

// RingDist returns the minimum of the clockwise and counter-clockwise
// distances between a and b on the identifier ring.
func RingDist(a, b ID) ID {
	cw := sub(b, a)
	ccw := sub(a, b)
	if cw.Cmp(ccw) <= 0 {
		return cw
	}
	return ccw
}

// Closer reports whether x is strictly closer to key than y on the ring.
// Ties break toward the numerically smaller candidate so every node agrees
// on a unique root for each key.
func Closer(key, x, y ID) bool {
	dx, dy := RingDist(key, x), RingDist(key, y)
	if c := dx.Cmp(dy); c != 0 {
		return c < 0
	}
	return x.Cmp(y) < 0
}
