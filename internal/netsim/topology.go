package netsim

import (
	"math/rand"
	"time"
)

// Topology describes a generated wide-area deployment: per-node access link
// capacities and a full latency matrix.
type Topology struct {
	// UpBps and DownBps are access link capacities in bits per second.
	UpBps, DownBps []float64
	// LatencyMatrix holds one-way propagation delays, indexed [a][b].
	LatencyMatrix [][]time.Duration
	// Site assigns each node to a geographic cluster.
	Site []int
}

// TopologyConfig parameterizes PlanetLabTopology.
type TopologyConfig struct {
	Nodes int
	// Sites is the number of geographic clusters nodes are spread over.
	// Defaults to 6 (roughly: US-East/West, EU x2, Asia x2).
	Sites int
	// MinBps and MaxBps bound per-node access capacity (both directions).
	// Default 2e6..10e6 (2..10 Mbps), matching slice-limited PlanetLab
	// hosts of the era.
	MinBps, MaxBps float64
	// IntraSite and InterSite bound latencies inside and across sites.
	// Defaults: 2..15 ms intra, 40..160 ms inter.
	IntraSiteMin, IntraSiteMax time.Duration
	InterSiteMin, InterSiteMax time.Duration
}

func (c *TopologyConfig) defaults() {
	if c.Sites <= 0 {
		c.Sites = 6
	}
	if c.MinBps <= 0 {
		c.MinBps = 2e6
	}
	if c.MaxBps <= 0 {
		c.MaxBps = 10e6
	}
	if c.IntraSiteMin <= 0 {
		c.IntraSiteMin = 2 * time.Millisecond
	}
	if c.IntraSiteMax <= 0 {
		c.IntraSiteMax = 15 * time.Millisecond
	}
	if c.InterSiteMin <= 0 {
		c.InterSiteMin = 40 * time.Millisecond
	}
	if c.InterSiteMax <= 0 {
		c.InterSiteMax = 160 * time.Millisecond
	}
}

// PlanetLabTopology generates a wide-area topology reminiscent of a
// PlanetLab slice: heterogeneous access bandwidth and clustered latencies.
// The same seed always yields the same topology.
func PlanetLabTopology(cfg TopologyConfig, seed int64) *Topology {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Nodes
	t := &Topology{
		UpBps:         make([]float64, n),
		DownBps:       make([]float64, n),
		LatencyMatrix: make([][]time.Duration, n),
		Site:          make([]int, n),
	}
	for i := 0; i < n; i++ {
		t.Site[i] = i % cfg.Sites
		t.UpBps[i] = cfg.MinBps + rng.Float64()*(cfg.MaxBps-cfg.MinBps)
		t.DownBps[i] = cfg.MinBps + rng.Float64()*(cfg.MaxBps-cfg.MinBps)
		t.LatencyMatrix[i] = make([]time.Duration, n)
	}
	randDur := func(lo, hi time.Duration) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
	// Pairwise site latencies are symmetric; per-pair node latency adds a
	// small last-mile component.
	siteLat := make([][]time.Duration, cfg.Sites)
	for i := range siteLat {
		siteLat[i] = make([]time.Duration, cfg.Sites)
	}
	for i := 0; i < cfg.Sites; i++ {
		for j := i + 1; j < cfg.Sites; j++ {
			l := randDur(cfg.InterSiteMin, cfg.InterSiteMax)
			siteLat[i][j], siteLat[j][i] = l, l
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			var l time.Duration
			if t.Site[a] == t.Site[b] {
				l = randDur(cfg.IntraSiteMin, cfg.IntraSiteMax)
			} else {
				l = siteLat[t.Site[a]][t.Site[b]] + randDur(cfg.IntraSiteMin, cfg.IntraSiteMax)
			}
			t.LatencyMatrix[a][b], t.LatencyMatrix[b][a] = l, l
		}
	}
	return t
}

// Build attaches every topology node to the network nw and returns their
// IDs in order.
func (t *Topology) Build(nw *Network) []NodeID {
	ids := make([]NodeID, len(t.UpBps))
	for i := range t.UpBps {
		ids[i] = nw.AddNode(t.UpBps[i], t.DownBps[i])
	}
	return ids
}

// LatencyFunc adapts the topology's matrix to the Network Config signature.
func (t *Topology) LatencyFunc() func(a, b NodeID) time.Duration {
	return func(a, b NodeID) time.Duration { return t.LatencyMatrix[a][b] }
}
