// Command rasc-node runs a live RASC node over TCP: it joins (or starts)
// an overlay, announces its services, and serves discovery, monitoring,
// instantiation and streaming to its peers. With -submit it additionally
// composes and runs a request once joined, printing delivery statistics
// every few seconds.
//
// Start a ring on one terminal and join it from others:
//
//	rasc-node -listen 127.0.0.1:4000 -services filter,encrypt
//	rasc-node -listen 127.0.0.1:4001 -bootstrap 127.0.0.1:4000 -services transcode
//	rasc-node -listen 127.0.0.1:4002 -bootstrap 127.0.0.1:4000 \
//	    -submit filter,transcode -rate 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/live"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/transport"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		bootstrap   = flag.String("bootstrap", "", "existing node to join through (empty: start a new overlay)")
		name        = flag.String("name", "", "node name (seeds the overlay ID)")
		svcList     = flag.String("services", "", "comma-separated services to announce")
		submit      = flag.String("submit", "", "service chain to compose once joined (e.g. filter,transcode)")
		submitAfter = flag.Duration("submit-after", 0, "wait this long after joining before -submit, so DHT registrations and border cluster summaries converge first")
		composer    = flag.String("composer", "mincost", "composer for -submit")
		rateKbps    = flag.Int("rate", 100, "requested rate in Kbps for -submit")
		unit        = flag.Int("unit", 1250, "data unit size in bytes")
		udp         = flag.Bool("udp", false, "send stream data over UDP (control stays on TCP)")
		admin       = flag.String("admin", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		refresh     = flag.Duration("refresh-interval", 2*time.Second, "how often service registrations are re-published to the DHT")
		ttl         = flag.Duration("record-ttl", 10*time.Second, "DHT registration lifetime without a refresh (must exceed -refresh-interval)")
		noGossip    = flag.Bool("no-gossip", false, "disable the gossip membership protocol (DHT-only lookups, fetch-time stats)")
		probeIvl    = flag.Duration("gossip-probe-interval", 0, "gossip failure-detector probe period (0: default 1s)")
		suspicion   = flag.Duration("gossip-suspicion-timeout", 0, "how long a suspect member may refute before it is declared dead (0: default 3s)")

		cluster     = flag.String("cluster", "", "federation cluster this node belongs to (empty: flat deployment); requires gossip")
		borderPeers = flag.String("border-peers", "", "comma-separated addresses of remote-cluster border nodes to exchange cluster summaries with")
		boundaryBps = flag.Float64("boundary-bps", 0, "advertised boundary-link capacity in bits/sec for cross-cluster hand-offs (0: default 100 Mbps)")

		noResilience = flag.Bool("no-resilience", false, "send frames synchronously instead of through the async retry/breaker pipeline")
		breakerFails = flag.Int("breaker-threshold", 0, "consecutive delivery failures before a peer's circuit opens (0: default 5)")
		breakerOpen  = flag.Duration("breaker-open-timeout", 0, "how long an open circuit waits before probing the peer again (0: default 2s)")
		chaosDrop    = flag.Float64("chaos-drop", 0, "fault injection: probability each outbound message is dropped")
		chaosDelay   = flag.Duration("chaos-delay", 0, "fault injection: fixed extra delay on every outbound message")
		chaosJitter  = flag.Duration("chaos-delay-jitter", 0, "fault injection: uniform extra delay in [0, jitter)")
		chaosSeed    = flag.Int64("chaos-seed", 0, "fault injection: seed for reproducible fault sequences (0: wall clock)")

		adaptIvl  = flag.Duration("adapt-interval", 0, "enable the adaptation control plane with this delivery-rate check period (0: disabled)")
		adaptFull = flag.Bool("adapt-full-only", false, "disable incremental reallocation: every adaptation action tears down and re-composes in full")

		admission    = flag.Bool("admission", false, "front submissions with the multi-tenant admission gate (priority classes, fair-share caps, admission queue), served at /debug/rasc/tenants")
		admissionBps = flag.Float64("admission-bps", 0, "admission gate capacity budget in bits/sec (0: derive from the node's link capacity)")
		maxTenants   = flag.Int("max-tenants", 0, "bound on concurrently admitted applications (0: unlimited; implies -admission)")
		priority     = flag.String("priority", "", "tenancy class of the -submit request: critical, standard or best-effort")
		fairDeadband = flag.Float64("fair-deadband", 0, "suppress fair_share_changed notifications while a tenant's cap moves less than this relative fraction (0: notify on every move)")
		capCoalesce  = flag.Duration("cap-coalesce", 0, "collapse cap fan-out bursts within this window into one sweep carrying the final caps (0: immediate fan-out)")
		hostLedger   = flag.Bool("per-host-ledger", false, "account admission capacity per host, fed from gossip membership and monitoring digests, instead of one aggregate budget (implies -admission)")

		batchUnits = flag.Int("batch-units", 0, "coalesce up to N data units per destination into one binary wire message (0 or 1: legacy per-unit path)")
		flushIvl   = flag.Duration("flush-interval", 0, "flush an open data-unit batch no later than this after its first unit (0: default 2ms when batching)")
		shards     = flag.Int("shards", 0, "parallel execution contexts for the data plane (0 or 1: single context)")

		traceEvents = flag.Int("trace-events", 0, "attach a per-unit event buffer of this capacity, served at /debug/rasc/trace (0: disabled)")
		journalCap  = flag.Int("decision-journal", 0, "adaptation decision journal retention, served at /debug/rasc/decisions (0: default 256)")
	)
	flag.Parse()

	var services []string
	if *svcList != "" {
		services = strings.Split(*svcList, ",")
	}
	var borders []string
	if *borderPeers != "" {
		borders = strings.Split(*borderPeers, ",")
	}
	var adaptation *stream.AdaptationConfig
	if *adaptIvl > 0 {
		cfg := stream.AdaptationConfig{Interval: *adaptIvl}
		cfg.Control.DisableIncremental = *adaptFull
		adaptation = &cfg
	}
	pri, err := spec.ParsePriority(*priority)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var tenancy *tenant.Config
	if *admission || *maxTenants > 0 || *hostLedger {
		tenancy = &tenant.Config{
			CapacityBps:       *admissionBps,
			MaxTenants:        *maxTenants,
			FairShareDeadband: *fairDeadband,
			CapCoalesceWindow: *capCoalesce,
			PerHostLedger:     *hostLedger,
		}
	}
	node, err := live.Start(live.Config{
		Listen:          *listen,
		Name:            *name,
		Bootstrap:       *bootstrap,
		Services:        services,
		UDPData:         *udp,
		RefreshInterval: *refresh,
		RecordTTL:       *ttl,
		DisableGossip:   *noGossip,
		Gossip: gossip.Config{
			ProbeInterval:    *probeIvl,
			SuspicionTimeout: *suspicion,
		},
		Cluster:           *cluster,
		BorderPeers:       borders,
		BoundaryBps:       *boundaryBps,
		DisableResilience: *noResilience,
		Resilience: transport.ResilientConfig{
			Breaker: transport.BreakerConfig{
				FailureThreshold: *breakerFails,
				OpenTimeout:      *breakerOpen,
			},
		},
		Chaos: transport.ChaosConfig{
			Seed:        *chaosSeed,
			Drop:        *chaosDrop,
			Delay:       *chaosDelay,
			DelayJitter: *chaosJitter,
		},
		Adaptation: adaptation,
		Tenancy:    tenancy,
		DataPlane: stream.DataPlaneConfig{
			BatchUnits:    *batchUnits,
			FlushInterval: *flushIvl,
			Shards:        *shards,
		},
		TraceEvents:     *traceEvents,
		DecisionJournal: *journalCap,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "start: %v\n", err)
		os.Exit(1)
	}
	defer node.Close()
	if *admin != "" {
		adm, err := node.ServeAdmin(*admin)
		if err != nil {
			fmt.Fprintf(os.Stderr, "admin: %v\n", err)
			os.Exit(1)
		}
		defer adm.Close()
		fmt.Printf("admin endpoint at http://%s (/metrics /healthz /debug/rasc/* /debug/pprof)\n", adm.Addr())
	}
	fmt.Printf("node up at %s", node.Addr())
	if len(services) > 0 {
		fmt.Printf(" offering %v", services)
	}
	fmt.Println()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *submit != "" {
		if *submitAfter > 0 {
			select {
			case <-time.After(*submitAfter):
			case <-ctx.Done():
				return
			}
		}
		chain := strings.Split(*submit, ",")
		rateUnits := *rateKbps * 1000 / (*unit * 8)
		if rateUnits < 1 {
			rateUnits = 1
		}
		req := spec.Request{
			ID:         fmt.Sprintf("cli-%d", time.Now().Unix()),
			UnitBytes:  *unit,
			Substreams: []spec.Substream{{Services: chain, Rate: rateUnits}},
			Priority:   pri,
		}
		// An interrupt while composition is in flight cancels the wait.
		graph, err := node.SubmitContext(ctx, req, *composer, 10*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "submit: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("composed %v onto %d placement(s):\n", chain, len(graph.Placements))
		for _, p := range graph.Placements {
			fmt.Printf("  stage %d %-12s -> %s (%.0f units/sec)\n", p.Stage, p.Service, p.Host.Addr, p.Rate)
		}
		ticker := time.NewTicker(3 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s := node.Stats(req.ID, 0)
				fmt.Printf("emitted=%d delivered=%d delay=%v jitter=%v\n",
					s.Emitted, s.Received, s.MeanDelay.Round(time.Millisecond), s.MeanJitter.Round(time.Millisecond))
			case <-ctx.Done():
				return
			}
		}
	}
	<-ctx.Done()
}
