package overlay

import (
	"fmt"
	"math/rand"
	"testing"

	"rasc.dev/rasc/internal/transport"
)

func info(id ID) NodeInfo {
	return NodeInfo{ID: id, Addr: transport.Addr("sim://" + id.String()[:6])}
}

func TestRoutingTableAddLookup(t *testing.T) {
	owner, _ := ParseID("a0000000000000000000000000000000")
	rt := routingTable{owner: owner}
	peer, _ := ParseID("a1000000000000000000000000000000") // cpl=1, digit 1 of peer = 1
	if !rt.add(info(peer)) {
		t.Fatal("add returned false for fresh entry")
	}
	if rt.add(info(peer)) {
		t.Fatal("duplicate add reported change")
	}
	got := rt.lookup(1, 1)
	if got == nil || got.ID != peer {
		t.Fatalf("lookup = %v", got)
	}
	if rt.lookup(0, 0xb) != nil {
		t.Fatal("unexpected entry")
	}
	if rt.size() != 1 {
		t.Fatalf("size = %d", rt.size())
	}
}

func TestRoutingTableIgnoresOwner(t *testing.T) {
	owner := HashID("me")
	rt := routingTable{owner: owner}
	if rt.add(info(owner)) {
		t.Fatal("added owner to its own table")
	}
}

func TestRoutingTableFirstWriterWins(t *testing.T) {
	owner, _ := ParseID("00000000000000000000000000000000")
	rt := routingTable{owner: owner}
	a, _ := ParseID("50000000000000000000000000000000")
	b, _ := ParseID("51000000000000000000000000000000") // same row 0, digit 5
	rt.add(info(a))
	if rt.add(info(b)) {
		t.Fatal("second writer displaced first")
	}
	if rt.lookup(0, 5).ID != a {
		t.Fatal("entry overwritten")
	}
}

func TestRoutingTableRemove(t *testing.T) {
	owner, _ := ParseID("00000000000000000000000000000000")
	rt := routingTable{owner: owner}
	a, _ := ParseID("70000000000000000000000000000000")
	rt.add(info(a))
	if !rt.remove(a) {
		t.Fatal("remove existing failed")
	}
	if rt.remove(a) {
		t.Fatal("remove reported success twice")
	}
	if rt.remove(owner) {
		t.Fatal("removing owner should be a no-op")
	}
}

func TestRoutingTableRow(t *testing.T) {
	owner, _ := ParseID("00000000000000000000000000000000")
	rt := routingTable{owner: owner}
	for d := 1; d < 8; d++ {
		id, _ := ParseID(fmt.Sprintf("%x0000000000000000000000000000000", d))
		rt.add(info(id))
	}
	if got := len(rt.row(0)); got != 7 {
		t.Fatalf("row 0 has %d entries, want 7", got)
	}
	if got := len(rt.row(5)); got != 0 {
		t.Fatalf("row 5 has %d entries, want 0", got)
	}
	if got := len(rt.all()); got != 7 {
		t.Fatalf("all() has %d entries, want 7", got)
	}
}

func TestLeafSetOrderingAndTrim(t *testing.T) {
	owner, _ := ParseID("80000000000000000000000000000000")
	ls := newLeafSet(owner, 4) // 2 per side
	mk := func(hexID string) NodeInfo {
		id, err := ParseID(hexID)
		if err != nil {
			t.Fatal(err)
		}
		return info(id)
	}
	ls.add(mk("80000000000000000000000000000003")) // cw dist 3
	ls.add(mk("80000000000000000000000000000001")) // cw dist 1
	ls.add(mk("80000000000000000000000000000002")) // cw dist 2, evicts 3
	ls.add(mk("7fffffffffffffffffffffffffffffff")) // ccw dist 1
	ls.add(mk("7ffffffffffffffffffffffffffffffe")) // ccw dist 2
	if len(ls.cw) != 2 {
		t.Fatalf("cw size = %d, want 2", len(ls.cw))
	}
	if ls.cw[0].ID.String()[31] != '1' || ls.cw[1].ID.String()[31] != '2' {
		t.Fatalf("cw order wrong: %v", ls.cw)
	}
	// A node farther than both full sides must not displace anything.
	if ls.add(mk("80000000000000000000000000000004")) {
		t.Fatal("far node insertion reported change")
	}
}

func TestLeafSetCovers(t *testing.T) {
	owner, _ := ParseID("80000000000000000000000000000000")
	ls := newLeafSet(owner, 2) // one node per side: no wraparound overlap
	if !ls.covers(HashID("anything")) {
		t.Fatal("empty leaf set must cover everything")
	}
	lo, _ := ParseID("7f000000000000000000000000000000")
	hi, _ := ParseID("81000000000000000000000000000000")
	ls.add(info(lo))
	ls.add(info(hi))
	in, _ := ParseID("80500000000000000000000000000000")
	out, _ := ParseID("ff000000000000000000000000000000")
	if !ls.covers(in) {
		t.Fatal("key inside segment not covered")
	}
	if ls.covers(out) {
		t.Fatal("key outside segment covered")
	}
}

func TestLeafSetClosest(t *testing.T) {
	owner, _ := ParseID("80000000000000000000000000000000")
	ls := newLeafSet(owner, 8)
	near, _ := ParseID("80000000000000000000000000000010")
	far, _ := ParseID("90000000000000000000000000000000")
	ls.add(info(near))
	ls.add(info(far))
	key, _ := ParseID("80000000000000000000000000000011")
	best, ok := ls.closest(key)
	if !ok || best.ID != near {
		t.Fatalf("closest = %v ok=%v", best, ok)
	}
	// Key on top of owner: owner itself is closest.
	if _, ok := ls.closest(owner); ok {
		t.Fatal("owner should win for its own ID")
	}
}

func TestLeafSetRemove(t *testing.T) {
	owner := HashID("owner")
	ls := newLeafSet(owner, 8)
	a := HashID("a")
	ls.add(info(a))
	if !ls.remove(a) {
		t.Fatal("remove failed")
	}
	if ls.remove(a) {
		t.Fatal("double remove reported success")
	}
	if ls.size() != 0 {
		t.Fatalf("size = %d after remove", ls.size())
	}
}

// Property: with many random members, the leaf set keeps exactly the `half`
// closest nodes on each side.
func TestLeafSetKeepsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	owner := RandomID(rng)
	const half = 8
	ls := newLeafSet(owner, 2*half)
	var members []ID
	for i := 0; i < 200; i++ {
		id := RandomID(rng)
		members = append(members, id)
		ls.add(info(id))
	}
	// Compute expected cw side by brute force.
	type cand struct {
		id   ID
		dist ID
	}
	var cands []cand
	for _, m := range members {
		cands = append(cands, cand{m, CWDist(owner, m)})
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].dist.Cmp(cands[i].dist) < 0 {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if len(ls.cw) != half {
		t.Fatalf("cw side has %d, want %d", len(ls.cw), half)
	}
	for i := 0; i < half; i++ {
		if ls.cw[i].ID != cands[i].id {
			t.Fatalf("cw[%d] = %v, want %v", i, ls.cw[i].ID, cands[i].id)
		}
	}
}
