// Package clock abstracts time so protocol code (overlay maintenance, RPC
// timeouts, monitoring windows) runs identically on the virtual clock of the
// network simulator and on the wall clock of a live deployment.
package clock

import (
	"sync"
	"time"

	"rasc.dev/rasc/internal/netsim"
)

// Clock supplies the current time and one-shot timers.
type Clock interface {
	// Now returns time elapsed since an arbitrary fixed origin.
	Now() time.Duration
	// After runs fn once d has elapsed and returns a cancel function.
	// Cancelling after the timer fired is a no-op.
	After(d time.Duration, fn func()) (cancel func())
}

// Sim adapts a netsim.Simulator to the Clock interface. It must only be
// used from within the simulator's event loop.
type Sim struct {
	S *netsim.Simulator
}

// Now returns the simulator's virtual time.
func (c Sim) Now() time.Duration { return c.S.Now() }

// After schedules fn on the simulator after d of virtual time.
func (c Sim) After(d time.Duration, fn func()) func() {
	cancelled := false
	c.S.Schedule(d, func() {
		if !cancelled {
			fn()
		}
	})
	return func() { cancelled = true }
}

// Real is a wall-clock implementation backed by the time package.
// It is safe for concurrent use.
type Real struct {
	once   sync.Once
	origin time.Time
}

// NewReal returns a wall clock whose origin is the moment of creation.
func NewReal() *Real {
	r := &Real{}
	r.init()
	return r
}

func (r *Real) init() {
	r.once.Do(func() { r.origin = time.Now() })
}

// Now returns time elapsed since the clock was created.
func (r *Real) Now() time.Duration {
	r.init()
	return time.Since(r.origin)
}

// After runs fn on its own goroutine once d has elapsed.
func (r *Real) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}
