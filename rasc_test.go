package rasc

import (
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
)

func TestNewSimulatedDefaults(t *testing.T) {
	sys := NewSimulated(Options{Seed: 1})
	if sys.Nodes() != 32 {
		t.Fatalf("Nodes = %d, want 32", sys.Nodes())
	}
	for i := 0; i < sys.Nodes(); i++ {
		if len(sys.ServicesAt(i)) != 5 {
			t.Fatalf("node %d offers %d services, want 5", i, len(sys.ServicesAt(i)))
		}
	}
}

func TestSubmitAndStream(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 16, Seed: 2})
	req := Request{
		ID:        "t1",
		UnitBytes: 1250,
		Substreams: []Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 8},
		},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumHosts() < 1 || len(comp.Placements()) < 2 {
		t.Fatalf("placements = %v", comp.Placements())
	}
	sys.Run(10 * time.Second)
	s := comp.Stats()
	if s.Emitted < 60 {
		t.Fatalf("emitted = %d", s.Emitted)
	}
	if s.DeliveredFraction() < 0.7 {
		t.Fatalf("delivered fraction = %g", s.DeliveredFraction())
	}
	if s.TimelyFraction() <= 0 || s.MeanDelay <= 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSubmitAllComposers(t *testing.T) {
	for _, composer := range []Composer{ComposerMinCost, ComposerMinCostNoSplit, ComposerGreedy, ComposerRandom, ComposerLP} {
		sys := NewSimulated(Options{Nodes: 12, Seed: 3})
		req := Request{
			ID:         "t-" + composer.String(),
			UnitBytes:  1250,
			Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
		}
		comp, err := sys.Submit(1, req, composer)
		if err != nil {
			t.Fatalf("%s: %v", composer, err)
		}
		sys.Run(5 * time.Second)
		if comp.Stats().Received == 0 {
			t.Fatalf("%s: nothing delivered", composer)
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 8, Seed: 4})
	req := Request{
		ID:         "bad",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
	}
	if _, err := sys.Submit(99, req, ComposerMinCost); err == nil {
		t.Fatal("bad origin accepted")
	}
	if _, err := sys.Submit(0, req, "nonsense"); err == nil {
		t.Fatal("bad composer accepted")
	}
	huge := Request{
		ID:         "huge",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 100000}},
	}
	if _, err := sys.Submit(0, huge, ComposerMinCost); !errors.Is(err, core.ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want ErrNoFeasiblePlacement", err)
	}
}

func TestCompositionStop(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 12, Seed: 5})
	req := Request{
		ID:         "stopme",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 5}},
	}
	comp, err := sys.Submit(0, req, ComposerMinCost)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(3 * time.Second)
	comp.Stop()
	s1 := comp.Stats()
	sys.Run(5 * time.Second)
	s2 := comp.Stats()
	if s2.Emitted != s1.Emitted {
		t.Fatalf("source kept emitting after Stop: %d -> %d", s1.Emitted, s2.Emitted)
	}
}

func TestNodeReport(t *testing.T) {
	sys := NewSimulated(Options{Nodes: 8, Seed: 6})
	req := Request{
		ID:         "mon",
		UnitBytes:  1250,
		Substreams: []Substream{{Services: []string{"filter"}, Rate: 10}},
	}
	if _, err := sys.Submit(0, req, ComposerMinCost); err != nil {
		t.Fatal(err)
	}
	sys.Run(10 * time.Second)
	rep := sys.NodeReport(0)
	if rep.OutBpsUsed <= 0 {
		t.Fatal("origin monitor shows no outbound traffic")
	}
	if rep.OutBpsCap <= 0 || rep.InBpsCap <= 0 {
		t.Fatal("capacities missing from report")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() DeliveryStats {
		sys := NewSimulated(Options{Nodes: 12, Seed: 77})
		req := Request{
			ID:         "det",
			UnitBytes:  1250,
			Substreams: []Substream{{Services: []string{"filter", "compress"}, Rate: 7}},
		}
		comp, err := sys.Submit(2, req, ComposerMinCost)
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(10 * time.Second)
		return comp.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestCatalogs(t *testing.T) {
	std := StandardCatalog()
	if len(std) != 10 {
		t.Fatalf("standard catalog has %d services, want 10", len(std))
	}
	ext := ExtendedCatalog()
	if len(ext) <= len(std) {
		t.Fatal("extended catalog must add services")
	}
	if ext["downsample"].RateRatio != 0.5 {
		t.Fatal("downsample ratio wrong")
	}
}
