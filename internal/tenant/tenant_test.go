package tenant

import (
	"errors"
	"sync"
	"testing"

	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/trace"
)

// recorder collects owner notifications for assertions.
type recorder struct {
	mu        sync.Mutex
	preempted []string
	promoted  []string
	caps      map[string]float64
}

func newRecorder() *recorder { return &recorder{caps: make(map[string]float64)} }

func (r *recorder) TenantCapChanged(app string, capBps float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.caps[app] = capBps
}

func (r *recorder) TenantPreempted(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.preempted = append(r.preempted, app)
}

func (r *recorder) TenantPromoted(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.promoted = append(r.promoted, app)
}

func TestGateAdmitWithinCapacity(t *testing.T) {
	g := NewGate(Config{CapacityBps: 10000})
	dec := g.Admit("a", spec.Standard, 4000, nil)
	if dec.State != StateAdmitted || !dec.New || dec.Err != nil {
		t.Fatalf("first admit: %+v", dec)
	}
	if dec.CapBps != 4000 {
		t.Fatalf("uncontended cap %v, want full demand", dec.CapBps)
	}
	// Idempotent re-admit (recompose path): same cap, New=false.
	again := g.Admit("a", spec.Standard, 4000, nil)
	if again.State != StateAdmitted || again.New || again.CapBps != 4000 {
		t.Fatalf("re-admit: %+v", again)
	}
	if tt := g.Totals(); tt.Admitted != 1 || tt.Queued != 0 {
		t.Fatalf("totals %+v", tt)
	}
}

func TestGateQueueAndReject(t *testing.T) {
	g := NewGate(Config{CapacityBps: 10000, QueueCapacity: 1, MinShareFraction: 0.5})
	if dec := g.Admit("a", spec.Standard, 10000, nil); dec.State != StateAdmitted {
		t.Fatalf("a: %+v", dec)
	}
	// b would drive both below the 0.5 floor (equal weights, 5000 each is
	// exactly the floor for a but b's floor is 10000*0.5=5000 too — use a
	// bigger demand to force violation).
	dec := g.Admit("b", spec.Standard, 12000, nil)
	if dec.State != StateQueued {
		t.Fatalf("b should queue: %+v", dec)
	}
	if !errors.Is(dec.Err, ErrAdmissionQueued) {
		t.Fatalf("queued err = %v", dec.Err)
	}
	var ae *AdmissionError
	if !errors.As(dec.Err, &ae) || !ae.Queued || ae.App != "b" {
		t.Fatalf("typed err = %#v", dec.Err)
	}
	// Queue full: c is rejected.
	dec = g.Admit("c", spec.Standard, 12000, nil)
	if dec.State != StateRejected || !errors.Is(dec.Err, ErrAdmissionRejected) {
		t.Fatalf("c should reject: %+v", dec)
	}
	if errors.Is(dec.Err, ErrAdmissionQueued) {
		t.Fatal("rejected error must not match queued sentinel")
	}
	if tt := g.Totals(); tt.Admitted != 1 || tt.Queued != 1 || tt.Rejections != 1 {
		t.Fatalf("totals %+v", tt)
	}
}

func TestGatePreemptsLowerPriority(t *testing.T) {
	rec := newRecorder()
	g := NewGate(Config{CapacityBps: 10000, MinShareFraction: 0.5})
	if dec := g.Admit("be", spec.BestEffort, 9000, rec); dec.State != StateAdmitted {
		t.Fatalf("be: %+v", dec)
	}
	// Critical demand that cannot coexist with be above both floors
	// (9000*0.5 + 9000*0.5 = 9000 < 10000 would fit; use larger demands).
	dec := g.Admit("crit", spec.Critical, 16000, rec)
	if dec.State != StateAdmitted {
		t.Fatalf("critical should preempt its way in: %+v", dec)
	}
	if dec.CapBps != 10000 {
		t.Fatalf("critical cap %v, want whole budget", dec.CapBps)
	}
	rec.mu.Lock()
	preempted := append([]string(nil), rec.preempted...)
	rec.mu.Unlock()
	if len(preempted) != 1 || preempted[0] != "be" {
		t.Fatalf("preempted %v, want [be]", preempted)
	}
	// The victim sits in the queue, not dropped.
	snap := g.Snapshot()
	foundQueued := false
	for _, s := range snap {
		if s.App == "be" && s.State == "queued" && s.Preemptions == 1 {
			foundQueued = true
		}
	}
	if !foundQueued {
		t.Fatalf("victim not queued: %+v", snap)
	}
	// Releasing the critical tenant promotes the victim back.
	g.Release("crit")
	rec.mu.Lock()
	promoted := append([]string(nil), rec.promoted...)
	rec.mu.Unlock()
	if len(promoted) != 1 || promoted[0] != "be" {
		t.Fatalf("promoted %v, want [be]", promoted)
	}
	if cap, ok := g.CapBps("be"); !ok || cap != 9000 {
		t.Fatalf("restored cap %v %v", cap, ok)
	}
}

func TestGateNeverPreemptsEqualOrHigher(t *testing.T) {
	g := NewGate(Config{CapacityBps: 10000, QueueCapacity: -1, MinShareFraction: 0.5})
	if dec := g.Admit("a", spec.Standard, 10000, nil); dec.State != StateAdmitted {
		t.Fatalf("a: %+v", dec)
	}
	// A same-priority arrival that would break a's floor is rejected
	// (queue disabled), leaving a untouched.
	dec := g.Admit("b", spec.Standard, 12000, nil)
	if dec.State != StateRejected {
		t.Fatalf("b: %+v", dec)
	}
	if cap, ok := g.CapBps("a"); !ok || cap != 10000 {
		t.Fatalf("a degraded to %v after rejection", cap)
	}
	// Same story for a lower-priority arrival against a higher one.
	dec = g.Admit("c", spec.BestEffort, 12000, nil)
	if dec.State != StateRejected {
		t.Fatalf("c: %+v", dec)
	}
}

func TestGateFairShareCapsUnderContention(t *testing.T) {
	rec := newRecorder()
	g := NewGate(Config{CapacityBps: 7000, MinShareFraction: 0.1})
	// Weights 4 (critical) and 1 (best-effort): contended 2x, shares split 4:1
	// but the critical tenant is capped at its demand with surplus flowing
	// to the best-effort one.
	if dec := g.Admit("crit", spec.Critical, 4000, rec); dec.State != StateAdmitted || dec.CapBps != 4000 {
		t.Fatalf("crit: %+v", dec)
	}
	dec := g.Admit("be", spec.BestEffort, 10000, rec)
	if dec.State != StateAdmitted {
		t.Fatalf("be: %+v", dec)
	}
	// Water level: crit saturates at 4000 (level 1000 < be's 10000), so
	// crit gets its full 4000 and be the remaining 3000.
	if dec.CapBps != 3000 {
		t.Fatalf("be cap %v, want 3000", dec.CapBps)
	}
	if cap, _ := g.CapBps("crit"); cap != 4000 {
		t.Fatalf("crit cap %v, want full demand", cap)
	}
	// Capacity loss re-settles: be's fair share (900) falls below its
	// floor (10000×0.1), so the rebalance preempts it into the queue and
	// the critical tenant keeps its full demand.
	g.SetCapacity(4500)
	if cap, _ := g.CapBps("crit"); cap != 4000 {
		t.Fatalf("crit post-shrink cap %v", cap)
	}
	if _, ok := g.CapBps("be"); ok {
		t.Fatal("be should be preempted after the capacity loss")
	}
	rec.mu.Lock()
	preempted := append([]string(nil), rec.preempted...)
	rec.mu.Unlock()
	if len(preempted) != 1 || preempted[0] != "be" {
		t.Fatalf("preempted %v, want [be]", preempted)
	}
}

func TestGateMaxTenants(t *testing.T) {
	g := NewGate(Config{CapacityBps: 1e9, MaxTenants: 2})
	g.Admit("a", spec.Standard, 100, nil)
	g.Admit("b", spec.Standard, 100, nil)
	dec := g.Admit("c", spec.Standard, 100, nil)
	if dec.State != StateQueued {
		t.Fatalf("over MaxTenants should queue: %+v", dec)
	}
	g.Release("a")
	if cap, ok := g.CapBps("c"); !ok || cap != 100 {
		t.Fatalf("c not promoted after release: %v %v", cap, ok)
	}
}

func TestGateJournalRecordsDecisions(t *testing.T) {
	j := trace.NewJournal(64)
	g := NewGate(Config{CapacityBps: 10000, Journal: j, MinShareFraction: 0.5})
	g.Admit("be", spec.BestEffort, 9000, nil)
	g.Admit("crit", spec.Critical, 16000, nil) // preempts be
	g.Admit("big", spec.BestEffort, 1e9, nil)  // queued
	triggers := map[string]int{}
	for _, d := range j.Decisions() {
		triggers[d.Trigger]++
	}
	if triggers["admit"] < 2 || triggers["preempt"] != 1 {
		t.Fatalf("journal triggers %v", triggers)
	}
}

func TestCapRequest(t *testing.T) {
	req := spec.Request{
		ID:        "app",
		UnitBytes: 1250, // 10000 bits/unit
		Substreams: []spec.Substream{
			{Services: []string{"s1"}, Rate: 30},
			{Services: []string{"s2"}, Rate: 10},
		},
	}
	// Demand 400000 bps; cap at half.
	capped := CapRequest(req, 200000)
	if capped.Substreams[0].Rate != 15 || capped.Substreams[1].Rate != 5 {
		t.Fatalf("capped rates %+v", capped.Substreams)
	}
	// Original untouched (substreams copied).
	if req.Substreams[0].Rate != 30 {
		t.Fatal("CapRequest mutated the input")
	}
	// Cap above demand: unchanged.
	if got := CapRequest(req, 1e9); got.Substreams[0].Rate != 30 {
		t.Fatalf("surplus cap changed rates: %+v", got.Substreams)
	}
	// Tiny cap still leaves a unit per substream.
	tiny := CapRequest(req, 1)
	for i, ss := range tiny.Substreams {
		if ss.Rate < 1 {
			t.Fatalf("substream %d rate %d < 1", i, ss.Rate)
		}
	}
}

func TestGateDemandUpdateOnReadmit(t *testing.T) {
	g := NewGate(Config{CapacityBps: 10000, MinShareFraction: 0.1})
	g.Admit("a", spec.Standard, 4000, nil)
	dec := g.Admit("a", spec.Standard, 8000, nil)
	if dec.State != StateAdmitted || dec.CapBps != 8000 {
		t.Fatalf("demand update: %+v", dec)
	}
	if tt := g.Totals(); tt.DemandBps != 8000 {
		t.Fatalf("totals after update: %+v", tt)
	}
}
