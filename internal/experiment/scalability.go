package experiment

import (
	"time"

	"rasc.dev/rasc/internal/metrics"
)

// ScalabilityConfig parameterizes the deployment-size sweep: the same
// workload intensity per node, measured at growing overlay sizes.
type ScalabilityConfig struct {
	// NodeCounts to sweep (default 16, 32, 64).
	NodeCounts []int
	// Seeds to average (default 1, 2).
	Seeds []int64
	// Rate in units/sec per request (default 10 = 100 Kbps).
	Rate int
	// RequestsPerNode scales the workload with the deployment
	// (default 0.5: 16 requests on 32 nodes).
	RequestsPerNode float64
	// Composer (default "mincost").
	Composer string
	// Progress receives one line per run when set.
	Progress func(string)
}

func (c *ScalabilityConfig) defaults() {
	if len(c.NodeCounts) == 0 {
		c.NodeCounts = []int{16, 32, 64}
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2}
	}
	if c.Rate == 0 {
		c.Rate = 10
	}
	if c.RequestsPerNode == 0 {
		c.RequestsPerNode = 0.5
	}
	if c.Composer == "" {
		c.Composer = "mincost"
	}
}

// RunScalability sweeps deployment sizes and reports, per size: requests
// composed, delivered fraction, and the mean virtual composition latency
// (discovery + monitoring + solving + instantiation). Composition latency
// should grow slowly — discovery is O(log N) overlay hops — while
// delivery quality holds.
func RunScalability(cfg ScalabilityConfig) (*metrics.Table, error) {
	cfg.defaults()
	t := metrics.NewTable(
		"Scalability: deployment-size sweep ("+cfg.Composer+")",
		"nodes", "per-column", cfg.NodeCounts)
	for _, n := range cfg.NodeCounts {
		requests := int(float64(n) * cfg.RequestsPerNode)
		if requests < 1 {
			requests = 1
		}
		var composed, delivered, composeMs metrics.Welford
		for _, seed := range cfg.Seeds {
			base := Config{
				Nodes:      n,
				Requests:   requests,
				MeasureFor: 20 * time.Second,
			}
			rs, err := RunOne(base, cfg.Composer, cfg.Rate, seed)
			if err != nil {
				return nil, err
			}
			composed.Add(float64(rs.Composed))
			delivered.Add(rs.DeliveredFraction())
			composeMs.Add(rs.MeanComposeLatencyMs())
			if cfg.Progress != nil {
				cfg.Progress(
					"nodes=" + itoa(n) + " seed=" + itoa(int(seed)) +
						" composed=" + itoa(rs.Composed) + "/" + itoa(requests))
			}
		}
		t.Set("composed", n, composed.Mean())
		t.Set("delivered_frac", n, delivered.Mean())
		t.Set("compose_ms", n, composeMs.Mean())
	}
	return t, nil
}

// itoa is a tiny local integer formatter (avoids fmt in the hot path).
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
