package tenant

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the tenancy layer (metric catalogue rasc_tenant_*).
// The gate sits in front of every submission, so its decision mix is the
// first place to look when applications are unexpectedly parked or capped.
var (
	telAdmissions = telemetry.Default().CounterVec(
		"rasc_tenant_admissions_total",
		"Admission gate decisions, by outcome (admitted, queued, rejected, promoted).", "decision")
	telPreemptions = telemetry.Default().Counter(
		"rasc_tenant_preemptions_total",
		"Running tenants preempted into the admission queue by higher-priority contention.")
	telCapChanges = telemetry.Default().Counter(
		"rasc_tenant_cap_changes_total",
		"Fair-share rate-cap updates pushed to running tenants after a fairness recompute.")
	telRecomputes = telemetry.Default().Counter(
		"rasc_tenant_fair_share_recomputes_total",
		"Water-filling fairness recomputations (admission, departure, capacity change).")
	telActive = telemetry.Default().GaugeVec(
		"rasc_tenant_active",
		"Admitted tenants currently holding a fair-share allocation, by priority class.", "priority")
	telQueued = telemetry.Default().Gauge(
		"rasc_tenant_queued",
		"Tenants waiting in the admission queue.")
	telCapacity = telemetry.Default().Gauge(
		"rasc_tenant_capacity_bps",
		"Aggregate cluster capacity the admission gate budgets, in bits/sec.")
	telDemand = telemetry.Default().Gauge(
		"rasc_tenant_demand_bps",
		"Aggregate requested rate of admitted tenants, in bits/sec.")
	telCoalesced = telemetry.Default().Counter(
		"rasc_tenant_cap_notifications_coalesced_total",
		"Fair-share cap updates suppressed by the notification deadband or merged into a coalesced sweep.")
	telRecomputesInc = telemetry.Default().Counter(
		"rasc_tenant_recompute_incremental_total",
		"Fairness recomputations served by the incremental water-fill structure (O(log n) level updates).")
	telHosts = telemetry.Default().Gauge(
		"rasc_tenant_hosts",
		"Hosts registered in the admission gate's per-host capacity ledger.")
	telRecomputeLatency = telemetry.Default().Histogram(
		"rasc_tenant_recompute_duration_seconds",
		"Wall-clock latency of one fairness recompute (water level plus notification fan-out).", nil)
)
