package transport

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the transports (metric catalogue rasc_transport_*).
// The transport label distinguishes the TCP socket path, the UDP datagram
// path of the hybrid endpoint, and the in-process simulator transport.
var (
	telMessages = telemetry.Default().CounterVec(
		"rasc_transport_messages_total",
		"Messages moved through a transport endpoint, by direction.",
		"transport", "direction")
	telBytes = telemetry.Default().CounterVec(
		"rasc_transport_bytes_total",
		"Wire bytes moved through a transport endpoint, by direction.",
		"transport", "direction")
	telConnectErrors = telemetry.Default().CounterVec(
		"rasc_transport_connect_errors_total",
		"Failed dials or unresolvable destinations.",
		"transport")

	telTCPIn        = telMessages.With("tcp", "in")
	telTCPOut       = telMessages.With("tcp", "out")
	telTCPInBytes   = telBytes.With("tcp", "in")
	telTCPOutBytes  = telBytes.With("tcp", "out")
	telTCPConnErr   = telConnectErrors.With("tcp")
	telUDPIn        = telMessages.With("udp", "in")
	telUDPOut       = telMessages.With("udp", "out")
	telUDPInBytes   = telBytes.With("udp", "in")
	telUDPOutBytes  = telBytes.With("udp", "out")
	telUDPConnErr   = telConnectErrors.With("udp")
	telMemIn        = telMessages.With("mem", "in")
	telMemOut       = telMessages.With("mem", "out")
	telMemInBytes   = telBytes.With("mem", "in")
	telMemOutBytes  = telBytes.With("mem", "out")
	telMemSendFails = telConnectErrors.With("mem")
)

// Resilience-pipeline telemetry: queue, batching, retry and breaker
// visibility for the Resilient endpoint, plus injected-fault counters for
// the Chaos wrapper.
var (
	telResQueueDepth = telemetry.Default().Gauge(
		"rasc_transport_queue_depth",
		"Messages currently queued across all peer send queues.")
	telResBatchSize = telemetry.Default().Histogram(
		"rasc_transport_batch_size",
		"Control messages coalesced per flushed wire frame.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	telResSendLatency = telemetry.Default().Histogram(
		"rasc_transport_send_latency_seconds",
		"Enqueue-to-delivery latency through the resilient pipeline.",
		nil)
	telResRetries = telemetry.Default().Counter(
		"rasc_transport_retries_total",
		"Batch send retries after transient failures.")
	telResDropped = telemetry.Default().CounterVec(
		"rasc_transport_dropped_total",
		"Messages dropped by the resilient pipeline, by cause.",
		"cause")
	telResBreakerPeers = telemetry.Default().GaugeVec(
		"rasc_transport_breaker_peers",
		"Tracked peers by circuit-breaker state.",
		"state")
	telResBreakerTransitions = telemetry.Default().CounterVec(
		"rasc_transport_breaker_transitions_total",
		"Circuit-breaker transitions, by state entered.",
		"state")
	telChaosInjected = telemetry.Default().CounterVec(
		"rasc_transport_chaos_injected_total",
		"Faults injected by the chaos wrapper, by kind.",
		"fault")
)
