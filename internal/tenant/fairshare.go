// Package tenant is the multi-tenancy layer between the submission entry
// points and the composers: a per-cluster admission gate with priority
// classes, weighted max-min fair-share rate caps (water-filling), an
// admission queue, and preemption of the lowest-priority tenants under
// contention. It exists so that hundreds of concurrent applications
// contend through an explicit allocation policy instead of silently
// degrading each other by first-come-first-served capacity decrement.
package tenant

import (
	"math"
	"sort"
)

// Demand is one tenant's input to the fairness allocator.
type Demand struct {
	// App identifies the tenant (ties in the water level are broken by
	// App so allocations are deterministic).
	App string
	// Bps is the tenant's requested aggregate rate in bits/sec.
	Bps float64
	// Weight is the tenant's fairness weight (priority class weight);
	// non-positive weights are treated as the minimum weight 1.
	Weight float64
}

// FairShares computes the weighted max-min fair allocation of capacity
// across the demands by water-filling: the water level rises uniformly
// per unit of weight; a tenant whose demand is met leaves the pool and
// its surplus is redistributed among the still-unsatisfied tenants. The
// result, indexed like demands, satisfies the classic invariants:
//
//   - no tenant is allocated more than its demand;
//   - the allocation is work-conserving: either every tenant is
//     satisfied or the full capacity is allocated;
//   - all unsatisfied tenants share the same normalized allocation
//     share/weight (the final water level).
//
// The computation is deterministic: equal inputs give bit-equal outputs.
func FairShares(demands []Demand, capacityBps float64) []float64 {
	out := make([]float64, len(demands))
	if capacityBps <= 0 || len(demands) == 0 {
		return out
	}
	// Sort indexes by the level at which each tenant saturates
	// (demand/weight), tie-broken by app for determinism.
	type entry struct {
		idx    int
		level  float64 // demand/weight: the water level that satisfies it
		weight float64
	}
	entries := make([]entry, 0, len(demands))
	var weightSum float64
	for i, d := range demands {
		w := d.Weight
		if w <= 0 {
			w = 1
		}
		if d.Bps <= 0 {
			continue // zero demand: zero share, not in the pool
		}
		entries = append(entries, entry{idx: i, level: d.Bps / w, weight: w})
		weightSum += w
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].level != entries[j].level {
			return entries[i].level < entries[j].level
		}
		return demands[entries[i].idx].App < demands[entries[j].idx].App
	})
	remaining := capacityBps
	for k, e := range entries {
		if weightSum <= 0 {
			break
		}
		level := remaining / weightSum
		if level >= e.level {
			// The water level reaches this tenant's demand: satisfy it
			// exactly and redistribute the surplus.
			out[e.idx] = demands[e.idx].Bps
			remaining -= demands[e.idx].Bps
			weightSum -= e.weight
			continue
		}
		// Every remaining tenant (this one and all later, which saturate
		// at even higher levels) is unsatisfied: they split the remaining
		// capacity at the final water level.
		for _, u := range entries[k:] {
			out[u.idx] = level * u.weight
		}
		remaining = 0
		break
	}
	// Guard against float drift leaving a share microscopically above
	// demand.
	for i, d := range demands {
		if out[i] > d.Bps {
			out[i] = d.Bps
		}
		if out[i] < 0 || math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}
