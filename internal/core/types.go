// Package core implements the paper's contribution: rate-based composition
// of stream-processing applications. Given a service request, the
// candidate hosts per service (from discovery) and their monitoring reports
// (availability vectors and drop ratios), a Composer produces an execution
// graph — component placements with assigned rates and the data-flow edges
// between them — such that each substream's rate requirement is met.
//
// Three composers are provided: MinCost (RASC's algorithm: a reduction to
// minimum-cost flow that can split a service across several component
// instances), and the paper's two baselines, Random and Greedy.
// A fourth, LP, generalizes MinCost to rate ratios ≠ 1 via linear
// programming, the extension §3.5 sketches.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// Candidate is a host offering a service, together with its latest
// monitoring report.
type Candidate struct {
	Info   overlay.NodeInfo
	Report monitor.Report
}

// Input gathers everything a composer needs for one request.
type Input struct {
	Request spec.Request
	// Source emits the stream; Dest receives the results (the user).
	Source, Dest overlay.NodeInfo
	// SourceReport and DestReport supply the endpoints' availability.
	SourceReport, DestReport monitor.Report
	// Candidates lists the hosts offering each service.
	Candidates map[string][]Candidate
	// Catalog supplies service definitions (rate ratios for LP).
	Catalog map[string]spec.ServiceDef
	// Rand drives randomized composers; deterministic under a fixed
	// seed.
	Rand *rand.Rand
	// Headroom scales measured availability before it becomes flow
	// capacity (0 selects DefaultHeadroom). Monitoring reports lag the
	// true load by one window, so composing against 100% of measured
	// availability overcommits links; all composers share this margin.
	Headroom float64
	// Stats, when non-nil, receives solve statistics (candidate counts,
	// flow-graph sizes, solver iterations, duration, feasibility) for
	// the decision tracing plane.
	Stats *ComposeStats
}

// DefaultHeadroom is the fraction of measured availability composers plan
// against.
const DefaultHeadroom = 0.9

func (in Input) headroom() float64 {
	if in.Headroom <= 0 || in.Headroom > 1 {
		return DefaultHeadroom
	}
	return in.Headroom
}

// Placement is one component instance with its assigned input rate.
type Placement struct {
	Substream int              `json:"substream"`
	Stage     int              `json:"stage"`
	Service   string           `json:"service"`
	Host      overlay.NodeInfo `json:"host"`
	Rate      float64          `json:"rate"` // data units per second into the component
}

// Edge is a data path between two stages with its assigned rate.
// FromStage -1 denotes the source; ToStage == len(chain) the destination.
type Edge struct {
	Substream int              `json:"substream"`
	FromStage int              `json:"fromStage"`
	ToStage   int              `json:"toStage"`
	From      overlay.NodeInfo `json:"from"`
	To        overlay.NodeInfo `json:"to"`
	Rate      float64          `json:"rate"`
}

// ExecutionGraph is the outcome of composition: the mapping of the service
// request graph onto overlay nodes.
type ExecutionGraph struct {
	Request  spec.Request `json:"request"`
	Composer string       `json:"composer"`
	Source   overlay.NodeInfo
	Dest     overlay.NodeInfo
	// Placements holds every component instance; Edges every data path.
	Placements []Placement `json:"placements"`
	Edges      []Edge      `json:"edges"`
}

// Composer turns a request plus system state into an execution graph.
type Composer interface {
	// Compose returns an execution graph meeting the rate requirements,
	// or an error when the request cannot be accommodated.
	Compose(in Input) (*ExecutionGraph, error)
	// Name identifies the composer in reports ("mincost", "greedy", …).
	Name() string
}

// ErrNoFeasiblePlacement is returned when a request's rate requirements
// cannot be met with the available capacity.
var ErrNoFeasiblePlacement = errors.New("core: no feasible placement")

// ByName builds a composer from its report name: "mincost",
// "mincost-nosplit", "mincost-cpu", "greedy", "random", "lp" or "lp-cpu".
func ByName(name string) (Composer, error) {
	switch name {
	case "mincost":
		return &MinCost{}, nil
	case "mincost-nosplit":
		return &MinCost{NoSplit: true}, nil
	case "mincost-cpu":
		return &MinCost{UseCPU: true}, nil
	case "mincost-besteffort":
		return &MinCost{BestEffortFraction: 0.5}, nil
	case "greedy":
		return Greedy{}, nil
	case "random":
		return Random{}, nil
	case "lp":
		return LP{}, nil
	case "lp-cpu":
		return LP{UseCPU: true}, nil
	default:
		return nil, fmt.Errorf("core: unknown composer %q", name)
	}
}

// unitBits returns the bits per data unit for the request.
func unitBits(req spec.Request) float64 { return float64(req.UnitBytes) * 8 }

// maxRateUnits is the paper's r_max(n) = min(b_in, b_out) expressed in data
// units per second for the request's unit size, scaled by the planning
// headroom.
func maxRateUnits(rep monitor.Report, in Input) int {
	minBps := rep.AvailIn()
	if out := rep.AvailOut(); out < minBps {
		minBps = out
	}
	return int(minBps * in.headroom() / unitBits(in.Request))
}

// capTracker tracks remaining per-host capacity across the substreams of
// one composition, mirroring the "update the node capacities" step of
// Algorithm 1. Bandwidth is tracked in data units/sec; when CPU tracking
// is seeded (the multi-resource extension), remaining CPU fractions are
// tracked alongside and a component's capacity is the minimum over both
// resource classes.
type capTracker struct {
	remaining map[overlay.ID]int
	cpuFrac   map[overlay.ID]float64
	speed     map[overlay.ID]float64
}

func newCapTracker() *capTracker {
	return &capTracker{
		remaining: make(map[overlay.ID]int),
		cpuFrac:   make(map[overlay.ID]float64),
		speed:     make(map[overlay.ID]float64),
	}
}

// seed records a host's initial bandwidth capacity the first time it is
// seen.
func (c *capTracker) seed(id overlay.ID, units int) {
	if _, ok := c.remaining[id]; !ok {
		if units < 0 {
			units = 0
		}
		c.remaining[id] = units
	}
}

// seedCPU records a host's CPU speed factor and available CPU fraction.
func (c *capTracker) seedCPU(id overlay.ID, speed, availFrac float64) {
	if _, ok := c.speed[id]; ok || speed <= 0 {
		return
	}
	if availFrac < 0 {
		availFrac = 0
	}
	c.speed[id] = speed
	c.cpuFrac[id] = availFrac
}

func (c *capTracker) get(id overlay.ID) int { return c.remaining[id] }

// capacityFor returns the host's remaining capacity in units/sec for a
// component with the given per-unit reference processing cost: the
// minimum of the bandwidth budget and (when CPU is tracked) the CPU
// budget.
func (c *capTracker) capacityFor(id overlay.ID, procPerUnit time.Duration) int {
	units := c.remaining[id]
	speed, ok := c.speed[id]
	if !ok || procPerUnit <= 0 {
		return units
	}
	cpuUnits := int(c.cpuFrac[id] * speed * float64(time.Second) / float64(procPerUnit))
	if cpuUnits < units {
		return cpuUnits
	}
	return units
}

func (c *capTracker) consume(id overlay.ID, units int) {
	c.remaining[id] -= units
	if c.remaining[id] < 0 {
		c.remaining[id] = 0
	}
}

// consumeCPU deducts the CPU fraction a component consumes at the given
// rate.
func (c *capTracker) consumeCPU(id overlay.ID, units int, procPerUnit time.Duration) {
	speed, ok := c.speed[id]
	if !ok || procPerUnit <= 0 {
		return
	}
	c.cpuFrac[id] -= float64(units) * float64(procPerUnit) / (speed * float64(time.Second))
	if c.cpuFrac[id] < 0 {
		c.cpuFrac[id] = 0
	}
}

// Stages returns the service chain of substream l.
func stageServices(req spec.Request, l int) []string { return req.Substreams[l].Services }

// procFor returns the service's reference per-unit processing cost from
// the input catalog (0 when unknown, which disables CPU capping for it).
func procFor(in Input, svc string) time.Duration {
	if in.Catalog == nil {
		return 0
	}
	return in.Catalog[svc].ProcPerUnit
}

// CheckGraph validates the structural invariants of an execution graph:
// per-component flow conservation (inflow equals the placement's assigned
// rate, outflow equals inflow times the stage's rate ratio), source and
// destination totals matching the rate requirements, and edges only
// between adjacent stages. A nil catalog assumes every rate ratio is 1.
func CheckGraph(g *ExecutionGraph, catalog map[string]spec.ServiceDef) error {
	const tol = 1e-6
	for l, ss := range g.Request.Substreams {
		q := len(ss.Services)
		inflow := make(map[int]map[overlay.ID]float64)  // stage -> host -> in
		outflow := make(map[int]map[overlay.ID]float64) // stage -> host -> out
		add := func(m map[int]map[overlay.ID]float64, stage int, id overlay.ID, v float64) {
			if m[stage] == nil {
				m[stage] = make(map[overlay.ID]float64)
			}
			m[stage][id] += v
		}
		var srcOut, dstIn float64
		for _, e := range g.Edges {
			if e.Substream != l {
				continue
			}
			if e.ToStage != e.FromStage+1 {
				return fmt.Errorf("core: edge skips stages (%d -> %d)", e.FromStage, e.ToStage)
			}
			if e.Rate <= 0 {
				return fmt.Errorf("core: non-positive edge rate %g", e.Rate)
			}
			if e.FromStage == -1 {
				srcOut += e.Rate
			} else {
				add(outflow, e.FromStage, e.From.ID, e.Rate)
			}
			if e.ToStage == q {
				dstIn += e.Rate
			} else {
				add(inflow, e.ToStage, e.To.ID, e.Rate)
			}
		}
		want := float64(ss.Rate)
		for _, p := range g.Placements {
			if p.Substream != l {
				continue
			}
			if p.Rate <= 0 {
				return fmt.Errorf("core: non-positive placement rate %g", p.Rate)
			}
			in := inflow[p.Stage][p.Host.ID]
			if diff := in - p.Rate; diff > tol || diff < -tol {
				return fmt.Errorf("core: substream %d stage %d host %v: inflow %g != rate %g",
					l, p.Stage, p.Host.ID, in, p.Rate)
			}
			ratio := 1.0
			if catalog != nil {
				if def, ok := catalog[p.Service]; ok && def.RateRatio > 0 {
					ratio = def.RateRatio
				}
			}
			out := outflow[p.Stage][p.Host.ID]
			if diff := out - p.Rate*ratio; diff > tol || diff < -tol {
				return fmt.Errorf("core: substream %d stage %d host %v: outflow %g != %g",
					l, p.Stage, p.Host.ID, out, p.Rate*ratio)
			}
		}
		if diff := dstIn - want; diff > tol || diff < -tol {
			return fmt.Errorf("core: substream %d delivers %g, want %g", l, dstIn, want)
		}
		if srcOut <= 0 {
			return fmt.Errorf("core: substream %d has no source outflow", l)
		}
	}
	return nil
}
