// Package discovery implements RASC's distributed component discovery
// (§3.3 of the paper): service names hash to DHT keys under which provider
// host records are published, and a querying node retrieves the list of
// hosts offering a requested service.
package discovery

import (
	"encoding/json"
	"sort"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/dht"
	"rasc.dev/rasc/internal/overlay"
)

// ServiceKey maps a service name to its DHT key (the paper's SHA-1
// component ID).
func ServiceKey(service string) overlay.ID { return overlay.HashID("svc:" + service) }

// HostRecord is the value published under a service key.
type HostRecord struct {
	Node    overlay.NodeInfo `json:"node"`
	Service string           `json:"service"`
}

// View is a locally converged provider index — in practice the gossip
// membership view — consulted by Lookup before falling back to the DHT.
// Implementations return alive hosts announcing the service, sorted by ID.
type View interface {
	HostsFor(service string) []overlay.NodeInfo
}

// Directory is one node's view of the service registry.
type Directory struct {
	node    *overlay.Node
	store   *dht.Store
	clk     clock.Clock
	local   map[string]bool
	view    View
	refresh func() // cancels the running refresh loop
}

// New attaches a directory to an overlay node and its DHT store.
func New(node *overlay.Node, store *dht.Store, clk clock.Clock) *Directory {
	return &Directory{node: node, store: store, clk: clk, local: make(map[string]bool)}
}

// StartRefresh republishes this node's announcements every interval, so
// registrations migrate to new key roots as the ring changes (nodes that
// joined after the original Announce). Call StopRefresh to end the loop;
// deterministic simulations should leave refresh off so the event queue
// can drain.
func (d *Directory) StartRefresh(interval time.Duration) {
	d.StopRefresh()
	var tick func()
	tick = func() {
		for svc := range d.local {
			d.store.Put(ServiceKey(svc), d.record(svc))
		}
		d.refresh = d.clk.After(interval, tick)
	}
	d.refresh = d.clk.After(interval, tick)
}

// StopRefresh cancels a running refresh loop.
func (d *Directory) StopRefresh() {
	if d.refresh != nil {
		d.refresh()
		d.refresh = nil
	}
}

// Announce publishes this node as a provider of service.
func (d *Directory) Announce(service string) {
	d.local[service] = true
	d.store.Put(ServiceKey(service), d.record(service))
}

// Withdraw removes this node from the provider set of service.
func (d *Directory) Withdraw(service string) {
	delete(d.local, service)
	d.store.Remove(ServiceKey(service), d.record(service))
}

// Offers reports whether this node announced the service.
func (d *Directory) Offers(service string) bool { return d.local[service] }

// LocalServices lists the services this node announced, sorted.
func (d *Directory) LocalServices() []string {
	out := make([]string, 0, len(d.local))
	for s := range d.local {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func (d *Directory) record(service string) []byte {
	b, _ := json.Marshal(HostRecord{Node: d.node.Info(), Service: service})
	return b
}

// SetView installs a converged local view as the primary lookup source.
// The DHT remains the bootstrap and fallback path: it answers whenever the
// view is absent or has no providers for the service yet (e.g. before
// digests have disseminated). Pass nil to restore pure-DHT lookups.
func (d *Directory) SetView(v View) { d.view = v }

// Lookup resolves the provider set for service. The callback runs exactly
// once with the hosts sorted by ID for determinism. With a view installed
// (SetView) the answer comes synchronously from the local converged state
// — no DHT round trips — whenever the view knows at least one provider.
func (d *Directory) Lookup(service string, timeout time.Duration, cb func([]overlay.NodeInfo, error)) {
	if d.view != nil {
		if hosts := d.view.HostsFor(service); len(hosts) > 0 {
			cb(hosts, nil)
			return
		}
	}
	d.store.Get(ServiceKey(service), timeout, func(values [][]byte, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		var hosts []overlay.NodeInfo
		for _, v := range values {
			var rec HostRecord
			if json.Unmarshal(v, &rec) != nil || rec.Service != service {
				continue
			}
			hosts = append(hosts, rec.Node)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i].ID.Cmp(hosts[j].ID) < 0 })
		cb(hosts, nil)
	})
}

// LookupMany resolves several services and calls cb once all lookups have
// finished. Missing services appear with empty host lists; the first error
// (if any) is reported.
func (d *Directory) LookupMany(services []string, timeout time.Duration, cb func(map[string][]overlay.NodeInfo, error)) {
	results := make(map[string][]overlay.NodeInfo, len(services))
	remaining := len(services)
	if remaining == 0 {
		cb(results, nil)
		return
	}
	var firstErr error
	for _, svc := range services {
		svc := svc
		d.Lookup(svc, timeout, func(hosts []overlay.NodeInfo, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			results[svc] = hosts
			remaining--
			if remaining == 0 {
				cb(results, firstErr)
			}
		})
	}
}
