package monitor

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRateEstimatorSteadyRate(t *testing.T) {
	r := NewRateEstimator(16)
	// 10 units/sec: one every 100ms.
	for i := 0; i < 32; i++ {
		r.Observe(time.Duration(i) * 100 * time.Millisecond)
	}
	if got := r.Rate(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("Rate = %g, want 10", got)
	}
	if got := r.Period(); got != 100*time.Millisecond {
		t.Fatalf("Period = %v, want 100ms", got)
	}
}

func TestRateEstimatorWindowForgets(t *testing.T) {
	r := NewRateEstimator(8)
	// Slow phase: 1 unit/sec.
	for i := 0; i < 20; i++ {
		r.Observe(time.Duration(i) * time.Second)
	}
	// Fast phase: 100 units/sec; after 8 observations the slow phase is
	// fully evicted.
	base := 20 * time.Second
	for i := 0; i < 8; i++ {
		r.Observe(base + time.Duration(i)*10*time.Millisecond)
	}
	if got := r.Rate(); math.Abs(got-100) > 1e-6 {
		t.Fatalf("Rate = %g, want 100 after window turnover", got)
	}
}

func TestRateEstimatorDegenerate(t *testing.T) {
	r := NewRateEstimator(4)
	if r.Rate() != 0 || r.Period() != 0 {
		t.Fatal("empty estimator must report 0")
	}
	r.Observe(time.Second)
	if r.Rate() != 0 {
		t.Fatal("single sample must report 0")
	}
	r.Observe(time.Second) // identical timestamps: zero span
	if r.Rate() != 0 {
		t.Fatal("zero span must report 0, not Inf")
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
}

func TestRatioWindowBasics(t *testing.T) {
	w := NewRatioWindow(4)
	if w.Ratio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
	w.Observe(true)
	w.Observe(false)
	if got := w.Ratio(); got != 0.5 {
		t.Fatalf("Ratio = %g, want 0.5", got)
	}
	// Fill with false; trues fall out of the window.
	for i := 0; i < 4; i++ {
		w.Observe(false)
	}
	if got := w.Ratio(); got != 0 {
		t.Fatalf("Ratio = %g after eviction, want 0", got)
	}
	if w.Count() != 4 {
		t.Fatalf("Count = %d, want 4", w.Count())
	}
}

// Property: RatioWindow matches a brute-force computation over the last h
// observations.
func TestRatioWindowMatchesBruteForce(t *testing.T) {
	prop := func(obs []bool) bool {
		const h = 7
		w := NewRatioWindow(h)
		for _, v := range obs {
			w.Observe(v)
		}
		start := len(obs) - h
		if start < 0 {
			start = 0
		}
		trues, n := 0, 0
		for _, v := range obs[start:] {
			n++
			if v {
				trues++
			}
		}
		want := 0.0
		if n > 0 {
			want = float64(trues) / float64(n)
		}
		return math.Abs(w.Ratio()-want) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationWindowMean(t *testing.T) {
	w := NewDurationWindow(3)
	if w.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	w.Observe(10 * time.Millisecond)
	w.Observe(20 * time.Millisecond)
	w.Observe(30 * time.Millisecond)
	if got := w.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v, want 20ms", got)
	}
	w.Observe(40 * time.Millisecond) // evicts 10ms
	if got := w.Mean(); got != 30*time.Millisecond {
		t.Fatalf("Mean = %v, want 30ms", got)
	}
}

func TestByteRateMeter(t *testing.T) {
	m := NewByteRateMeter(16)
	if m.Bps(0) != 0 {
		t.Fatal("empty meter must report 0")
	}
	// 1250 bytes every 100ms = 100 kbit/s.
	var now time.Duration
	for i := 0; i < 32; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.Observe(now, 1250)
	}
	if got := m.Bps(now); math.Abs(got-100_000) > 1 {
		t.Fatalf("Bps = %g, want 100000", got)
	}
}

func TestByteRateMeterZeroSpan(t *testing.T) {
	m := NewByteRateMeter(4)
	m.Observe(time.Second, 100)
	m.Observe(time.Second, 100)
	if got := m.Bps(time.Second); got != 0 {
		t.Fatalf("Bps = %g for zero span, want 0", got)
	}
}

func TestByteRateMeterDecaysWhenIdle(t *testing.T) {
	m := NewByteRateMeter(16)
	var now time.Duration
	for i := 0; i < 32; i++ {
		now = time.Duration(i) * 100 * time.Millisecond
		m.Observe(now, 1250)
	}
	busy := m.Bps(now)
	// Ten seconds of silence must decay the estimate dramatically.
	idle := m.Bps(now + 10*time.Second)
	if idle > busy/4 {
		t.Fatalf("stale meter did not decay: busy %g, idle %g", busy, idle)
	}
}

func TestWindowSizeClamps(t *testing.T) {
	// Constructors must not panic or misbehave on tiny sizes.
	NewRateEstimator(0).Observe(time.Second)
	NewRatioWindow(0).Observe(true)
	NewDurationWindow(-1).Observe(time.Second)
	NewByteRateMeter(1).Observe(time.Second, 1)
}
