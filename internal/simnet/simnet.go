// Package simnet assembles a complete simulated overlay deployment — a
// discrete-event network, transport endpoints and joined Pastry nodes — the
// common substrate for tests, examples and the experiment harness.
package simnet

import (
	"fmt"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/transport"
)

// Options configures a cluster.
type Options struct {
	// N is the number of nodes. Required.
	N int
	// Seed drives every random choice in the deployment.
	Seed int64
	// Topology, when set, supplies access-link capacities and latencies;
	// otherwise a PlanetLab-like topology is generated from the seed.
	Topology *netsim.Topology
	// Jitter is the per-message random extra latency (default 5ms).
	Jitter time.Duration
	// LossRate is the transport-level message loss probability.
	LossRate float64
	// MaxLinkBacklog bounds per-link FIFO backlog (0 = unbounded); see
	// netsim.Config.
	MaxLinkBacklog time.Duration
	// CongestionJitter adds backlog-proportional jitter; see
	// netsim.Config.
	CongestionJitter float64
	// ProximityBlind disables Pastry's proximity neighbor selection
	// (enabled by default: contested routing-table slots go to the
	// lower-RTT peer).
	ProximityBlind bool
	// WrapEndpoint, when set, wraps each node's transport endpoint before
	// the overlay node is built — fault-injection (transport.Chaos) or
	// other interception layers hook in here. i is the node index; clk is
	// the cluster's virtual clock, so wrappers schedule on simulated time.
	WrapEndpoint func(i int, ep transport.Endpoint, clk clock.Clock) transport.Endpoint
	// ConfigureNode, when set, runs on each node after construction and
	// before any joins — the hook for pre-join identity such as
	// overlay.Node.SetCluster, which must be set before the node's info
	// spreads through the overlay.
	ConfigureNode func(i int, n *overlay.Node)
}

// Cluster is a fully joined simulated overlay.
type Cluster struct {
	Sim       *netsim.Simulator
	Net       *netsim.Network
	Mem       *transport.MemNetwork
	Endpoints []transport.Endpoint
	Clock     clock.Sim
	Topology  *netsim.Topology
	Nodes     []*overlay.Node
	NetIDs    []netsim.NodeID
}

// New builds N nodes, joins them all through node 0 and runs the simulator
// until the overlay has quiesced.
func New(opts Options) *Cluster {
	if opts.N <= 0 {
		panic("simnet: Options.N must be positive")
	}
	if opts.Jitter == 0 {
		opts.Jitter = 5 * time.Millisecond
	}
	topo := opts.Topology
	if topo == nil {
		topo = netsim.PlanetLabTopology(netsim.TopologyConfig{Nodes: opts.N}, opts.Seed)
	}
	sim := netsim.New(opts.Seed)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency:          topo.LatencyFunc(),
		Jitter:           opts.Jitter,
		LossRate:         opts.LossRate,
		MaxLinkBacklog:   opts.MaxLinkBacklog,
		CongestionJitter: opts.CongestionJitter,
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	c := &Cluster{Sim: sim, Net: nw, Mem: mem, Clock: clk, Topology: topo}
	for i := 0; i < opts.N; i++ {
		netID := nw.AddNode(topo.UpBps[i], topo.DownBps[i])
		var ep transport.Endpoint = mem.Endpoint(netID)
		if opts.WrapEndpoint != nil {
			ep = opts.WrapEndpoint(i, ep, clk)
		}
		c.Endpoints = append(c.Endpoints, ep)
		id := overlay.HashID(fmt.Sprintf("rasc-node-%d-%d", opts.Seed, i))
		c.NetIDs = append(c.NetIDs, netID)
		node := overlay.NewNode(id, ep, clk)
		node.ProximityAware = !opts.ProximityBlind
		if opts.ConfigureNode != nil {
			opts.ConfigureNode(i, node)
		}
		c.Nodes = append(c.Nodes, node)
	}
	c.Nodes[0].Bootstrap()
	for i := 1; i < opts.N; i++ {
		c.Nodes[i].Join(c.Nodes[0].Addr(), nil)
		sim.Run()
	}
	for _, n := range c.Nodes {
		n.Stabilize()
	}
	sim.Run()
	return c
}

// Root returns the node whose ID is closest to key.
func (c *Cluster) Root(key overlay.ID) *overlay.Node {
	best := c.Nodes[0]
	for _, n := range c.Nodes[1:] {
		if overlay.Closer(key, n.ID(), best.ID()) {
			best = n
		}
	}
	return best
}

// Index returns the position of the node with the given overlay ID, or -1.
func (c *Cluster) Index(id overlay.ID) int {
	for i, n := range c.Nodes {
		if n.ID() == id {
			return i
		}
	}
	return -1
}
