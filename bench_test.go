package rasc

// Benchmark harness regenerating every figure of the paper's evaluation
// (§4.2, Figures 6–11) plus micro-benchmarks of the substrates and
// ablation benches for the design choices called out in DESIGN.md.
//
// Figure benches run a reduced sweep (one seed per iteration, all four
// rates, all three composers) and report the headline metric as a custom
// benchmark unit; run `go test -bench Figure -benchtime 1x -v` to also see
// the full tables, or use cmd/rasc-bench for the full five-seed sweep.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/experiment"
	"rasc.dev/rasc/internal/mincostflow"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/sched"
	"rasc.dev/rasc/internal/simnet"
	"rasc.dev/rasc/internal/simplex"
	"rasc.dev/rasc/internal/spec"
)

// benchSweep runs a one-seed sweep and returns the results.
func benchSweep(b *testing.B, seed int64, composers []string) *experiment.Results {
	b.Helper()
	cfg := experiment.Config{
		Seeds:      []int64{seed},
		Composers:  composers,
		MeasureFor: 20 * time.Second,
	}
	res, err := experiment.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// figureBench runs the sweep b.N times and reports the figure's mincost
// value at 200 Kbps as the headline metric.
func figureBench(b *testing.B, fig int, unit string) {
	var last *experiment.Results
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, int64(i+1), nil)
	}
	t, err := last.Figure(fig)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(t.Get("mincost", 200), unit)
	if testing.Verbose() {
		b.Logf("\n%s", t)
	}
}

func BenchmarkFigure6ComposedRequests(b *testing.B) { figureBench(b, 6, "requests@200k") }
func BenchmarkFigure7EndToEndDelay(b *testing.B)    { figureBench(b, 7, "ms@200k") }
func BenchmarkFigure8DeliveredFraction(b *testing.B) {
	figureBench(b, 8, "frac@200k")
}
func BenchmarkFigure9TimelyFraction(b *testing.B) { figureBench(b, 9, "frac@200k") }
func BenchmarkFigure10OutOfOrder(b *testing.B)    { figureBench(b, 10, "frac@200k") }
func BenchmarkFigure11Jitter(b *testing.B)        { figureBench(b, 11, "ms@200k") }

// --- Ablation benches (design choices from DESIGN.md §5) ---

// BenchmarkAblationNoSplit isolates the value of rate splitting: RASC's
// composer restricted to one instance per service, same workload.
func BenchmarkAblationNoSplit(b *testing.B) {
	var last *experiment.Results
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, int64(i+1), []string{"mincost", "mincost-nosplit"})
	}
	t, err := last.Figure(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(t.Get("mincost", 200), "split@200k")
	b.ReportMetric(t.Get("mincost-nosplit", 200), "nosplit@200k")
	if testing.Verbose() {
		b.Logf("\n%s", t)
	}
}

// BenchmarkAblationFIFO isolates the laxity scheduler: the full system
// with FIFO node queues instead of least-laxity-first.
func BenchmarkAblationFIFO(b *testing.B) {
	var lastLLF, lastFIFO float64
	for i := 0; i < b.N; i++ {
		for _, policy := range []string{"llf", "fifo"} {
			cfg := experiment.Config{
				Seeds:       []int64{int64(i + 1)},
				Rates:       []int{15},
				Composers:   []string{"mincost"},
				SchedPolicy: policy,
				MeasureFor:  20 * time.Second,
			}
			res, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			t, _ := res.Figure(9)
			if policy == "llf" {
				lastLLF = t.Get("mincost", 150)
			} else {
				lastFIFO = t.Get("mincost", 150)
			}
		}
	}
	b.ReportMetric(lastLLF, "timely-llf")
	b.ReportMetric(lastFIFO, "timely-fifo")
}

// BenchmarkAblationStaleStats isolates the value of continuous monitoring
// (§3.2: "it is essential to use feedback"): RASC composing against
// monitoring reports cached for 60 virtual seconds vs fresh reports.
func BenchmarkAblationStaleStats(b *testing.B) {
	var fresh, stale float64
	for i := 0; i < b.N; i++ {
		for _, age := range []time.Duration{0, 60 * time.Second} {
			cfg := experiment.Config{
				Seeds:       []int64{int64(i + 1)},
				Rates:       []int{15},
				Composers:   []string{"mincost"},
				StatsMaxAge: age,
				MeasureFor:  20 * time.Second,
			}
			res, err := experiment.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			t, _ := res.Figure(8)
			if age == 0 {
				fresh = t.Get("mincost", 150)
			} else {
				stale = t.Get("mincost", 150)
			}
		}
	}
	b.ReportMetric(fresh, "delivered-fresh")
	b.ReportMetric(stale, "delivered-stale60s")
}

// BenchmarkMultiResource isolates the multi-resource extension (the
// paper's future work): a CPU-bound workload on heterogeneous CPUs, the
// bandwidth-only composer vs. the CPU-aware one, comparing delivered
// fractions.
func BenchmarkMultiResource(b *testing.B) {
	run := func(composerName string, seed int64) float64 {
		catalog := map[string]spec.ServiceDef{
			"crunch": {Name: "crunch", ProcPerUnit: 40 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
		}
		sys := deploy.NewSystem(deploy.SystemOptions{
			Nodes:            10,
			Seed:             seed,
			Catalog:          catalog,
			ServiceNames:     []string{"crunch"},
			ServicesPerNode:  1,
			HeterogeneousCPU: true,
			ProcJitter:       0.1,
		})
		composer, err := core.ByName(composerName)
		if err != nil {
			b.Fatal(err)
		}
		// A pilot stream warms the CPU monitors, then the heavy one.
		for i, r := range []struct {
			id   string
			rate int
		}{{"pilot", 4}, {"heavy", 20}} {
			done := false
			req := spec.Request{
				ID:         r.id,
				UnitBytes:  1250,
				Substreams: []spec.Substream{{Services: []string{"crunch"}, Rate: r.rate}},
			}
			sys.Engines[i].Submit(req, composer, 10*time.Second, func(*core.ExecutionGraph, error) { done = true })
			for j := 0; j < 100 && !done; j++ {
				sys.Sim.RunUntil(sys.Sim.Now() + 100*time.Millisecond)
			}
			sys.Sim.RunUntil(sys.Sim.Now() + 10*time.Second)
		}
		sink := sys.Engines[1].Sink("heavy", 0)
		emitted := sys.Engines[1].EmittedUnits("heavy", 0)
		if sink == nil || emitted == 0 {
			return 0
		}
		return float64(sink.Received) / float64(emitted)
	}
	var plain, cpu float64
	for i := 0; i < b.N; i++ {
		plain = run("mincost", int64(i+1))
		cpu = run("mincost-cpu", int64(i+1))
	}
	b.ReportMetric(plain, "delivered-bw-only")
	b.ReportMetric(cpu, "delivered-cpu-aware")
}

// BenchmarkComposeLP compares the LP composer against the flow composer
// on the same sweep (ratio-1 services: both must deliver the requirement;
// LP additionally enforces exact per-node budgets).
func BenchmarkComposeLP(b *testing.B) {
	var last *experiment.Results
	for i := 0; i < b.N; i++ {
		last = benchSweep(b, int64(i+1), []string{"mincost", "lp"})
	}
	t, err := last.Figure(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(t.Get("mincost", 150), "flow@150k")
	b.ReportMetric(t.Get("lp", 150), "lp@150k")
}

// --- Substrate micro-benchmarks ---

func BenchmarkMinCostFlowSolve(b *testing.B) {
	build := func() (*mincostflow.Graph, int, int) {
		g := mincostflow.NewGraph(2 + 3*16*2)
		next := 2
		prevOuts := []int{0}
		for stage := 0; stage < 3; stage++ {
			var outs []int
			for k := 0; k < 16; k++ {
				in, out := next, next+1
				next += 2
				g.AddArc(in, out, int64(10+k), int64(k*1000))
				for _, p := range prevOuts {
					g.AddArc(p, in, 1<<30, 0)
				}
				outs = append(outs, out)
			}
			prevOuts = outs
		}
		for _, p := range prevOuts {
			g.AddArc(p, 1, 1<<30, 0)
		}
		return g, 0, 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, s, t := build()
		if _, err := g.MinCostFlow(s, t, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := simplex.NewMinimize(make([]float64, 40))
		row := make([]float64, 40)
		for j := range row {
			row[j] = 1
		}
		p.AddConstraint(row, simplex.EQ, 100)
		for j := 0; j < 40; j++ {
			r := make([]float64, 40)
			r[j] = 1
			p.AddConstraint(r, simplex.LE, float64(3+j%7))
		}
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinCostCompose(b *testing.B) {
	in := benchComposeInput(16, 3, 20)
	m := &core.MinCost{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compose(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPCompose(b *testing.B) {
	in := benchComposeInput(8, 2, 10)
	m := core.LP{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Compose(in); err != nil {
			b.Fatal(err)
		}
	}
}

func benchComposeInput(hosts, stages, rate int) core.Input {
	mk := func(i int) overlay.NodeInfo {
		return overlay.NodeInfo{ID: overlay.HashID(fmt.Sprintf("h%d", i)), Addr: "sim://x"}
	}
	chain := make([]string, stages)
	for j := range chain {
		chain[j] = fmt.Sprintf("s%d", j)
	}
	in := core.Input{
		Request: spec.Request{
			ID: "bench", UnitBytes: 1250,
			Substreams: []spec.Substream{{Services: chain, Rate: rate}},
		},
		Source:       mk(1000),
		Dest:         mk(1001),
		SourceReport: monitor.Report{InBpsCap: 1e8, OutBpsCap: 1e8},
		DestReport:   monitor.Report{InBpsCap: 1e8, OutBpsCap: 1e8},
		Candidates:   map[string][]core.Candidate{},
		Rand:         rand.New(rand.NewSource(1)),
	}
	var cands []core.Candidate
	for h := 0; h < hosts; h++ {
		cands = append(cands, core.Candidate{
			Info:   mk(h),
			Report: monitor.Report{InBpsCap: 2e5, OutBpsCap: 2e5, DropRatio: float64(h%5) * 0.01},
		})
	}
	for _, svc := range chain {
		in.Candidates[svc] = cands
	}
	return in
}

func BenchmarkPastryRoute(b *testing.B) {
	c := simnet.New(simnet.Options{N: 32, Seed: 1})
	for _, n := range c.Nodes {
		n.Register("bench", func(overlay.ID, overlay.NodeInfo, []byte) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := overlay.HashID(fmt.Sprintf("bench-key-%d", i))
		c.Nodes[i%32].Route(key, "bench", nil)
		c.Sim.Run()
	}
}

func BenchmarkSchedulerLLF(b *testing.B) {
	q := sched.NewLLF(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * time.Microsecond
		q.Push(&sched.Unit{
			ComponentKey: "c",
			Deadline:     now + time.Duration(i%100)*time.Millisecond,
			ExecTime:     time.Millisecond,
			Enqueued:     now,
		})
		if i%4 == 3 {
			q.Next(now)
		}
	}
}

func BenchmarkSimulatorEvents(b *testing.B) {
	s := netsim.New(1)
	b.ResetTimer()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.Schedule(time.Microsecond, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run()
}

func BenchmarkEndToEndStreaming(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSimulated(Options{Nodes: 16, Seed: int64(i + 1)})
		req := Request{
			ID:         "bench",
			UnitBytes:  1250,
			Substreams: []Substream{{Services: []string{"filter", "transcode"}, Rate: 10}},
		}
		comp, err := sys.Submit(0, req, ComposerMinCost)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(10 * time.Second)
		if comp.Stats().Received == 0 {
			b.Fatal("nothing delivered")
		}
	}
}
