package control

import (
	"time"

	"rasc.dev/rasc/internal/overlay"
)

// Gate names reported to the Observer: why an event did not launch a
// reallocation immediately. GateNone means the event cleared every gate
// and is launching now.
const (
	GateNone       = ""
	GateHysteresis = "hysteresis"
	GateInflight   = "inflight"
	GateBackoff    = "backoff"
	GateCooldown   = "cooldown"
	GateLimit      = "limit"
)

// Observer receives the controller's decision-plane callbacks: every
// event's fate at the gates, every launch and every outcome. It exists so
// the tracing layer can reconstruct causal chains without the controller
// depending on it; a nil Observer costs nothing.
//
// All callbacks run in the controller's execution context (the engine
// loop), in causal order for any one application.
type Observer interface {
	// OnEventGate reports an event's fate for one application: gate
	// GateNone means it proceeds to launch; any other gate names why it
	// was held, and latched tells whether the work was remembered
	// (edge-triggered events) or dropped (level-triggered ones).
	// Hysteresis suppressions of host-scoped events arrive with app ""
	// — no application is resolved until the strike threshold trips.
	OnEventGate(app string, ev Event, gate string, latched bool)
	// OnLaunch reports a reallocation starting: the merged work's mode
	// ("incremental" or "full"), the degraded hosts being routed away
	// from (sorted) and the affected substreams (nil = all).
	OnLaunch(app string, mode string, degraded []overlay.ID, substreams []int, upgrade bool)
	// OnOutcome reports a completed reallocation. fellBack marks an
	// incremental solve that was infeasible and went through the full
	// path; backoff is the retry delay armed after a failure (0 on
	// success).
	OnOutcome(app string, mode string, fellBack bool, err error, backoff time.Duration)
}

// observeGate forwards one gate verdict to the configured observer.
func (c *Controller) observeGate(app string, ev Event, gate string, latched bool) {
	if c.cfg.Observer != nil {
		c.cfg.Observer.OnEventGate(app, ev, gate, latched)
	}
}

// observeLaunch forwards one launch to the configured observer.
func (c *Controller) observeLaunch(app, mode string, w *work) {
	if c.cfg.Observer == nil {
		return
	}
	var degraded []overlay.ID
	for id := range w.degraded {
		degraded = append(degraded, id)
	}
	for i := 1; i < len(degraded); i++ {
		for j := i; j > 0 && degraded[j].Cmp(degraded[j-1]) < 0; j-- {
			degraded[j], degraded[j-1] = degraded[j-1], degraded[j]
		}
	}
	c.cfg.Observer.OnLaunch(app, mode, degraded, w.substreamList(), w.upgrade)
}
