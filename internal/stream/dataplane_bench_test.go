package stream

import (
	"encoding/json"
	"testing"
	"time"
)

func benchUnits(n int) []pendingUnit {
	units := make([]pendingUnit, n)
	for i := range units {
		units[i] = pendingUnit{msg: dataMsg{
			Req:       "bench-app",
			Substream: i % 4,
			Stage:     1,
			Seq:       int64(i),
			Created:   time.Duration(i) * time.Millisecond,
			Size:      1250,
		}}
	}
	return units
}

// BenchmarkBatchEncode measures the binary codec against the per-unit JSON
// encoding it replaces (32 units per op for both).
func BenchmarkBatchEncode(b *testing.B) {
	units := benchUnits(32)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = appendBatchUnits(buf[:0], units)
	}
}

func BenchmarkLegacyJSONEncode(b *testing.B) {
	units := benchUnits(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range units {
			if _, err := json.Marshal(units[j].msg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchDecode measures the receive side with the pooled scratch
// the engine uses.
func BenchmarkBatchDecode(b *testing.B) {
	units := benchUnits(32)
	payload := appendBatchUnits(nil, units)
	scratch := make([]dataMsg, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if scratch = decodeBatchUnits(payload, scratch[:0]); scratch == nil {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkLegacyJSONDecode(b *testing.B) {
	units := benchUnits(32)
	bodies := make([][]byte, len(units))
	for i := range units {
		body, err := json.Marshal(units[i].msg)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			var m dataMsg
			if err := json.Unmarshal(body, &m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkUnitPool pins the pooled unit path's allocation-free steady
// state (get, touch, put).
func BenchmarkUnitPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u, task := getUnit()
		task.msg.Seq = int64(i)
		putUnit(u)
	}
}
