package core

import "rasc.dev/rasc/internal/spec"

// Per-cluster composition helpers: a federated deployment runs
// MinCost.Compose / ComposeDelta over a cluster-local Input, and a
// federation coordinator stitches the per-cluster execution graphs
// together at the boundary. These helpers carve the local view out of a
// flat Input and merge remotely composed fragments back, substream by
// substream.

// FilterCluster returns in with the candidate lists restricted to hosts
// of the given cluster. An empty cluster (flat deployment) returns in
// untouched — including the shared Candidates map — so the non-federated
// path stays bit-identical to the legacy composer. Service keys whose
// candidate lists empty out are dropped, so composers report "no hosts
// offer X" exactly as they would in a deployment that never announced X.
func FilterCluster(in Input, cluster string) Input {
	if cluster == "" {
		return in
	}
	local := make(map[string][]Candidate, len(in.Candidates))
	for svc, cands := range in.Candidates {
		keep := make([]Candidate, 0, len(cands))
		for _, c := range cands {
			if c.Info.Cluster == cluster {
				keep = append(keep, c)
			}
		}
		if len(keep) > 0 {
			local[svc] = keep
		}
	}
	in.Candidates = local
	return in
}

// SubstreamInput narrows in to substream l alone: the returned Input's
// request carries a deep-copied single-substream slice, so composers that
// adjust rates (best-effort admission) never touch the caller's request.
func SubstreamInput(in Input, l int) Input {
	sub := in.Request.Substreams[l]
	in.Request.Substreams = []spec.Substream{sub}
	return in
}

// MergeFragment appends a single-substream fragment graph (composed via
// SubstreamInput, substream index 0) into dst as substream l, re-indexing
// the fragment's placements and edges. The fragment's possibly-adjusted
// rate (best-effort admission) is copied into dst's request so CheckGraph
// and the data plane agree on the admitted rate.
func MergeFragment(dst *ExecutionGraph, frag *ExecutionGraph, l int) {
	dst.Request.Substreams[l].Rate = frag.Request.Substreams[0].Rate
	for _, p := range frag.Placements {
		p.Substream = l
		dst.Placements = append(dst.Placements, p)
	}
	for _, e := range frag.Edges {
		e.Substream = l
		dst.Edges = append(dst.Edges, e)
	}
}
