package overlay

import (
	"sort"

	"rasc.dev/rasc/internal/transport"
)

// NodeInfo is a reference to a remote overlay node.
type NodeInfo struct {
	ID   ID             `json:"id"`
	Addr transport.Addr `json:"addr"`
	// Cluster names the federation cluster the node belongs to. Empty in
	// flat (non-federated) deployments, so their wire and JSON encodings
	// are unchanged.
	Cluster string `json:"cluster,omitempty"`
}

// routingTable is the classic Pastry table: row r holds nodes that share a
// prefix of length r with the owner and differ in digit r.
type routingTable struct {
	owner ID
	rows  [NumDigits][DigitBase]*NodeInfo
}

// add inserts info if its slot is empty. It returns true if the table
// changed. Existing entries are kept (proximity-blind: first writer wins).
func (t *routingTable) add(info NodeInfo) bool {
	if info.ID == t.owner {
		return false
	}
	row := t.owner.CommonPrefixLen(info.ID)
	col := info.ID.Digit(row)
	if t.rows[row][col] != nil {
		return false
	}
	cp := info
	t.rows[row][col] = &cp
	return true
}

// lookup returns the entry for the given (row, digit), or nil.
func (t *routingTable) lookup(row, digit int) *NodeInfo { return t.rows[row][digit] }

// replace overwrites the slot owning info's prefix with info.
func (t *routingTable) replace(info NodeInfo) {
	if info.ID == t.owner {
		return
	}
	row := t.owner.CommonPrefixLen(info.ID)
	col := info.ID.Digit(row)
	cp := info
	t.rows[row][col] = &cp
}

// slotFor returns the (row, col) a peer belongs in.
func (t *routingTable) slotFor(id ID) (row, col int) {
	row = t.owner.CommonPrefixLen(id)
	if row == NumDigits {
		return NumDigits - 1, 0 // owner itself; caller filters
	}
	return row, id.Digit(row)
}

// remove deletes any entry with the given ID; it returns true if found.
func (t *routingTable) remove(id ID) bool {
	row := t.owner.CommonPrefixLen(id)
	if row == NumDigits {
		return false
	}
	col := id.Digit(row)
	if e := t.rows[row][col]; e != nil && e.ID == id {
		t.rows[row][col] = nil
		return true
	}
	return false
}

// row returns a copy of the entries at row r (used by the join protocol).
func (t *routingTable) row(r int) []NodeInfo {
	var out []NodeInfo
	for _, e := range t.rows[r] {
		if e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// all returns every entry in the table.
func (t *routingTable) all() []NodeInfo {
	var out []NodeInfo
	for r := range t.rows {
		for _, e := range t.rows[r] {
			if e != nil {
				out = append(out, *e)
			}
		}
	}
	return out
}

// size counts populated slots.
func (t *routingTable) size() int {
	n := 0
	for r := range t.rows {
		for _, e := range t.rows[r] {
			if e != nil {
				n++
			}
		}
	}
	return n
}

// leafSet holds the owner's nearest ring neighbors: up to half successors
// (clockwise) and half predecessors (counter-clockwise).
type leafSet struct {
	owner ID
	half  int
	cw    []NodeInfo // sorted by clockwise distance from owner, ascending
	ccw   []NodeInfo // sorted by counter-clockwise distance, ascending
}

func newLeafSet(owner ID, size int) *leafSet {
	return &leafSet{owner: owner, half: size / 2}
}

// add inserts info into the appropriate side if it is among the closest
// `half` nodes on that side. Returns true if the set changed.
func (l *leafSet) add(info NodeInfo) bool {
	if info.ID == l.owner {
		return false
	}
	changed := false
	if l.insert(&l.cw, info, func(x ID) ID { return CWDist(l.owner, x) }) {
		changed = true
	}
	if l.insert(&l.ccw, info, func(x ID) ID { return CWDist(x, l.owner) }) {
		changed = true
	}
	return changed
}

func (l *leafSet) insert(side *[]NodeInfo, info NodeInfo, dist func(ID) ID) bool {
	for _, e := range *side {
		if e.ID == info.ID {
			return false
		}
	}
	s := append(*side, info)
	sort.Slice(s, func(i, j int) bool {
		return dist(s[i].ID).Cmp(dist(s[j].ID)) < 0
	})
	if len(s) > l.half {
		s = s[:l.half]
	}
	*side = s
	// Report change only if info survived the trim.
	for _, e := range *side {
		if e.ID == info.ID {
			return true
		}
	}
	return false
}

// remove deletes id from both sides; returns true if present.
func (l *leafSet) remove(id ID) bool {
	removed := false
	filter := func(side []NodeInfo) []NodeInfo {
		out := side[:0]
		for _, e := range side {
			if e.ID == id {
				removed = true
				continue
			}
			out = append(out, e)
		}
		return out
	}
	l.cw = filter(l.cw)
	l.ccw = filter(l.ccw)
	return removed
}

// covers reports whether key falls inside the leaf set's ring segment
// [furthest ccw, furthest cw]. When the two sides overlap (the same node
// appears on both), the known nodes span the whole ring and every key is
// covered.
func (l *leafSet) covers(key ID) bool {
	if len(l.cw) == 0 && len(l.ccw) == 0 {
		return true
	}
	for _, a := range l.cw {
		for _, b := range l.ccw {
			if a.ID == b.ID {
				return true
			}
		}
	}
	lo := l.owner
	if len(l.ccw) > 0 {
		lo = l.ccw[len(l.ccw)-1].ID
	}
	hi := l.owner
	if len(l.cw) > 0 {
		hi = l.cw[len(l.cw)-1].ID
	}
	return CWDist(lo, key).Cmp(CWDist(lo, hi)) <= 0
}

// closest returns the member (or the owner, flagged by ok=false) closest to
// key among owner ∪ leafset.
func (l *leafSet) closest(key ID) (best NodeInfo, ok bool) {
	bestID := l.owner
	for _, e := range l.all() {
		if Closer(key, e.ID, bestID) {
			bestID = e.ID
			best = e
			ok = true
		}
	}
	return best, ok
}

// all returns the members of both sides, deduplicated.
func (l *leafSet) all() []NodeInfo {
	seen := make(map[ID]bool, len(l.cw)+len(l.ccw))
	var out []NodeInfo
	for _, e := range l.cw {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	for _, e := range l.ccw {
		if !seen[e.ID] {
			seen[e.ID] = true
			out = append(out, e)
		}
	}
	return out
}

func (l *leafSet) size() int { return len(l.all()) }
