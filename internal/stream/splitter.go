package stream

// splitter deterministically distributes a unit stream across downstream
// targets in proportion to their assigned rates, using smooth weighted
// round-robin: over any window of n units, each target receives its exact
// share (±1 unit), and consecutive units alternate targets as evenly as
// possible — keeping per-path ordering intact while realizing the composed
// rate split.
type splitter struct {
	outs   []outSpec
	credit []float64
	total  float64
}

func newSplitter(outs []outSpec) *splitter {
	s := &splitter{outs: outs, credit: make([]float64, len(outs))}
	for _, o := range outs {
		s.total += o.Rate
	}
	return s
}

// next picks the target for the next unit. It returns nil when the
// splitter has no targets.
func (s *splitter) next() *outSpec {
	if len(s.outs) == 0 || s.total <= 0 {
		return nil
	}
	best := 0
	for i := range s.outs {
		s.credit[i] += s.outs[i].Rate
		if s.credit[i] > s.credit[best] {
			best = i
		}
	}
	s.credit[best] -= s.total
	return &s.outs[best]
}
