package transport

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// maxDatagramSize bounds a UDP frame (stay under typical fragmentation
// limits plus headroom for the JSON envelope).
const maxDatagramSize = 60_000

// HybridEndpoint sends control messages over TCP (reliable, ordered) and
// Datagram-flagged messages over UDP (loss-tolerant) — the same split the
// simulated transport models and the natural deployment for RASC: overlay
// maintenance, discovery and RPCs must arrive; stream data units prefer
// freshness over reliability. Both sockets bind the same port so a single
// "host:port" address reaches the peer either way.
type HybridEndpoint struct {
	tcp *TCPEndpoint
	udp *net.UDPConn

	mu      sync.Mutex
	handler Handler
	closed  bool
	wg      sync.WaitGroup
}

var _ Endpoint = (*HybridEndpoint)(nil)

// udpFrame is the UDP wire format (one datagram per message).
type udpFrame struct {
	From Addr    `json:"from"`
	Msg  Message `json:"msg"`
}

// NewHybrid binds a TCP listener and a UDP socket on the same address.
// Pass port 0 to pick a free port (shared by both sockets).
func NewHybrid(listenAddr string) (*HybridEndpoint, error) {
	tcp, err := NewTCP(listenAddr)
	if err != nil {
		return nil, err
	}
	udpAddr, err := net.ResolveUDPAddr("udp", string(tcp.Addr()))
	if err != nil {
		tcp.Close()
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		tcp.Close()
		return nil, fmt.Errorf("transport: udp bind %s: %w", tcp.Addr(), err)
	}
	h := &HybridEndpoint{tcp: tcp, udp: udp}
	h.wg.Add(1)
	go h.readUDP()
	return h, nil
}

// Addr returns the shared TCP/UDP address.
func (h *HybridEndpoint) Addr() Addr { return h.tcp.Addr() }

// SetHandler installs the inbound handler for both paths.
func (h *HybridEndpoint) SetHandler(fn Handler) {
	h.mu.Lock()
	h.handler = fn
	h.mu.Unlock()
	h.tcp.SetHandler(fn)
}

// SetDropHandler is a no-op: kernel-level UDP drops are not observable
// here.
func (h *HybridEndpoint) SetDropHandler(fn Handler) {}

// Send routes datagrams over UDP and everything else over TCP. Oversized
// datagrams fall back to TCP rather than fragmenting.
func (h *HybridEndpoint) Send(to Addr, msg Message) error {
	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if !msg.Datagram {
		return h.tcp.Send(to, msg)
	}
	body, err := json.Marshal(udpFrame{From: h.Addr(), Msg: msg})
	if err != nil {
		return err
	}
	if len(body) > maxDatagramSize {
		return h.tcp.Send(to, msg)
	}
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		telUDPConnErr.Inc()
		return fmt.Errorf("%w: %s: %v", ErrUnknownAddr, to, err)
	}
	if _, err = h.udp.WriteToUDP(body, dst); err != nil {
		return err
	}
	telUDPOut.Inc()
	telUDPOutBytes.Add(uint64(len(body)))
	return nil
}

// Close shuts both sockets down.
func (h *HybridEndpoint) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	err := h.tcp.Close()
	h.udp.Close()
	h.wg.Wait()
	return err
}

func (h *HybridEndpoint) readUDP() {
	defer h.wg.Done()
	buf := make([]byte, maxDatagramSize+4096)
	for {
		n, _, err := h.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		var frame udpFrame
		if json.Unmarshal(buf[:n], &frame) != nil {
			continue
		}
		telUDPIn.Inc()
		telUDPInBytes.Add(uint64(n))
		h.mu.Lock()
		fn := h.handler
		closed := h.closed
		h.mu.Unlock()
		if closed {
			return
		}
		if fn != nil {
			fn(frame.From, frame.Msg)
		}
	}
}
