package experiment

import "sync"

// ParallelFor runs fn(0) … fn(n-1) across at most workers goroutines,
// handing out indices in ascending order. It returns the error of the
// lowest-index call that failed — the same error a serial loop would
// have returned, since every lower index was already dispatched before
// the failing one. Once any call fails, indices not yet started are
// skipped. workers <= 1 degenerates to a plain serial loop (including
// early exit on first error).
func ParallelFor(n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu       sync.Mutex
		next     int
		errIdx   = n
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= n || firstErr != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
