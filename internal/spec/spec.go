// Package spec defines the application model of §2.2: service definitions
// with requirement vectors, and service requests — a request graph of
// substreams plus the rate requirement vector r_req.
package spec

import (
	"errors"
	"fmt"
	"time"
)

// ServiceDef describes a stream-processing service (the function a
// component instantiates).
type ServiceDef struct {
	// Name is the service's global identifier (hashed for discovery).
	Name string `json:"name"`
	// ProcPerUnit is the CPU time to process one data unit on a
	// reference node (t_ci at speed factor 1).
	ProcPerUnit time.Duration `json:"procPerUnit"`
	// RateRatio is R_ci = r_out/r_in. The min-cost composer requires 1;
	// the LP composer accepts any positive value.
	RateRatio float64 `json:"rateRatio"`
	// BytesRatio scales the output data unit size relative to the input
	// (e.g. 0.5 for a transcoder halving the bit rate).
	BytesRatio float64 `json:"bytesRatio"`
}

// Priority is an application's tenancy class. It decides the weight the
// water-filling fairness allocator gives the application when aggregate
// demand exceeds cluster capacity, and the preemption order under
// contention: BestEffort tenants are downgraded or parked before Standard
// ones, and Standard before Critical. The zero value is Standard, so
// requests that predate multi-tenancy keep their behavior.
type Priority int

const (
	// Standard is the default class: weighted fairly against other
	// Standard tenants, above BestEffort, below Critical.
	Standard Priority = iota
	// Critical tenants get the largest fairness weight and are the last
	// to be downgraded or preempted under contention.
	Critical
	// BestEffort tenants absorb contention first: they get the smallest
	// fairness weight and are the first preempted into the admission
	// queue.
	BestEffort
)

// String returns the flag/JSON label of the class.
func (p Priority) String() string {
	switch p {
	case Critical:
		return "critical"
	case Standard:
		return "standard"
	case BestEffort:
		return "best-effort"
	}
	return "unknown"
}

// Rank orders classes for preemption: higher outranks lower. Critical=2,
// Standard=1, BestEffort=0.
func (p Priority) Rank() int {
	switch p {
	case Critical:
		return 2
	case Standard:
		return 1
	}
	return 0
}

// ParsePriority converts a flag/JSON label back into a Priority. The
// empty string is Standard (the default class).
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "standard":
		return Standard, nil
	case "critical":
		return Critical, nil
	case "best-effort", "besteffort":
		return BestEffort, nil
	}
	return Standard, fmt.Errorf("spec: unknown priority %q (want critical, standard or best-effort)", s)
}

// MarshalJSON writes the class label, keeping workload files readable.
func (p Priority) MarshalJSON() ([]byte, error) {
	return []byte(`"` + p.String() + `"`), nil
}

// UnmarshalJSON accepts a class label (or null for the default).
func (p *Priority) UnmarshalJSON(b []byte) error {
	s := string(b)
	if s == "null" {
		*p = Standard
		return nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := ParsePriority(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// Substream is one sequential chain of services in a request graph,
// terminating at the destination.
type Substream struct {
	// Services lists the chain in processing order.
	Services []string `json:"services"`
	// Rate is the required delivery rate r_req_l in data units per
	// second.
	Rate int `json:"rate"`
	// Burstiness makes the source variable-bit-rate: unit sizes vary
	// uniformly within ±Burstiness of the request's UnitBytes while the
	// unit rate stays constant — a constant-frame-rate, variable-frame-
	// size video model. 0 (the default) is constant bit rate; values
	// must lie in [0, 1).
	Burstiness float64 `json:"burstiness,omitempty"`
}

// Request is a user's stream-processing request req = <G_req, r_req>.
type Request struct {
	// ID names the request (unique within an experiment).
	ID string `json:"id"`
	// Substreams are the request graph's parallel chains.
	Substreams []Substream `json:"substreams"`
	// UnitBytes is the application's data unit size in bytes (the mean
	// size for bursty substreams).
	UnitBytes int `json:"unitBytes"`
	// PlayoutDelay, when positive, enables the media playout model at
	// the destination: playback of each substream starts PlayoutDelay
	// after its first unit arrives and consumes one unit per period;
	// a unit arriving after its playback deadline causes a rebuffering
	// stall (counted by the sink), after which playback restarts with
	// the same delay.
	PlayoutDelay time.Duration `json:"playoutDelay,omitempty"`
	// Priority is the application's tenancy class (default Standard),
	// consulted by the admission gate and the weighted max-min fairness
	// allocator when concurrent applications contend for capacity.
	Priority Priority `json:"priority,omitempty"`
	// Cluster pins the request to a federation cluster: composition
	// prefers placements inside it and only hands substreams across a
	// boundary when the cluster cannot carry them. Empty means "the
	// origin node's own cluster" (and is a no-op in flat deployments).
	Cluster string `json:"cluster,omitempty"`
}

// Validate checks structural sanity.
func (r Request) Validate() error {
	if r.ID == "" {
		return errors.New("spec: request needs an ID")
	}
	if r.UnitBytes <= 0 {
		return fmt.Errorf("spec: request %s: unit size %d must be positive", r.ID, r.UnitBytes)
	}
	if len(r.Substreams) == 0 {
		return fmt.Errorf("spec: request %s has no substreams", r.ID)
	}
	for i, ss := range r.Substreams {
		if len(ss.Services) == 0 {
			return fmt.Errorf("spec: request %s substream %d has no services", r.ID, i)
		}
		if ss.Rate <= 0 {
			return fmt.Errorf("spec: request %s substream %d rate %d must be positive", r.ID, i, ss.Rate)
		}
		if ss.Burstiness < 0 || ss.Burstiness >= 1 {
			return fmt.Errorf("spec: request %s substream %d burstiness %g outside [0,1)", r.ID, i, ss.Burstiness)
		}
	}
	if r.PlayoutDelay < 0 {
		return fmt.Errorf("spec: request %s negative playout delay", r.ID)
	}
	switch r.Priority {
	case Standard, Critical, BestEffort:
	default:
		return fmt.Errorf("spec: request %s has unknown priority %d", r.ID, r.Priority)
	}
	return nil
}

// Services returns the set of distinct services the request invokes.
func (r Request) Services() []string {
	seen := make(map[string]bool)
	var out []string
	for _, ss := range r.Substreams {
		for _, s := range ss.Services {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// TotalRate sums the substream rates (units per second).
func (r Request) TotalRate() int {
	total := 0
	for _, ss := range r.Substreams {
		total += ss.Rate
	}
	return total
}

// BitsPerSecond converts a rate in units/sec to bits/sec for this request's
// unit size.
func (r Request) BitsPerSecond(rate int) float64 {
	return float64(rate) * float64(r.UnitBytes) * 8
}
