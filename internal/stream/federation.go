package stream

import (
	"fmt"
	"sort"

	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
)

// SetFederation joins the engine into a federated deployment. Composition
// input is scoped to the coordinator's cluster from here on, substreams
// the local cluster cannot place are handed to the best-answering remote
// cluster instead of failing, and the engine serves the remote side of
// hand-off handshakes by composing fragments against its own cluster's
// state. Boundary saturation feeds the adaptation control plane.
func (e *Engine) SetFederation(coord *federation.Coordinator) {
	e.fed = coord
	e.cluster = coord.Cluster()
	coord.SetComposeFunc(e.composeForFederation)
	coord.OnBoundarySaturated(func(app, link string) {
		e.ensureController().Publish(control.Event{Kind: control.BoundaryLinkSaturated, App: app})
	})
}

// Federation returns the engine's coordinator (nil in flat deployments).
func (e *Engine) Federation() *federation.Coordinator { return e.fed }

// Cluster returns the engine's cluster name ("" in flat deployments).
func (e *Engine) Cluster() string { return e.cluster }

// OnRemoteClusterLost reacts to a border summary passing its TTL: every
// origin application with a placement in the silent cluster publishes
// RemoteCandidateLost, so the controller re-plans it from the clusters
// that still answer.
func (e *Engine) OnRemoteClusterLost(cluster string) {
	if cluster == "" || cluster == e.cluster {
		return
	}
	ids := make([]string, 0, len(e.origins))
	for id := range e.origins {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, app := range ids {
		for _, p := range e.origins[app].graph.Placements {
			if p.Host.Cluster == cluster {
				e.ensureController().Publish(control.Event{Kind: control.RemoteCandidateLost, App: app})
				break
			}
		}
	}
}

// composeForFederation is the remote side of a hand-off handshake: run
// the origin's requested composer over this cluster's own gossip-fresh
// state, between the origin's endpoints, and return the fragment. The
// substream's components are instantiated later by the origin, exactly
// like locally composed placements.
func (e *Engine) composeForFederation(h federation.HandoffRequest, done func(*core.ExecutionGraph, error)) {
	if e.Dir == nil {
		done(nil, fmt.Errorf("stream: node has no discovery directory"))
		return
	}
	composer, err := core.ByName(h.Composer)
	if err != nil {
		done(nil, err)
		return
	}
	timeout := e.adaptConfig().Timeout
	e.Dir.LookupMany(h.Request.Services(), timeout, func(hosts map[string][]overlay.NodeInfo, err error) {
		if err != nil {
			done(nil, fmt.Errorf("stream: federated discovery: %w", err))
			return
		}
		e.collectStats(hosts, timeout, func(reports map[overlay.ID]monitor.Report) {
			in := e.buildInput(h.Request, hosts, reports)
			// The fragment spans the origin's endpoints, not this node's:
			// flow conservation on the stitched graph needs the real
			// source and destination on both sides of the boundary.
			in.Source = h.Source
			in.Dest = h.Dest
			in.SourceReport = h.SourceReport
			in.DestReport = h.DestReport
			done(composer.Compose(in))
		})
	})
}
