// Package netsim provides a deterministic discrete-event network simulator.
//
// It stands in for the PlanetLab testbed used in the RASC paper: nodes are
// connected by access links with finite input/output bandwidth, and pairs of
// nodes are separated by a wide-area latency matrix with jitter. All events
// run on a virtual clock in a single goroutine, ordered by (time, sequence),
// so a simulation with a fixed seed is exactly reproducible.
package netsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Simulator is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; create one with New.
type Simulator struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (time elapsed since the simulation
// started).
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. A negative delay is treated
// as zero. Events scheduled for the same instant run in scheduling order.
func (s *Simulator) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.At(s.now+delay, fn)
}

// At runs fn at absolute virtual time t. If t is in the past, fn runs "now"
// (at the current time, after already-pending events for this instant).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		ev.fn()
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled after t remain pending.
func (s *Simulator) RunUntil(t time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		if s.events[0].at > t {
			break
		}
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		ev.fn()
	}
	if !s.stopped && s.now < t {
		s.now = t
	}
}

// Stop halts the current Run/RunUntil after the in-flight event returns.
func (s *Simulator) Stop() { s.stopped = true }

// Pending reports the number of events still queued.
func (s *Simulator) Pending() int { return len(s.events) }
