package control

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestControlMetricsCatalogue pins the rasc_control_* family catalogue
// (# HELP / # TYPE lines) exposed on /metrics. Values are process-global
// and order-dependent across tests, so the golden captures the catalogue,
// not samples.
func TestControlMetricsCatalogue(t *testing.T) {
	// Drive every family at least once: an incremental success, a failed
	// attempt (failures + retry), a suppressed duplicate, and the gauge.
	c, clk, act := newTestController(t, Config{RetryBackoff: time.Second})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: overlay.ID{9}})
	clk.advance(0)
	c.Publish(Event{Kind: MemberDead, App: "a", Host: overlay.ID{9}})
	clk.advance(0)
	act.finish(t, os.ErrDeadlineExceeded)
	clk.advance(time.Second)
	act.finish(t, nil)

	exp := telemetry.Default().String()
	var got strings.Builder
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, "# HELP rasc_control_") || strings.HasPrefix(line, "# TYPE rasc_control_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "control_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("control catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	for _, name := range []string{
		"rasc_control_events_total",
		"rasc_control_reallocations_total",
		"rasc_control_failures_total",
		"rasc_control_suppressed_total",
		"rasc_control_inflight",
	} {
		if !strings.Contains(exp, name) {
			t.Errorf("%s missing from exposition", name)
		}
	}
}
