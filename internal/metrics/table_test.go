package metrics

import (
	"strings"
	"testing"
)

// TestTableColumnOrder asserts the label→index map keeps first-Set
// ordering for rendering: columns appear in insertion order, and updating
// an existing series never reorders.
func TestTableColumnOrder(t *testing.T) {
	tab := NewTable("t", "x", "y", []int{1, 2})
	tab.Set("charlie", 1, 3)
	tab.Set("alpha", 1, 1)
	tab.Set("bravo", 1, 2)
	tab.Set("charlie", 2, 30) // update must not reorder
	tab.Set("alpha", 2, 10)

	var labels []string
	for _, s := range tab.Series {
		labels = append(labels, s.Label)
	}
	want := []string{"charlie", "alpha", "bravo"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("column order = %v, want %v", labels, want)
		}
	}
	header := strings.SplitN(tab.String(), "\n", 3)[1]
	if c, a := strings.Index(header, "charlie"), strings.Index(header, "alpha"); c < 0 || a < 0 || c > a {
		t.Fatalf("rendered header out of order: %q", header)
	}
	if got := tab.Get("charlie", 2); got != 30 {
		t.Fatalf("Get(charlie, 2) = %g, want 30", got)
	}
	if got := tab.Get("absent", 1); got != 0 {
		t.Fatalf("Get(absent) = %g, want 0", got)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "x,charlie,alpha,bravo\n") {
		t.Fatalf("CSV header = %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

// TestTableLiteral checks the lazy index handles Tables not built through
// NewTable/Set (e.g. literals in analysis code).
func TestTableLiteral(t *testing.T) {
	tab := &Table{
		XVals:  []int{1},
		Series: []Series{{Label: "a", Points: map[int]float64{1: 5}}},
	}
	if got := tab.Get("a", 1); got != 5 {
		t.Fatalf("Get on literal table = %g, want 5", got)
	}
	tab.Set("b", 1, 7)
	if got := tab.Get("b", 1); got != 7 {
		t.Fatalf("Get after Set = %g, want 7", got)
	}
	if tab.Series[0].Label != "a" || tab.Series[1].Label != "b" {
		t.Fatalf("literal table order broken: %+v", tab.Series)
	}
}

// TestHistogramQuantile pins the shared percentile semantics: p0 is the
// minimum, p100 the maximum, nearest-rank in between, 0 when empty.
func TestHistogramQuantile(t *testing.T) {
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %g, want 0", got)
	}
	var h Histogram
	for _, v := range []float64{10, 30, 20, 50, 40} {
		h.Add(v)
	}
	cases := []struct{ q, want float64 }{
		{0, 10},    // p0 = min
		{-0.5, 10}, // clamped below
		{0.5, 30},  // nearest-rank median of 5 values
		{1, 50},    // p100 = max
		{1.5, 50},  // clamped above
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
		if got, p := h.Quantile(c.q), h.Percentile(c.q*100); got != p {
			t.Errorf("Quantile(%g)=%g disagrees with Percentile(%g)=%g", c.q, got, c.q*100, p)
		}
	}
}
