package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// quickCfg is a miniature sweep that runs in well under a second.
func quickCfg() Config {
	return Config{
		Nodes:      12,
		Seeds:      []int64{1},
		Rates:      []int{5},
		Requests:   4,
		Composers:  []string{"mincost", "greedy"},
		SubmitGap:  200 * time.Millisecond,
		MeasureFor: 5 * time.Second,
	}
}

func TestRunProducesAllRuns(t *testing.T) {
	var progress []string
	cfg := quickCfg()
	cfg.Progress = func(s string) { progress = append(progress, s) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 { // 1 rate × 2 composers × 1 seed
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	if len(progress) != 2 {
		t.Fatalf("progress lines = %d", len(progress))
	}
	for _, r := range res.Runs {
		if r.Submitted != 4 {
			t.Fatalf("submitted = %d", r.Submitted)
		}
		if r.Composed == 0 || r.Emitted == 0 || r.Received == 0 {
			t.Fatalf("empty run stats: %+v", r)
		}
		if r.DeliveredFraction() <= 0 || r.DeliveredFraction() > 1 {
			t.Fatalf("delivered fraction = %g", r.DeliveredFraction())
		}
	}
}

func TestRunOneDeterministic(t *testing.T) {
	cfg := quickCfg()
	a, err := RunOne(cfg, "mincost", 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOne(cfg, "mincost", 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestFigureTables(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for n := 6; n <= 11; n++ {
		tab, err := res.Figure(n)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(tab.Title, "Figure") {
			t.Fatalf("figure %d title = %q", n, tab.Title)
		}
		if len(tab.Series) != 2 {
			t.Fatalf("figure %d has %d series", n, len(tab.Series))
		}
		// 5 units/sec at 1250-byte units = 50 Kbps row.
		if tab.XVals[0] != 50 {
			t.Fatalf("x value = %d, want 50", tab.XVals[0])
		}
	}
	if _, err := res.Figure(5); err == nil {
		t.Fatal("figure 5 does not exist in the paper's evaluation")
	}
	all, err := res.AllFigures()
	if err != nil || len(all) != 6 {
		t.Fatalf("AllFigures = %d tables, err %v", len(all), err)
	}
}

func TestRunStatsZeroDivision(t *testing.T) {
	var r RunStats
	if r.DeliveredFraction() != 0 || r.TimelyFraction() != 0 ||
		r.OutOfOrderFraction() != 0 || r.MeanDelayMs() != 0 || r.MeanJitterMs() != 0 {
		t.Fatal("zero run stats must report zeros")
	}
}

func TestNewComposerNames(t *testing.T) {
	for _, name := range []string{"mincost", "mincost-nosplit", "greedy", "random", "lp"} {
		c, err := NewComposer(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("composer %q reports name %q", name, c.Name())
		}
	}
	if _, err := NewComposer("bogus"); err == nil {
		t.Fatal("bogus composer accepted")
	}
}

func TestRateKbps(t *testing.T) {
	if got := rateKbps(10, 1250); got != 100 {
		t.Fatalf("rateKbps = %d, want 100", got)
	}
}

func TestRunScalabilitySmall(t *testing.T) {
	var lines []string
	tab, err := RunScalability(ScalabilityConfig{
		NodeCounts:      []int{8, 12},
		Seeds:           []int64{1},
		RequestsPerNode: 0.25,
		Progress:        func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.XVals) != 2 || len(tab.Series) != 3 {
		t.Fatalf("table shape: x=%v series=%d", tab.XVals, len(tab.Series))
	}
	for _, n := range []int{8, 12} {
		if tab.Get("composed", n) <= 0 {
			t.Fatalf("no compositions at %d nodes", n)
		}
		if f := tab.Get("delivered_frac", n); f <= 0 || f > 1 {
			t.Fatalf("delivered fraction %g at %d nodes", f, n)
		}
		if tab.Get("compose_ms", n) <= 0 {
			t.Fatalf("zero compose latency at %d nodes", n)
		}
	}
	if len(lines) != 2 {
		t.Fatalf("progress lines = %d", len(lines))
	}
}

func TestMeanComposeLatency(t *testing.T) {
	rs := RunStats{Composed: 2, SumComposeLatency: 3 * time.Second}
	if got := rs.MeanComposeLatencyMs(); got != 1500 {
		t.Fatalf("MeanComposeLatencyMs = %g", got)
	}
	if (RunStats{}).MeanComposeLatencyMs() != 0 {
		t.Fatal("zero stats must report 0")
	}
}

func TestRunOptionsVariants(t *testing.T) {
	// Exercise the Poisson, stale-stats and background-load options in
	// one miniature run each: all must complete with sane stats.
	variants := map[string]Config{
		"poisson":    {PoissonArrivals: true},
		"stalestats": {StatsMaxAge: 30 * time.Second},
		"background": {BackgroundFlows: 10},
	}
	for name, cfg := range variants {
		cfg.Nodes = 12
		cfg.Seeds = []int64{1}
		cfg.Rates = []int{5}
		cfg.Requests = 4
		cfg.Composers = []string{"mincost"}
		cfg.MeasureFor = 5 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rs := res.Runs[0]
		if rs.Composed == 0 || rs.Received == 0 {
			t.Fatalf("%s: empty run %+v", name, rs)
		}
		if f := rs.DeliveredFraction(); f <= 0 || f > 1 {
			t.Fatalf("%s: delivered fraction %g", name, f)
		}
	}
}

func TestDelayP95TableShape(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := res.DelayP95Table()
	for _, name := range []string{"mincost", "greedy"} {
		v := tab.Get(name, 50)
		if v <= 0 {
			t.Fatalf("%s p95 = %g", name, v)
		}
		// p95 must be at least the mean.
		var mean float64
		for _, run := range res.Runs {
			if run.Composer == name {
				mean = run.MeanDelayMs()
			}
		}
		if v < mean {
			t.Fatalf("%s p95 %g below mean %g", name, v, mean)
		}
	}
}

// TestStatsSourceGossipAdmitsAtLeastStale compares the same seeded
// workload under gossip-disseminated statistics and under the
// stale-statistics ablation: composition fed by the membership protocol's
// fresh digests must admit at least as many requests as one fed by
// 30-second-old cached reports.
func TestStatsSourceGossipAdmitsAtLeastStale(t *testing.T) {
	base := Config{
		Nodes:      16,
		Requests:   8,
		SubmitGap:  300 * time.Millisecond,
		MeasureFor: 3 * time.Second,
	}

	gossipCfg := base
	gossipCfg.StatsSource = "gossip"
	gossipRun, err := RunOne(gossipCfg, "mincost", 5, 1)
	if err != nil {
		t.Fatal(err)
	}

	staleCfg := base
	staleCfg.StatsSource = "stale"
	staleRun, err := RunOne(staleCfg, "mincost", 5, 1)
	if err != nil {
		t.Fatal(err)
	}

	if gossipRun.Composed == 0 {
		t.Fatal("gossip-fed run admitted nothing")
	}
	if gossipRun.Composed < staleRun.Composed {
		t.Fatalf("gossip-fed run admitted %d requests, stale-stats run %d; want gossip >= stale",
			gossipRun.Composed, staleRun.Composed)
	}
	t.Logf("admitted: gossip=%d/%d stale=%d/%d",
		gossipRun.Composed, gossipRun.Submitted, staleRun.Composed, staleRun.Submitted)
}

func TestStatsSourceUnknownRejected(t *testing.T) {
	cfg := Config{Nodes: 8, Requests: 1}
	cfg.StatsSource = "psychic"
	if _, err := RunOne(cfg, "mincost", 5, 1); err == nil {
		t.Fatal("unknown StatsSource accepted")
	}
}
