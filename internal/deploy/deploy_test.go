package deploy

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/services"
)

func TestNewSystemPlacement(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 16, Seed: 1})
	if len(s.Engines) != 16 || len(s.Dirs) != 16 || len(s.Stores) != 16 {
		t.Fatal("system components missing")
	}
	for i, svcs := range s.Placement {
		if len(svcs) != 5 {
			t.Fatalf("node %d announced %d services, want 5", i, len(svcs))
		}
		seen := map[string]bool{}
		for _, svc := range svcs {
			if seen[svc] {
				t.Fatalf("node %d announced %q twice", i, svc)
			}
			seen[svc] = true
		}
	}
}

func TestNewSystemServicesDiscoverable(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 16, Seed: 2})
	// Count providers for each service through lookups from node 0.
	total := 0
	for _, svc := range services.Standard().Names() {
		var hosts []overlay.NodeInfo
		s.Dirs[0].Lookup(svc, 5*time.Second, func(h []overlay.NodeInfo, err error) {
			if err != nil {
				t.Errorf("%s: %v", svc, err)
			}
			hosts = h
		})
		s.Sim.Run()
		total += len(hosts)
	}
	if total != 16*5 {
		t.Fatalf("discoverable registrations = %d, want 80", total)
	}
}

func TestNewSystemHeterogeneousCPU(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 8, Seed: 3, HeterogeneousCPU: true})
	speeds := map[float64]bool{}
	for _, e := range s.Engines {
		speeds[e.Config().SpeedFactor] = true
	}
	if len(speeds) < 4 {
		t.Fatalf("expected varied speed factors, got %d distinct", len(speeds))
	}
	s2 := NewSystem(SystemOptions{Nodes: 8, Seed: 3})
	for _, e := range s2.Engines {
		if e.Config().SpeedFactor != 1 {
			t.Fatal("homogeneous system must use speed factor 1")
		}
	}
}

func TestNewSystemServiceSubset(t *testing.T) {
	s := NewSystem(SystemOptions{
		Nodes:           6,
		Seed:            4,
		ServiceNames:    []string{"filter", "encrypt"},
		ServicesPerNode: 2,
	})
	for i, svcs := range s.Placement {
		if len(svcs) != 2 {
			t.Fatalf("node %d announced %v", i, svcs)
		}
	}
}

func TestNewSystemDeterministicPlacement(t *testing.T) {
	a := NewSystem(SystemOptions{Nodes: 8, Seed: 5})
	b := NewSystem(SystemOptions{Nodes: 8, Seed: 5})
	for i := range a.Placement {
		if len(a.Placement[i]) != len(b.Placement[i]) {
			t.Fatal("placement diverged")
		}
		for j := range a.Placement[i] {
			if a.Placement[i][j] != b.Placement[i][j] {
				t.Fatal("placement diverged")
			}
		}
	}
}
