// Quickstart: build a simulated 16-node RASC deployment, compose a
// two-service application at 100 Kbps with the min-cost composer, stream
// for 20 virtual seconds and print the delivery report.
package main

import (
	"fmt"
	"log"
	"time"

	"rasc.dev/rasc"
)

func main() {
	// A deterministic 16-node deployment; every node offers 5 of the 10
	// standard services.
	sys := rasc.New(rasc.WithNodes(16), rasc.WithSeed(42))

	// One substream: filter then transcode, delivered to the requester
	// at 10 data units per second (10 kbit units -> 100 Kbps).
	req := rasc.Request{
		ID:        "quickstart",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			{Services: []string{"filter", "transcode"}, Rate: 10},
		},
	}
	comp, err := sys.Submit(0, req, rasc.ComposerMinCost)
	if err != nil {
		log.Fatalf("composition failed: %v", err)
	}
	fmt.Printf("composed onto %d hosts:\n", comp.NumHosts())
	for _, p := range comp.Placements() {
		fmt.Printf("  stage %d %-10s on %s at %.0f units/sec\n", p.Stage, p.Service, p.Host.Addr, p.Rate)
	}

	sys.Run(20 * time.Second)

	s := comp.Stats()
	fmt.Printf("\ndelivered %d of %d units (%.1f%%), %.1f%% timely\n",
		s.Received, s.Emitted, 100*s.DeliveredFraction(), 100*s.TimelyFraction())
	fmt.Printf("mean end-to-end delay %v, mean jitter %v\n",
		s.MeanDelay.Round(time.Millisecond), s.MeanJitter.Round(time.Millisecond))
}
