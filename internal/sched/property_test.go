package sched

import (
	"math/rand"
	"testing"
	"time"
)

// TestEDFDeadlineOrderInvariant: EDF returns runnable units in
// non-decreasing deadline order when no time passes between calls.
func TestEDFDeadlineOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		q := NewEDF(0)
		n := rng.Intn(40) + 1
		for i := 0; i < n; i++ {
			q.Push(&Unit{
				ComponentKey: "c",
				Deadline:     time.Duration(rng.Intn(1000)) * time.Millisecond,
				ExecTime:     time.Duration(rng.Intn(50)) * time.Millisecond,
			})
		}
		now := time.Duration(rng.Intn(300)) * time.Millisecond
		var last time.Duration = -1
		for {
			u, _ := q.Next(now)
			if u == nil {
				break
			}
			if u.Deadline < last {
				t.Fatal("EDF deadline order violated")
			}
			last = u.Deadline
		}
	}
}

// TestFIFOPreservesArrivalOrder: FIFO returns runnable units strictly in
// push order.
func TestFIFOPreservesArrivalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		q := NewFIFO(0)
		n := rng.Intn(30) + 1
		for i := 0; i < n; i++ {
			q.Push(&Unit{
				ComponentKey: "c",
				Deadline:     time.Hour, // nothing drops
				Enqueued:     time.Duration(i),
			})
		}
		var last time.Duration = -1
		for {
			u, _ := q.Next(0)
			if u == nil {
				break
			}
			if u.Enqueued <= last {
				t.Fatal("FIFO order violated")
			}
			last = u.Enqueued
		}
	}
}

// TestPoliciesNeverReturnLateUnits: no policy may hand out a unit whose
// laxity is already negative.
func TestPoliciesNeverReturnLateUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, mk := range []func(int) Policy{NewLLF, NewEDF, NewFIFO} {
		for trial := 0; trial < 30; trial++ {
			q := mk(0)
			for i := 0; i < 30; i++ {
				q.Push(&Unit{
					ComponentKey: "c",
					Deadline:     time.Duration(rng.Intn(200)) * time.Millisecond,
					ExecTime:     time.Duration(rng.Intn(40)) * time.Millisecond,
				})
			}
			now := time.Duration(rng.Intn(250)) * time.Millisecond
			for {
				u, dropped := q.Next(now)
				for _, d := range dropped {
					if d.Laxity(now) >= 0 {
						t.Fatalf("%s dropped a runnable unit", q.Name())
					}
				}
				if u == nil {
					break
				}
				if u.Laxity(now) < 0 {
					t.Fatalf("%s returned a late unit", q.Name())
				}
			}
		}
	}
}

// TestConservation: every pushed unit is either returned or dropped,
// exactly once.
func TestConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, mk := range []func(int) Policy{NewLLF, NewEDF, NewFIFO} {
		q := mk(0)
		const n = 200
		for i := 0; i < n; i++ {
			q.Push(&Unit{
				ComponentKey: "c",
				Deadline:     time.Duration(rng.Intn(500)) * time.Millisecond,
				ExecTime:     time.Duration(rng.Intn(50)) * time.Millisecond,
			})
		}
		seen := 0
		now := 200 * time.Millisecond
		for {
			u, dropped := q.Next(now)
			seen += len(dropped)
			if u == nil {
				break
			}
			seen++
		}
		if seen != n {
			t.Fatalf("%s: %d of %d units accounted for", q.Name(), seen, n)
		}
	}
}
