package tenant

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// wfApply computes the full allocation described by the treap's water
// level, indexed like demands — the incremental analogue of FairShares.
func wfApply(w *waterfill, demands []Demand, capacityBps float64) []float64 {
	level := w.level(capacityBps)
	out := make([]float64, len(demands))
	for i, d := range demands {
		if d.Bps <= 0 {
			continue
		}
		weight := d.Weight
		if weight <= 0 {
			weight = 1
		}
		e := wfEntry{app: d.App, demand: d.Bps, weight: weight, level: d.Bps / weight}
		out[i] = wfShare(&e, level)
	}
	return out
}

// TestWaterfillMatchesOracle churns a random tenant population through
// the treap — joins, leaves, weight changes, demand changes, capacity
// resizes — and after every operation requires the closed-form allocation
// at the treap's water level to be bit-identical to the FairShares oracle.
// Demands are integers and weights powers of two, so both paths' float
// arithmetic is exact and "bit-identical" is meaningful.
func TestWaterfillMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var w waterfill
	byApp := map[string]Demand{} // current population
	capacity := 5e5

	check := func(step int) {
		t.Helper()
		demands := make([]Demand, 0, len(byApp))
		for _, d := range byApp {
			demands = append(demands, d)
		}
		sort.Slice(demands, func(i, j int) bool { return demands[i].App < demands[j].App })
		want := FairShares(demands, capacity)
		got := wfApply(&w, demands, capacity)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("step %d: %s share = %v, oracle %v (capacity %v, n=%d)",
					step, demands[i].App, got[i], want[i], capacity, len(demands))
			}
		}
		if w.size() != len(demands) {
			t.Fatalf("step %d: treap size %d, population %d", step, w.size(), len(demands))
		}
		var sum float64
		for _, d := range demands {
			sum += d.Bps
		}
		if w.totalDemand() != sum {
			t.Fatalf("step %d: totalDemand %v, want %v", step, w.totalDemand(), sum)
		}
	}

	weights := []float64{1, 2, 4}
	newDemand := func(app string) Demand {
		return Demand{App: app, Bps: float64(1 + rng.Intn(100000)), Weight: weights[rng.Intn(3)]}
	}
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 4 || len(byApp) == 0: // join
			app := fmt.Sprintf("app-%03d", rng.Intn(200))
			if _, ok := byApp[app]; ok {
				continue
			}
			d := newDemand(app)
			byApp[app] = d
			w.insert(d.App, d.Bps, d.Weight)
		case op < 6: // leave
			for app, d := range byApp {
				if !w.remove(app, d.Bps, d.Weight) {
					t.Fatalf("step %d: remove(%s) found nothing", step, app)
				}
				delete(byApp, app)
				break
			}
		case op < 8: // demand or weight change: remove + reinsert
			for app, d := range byApp {
				w.remove(app, d.Bps, d.Weight)
				nd := newDemand(app)
				byApp[app] = nd
				w.insert(nd.App, nd.Bps, nd.Weight)
				break
			}
		default: // capacity resize (integers keep arithmetic exact)
			capacity = float64(1 + rng.Intn(2000000))
		}
		check(step)
	}
}

// TestWaterfillFloatTolerance runs the same comparison with arbitrary
// float demands and weights, where summation order differs between the
// two paths, and requires agreement within a relative epsilon.
func TestWaterfillFloatTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var w waterfill
	demands := make([]Demand, 300)
	for i := range demands {
		demands[i] = Demand{
			App:    fmt.Sprintf("app-%03d", i),
			Bps:    rng.Float64()*9e5 + 17.3,
			Weight: rng.Float64()*7 + 0.25,
		}
		w.insert(demands[i].App, demands[i].Bps, demands[i].Weight)
	}
	for _, capacity := range []float64{1e3, 3.7e5, 8e6, 1e9} {
		want := FairShares(demands, capacity)
		got := wfApply(&w, demands, capacity)
		for i := range want {
			diff := math.Abs(got[i] - want[i])
			if diff > 1e-6*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("capacity %v: %s share %v vs oracle %v (diff %v)",
					capacity, demands[i].App, got[i], want[i], diff)
			}
		}
	}
}

// TestWaterfillSuffixAndCount pins the fan-out primitives: suffix visits
// exactly the entries with saturation level strictly above the bound, in
// key order, and countAbove agrees with it.
func TestWaterfillSuffixAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var w waterfill
	type ent struct {
		app   string
		level float64
	}
	var all []ent
	for i := 0; i < 500; i++ {
		app := fmt.Sprintf("app-%03d", i)
		demand := float64(1 + rng.Intn(1000))
		weight := []float64{1, 2, 4}[rng.Intn(3)]
		w.insert(app, demand, weight)
		all = append(all, ent{app: app, level: demand / weight})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].level != all[j].level {
			return all[i].level < all[j].level
		}
		return all[i].app < all[j].app
	})
	for _, bound := range []float64{0, 1, 37.5, 250, 1000, math.Inf(1)} {
		var want []string
		for _, e := range all {
			if e.level > bound {
				want = append(want, e.app)
			}
		}
		var got []string
		w.suffix(bound, func(e *wfEntry) { got = append(got, e.app) })
		if len(got) != len(want) {
			t.Fatalf("bound %v: suffix visited %d entries, want %d", bound, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bound %v: suffix[%d] = %s, want %s", bound, i, got[i], want[i])
			}
		}
		if c := w.countAbove(bound); c != len(want) {
			t.Fatalf("bound %v: countAbove %d, want %d", bound, c, len(want))
		}
	}
}

// TestWaterfillLevelEdgeCases pins the level() boundary behavior the gate
// relies on: empty set and surplus capacity are +Inf (everyone satisfied),
// non-positive capacity is 0.
func TestWaterfillLevelEdgeCases(t *testing.T) {
	var w waterfill
	if l := w.level(100); !math.IsInf(l, 1) {
		t.Fatalf("empty level = %v, want +Inf", l)
	}
	w.insert("a", 100, 1)
	if l := w.level(100); !math.IsInf(l, 1) {
		t.Fatalf("satisfied level = %v, want +Inf", l)
	}
	if l := w.level(0); l != 0 {
		t.Fatalf("zero-capacity level = %v, want 0", l)
	}
	if l := w.level(50); l != 50 {
		t.Fatalf("contended single level = %v, want 50", l)
	}
	w.insert("b", 300, 2) // level 150
	// capacity 200: a satisfied at level 100 (needs 100), b gets 2·L = 100
	// → L = 50? No: try L where a unsatisfied: L·(1+2) = 200 → L = 66.7 < 100
	// so a is unsatisfied too and both share the level.
	l := w.level(200)
	if math.Abs(l-200.0/3) > 1e-9 {
		t.Fatalf("level = %v, want 66.67", l)
	}
}
