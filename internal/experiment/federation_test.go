package experiment

import "testing"

// TestRunFederation drives the committed benchmark's scenario at smoke
// size: a two-cluster federation with a partitioned catalog must complete
// cross-boundary hand-offs without losing requests the flat baseline
// composes, and must never oversubscribe a boundary link.
func TestRunFederation(t *testing.T) {
	res, err := RunFederation(FederationConfig{
		Nodes:    12,
		Clusters: 2,
		Seeds:    []int64{1},
		Requests: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	fed := res.Aggregate(func(r FederationRun) FederationCell { return r.Federated })
	flat := res.Aggregate(func(r FederationRun) FederationCell { return r.Flat })
	if fed.CrossCluster == 0 {
		t.Fatal("no request crossed a cluster boundary: the partitioned catalog should force hand-offs")
	}
	if fed.HandoffsOK == 0 || fed.HandoffSuccessRate() < 1 {
		t.Fatalf("hand-offs ok=%d failed=%d saturated=%d, want all attempts committed",
			fed.HandoffsOK, fed.HandoffsFailed, fed.HandoffsSaturated)
	}
	if fed.MaxBoundaryUtilization > 1 {
		t.Fatalf("boundary link oversubscribed: utilization %.3f", fed.MaxBoundaryUtilization)
	}
	if fed.Composed < flat.Composed {
		t.Fatalf("federated composed %d/%d, flat %d/%d: federation lost requests the flat solver places",
			fed.Composed, fed.Submitted, flat.Composed, flat.Submitted)
	}
	if fed.Received == 0 {
		t.Fatal("no units delivered in the federated deployment")
	}
}

// TestRunFederationRejectsFlat pins the config guard: a "federation"
// comparison with fewer than two clusters is a misconfiguration.
func TestRunFederationRejectsFlat(t *testing.T) {
	if _, err := RunFederation(FederationConfig{Clusters: 1}); err == nil {
		t.Fatal("RunFederation accepted a single-cluster comparison")
	}
}
