package gossip

import (
	"testing"
)

// TestSuspectAddr covers the transport-evidence shortcut: a circuit
// breaker opening on node 1's address lets node 0 suspect it immediately,
// and the normal suspicion machinery takes it from there — node 1, still
// alive, refutes with a higher incarnation.
func TestSuspectAddr(t *testing.T) {
	tc := newGossipCluster(4, 11, testConfig(), false)
	g := tc.gs[0]
	victim := tc.c.Nodes[1]

	if g.SuspectAddr("sim://no-such-node") {
		t.Fatal("unknown address reported a suspicion")
	}
	if !g.SuspectAddr(victim.Addr()) {
		t.Fatal("known alive member's address was not suspected")
	}
	if m, _ := g.Member(victim.ID()); m.State != StateSuspect {
		t.Fatalf("member state %v after SuspectAddr, want suspect", m.State)
	}
	// Suspecting an already-suspect member is a no-op, not a fresh timer.
	if g.SuspectAddr(victim.Addr()) {
		t.Fatal("re-suspecting a suspect member reported a transition")
	}
	// Self is never suspected via transport evidence.
	if g.SuspectAddr(tc.c.Nodes[0].Addr()) {
		t.Fatal("node suspected itself")
	}

	// The victim is actually alive: within the suspicion window the rumor
	// reaches it and it refutes, so every view returns to alive.
	rounds := runUntilConverged(t, tc, []int{0}, map[int]State{1: StateAlive}, 30)
	t.Logf("refuted after %d rounds", rounds)
	if m, _ := g.Member(victim.ID()); m.State != StateAlive {
		t.Fatal("victim did not refute transport-evidence suspicion")
	}
}
