package control

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
)

// fakeClock is a deterministic single-threaded clock for controller tests.
type fakeClock struct {
	now    time.Duration
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Duration
	fn      func()
	stopped bool
}

func (c *fakeClock) Now() time.Duration { return c.now }

func (c *fakeClock) After(d time.Duration, fn func()) func() {
	t := &fakeTimer{at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return func() { t.stopped = true }
}

// advance runs due timers in time order (FIFO on ties) up to now+d.
func (c *fakeClock) advance(d time.Duration) {
	target := c.now + d
	for {
		best := -1
		for i, t := range c.timers {
			if !t.stopped && (best == -1 || t.at < c.timers[best].at) {
				best = i
			}
		}
		if best == -1 || c.timers[best].at > target {
			break
		}
		t := c.timers[best]
		c.timers = append(c.timers[:best], c.timers[best+1:]...)
		if t.at > c.now {
			c.now = t.at
		}
		t.fn()
	}
	c.now = target
}

type call struct {
	app      string
	degraded map[overlay.ID]bool
	subs     []int
	full     bool
	upgrade  bool
	done     func(error)
}

// fakeActions records reallocation calls; tests complete them explicitly
// via call.done, or rely on finish() to pop-and-complete the oldest.
type fakeActions struct {
	appsOn map[overlay.ID][]string
	calls  []call
}

func (f *fakeActions) AppsOn(host overlay.ID) []string { return f.appsOn[host] }

func (f *fakeActions) Reallocate(app string, degraded map[overlay.ID]bool, subs []int, done func(error)) {
	f.calls = append(f.calls, call{app: app, degraded: degraded, subs: subs, done: done})
}

func (f *fakeActions) Recompose(app string, upgrade bool, done func(error)) {
	f.calls = append(f.calls, call{app: app, full: true, upgrade: upgrade, done: done})
}

// finish completes the oldest unfinished call with err.
func (f *fakeActions) finish(t *testing.T, err error) call {
	t.Helper()
	for i := range f.calls {
		if f.calls[i].done != nil {
			cl := f.calls[i]
			f.calls[i].done = nil
			cl.done(err)
			return cl
		}
	}
	t.Fatal("no unfinished call")
	return call{}
}

func host(i byte) overlay.ID { return overlay.ID{i} }

func newTestController(t *testing.T, cfg Config) (*Controller, *fakeClock, *fakeActions) {
	t.Helper()
	clk := &fakeClock{}
	act := &fakeActions{appsOn: make(map[overlay.ID][]string)}
	cfg.Clock = clk
	return New(cfg, act), clk, act
}

func TestMemberDeadReallocatesEveryAppOnHost(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	act.appsOn[host(7)] = []string{"a", "b"}
	c.Publish(Event{Kind: MemberDead, Host: host(7)})
	clk.advance(0)
	if len(act.calls) != 2 {
		t.Fatalf("calls = %d, want 2", len(act.calls))
	}
	for i, app := range []string{"a", "b"} {
		cl := act.calls[i]
		if cl.app != app || cl.full || !cl.degraded[host(7)] {
			t.Fatalf("call %d = %+v, want incremental for %q away from host 7", i, cl, app)
		}
	}
	act.finish(t, nil)
	act.finish(t, nil)
	if s := c.Stats(); s.Incremental != 2 || s.Full != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDropSpikeHysteresis(t *testing.T) {
	c, clk, act := newTestController(t, Config{DropHysteresis: 2})
	act.appsOn[host(3)] = []string{"a"}
	c.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	if len(act.calls) != 0 {
		t.Fatalf("first spike acted immediately: %+v", act.calls)
	}
	c.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	if len(act.calls) != 1 {
		t.Fatalf("second spike produced %d calls, want 1", len(act.calls))
	}
	if !act.calls[0].degraded[host(3)] {
		t.Fatalf("call = %+v, want host 3 degraded", act.calls[0])
	}
	_ = c
}

func TestStrikeTTLExpiresStaleStrikes(t *testing.T) {
	ctl, clk, act := newTestController(t, Config{DropHysteresis: 2, StrikeTTL: 10 * time.Second})
	act.appsOn[host(3)] = []string{"a"}
	ctl.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	clk.advance(11 * time.Second) // first strike goes stale
	ctl.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	if len(act.calls) != 0 {
		t.Fatalf("stale strike still counted: %+v", act.calls)
	}
	ctl.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	if len(act.calls) != 1 {
		t.Fatalf("two fresh strikes produced %d calls, want 1", len(act.calls))
	}
}

func TestRateEventWithoutCulpritGoesFull(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	c.Publish(Event{Kind: RateBelowThreshold, App: "a", Substreams: []int{1}})
	clk.advance(0)
	if len(act.calls) != 1 || !act.calls[0].full {
		t.Fatalf("calls = %+v, want one full recompose", act.calls)
	}
}

func TestRateEventWithCulpritGoesIncremental(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	c.Publish(Event{Kind: RateBelowThreshold, App: "a", Host: host(5), Substreams: []int{2, 0}})
	clk.advance(0)
	if len(act.calls) != 1 || act.calls[0].full {
		t.Fatalf("calls = %+v, want one incremental", act.calls)
	}
	if got := act.calls[0].subs; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("substreams = %v, want sorted [0 2]", got)
	}
}

func TestInfeasibleDeltaFallsBackToFullRecompose(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	act.finish(t, fmt.Errorf("substream 0: %w", core.ErrNoFeasiblePlacement))
	if len(act.calls) != 2 || !act.calls[1].full || act.calls[1].upgrade {
		t.Fatalf("calls = %+v, want fallback full recompose", act.calls)
	}
	act.finish(t, nil)
	if s := c.Stats(); s.Fallbacks != 1 || s.Full != 1 || s.Incremental != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFailureReArmsWithBackoff(t *testing.T) {
	c, clk, act := newTestController(t, Config{RetryBackoff: time.Second, MaxRetryBackoff: 3 * time.Second})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	act.finish(t, errors.New("instantiate RPC failed"))
	if len(act.calls) != 1 {
		t.Fatalf("retry launched synchronously")
	}
	clk.advance(time.Second) // first backoff
	if len(act.calls) != 2 {
		t.Fatalf("no retry after first backoff: %d calls", len(act.calls))
	}
	act.finish(t, errors.New("still failing"))
	clk.advance(time.Second)
	if len(act.calls) != 2 {
		t.Fatal("retried before doubled backoff elapsed")
	}
	clk.advance(time.Second) // 2s total: doubled backoff
	if len(act.calls) != 3 {
		t.Fatalf("no retry after doubled backoff: %d calls", len(act.calls))
	}
	cl := act.finish(t, nil)
	if !cl.degraded[host(1)] {
		t.Fatalf("retry lost the degraded set: %+v", cl)
	}
	if s := c.Stats(); s.Failures != 2 || s.Incremental != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEventsDuringBackoffWaitDoNotLaunch(t *testing.T) {
	c, clk, act := newTestController(t, Config{RetryBackoff: 2 * time.Second})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	act.finish(t, errors.New("instantiate RPC failed"))
	// Fresh events while the retry timer is armed must not launch ahead of
	// the backoff — that would pace a failing app at the event rate.
	c.Publish(Event{Kind: RateBelowThreshold, App: "a", Host: host(5), Substreams: []int{0}})
	clk.advance(0)
	if len(act.calls) != 1 {
		t.Fatalf("level-triggered event launched during backoff wait: %d calls", len(act.calls))
	}
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(2)})
	clk.advance(0)
	if len(act.calls) != 1 {
		t.Fatalf("edge-triggered event launched during backoff wait: %d calls", len(act.calls))
	}
	clk.advance(2 * time.Second)
	if len(act.calls) != 2 {
		t.Fatalf("backoff retry never launched: %d calls", len(act.calls))
	}
	// The retry carries the original degraded host plus the latched
	// edge-triggered one; the level-triggered event was dropped (the
	// periodic check will republish it if the condition persists).
	cl := act.calls[1]
	if !cl.degraded[host(1)] || !cl.degraded[host(2)] || cl.degraded[host(5)] {
		t.Fatalf("merged work = %+v, want degraded {1,2} without 5", cl)
	}
}

func TestSingleFlightMergesConcurrentWork(t *testing.T) {
	c, clk, act := newTestController(t, Config{Cooldown: 5 * time.Second})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	// Second failure while the first reallocation is still in flight.
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(2)})
	clk.advance(0)
	if len(act.calls) != 1 {
		t.Fatalf("in-flight app got a concurrent reallocation: %d calls", len(act.calls))
	}
	act.finish(t, nil)
	// Merged pending work launches only after the cooldown.
	clk.advance(4 * time.Second)
	if len(act.calls) != 1 {
		t.Fatal("pending work launched inside cooldown")
	}
	clk.advance(time.Second + time.Millisecond)
	if len(act.calls) != 2 {
		t.Fatalf("pending work never launched: %d calls", len(act.calls))
	}
	cl := act.calls[1]
	if !cl.degraded[host(2)] {
		t.Fatalf("merged work lost host 2: %+v", cl)
	}
}

func TestGlobalConcurrencyLimit(t *testing.T) {
	c, clk, act := newTestController(t, Config{MaxConcurrent: 1})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	c.Publish(Event{Kind: MemberDead, App: "b", Host: host(1)})
	clk.advance(0)
	if len(act.calls) != 1 || act.calls[0].app != "a" {
		t.Fatalf("calls = %+v, want only app a in flight", act.calls)
	}
	if c.Inflight() != 1 {
		t.Fatalf("inflight = %d", c.Inflight())
	}
	act.finish(t, nil)
	if len(act.calls) != 2 || act.calls[1].app != "b" {
		t.Fatalf("freed slot not handed to app b: %+v", act.calls)
	}
}

func TestDisableIncrementalForcesFullRecompose(t *testing.T) {
	c, clk, act := newTestController(t, Config{DisableIncremental: true})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	if len(act.calls) != 1 || !act.calls[0].full {
		t.Fatalf("calls = %+v, want full recompose", act.calls)
	}
	_ = c
}

func TestUpgradeEventsDoNotRaceInFlightUpgrade(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	for i := 0; i < 3; i++ {
		c.Publish(Event{Kind: UpgradePossible, App: "a"})
		clk.advance(0)
	}
	if len(act.calls) != 1 {
		t.Fatalf("duplicate upgrade attempts: %d", len(act.calls))
	}
	if !act.calls[0].full || !act.calls[0].upgrade {
		t.Fatalf("call = %+v, want full upgrade recompose", act.calls[0])
	}
}

func TestLevelTriggeredEventsAreNotLatched(t *testing.T) {
	// A rate event observed while a reallocation is in flight describes
	// the dip that reallocation is already fixing; latching it would
	// trigger a spurious full recompose after the cooldown.
	c, clk, act := newTestController(t, Config{Cooldown: 5 * time.Second})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	c.Publish(Event{Kind: RateBelowThreshold, App: "a"})
	clk.advance(0)
	act.finish(t, nil)
	clk.advance(time.Minute)
	if len(act.calls) != 1 {
		t.Fatalf("dropped rate event still launched work: %d calls", len(act.calls))
	}
}

func TestUnknownAppStopsRetrying(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	act.finish(t, ErrUnknownApp)
	clk.advance(time.Minute)
	if len(act.calls) != 1 {
		t.Fatalf("unknown app retried: %d calls", len(act.calls))
	}
	if s := c.Stats(); s.Failures != 0 {
		t.Fatalf("unknown app counted as failure: %+v", s)
	}
}

func TestCloseStopsProcessing(t *testing.T) {
	c, clk, act := newTestController(t, Config{})
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	c.Close()
	clk.advance(0)
	if len(act.calls) != 0 {
		t.Fatalf("closed controller still acted: %+v", act.calls)
	}
	c.Publish(Event{Kind: MemberDead, App: "a", Host: host(1)})
	clk.advance(0)
	if len(act.calls) != 0 {
		t.Fatal("publish after close acted")
	}
}
