package stream

import (
	"time"

	"rasc.dev/rasc/internal/metrics"
)

// Sink receives a substream at the destination and measures the delivery
// metrics of §4.2: end-to-end delay, jitter (lateness against the deadline
// set by the previous arrival plus the period), out-of-order arrivals, and
// timeliness (in order and within the rate requirement's tolerance).
type Sink struct {
	Req       string
	Substream int
	// Stages is the substream's chain length; units addressed to stage
	// == Stages belong to this sink.
	Stages int
	// Period is the required inter-arrival time (1/r_req).
	Period time.Duration
	// TimelySlack is the maximum lateness for a unit to count as timely.
	TimelySlack time.Duration

	// PlayoutDelay, when positive, enables the media playout model:
	// playback starts PlayoutDelay after the first arrival and consumes
	// one unit per Period; a unit arriving past its playback deadline
	// is a rebuffering stall, after which playback restarts.
	PlayoutDelay time.Duration

	// Counters.
	Received       int64
	DeliveredBytes int64
	OutOfOrder     int64
	Timely         int64
	TotalDelay     time.Duration
	TotalJitter    time.Duration
	// Stalls counts rebuffering events under the playout model.
	Stalls int64
	// Delays retains per-unit end-to-end delays (milliseconds) for
	// percentile analysis when the engine enables KeepDelaySamples.
	Delays *metrics.Histogram

	maxSeq       int64
	lastArrival  time.Duration
	started      bool
	playoutBase  time.Duration // deadline(seq) = playoutBase + seq*Period
	playoutReady bool
}

func newSink(req string, substream, stages int, period, slack, playout time.Duration) *Sink {
	return &Sink{
		Req: req, Substream: substream, Stages: stages,
		Period: period, TimelySlack: slack, PlayoutDelay: playout, maxSeq: -1,
	}
}

// observe records the arrival of one data unit at virtual time now.
func (s *Sink) observe(m dataMsg, now time.Duration) {
	s.Received++
	s.DeliveredBytes += int64(m.Size)
	s.TotalDelay += now - m.Created
	if s.Delays != nil {
		s.Delays.Add(float64(now-m.Created) / float64(time.Millisecond))
	}
	inOrder := m.Seq > s.maxSeq
	if inOrder {
		s.maxSeq = m.Seq
	} else {
		s.OutOfOrder++
	}
	if s.PlayoutDelay > 0 {
		s.observePlayout(m.Seq, now)
	}
	if !s.started {
		s.started = true
		s.lastArrival = now
		s.Timely++
		return
	}
	deadline := s.lastArrival + s.Period
	late := now - deadline
	if late > 0 {
		s.TotalJitter += late
	}
	if inOrder && late <= s.TimelySlack {
		s.Timely++
	}
	s.lastArrival = now
}

// observePlayout advances the playback model: each unit must arrive before
// its playback instant; a late unit stalls playback, which restarts with
// the full playout delay.
func (s *Sink) observePlayout(seq int64, now time.Duration) {
	if !s.playoutReady {
		s.playoutReady = true
		s.playoutBase = now + s.PlayoutDelay - time.Duration(seq)*s.Period
		return
	}
	deadline := s.playoutBase + time.Duration(seq)*s.Period
	if now > deadline {
		s.Stalls++
		// Rebuffer: this unit plays PlayoutDelay from now.
		s.playoutBase = now + s.PlayoutDelay - time.Duration(seq)*s.Period
	}
}

// MeanDelay returns the average end-to-end delay of delivered units.
func (s *Sink) MeanDelay() time.Duration {
	if s.Received == 0 {
		return 0
	}
	return s.TotalDelay / time.Duration(s.Received)
}

// MeanJitter returns the average jitter per delivered unit.
func (s *Sink) MeanJitter() time.Duration {
	if s.Received == 0 {
		return 0
	}
	return s.TotalJitter / time.Duration(s.Received)
}

// TimelyFraction returns the fraction of delivered units that arrived in
// order and on time.
func (s *Sink) TimelyFraction() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.Timely) / float64(s.Received)
}

// OutOfOrderFraction returns the fraction of delivered units that arrived
// after a successor.
func (s *Sink) OutOfOrderFraction() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.OutOfOrder) / float64(s.Received)
}

// SinkSnapshot is a copyable summary of a sink's statistics, safe to hand
// across goroutines (the live runtime reads it off the actor loop).
type SinkSnapshot struct {
	Emitted    int64
	Received   int64
	Timely     int64
	OutOfOrder int64
	Stalls     int64
	MeanDelay  time.Duration
	MeanJitter time.Duration
}

// Snapshot summarizes a sink.
func Snapshot(s *Sink) SinkSnapshot {
	return SinkSnapshot{
		Received:   s.Received,
		Timely:     s.Timely,
		OutOfOrder: s.OutOfOrder,
		Stalls:     s.Stalls,
		MeanDelay:  s.MeanDelay(),
		MeanJitter: s.MeanJitter(),
	}
}
