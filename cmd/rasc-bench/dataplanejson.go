package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
)

// dataplaneReport is the BENCH_dataplane.json schema: the same virtual
// streaming workload simulated on the legacy per-unit data plane and the
// batched binary one, compared by wall-clock simulation throughput.
type dataplaneReport struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// The workload: Substreams independent chains at RateUnitsPerSec each,
	// streamed for VirtualSeconds of simulated time on Nodes nodes.
	Nodes           int     `json:"nodes"`
	Substreams      int     `json:"substreams"`
	RateUnitsPerSec int     `json:"rate_units_per_sec"`
	VirtualSeconds  float64 `json:"virtual_seconds"`

	Legacy  dataplaneRun `json:"legacy"`
	Batched dataplaneRun `json:"batched"`
	// Speedup is batched wall-clock units/sec over legacy — the headline
	// number the CI floor checks.
	Speedup float64 `json:"speedup"`
}

// dataplaneRun is one configuration's measurement.
type dataplaneRun struct {
	BatchUnits int `json:"batch_units"`
	Shards     int `json:"shards"`
	// Emitted/Delivered are virtual-workload unit counts; the two runs
	// must broadly agree or the comparison is not apples to apples.
	Emitted   int64 `json:"emitted"`
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	// WallClockSeconds is how long the host took to simulate the run;
	// UnitsPerSecond is Delivered over that (per deployment; divide by
	// nodes for the per-node figure).
	WallClockSeconds float64 `json:"wall_clock_seconds"`
	UnitsPerSecond   float64 `json:"units_per_second"`
}

const (
	dpNodes      = 12
	dpSubstreams = 4
	dpRate       = 400
	dpVirtual    = 20 * time.Second
)

// measureDataplane streams the fixed workload under one data-plane config
// and reports delivered units per wall-clock second of simulation.
func measureDataplane(dp stream.DataPlaneConfig) (dataplaneRun, error) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: dpNodes,
		Seed:  1,
		// High-capacity links: the benchmark measures the data-unit path,
		// not congestion behavior.
		Topology: netsim.PlanetLabTopology(netsim.TopologyConfig{
			Nodes:  dpNodes,
			MinBps: 2e8,
			MaxBps: 5e8,
		}, 1),
		QueueCapacity: 1024,
		DataPlane:     dp,
	})
	req := spec.Request{ID: "bench-dp", UnitBytes: 1250}
	for i := 0; i < dpSubstreams; i++ {
		req.Substreams = append(req.Substreams, spec.Substream{
			Services: []string{"filter"},
			Rate:     dpRate,
		})
	}
	var submitErr error
	done := false
	s.Engines[0].Submit(req, &core.MinCost{}, 8*time.Second, func(_ *core.ExecutionGraph, err error) {
		submitErr, done = err, true
	})
	for i := 0; i < 400 && !done; i++ {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		return dataplaneRun{}, fmt.Errorf("composition did not complete")
	}
	if submitErr != nil {
		return dataplaneRun{}, fmt.Errorf("compose: %w", submitErr)
	}

	start := time.Now()
	s.Sim.RunUntil(s.Sim.Now() + dpVirtual)
	wall := time.Since(start).Seconds()

	run := dataplaneRun{
		BatchUnits:       dp.BatchUnits,
		Shards:           dp.Shards,
		WallClockSeconds: wall,
	}
	for sub := range req.Substreams {
		var total stream.Throughput
		for _, e := range s.Engines {
			total.Accumulate(e.Throughput(req.ID, sub))
		}
		run.Emitted += total.EmittedUnits
		run.Delivered += total.DeliveredUnits
		run.Dropped += total.DroppedUnits
	}
	if wall > 0 {
		run.UnitsPerSecond = float64(run.Delivered) / wall
	}
	if run.Delivered == 0 {
		return run, fmt.Errorf("workload delivered nothing (emitted %d, dropped %d)", run.Emitted, run.Dropped)
	}
	return run, nil
}

// runDataplaneBenchJSON measures the legacy and batched data planes on the
// same workload and writes the comparison to path. A minSpeedup > 0 turns
// the report into a regression gate: the command fails when the batched
// plane's advantage falls below it.
func runDataplaneBenchJSON(path string, minSpeedup float64) error {
	report := dataplaneReport{
		GoVersion:       runtime.Version(),
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Nodes:           dpNodes,
		Substreams:      dpSubstreams,
		RateUnitsPerSec: dpRate,
		VirtualSeconds:  dpVirtual.Seconds(),
	}

	// Warm up both paths once (pool priming, first-use allocations), then
	// measure. Each measured run rebuilds the deployment from the same
	// seed, so the virtual workloads are identical.
	if _, err := measureDataplane(stream.DataPlaneConfig{}); err != nil {
		return fmt.Errorf("legacy warmup: %w", err)
	}
	legacy, err := measureDataplane(stream.DataPlaneConfig{})
	if err != nil {
		return fmt.Errorf("legacy: %w", err)
	}
	if _, err := measureDataplane(stream.DefaultDataPlane()); err != nil {
		return fmt.Errorf("batched warmup: %w", err)
	}
	batched, err := measureDataplane(stream.DefaultDataPlane())
	if err != nil {
		return fmt.Errorf("batched: %w", err)
	}
	report.Legacy = legacy
	report.Batched = batched
	if legacy.UnitsPerSecond > 0 {
		report.Speedup = batched.UnitsPerSecond / legacy.UnitsPerSecond
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if minSpeedup > 0 && report.Speedup < minSpeedup {
		return fmt.Errorf("batched data plane speedup %.2fx below required %.2fx", report.Speedup, minSpeedup)
	}
	return nil
}
