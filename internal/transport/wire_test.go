package transport

import (
	"bytes"
	"testing"
)

func TestWireMessageRoundTrip(t *testing.T) {
	cases := []Message{
		{},
		{Type: "ping"},
		{Type: "data", Payload: []byte("hello"), Pad: 4096, Datagram: true},
		{Type: "big", Payload: bytes.Repeat([]byte{0xAB}, 70_000)},
	}
	for _, want := range cases {
		buf := appendMessage(nil, want)
		got, rest, err := readMessage(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %+v left %d trailing bytes", want, len(rest))
		}
		if got.Type != want.Type || !bytes.Equal(got.Payload, want.Payload) ||
			got.Pad != want.Pad || got.Datagram != want.Datagram {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestWireTCPFrameRoundTrip(t *testing.T) {
	msg := Message{Type: "rpc", Payload: []byte("body"), Pad: 7}
	buf := appendTCPFrame(nil, "10.0.0.1:9999", msg)
	from, got, err := readTCPFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if from != "10.0.0.1:9999" || got.Type != "rpc" || string(got.Payload) != "body" || got.Pad != 7 {
		t.Fatalf("round trip: from=%s msg=%+v", from, got)
	}
}

func TestWireTruncatedFrameRejected(t *testing.T) {
	full := appendTCPFrame(nil, "a:1", Message{Type: "x", Payload: []byte("yz")})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := readTCPFrame(full[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	// Trailing garbage is as malformed as missing bytes.
	if _, _, err := readTCPFrame(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Fatal("frame with trailing bytes decoded cleanly")
	}
}

func TestWireBatchRoundTrip(t *testing.T) {
	ctrl := []queuedMsg{
		{msg: Message{Type: "a", Payload: []byte("1")}},
		{msg: Message{Type: "b", Pad: 10}},
		{msg: Message{Type: "c", Payload: []byte("333"), Datagram: true}},
	}
	var got []Message
	readBatch(appendBatch(nil, ctrl), func(m Message) { got = append(got, m) })
	if len(got) != len(ctrl) {
		t.Fatalf("unpacked %d messages, want %d", len(got), len(ctrl))
	}
	for i, m := range got {
		w := ctrl[i].msg
		if m.Type != w.Type || !bytes.Equal(m.Payload, w.Payload) || m.Pad != w.Pad || m.Datagram != w.Datagram {
			t.Fatalf("batch[%d]: got %+v, want %+v", i, m, w)
		}
	}
}
