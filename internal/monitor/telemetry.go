package monitor

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the monitoring subsystem (metric catalogue
// rasc_monitor_*). Gauges capture the most recently assembled window
// snapshot: a live node has exactly one NodeMonitor, so /metrics reflects
// that node; in simulations the last reporting node wins, and the counter
// still measures total report traffic.
var (
	telReports = telemetry.Default().Counter(
		"rasc_monitor_reports_total",
		"Monitoring snapshots assembled for composers or scrapes.")
	telArrivalRate = telemetry.Default().Gauge(
		"rasc_monitor_arrival_rate",
		"Sum of per-component arrival rates in the last snapshot (units/sec).")
	telMeanProc = telemetry.Default().Gauge(
		"rasc_monitor_mean_proc_seconds",
		"Mean per-component processing time in the last snapshot.")
	telDropRatio = telemetry.Default().Gauge(
		"rasc_monitor_drop_ratio",
		"Node-level drop ratio over the window in the last snapshot.")
	telQueueLen = telemetry.Default().Gauge(
		"rasc_monitor_queue_len",
		"Scheduler queue length in the last snapshot.")
	telInBpsUsed = telemetry.Default().Gauge(
		"rasc_monitor_in_bps_used",
		"Inbound access-link bandwidth in use in the last snapshot (bits/sec).")
	telOutBpsUsed = telemetry.Default().Gauge(
		"rasc_monitor_out_bps_used",
		"Outbound access-link bandwidth in use in the last snapshot (bits/sec).")
	telCPUFraction = telemetry.Default().Gauge(
		"rasc_monitor_cpu_fraction",
		"CPU busy fraction over the window in the last snapshot.")
)

// export publishes a report to the process-wide telemetry registry.
func export(r Report) {
	telReports.Inc()
	var rate, procSum float64
	for _, c := range r.Components {
		rate += c.ArrivalRate
		procSum += c.MeanProc.Seconds()
	}
	telArrivalRate.Set(rate)
	if n := len(r.Components); n > 0 {
		telMeanProc.Set(procSum / float64(n))
	} else {
		telMeanProc.Set(0)
	}
	telDropRatio.Set(r.DropRatio)
	telQueueLen.Set(float64(r.QueueLen))
	telInBpsUsed.Set(r.InBpsUsed)
	telOutBpsUsed.Set(r.OutBpsUsed)
	telCPUFraction.Set(r.CPUFraction)
}
