// Sensornet: an on-line sensor analytics application with two parallel
// substreams — one aggregating and joining raw readings, one running an
// anomaly-analysis chain — both delivered to the monitoring station at
// their own rates, as in the paper's multi-substream request graphs
// (Figure 2).
package main

import (
	"fmt"
	"log"
	"time"

	"rasc.dev/rasc"
)

func main() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 24, Seed: 11})

	req := rasc.Request{
		ID:        "sensornet",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			// Substream 1: aggregate readings, join across sensors.
			{Services: []string{"aggregate", "join"}, Rate: 8},
			// Substream 2: analyze and annotate anomalies.
			{Services: []string{"analyze", "annotate"}, Rate: 4},
		},
	}
	comp, err := sys.Submit(3, req, rasc.ComposerMinCost)
	if err != nil {
		log.Fatalf("composition failed: %v", err)
	}
	fmt.Println("execution graph:")
	for _, p := range comp.Placements() {
		fmt.Printf("  substream %d stage %d %-10s on %s at %.0f units/sec\n",
			p.Substream, p.Stage, p.Service, p.Host.Addr, p.Rate)
	}

	// Stream for one virtual minute, sampling the node monitor of the
	// origin halfway through.
	sys.Run(30 * time.Second)
	rep := sys.NodeReport(3)
	fmt.Printf("\norigin node: %.0f/%.0f Kbps in use (in/out), drop ratio %.3f\n",
		rep.InBpsUsed/1000, rep.OutBpsUsed/1000, rep.DropRatio)
	sys.Run(30 * time.Second)

	s := comp.Stats()
	fmt.Printf("\nboth substreams: delivered %.1f%% of %d units, %.1f%% timely\n",
		100*s.DeliveredFraction(), s.Emitted, 100*s.TimelyFraction())
	fmt.Printf("mean delay %v, mean jitter %v\n",
		s.MeanDelay.Round(time.Millisecond), s.MeanJitter.Round(time.Millisecond))

	// Shut the application down and verify the components disappear.
	comp.Stop()
	fmt.Println("application stopped")
}
