package overlay

import (
	"testing"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

// FuzzParseID exercises the ID text codec with arbitrary input: it must
// never panic, and every successfully parsed ID must round-trip.
func FuzzParseID(f *testing.F) {
	f.Add("0123456789abcdef0123456789abcdef")
	f.Add("")
	f.Add("zz")
	f.Add("0123456789ABCDEF0123456789ABCDEF")
	f.Fuzz(func(t *testing.T, s string) {
		id, err := ParseID(s)
		if err != nil {
			return
		}
		back, err := ParseID(id.String())
		if err != nil || back != id {
			t.Fatalf("round trip failed for %q", s)
		}
	})
}

// FuzzOnMessage delivers arbitrary bytes as an overlay message: malformed
// frames must be dropped without panicking or corrupting state.
func FuzzOnMessage(f *testing.F) {
	f.Add([]byte(`{"k":"route","a":"x"}`))
	f.Add([]byte(`{"k":"join"}`))
	f.Add([]byte(`{"k":"resp","r":1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"k":"req","a":"missing","r":9}`))
	f.Fuzz(func(t *testing.T, payload []byte) {
		sim := netsim.New(1)
		nw := netsim.NewNetwork(sim, netsim.Config{})
		mem := transport.NewMemNetwork(nw)
		clk := clock.Sim{S: sim}
		a := NewNode(HashID("fuzz-a"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
		b := NewNode(HashID("fuzz-b"), mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
		a.Bootstrap()
		b.Join(a.Addr(), nil)
		sim.Run()
		// Inject the raw payload directly into b's handler.
		b.onMessage(a.Addr(), transport.Message{Type: msgType, Payload: payload})
		sim.RunUntil(sim.Now() + 10e9)
		// The node must still route afterwards.
		delivered := false
		b.Register("after", func(ID, NodeInfo, []byte) { delivered = true })
		b.Route(b.ID(), "after", nil)
		sim.RunUntil(sim.Now() + 10e9)
		if !delivered {
			t.Fatal("node stopped routing after malformed input")
		}
	})
}
