package tenant

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTenantMetricsCatalogue pins the rasc_tenant_* family catalogue
// (# HELP / # TYPE lines) exposed on /metrics. Values are process-global
// and order-dependent across tests, so the golden captures the catalogue,
// not samples.
func TestTenantMetricsCatalogue(t *testing.T) {
	// Drive every family at least once: admissions in every outcome,
	// a preemption, cap changes, the posture gauges, and the ledger /
	// incremental-path families.
	g := NewGate(Config{CapacityBps: 10000, QueueCapacity: 1, MinShareFraction: 0.5})
	g.Admit("be", spec.BestEffort, 9000, nil)
	g.Admit("crit", spec.Critical, 16000, nil) // preempts be into the queue
	g.Admit("rej", spec.BestEffort, 1e9, nil)  // queue full: rejected
	g.Release("crit")                          // promotes be

	lg := NewGate(Config{PerHostLedger: true, FairShareDeadband: 0.05})
	lg.UpsertHost("h1", 8000)
	lg.Admit("a", spec.Standard, 6000, nil)
	lg.Admit("b", spec.Standard, 6000, nil) // contended: deadband sweeps engage
	lg.RemoveHost("h1")

	exp := telemetry.Default().String()
	var got strings.Builder
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, "# HELP rasc_tenant_") || strings.HasPrefix(line, "# TYPE rasc_tenant_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "tenant_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("tenant catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	for _, name := range []string{
		"rasc_tenant_admissions_total",
		"rasc_tenant_preemptions_total",
		"rasc_tenant_cap_changes_total",
		"rasc_tenant_fair_share_recomputes_total",
		"rasc_tenant_active",
		"rasc_tenant_queued",
		"rasc_tenant_capacity_bps",
		"rasc_tenant_demand_bps",
		"rasc_tenant_cap_notifications_coalesced_total",
		"rasc_tenant_recompute_incremental_total",
		"rasc_tenant_hosts",
		"rasc_tenant_recompute_duration_seconds",
	} {
		if !strings.Contains(exp, name) {
			t.Errorf("%s missing from exposition", name)
		}
	}
}
