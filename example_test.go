package rasc_test

import (
	"fmt"
	"time"

	"rasc.dev/rasc"
)

// ExampleNewSimulated builds a small deterministic deployment and reports
// its size.
func ExampleNewSimulated() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 8, Seed: 1})
	fmt.Println(sys.Nodes(), "nodes")
	// Output: 8 nodes
}

// ExampleSystem_Submit composes an application and inspects its placement.
func ExampleSystem_Submit() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 16, Seed: 42})
	req := rasc.Request{
		ID:        "example",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			{Services: []string{"filter", "transcode"}, Rate: 10},
		},
	}
	comp, err := sys.Submit(0, req, rasc.ComposerMinCost)
	if err != nil {
		fmt.Println("rejected:", err)
		return
	}
	fmt.Println("stages placed:", len(comp.Placements()))
	// Output: stages placed: 2
}

// ExampleComposition_Stats streams for a while and reads delivery metrics.
func ExampleComposition_Stats() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 16, Seed: 42})
	req := rasc.Request{
		ID:        "example",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			{Services: []string{"filter"}, Rate: 10},
		},
	}
	comp, _ := sys.Submit(0, req, rasc.ComposerMinCost)
	sys.Run(10 * time.Second)
	s := comp.Stats()
	fmt.Println("delivered more than 50 units:", s.Received > 50)
	// Output: delivered more than 50 units: true
}

// ExampleSystem_EnableTracing shows per-unit timeline reconstruction.
func ExampleSystem_EnableTracing() {
	sys := rasc.NewSimulated(rasc.Options{Nodes: 12, Seed: 7})
	buf := sys.EnableTracing(100_000)
	req := rasc.Request{
		ID:        "traced",
		UnitBytes: 1250,
		Substreams: []rasc.Substream{
			{Services: []string{"filter", "encrypt"}, Rate: 10},
		},
	}
	if _, err := sys.Submit(0, req, rasc.ComposerMinCost); err != nil {
		fmt.Println("rejected:", err)
		return
	}
	sys.Run(5 * time.Second)
	tl := buf.Timeline("traced", 0, 20)
	fmt.Println("unit 20 recorded events:", len(tl) >= 4)
	// Output: unit 20 recorded events: true
}
