package stream_test

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/transport"
)

// TestDataPlaneConservationUnderChaos drives the batched, sharded data
// plane through chaotic message timing (delay jitter + reordering, which
// never lose units) plus deliberate scheduler pressure, then checks the
// conservation law the Throughput API promises: every emitted unit is
// eventually delivered or charged to exactly one drop counter. Runs under
// -race in CI to shake out data races in the batch/flush/shard paths.
func TestDataPlaneConservationUnderChaos(t *testing.T) {
	const reqID = "cons-a"
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 16,
		Seed:  7,
		DataPlane: stream.DataPlaneConfig{
			BatchUnits:    8,
			FlushInterval: time.Millisecond,
			Shards:        4,
		},
		// Delay and Reorder perturb timing without losing messages;
		// Drop/Duplicate would (correctly) break unit conservation.
		Chaos: &transport.ChaosConfig{
			Seed:        7,
			Delay:       2 * time.Millisecond,
			DelayJitter: 5 * time.Millisecond,
			Reorder:     0.2,
		},
		// A small ready queue plus jittered processing forces queue-full
		// and laxity drops, exercising the dropped term of the law.
		QueueCapacity: 4,
		ProcJitter:    0.3,
	})
	req := simpleRequest(reqID, 120, "filter", "transcode")
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 8*time.Second)

	// Stop emission, then drain: open batches hit their flush deadlines,
	// queued units are processed or dropped, held chaos messages flush.
	s.Engines[0].StopSources(reqID)
	s.Sim.RunUntil(s.Sim.Now() + 3*time.Second)

	var total stream.Throughput
	for _, e := range s.Engines {
		total.Accumulate(e.Throughput(reqID, 0))
	}
	if total.EmittedUnits == 0 {
		t.Fatal("scenario emitted nothing")
	}
	if total.DeliveredUnits == 0 {
		t.Fatal("scenario delivered nothing")
	}
	if total.DroppedUnits == 0 {
		t.Fatal("scenario dropped nothing; pressure knobs no longer bite and the dropped term is untested")
	}
	if total.EmittedUnits != total.DeliveredUnits+total.DroppedUnits {
		t.Fatalf("unit conservation violated: emitted %d != delivered %d + dropped %d (leak of %d)",
			total.EmittedUnits, total.DeliveredUnits, total.DroppedUnits,
			total.EmittedUnits-total.DeliveredUnits-total.DroppedUnits)
	}
	if total.EmittedBytes != total.DeliveredBytes+total.DroppedBytes {
		t.Fatalf("byte conservation violated: emitted %d != delivered %d + dropped %d",
			total.EmittedBytes, total.DeliveredBytes, total.DroppedBytes)
	}
	t.Logf("conserved: emitted=%d delivered=%d dropped=%d",
		total.EmittedUnits, total.DeliveredUnits, total.DroppedUnits)
}

// TestShardedDeliveryPreservesSubstreamOrder runs a multi-substream request
// on a sharded engine and checks that every substream still observes
// in-order delivery at the sink (substreams are pinned to one shard).
func TestShardedDeliveryPreservesSubstreamOrder(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes:     12,
		Seed:      3,
		DataPlane: stream.DefaultDataPlane(),
	})
	req := simpleRequest("shard-a", 40, "filter", "transcode")
	req.Substreams = append(req.Substreams, req.Substreams[0])
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)

	for sub := 0; sub < 2; sub++ {
		sink := s.Engines[0].Sink("shard-a", sub)
		if sink == nil {
			t.Fatalf("no sink for substream %d", sub)
		}
		if sink.Received == 0 {
			t.Fatalf("substream %d delivered nothing on the sharded plane", sub)
		}
		if sink.OutOfOrder != 0 {
			t.Fatalf("substream %d saw %d out-of-order units; shard pinning broken",
				sub, sink.OutOfOrder)
		}
	}
}
