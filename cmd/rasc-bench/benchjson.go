package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/experiment"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
)

// benchResult is one machine-readable benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// benchReport is the BENCH_compose.json schema: composition micro-benches
// plus the wall clock of a one-seed figure sweep.
type benchReport struct {
	GoVersion             string        `json:"go_version"`
	GoMaxProcs            int           `json:"gomaxprocs"`
	Parallelism           int           `json:"parallelism"`
	Benchmarks            []benchResult `json:"benchmarks"`
	SweepCells            int           `json:"sweep_cells"`
	SweepWallClockSeconds float64       `json:"sweep_wall_clock_seconds"`
}

func record(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

// benchComposeInput mirrors the root bench_test.go fixture: `hosts`
// candidates per stage across `stages` services at the given rate.
func benchComposeInput(hosts, stages, rate int) core.Input {
	mk := func(i int) overlay.NodeInfo {
		return overlay.NodeInfo{ID: overlay.HashID(fmt.Sprintf("h%d", i)), Addr: "sim://x"}
	}
	chain := make([]string, stages)
	for j := range chain {
		chain[j] = fmt.Sprintf("s%d", j)
	}
	in := core.Input{
		Request: spec.Request{
			ID: "bench", UnitBytes: 1250,
			Substreams: []spec.Substream{{Services: chain, Rate: rate}},
		},
		Source:       mk(1000),
		Dest:         mk(1001),
		SourceReport: monitor.Report{InBpsCap: 1e8, OutBpsCap: 1e8},
		DestReport:   monitor.Report{InBpsCap: 1e8, OutBpsCap: 1e8},
		Candidates:   map[string][]core.Candidate{},
		Rand:         rand.New(rand.NewSource(1)),
	}
	var cands []core.Candidate
	for h := 0; h < hosts; h++ {
		cands = append(cands, core.Candidate{
			Info:   mk(h),
			Report: monitor.Report{InBpsCap: 2e5, OutBpsCap: 2e5, DropRatio: float64(h%5) * 0.01},
		})
	}
	for _, svc := range chain {
		in.Candidates[svc] = cands
	}
	return in
}

// admissionReport is the BENCH_admission.json schema: the gate's decision
// latency with a large concurrent tenant population.
type admissionReport struct {
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Tenants    int           `json:"tenants"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runAdmissionBenchJSON measures the admission-control decision path at
// 1k concurrent applications — the per-submission cost the gate adds in
// front of composition — and writes the report to path.
func runAdmissionBenchJSON(path string) error {
	const tenants = 1000
	report := admissionReport{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Tenants:    tenants,
	}
	pris := []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort}
	seed := func() *tenant.Gate {
		g := tenant.NewGate(tenant.Config{CapacityBps: 1e9, QueueCapacity: 64})
		for i := 0; i < tenants; i++ {
			g.Admit(fmt.Sprintf("app-%04d", i), pris[i%len(pris)], 1e6, nil)
		}
		return g
	}

	// Every admission re-solves the weighted fairness over the full
	// population: the worst-case decision latency.
	g := seed()
	report.Benchmarks = append(report.Benchmarks, record("Admission/1000tenants",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if dec := g.Admit("probe", spec.Standard, 1e6, nil); dec.State != tenant.StateAdmitted {
					b.Fatalf("probe not admitted: %+v", dec)
				}
				g.Release("probe")
			}
		})))

	// A rejection is the cheap verdict: the candidate's share falls below
	// its floor and no lower-priority tenant is evictable.
	full := tenant.NewGate(tenant.Config{CapacityBps: 1e9, QueueCapacity: -1})
	for i := 0; i < tenants; i++ {
		full.Admit(fmt.Sprintf("app-%04d", i), spec.Critical, 1e6, nil)
	}
	report.Benchmarks = append(report.Benchmarks, record("AdmissionReject/1000tenants",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if dec := full.Admit("probe", spec.BestEffort, 1e9, nil); dec.State != tenant.StateRejected {
					b.Fatalf("probe not rejected: %+v", dec)
				}
			}
		})))

	demands := make([]tenant.Demand, tenants)
	for i := range demands {
		demands[i] = tenant.Demand{
			App:    fmt.Sprintf("app-%04d", i),
			Bps:    float64(1+i%17) * 1e5,
			Weight: []float64{1, 2, 4}[i%3],
		}
	}
	report.Benchmarks = append(report.Benchmarks, record("FairShares/1000demands",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tenant.FairShares(demands, 5e8)
			}
		})))

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runBenchJSON measures the composition fast path and writes the report
// to path. The sweep honours the -parallel flag so before/after files
// capture both the single-core solver wins and the fan-out win.
func runBenchJSON(path string, parallelism int) error {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	report := benchReport{
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: parallelism,
	}

	composeIn := benchComposeInput(16, 3, 20)
	mc := &core.MinCost{}
	report.Benchmarks = append(report.Benchmarks, record("MinCostCompose/16hosts-3stages",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mc.Compose(composeIn); err != nil {
					b.Fatal(err)
				}
			}
		})))

	pruned := &core.MinCost{TopK: 4}
	report.Benchmarks = append(report.Benchmarks, record("MinCostCompose/topk4",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := pruned.Compose(composeIn); err != nil {
					b.Fatal(err)
				}
			}
		})))

	scaling := &core.MinCost{Solver: "scaling"}
	report.Benchmarks = append(report.Benchmarks, record("MinCostCompose/scaling",
		testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scaling.Compose(composeIn); err != nil {
					b.Fatal(err)
				}
			}
		})))

	sweepCfg := experiment.Config{
		Seeds:       []int64{1},
		MeasureFor:  20 * time.Second,
		Parallelism: parallelism,
	}
	start := time.Now()
	res, err := experiment.Run(sweepCfg)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	report.SweepCells = len(res.Runs)
	report.SweepWallClockSeconds = time.Since(start).Seconds()

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
