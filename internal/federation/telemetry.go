package federation

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the federation layer (metric catalogue
// rasc_federation_*). Counters aggregate over every coordinator and
// ledger in the process: one per node in a live deployment, all
// simulated nodes in an experiment.
var (
	telQueries = telemetry.Default().CounterVec(
		"rasc_federation_queries_total",
		"Cross-cluster candidate discovery probes, by role.",
		"role")
	telHandoffs = telemetry.Default().CounterVec(
		"rasc_federation_handoffs_total",
		"Substream hand-offs across a cluster boundary, by result.",
		"result")
	telRemoteComposes = telemetry.Default().Counter(
		"rasc_federation_remote_composes_total",
		"Substreams composed locally on behalf of a remote cluster.")
	telSaturated = telemetry.Default().Counter(
		"rasc_federation_boundary_saturated_total",
		"Reservations rejected because a boundary link was at capacity.")
	telReservedBps = telemetry.Default().Gauge(
		"rasc_federation_boundary_reserved_bps",
		"Boundary-link capacity currently reserved, summed over links.")
	telCreditsActive = telemetry.Default().Gauge(
		"rasc_federation_credits_active",
		"Outstanding boundary-capacity reservations.")

	// Pre-resolved handles: eager registration makes every series
	// visible at 0 on /metrics.
	telQuerySent   = telQueries.With("sent")
	telQueryServed = telQueries.With("served")

	telHandoffOK        = telHandoffs.With("ok")
	telHandoffFailed    = telHandoffs.With("failed")
	telHandoffSaturated = telHandoffs.With("saturated")
)
