package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Decision is one completed adaptation decision: the causal chain from
// trigger event through controller gates and solver run to the
// reallocation outcome, plus the convergence timestamp once the delivered
// rate recovered. Decisions marshal to stable JSON (spans and attributes
// are ordered slices), so journal dumps diff cleanly across runs.
type Decision struct {
	Trace TraceID `json:"trace"`
	App   string  `json:"app"`
	// Trigger is the event kind that opened the trace ("member_dead",
	// "rate_below_threshold", …, or "retry_backoff" for a controller
	// retry of previously failed work).
	Trigger string `json:"trigger"`
	// Cause is the human-readable cause of the trigger (the dead host,
	// the starving substreams).
	Cause string `json:"cause,omitempty"`
	// Mode is the action the controller launched: "incremental" or
	// "full". Empty when the decision completed without launching
	// (the application vanished).
	Mode string `json:"mode,omitempty"`
	// Outcome is "success" or "failed".
	Outcome string `json:"outcome"`
	Err     string `json:"err,omitempty"`

	TriggeredAt time.Duration `json:"triggeredAt"`
	CompletedAt time.Duration `json:"completedAt"`
	// Converged reports that the application's delivered rate was next
	// observed at or above its threshold after the decision completed;
	// ConvergedAt is when.
	Converged   bool          `json:"converged"`
	ConvergedAt time.Duration `json:"convergedAt,omitempty"`

	// Spans is the decision's causal chain, in creation order. Span 1 is
	// the root; gate, trigger, decide, solve and apply spans parent on it.
	Spans []Span `json:"spans"`
}

// Journal is a bounded ring of completed decisions plus the allocator for
// in-flight ones. It is safe for concurrent use: simulations write from
// the event loop, live nodes from the engine actor, and the admin
// endpoints read from HTTP handler goroutines.
type Journal struct {
	mu        sync.Mutex
	decisions []Decision
	head      int
	n         int
	total     int64
	evicted   int64
	nextTrace TraceID
}

// DefaultJournalCapacity is the per-node decision retention when the
// journal is created implicitly by enabling adaptation.
const DefaultJournalCapacity = 256

// NewJournal creates a journal retaining the most recent capacity
// completed decisions.
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{decisions: make([]Decision, capacity)}
}

// Begin opens a decision trace. The root span (ID 1) covers the whole
// decision; it is closed by Complete, which also appends the decision to
// the journal's ring.
func (j *Journal) Begin(now time.Duration, app, trigger, cause string) *ActiveDecision {
	j.mu.Lock()
	j.nextTrace++
	id := j.nextTrace
	j.mu.Unlock()
	a := &ActiveDecision{
		j: j,
		d: Decision{
			Trace:       id,
			App:         app,
			Trigger:     trigger,
			Cause:       cause,
			TriggeredAt: now,
		},
		nextSpan: 1,
	}
	a.d.Spans = append(a.d.Spans, Span{
		Trace: id, ID: 1, Name: "decision", Start: now,
		Attrs: []Attr{A("trigger", trigger), A("cause", cause)},
	})
	return a
}

// append commits one completed decision, evicting the oldest when full.
func (j *Journal) append(d Decision) {
	j.mu.Lock()
	if j.n == len(j.decisions) {
		j.evicted++
		telJournalEvicted.Inc()
	}
	j.decisions[j.head] = d
	j.head = (j.head + 1) % len(j.decisions)
	if j.n < len(j.decisions) {
		j.n++
	}
	j.total++
	j.mu.Unlock()
	telDecisions.With(d.Trigger, d.Outcome).Inc()
	telDecisionLatency.With(d.Trigger).ObserveDuration(d.CompletedAt - d.TriggeredAt)
}

// Converge marks every completed-but-unconverged successful decision of
// the application as converged at now: the delivered rate is back at or
// above threshold, so all of them have taken effect. It is a no-op when
// nothing is awaiting convergence.
func (j *Journal) Converge(app string, now time.Duration) {
	type obs struct {
		trigger string
		latency time.Duration
	}
	var marked []obs
	j.mu.Lock()
	start := (j.head - j.n + len(j.decisions)) % len(j.decisions)
	for i := 0; i < j.n; i++ {
		d := &j.decisions[(start+i)%len(j.decisions)]
		if d.App != app || d.Outcome != "success" || d.Converged {
			continue
		}
		d.Converged = true
		d.ConvergedAt = now
		marked = append(marked, obs{d.Trigger, now - d.TriggeredAt})
	}
	j.mu.Unlock()
	for _, m := range marked {
		telDecisionConvergence.With(m.trigger).ObserveDuration(m.latency)
	}
}

// Decisions returns the retained decisions oldest-first. Spans are shared
// with the journal's storage; treat them as read-only.
func (j *Journal) Decisions() []Decision {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Decision, 0, j.n)
	start := (j.head - j.n + len(j.decisions)) % len(j.decisions)
	for i := 0; i < j.n; i++ {
		out = append(out, j.decisions[(start+i)%len(j.decisions)])
	}
	return out
}

// Len returns the number of retained decisions.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Total returns the number of decisions ever completed.
func (j *Journal) Total() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Evicted returns how many completed decisions the ring has overwritten.
func (j *Journal) Evicted() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.evicted
}

// LastByApp returns the most recent retained decision of every
// application.
func (j *Journal) LastByApp() map[string]Decision {
	out := make(map[string]Decision)
	for _, d := range j.Decisions() {
		out[d.App] = d
	}
	return out
}

// ActiveDecision is a decision trace being built. Methods are safe for
// concurrent use; Complete seals the trace (further spans are dropped).
type ActiveDecision struct {
	j        *Journal
	mu       sync.Mutex
	d        Decision
	nextSpan SpanID
	done     bool
}

// Trace returns the trace ID.
func (a *ActiveDecision) Trace() TraceID { return a.d.Trace }

// App returns the application the decision concerns.
func (a *ActiveDecision) App() string { return a.d.App }

// TriggeredAt returns when the trace was opened.
func (a *ActiveDecision) TriggeredAt() time.Duration { return a.d.TriggeredAt }

// Span appends a completed span parented on the root and returns its ID.
func (a *ActiveDecision) Span(name string, start, end time.Duration, attrs ...Attr) SpanID {
	return a.ChildSpan(1, name, start, end, attrs...)
}

// ChildSpan appends a completed span under an explicit parent.
func (a *ActiveDecision) ChildSpan(parent SpanID, name string, start, end time.Duration, attrs ...Attr) SpanID {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return 0
	}
	a.nextSpan++
	id := a.nextSpan
	a.d.Spans = append(a.d.Spans, Span{
		Trace: a.d.Trace, ID: id, Parent: parent, Name: name,
		Start: start, End: end, Attrs: attrs,
	})
	return id
}

// Annotate appends attributes to the root span.
func (a *ActiveDecision) Annotate(attrs ...Attr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.done {
		return
	}
	a.d.Spans[0].Attrs = append(a.d.Spans[0].Attrs, attrs...)
}

// Complete seals the trace with its outcome and commits it to the
// journal. Calling it again is a no-op.
func (a *ActiveDecision) Complete(now time.Duration, mode string, err error) {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.d.Mode = mode
	a.d.CompletedAt = now
	a.d.Spans[0].End = now
	if err != nil {
		a.d.Outcome = "failed"
		a.d.Err = err.Error()
	} else {
		a.d.Outcome = "success"
	}
	d := a.d
	a.mu.Unlock()
	a.j.append(d)
}

// FormatDecision renders one decision as readable text: the summary line,
// the cause, then the span chain indented in time order.
func FormatDecision(d Decision) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %d app=%s trigger=%s mode=%s outcome=%s\n",
		d.Trace, d.App, d.Trigger, orDash(d.Mode), d.Outcome)
	fmt.Fprintf(&sb, "  triggered %v, completed %v (+%v)", d.TriggeredAt, d.CompletedAt, d.CompletedAt-d.TriggeredAt)
	if d.Converged {
		fmt.Fprintf(&sb, ", converged %v (+%v)", d.ConvergedAt, d.ConvergedAt-d.TriggeredAt)
	} else {
		sb.WriteString(", not converged")
	}
	sb.WriteByte('\n')
	if d.Cause != "" {
		fmt.Fprintf(&sb, "  cause: %s\n", d.Cause)
	}
	if d.Err != "" {
		fmt.Fprintf(&sb, "  error: %s\n", d.Err)
	}
	spans := append([]Span(nil), d.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, s := range spans {
		fmt.Fprintf(&sb, "  %12v %-10s", s.Start, s.Name)
		if s.End > s.Start {
			fmt.Fprintf(&sb, " +%v", s.End-s.Start)
		}
		for _, at := range s.Attrs {
			fmt.Fprintf(&sb, " %s=%s", at.Key, at.Val)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatDecisions renders a decision list as readable text, one block per
// decision.
func FormatDecisions(ds []Decision) string {
	var sb strings.Builder
	for i, d := range ds {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(FormatDecision(d))
	}
	return sb.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
