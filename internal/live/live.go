// Package live runs a RASC node over real TCP sockets and the wall clock.
// The protocol stack (overlay, DHT, discovery, monitoring, scheduling,
// stream engine) is single-threaded by design; here every inbound frame
// and timer callback is serialized onto one actor goroutine, so the exact
// same code that runs in the simulator runs against real networks.
package live

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/dht"
	"rasc.dev/rasc/internal/discovery"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

// Config parameterizes a live node.
type Config struct {
	// Listen is the TCP listen address ("host:port", port 0 = any).
	Listen string
	// Name seeds the node's overlay ID (hashed); defaults to the bound
	// address.
	Name string
	// Bootstrap, when non-empty, is an existing node's address to join
	// through; empty starts a new overlay.
	Bootstrap string
	// Services to announce after joining.
	Services []string
	// Catalog defaults to services.Standard().
	Catalog services.Catalog
	// InBps/OutBps declare the node's access capacity for the
	// availability vector (defaults 10 Mbps).
	InBps, OutBps float64
	// JoinTimeout bounds the join handshake (default 10s).
	JoinTimeout time.Duration
	// UDPData sends stream data units over UDP (loss-tolerant) while
	// control stays on TCP, mirroring the simulated transport's
	// datagram semantics.
	UDPData bool
	// RefreshInterval is how often service registrations are re-published
	// to the DHT so they migrate to new key roots as the ring changes
	// (default 2s).
	RefreshInterval time.Duration
	// RecordTTL is how long a DHT registration survives without a refresh
	// — a crashed node's services disappear from discovery within this
	// bound (default 10s; must exceed RefreshInterval).
	RecordTTL time.Duration
	// DisableGossip turns the membership protocol off: lookups go to the
	// DHT and composition fetches stats per host, as before.
	DisableGossip bool
	// Cluster names the federation cluster this node belongs to. Empty
	// runs the node flat (no federation); set, it scopes gossip to the
	// cluster, runs a federation coordinator, and serves
	// /debug/rasc/clusters. Requires gossip.
	Cluster string
	// BorderPeers lists remote clusters' border node addresses this node
	// exchanges cluster summaries with. Only border nodes set it; other
	// cluster members learn remote clusters through their border.
	BorderPeers []string
	// BoundaryBps is the boundary-link capacity this node's ledger grants
	// toward each remote cluster it learns of (default 100 Mbps). The
	// effective grant is the minimum of both sides' advertisements.
	BoundaryBps float64
	// Gossip tunes the membership protocol (zero value = defaults: 1s
	// probe period, 300ms probe timeout, 3s suspicion timeout).
	Gossip gossip.Config
	// Resilience tunes the async send pipeline wrapped around the protocol
	// endpoint: per-peer bounded queues, batch coalescing, retry with
	// backoff, and circuit breakers (zero value = defaults).
	Resilience transport.ResilientConfig
	// DisableResilience sends every frame synchronously on the caller's
	// goroutine, without queues, retries or breakers. Peers then must not
	// batch either: batch envelopes are only unpacked by resilient nodes.
	DisableResilience bool
	// Chaos, when it injects any fault, wraps the wire below the resilient
	// pipeline with seedable drop/delay/duplicate/reorder faults — failure
	// drills on a live cluster, exercising the same retry and breaker
	// machinery the tests exercise.
	Chaos transport.ChaosConfig
	// Clock is the node's time source (default: the wall clock). Tests
	// inject scaled or offset clocks so timeout behavior — join, submit,
	// adaptation — runs on virtual time like the simulator's.
	Clock clock.Clock
	// Adaptation, when set, enables the event-driven adaptation control
	// plane on the engine after the node joins: periodic delivery-rate
	// checks plus incremental reallocation on member-dead, breaker-open
	// and drop-spike events.
	Adaptation *stream.AdaptationConfig
	// Tenancy, when set, fronts this node's submission path with an
	// admission gate (priority classes, fair-share caps, admission
	// queue). A zero CapacityBps defaults to min(InBps, OutBps); Clock
	// and Journal are filled in from the node. Served by
	// /debug/rasc/tenants.
	Tenancy *tenant.Config
	// DataPlane tunes the engine's data-unit path (wire batching, flush
	// deadline, execution shards). The zero value is the legacy per-unit
	// path. Served by /debug/rasc/dataplane.
	DataPlane stream.DataPlaneConfig
	// TraceEvents, when positive, attaches a per-unit event buffer of
	// that capacity to the engine, served by /debug/rasc/trace.
	TraceEvents int
	// DecisionJournal is the decision journal's retention (default
	// trace.DefaultJournalCapacity). The journal is always on — it only
	// records when the adaptation plane makes decisions — and is served
	// by /debug/rasc/decisions.
	DecisionJournal int
}

// Node is a running live RASC node.
type Node struct {
	loop    chan func()
	done    chan struct{}
	ep      transport.Endpoint
	Overlay *overlay.Node
	Store   *dht.Store
	Dir     *discovery.Directory
	Engine  *stream.Engine
	// Gossip is the node's membership instance (nil when disabled).
	Gossip *gossip.Gossip
	// Transport is the resilient send pipeline (nil when disabled); its
	// breaker states feed /healthz and gossip suspicion.
	Transport *transport.Resilient
	// Journal records the node's adaptation decision traces, served by
	// /debug/rasc/decisions.
	Journal *trace.Journal
	// Trace is the per-unit event buffer (nil unless Config.TraceEvents
	// enabled it), served by /debug/rasc/trace.
	Trace *trace.Buffer
	// Gate is the node's admission gate (nil unless Config.Tenancy
	// enabled it), served by /debug/rasc/tenants.
	Gate *tenant.Gate
	// Federation is the node's coordinator (nil unless Config.Cluster
	// named one), served by /debug/rasc/clusters.
	Federation *federation.Coordinator

	// clk is the node's base clock (wall time unless injected), used for
	// the off-loop waits (join, submit).
	clk clock.Clock

	closeOnce sync.Once
}

// loopEndpoint serializes inbound frames onto the actor loop.
type loopEndpoint struct {
	inner transport.Endpoint
	post  func(func())
}

func (l *loopEndpoint) Addr() transport.Addr { return l.inner.Addr() }
func (l *loopEndpoint) Send(to transport.Addr, msg transport.Message) error {
	return l.inner.Send(to, msg)
}
func (l *loopEndpoint) SetHandler(h transport.Handler) {
	l.inner.SetHandler(func(from transport.Addr, msg transport.Message) {
		l.post(func() { h(from, msg) })
	})
}
func (l *loopEndpoint) SetDropHandler(h transport.Handler) {
	l.inner.SetDropHandler(func(from transport.Addr, msg transport.Message) {
		l.post(func() { h(from, msg) })
	})
}
func (l *loopEndpoint) Close() error { return l.inner.Close() }

// loopClock posts timer callbacks onto the actor loop. It wraps any base
// clock — the wall clock in production, a scaled or offset clock in tests
// — so the protocol stack's notion of time is injectable end to end.
type loopClock struct {
	base clock.Clock
	post func(func())
}

func (c loopClock) Now() time.Duration { return c.base.Now() }
func (c loopClock) After(d time.Duration, fn func()) func() {
	return c.base.After(d, func() { c.post(fn) })
}

// Start boots a live node: binds the listener, builds the protocol stack,
// joins (or bootstraps) the overlay and announces services. It blocks
// until the node is a member of the overlay.
func Start(cfg Config) (*Node, error) {
	if cfg.Catalog == nil {
		cfg.Catalog = services.Standard()
	}
	if cfg.InBps == 0 {
		cfg.InBps = 10e6
	}
	if cfg.OutBps == 0 {
		cfg.OutBps = 10e6
	}
	if cfg.JoinTimeout == 0 {
		cfg.JoinTimeout = 10 * time.Second
	}
	if cfg.RefreshInterval <= 0 {
		cfg.RefreshInterval = 2 * time.Second
	}
	if cfg.RecordTTL <= 0 {
		cfg.RecordTTL = 10 * time.Second
	}
	if cfg.RecordTTL <= cfg.RefreshInterval {
		return nil, fmt.Errorf("live: RecordTTL %v must exceed RefreshInterval %v", cfg.RecordTTL, cfg.RefreshInterval)
	}
	if cfg.Cluster != "" && cfg.DisableGossip {
		return nil, fmt.Errorf("live: federation (Cluster %q) requires gossip", cfg.Cluster)
	}
	if cfg.BoundaryBps <= 0 {
		cfg.BoundaryBps = 1e8
	}
	var ep transport.Endpoint
	var err error
	if cfg.UDPData {
		ep, err = transport.NewHybrid(cfg.Listen)
	} else {
		ep, err = transport.NewTCP(cfg.Listen)
	}
	if err != nil {
		return nil, err
	}
	n := &Node{
		loop: make(chan func(), 1024),
		done: make(chan struct{}),
	}
	go n.run()
	// Wire order, outermost first: Resilient → Chaos → socket. Chaos sits
	// below the pipeline so injected faults exercise the same retry and
	// breaker machinery real network trouble would.
	if cfg.Chaos.Active() {
		ep = transport.NewChaos(ep, cfg.Chaos, nil)
	}
	if !cfg.DisableResilience {
		rcfg := cfg.Resilience
		userCB := rcfg.OnBreakerChange
		rcfg.OnBreakerChange = func(peer transport.Addr, state transport.BreakerState) {
			if userCB != nil {
				userCB(peer, state)
			}
			if state != transport.BreakerOpen {
				return
			}
			// First-hand delivery failure: hand the peer to the membership
			// layer ahead of its own probe timeouts, and publish the
			// breaker verdict to the adaptation control plane so affected
			// streams shift away before the gossip verdict lands.
			n.post(func() {
				if n.Gossip == nil {
					return
				}
				n.Gossip.SuspectAddr(peer)
				if info, ok := n.Gossip.InfoByAddr(peer); ok {
					n.Engine.OnBreakerOpen(info.ID)
				}
			})
		}
		n.Transport = transport.NewResilient(ep, rcfg)
		ep = n.Transport
	}
	n.ep = ep
	post := n.post
	lep := &loopEndpoint{inner: ep, post: post}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	n.clk = cfg.Clock
	clk := loopClock{base: cfg.Clock, post: post}
	name := cfg.Name
	if name == "" {
		name = string(ep.Addr())
	}
	joined := make(chan struct{})
	n.DoSync(func() {
		n.Overlay = overlay.NewNode(overlay.HashID(name), lep, clk)
		// Cluster identity rides NodeInfo; set it before the join spreads
		// this node's info through the overlay.
		n.Overlay.SetCluster(cfg.Cluster)
		n.Store = dht.New(n.Overlay, clk)
		// Registrations age out unless refreshed (StartRefresh below
		// re-publishes every RefreshInterval), so a crashed node's
		// services disappear from discovery within the TTL.
		n.Store.TTL = cfg.RecordTTL
		n.Dir = discovery.New(n.Overlay, n.Store, clk)
		n.Engine = stream.NewEngine(n.Overlay, clk, n.Dir, cfg.Catalog, newLiveRand(name), stream.Config{
			InBps:     cfg.InBps,
			OutBps:    cfg.OutBps,
			DataPlane: cfg.DataPlane,
		})
		capJ := cfg.DecisionJournal
		if capJ <= 0 {
			capJ = trace.DefaultJournalCapacity
		}
		n.Journal = trace.NewJournal(capJ)
		n.Engine.SetDecisionJournal(n.Journal)
		if cfg.TraceEvents > 0 {
			n.Trace = trace.NewBuffer(cfg.TraceEvents)
			n.Engine.SetTracer(n.Trace)
		}
		if cfg.Tenancy != nil {
			tcfg := *cfg.Tenancy
			if tcfg.CapacityBps <= 0 {
				tcfg.CapacityBps = cfg.InBps
				if cfg.OutBps < tcfg.CapacityBps {
					tcfg.CapacityBps = cfg.OutBps
				}
			}
			if tcfg.Clock == nil {
				tcfg.Clock = clk
			}
			if tcfg.Journal == nil {
				tcfg.Journal = n.Journal
			}
			n.Gate = tenant.NewGate(tcfg)
			n.Engine.SetTenantGate(n.Gate)
			if tcfg.PerHostLedger {
				// Seed the ledger with this node; gossip digests grow it
				// as members are learned (see OnDigest below).
				self := cfg.InBps
				if cfg.OutBps < self {
					self = cfg.OutBps
				}
				n.Gate.UpsertHost(n.Overlay.ID().String(), self)
			}
		}
		if !cfg.DisableGossip {
			gcfg := cfg.Gossip
			if cfg.Cluster != "" {
				gcfg.Cluster = cfg.Cluster
				gcfg.BoundaryBps = cfg.BoundaryBps
				for _, addr := range cfg.BorderPeers {
					// The peer's ID is unknown until the first exchange; the
					// border protocol addresses peers by transport address.
					gcfg.BorderPeers = append(gcfg.BorderPeers, overlay.NodeInfo{Addr: transport.Addr(addr)})
				}
			}
			n.Gossip = gossip.New(n.Overlay, clk, newLiveRand(name+"/gossip"), gcfg)
			eng, dir, ov := n.Engine, n.Dir, n.Overlay
			n.Gossip.SetDigestFunc(func() gossip.Digest {
				return gossip.Digest{
					Report:   eng.Monitor.Report(clk.Now()),
					Services: dir.LocalServices(),
				}
			})
			n.Gossip.OnMemberDead(func(info overlay.NodeInfo) {
				ov.RemovePeer(info.ID)
				eng.OnPeerDead(info.ID)
				if n.Gate != nil && n.Gate.PerHostLedger() {
					// Release the dead host's budget; RemoveHost is
					// idempotent, so repeated verdicts release it once.
					n.Gate.RemoveHost(info.ID.String())
				}
			})
			// Disseminated digests feed the control plane's drop-spike
			// trigger (a no-op until an AdaptationConfig arms it) and,
			// with a per-host ledger, the admission gate's view of each
			// member's access capacity.
			n.Gossip.OnDigest(func(info overlay.NodeInfo, rep monitor.Report) {
				eng.ObserveHostReport(info.ID, rep)
				if n.Gate != nil && n.Gate.PerHostLedger() {
					budget := rep.InBpsCap
					if rep.OutBpsCap < budget {
						budget = rep.OutBpsCap
					}
					n.Gate.UpsertHost(info.ID.String(), budget)
				}
			})
			dir.SetView(n.Gossip)
			eng.SetStatsProvider(n.Gossip.ReportFor)
			if cfg.Cluster != "" {
				// Every live node arbiters its own boundary ledger; the
				// remote side of each hand-off reserves at the border that
				// serves it, so both endpoints account the debit. Links are
				// granted as remote clusters introduce themselves through
				// summaries, at the minimum of both sides' advertisements.
				led := federation.NewLedger()
				n.Federation = federation.New(federation.Config{
					Cluster:      cfg.Cluster,
					Node:         n.Overlay,
					Ledger:       led,
					Summaries:    n.Gossip.Summaries,
					LocalSummary: n.Gossip.LocalSummary,
				})
				n.Engine.SetFederation(n.Federation)
				n.Gossip.OnSummary(func(s gossip.ClusterSummary) {
					capBps := cfg.BoundaryBps
					if s.BoundaryBps > 0 && s.BoundaryBps < capBps {
						capBps = s.BoundaryBps
					}
					led.SetLink(cfg.Cluster, s.Cluster, capBps)
				})
				n.Gossip.OnSummaryLost(func(cluster string) {
					eng.OnRemoteClusterLost(cluster)
				})
			}
		}
		if cfg.Bootstrap == "" {
			n.Overlay.Bootstrap()
			close(joined)
			return
		}
		n.Overlay.Join(transport.Addr(cfg.Bootstrap), func() { close(joined) })
	})
	// The join wait runs on the node's clock, not the wall clock, so tests
	// on scaled virtual time bound the handshake consistently with every
	// other timer in the stack.
	joinTimeout := make(chan struct{})
	cancelJoinTimer := cfg.Clock.After(cfg.JoinTimeout, func() { close(joinTimeout) })
	select {
	case <-joined:
		cancelJoinTimer()
	case <-joinTimeout:
		n.Close()
		return nil, fmt.Errorf("live: join through %s timed out", cfg.Bootstrap)
	}
	n.DoSync(func() {
		for _, svc := range cfg.Services {
			n.Dir.Announce(svc)
		}
		// Keep registrations converged as the ring grows.
		n.Dir.StartRefresh(cfg.RefreshInterval)
		// Periodically exchange leaf sets so concurrent joins converge.
		var stabilize func()
		stabilize = func() {
			n.Overlay.Stabilize()
			clk.After(2*time.Second, stabilize)
		}
		clk.After(time.Second, stabilize)
		// Membership bootstraps from the post-join leaf set; anti-entropy
		// pulls the rest of the roster.
		if n.Gossip != nil {
			n.Gossip.Seed(n.Overlay.Leafset())
			n.Gossip.Start()
		}
		if cfg.Adaptation != nil {
			n.Engine.EnableAdaptation(*cfg.Adaptation)
		}
	})
	return n, nil
}

// run is the actor loop.
func (n *Node) run() {
	for {
		select {
		case fn := <-n.loop:
			fn()
		case <-n.done:
			return
		}
	}
}

// post enqueues fn on the actor loop, dropping it if the node is closed.
func (n *Node) post(fn func()) {
	select {
	case n.loop <- fn:
	case <-n.done:
	}
}

// Do runs fn on the actor loop asynchronously. All access to the node's
// protocol objects (Overlay, Store, Dir, Engine) must go through Do or
// DoSync.
func (n *Node) Do(fn func()) { n.post(fn) }

// DoSync runs fn on the actor loop and waits for it to finish.
func (n *Node) DoSync(fn func()) {
	ch := make(chan struct{})
	n.post(func() {
		fn()
		close(ch)
	})
	select {
	case <-ch:
	case <-n.done:
	}
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return string(n.ep.Addr()) }

// Submit composes and starts a request from this node, blocking until
// composition completes or timeout passes. It is SubmitContext with
// context.Background().
func (n *Node) Submit(req spec.Request, composerName string, timeout time.Duration) (*core.ExecutionGraph, error) {
	return n.SubmitContext(context.Background(), req, composerName, timeout)
}

// SubmitContext composes and starts a request from this node, blocking
// until composition completes, timeout passes, or ctx is done. A
// cancelled context abandons the wait and returns ctx.Err(); the compose
// RPCs already in flight finish (and are discarded) on the actor loop.
func (n *Node) SubmitContext(ctx context.Context, req spec.Request, composerName string, timeout time.Duration) (*core.ExecutionGraph, error) {
	type result struct {
		graph *core.ExecutionGraph
		err   error
	}
	ch := make(chan result, 1)
	telComposeAttempts.Inc()
	n.Do(func() {
		composer, err := core.ByName(composerName)
		if err != nil {
			telComposeFailures.Inc()
			ch <- result{err: err}
			return
		}
		n.Engine.Submit(req, composer, timeout, func(g *core.ExecutionGraph, err error) {
			if err != nil {
				telComposeFailures.Inc()
			}
			telActiveRequests.Set(float64(n.Engine.ActiveRequests()))
			ch <- result{graph: g, err: err}
		})
	})
	// Bound the wait on the node's clock (injectable), not the wall
	// clock, so scaled-time tests see submit deadlines consistent with
	// the RPC timeouts the engine itself runs on.
	expired := make(chan struct{})
	cancelTimer := n.clk.After(timeout+time.Second, func() { close(expired) })
	defer cancelTimer()
	select {
	case r := <-ch:
		return r.graph, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-expired:
		return nil, fmt.Errorf("live: submit timed out")
	}
}

// Stats reads a composed request's delivery statistics from this node's
// sinks.
func (n *Node) Stats(req string, substream int) (s stream.SinkSnapshot) {
	n.DoSync(func() {
		if sink := n.Engine.Sink(req, substream); sink != nil {
			s = stream.Snapshot(sink)
		}
		s.Emitted = n.Engine.EmittedUnits(req, substream)
	})
	return s
}

// newLiveRand seeds a node-local random source from the node name and the
// wall clock (live nodes need not be reproducible).
func newLiveRand(name string) *rand.Rand {
	h := overlay.HashID(name)
	seed := int64(h[0])<<56 | int64(h[1])<<48 | int64(h[2])<<40 | int64(h[3])<<32 | time.Now().UnixNano()&0xffffffff
	return rand.New(rand.NewSource(seed))
}

// Close shuts the node down.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.ep.Close()
	})
}
