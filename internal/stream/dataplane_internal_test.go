package stream

import (
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/transport"
)

// testClock is a manually advanced clock.Clock for exercising the batcher's
// flush-deadline timers without a simulator.
type testClock struct {
	now    time.Duration
	timers []*testTimer
}

type testTimer struct {
	at      time.Duration
	fn      func()
	stopped bool
}

func (c *testClock) Now() time.Duration { return c.now }

func (c *testClock) After(d time.Duration, fn func()) (cancel func()) {
	t := &testTimer{at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return func() { t.stopped = true }
}

// advance moves the clock forward by d, firing due timers in time order.
func (c *testClock) advance(d time.Duration) {
	target := c.now + d
	for {
		best := -1
		for i, t := range c.timers {
			if t.stopped || t.at > target {
				continue
			}
			if best < 0 || t.at < c.timers[best].at {
				best = i
			}
		}
		if best < 0 {
			break
		}
		t := c.timers[best]
		t.stopped = true
		c.now = t.at
		t.fn()
	}
	c.now = target
}

// stubEndpoint is a transport.Endpoint that records accepted messages and
// can be told to refuse sends, mimicking a saturated uplink.
type stubEndpoint struct {
	addr transport.Addr
	fail error
	sent []transport.Message
}

func (s *stubEndpoint) Addr() transport.Addr { return s.addr }

func (s *stubEndpoint) Send(_ transport.Addr, msg transport.Message) error {
	if s.fail != nil {
		return s.fail
	}
	s.sent = append(s.sent, msg)
	return nil
}

func (s *stubEndpoint) SetHandler(transport.Handler)     {}
func (s *stubEndpoint) SetDropHandler(transport.Handler) {}
func (s *stubEndpoint) Close() error                     { return nil }

func newStubEngine(clk *testClock, ep *stubEndpoint, dp DataPlaneConfig) *Engine {
	node := overlay.NewNode(overlay.HashID("stub"), ep, clk)
	return NewEngine(node, clk, nil, nil, rand.New(rand.NewSource(1)), Config{
		InBps:     1e9,
		OutBps:    1e9,
		DataPlane: dp,
	})
}

var stubPeer = overlay.NodeInfo{ID: overlay.HashID("peer"), Addr: "peer"}

// Regression for the uplink-skew bug: a unit the transport refuses must not
// charge the send meter — OutBpsUsed previously inflated exactly when the
// link was congested, misleading the composer's availability vector.
func TestSendUnitChargesOnlyTransportedBytes(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub", fail: transport.ErrBacklog}
	e := newStubEngine(clk, ep, DataPlaneConfig{})

	m := dataMsg{Req: "app", Substream: 0, Stage: 1, Seq: 1, Size: 1250}
	if err := e.sendUnit(stubPeer, m); err == nil {
		t.Fatal("sendUnit must surface the transport error")
	}
	clk.now += time.Second
	if err := e.sendUnit(stubPeer, m); err == nil {
		t.Fatal("sendUnit must surface the transport error")
	}
	if got := e.Monitor.Report(clk.now).OutBpsUsed; got != 0 {
		t.Fatalf("OutBpsUsed = %v after refused sends, want 0", got)
	}

	ep.fail = nil
	if err := e.sendUnit(stubPeer, m); err != nil {
		t.Fatalf("sendUnit: %v", err)
	}
	clk.now += time.Second
	if err := e.sendUnit(stubPeer, m); err != nil {
		t.Fatalf("sendUnit: %v", err)
	}
	if got := e.Monitor.Report(clk.now).OutBpsUsed; got <= 0 {
		t.Fatalf("OutBpsUsed = %v after accepted sends, want > 0", got)
	}
	if len(ep.sent) != 2 {
		t.Fatalf("transport saw %d messages, want 2", len(ep.sent))
	}
}

func TestUnitCodecRoundTrip(t *testing.T) {
	units := []pendingUnit{
		{msg: dataMsg{Req: "a", Substream: 0, Stage: 0, Seq: 0, Created: 0, Size: 0}},
		{msg: dataMsg{Req: "app-7", Substream: 3, Stage: 2, Seq: 1 << 40, Created: 90 * time.Minute, Size: 64 << 10}},
		{msg: dataMsg{Req: "", Substream: 1, Stage: 5, Seq: 9, Created: time.Microsecond, Size: 1250}},
	}
	b := appendBatchUnits(nil, units)
	wantLen := 2
	for i := range units {
		wantLen += encodedUnitSize(&units[i].msg)
	}
	if len(b) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", len(b), wantLen)
	}
	got := decodeBatchUnits(b, nil)
	if len(got) != len(units) {
		t.Fatalf("decoded %d units, want %d", len(got), len(units))
	}
	for i := range units {
		if got[i] != units[i].msg {
			t.Fatalf("unit %d = %+v, want %+v", i, got[i], units[i].msg)
		}
	}
}

// Every truncation of a valid batch must be rejected, never partially
// decoded: a batch is all-or-nothing on the wire.
func TestDecodeBatchRejectsTruncation(t *testing.T) {
	units := []pendingUnit{
		{msg: dataMsg{Req: "req-1", Seq: 1, Size: 100}},
		{msg: dataMsg{Req: "req-2", Seq: 2, Size: 200}},
	}
	b := appendBatchUnits(nil, units)
	for cut := 0; cut < len(b); cut++ {
		if got := decodeBatchUnits(b[:cut], nil); got != nil {
			t.Fatalf("decode of %d/%d bytes = %d units, want rejection", cut, len(b), len(got))
		}
	}
	if decodeBatchUnits(nil, nil) != nil {
		t.Fatal("decode of empty buffer must be rejected")
	}
}

func TestBatchFlushOnFull(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub"}
	e := newStubEngine(clk, ep, DataPlaneConfig{BatchUnits: 4, Shards: 1})
	flow := e.flowFor("app", 0)

	for seq := int64(0); seq < 4; seq++ {
		e.batchUnit(stubPeer, pendingUnit{
			msg:  dataMsg{Req: "app", Stage: 1, Seq: seq, Size: 1000},
			key:  "app/0/0",
			flow: flow,
		})
	}
	if len(ep.sent) != 1 {
		t.Fatalf("transport saw %d messages after a full batch, want 1", len(ep.sent))
	}
	if len(e.batches) != 0 {
		t.Fatalf("%d open batches after flush, want 0", len(e.batches))
	}
	units := decodeWireBatch(t, ep.sent[0])
	if len(units) != 4 {
		t.Fatalf("wire batch carries %d units, want 4", len(units))
	}
	for i, u := range units {
		if u.Seq != int64(i) {
			t.Fatalf("unit %d has seq %d, want emission order preserved", i, u.Seq)
		}
	}
	// The padded wire size must bill the simulated payload: 4×1000 bytes.
	env := 48 + len(ep.sent[0].Type)
	if got := ep.sent[0].WireSize() - env; got < 4000 {
		t.Fatalf("batch wire size %d below simulated payload 4000", got)
	}
	if flow.forwardedUnits != 4 || flow.forwardedBytes != 4000 {
		t.Fatalf("flow forwarded %d units / %d bytes, want 4 / 4000",
			flow.forwardedUnits, flow.forwardedBytes)
	}
}

func TestBatchFlushOnDeadline(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub"}
	e := newStubEngine(clk, ep, DataPlaneConfig{BatchUnits: 100, FlushInterval: 2 * time.Millisecond, Shards: 1})
	flow := e.flowFor("app", 0)

	for seq := int64(0); seq < 2; seq++ {
		e.batchUnit(stubPeer, pendingUnit{
			msg:  dataMsg{Req: "app", Stage: 1, Seq: seq, Size: 500},
			flow: flow,
		})
	}
	if len(ep.sent) != 0 {
		t.Fatal("under-full batch flushed before its deadline")
	}
	clk.advance(2 * time.Millisecond)
	if len(ep.sent) != 1 {
		t.Fatalf("transport saw %d messages after the flush deadline, want 1", len(ep.sent))
	}
	if units := decodeWireBatch(t, ep.sent[0]); len(units) != 2 {
		t.Fatalf("deadline flush carried %d units, want 2", len(units))
	}
	// The deadline timer is consumed: nothing further fires.
	clk.advance(time.Second)
	if len(ep.sent) != 1 {
		t.Fatalf("transport saw %d messages after idle time, want 1", len(ep.sent))
	}
}

func TestFlushAllCancelsDeadline(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub"}
	e := newStubEngine(clk, ep, DataPlaneConfig{BatchUnits: 100, FlushInterval: 2 * time.Millisecond, Shards: 1})

	e.batchUnit(stubPeer, pendingUnit{msg: dataMsg{Req: "app", Size: 700}, flow: e.flowFor("app", 0)})
	e.flushAll()
	if len(ep.sent) != 1 {
		t.Fatalf("transport saw %d messages after flushAll, want 1", len(ep.sent))
	}
	clk.advance(time.Second)
	if len(ep.sent) != 1 {
		t.Fatal("cancelled deadline timer still flushed")
	}
}

// A refused batch charges every unit as an uplink drop and leaves the send
// meter untouched — the batched twin of the sendUnit regression above.
func TestBatchSettlesRefusedSends(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub", fail: transport.ErrBacklog}
	e := newStubEngine(clk, ep, DataPlaneConfig{BatchUnits: 2, Shards: 1})
	flow := e.flowFor("app", 0)

	// One forwarded unit and one source emission in the same batch.
	e.batchUnit(stubPeer, pendingUnit{
		msg: dataMsg{Req: "app", Stage: 1, Seq: 1, Size: 1000}, key: "app/0/0", flow: flow,
	})
	e.batchUnit(stubPeer, pendingUnit{
		msg: dataMsg{Req: "app", Stage: 0, Seq: 2, Size: 1000}, fromStage: -1,
		key: "source:app/0", service: "source", isSource: true, flow: flow,
	})
	if e.DropsUplink != 1 {
		t.Fatalf("DropsUplink = %d, want 1 (source drops are monitor-only)", e.DropsUplink)
	}
	if flow.droppedUnits != 2 || flow.droppedBytes != 2000 {
		t.Fatalf("flow dropped %d units / %d bytes, want 2 / 2000", flow.droppedUnits, flow.droppedBytes)
	}
	clk.now += time.Second
	if got := e.Monitor.Report(clk.now).OutBpsUsed; got != 0 {
		t.Fatalf("OutBpsUsed = %v after refused batch, want 0", got)
	}
}

// Oversized request IDs cannot be framed with a u8 length; they must fall
// back to a legacy single-unit message instead of corrupting the batch.
func TestBatchLongRequestIDFallsBack(t *testing.T) {
	clk := &testClock{}
	ep := &stubEndpoint{addr: "stub"}
	e := newStubEngine(clk, ep, DataPlaneConfig{BatchUnits: 8, Shards: 1})

	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	e.batchUnit(stubPeer, pendingUnit{
		msg: dataMsg{Req: string(long), Size: 1000}, key: "k", flow: e.flowFor(string(long), 0),
	})
	if len(e.batches) != 0 {
		t.Fatal("oversized request ID was admitted into a batch")
	}
	if len(ep.sent) != 1 {
		t.Fatalf("transport saw %d messages, want 1 legacy fallback", len(ep.sent))
	}
}

func TestUnitPoolClearsReleasedUnits(t *testing.T) {
	u, task := getUnit()
	task.msg = dataMsg{Req: "app", Seq: 9, Size: 1}
	u.ComponentKey = "app/0/0"
	putUnit(u)
	u2, task2 := getUnit()
	if task2.comp != nil || task2.msg != (dataMsg{}) || u2.ComponentKey != "" {
		t.Fatalf("pooled unit retains state: %+v / %+v", u2, task2)
	}
	putUnit(u2)
}

func TestShardForPinsSubstreams(t *testing.T) {
	clk := &testClock{}
	e := newStubEngine(clk, &stubEndpoint{addr: "stub"}, DataPlaneConfig{BatchUnits: 1, Shards: 4})
	if len(e.shards) != 4 {
		t.Fatalf("engine has %d shards, want 4", len(e.shards))
	}
	seen := map[*engineShard]bool{}
	for sub := 0; sub < 64; sub++ {
		sh := e.shardFor("app", sub)
		if sh != e.shardFor("app", sub) {
			t.Fatalf("substream %d not pinned to one shard", sub)
		}
		seen[sh] = true
	}
	if len(seen) < 2 {
		t.Fatal("64 substreams all hashed to one shard; distribution broken")
	}
}

// decodeWireBatch strips the overlay's binary data envelope
// (appLen app addrLen addr srcID body) and decodes the batch payload.
func decodeWireBatch(t *testing.T, msg transport.Message) []dataMsg {
	t.Helper()
	b := msg.Payload
	appLen := int(b[0])
	app := string(b[1 : 1+appLen])
	b = b[1+appLen:]
	addrLen := int(b[0])
	b = b[1+addrLen:]
	b = b[overlay.IDBytes:]
	if app != appDataBatch {
		t.Fatalf("wire app = %q, want %q", app, appDataBatch)
	}
	units := decodeBatchUnits(b, nil)
	if units == nil {
		t.Fatal("wire batch payload failed to decode")
	}
	return units
}
