package simnet

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/overlay"
)

func TestNewClusterJoinsEveryone(t *testing.T) {
	c := New(Options{N: 10, Seed: 1})
	for i, n := range c.Nodes {
		if !n.Joined() {
			t.Fatalf("node %d not joined", i)
		}
	}
	if c.Net.NumNodes() != 10 {
		t.Fatalf("network has %d nodes", c.Net.NumNodes())
	}
}

func TestClusterRootAgreesWithRouting(t *testing.T) {
	c := New(Options{N: 12, Seed: 2})
	for trial := 0; trial < 20; trial++ {
		key := overlay.HashID(fmt.Sprintf("key-%d", trial))
		want := c.Root(key)
		var got *overlay.Node
		for _, n := range c.Nodes {
			n := n
			n.Register("t", func(k overlay.ID, src overlay.NodeInfo, body []byte) {
				got = n
			})
		}
		c.Nodes[trial%12].Route(key, "t", nil)
		c.Sim.Run()
		if got != want {
			t.Fatalf("key %v delivered at %v, want %v", key, got.ID(), want.ID())
		}
	}
}

func TestClusterIndex(t *testing.T) {
	c := New(Options{N: 5, Seed: 3})
	for i, n := range c.Nodes {
		if c.Index(n.ID()) != i {
			t.Fatalf("Index(%v) != %d", n.ID(), i)
		}
	}
	if c.Index(overlay.HashID("stranger")) != -1 {
		t.Fatal("unknown ID must index to -1")
	}
}

func TestClusterCustomTopology(t *testing.T) {
	topo := netsim.PlanetLabTopology(netsim.TopologyConfig{Nodes: 4, MinBps: 5e5, MaxBps: 5.1e5}, 9)
	c := New(Options{N: 4, Seed: 9, Topology: topo})
	for i := 0; i < 4; i++ {
		if c.Net.UpCapacity(c.NetIDs[i]) != topo.UpBps[i] {
			t.Fatal("custom topology capacities not applied")
		}
	}
}

func TestClusterPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for N=0")
		}
	}()
	New(Options{N: 0})
}

func TestClusterDeterministic(t *testing.T) {
	mk := func() time.Duration {
		c := New(Options{N: 8, Seed: 4})
		return c.Sim.Now()
	}
	if mk() != mk() {
		t.Fatal("cluster construction not deterministic")
	}
}
