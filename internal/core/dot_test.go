package core

import (
	"strings"
	"testing"
)

func TestDOTRendering(t *testing.T) {
	in := baseInput(req1(10, "filter", "transcode"))
	in.Candidates["filter"] = []Candidate{cand(1, 1000*kbit, 0)}
	in.Candidates["transcode"] = []Candidate{cand(2, 60*kbit, 0), cand(3, 60*kbit, 0)}
	g, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{
		"digraph \"r1\"",
		"source", "dest",
		"subgraph cluster_0",
		"filter", "transcode",
		"->",
		"u/s",
	} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Every line with an arrow must be well-formed (no empty endpoints).
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, "->") {
			parts := strings.SplitN(strings.TrimSpace(line), " -> ", 2)
			if len(parts) != 2 || parts[0] == "" || strings.HasPrefix(parts[1], " ") {
				t.Fatalf("malformed edge line %q", line)
			}
		}
	}
	// Splitting produced two transcode nodes.
	if strings.Count(dot, "transcode") < 2 {
		t.Fatal("split placement missing from DOT output")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("sim://7"); got != "sim___7" {
		t.Fatalf("sanitize = %q", got)
	}
}
