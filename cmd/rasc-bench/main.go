// Command rasc-bench regenerates the RASC paper's evaluation (Figures
// 6–11): for every requested rate it submits a randomized workload with
// each composition algorithm on a simulated 32-node deployment and prints
// the measured series, optionally writing CSV files.
//
// Example:
//
//	rasc-bench                 # full sweep, all figures
//	rasc-bench -figure 7       # one figure
//	rasc-bench -seeds 2 -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rasc.dev/rasc/internal/experiment"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "figure to regenerate (6-11); 0 = all")
		seeds     = flag.Int("seeds", 5, "number of seeded runs to average")
		requests  = flag.Int("requests", 0, "requests per run (0 = calibrated default)")
		nodes     = flag.Int("nodes", 32, "deployment size")
		rates     = flag.String("rates", "5,10,15,20", "per-request rates in units/sec (10 Kbps each)")
		composers = flag.String("composers", "mincost,greedy,random", "composers to compare")
		measure   = flag.Duration("measure", 0, "virtual measurement window (0 = default)")
		csvDir    = flag.String("csv", "", "directory to write per-figure CSV files")
		quiet     = flag.Bool("quiet", false, "suppress per-run progress")
		scal      = flag.Bool("scalability", false, "run the deployment-size sweep instead of the figures")
		p95       = flag.Bool("p95", false, "also print the p95 end-to-end delay table")
		stale     = flag.Duration("stale-stats", 0, "serve monitoring reports cached up to this age (ablation)")
		poisson   = flag.Bool("poisson", false, "Poisson request arrivals instead of a fixed gap")
		bg        = flag.Int("background", 0, "number of cross-traffic background flows")
		parallel  = flag.Int("parallel", 0, "sweep worker-pool size (0 = NumCPU, 1 = serial)")
		jsonPath  = flag.String("json", "", "write compose benchmark results as JSON to this path and exit")
		admJSON   = flag.String("admission-json", "", "write admission-control benchmark results (decision latency at 1k tenants) as JSON to this path and exit")

		dpJSON    = flag.String("dataplane-json", "", "write the legacy-vs-batched data plane throughput comparison as JSON to this path and exit")
		dpSpeedup = flag.Float64("dataplane-min-speedup", 0, "with -dataplane-json: fail unless the batched plane is at least this many times faster")

		tsJSON    = flag.String("tenancy-scale-json", "", "write the incremental-vs-full-recompute tenancy scale comparison (5k tenants, churn + host storms) as JSON to this path and exit")
		tsSpeedup = flag.Float64("tenancy-min-speedup", 0, "with -tenancy-scale-json: fail unless the incremental admit p50 is at least this many times faster")

		fedJSON    = flag.String("federation-json", "", "write the federated-vs-flat multi-cluster composition comparison (3 clusters, partitioned catalog, boundary hand-offs) as JSON to this path and exit")
		fedSuccess = flag.Float64("federation-min-handoff", 0, "with -federation-json: fail unless the hand-off success rate is at least this fraction")
	)
	flag.Parse()

	if *jsonPath != "" {
		if err := runBenchJSON(*jsonPath, *parallel); err != nil {
			fmt.Fprintf(os.Stderr, "bench json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}
	if *dpJSON != "" {
		if err := runDataplaneBenchJSON(*dpJSON, *dpSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "dataplane bench json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *dpJSON)
		return
	}
	if *tsJSON != "" {
		if err := runTenancyScaleBenchJSON(*tsJSON, *tsSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "tenancy scale bench json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *tsJSON)
		return
	}
	if *fedJSON != "" {
		if err := runFederationBenchJSON(*fedJSON, *fedSuccess); err != nil {
			fmt.Fprintf(os.Stderr, "federation bench json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *fedJSON)
		return
	}
	if *admJSON != "" {
		if err := runAdmissionBenchJSON(*admJSON); err != nil {
			fmt.Fprintf(os.Stderr, "admission bench json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *admJSON)
		return
	}

	if *scal {
		cfg := experiment.ScalabilityConfig{Parallelism: *parallel}
		if !*quiet {
			cfg.Progress = func(s string) { fmt.Println(s) }
		}
		t, err := experiment.RunScalability(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalability: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println(t)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err == nil {
				path := filepath.Join(*csvDir, "scalability.csv")
				if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err == nil {
					fmt.Printf("wrote %s\n", path)
				}
			}
		}
		return
	}

	var rateList []int
	for _, r := range strings.Split(*rates, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(r))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad rate %q: %v\n", r, err)
			os.Exit(2)
		}
		rateList = append(rateList, v)
	}
	seedList := make([]int64, *seeds)
	for i := range seedList {
		seedList[i] = int64(i + 1)
	}
	cfg := experiment.Config{
		Nodes:           *nodes,
		Seeds:           seedList,
		Rates:           rateList,
		Requests:        *requests,
		Composers:       strings.Split(*composers, ","),
		MeasureFor:      *measure,
		StatsMaxAge:     *stale,
		PoissonArrivals: *poisson,
		BackgroundFlows: *bg,
		Parallelism:     *parallel,
	}
	if !*quiet {
		cfg.Progress = func(s string) { fmt.Println(s) }
	}
	start := time.Now()
	res, err := experiment.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment: %v\n", err)
		os.Exit(1)
	}
	figures := []int{6, 7, 8, 9, 10, 11}
	if *figure != 0 {
		figures = []int{*figure}
	}
	for _, n := range figures {
		t, err := res.Figure(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println(t)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("figure%d.csv", n))
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if *p95 {
		fmt.Println()
		fmt.Println(res.DelayP95Table())
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}
