package services

import "testing"

func TestStandardCatalog(t *testing.T) {
	c := Standard()
	if len(c) != 10 {
		t.Fatalf("standard catalog has %d services, want 10 (§4.1)", len(c))
	}
	for name, def := range c {
		if def.Name != name {
			t.Errorf("%s: Name field mismatch %q", name, def.Name)
		}
		if def.ProcPerUnit <= 0 {
			t.Errorf("%s: non-positive processing cost", name)
		}
		if def.RateRatio != 1 || def.BytesRatio != 1 {
			t.Errorf("%s: standard services must have unit ratios", name)
		}
	}
}

func TestExtendedCatalog(t *testing.T) {
	c := Extended()
	if len(c) != 13 {
		t.Fatalf("extended catalog has %d services, want 13", len(c))
	}
	if c["downsample"].RateRatio != 0.5 {
		t.Fatal("downsample must halve the rate")
	}
	if c["upsample"].RateRatio != 2 {
		t.Fatal("upsample must double the rate")
	}
	if c["shrink"].BytesRatio != 0.5 {
		t.Fatal("shrink must halve unit size")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	c := Standard()
	names := c.Names()
	if len(names) != len(c) {
		t.Fatalf("Names returned %d entries for %d services", len(names), len(c))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, n := range names {
		if _, ok := c[n]; !ok {
			t.Fatalf("Names includes unknown %q", n)
		}
	}
}

func TestMustGet(t *testing.T) {
	c := Standard()
	if c.MustGet("filter").Name != "filter" {
		t.Fatal("MustGet returned wrong def")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet of unknown service must panic")
		}
	}()
	c.MustGet("nope")
}
