package stream_test

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/trace"
)

// The data-plane refactor (binary codec, batching, sharding) must leave the
// legacy path — BatchUnits=1, Shards=1, the zero DataPlaneConfig — bit-
// identical: same delivery order, same timestamps, same drop accounting.
// These digests were captured on the pre-batching engine and pin that
// behavior. If one changes, the legacy data path changed; that is a
// regression, not a golden to refresh.
const (
	goldenSmoothDigest    = "150cb600d3e9bf1b"
	goldenCongestedDigest = "8f344a8bc414479b"
)

// dataPlaneDigest runs a fixed scenario and folds every per-unit trace
// event plus the final source/sink/drop counters into one FNV-1a digest.
// Monitor byte meters are deliberately excluded: the ObserveSend-after-send
// bugfix legitimately changes them when uplinks drop.
func dataPlaneDigest(t *testing.T, opts deploy.SystemOptions, reqID string, rate int, runFor time.Duration, chain ...string) string {
	t.Helper()
	s := deploy.NewSystem(opts)
	buf := trace.NewBuffer(1 << 20)
	for _, e := range s.Engines {
		e.SetTracer(buf)
	}
	req := simpleRequest(reqID, rate, chain...)
	submit(t, s, 0, req, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + runFor)

	h := fnv.New64a()
	for _, ev := range buf.Events() {
		fmt.Fprintf(h, "%d|%d|%s|%s|%d|%d|%d|%s\n",
			ev.At, ev.Kind, ev.Node, ev.Req, ev.Substream, ev.Stage, ev.Seq, ev.Note)
	}
	for i, e := range s.Engines {
		fmt.Fprintf(h, "eng%d|%d|%d|%d|%d\n",
			i, e.DropsQueueFull, e.DropsLaxity, e.DropsUplink, e.DropsDownlink)
	}
	e0 := s.Engines[0]
	fmt.Fprintf(h, "src|%d|%d\n", e0.EmittedUnits(reqID, 0), e0.EmittedBytes(reqID, 0))
	sink := e0.Sink(reqID, 0)
	if sink == nil {
		t.Fatalf("no sink for %s", reqID)
	}
	if sink.Received == 0 {
		t.Fatalf("scenario delivered nothing for %s", reqID)
	}
	fmt.Fprintf(h, "sink|%d|%d|%d|%d|%d|%d\n",
		sink.Received, sink.OutOfOrder, sink.Timely,
		int64(sink.TotalDelay), int64(sink.TotalJitter), sink.Stalls)
	t.Logf("%s: emitted=%d received=%d drops=%d/%d/%d/%d",
		reqID, e0.EmittedUnits(reqID, 0), sink.Received,
		totalDrops(s, func(e engineDrops) int64 { return e.qf }),
		totalDrops(s, func(e engineDrops) int64 { return e.lax }),
		totalDrops(s, func(e engineDrops) int64 { return e.up }),
		totalDrops(s, func(e engineDrops) int64 { return e.down }))
	return fmt.Sprintf("%016x", h.Sum64())
}

type engineDrops struct{ qf, lax, up, down int64 }

func totalDrops(s *deploy.System, pick func(engineDrops) int64) int64 {
	var sum int64
	for _, e := range s.Engines {
		sum += pick(engineDrops{e.DropsQueueFull, e.DropsLaxity, e.DropsUplink, e.DropsDownlink})
	}
	return sum
}

// smoothOpts is an uncongested 12-node deployment: every unit flows
// source → components → sink without drops, pinning ordering and timing.
func smoothOpts() deploy.SystemOptions {
	return deploy.SystemOptions{Nodes: 12, Seed: 1}
}

// congestedOpts forces link and scheduler pressure (background cross
// traffic over bounded link buffers, a tiny ready queue, jittered
// processing) so the digest also pins drop accounting order.
func congestedOpts() deploy.SystemOptions {
	return deploy.SystemOptions{
		Nodes: 12,
		Seed:  5,
		Topology: netsim.PlanetLabTopology(netsim.TopologyConfig{
			Nodes:  12,
			MinBps: 1.5e5,
			MaxBps: 1.2e6,
		}, 5),
		QueueCapacity:   2,
		ProcJitter:      0.3,
		MaxLinkBacklog:  50 * time.Millisecond,
		BackgroundFlows: 24,
		BackgroundBps:   2e5,
	}
}

// TestLegacyDataPlaneBitIdentical pins the zero-config data plane to the
// pre-batching engine's exact event stream on a drop-free run.
func TestLegacyDataPlaneBitIdentical(t *testing.T) {
	got := dataPlaneDigest(t, smoothOpts(), "det-a", 10, 10*time.Second, "filter", "transcode")
	if got != goldenSmoothDigest {
		t.Fatalf("legacy data plane diverged on the smooth scenario:\n got %s\nwant %s", got, goldenSmoothDigest)
	}
}

// TestLegacyDataPlaneBitIdenticalUnderCongestion pins the zero-config data
// plane under link congestion, covering uplink and downlink drop
// accounting order.
func TestLegacyDataPlaneBitIdenticalUnderCongestion(t *testing.T) {
	got := dataPlaneDigest(t, congestedOpts(), "det-b", 60, 12*time.Second, "transcode", "analyze")
	if got != goldenCongestedDigest {
		t.Fatalf("legacy data plane diverged under congestion:\n got %s\nwant %s", got, goldenCongestedDigest)
	}
}

// TestExplicitLegacyConfigBitIdentical pins that an explicit
// DataPlaneConfig{BatchUnits: 1, Shards: 1} is the same engine as the zero
// value — the contract the facade documents for WithDataPlane.
func TestExplicitLegacyConfigBitIdentical(t *testing.T) {
	opts := smoothOpts()
	opts.DataPlane = stream.DataPlaneConfig{BatchUnits: 1, Shards: 1}
	got := dataPlaneDigest(t, opts, "det-a", 10, 10*time.Second, "filter", "transcode")
	if got != goldenSmoothDigest {
		t.Fatalf("explicit BatchUnits=1/Shards=1 diverged from the legacy engine:\n got %s\nwant %s", got, goldenSmoothDigest)
	}

	opts = congestedOpts()
	opts.DataPlane = stream.DataPlaneConfig{BatchUnits: 1, Shards: 1}
	got = dataPlaneDigest(t, opts, "det-b", 60, 12*time.Second, "transcode", "analyze")
	if got != goldenCongestedDigest {
		t.Fatalf("explicit BatchUnits=1/Shards=1 diverged under congestion:\n got %s\nwant %s", got, goldenCongestedDigest)
	}
}

// TestBatchedDataPlaneDeterministic does not pin batched mode to the legacy
// digest (batching legitimately reorders wire flushes) but requires the
// batched engine itself to be deterministic: two identical runs must
// produce identical digests.
func TestBatchedDataPlaneDeterministic(t *testing.T) {
	opts := smoothOpts()
	opts.DataPlane = stream.DefaultDataPlane()
	a := dataPlaneDigest(t, opts, "det-a", 10, 10*time.Second, "filter", "transcode")
	b := dataPlaneDigest(t, opts, "det-a", 10, 10*time.Second, "filter", "transcode")
	if a != b {
		t.Fatalf("batched data plane is not deterministic: %s vs %s", a, b)
	}
}
