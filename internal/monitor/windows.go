// Package monitor implements RASC's resource monitoring (§3.2): sliding
// windows over the latest h data units that estimate arrival rates, drop
// ratios, processing times and input/output bandwidth utilization, plus the
// availability vector A_n published to composing nodes.
package monitor

import "time"

// RateEstimator estimates an event rate from the timestamps of the most
// recent h observations, exactly as the paper averages statistics "over a
// window of size h, including the latest data units received".
type RateEstimator struct {
	samples []time.Duration
	head    int
	n       int
}

// NewRateEstimator creates an estimator with window size h (h >= 2).
func NewRateEstimator(h int) *RateEstimator {
	if h < 2 {
		h = 2
	}
	return &RateEstimator{samples: make([]time.Duration, h)}
}

// Observe records an event at time t. Times must be non-decreasing.
func (r *RateEstimator) Observe(t time.Duration) {
	r.samples[r.head] = t
	r.head = (r.head + 1) % len(r.samples)
	if r.n < len(r.samples) {
		r.n++
	}
}

// Count returns the number of samples currently in the window.
func (r *RateEstimator) Count() int { return r.n }

// Rate returns events per second over the window, or 0 with fewer than two
// samples.
func (r *RateEstimator) Rate() float64 {
	if r.n < 2 {
		return 0
	}
	newest := r.samples[(r.head-1+len(r.samples))%len(r.samples)]
	oldest := r.samples[(r.head-r.n+len(r.samples))%len(r.samples)]
	span := newest - oldest
	if span <= 0 {
		return 0
	}
	return float64(r.n-1) / span.Seconds()
}

// Period returns the mean inter-arrival time, or 0 if unknown.
func (r *RateEstimator) Period() time.Duration {
	rate := r.Rate()
	if rate == 0 {
		return 0
	}
	return time.Duration(float64(time.Second) / rate)
}

// RatioWindow tracks the fraction of positive outcomes over the last h
// observations (e.g. the drop ratio).
type RatioWindow struct {
	bits  []bool
	head  int
	n     int
	trues int
}

// NewRatioWindow creates a window of size h (h >= 1).
func NewRatioWindow(h int) *RatioWindow {
	if h < 1 {
		h = 1
	}
	return &RatioWindow{bits: make([]bool, h)}
}

// Observe records one outcome.
func (w *RatioWindow) Observe(v bool) {
	if w.n == len(w.bits) {
		if w.bits[w.head] {
			w.trues--
		}
	} else {
		w.n++
	}
	w.bits[w.head] = v
	if v {
		w.trues++
	}
	w.head = (w.head + 1) % len(w.bits)
}

// Ratio returns the fraction of true outcomes in the window (0 when empty).
func (w *RatioWindow) Ratio() float64 {
	if w.n == 0 {
		return 0
	}
	return float64(w.trues) / float64(w.n)
}

// Count returns the number of observations in the window.
func (w *RatioWindow) Count() int { return w.n }

// DurationWindow tracks the mean of the last h durations (e.g. component
// running time t_ci).
type DurationWindow struct {
	vals []time.Duration
	head int
	n    int
	sum  time.Duration
}

// NewDurationWindow creates a window of size h (h >= 1).
func NewDurationWindow(h int) *DurationWindow {
	if h < 1 {
		h = 1
	}
	return &DurationWindow{vals: make([]time.Duration, h)}
}

// Observe records one duration.
func (w *DurationWindow) Observe(d time.Duration) {
	if w.n == len(w.vals) {
		w.sum -= w.vals[w.head]
	} else {
		w.n++
	}
	w.vals[w.head] = d
	w.sum += d
	w.head = (w.head + 1) % len(w.vals)
}

// Mean returns the mean duration in the window (0 when empty).
func (w *DurationWindow) Mean() time.Duration {
	if w.n == 0 {
		return 0
	}
	return w.sum / time.Duration(w.n)
}

// BusyMeter measures the fraction of time a single-server resource (the
// node CPU) was busy, over a sliding window of the most recent h
// completions.
type BusyMeter struct {
	times []time.Duration // completion times
	busy  []time.Duration // busy duration of each completion
	head  int
	n     int
	total time.Duration
}

// NewBusyMeter creates a meter with window size h (h >= 2).
func NewBusyMeter(h int) *BusyMeter {
	if h < 2 {
		h = 2
	}
	return &BusyMeter{times: make([]time.Duration, h), busy: make([]time.Duration, h)}
}

// Observe records a completed busy period of length d ending at time t.
func (m *BusyMeter) Observe(t, d time.Duration) {
	if m.n == len(m.times) {
		m.total -= m.busy[m.head]
	} else {
		m.n++
	}
	m.times[m.head] = t
	m.busy[m.head] = d
	m.total += d
	m.head = (m.head + 1) % len(m.times)
}

// Fraction returns the busy fraction over the window ending at time now,
// clamped to [0,1]; 0 with fewer than two samples. The estimate decays
// once the CPU goes idle.
func (m *BusyMeter) Fraction(now time.Duration) float64 {
	if m.n < 2 {
		return 0
	}
	oldestIdx := (m.head - m.n + len(m.times)) % len(m.times)
	if newest := m.times[(m.head-1+len(m.times))%len(m.times)]; now < newest {
		now = newest
	}
	span := now - m.times[oldestIdx]
	if span <= 0 {
		return 1 // back-to-back completions: saturated
	}
	f := float64(m.total-m.busy[oldestIdx]) / float64(span)
	if f > 1 {
		f = 1
	}
	if f < 0 {
		f = 0
	}
	return f
}

// ByteRateMeter measures a byte stream's bit rate over a sliding window of
// the most recent h transfers.
type ByteRateMeter struct {
	times []time.Duration
	bytes []int
	head  int
	n     int
	total int64
}

// NewByteRateMeter creates a meter with window size h (h >= 2).
func NewByteRateMeter(h int) *ByteRateMeter {
	if h < 2 {
		h = 2
	}
	return &ByteRateMeter{times: make([]time.Duration, h), bytes: make([]int, h)}
}

// Observe records size bytes transferred at time t.
func (m *ByteRateMeter) Observe(t time.Duration, size int) {
	if m.n == len(m.times) {
		m.total -= int64(m.bytes[m.head])
	} else {
		m.n++
	}
	m.times[m.head] = t
	m.bytes[m.head] = size
	m.total += int64(size)
	m.head = (m.head + 1) % len(m.times)
}

// Bps returns the observed rate in bits per second over the window ending
// at time now, or 0 with fewer than two samples. Using the current time as
// the window's end makes the estimate decay once traffic stops — a stale
// window must not keep reporting its last throughput forever.
func (m *ByteRateMeter) Bps(now time.Duration) float64 {
	if m.n < 2 {
		return 0
	}
	oldestIdx := (m.head - m.n + len(m.times)) % len(m.times)
	oldest := m.times[oldestIdx]
	if newest := m.times[(m.head-1+len(m.times))%len(m.times)]; now < newest {
		now = newest
	}
	span := now - oldest
	if span <= 0 {
		return 0
	}
	// Exclude the oldest sample's bytes: they arrived before the span
	// began.
	return float64(m.total-int64(m.bytes[oldestIdx])) * 8 / span.Seconds()
}
