package tenant

import (
	"errors"
	"testing"

	"rasc.dev/rasc/internal/spec"
)

func TestLedgerCapacityTracksHosts(t *testing.T) {
	g := NewGate(Config{PerHostLedger: true})
	if !g.PerHostLedger() {
		t.Fatal("PerHostLedger() = false")
	}
	g.UpsertHost("h1", 6000)
	g.UpsertHost("h2", 4000)
	if c := g.CapacityBps(); c != 10000 {
		t.Fatalf("capacity %v, want 10000 (sum of host budgets)", c)
	}
	// Re-announcing an unchanged budget is a no-op; a resized one moves
	// the aggregate by the delta.
	g.UpsertHost("h1", 6000)
	g.UpsertHost("h1", 8000)
	if c := g.CapacityBps(); c != 12000 {
		t.Fatalf("capacity %v, want 12000 after resize", c)
	}
	hosts := g.Hosts()
	if len(hosts) != 2 || hosts[0].Host != "h1" || hosts[1].Host != "h2" {
		t.Fatalf("hosts = %+v", hosts)
	}
	if hosts[0].CapacityBps != 8000 {
		t.Fatalf("h1 capacity %v", hosts[0].CapacityBps)
	}
}

// TestLedgerDeadHostReleasedExactlyOnce is the regression pinning the
// gossip-death contract: duplicate death verdicts for the same host —
// breaker-driven suspicion plus the gossip timeout, or verdicts arriving
// on several nodes' callbacks — must decrement the aggregate exactly
// once.
func TestLedgerDeadHostReleasedExactlyOnce(t *testing.T) {
	g := NewGate(Config{PerHostLedger: true})
	g.UpsertHost("h1", 6000)
	g.UpsertHost("h2", 4000)
	g.Admit("a", spec.Standard, 5000, nil)

	g.RemoveHost("h1")
	if c := g.CapacityBps(); c != 4000 {
		t.Fatalf("capacity %v after death, want 4000", c)
	}
	// The duplicate verdict must change nothing.
	g.RemoveHost("h1")
	g.RemoveHost("h1")
	if c := g.CapacityBps(); c != 4000 {
		t.Fatalf("capacity %v after duplicate deaths, want 4000", c)
	}
	if hosts := g.Hosts(); len(hosts) != 1 || hosts[0].Host != "h2" {
		t.Fatalf("hosts = %+v", hosts)
	}
	// The shrunken capacity re-settles the allocation.
	if cap, ok := g.CapBps("a"); !ok || cap != 4000 {
		t.Fatalf("a's cap %v %v after death, want 4000", cap, ok)
	}
	// A rejoined host restores its budget once, idempotently.
	g.UpsertHost("h1", 6000)
	if c := g.CapacityBps(); c != 10000 {
		t.Fatalf("capacity %v after rejoin, want 10000", c)
	}
}

func TestLedgerPlacementProbe(t *testing.T) {
	g := NewGate(Config{PerHostLedger: true, MinShareFraction: 0.5, QueueCapacity: 4})
	g.UpsertHost("h1", 6000)
	g.UpsertHost("h2", 4000)

	// Fits: h1 has 6000 free ≥ 0.5·10000.
	if dec := g.Admit("a", spec.Standard, 10000, nil); dec.State != StateAdmitted {
		t.Fatalf("a: %+v", dec)
	}
	// Charge a's placements onto h1, filling it.
	g.SetPlacements("a", map[string]float64{"h1": 6000})
	hosts := g.Hosts()
	if hosts[0].CommittedBps != 6000 {
		t.Fatalf("h1 committed %v", hosts[0].CommittedBps)
	}
	// b needs a host with 0.5·9000 = 4500 headroom; the best is h2 with
	// 4000 — parked even though the aggregate has room.
	dec := g.Admit("b", spec.Standard, 9000, nil)
	if dec.State != StateQueued {
		t.Fatalf("b should queue on placement infeasibility: %+v", dec)
	}
	var ae *AdmissionError
	if !errors.As(dec.Err, &ae) || ae.Reason != "no host with placement headroom" {
		t.Fatalf("b's reason: %v", dec.Err)
	}
	// A small demand still fits on h2.
	if dec := g.Admit("c", spec.Standard, 8000, nil); dec.State != StateAdmitted {
		t.Fatalf("c: %+v", dec)
	}
	// Re-placing a elsewhere releases h1's committed budget.
	g.SetPlacements("a", map[string]float64{"h2": 3000})
	hosts = g.Hosts()
	if hosts[0].CommittedBps != 0 || hosts[1].CommittedBps != 3000 {
		t.Fatalf("budgets after re-place: %+v", hosts)
	}
	// Releasing the tenant uncommits everything.
	g.Release("a")
	hosts = g.Hosts()
	if hosts[0].CommittedBps != 0 || hosts[1].CommittedBps != 0 {
		t.Fatalf("budgets after release: %+v", hosts)
	}
}

func TestLedgerDisabledProbePasses(t *testing.T) {
	// Without a ledger the probe must not park anyone — the legacy
	// aggregate-only behavior.
	g := NewGate(Config{CapacityBps: 10000})
	if dec := g.Admit("a", spec.Standard, 9000, nil); dec.State != StateAdmitted {
		t.Fatalf("a: %+v", dec)
	}
	// SetPlacements and host ops are no-ops without the ledger.
	g.SetPlacements("a", map[string]float64{"h1": 9000})
	if hosts := g.Hosts(); hosts != nil {
		t.Fatalf("hosts on a ledger-less gate: %+v", hosts)
	}
	if c := g.CapacityBps(); c != 10000 {
		t.Fatalf("capacity %v", c)
	}
}
