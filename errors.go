package rasc

import (
	"errors"

	"rasc.dev/rasc/internal/tenant"
)

// Sentinel errors returned (wrapped, with request-specific detail) by the
// facade. Match them with errors.Is:
//
//	if _, err := sys.Submit(0, req, rasc.ComposerMinCost); errors.Is(err, rasc.ErrNoComposition) {
//		// back off, lower the requested rate, retry elsewhere …
//	}
var (
	// ErrUnknownComposer reports a composer name outside Composers().
	// Returned by ParseComposer and by Submit when handed an unchecked
	// Composer value.
	ErrUnknownComposer = errors.New("rasc: unknown composer")

	// ErrNoComposition reports that the composer ran but found no feasible
	// placement: no set of service instances can carry the requested rates
	// within the deployment's current bandwidth (and, for the cpu
	// composers, CPU) availability. The wrapped chain keeps the underlying
	// solver error, so more specific sentinels still match through it.
	ErrNoComposition = errors.New("rasc: no feasible composition")

	// ErrUnknownService reports a request naming a service that is not in
	// the deployment's catalog — composition is not attempted.
	ErrUnknownService = errors.New("rasc: unknown service")
)

// Admission sentinels of deployments built WithTenancy, re-exported from
// internal/tenant so callers branch with errors.Is on the facade alone.
var (
	// ErrAdmissionRejected reports that the admission gate turned the
	// request away: admitting it would push a running tenant of equal or
	// higher priority below its guaranteed share, and the admission queue
	// is full. No running application was disturbed.
	ErrAdmissionRejected = tenant.ErrAdmissionRejected

	// ErrAdmissionQueued reports that the request was parked in the
	// admission queue; it is submitted automatically when capacity frees
	// up. Observe it through System.Tenants.
	ErrAdmissionQueued = tenant.ErrAdmissionQueued
)
