package core

import (
	"fmt"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// DeltaComposer is implemented by composers that support incremental
// re-composition: rebuilding only the affected substreams of a running
// application while keeping the surviving placements in place.
type DeltaComposer interface {
	Composer
	ComposeDelta(in Input, prev *ExecutionGraph, degraded map[overlay.ID]bool, affected []int) (*ExecutionGraph, error)
}

// deltaCtx carries one substream's incremental re-composition state into
// composeSubstream: the hosts to route away from and the surviving prior
// flow, pre-seeded as zero-cost residual capacity.
type deltaCtx struct {
	degraded map[overlay.ID]bool
	// residual[stage] maps host ID to the prior flow units the host's
	// component instance at that stage still carries.
	residual []map[overlay.ID]int64
	// endpointResidual is the substream's prior rate: the source is
	// already transmitting it and the destination already receiving it,
	// so it is credited back on top of the measured availability.
	endpointResidual int64
}

// ComposeDelta incrementally re-composes a running application: only the
// substreams listed in affected (nil = all) are re-solved; the others are
// copied verbatim from prev with their capacity use accounted. For each
// re-solved substream, prev's placements on non-degraded hosts are
// pre-seeded into the flow graph as zero-cost residual arcs — keeping an
// existing instance costs nothing, so the solver shifts only the share
// that rode through the degraded hosts — and degraded hosts are excluded
// from candidacy outright.
//
// in.Request must carry the application's live rates (prev.Request for a
// running graph, including any best-effort reduction). With a nil prev,
// no degraded hosts and affected == nil, ComposeDelta is exactly Compose:
// the output is bit-identical.
//
// It returns ErrNoFeasiblePlacement (wrapped) when the surviving hosts
// cannot absorb the displaced rate; callers then fall back to a full
// teardown-and-recompose.
func (m *MinCost) ComposeDelta(in Input, prev *ExecutionGraph, degraded map[overlay.ID]bool, affected []int) (*ExecutionGraph, error) {
	defer observeCompose(time.Now())
	defer observeStats(in.Stats, time.Now())
	if err := in.Request.Validate(); err != nil {
		return nil, err
	}
	sc := composeScratchPool.Get().(*composeScratch)
	defer composeScratchPool.Put(sc)
	if sc.solver.Reused() {
		telSolverReuse.Inc()
	}
	g := &ExecutionGraph{
		Request:  in.Request,
		Composer: m.Name(),
		Source:   in.Source,
		Dest:     in.Dest,
	}
	g.Request.Substreams = append([]spec.Substream(nil), in.Request.Substreams...)
	total := 0
	for _, ss := range in.Request.Substreams {
		total += len(ss.Services)
	}
	g.Placements = make([]Placement, 0, total)
	g.Edges = make([]Edge, 0, total+2*len(in.Request.Substreams))
	caps := newCapTracker()
	caps.seed(in.Source.ID, int(in.SourceReport.AvailOut()*in.headroom()/unitBits(in.Request)))
	caps.seed(in.Dest.ID, int(in.DestReport.AvailIn()*in.headroom()/unitBits(in.Request)))
	for _, cands := range in.Candidates {
		for _, c := range cands {
			caps.seed(c.Info.ID, maxRateUnits(c.Report, in))
			if m.UseCPU {
				caps.seedCPU(c.Info.ID, c.Report.SpeedFactor, c.Report.AvailCPU()*in.headroom())
			}
		}
	}
	affectedSet := make(map[int]bool, len(in.Request.Substreams))
	if affected == nil {
		for l := range in.Request.Substreams {
			affectedSet[l] = true
		}
	} else {
		for _, l := range affected {
			affectedSet[l] = true
		}
	}
	for l := range in.Request.Substreams {
		if prev != nil && !affectedSet[l] {
			m.copySubstream(in, g, caps, prev, l)
			if in.Stats != nil {
				in.Stats.Copied++
			}
			continue
		}
		dc := deltaFor(prev, degraded, l)
		if err := m.composeSubstream(in, g, caps, sc, l, dc); err != nil {
			return nil, fmt.Errorf("substream %d: %w", l, err)
		}
	}
	if in.Stats != nil {
		in.Stats.Feasible = true
	}
	return g, nil
}

// copySubstream carries an unaffected substream's placements and edges
// over verbatim, deducting their capacity so the re-solved substreams
// cannot double-book the same hosts.
func (m *MinCost) copySubstream(in Input, g *ExecutionGraph, caps *capTracker, prev *ExecutionGraph, l int) {
	rate := in.Request.Substreams[l].Rate
	for _, p := range prev.Placements {
		if p.Substream != l {
			continue
		}
		g.Placements = append(g.Placements, p)
		caps.consume(p.Host.ID, int(p.Rate))
		caps.consumeCPU(p.Host.ID, int(p.Rate), procFor(in, p.Service))
	}
	for _, e := range prev.Edges {
		if e.Substream == l {
			g.Edges = append(g.Edges, e)
		}
	}
	caps.consume(in.Source.ID, rate)
	caps.consume(in.Dest.ID, rate)
}

// deltaFor builds the residual context for re-solving substream l against
// prev. A nil prev yields a context with no residual flow — candidacy
// filtering on degraded hosts still applies.
func deltaFor(prev *ExecutionGraph, degraded map[overlay.ID]bool, l int) *deltaCtx {
	dc := &deltaCtx{degraded: degraded}
	if prev == nil || l >= len(prev.Request.Substreams) {
		return dc
	}
	q := len(prev.Request.Substreams[l].Services)
	dc.residual = make([]map[overlay.ID]int64, q)
	for _, p := range prev.Placements {
		if p.Substream != l || p.Stage < 0 || p.Stage >= q || degraded[p.Host.ID] {
			continue
		}
		if dc.residual[p.Stage] == nil {
			dc.residual[p.Stage] = make(map[overlay.ID]int64)
		}
		dc.residual[p.Stage][p.Host.ID] += int64(p.Rate)
	}
	dc.endpointResidual = int64(prev.Request.Substreams[l].Rate)
	return dc
}
