package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge reads %g", g.Value())
	}
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	cum, total, sum := h.snapshot()
	// Buckets: <=1 gets {0.5, 1}; <=2 adds {1.5, 2}; <=5 adds {3}; +Inf adds {10}.
	want := []uint64{2, 4, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
	if total != 6 {
		t.Fatalf("total = %d, want 6", total)
	}
	if math.Abs(sum-18) > 1e-9 {
		t.Fatalf("sum = %g, want 18", sum)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	h := newHistogram(DefBuckets)
	h.ObserveDuration(250 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("Sum = %g, want 0.25", got)
	}
}

func TestVecCaching(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "help", "k")
	a := v.With("x")
	b := v.With("x")
	if a != b {
		t.Fatal("With returned distinct counters for the same labels")
	}
	if v.With("y") == a {
		t.Fatal("distinct labels share a counter")
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "help")
	b := r.Counter("ops_total", "help")
	if a != b {
		t.Fatal("re-registering a counter returned a new instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.Gauge("ops_total", "help")
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"rasc_sched_scheduled_total": true,
		"a:b":                        true,
		"":                           false,
		"9lives":                     false,
		"has space":                  false,
		"has-dash":                   false,
	} {
		if got := validName(name); got != want {
			t.Errorf("validName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestConcurrentWriters exercises every metric type from many goroutines;
// run under -race this is the registry's safety regression test.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{0.5, 1})
	vec := r.CounterVec("v_total", "", "worker")
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := vec.With("shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.4)
				wc.Inc()
			}
		}(w)
	}
	// Concurrent scrapes must not race with writers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = r.String()
		}()
	}
	wg.Wait()
	const want = workers * perWorker
	if c.Value() != want {
		t.Fatalf("counter = %d, want %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("gauge = %g, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("histogram count = %d, want %d", h.Count(), want)
	}
	if vec.With("shared").Value() != want {
		t.Fatalf("vec counter = %d, want %d", vec.With("shared").Value(), want)
	}
}

// TestCounterAddAllocates pins the acceptance criterion: the counter hot
// path performs no allocations.
func TestCounterAddAllocates(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v times per op", n)
	}
	h := newHistogram(DefBuckets)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.01) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v times per op", n)
	}
}

// BenchmarkCounterAdd shows the instrumentation cost on scheduling paths:
// a single uncontended atomic add.
func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

func BenchmarkGaugeAdd(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 3)
	if len(lin) != 3 || lin[0] != 0 || lin[2] != 1 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 4)
	if len(exp) != 4 || exp[3] != 8 {
		t.Fatalf("ExpBuckets = %v", exp)
	}
}
