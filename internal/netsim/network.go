package netsim

import (
	"fmt"
	"time"
)

// NodeID identifies a node inside a Network.
type NodeID int

// Handler receives a message delivered to a node.
type Handler func(from NodeID, size int, payload interface{})

// link models one direction of a node's access link: a FIFO serializer with
// finite capacity in bits per second.
type link struct {
	capacityBps float64
	busyUntil   time.Duration
	bytesSent   int64
}

// serialize reserves the link starting no earlier than now for a message of
// size bytes and returns the time at which the last bit leaves the link.
func (l *link) serialize(now time.Duration, size int) time.Duration {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	tx := time.Duration(float64(size*8) / l.capacityBps * float64(time.Second))
	l.busyUntil = start + tx
	l.bytesSent += int64(size)
	return l.busyUntil
}

// netNode is a network attachment point with an uplink and a downlink.
type netNode struct {
	id          NodeID
	up          link
	down        link
	handler     Handler
	dropHandler Handler
}

// Network connects nodes through access links and a wide-area latency
// matrix. It is driven by a Simulator and is not safe for concurrent use.
type Network struct {
	sim        *Simulator
	nodes      []*netNode
	latency    func(a, b NodeID) time.Duration
	jitter     time.Duration
	lossRate   float64
	maxBacklog time.Duration
	congJitter float64
	partitions map[[2]NodeID]bool

	// Delivered and Lost count messages for diagnostics.
	Delivered int64
	Lost      int64
}

// Config parameterizes a Network.
type Config struct {
	// Latency returns the one-way propagation delay between two nodes.
	// If nil, a uniform 20ms is used.
	Latency func(a, b NodeID) time.Duration
	// Jitter is the maximum random extra delay added per message.
	Jitter time.Duration
	// LossRate is the probability in [0,1) that a message is dropped
	// in transit.
	LossRate float64
	// MaxLinkBacklog bounds the FIFO backlog of every access link
	// (modelling finite socket buffers): a message finding more than
	// this much serialization backlog on its uplink or downlink is
	// dropped. Zero means unbounded.
	MaxLinkBacklog time.Duration
	// CongestionJitter adds random extra delay proportional to the
	// sender's current uplink backlog (cross-traffic variance grows
	// with congestion): each message samples up to backlog×factor of
	// additional jitter. Zero disables it.
	CongestionJitter float64
}

// NewNetwork creates an empty network on top of sim.
func NewNetwork(sim *Simulator, cfg Config) *Network {
	lat := cfg.Latency
	if lat == nil {
		lat = func(a, b NodeID) time.Duration { return 20 * time.Millisecond }
	}
	return &Network{
		sim: sim, latency: lat, jitter: cfg.Jitter, lossRate: cfg.LossRate,
		maxBacklog: cfg.MaxLinkBacklog, congJitter: cfg.CongestionJitter,
	}
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *Simulator { return n.sim }

// AddNode attaches a node with the given uplink/downlink capacities in bits
// per second and returns its ID. Capacities must be positive.
func (n *Network) AddNode(upBps, downBps float64) NodeID {
	if upBps <= 0 || downBps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive link capacity (%g up, %g down)", upBps, downBps))
	}
	id := NodeID(len(n.nodes))
	n.nodes = append(n.nodes, &netNode{
		id:   id,
		up:   link{capacityBps: upBps},
		down: link{capacityBps: downBps},
	})
	return id
}

// SetHandler installs the message handler for node id, replacing any
// previous handler.
func (n *Network) SetHandler(id NodeID, h Handler) { n.nodes[id].handler = h }

// SetDropHandler installs a handler invoked when a droppable message is
// discarded at node id's downlink for exceeding the backlog bound — the
// simulation equivalent of a kernel receive-buffer overflow counter, which
// the node's monitor can observe.
func (n *Network) SetDropHandler(id NodeID, h Handler) { n.nodes[id].dropHandler = h }

// NumNodes returns the number of attached nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// UpCapacity returns the uplink capacity of node id in bits per second.
func (n *Network) UpCapacity(id NodeID) float64 { return n.nodes[id].up.capacityBps }

// DownCapacity returns the downlink capacity of node id in bits per second.
func (n *Network) DownCapacity(id NodeID) float64 { return n.nodes[id].down.capacityBps }

// BytesSent returns the number of bytes node id has pushed into its uplink.
func (n *Network) BytesSent(id NodeID) int64 { return n.nodes[id].up.bytesSent }

// BytesReceived returns the number of bytes serialized onto node id's
// downlink.
func (n *Network) BytesReceived(id NodeID) int64 { return n.nodes[id].down.bytesSent }

// Latency returns the configured base one-way latency between a and b.
func (n *Network) Latency(a, b NodeID) time.Duration { return n.latency(a, b) }

// Send transmits a reliable (TCP-like) message of size bytes: it is never
// dropped for backlog, only delayed by link queueing. Delivery time
// accounts for sender uplink serialization, propagation latency plus
// jitter, and receiver downlink serialization. A local send (from == to)
// is delivered on the next event with no link usage.
func (n *Network) Send(from, to NodeID, size int, payload interface{}) bool {
	return n.send(from, to, size, payload, false)
}

// SendDroppable transmits a datagram (UDP-like) message: it is dropped
// when the sender's uplink backlog exceeds the configured bound (reported
// by the false return), subject to random loss in transit, and dropped at
// the receiver's downlink when that backlog exceeds the bound (reported to
// the receiver's drop handler).
func (n *Network) SendDroppable(from, to NodeID, size int, payload interface{}) bool {
	return n.send(from, to, size, payload, true)
}

func (n *Network) send(from, to NodeID, size int, payload interface{}, droppable bool) bool {
	if int(from) >= len(n.nodes) || int(to) >= len(n.nodes) || from < 0 || to < 0 {
		panic(fmt.Sprintf("netsim: send between unknown nodes %d -> %d", from, to))
	}
	if from == to {
		n.sim.Schedule(0, func() { n.deliver(from, to, size, payload) })
		return true
	}
	if n.partitioned(from, to) {
		n.Lost++
		return true // silently black-holed: the sender cannot tell
	}
	now := n.sim.Now()
	src := n.nodes[from]
	if droppable && n.maxBacklog > 0 && src.up.busyUntil-now > n.maxBacklog {
		n.Lost++
		return false
	}
	if droppable && n.lossRate > 0 && n.sim.rng.Float64() < n.lossRate {
		n.Lost++
		return true // accepted by the uplink, lost in transit
	}
	backlog := src.up.busyUntil - now
	if backlog < 0 {
		backlog = 0
	}
	sent := src.up.serialize(now, size)
	prop := n.latency(from, to)
	if n.jitter > 0 {
		prop += time.Duration(n.sim.rng.Int63n(int64(n.jitter)))
	}
	if n.congJitter > 0 && backlog > 0 {
		if bound := int64(float64(backlog) * n.congJitter); bound > 0 {
			prop += time.Duration(n.sim.rng.Int63n(bound))
		}
	}
	arrive := sent + prop
	n.sim.At(arrive, func() {
		dst := n.nodes[to]
		if droppable && n.maxBacklog > 0 && dst.down.busyUntil-n.sim.Now() > n.maxBacklog {
			n.Lost++
			_, bg := payload.(backgroundMarker)
			if dst.dropHandler != nil && !bg {
				dst.dropHandler(from, size, payload)
			}
			return
		}
		done := dst.down.serialize(n.sim.Now(), size)
		n.sim.At(done, func() { n.deliver(from, to, size, payload) })
	})
	return true
}

func (n *Network) deliver(from, to NodeID, size int, payload interface{}) {
	n.Delivered++
	if _, bg := payload.(backgroundMarker); bg {
		return // cross-traffic filler: consumes links, carries nothing
	}
	if h := n.nodes[to].handler; h != nil {
		h(from, size, payload)
	}
}

// SetPartition blocks (or restores) all traffic between a and b in both
// directions. Partitioned messages vanish silently — neither endpoint is
// told — modelling a wide-area routing failure between two sites.
func (n *Network) SetPartition(a, b NodeID, blocked bool) {
	if n.partitions == nil {
		n.partitions = make(map[[2]NodeID]bool)
	}
	key := pairKey(a, b)
	if blocked {
		n.partitions[key] = true
	} else {
		delete(n.partitions, key)
	}
}

func pairKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// partitioned reports whether traffic between a and b is blocked.
func (n *Network) partitioned(a, b NodeID) bool {
	if n.partitions == nil {
		return false
	}
	return n.partitions[pairKey(a, b)]
}

// backgroundMarker tags cross-traffic payloads; deliver discards them.
type backgroundMarker struct{}

// AddBackgroundFlow emits a constant-bit-rate stream of droppable filler
// packets from one node to another, consuming link capacity exactly like
// application traffic — the shared-testbed load of PlanetLab. The flow
// starts on the next event and runs until the simulation ends.
func (n *Network) AddBackgroundFlow(from, to NodeID, bps float64, packetBytes int) {
	if packetBytes <= 0 {
		packetBytes = 1250
	}
	if bps <= 0 {
		return
	}
	interval := time.Duration(float64(packetBytes*8) / bps * float64(time.Second))
	if interval <= 0 {
		interval = time.Millisecond
	}
	var tick func()
	tick = func() {
		n.SendDroppable(from, to, packetBytes, backgroundMarker{})
		n.sim.Schedule(interval, tick)
	}
	// Desynchronize flows so they do not beat in lockstep.
	n.sim.Schedule(time.Duration(n.sim.rng.Int63n(int64(interval))+1), tick)
}
