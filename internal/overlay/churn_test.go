package overlay

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

// buildShuffled joins n nodes in a random order through random bootstrap
// peers and returns the nodes plus the simulator.
func buildShuffled(t *testing.T, n int, seed int64) ([]*Node, *netsim.Simulator) {
	t.Helper()
	sim := netsim.New(seed)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 8 * time.Millisecond },
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		id := HashID(fmt.Sprintf("churn-%d-%d", seed, i))
		nodes[i] = NewNode(id, mem.Endpoint(nw.AddNode(1e8, 1e8)), clk)
	}
	order := rng.Perm(n)
	joined := []*Node{nodes[order[0]]}
	nodes[order[0]].Bootstrap()
	for _, idx := range order[1:] {
		boot := joined[rng.Intn(len(joined))]
		nodes[idx].Join(boot.Addr(), nil)
		sim.Run()
		joined = append(joined, nodes[idx])
	}
	for round := 0; round < 2; round++ {
		for _, nd := range nodes {
			nd.Stabilize()
		}
		sim.Run()
	}
	return nodes, sim
}

// Property: regardless of join order and bootstrap choice, routing
// converges to the globally closest node for every key.
func TestRandomJoinOrderConvergence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		nodes, sim := buildShuffled(t, 20, seed)
		root := func(key ID) *Node {
			best := nodes[0]
			for _, nd := range nodes[1:] {
				if Closer(key, nd.ID(), best.ID()) {
					best = nd
				}
			}
			return best
		}
		for trial := 0; trial < 25; trial++ {
			key := HashID(fmt.Sprintf("churn-key-%d-%d", seed, trial))
			var deliveredAt *Node
			for _, nd := range nodes {
				nd := nd
				nd.Register("churn", func(k ID, src NodeInfo, body []byte) { deliveredAt = nd })
			}
			nodes[trial%len(nodes)].Route(key, "churn", nil)
			sim.Run()
			if deliveredAt != root(key) {
				t.Fatalf("seed %d key %v delivered at %v, want %v",
					seed, key, deliveredAt.ID(), root(key).ID())
			}
		}
	}
}

// TestRoutingSurvivesNodeRemoval removes a peer from everyone's state and
// verifies keys still converge among the survivors.
func TestRoutingSurvivesNodeRemoval(t *testing.T) {
	nodes, sim := buildShuffled(t, 16, 9)
	dead := nodes[7]
	survivors := append(append([]*Node{}, nodes[:7]...), nodes[8:]...)
	for _, nd := range survivors {
		nd.RemovePeer(dead.ID())
	}
	// Re-stabilize among survivors.
	for _, nd := range survivors {
		nd.Stabilize()
	}
	sim.Run()
	// Drop anything the dead node might have re-gossiped.
	for _, nd := range survivors {
		nd.RemovePeer(dead.ID())
	}
	root := func(key ID) *Node {
		best := survivors[0]
		for _, nd := range survivors[1:] {
			if Closer(key, nd.ID(), best.ID()) {
				best = nd
			}
		}
		return best
	}
	for trial := 0; trial < 20; trial++ {
		key := HashID(fmt.Sprintf("removal-key-%d", trial))
		var deliveredAt *Node
		for _, nd := range survivors {
			nd := nd
			nd.Register("rm", func(k ID, src NodeInfo, body []byte) { deliveredAt = nd })
		}
		dead.Register("rm", func(k ID, src NodeInfo, body []byte) {
			t.Fatal("routed to removed node")
		})
		survivors[trial%len(survivors)].Route(key, "rm", nil)
		sim.Run()
		if deliveredAt == nil {
			t.Fatalf("key %v lost after removal", key)
		}
		if deliveredAt != root(key) {
			t.Fatalf("key %v delivered at %v, want %v", key, deliveredAt.ID(), root(key).ID())
		}
	}
}
