package federation

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestFederationMetricsCatalogue pins the rasc_federation_* family
// catalogue (# HELP / # TYPE lines) exposed on /metrics. Values are
// process-global and order-dependent across tests, so the golden captures
// the catalogue, not samples.
func TestFederationMetricsCatalogue(t *testing.T) {
	// Touch every family: a reserve, a release and a saturated reserve.
	l := NewLedger()
	l.SetLink("gold0", "gold1", 10)
	id, err := l.Reserve("gold0", "gold1", 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Reserve("gold0", "gold1", 1); err == nil {
		t.Fatal("saturated reserve succeeded")
	}
	l.Release(id)

	var got strings.Builder
	for _, line := range strings.Split(telemetry.Default().String(), "\n") {
		if strings.HasPrefix(line, "# HELP rasc_federation_") || strings.HasPrefix(line, "# TYPE rasc_federation_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "federation_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("federation catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	// The pre-resolved series themselves must be present with labels.
	exp := telemetry.Default().String()
	for _, series := range []string{
		`rasc_federation_queries_total{role="sent"}`,
		`rasc_federation_queries_total{role="served"}`,
		`rasc_federation_handoffs_total{result="ok"}`,
		`rasc_federation_handoffs_total{result="failed"}`,
		`rasc_federation_handoffs_total{result="saturated"}`,
		"rasc_federation_remote_composes_total",
		"rasc_federation_boundary_saturated_total",
		"rasc_federation_boundary_reserved_bps",
		"rasc_federation_credits_active",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}
