package core

import "time"

// ComposeStats reports what one composition solve saw, for the decision
// tracing plane: how big the flow instances were, how hard the solver
// worked and whether a feasible graph came out. Callers opt in by setting
// Input.Stats to a zero ComposeStats before Compose/ComposeDelta; the
// composer accumulates into it (MinCost and its delta path fill every
// field; the baseline composers only set Duration and Feasible).
type ComposeStats struct {
	// Substreams counts the substreams actually solved; Copied counts
	// the ones an incremental re-composition carried over verbatim.
	Substreams int
	Copied     int
	// Candidates is the candidate component instances across all solved
	// substreams (after degraded-host filtering and TopK pruning).
	Candidates int
	// Nodes and Arcs size the flow graphs across all solved substreams.
	Nodes int
	Arcs  int
	// Iterations totals the min-cost-flow solver's work units
	// (augmenting paths for SSP, scaling phases for cost scaling).
	Iterations int
	// Flow is the total routed flow in rate units.
	Flow int64
	// Feasible reports that composition produced a graph.
	Feasible bool
	// Duration is the wall-clock time of the Compose call.
	Duration time.Duration
}
