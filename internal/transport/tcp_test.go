package transport

import (
	"sync"
	"testing"
	"time"
)

func newTCPPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// waitFor polls until cond() is true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestTCPSendReceive(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	var gotFrom Addr
	var gotMsg Message
	b.SetHandler(func(from Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		gotFrom, gotMsg = from, msg
	})
	if err := a.Send(b.Addr(), Message{Type: "ping", Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotMsg.Type == "ping"
	})
	mu.Lock()
	defer mu.Unlock()
	if gotFrom != a.Addr() {
		t.Fatalf("from = %q, want %q", gotFrom, a.Addr())
	}
	if string(gotMsg.Payload) != "hello" {
		t.Fatalf("payload = %q", gotMsg.Payload)
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	received := map[string]bool{}
	record := func(name string) Handler {
		return func(from Addr, msg Message) {
			mu.Lock()
			defer mu.Unlock()
			received[name+":"+msg.Type] = true
		}
	}
	a.SetHandler(record("a"))
	b.SetHandler(record("b"))
	if err := a.Send(b.Addr(), Message{Type: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.Addr(), Message{Type: "y"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received["b:x"] && received["a:y"]
	})
}

func TestTCPManyMessagesInOrder(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	var got []string
	b.SetHandler(func(from Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, msg.Type)
	})
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), Message{Type: string(rune('a' + i%26))}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == n
	})
	mu.Lock()
	defer mu.Unlock()
	for i, typ := range got {
		if typ != string(rune('a'+i%26)) {
			t.Fatalf("message %d out of order: %q", i, typ)
		}
	}
}

func TestTCPSendToDeadAddress(t *testing.T) {
	a, _ := newTCPPair(t)
	if err := a.Send("127.0.0.1:1", Message{Type: "x"}); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestTCPClosedEndpointSendFails(t *testing.T) {
	a, b := newTCPPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), Message{Type: "x"}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestTCPLargePayload(t *testing.T) {
	a, b := newTCPPair(t)
	var mu sync.Mutex
	var got int
	b.SetHandler(func(from Addr, msg Message) {
		mu.Lock()
		defer mu.Unlock()
		got = len(msg.Payload)
	})
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(b.Addr(), Message{Type: "big", Payload: payload}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == 1<<20
	})
}
