package dht

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simnet"
)

// TestLookupSurvivesRootFailure kills the key's root after a Put and
// verifies that a retried Get still finds the value: the first lookup may
// time out, but route acks and HealRoute prune the dead root and the new
// root holds a replica.
func TestLookupSurvivesRootFailure(t *testing.T) {
	c := simnet.New(simnet.Options{N: 16, Seed: 41})
	stores := make([]*Store, len(c.Nodes))
	for i, node := range c.Nodes {
		stores[i] = New(node, c.Clock)
	}
	key := overlay.HashID("svc:resilient")
	stores[2].Put(key, []byte("value"))
	c.Sim.Run()

	// Kill the root.
	rootIdx := c.Index(c.Root(key).ID())
	if rootIdx == 2 {
		t.Skip("root is the writer; pick another seed")
	}
	c.Endpoints[rootIdx].Close()

	// Retry the lookup until it succeeds (bounded attempts). Each failed
	// attempt prunes dead state.
	var got [][]byte
	for attempt := 0; attempt < 5 && got == nil; attempt++ {
		done := false
		stores[5].Get(key, 2*time.Second, func(vs [][]byte, err error) {
			done = true
			if err == nil && len(vs) > 0 {
				got = vs
			}
		})
		for i := 0; i < 200 && !done; i++ {
			c.Sim.RunUntil(c.Sim.Now() + 100*time.Millisecond)
		}
	}
	if got == nil {
		t.Fatal("value unreachable after root failure despite replicas")
	}
	if string(got[0]) != "value" {
		t.Fatalf("got %q", got)
	}
}
