package experiment

import (
	"testing"

	"rasc.dev/rasc/internal/spec"
)

// TestRunContentionIsolation is the tenancy acceptance scenario: at 2x
// contention the Critical class keeps its full rate (its below-requested
// meter stays ~0) while the BestEffort class absorbs the entire
// shortfall; a rejected flash-crowd burst leaves the admitted tenants'
// delivered rates untouched; and a departing Critical tenant's share
// flows to the capped BestEffort tenants.
func TestRunContentionIsolation(t *testing.T) {
	res, err := RunContention(ContentionConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := res.Config
	windowSec := cfg.Window.Seconds()

	// Every tenant was admitted; one Critical app churned out at the end.
	if got, want := res.Totals.Admitted, cfg.CriticalApps+cfg.BestEffortApps-1; got != want {
		t.Errorf("admitted at end = %d, want %d", got, want)
	}

	for _, a := range res.Apps {
		t.Logf("%-8s %-11s rateA=%5.2f rateB=%5.2f rateC=%5.2f belowA=%4.1fs belowB=%4.1fs cap=%6.0f",
			a.App, a.Priority, a.RateA, a.RateB, a.RateC, a.BelowA, a.BelowB, a.CapBps)
	}

	for _, a := range res.Apps {
		switch a.Priority {
		case spec.Critical:
			// Isolation: Critical tenants never sit below half their
			// requested rate under 2x contention.
			if a.BelowA > 0.1*windowSec {
				t.Errorf("%s (critical) accrued %.1fs below-requested in window A, want ~0", a.App, a.BelowA)
			}
			if !a.Churned && a.BelowB > 0.1*windowSec {
				t.Errorf("%s (critical) accrued %.1fs below-requested in window B, want ~0", a.App, a.BelowB)
			}
		case spec.BestEffort:
			// The BestEffort class absorbs the shortfall: capped to ~1/3
			// of demand, it spends essentially the whole window below the
			// 1/2 threshold.
			if a.BelowA < 0.5*windowSec {
				t.Errorf("%s (best-effort) accrued only %.1fs below-requested in window A, want most of the %.0fs window", a.App, a.BelowA, windowSec)
			}
		}
	}

	// The flash crowd never composes: every burst application parks or
	// bounces (queue capacity 16 < burst 20, so both verdicts appear).
	if res.BurstAdmitted != 0 {
		t.Errorf("burst admitted %d applications, want 0", res.BurstAdmitted)
	}
	if res.BurstQueued == 0 || res.BurstRejected == 0 {
		t.Errorf("burst verdicts queued=%d rejected=%d, want both nonzero", res.BurstQueued, res.BurstRejected)
	}
	if got := res.BurstQueued + res.BurstRejected; got != cfg.BurstSize {
		t.Errorf("burst verdicts total %d, want %d", got, cfg.BurstSize)
	}

	// The rejected burst does not degrade running tenants: delivered
	// rates before and after it match within tolerance.
	for _, a := range res.Apps {
		tol := 0.3*a.RateA + 0.5
		if diff := a.RateB - a.RateA; diff < -tol || diff > tol {
			t.Errorf("%s delivered %.2f u/s before the burst, %.2f after — outside ±%.2f", a.App, a.RateA, a.RateB, tol)
		}
	}

	// Churn: the departed Critical tenant's share reaches the BestEffort
	// class, lifting its delivered rate.
	for _, a := range res.Apps {
		if a.Churned {
			if a.RateC > 0.1 {
				t.Errorf("churned %s still delivering %.2f u/s in window C", a.App, a.RateC)
			}
			continue
		}
		if a.Priority == spec.BestEffort && a.RateC < 1.2*a.RateA {
			t.Errorf("%s (best-effort) delivered %.2f u/s after churn, want > 1.2x its %.2f u/s contention rate", a.App, a.RateC, a.RateA)
		}
	}

	// The journal carries the admission decisions as first-class spans.
	triggers := map[string]int{}
	for _, d := range res.Decisions {
		triggers[d.Trigger]++
	}
	if triggers["admit"] < cfg.CriticalApps+cfg.BestEffortApps {
		t.Errorf("journal has %d admit decisions, want at least %d", triggers["admit"], cfg.CriticalApps+cfg.BestEffortApps)
	}
	if triggers["reject"] == 0 {
		t.Error("journal has no reject decisions despite the rejected burst")
	}
}
