package core

import (
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/spec"
)

// cpuCand builds a candidate that reports CPU capacity.
func cpuCand(i int, availBps, drop, speed, cpuUsed float64) Candidate {
	c := cand(i, availBps, drop)
	c.Report.SpeedFactor = speed
	c.Report.CPUFraction = cpuUsed
	return c
}

// cpuCatalog returns a single-service catalog with a 10ms/unit cost.
func cpuCatalog() map[string]spec.ServiceDef {
	return map[string]spec.ServiceDef{
		"heavy": {Name: "heavy", ProcPerUnit: 10 * time.Millisecond, RateRatio: 1, BytesRatio: 1},
	}
}

func TestMinCostCPUCapsSlowNode(t *testing.T) {
	// Slow host (speed 0.1): CPU limit = 0.1/10ms = 10 units/sec even
	// though its bandwidth allows hundreds. The fast host has a worse
	// drop ratio, so a bandwidth-only composer puts everything on the
	// slow host; the CPU-aware composer must move at least 40 of the 50
	// units to the fast host.
	in := baseInput(req1(50, "heavy"))
	in.Catalog = cpuCatalog()
	slow := cpuCand(1, 10_000*kbit, 0.0, 0.1, 0)
	fast := cpuCand(2, 10_000*kbit, 0.1, 1.0, 0)
	in.Candidates["heavy"] = []Candidate{slow, fast}

	plain, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Placements) != 1 || plain.Placements[0].Host.ID != testHost(1).ID {
		t.Fatalf("bandwidth-only composer should pick the zero-drop slow host: %+v", plain.Placements)
	}

	aware, err := (&MinCost{UseCPU: true}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(aware, in.Catalog); err != nil {
		t.Fatal(err)
	}
	var onSlow, onFast float64
	for _, p := range aware.Placements {
		switch p.Host.ID {
		case testHost(1).ID:
			onSlow += p.Rate
		case testHost(2).ID:
			onFast += p.Rate
		}
	}
	if onSlow > 10 {
		t.Fatalf("CPU-aware composer overcommitted slow host: %g units/sec", onSlow)
	}
	if onFast < 40 {
		t.Fatalf("fast host carries only %g units/sec", onFast)
	}
}

func TestMinCostCPURejectsWhenCPUExhausted(t *testing.T) {
	in := baseInput(req1(50, "heavy"))
	in.Catalog = cpuCatalog()
	// Both hosts CPU-capped at 10 units/sec: 20 total < 50.
	in.Candidates["heavy"] = []Candidate{
		cpuCand(1, 10_000*kbit, 0, 0.1, 0),
		cpuCand(2, 10_000*kbit, 0, 0.1, 0),
	}
	if _, err := (&MinCost{UseCPU: true}).Compose(in); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want rejection on CPU", err)
	}
	// The bandwidth-only composer happily (and wrongly) accepts.
	if _, err := (&MinCost{}).Compose(in); err != nil {
		t.Fatalf("bandwidth-only composer should accept: %v", err)
	}
}

func TestMinCostCPUBusyFractionCounts(t *testing.T) {
	in := baseInput(req1(8, "heavy"))
	in.Catalog = cpuCatalog()
	// Speed 1.0 but 90% busy: remaining CPU supports 0.1/10ms = 10
	// units/sec; headroom 1.0 in baseInput, so 8 fits but 12 would not.
	in.Candidates["heavy"] = []Candidate{cpuCand(1, 10_000*kbit, 0, 1.0, 0.9)}
	if _, err := (&MinCost{UseCPU: true}).Compose(in); err != nil {
		t.Fatal(err)
	}
	in2 := baseInput(req1(12, "heavy"))
	in2.Catalog = cpuCatalog()
	in2.Candidates["heavy"] = in.Candidates["heavy"]
	if _, err := (&MinCost{UseCPU: true}).Compose(in2); !errors.Is(err, ErrNoFeasiblePlacement) {
		t.Fatalf("err = %v, want rejection at 12 units/sec on 10%% CPU", err)
	}
}

func TestMinCostCPUConsumedAcrossSubstreams(t *testing.T) {
	req := spec.Request{
		ID:        "cpu2",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{"heavy"}, Rate: 6},
			{Services: []string{"heavy"}, Rate: 6},
		},
	}
	in := baseInput(req)
	in.Catalog = cpuCatalog()
	// One host with CPU for 10 units/sec total, one with plenty.
	in.Candidates["heavy"] = []Candidate{
		cpuCand(1, 10_000*kbit, 0, 0.1, 0), // 10 units/sec CPU
		cpuCand(2, 10_000*kbit, 0, 1.0, 0), // 100 units/sec CPU
	}
	g, err := (&MinCost{UseCPU: true}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	var onSlow float64
	for _, p := range g.Placements {
		if p.Host.ID == testHost(1).ID {
			onSlow += p.Rate
		}
	}
	if onSlow > 10 {
		t.Fatalf("slow host carries %g units/sec across substreams, CPU limit 10", onSlow)
	}
}

func TestLPCPURowEnforced(t *testing.T) {
	in := baseInput(req1(50, "heavy"))
	in.Catalog = cpuCatalog()
	in.Candidates["heavy"] = []Candidate{
		cpuCand(1, 10_000*kbit, 0.0, 0.1, 0),
		cpuCand(2, 10_000*kbit, 0.1, 1.0, 0),
	}
	g, err := (LP{UseCPU: true}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	var onSlow float64
	for _, p := range g.Placements {
		if p.Host.ID == testHost(1).ID {
			onSlow += p.Rate
		}
	}
	if onSlow > 10+1e-6 {
		t.Fatalf("LP overcommitted slow host CPU: %g units/sec", onSlow)
	}
	if g.Composer != "lp-cpu" {
		t.Fatalf("Composer = %q", g.Composer)
	}
}

func TestComposerNamesCPU(t *testing.T) {
	for _, name := range []string{"mincost-cpu", "lp-cpu"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("%q reports %q", name, c.Name())
		}
	}
}

func TestHostsWithoutCPUDataUnaffected(t *testing.T) {
	// UseCPU with hosts that do not report CPU: bandwidth-only behavior.
	in := baseInput(req1(10, "heavy"))
	in.Catalog = cpuCatalog()
	in.Candidates["heavy"] = []Candidate{cand(1, 1000*kbit, 0)}
	g, err := (&MinCost{UseCPU: true}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if g.Placements[0].Rate != 10 {
		t.Fatalf("rate = %g", g.Placements[0].Rate)
	}
}

func TestReportAvailCPU(t *testing.T) {
	r := monitor.Report{SpeedFactor: 1.2, CPUFraction: 0.25}
	if got := r.AvailCPU(); got != 0.75 {
		t.Fatalf("AvailCPU = %g", got)
	}
	if (monitor.Report{}).AvailCPU() != 0 {
		t.Fatal("no-CPU report must return 0")
	}
}
