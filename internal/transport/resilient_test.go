package transport

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeEP is a controllable inner endpoint: it can fail the next N sends,
// gate sends on a channel, and records every frame and DropConn call.
type fakeEP struct {
	addr  Addr
	enter chan struct{} // when non-nil, each Send signals entry here first
	gate  chan struct{} // when non-nil, each Send then consumes one token

	mu       sync.Mutex
	frames   []Message
	fails    int
	attempts int
	dropped  []Addr
	handler  Handler
}

func newFakeEP() *fakeEP { return &fakeEP{addr: "fake://0"} }

func (f *fakeEP) Addr() Addr { return f.addr }

func (f *fakeEP) Send(to Addr, msg Message) error {
	if f.enter != nil {
		f.enter <- struct{}{}
	}
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.attempts++
	if f.fails != 0 {
		if f.fails > 0 {
			f.fails--
		}
		return fmt.Errorf("fake: injected send failure to %s", to)
	}
	f.frames = append(f.frames, msg)
	return nil
}

func (f *fakeEP) SetHandler(h Handler)     { f.mu.Lock(); f.handler = h; f.mu.Unlock() }
func (f *fakeEP) SetDropHandler(h Handler) {}
func (f *fakeEP) Close() error             { return nil }

func (f *fakeEP) DropConn(to Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropped = append(f.dropped, to)
}

func (f *fakeEP) sentFrames() []Message {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Message(nil), f.frames...)
}

func (f *fakeEP) sendAttempts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts
}

func (f *fakeEP) droppedConns() []Addr {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Addr(nil), f.dropped...)
}

// setFails arms the next n sends to fail (-1: fail forever).
func (f *fakeEP) setFails(n int) {
	f.mu.Lock()
	f.fails = n
	f.mu.Unlock()
}

// fastResilient is a config with millisecond-scale retries for tests.
func fastResilient() ResilientConfig {
	return ResilientConfig{
		RetryBase: time.Millisecond,
		RetryMax:  4 * time.Millisecond,
	}
}

// TestResilientDeliveryAndOrderOverTCP runs the full pipeline over a real
// loopback socket pair: every control message arrives exactly once and in
// send order when nothing fails.
func TestResilientDeliveryAndOrderOverTCP(t *testing.T) {
	a, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ra := NewResilient(a, fastResilient())
	rb := NewResilient(b, fastResilient())
	defer ra.Close()
	defer rb.Close()

	var mu sync.Mutex
	var got []int
	rb.SetHandler(func(from Addr, msg Message) {
		seq, err := strconv.Atoi(string(msg.Payload))
		if err != nil {
			t.Errorf("bad payload %q", msg.Payload)
			return
		}
		mu.Lock()
		got = append(got, seq)
		mu.Unlock()
	})

	const n = 200
	for i := 0; i < n; i++ {
		if err := ra.Send(rb.Addr(), Message{Type: "seq", Payload: []byte(strconv.Itoa(i))}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= n
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != i {
			t.Fatalf("out of order at %d: got seq %d", i, seq)
		}
	}
}

// TestResilientBatching blocks the inner endpoint on the first frame so the
// queue backs up, then checks the backlog went out as one coalesced frame.
func TestResilientBatching(t *testing.T) {
	inner := newFakeEP()
	inner.enter = make(chan struct{}, 4)
	inner.gate = make(chan struct{})
	r := NewResilient(inner, fastResilient())
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m", Payload: []byte("0")}); err != nil {
		t.Fatal(err)
	}
	// Wait until the sender goroutine is inside inner.Send with frame 0 —
	// it collected its batch (just message 0) before calling Send, so
	// everything below queues behind it.
	<-inner.enter
	const backlog = 10
	for i := 1; i <= backlog; i++ {
		if err := r.Send(dst, Message{Type: "m", Payload: []byte(strconv.Itoa(i))}); err != nil {
			t.Fatal(err)
		}
	}
	close(inner.gate)
	waitFor(t, func() bool { return len(inner.sentFrames()) == 2 })

	frames := inner.sentFrames()
	if frames[0].Type != "m" {
		t.Fatalf("first frame type %q, want bare message", frames[0].Type)
	}
	if frames[1].Type != batchType {
		t.Fatalf("second frame type %q, want %q", frames[1].Type, batchType)
	}
	// Round-trip the envelope through a receiving Resilient's handler.
	recvInner := newFakeEP()
	recv := NewResilient(recvInner, fastResilient())
	defer recv.Close()
	var unpacked []Message
	recv.SetHandler(func(from Addr, msg Message) { unpacked = append(unpacked, msg) })
	recvInner.mu.Lock()
	h := recvInner.handler
	recvInner.mu.Unlock()
	h("someone", frames[1])
	if len(unpacked) != backlog {
		t.Fatalf("unpacked %d messages from batch, want %d", len(unpacked), backlog)
	}
	for i, m := range unpacked {
		if string(m.Payload) != strconv.Itoa(i+1) {
			t.Fatalf("batch order broken at %d: payload %q", i, m.Payload)
		}
	}
}

// TestResilientRetriesTransientFailure arms two failures; the pipeline must
// retry past them and deliver without tripping the breaker.
func TestResilientRetriesTransientFailure(t *testing.T) {
	inner := newFakeEP()
	inner.setFails(2)
	cfg := fastResilient()
	cfg.MaxRetries = 5
	r := NewResilient(inner, cfg)
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(inner.sentFrames()) == 1 })
	if got := inner.sendAttempts(); got != 3 {
		t.Fatalf("send attempts = %d, want 3 (2 failures + 1 success)", got)
	}
	if st := r.State(dst); st != BreakerClosed {
		t.Fatalf("breaker %v after recovered send, want closed", st)
	}
}

// TestResilientBreakerFailFast drives a peer to exhaustion: the breaker
// opens, Send fails fast with ErrPeerDown, and the peer shows up sick.
func TestResilientBreakerFailFast(t *testing.T) {
	inner := newFakeEP()
	inner.setFails(-1)
	cfg := fastResilient()
	cfg.MaxRetries = 1
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}
	r := NewResilient(inner, cfg)
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.State(dst) == BreakerOpen })

	err := r.Send(dst, Message{Type: "m"})
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("Send with open breaker = %v, want ErrPeerDown", err)
	}
	sick := r.SickPeers()
	if len(sick) != 1 || sick[0] != dst {
		t.Fatalf("SickPeers = %v, want [%s]", sick, dst)
	}
}

// TestResilientDatagramNotRetried sends a loss-tolerant datagram into a
// failing endpoint: exactly one attempt, no retries, breaker untouched.
func TestResilientDatagramNotRetried(t *testing.T) {
	inner := newFakeEP()
	inner.setFails(-1)
	cfg := fastResilient()
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}
	r := NewResilient(inner, cfg)
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "d", Datagram: true}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return inner.sendAttempts() == 1 })
	time.Sleep(20 * time.Millisecond) // would be plenty for a retry
	if got := inner.sendAttempts(); got != 1 {
		t.Fatalf("datagram attempted %d times, want 1", got)
	}
	if st := r.State(dst); st != BreakerClosed {
		t.Fatalf("breaker %v after datagram loss, want closed", st)
	}
}

// TestResilientIdleReap lets a quiet peer expire: its sender goroutine
// retires and the pooled inner connection is dropped, then the next Send
// recreates the pipeline transparently.
func TestResilientIdleReap(t *testing.T) {
	inner := newFakeEP()
	cfg := fastResilient()
	cfg.IdleTimeout = 20 * time.Millisecond
	r := NewResilient(inner, cfg)
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(inner.droppedConns()) == 1 })
	if states := r.PeerStates(); len(states) != 0 {
		t.Fatalf("peer still tracked after reap: %v", states)
	}
	// The peer must come back on demand.
	if err := r.Send(dst, Message{Type: "m2"}); err != nil {
		t.Fatalf("send after reap: %v", err)
	}
	waitFor(t, func() bool { return len(inner.sentFrames()) == 2 })
}

// TestResilientDatagramNeverClaimsProbe: with the breaker open past its
// window, a datagram must be rejected without claiming the half-open probe
// slot — datagrams never report an outcome to the breaker, so a datagram
// probe would wedge it half-open forever. Control traffic afterwards still
// probes and recovers the peer.
func TestResilientDatagramNeverClaimsProbe(t *testing.T) {
	inner := newFakeEP()
	inner.setFails(-1)
	cfg := fastResilient()
	cfg.MaxRetries = 1
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: 10 * time.Millisecond}
	r := NewResilient(inner, cfg)
	defer r.Close()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.State(dst) == BreakerOpen })
	time.Sleep(3 * cfg.Breaker.OpenTimeout)

	// The open window has expired; a datagram is still rejected and must
	// not move the breaker to half-open.
	if err := r.Send(dst, Message{Type: "d", Datagram: true}); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("datagram past the open window = %v, want ErrPeerDown", err)
	}
	if st := r.State(dst); st != BreakerOpen {
		t.Fatalf("breaker %v after rejected datagram, want still open", st)
	}

	// A control message claims the probe; its success closes the breaker.
	inner.setFails(0)
	if err := r.Send(dst, Message{Type: "probe"}); err != nil {
		t.Fatalf("control probe = %v", err)
	}
	waitFor(t, func() bool { return r.State(dst) == BreakerClosed })
}

// TestResilientProbeReleasedOnBacklog: a Send admitted as the half-open
// probe that then bounces off a full queue must release the probe slot, or
// the breaker waits forever for an outcome that can never arrive.
func TestResilientProbeReleasedOnBacklog(t *testing.T) {
	inner := newFakeEP()
	inner.enter = make(chan struct{}, 8)
	inner.gate = make(chan struct{})
	cfg := fastResilient()
	cfg.QueueLen = 1
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Millisecond}
	r := NewResilient(inner, cfg)
	defer r.Close()
	defer close(inner.gate)

	dst := Addr("peer")
	// Park the sender goroutine inside the inner endpoint, then fill the
	// one-slot queue behind it.
	if err := r.Send(dst, Message{Type: "m0"}); err != nil {
		t.Fatal(err)
	}
	<-inner.enter
	if err := r.Send(dst, Message{Type: "m1"}); err != nil {
		t.Fatal(err)
	}
	// Force the breaker open with a long-expired window: the next Send is
	// admitted as the half-open probe and then rejected by the full queue.
	r.mu.Lock()
	p := r.peers[dst]
	r.mu.Unlock()
	p.bmu.Lock()
	p.b.failure(time.Now().Add(-time.Hour))
	p.bmu.Unlock()

	if err := r.Send(dst, Message{Type: "probe"}); !errors.Is(err, ErrBacklog) {
		t.Fatalf("probe into full queue = %v, want ErrBacklog", err)
	}
	p.bmu.Lock()
	defer p.bmu.Unlock()
	if p.b.probing {
		t.Fatal("backlogged probe left the probe slot claimed")
	}
}

// TestResilientProbeReleasedOnDeadlineShed: a probe batch shed entirely by
// SendDeadline before any send attempt must hand the probe slot back so the
// next control message can re-probe.
func TestResilientProbeReleasedOnDeadlineShed(t *testing.T) {
	inner := newFakeEP()
	r := NewResilient(inner, fastResilient())
	defer r.Close()

	dst := Addr("peer")
	r.mu.Lock()
	p := r.newPeer(dst)
	r.peers[dst] = p
	r.mu.Unlock()

	// Drive the breaker to half-open with the probe slot claimed.
	p.bmu.Lock()
	for i := 0; i < p.b.cfg.FailureThreshold; i++ {
		p.b.failure(time.Now().Add(-time.Hour))
	}
	admitted := p.b.allow(time.Now())
	p.bmu.Unlock()
	if !admitted {
		t.Fatal("expired open window refused the probe")
	}

	// The probe's own time budget ran out while queued: flushCtrl sheds it
	// without a send attempt.
	expired := []queuedMsg{{msg: Message{Type: "probe"}, at: time.Now().Add(-r.cfg.SendDeadline - time.Second)}}
	r.flushCtrl(p, r.newJitterRand(dst), expired)

	if got := inner.sendAttempts(); got != 0 {
		t.Fatalf("shed batch reached the wire (%d attempts)", got)
	}
	p.bmu.Lock()
	defer p.bmu.Unlock()
	if p.b.probing {
		t.Fatal("deadline-shed probe left the probe slot claimed")
	}
	if p.b.state != BreakerHalfOpen {
		t.Fatalf("breaker %v, want half-open awaiting a fresh probe", p.b.state)
	}
}

// TestResilientCloseSettlesGauges: messages abandoned in peer queues at
// Close and the closed peers' breaker-state gauge entries must be settled,
// or the gauges drift upward forever under endpoint churn.
func TestResilientCloseSettlesGauges(t *testing.T) {
	inner := newFakeEP()
	inner.enter = make(chan struct{}, 8)
	inner.gate = make(chan struct{})
	r := NewResilient(inner, fastResilient())

	depthBefore := telResQueueDepth.Value()
	closedPeersBefore := telResBreakerPeers.With(BreakerClosed.String()).Value()

	dst := Addr("peer")
	if err := r.Send(dst, Message{Type: "m0"}); err != nil {
		t.Fatal(err)
	}
	<-inner.enter // sender parked inside inner.Send; the rest stays queued
	for i := 0; i < 5; i++ {
		if err := r.Send(dst, Message{Type: "m"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := telResBreakerPeers.With(BreakerClosed.String()).Value(); got != closedPeersBefore+1 {
		t.Fatalf("closed-peer gauge = %g with one live peer, want %g", got, closedPeersBefore+1)
	}
	close(inner.gate)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if got := telResQueueDepth.Value(); got != depthBefore {
		t.Fatalf("queue depth gauge = %g after Close, want %g", got, depthBefore)
	}
	if got := telResBreakerPeers.With(BreakerClosed.String()).Value(); got != closedPeersBefore {
		t.Fatalf("closed-peer gauge = %g after Close, want %g", got, closedPeersBefore)
	}
}

// TestResilientQueueFull fills a tiny queue behind a gated endpoint and
// checks overflow surfaces as ErrBacklog.
func TestResilientQueueFull(t *testing.T) {
	inner := newFakeEP()
	inner.gate = make(chan struct{})
	cfg := fastResilient()
	cfg.QueueLen = 2
	r := NewResilient(inner, cfg)
	defer r.Close()
	defer close(inner.gate)

	dst := Addr("peer")
	// First send is pulled by the sender goroutine and blocks in the gate;
	// give it a moment so the queue slots below are truly free.
	if err := r.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	sawBacklog := false
	for i := 0; i < 4; i++ {
		if err := r.Send(dst, Message{Type: "m"}); errors.Is(err, ErrBacklog) {
			sawBacklog = true
			break
		}
	}
	if !sawBacklog {
		t.Fatal("overfilled queue never returned ErrBacklog")
	}
}
