package transport

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the transports (metric catalogue rasc_transport_*).
// The transport label distinguishes the TCP socket path, the UDP datagram
// path of the hybrid endpoint, and the in-process simulator transport.
var (
	telMessages = telemetry.Default().CounterVec(
		"rasc_transport_messages_total",
		"Messages moved through a transport endpoint, by direction.",
		"transport", "direction")
	telBytes = telemetry.Default().CounterVec(
		"rasc_transport_bytes_total",
		"Wire bytes moved through a transport endpoint, by direction.",
		"transport", "direction")
	telConnectErrors = telemetry.Default().CounterVec(
		"rasc_transport_connect_errors_total",
		"Failed dials or unresolvable destinations.",
		"transport")

	telTCPIn        = telMessages.With("tcp", "in")
	telTCPOut       = telMessages.With("tcp", "out")
	telTCPInBytes   = telBytes.With("tcp", "in")
	telTCPOutBytes  = telBytes.With("tcp", "out")
	telTCPConnErr   = telConnectErrors.With("tcp")
	telUDPIn        = telMessages.With("udp", "in")
	telUDPOut       = telMessages.With("udp", "out")
	telUDPInBytes   = telBytes.With("udp", "in")
	telUDPOutBytes  = telBytes.With("udp", "out")
	telUDPConnErr   = telConnectErrors.With("udp")
	telMemIn        = telMessages.With("mem", "in")
	telMemOut       = telMessages.With("mem", "out")
	telMemInBytes   = telBytes.With("mem", "in")
	telMemOutBytes  = telBytes.With("mem", "out")
	telMemSendFails = telConnectErrors.With("mem")
)
