package rasc

import (
	"fmt"
	"strings"
)

// Composer identifies a composition algorithm. Submit accepts the typed
// constants below; command-line front ends turn user input into a Composer
// with ParseComposer, which round-trips with String.
type Composer string

// The composition algorithms accepted by Submit. ComposerMinCost is the
// paper's rate-splitting minimum-cost-flow composer; greedy and random are
// its two baselines; the lp variants solve the allocation as a linear
// program (required for catalogs with non-unit rate ratios).
const (
	ComposerMinCost           Composer = "mincost"
	ComposerMinCostNoSplit    Composer = "mincost-nosplit"
	ComposerMinCostCPU        Composer = "mincost-cpu" // multi-resource: bandwidth + CPU
	ComposerMinCostBestEffort Composer = "mincost-besteffort"
	ComposerGreedy            Composer = "greedy"
	ComposerRandom            Composer = "random"
	ComposerLP                Composer = "lp"
	ComposerLPCPU             Composer = "lp-cpu"
)

// String returns the composer's wire name — the same string ParseComposer
// accepts, so ParseComposer(c.String()) always round-trips.
func (c Composer) String() string { return string(c) }

// Composers lists every composer Submit accepts, in documentation order.
func Composers() []Composer {
	return []Composer{
		ComposerMinCost, ComposerMinCostNoSplit, ComposerMinCostCPU,
		ComposerMinCostBestEffort, ComposerGreedy, ComposerRandom,
		ComposerLP, ComposerLPCPU,
	}
}

// ParseComposer maps a composer name, as given on a command line or in a
// config file, to its typed constant. Unknown names return an error that
// wraps ErrUnknownComposer and lists the accepted names.
func ParseComposer(name string) (Composer, error) {
	known := Composers()
	for _, c := range known {
		if string(c) == name {
			return c, nil
		}
	}
	names := make([]string, len(known))
	for i, c := range known {
		names[i] = string(c)
	}
	return "", fmt.Errorf("%w: %q (accepted: %s)", ErrUnknownComposer, name, strings.Join(names, ", "))
}
