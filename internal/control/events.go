package control

import "rasc.dev/rasc/internal/overlay"

// EventKind enumerates the typed adaptation triggers feeding the
// controller.
type EventKind int

const (
	// RateBelowThreshold reports that an application substream's delivered
	// rate fell below the configured fraction of its requirement (the
	// origin's periodic sink check).
	RateBelowThreshold EventKind = iota
	// MemberDead reports that the gossip failure detector declared a host
	// dead.
	MemberDead
	// BreakerOpen reports that the transport circuit breaker opened for a
	// peer after consecutive send failures.
	BreakerOpen
	// DropRatioSpike reports that a host's disseminated monitoring digest
	// crossed the drop-ratio spike threshold.
	DropRatioSpike
	// UpgradePossible reports that a healthy application admitted below
	// its desired rate might now be upgradable (capacity may have freed).
	UpgradePossible
	// FairShareChanged reports that the tenancy gate recomputed the
	// application's fair-share rate cap (a tenant joined or left, or
	// cluster capacity changed); the application must be recomposed to
	// its new cap.
	FairShareChanged
	// BoundaryLinkSaturated reports that a federated hand-off could not
	// reserve inter-cluster boundary capacity: the application should be
	// recomposed so its cross-cluster substreams find another route (or
	// shrink to what the boundary can carry).
	BoundaryLinkSaturated
	// RemoteCandidateLost reports that a remote cluster hosting part of a
	// federated application stopped answering border summaries: its
	// fragments must be re-placed before the silence becomes loss.
	RemoteCandidateLost
)

// String returns the snake_case label used in rasc_control_* telemetry.
func (k EventKind) String() string {
	switch k {
	case RateBelowThreshold:
		return "rate_below_threshold"
	case MemberDead:
		return "member_dead"
	case BreakerOpen:
		return "breaker_open"
	case DropRatioSpike:
		return "drop_ratio_spike"
	case UpgradePossible:
		return "upgrade_possible"
	case FairShareChanged:
		return "fair_share_changed"
	case BoundaryLinkSaturated:
		return "boundary_link_saturated"
	case RemoteCandidateLost:
		return "remote_candidate_lost"
	}
	return "unknown"
}

// Event is one adaptation trigger published to the controller.
type Event struct {
	Kind EventKind
	// App is the affected application (request ID). Host-scoped events
	// (MemberDead, BreakerOpen, DropRatioSpike) leave it empty; the
	// controller expands them to every application placed on Host.
	App string
	// Host is the culprit host when one is known; the zero ID means
	// "unknown", which forces a full recompose instead of an incremental
	// shift (there is nothing to shift away from).
	Host overlay.ID
	// Substreams lists the affected substream indexes, when known. nil
	// re-solves every substream.
	Substreams []int
}
