package trace

import (
	"strconv"
	"time"
)

// TraceID identifies one decision trace: everything that happened between
// an adaptation trigger and its outcome. IDs are allocated by a Journal
// and are unique within it.
type TraceID uint64

// SpanID identifies one span within a trace. The root span of every trace
// has ID 1; 0 marks "no parent".
type SpanID uint64

// Attr is one structured key/value attribute on a span. Attributes are an
// ordered slice, not a map, so traces marshal deterministically.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// A builds a string attribute.
func A(key, val string) Attr { return Attr{Key: key, Val: val} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// ADur builds a duration attribute rendered in Go duration syntax.
func ADur(key string, d time.Duration) Attr { return Attr{Key: key, Val: d.String()} }

// ABool builds a boolean attribute.
func ABool(key string, v bool) Attr { return Attr{Key: key, Val: strconv.FormatBool(v)} }

// Span is one timed step of a decision trace: the trigger, a controller
// gate, the solver run, the reallocation apply. Start and End are offsets
// on the deployment's clock (virtual time in simulations); a zero-length
// span marks an instantaneous observation.
type Span struct {
	Trace  TraceID       `json:"trace"`
	ID     SpanID        `json:"id"`
	Parent SpanID        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Start  time.Duration `json:"start"`
	End    time.Duration `json:"end"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it is present.
func (s *Span) Attr(key string) (string, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}
