package deploy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/live"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/telemetry"
	"rasc.dev/rasc/internal/trace"
)

// appTimeBelow reads the per-application availability counter. The vec is
// process-global; registration here fetches the family the stream package
// already registered.
func appTimeBelow(app string) float64 {
	return telemetry.Default().FloatCounterVec(
		"rasc_app_time_below_requested_seconds_total",
		"Seconds an application's delivered rate was below the adaptation threshold.",
		"app").With(app).Value()
}

// decisionFailover mirrors failoverDipDuration — same topology, seed,
// request shape and kill — but measures the decision plane instead of raw
// delivery: it returns the journal's decisions for the application and the
// virtual seconds rasc_app_time_below_requested_seconds_total accrued over
// the failover. appID must be unique per call because telemetry is
// process-global.
func decisionFailover(t *testing.T, fullOnly bool, appID string) ([]trace.Decision, float64, *System) {
	t.Helper()
	adapt := stream.AdaptationConfig{Interval: 10 * time.Minute, MinRateFraction: 0.3}
	adapt.Control.DisableIncremental = fullOnly
	s := NewSystem(SystemOptions{
		Nodes:        16,
		Seed:         7,
		EnableGossip: true,
		Gossip:       gossip.Config{ProbeTimeout: 500 * time.Millisecond},
		Adaptation:   &adapt,
	})
	const origin = 0
	offered := map[string]bool{}
	for _, svc := range s.Placement[origin] {
		offered[svc] = true
	}
	var remote []string
	for _, name := range services.Standard().Names() {
		if !offered[name] {
			remote = append(remote, name)
		}
	}
	if len(remote) < 2 {
		t.Fatal("origin offers too many services; cannot force remote placements")
	}
	req := spec.Request{
		ID:        appID,
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{remote[0]}, Rate: 10},
			{Services: []string{remote[1]}, Rate: 10},
		},
	}
	var graph *core.ExecutionGraph
	done := false
	s.Engines[origin].Submit(req, &core.MinCost{}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		graph, done = g, true
	})
	deadline := s.Sim.Now() + 60*time.Second
	for !done && s.Sim.Now() < deadline {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		t.Fatal("composition did not complete")
	}
	byID := map[overlay.ID]int{}
	for i, n := range s.Nodes {
		byID[n.ID()] = i
	}
	victim, victimRate := -1, 0.0
	for _, p := range graph.Placements {
		if p.Substream == 0 && byID[p.Host.ID] != origin && p.Rate > victimRate {
			victim, victimRate = byID[p.Host.ID], p.Rate
		}
	}
	if victim < 0 {
		t.Fatal("no remote placement to kill")
	}
	for _, p := range graph.Placements {
		if p.Substream == 1 && byID[p.Host.ID] == victim {
			t.Fatalf("substreams share host %d; pick another seed", victim)
		}
	}
	// Warm up so the availability meter has a healthy baseline, then
	// measure the accrual across the kill and its recovery window.
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	before := appTimeBelow(appID)
	s.Kill(victim)
	horizon := s.Sim.Now() + 40*time.Second
	for s.Sim.Now() < horizon {
		s.Sim.RunUntil(s.Sim.Now() + 250*time.Millisecond)
	}
	// A few extra sampling periods let the meter observe the recovered
	// rate and stamp convergence on the journal.
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	var ds []trace.Decision
	for _, d := range s.Journal.Decisions() {
		if d.App == appID {
			ds = append(ds, d)
		}
	}
	return ds, appTimeBelow(appID) - before, s
}

// TestFailoverDecisionJournal is the acceptance check for decision-plane
// tracing: after a member-dead failover the journal must hold the complete
// causal chain — trigger, controller decision, solver statistics,
// reallocation outcome and convergence timestamp — the availability metric
// must accrue strictly less below-threshold time with incremental
// reallocation than with teardown-recompose, and /debug/rasc/decisions
// must serve the journal live.
func TestFailoverDecisionJournal(t *testing.T) {
	incrDs, incrBelow, incrSys := decisionFailover(t, false, "chain-incr")
	fullDs, fullBelow, _ := decisionFailover(t, true, "chain-full")

	// --- causal chain, incremental mode ---
	var dec *trace.Decision
	for i := range incrDs {
		if incrDs[i].Trigger == "member_dead" && incrDs[i].Outcome == "success" {
			dec = &incrDs[i]
			break
		}
	}
	if dec == nil {
		t.Fatalf("no successful member_dead decision in journal: %+v", incrDs)
	}
	if dec.Mode != "incremental" {
		t.Fatalf("decision mode = %q, want incremental", dec.Mode)
	}
	if !strings.HasPrefix(dec.Cause, "member dead: ") {
		t.Fatalf("decision cause = %q", dec.Cause)
	}
	spans := map[string]trace.Span{}
	for _, sp := range dec.Spans {
		spans[sp.Name] = sp
	}
	for _, name := range []string{"decision", "decide", "solve", "apply"} {
		if _, ok := spans[name]; !ok {
			t.Fatalf("decision missing %q span: %s", name, trace.FormatDecision(*dec))
		}
	}
	solve := spans["solve"]
	for _, attr := range []string{"iterations", "candidates", "feasible"} {
		if _, ok := solve.Attr(attr); !ok {
			t.Errorf("solve span missing %q attribute: %+v", attr, solve)
		}
	}
	if !dec.Converged {
		t.Fatalf("decision never converged: %s", trace.FormatDecision(*dec))
	}
	if dec.TriggeredAt > dec.CompletedAt || dec.CompletedAt >= dec.ConvergedAt {
		t.Fatalf("causal timestamps out of order: triggered %v completed %v converged %v",
			dec.TriggeredAt, dec.CompletedAt, dec.ConvergedAt)
	}

	// The full-only run must have gone through the teardown path.
	modeFull := false
	for _, d := range fullDs {
		if d.Trigger == "member_dead" && d.Mode == "full" && d.Outcome == "success" {
			modeFull = true
		}
	}
	if !modeFull {
		t.Fatalf("no successful full-mode member_dead decision: %+v", fullDs)
	}

	// --- availability: incremental strictly beats teardown-recompose ---
	if fullBelow <= 0 {
		t.Fatal("teardown-recompose accrued no below-threshold time; comparison is vacuous")
	}
	if incrBelow >= fullBelow {
		t.Fatalf("below-threshold seconds: incremental=%.2f full=%.2f; want incremental strictly less",
			incrBelow, fullBelow)
	}
	t.Logf("below-threshold seconds after kill: incremental=%.2f full-recompose=%.2f", incrBelow, fullBelow)

	// --- the same journal must be served live ---
	srv := httptest.NewServer(live.DecisionsHandler(incrSys.Journal))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?app=chain-incr")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/rasc/decisions = %d", resp.StatusCode)
	}
	for _, want := range []string{`"member_dead"`, `"incremental"`, `"solve"`, `"converged": true`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("live decisions body missing %s", want)
		}
	}
}
