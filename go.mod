module rasc.dev/rasc

go 1.22
