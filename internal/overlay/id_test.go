package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashIDDeterministic(t *testing.T) {
	a, b := HashID("transcode"), HashID("transcode")
	if a != b {
		t.Fatal("HashID not deterministic")
	}
	if HashID("transcode") == HashID("filter") {
		t.Fatal("different names collided")
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		id := RandomID(rng)
		got, err := ParseID(id.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("round trip: %v != %v", got, id)
		}
	}
	if _, err := ParseID("zz"); err == nil {
		t.Fatal("expected error for bad hex")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Fatal("expected error for short ID")
	}
}

func TestDigit(t *testing.T) {
	var id ID
	id[0] = 0xAB
	id[15] = 0xCD
	if id.Digit(0) != 0xA || id.Digit(1) != 0xB {
		t.Fatalf("first byte digits = %x %x", id.Digit(0), id.Digit(1))
	}
	if id.Digit(30) != 0xC || id.Digit(31) != 0xD {
		t.Fatalf("last byte digits = %x %x", id.Digit(30), id.Digit(31))
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a, _ := ParseID("a0000000000000000000000000000000")
	b, _ := ParseID("a0010000000000000000000000000000")
	if got := a.CommonPrefixLen(b); got != 3 {
		t.Fatalf("cpl = %d, want 3", got)
	}
	if got := a.CommonPrefixLen(a); got != NumDigits {
		t.Fatalf("cpl(self) = %d, want %d", got, NumDigits)
	}
	c, _ := ParseID("b0000000000000000000000000000000")
	if got := a.CommonPrefixLen(c); got != 0 {
		t.Fatalf("cpl = %d, want 0", got)
	}
}

func TestCmp(t *testing.T) {
	a, _ := ParseID("00000000000000000000000000000001")
	b, _ := ParseID("00000000000000000000000000000002")
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp ordering wrong")
	}
}

func TestRingDistWraparound(t *testing.T) {
	// Distance between 0x00..00 and 0xff..ff is 1 (one step
	// counter-clockwise), not 2^128-1.
	var zero ID
	var max ID
	for i := range max {
		max[i] = 0xff
	}
	d := RingDist(zero, max)
	var one ID
	one[IDBytes-1] = 1
	if d != one {
		t.Fatalf("RingDist(0, max) = %v, want 1", d)
	}
}

// Property: ring distance is symmetric, zero iff equal, and bounded by half
// the ring.
func TestRingDistProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var half ID
	half[0] = 0x80
	for i := 0; i < 500; i++ {
		a, b := RandomID(rng), RandomID(rng)
		dab, dba := RingDist(a, b), RingDist(b, a)
		if dab != dba {
			t.Fatalf("RingDist not symmetric for %v,%v", a, b)
		}
		var zero ID
		if (a == b) != (dab == zero) {
			t.Fatal("RingDist zero iff equal violated")
		}
		if dab.Cmp(half) > 0 {
			t.Fatalf("RingDist %v exceeds half ring", dab)
		}
	}
}

// Property: CWDist(a,b) + CWDist(b,a) == 0 mod 2^128 for a != b.
func TestCWDistComplement(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := RandomID(rng), RandomID(rng)
		if a == b {
			return true
		}
		s := sub(CWDist(a, b), sub(ID{}, CWDist(b, a)))
		var zero ID
		return s == zero
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCloserTieBreak(t *testing.T) {
	// key equidistant between x and y: the numerically smaller wins.
	key, _ := ParseID("00000000000000000000000000000010")
	x, _ := ParseID("0000000000000000000000000000000c")
	y, _ := ParseID("00000000000000000000000000000014")
	if !Closer(key, x, y) {
		t.Fatal("tie should break toward numerically smaller ID")
	}
	if Closer(key, y, x) {
		t.Fatal("Closer must be asymmetric on ties")
	}
}

func TestMarshalText(t *testing.T) {
	id := HashID("svc")
	b, err := id.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var got ID
	if err := got.UnmarshalText(b); err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatal("MarshalText round trip failed")
	}
	if err := got.UnmarshalText([]byte("nothex")); err == nil {
		t.Fatal("expected unmarshal error")
	}
}
