package stream

import (
	"encoding/binary"
	"sync"
	"time"

	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/sched"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

// DataPlaneConfig tunes the engine's data-unit path. The zero value (and
// any config with BatchUnits ≤ 1 and Shards ≤ 1) selects the legacy path:
// per-unit JSON messages on a single execution context, bit-identical to
// the pre-batching engine.
type DataPlaneConfig struct {
	// BatchUnits is the maximum number of data units coalesced per
	// destination into one binary wire message. Values ≤ 1 send each unit
	// individually through the legacy JSON path.
	BatchUnits int
	// FlushInterval bounds how long a unit may sit in an open batch
	// waiting for companions; it is the latency cost of batching
	// (default DefaultFlushInterval when batching is enabled).
	FlushInterval time.Duration
	// Shards is the number of parallel execution contexts. Units are
	// routed to a shard by (request, substream), so one substream keeps
	// its ordering while a busy node uses multiple simulated cores.
	// Values ≤ 1 keep the single deterministic context.
	Shards int
}

// Data-plane defaults used by DefaultDataPlane and flag surfaces.
const (
	DefaultBatchUnits    = 32
	DefaultFlushInterval = 2 * time.Millisecond
	DefaultShards        = 4
)

// DefaultDataPlane returns the tuned batching configuration benchmarked in
// results/BENCH_dataplane.json.
func DefaultDataPlane() DataPlaneConfig {
	return DataPlaneConfig{
		BatchUnits:    DefaultBatchUnits,
		FlushInterval: DefaultFlushInterval,
		Shards:        DefaultShards,
	}
}

// normalize clamps the config to its effective values.
func (c *DataPlaneConfig) normalize() {
	if c.BatchUnits < 1 {
		c.BatchUnits = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.BatchUnits > 1 && c.FlushInterval <= 0 {
		c.FlushInterval = DefaultFlushInterval
	}
}

// batching reports whether the wire path coalesces units.
func (c DataPlaneConfig) batching() bool { return c.BatchUnits > 1 }

// maxBatchSimBytes caps the simulated payload of one batch so a flush
// never serializes for longer than a handful of legacy units would.
const maxBatchSimBytes = 64 << 10

// ---------------------------------------------------------------------------
// Binary unit codec.
//
// The legacy path JSON-encodes every dataMsg. The batched path reuses the
// transport's framing style (fixed-width big-endian fields, length-prefixed
// strings) to pack many units into one payload:
//
//	batch   := count:u16 unit*
//	unit    := reqLen:u8 req substream:u32 stage:u32 seq:u64 created:u64 size:u32
//
// Encoding scratch comes from a pool and the final wire buffer is sized
// exactly, so a flush costs one allocation regardless of batch size.

// unitWireOverhead is the encoded size of a unit minus its request ID.
const unitWireOverhead = 1 + 4 + 4 + 8 + 8 + 4

// encodedUnitSize returns the wire size of one encoded unit.
func encodedUnitSize(m *dataMsg) int { return unitWireOverhead + len(m.Req) }

// appendUnit encodes one unit. Req must fit a u8 length (callers route
// longer IDs through the legacy path).
func appendUnit(b []byte, m *dataMsg) []byte {
	b = append(b, byte(len(m.Req)))
	b = append(b, m.Req...)
	b = binary.BigEndian.AppendUint32(b, uint32(m.Substream))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Stage))
	b = binary.BigEndian.AppendUint64(b, uint64(m.Seq))
	b = binary.BigEndian.AppendUint64(b, uint64(m.Created))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Size))
	return b
}

// readUnit decodes one unit, returning the remaining buffer.
func readUnit(b []byte, m *dataMsg) ([]byte, bool) {
	if len(b) < 1 {
		return nil, false
	}
	rl := int(b[0])
	b = b[1:]
	if len(b) < rl+unitWireOverhead-1 {
		return nil, false
	}
	m.Req = string(b[:rl])
	b = b[rl:]
	m.Substream = int(binary.BigEndian.Uint32(b))
	m.Stage = int(binary.BigEndian.Uint32(b[4:]))
	m.Seq = int64(binary.BigEndian.Uint64(b[8:]))
	m.Created = time.Duration(binary.BigEndian.Uint64(b[16:]))
	m.Size = int(binary.BigEndian.Uint32(b[24:]))
	return b[28:], true
}

// appendBatchUnits encodes a batch payload.
func appendBatchUnits(b []byte, units []pendingUnit) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(units)))
	for i := range units {
		b = appendUnit(b, &units[i].msg)
	}
	return b
}

// decodeBatchUnits decodes a batch payload into dst (reused between
// calls); it returns nil on any framing error.
func decodeBatchUnits(b []byte, dst []dataMsg) []dataMsg {
	if len(b) < 2 {
		return nil
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	dst = dst[:0]
	for i := 0; i < n; i++ {
		var m dataMsg
		var ok bool
		b, ok = readUnit(b, &m)
		if !ok {
			return nil
		}
		dst = append(dst, m)
	}
	return dst
}

// encodeScratch pools batch-encode buffers.
var encodeScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// decodeScratch pools batch-decode unit slices.
var decodeScratch = sync.Pool{New: func() any { s := make([]dataMsg, 0, DefaultBatchUnits); return &s }}

// ---------------------------------------------------------------------------
// Pooled scheduler units.
//
// Every queued data unit is a sched.Unit paired with its *unitTask payload.
// Both live in one pool (in the style of mincostflow.Solver's scratch
// arenas) so the steady-state hot path allocates nothing per unit.

var unitPool = sync.Pool{New: func() any {
	return &sched.Unit{Payload: &unitTask{}}
}}

// getUnit leases a unit+task pair from the pool.
func getUnit() (*sched.Unit, *unitTask) {
	u := unitPool.Get().(*sched.Unit)
	return u, u.Payload.(*unitTask)
}

// putUnit returns a unit to the pool, clearing pointers so pooled entries
// do not retain components or payloads.
func putUnit(u *sched.Unit) {
	task := u.Payload.(*unitTask)
	task.comp = nil
	task.msg = dataMsg{}
	*u = sched.Unit{Payload: task}
	unitPool.Put(u)
}

// ---------------------------------------------------------------------------
// Per-destination batches.

// pendingUnit is one unit waiting in an open batch, with everything needed
// to account for its fate at flush time.
type pendingUnit struct {
	msg dataMsg
	// fromStage is the stage the unit was produced at (-1 for sources),
	// used for forward/drop traces exactly like the legacy path.
	fromStage int
	// key and service attribute drops to the producing component
	// ("source:<req>/<substream>" and "source" for source emissions).
	key     string
	service string
	// isSource selects source-style accounting (no forward counters).
	isSource bool
	flow     *flowCounters
}

// unitBatch is an open per-destination batch.
type unitBatch struct {
	to    overlay.NodeInfo
	units []pendingUnit
	// simBytes is the simulated payload total (Σ unit Size), charged on
	// the wire via padding like the legacy per-unit messages.
	simBytes int
	// wireBytes tracks the encoded payload size so oversized batches
	// flush early.
	wireBytes int
	cancel    func() // pending flush-deadline timer
}

// engineShard is one execution context: a ready queue plus the busy flag
// of its simulated core.
type engineShard struct {
	queue sched.Policy
	busy  bool
	// runs is drain scratch reused between processing rounds.
	runs []*sched.Unit
	// procs mirrors runs with each unit's jittered processing time.
	procs []time.Duration
}

// shardFor routes a unit to its execution context. Substreams are pinned
// to one shard (FNV-1a over request ID and substream) so per-substream
// ordering survives sharding; with one shard this is the legacy queue.
func (e *Engine) shardFor(req string, substream int) *engineShard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(req); i++ {
		h ^= uint64(req[i])
		h *= prime64
	}
	h ^= uint64(uint32(substream))
	h *= prime64
	return e.shards[h%uint64(len(e.shards))]
}

// queueLen sums the shards' ready queues for the monitor.
func (e *Engine) queueLen() int {
	n := 0
	for _, sh := range e.shards {
		n += sh.queue.Len()
	}
	return n
}

// ---------------------------------------------------------------------------
// Batched send path.

// batchUnit enqueues one unit into the open batch for its destination,
// flushing when the batch is full. Only called when batching is enabled.
func (e *Engine) batchUnit(to overlay.NodeInfo, pu pendingUnit) {
	if len(pu.msg.Req) > 255 {
		// Pathological request IDs do not fit the binary framing; fall
		// back to a legacy single-unit message.
		e.settleUnit(&pu, e.sendUnit(to, pu.msg))
		return
	}
	b := e.batches[to.Addr]
	if b == nil {
		b = &unitBatch{to: to}
		e.batches[to.Addr] = b
		addr := to.Addr
		b.cancel = e.clk.After(e.cfg.DataPlane.FlushInterval, func() {
			e.flushDest(addr, "deadline")
		})
	}
	b.units = append(b.units, pu)
	b.simBytes += pu.msg.Size
	b.wireBytes += encodedUnitSize(&pu.msg)
	if len(b.units) >= e.cfg.DataPlane.BatchUnits || b.simBytes >= maxBatchSimBytes {
		e.flushDest(to.Addr, "full")
	}
}

// flushDest encodes and sends the open batch for addr, then settles every
// unit's accounting according to the send outcome.
func (e *Engine) flushDest(addr transport.Addr, cause string) {
	b := e.batches[addr]
	if b == nil {
		return
	}
	delete(e.batches, addr)
	if b.cancel != nil {
		b.cancel()
	}
	scratch := encodeScratch.Get().(*[]byte)
	payload := appendBatchUnits((*scratch)[:0], b.units)
	pad := b.simBytes - len(payload)
	if pad < 0 {
		pad = 0
	}
	err := e.node.DirectDataPadded(b.to.Addr, appDataBatch, payload, pad)
	*scratch = payload[:0]
	encodeScratch.Put(scratch)
	if err == nil {
		e.Monitor.ObserveSend(e.clk.Now(), b.simBytes)
		telBatchFlush(cause)
		telBatchUnits.Observe(float64(len(b.units)))
	}
	for i := range b.units {
		e.settleUnit(&b.units[i], err)
	}
}

// flushAll flushes every open batch (used when a request stops so no units
// linger past their flush deadline in tests and teardown paths).
func (e *Engine) flushAll() {
	for addr := range e.batches {
		e.flushDest(addr, "stop")
	}
}

// settleUnit applies the legacy per-unit send accounting for a unit whose
// transmission outcome is err.
func (e *Engine) settleUnit(pu *pendingUnit, err error) {
	if err != nil {
		if pu.flow != nil {
			pu.flow.droppedUnits++
			pu.flow.droppedBytes += int64(pu.msg.Size)
		}
		if pu.isSource {
			// The origin's own uplink is congested: record the drop so
			// the node's ratio reflects it.
			e.Monitor.ObserveDrop(pu.key, pu.service)
			return
		}
		// Uplink congestion: the unit is dropped here, and the drop
		// feeds the component's ratio — the congestion feedback RASC's
		// composition relies on.
		e.DropsUplink++
		telDropUplink.Inc()
		e.traceEvent(trace.KindDrop, pu.msg, pu.fromStage, "uplink")
		e.Monitor.ObserveDrop(pu.key, pu.service)
		return
	}
	if !pu.isSource {
		telForwarded.Inc()
		e.traceEvent(trace.KindForward, pu.msg, pu.fromStage, "")
		if pu.flow != nil {
			pu.flow.forwardedUnits++
			pu.flow.forwardedBytes += int64(pu.msg.Size)
		}
	}
}

// onDataBatch receives a binary batch: each unit goes through the same
// delivery path as a legacy arrival.
func (e *Engine) onDataBatch(_ overlay.ID, _ overlay.NodeInfo, body []byte) {
	scratch := decodeScratch.Get().(*[]dataMsg)
	units := decodeBatchUnits(body, *scratch)
	for i := range units {
		e.handleUnit(units[i])
	}
	*scratch = units[:0]
	decodeScratch.Put(scratch)
}

// onDataBatchDropped accounts a batch lost at this node's downlink: every
// unit inside is charged exactly like a legacy downlink drop.
func (e *Engine) onDataBatchDropped(_ overlay.ID, _ overlay.NodeInfo, body []byte) {
	scratch := decodeScratch.Get().(*[]dataMsg)
	units := decodeBatchUnits(body, *scratch)
	for i := range units {
		e.dropArrival(units[i])
	}
	*scratch = units[:0]
	decodeScratch.Put(scratch)
}
