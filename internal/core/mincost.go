package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"rasc.dev/rasc/internal/mincostflow"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

// costScale converts a drop ratio in [0,1] into an integer per-unit arc
// cost.
const costScale = 1_000_000

// utilTieScale converts link utilization in [0,1] into a tie-breaking arc
// cost three orders of magnitude below one drop-window granule (1/64 ≈
// 15625 scaled), so it only matters between hosts with equal drop ratios.
// Without it, the flow deterministically stacks every request onto the
// lexicographically-first idle hosts until their measured availability
// catches up, manufacturing hotspots the monitoring window is too slow to
// prevent.
const utilTieScale = 1_000

// MinCost is RASC's composition algorithm (§3.5): for each substream, a
// layered composition graph is built over the candidate hosts — one
// capacity-bounded, drop-cost internal arc per component instance — and a
// minimum-cost flow of r_req_l units is routed from the source to the
// destination. The flow may split a service across several instances on
// different nodes ("rate splitting"). Capacities are decremented between
// substreams (Algorithm 1's update step).
type MinCost struct {
	// NoSplit restricts every stage to a single component instance (an
	// ablation knob: RASC without rate splitting). Implemented by
	// falling back to greedy-by-cost placement on the flow graph.
	NoSplit bool
	// UseCPU extends the capacity model beyond bandwidth with the CPU
	// resource (the paper's future work on multiple resource
	// constraints): a component's capacity on a host is the minimum of
	// the host's bandwidth budget and its remaining CPU at the
	// service's per-unit cost. Requires Input.Catalog and CPU-reporting
	// hosts; hosts without CPU data fall back to bandwidth-only.
	UseCPU bool
	// Solver selects the min-cost flow algorithm: "ssp" (successive
	// shortest paths, the default) or "scaling" (Goldberg's cost
	// scaling, which the paper cites). Both produce optimal flows; they
	// may differ in which of several equal-cost solutions they return.
	Solver string
	// BestEffortFraction, when positive, admits a substream at a reduced
	// rate instead of rejecting it outright: if the achievable flow is
	// at least this fraction of the requirement, the substream's rate in
	// the returned graph is lowered to the achieved flow (the execution
	// graph's Request reflects the adjusted rates). 0 keeps the paper's
	// all-or-nothing admission.
	BestEffortFraction float64
	// TopK, when positive, prunes every stage to its K cheapest
	// candidates — ordered by (drop ratio, utilization, host ID) — before
	// the O(C²) inter-stage arcs are wired, trading a little allocation
	// fidelity for much smaller flow graphs when discovery returns many
	// hosts per service. K <= 0 keeps the paper-faithful full graph and
	// produces output bit-identical to the unpruned composer.
	TopK int
}

// comp is one candidate component instance in a substream's flow graph.
type comp struct {
	host     overlay.NodeInfo
	drop     float64
	util     float64
	inNode   int
	outNode  int
	internal mincostflow.ArcID
	// residual is the zero-cost arc carrying this instance's surviving
	// prior flow during an incremental re-composition (ComposeDelta);
	// hasResidual gates it because the zero ArcID is a valid arc.
	residual    mincostflow.ArcID
	hasResidual bool
}

// edgeRef remembers an inter-stage arc so its flow can be read back.
type edgeRef struct {
	fromStage int
	toStage   int
	from, to  overlay.NodeInfo
	id        mincostflow.ArcID
}

// composeScratch carries the per-substream working state of one Compose
// call — the flow graph arena, the solver scratch and the stage/edge
// buffers — and is recycled across Compose calls through a pool, so the
// composition hot path stops allocating a fresh graph and solver per
// substream.
type composeScratch struct {
	graph  *mincostflow.Graph
	solver mincostflow.Solver
	stages [][]comp
	edges  []edgeRef
}

var composeScratchPool = sync.Pool{New: func() interface{} {
	return &composeScratch{graph: mincostflow.NewGraph(0)}
}}

// stagesFor returns the stage buffer resized to q empty stages, reusing
// the per-stage slices' backing arrays.
func (sc *composeScratch) stagesFor(q int) [][]comp {
	full := sc.stages[:cap(sc.stages)]
	for i := range full {
		full[i] = full[i][:0]
	}
	if cap(sc.stages) < q {
		grown := make([][]comp, q)
		copy(grown, full)
		sc.stages = grown
	} else {
		sc.stages = sc.stages[:q]
	}
	return sc.stages
}

// solve runs the configured min-cost flow algorithm on the scratch solver.
func (m *MinCost) solve(sc *composeScratch, s, t int, want int64) (mincostflow.Result, error) {
	if m.Solver == "scaling" {
		return sc.solver.MinCostFlowScaling(sc.graph, s, t, want)
	}
	return sc.solver.MinCostFlow(sc.graph, s, t, want)
}

// Name implements Composer.
func (m *MinCost) Name() string {
	switch {
	case m.NoSplit:
		return "mincost-nosplit"
	case m.UseCPU:
		return "mincost-cpu"
	case m.BestEffortFraction > 0:
		return "mincost-besteffort"
	}
	return "mincost"
}

// Compose implements Composer.
func (m *MinCost) Compose(in Input) (*ExecutionGraph, error) {
	defer observeCompose(time.Now())
	defer observeStats(in.Stats, time.Now())
	if err := in.Request.Validate(); err != nil {
		return nil, err
	}
	sc := composeScratchPool.Get().(*composeScratch)
	defer composeScratchPool.Put(sc)
	if sc.solver.Reused() {
		telSolverReuse.Inc()
	}
	g := &ExecutionGraph{
		Request:  in.Request,
		Composer: m.Name(),
		Source:   in.Source,
		Dest:     in.Dest,
	}
	// Best-effort admission may lower substream rates in the returned
	// graph; copy the slice so the caller's request stays untouched.
	g.Request.Substreams = append([]spec.Substream(nil), in.Request.Substreams...)
	// Pre-size the output: at least one placement per stage and one edge
	// per stage boundary; rate splitting can append beyond the hint.
	total := 0
	for _, ss := range in.Request.Substreams {
		total += len(ss.Services)
	}
	g.Placements = make([]Placement, 0, total)
	g.Edges = make([]Edge, 0, total+2*len(in.Request.Substreams))
	caps := newCapTracker()
	// Seed endpoint capacities. The source only transmits; the
	// destination only receives — but we apply the paper's r_max(n)
	// uniformly.
	caps.seed(in.Source.ID, int(in.SourceReport.AvailOut()*in.headroom()/unitBits(in.Request)))
	caps.seed(in.Dest.ID, int(in.DestReport.AvailIn()*in.headroom()/unitBits(in.Request)))
	for _, cands := range in.Candidates {
		for _, c := range cands {
			caps.seed(c.Info.ID, maxRateUnits(c.Report, in))
			if m.UseCPU {
				caps.seedCPU(c.Info.ID, c.Report.SpeedFactor, c.Report.AvailCPU()*in.headroom())
			}
		}
	}
	for l := range in.Request.Substreams {
		if err := m.composeSubstream(in, g, caps, sc, l, nil); err != nil {
			return nil, fmt.Errorf("substream %d: %w", l, err)
		}
	}
	if in.Stats != nil {
		in.Stats.Feasible = true
	}
	return g, nil
}

// pruneTopK truncates a stage's candidates to its k cheapest, ordered by
// (drop ratio, utilization, host ID) — the same cost key the internal
// arcs carry, so the survivors are exactly the hosts the full flow graph
// prefers first.
func pruneTopK(stage []comp, k int) []comp {
	if k <= 0 || len(stage) <= k {
		return stage
	}
	sort.Slice(stage, func(i, j int) bool {
		a, b := &stage[i], &stage[j]
		if a.drop != b.drop {
			return a.drop < b.drop
		}
		if a.util != b.util {
			return a.util < b.util
		}
		return a.host.ID.Cmp(b.host.ID) < 0
	})
	return stage[:k]
}

// composeSubstream reduces substream l to a min-cost flow instance and
// reads the placements and edges back from the arc flows. dc is nil for a
// full composition; an incremental re-composition (ComposeDelta) passes
// the surviving prior flow, which is pre-seeded as zero-cost residual
// arcs, and the degraded hosts, which are excluded from candidacy.
func (m *MinCost) composeSubstream(in Input, g *ExecutionGraph, caps *capTracker, sc *composeScratch, l int, dc *deltaCtx) error {
	chain := stageServices(in.Request, l)
	rate := in.Request.Substreams[l].Rate
	q := len(chain)

	// Gather candidates per stage; a host may appear at several stages.
	stages := sc.stagesFor(q)
	for j, svc := range chain {
		cands := in.Candidates[svc]
		if len(cands) == 0 {
			return fmt.Errorf("%w: no hosts offer %q", ErrNoFeasiblePlacement, svc)
		}
		for _, c := range cands {
			if dc != nil && dc.degraded[c.Info.ID] {
				continue
			}
			stages[j] = append(stages[j], comp{host: c.Info, drop: c.Report.DropRatio, util: c.Report.Utilization()})
		}
		if len(stages[j]) == 0 {
			return fmt.Errorf("%w: every host offering %q is degraded", ErrNoFeasiblePlacement, svc)
		}
		stages[j] = pruneTopK(stages[j], m.TopK)
	}
	if st := in.Stats; st != nil {
		st.Substreams++
		for j := range stages {
			st.Candidates += len(stages[j])
		}
	}

	fg := sc.graph
	fg.Reset(2)
	const (
		src  = 0
		sink = 1
	)
	srcOut := fg.AddNode()
	dstIn := fg.AddNode()
	// Source uplink and destination downlink capacities. A re-composed
	// substream is already flowing, so its prior rate — invisible in the
	// endpoints' measured availability — is credited back as residual
	// capacity.
	srcCap, dstCap := int64(caps.get(in.Source.ID)), int64(caps.get(in.Dest.ID))
	if dc != nil {
		srcCap += dc.endpointResidual
		dstCap += dc.endpointResidual
	}
	fg.AddArc(src, srcOut, srcCap, 0)
	fg.AddArc(dstIn, sink, dstCap, 0)
	for j := range stages {
		proc := procFor(in, chain[j])
		for k := range stages[j] {
			c := &stages[j][k]
			c.inNode = fg.AddNode()
			c.outNode = fg.AddNode()
			capUnits := int64(caps.capacityFor(c.host.ID, proc))
			cost := int64(c.drop*costScale) + int64(c.util*utilTieScale)
			c.internal = fg.AddArc(c.inNode, c.outNode, capUnits, cost)
			if dc != nil && j < len(dc.residual) {
				// Surviving prior placement: its current flow rides a
				// zero-cost parallel arc, so keeping it costs nothing and
				// the solver only re-routes the degraded share.
				if r := dc.residual[j][c.host.ID]; r > 0 {
					c.residual = fg.AddArc(c.inNode, c.outNode, r, 0)
					c.hasResidual = true
				}
			}
		}
	}
	const unbounded = int64(1) << 40
	// Pre-size the edge buffer: C₀ + Σⱼ CⱼCⱼ₊₁ + C_q₋₁ inter-stage arcs.
	edgeCap := len(stages[0]) + len(stages[q-1])
	for j := 0; j+1 < q; j++ {
		edgeCap += len(stages[j]) * len(stages[j+1])
	}
	if cap(sc.edges) < edgeCap {
		sc.edges = make([]edgeRef, 0, edgeCap)
	}
	edges := sc.edges[:0]
	// Source to stage 0.
	for k := range stages[0] {
		c := &stages[0][k]
		id := fg.AddArc(srcOut, c.inNode, unbounded, 0)
		edges = append(edges, edgeRef{fromStage: -1, toStage: 0, from: in.Source, to: c.host, id: id})
	}
	// Stage j to stage j+1.
	for j := 0; j+1 < q; j++ {
		for k := range stages[j] {
			for k2 := range stages[j+1] {
				a, b := &stages[j][k], &stages[j+1][k2]
				id := fg.AddArc(a.outNode, b.inNode, unbounded, 0)
				edges = append(edges, edgeRef{fromStage: j, toStage: j + 1, from: a.host, to: b.host, id: id})
			}
		}
	}
	// Last stage to destination.
	for k := range stages[q-1] {
		c := &stages[q-1][k]
		id := fg.AddArc(c.outNode, dstIn, unbounded, 0)
		edges = append(edges, edgeRef{fromStage: q - 1, toStage: q, from: c.host, to: in.Dest, id: id})
	}
	sc.edges = edges

	if m.NoSplit {
		// Ablation: keep only the cheapest feasible host per stage
		// (ties to the lower ID) so the flow cannot split.
		for j := range stages {
			best := -1
			for k := range stages[j] {
				if fg.Residual(stages[j][k].internal) < int64(rate) {
					continue
				}
				if best == -1 ||
					stages[j][k].drop < stages[j][best].drop ||
					(stages[j][k].drop == stages[j][best].drop &&
						stages[j][k].host.ID.Cmp(stages[j][best].host.ID) < 0) {
					best = k
				}
			}
			if best == -1 {
				return fmt.Errorf("%w: no single host can carry stage %d", ErrNoFeasiblePlacement, j)
			}
			for k := range stages[j] {
				if k != best {
					fg.ZeroCapacity(stages[j][k].internal)
				}
			}
		}
	}

	res, err := m.solve(sc, src, sink, int64(rate))
	if st := in.Stats; st != nil {
		st.Nodes += fg.NumNodes()
		st.Arcs += fg.NumArcs()
		st.Iterations += res.Iterations
		st.Flow += res.Flow
	}
	if err != nil {
		return err
	}
	if res.Flow < int64(rate) {
		if m.BestEffortFraction <= 0 || float64(res.Flow) < m.BestEffortFraction*float64(rate) {
			return fmt.Errorf("%w: achieved %d of %d units/sec", ErrNoFeasiblePlacement, res.Flow, rate)
		}
		// Best-effort admission: lower the substream's requirement to
		// the achievable rate. The graph's Request carries the adjusted
		// rate so sources, sinks and CheckGraph all agree.
		rate = int(res.Flow)
		g.Request.Substreams[l].Rate = rate
	}

	// Read back placements and edges; update capacities. Residual flow is
	// capacity the instance already holds, so only the newly routed share
	// is deducted from the measured availability budget.
	for j := range stages {
		proc := procFor(in, chain[j])
		for k := range stages[j] {
			c := &stages[j][k]
			fresh := fg.Flow(c.internal)
			f := fresh
			if c.hasResidual {
				f += fg.Flow(c.residual)
			}
			if f <= 0 {
				continue
			}
			g.Placements = append(g.Placements, Placement{
				Substream: l, Stage: j, Service: chain[j],
				Host: c.host, Rate: float64(f),
			})
			caps.consume(c.host.ID, int(fresh))
			caps.consumeCPU(c.host.ID, int(fresh), proc)
		}
	}
	for _, e := range edges {
		f := fg.Flow(e.id)
		if f <= 0 {
			continue
		}
		g.Edges = append(g.Edges, Edge{
			Substream: l, FromStage: e.fromStage, ToStage: e.toStage,
			From: e.from, To: e.to, Rate: float64(f),
		})
	}
	caps.consume(in.Source.ID, rate)
	caps.consume(in.Dest.ID, rate)
	return nil
}
