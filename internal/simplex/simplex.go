// Package simplex is a dense two-phase tableau simplex solver for linear
// programs in the form
//
//	minimize  c·x
//	subject to  a_i·x {≤,=,≥} b_i,  x ≥ 0.
//
// RASC's composition problem reduces to minimum-cost flow when every
// component's rate ratio R_ci is 1; the paper notes that "in the case where
// the rate ratio is not equal to 1, a linear programming method can be used
// to solve equations 1-4". This package provides that method for the
// generalized composer.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Relation compares a constraint row to its right-hand side.
type Relation int

// Supported constraint relations.
const (
	LE Relation = iota // ≤
	GE                 // ≥
	EQ                 // =
)

// ErrInfeasible is returned when no x satisfies the constraints.
var ErrInfeasible = errors.New("simplex: infeasible")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("simplex: unbounded")

const eps = 1e-9

type constraint struct {
	coeffs []float64
	rel    Relation
	rhs    float64
}

// Problem is a linear program under construction.
type Problem struct {
	c        []float64
	rows     []constraint
	maximize bool
}

// NewMinimize starts a minimization problem over len(c) non-negative
// variables with objective coefficients c.
func NewMinimize(c []float64) *Problem {
	cc := make([]float64, len(c))
	copy(cc, c)
	return &Problem{c: cc}
}

// NewMaximize starts a maximization problem (solved by negating the
// objective).
func NewMaximize(c []float64) *Problem {
	cc := make([]float64, len(c))
	for i, v := range c {
		cc[i] = -v
	}
	return &Problem{c: cc, maximize: true}
}

// AddConstraint appends the constraint coeffs·x rel rhs. The coefficient
// slice must have one entry per variable.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	if len(coeffs) != len(p.c) {
		panic(fmt.Sprintf("simplex: constraint has %d coefficients for %d variables", len(coeffs), len(p.c)))
	}
	cc := make([]float64, len(coeffs))
	copy(cc, coeffs)
	p.rows = append(p.rows, constraint{coeffs: cc, rel: rel, rhs: rhs})
}

// Solution is an optimal assignment.
type Solution struct {
	// X holds the variable values.
	X []float64
	// Objective is c·X for the problem as originally stated (maximization
	// problems report the maximized value).
	Objective float64
}

// tableau implements the dense simplex with Bland's rule.
type tableau struct {
	m, n  int // constraints, total columns (variables) excluding RHS
	a     [][]float64
	b     []float64
	cost  []float64 // current objective row (reduced costs maintained by pivoting)
	basis []int     // basis[i] = column basic in row i
}

func (t *tableau) pivot(row, col int) {
	p := t.a[row][col]
	inv := 1 / p
	for j := 0; j < t.n; j++ {
		t.a[row][j] *= inv
	}
	t.b[row] *= inv
	t.a[row][col] = 1 // fight rounding
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.a[i][j] -= f * t.a[row][j]
		}
		t.b[i] -= f * t.b[row]
		t.a[i][col] = 0
	}
	f := t.cost[col]
	if f != 0 {
		for j := 0; j < t.n; j++ {
			t.cost[j] -= f * t.a[row][j]
		}
		t.cost[col] = 0
	}
	t.basis[row] = col
}

// iterate runs simplex pivots until optimal; it returns ErrUnbounded when a
// column can improve forever. Bland's rule guarantees termination.
func (t *tableau) iterate(allowed func(col int) bool) error {
	for {
		col := -1
		for j := 0; j < t.n; j++ {
			if t.cost[j] < -eps && (allowed == nil || allowed(j)) {
				col = j
				break // Bland: smallest improving index
			}
		}
		if col == -1 {
			return nil
		}
		row := -1
		var best float64
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				ratio := t.b[i] / t.a[i][col]
				if row == -1 || ratio < best-eps ||
					(math.Abs(ratio-best) <= eps && t.basis[i] < t.basis[row]) {
					row, best = i, ratio
				}
			}
		}
		if row == -1 {
			return ErrUnbounded
		}
		t.pivot(row, col)
	}
}

// Solve runs the two-phase simplex and returns an optimal solution.
func (p *Problem) Solve() (Solution, error) {
	nVars := len(p.c)
	m := len(p.rows)

	// Normalize rows to non-negative right-hand sides, then count the
	// slack/surplus and artificial columns each relation needs.
	type normRow struct {
		coeffs []float64
		rel    Relation
		rhs    float64
	}
	norm := make([]normRow, m)
	nSlack, nArt := 0, 0
	for i, r := range p.rows {
		nr := normRow{coeffs: make([]float64, nVars), rel: r.rel, rhs: r.rhs}
		copy(nr.coeffs, r.coeffs)
		if nr.rhs < 0 {
			for j := range nr.coeffs {
				nr.coeffs[j] = -nr.coeffs[j]
			}
			nr.rhs = -nr.rhs
			switch nr.rel {
			case LE:
				nr.rel = GE
			case GE:
				nr.rel = LE
			}
		}
		switch nr.rel {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
		norm[i] = nr
	}
	n := nVars + nSlack + nArt
	t := &tableau{
		m: m, n: n,
		a:     make([][]float64, m),
		b:     make([]float64, m),
		cost:  make([]float64, n),
		basis: make([]int, m),
	}
	artCols := make([]bool, n)
	slackIdx := nVars
	artIdx := nVars + nSlack
	for i, r := range norm {
		row := make([]float64, n)
		copy(row, r.coeffs)
		t.b[i] = r.rhs
		switch r.rel {
		case LE:
			row[slackIdx] = 1
			t.basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			slackIdx++
			row[artIdx] = 1
			artCols[artIdx] = true
			t.basis[i] = artIdx
			artIdx++
		case EQ:
			row[artIdx] = 1
			artCols[artIdx] = true
			t.basis[i] = artIdx
			artIdx++
		}
		t.a[i] = row
	}

	// Phase 1: minimize the sum of artificial variables.
	if artIdx > nVars+nSlack {
		for j := nVars + nSlack; j < artIdx; j++ {
			t.cost[j] = 1
		}
		// Make reduced costs consistent with the starting basis.
		for i := 0; i < t.m; i++ {
			if artCols[t.basis[i]] {
				for j := 0; j < t.n; j++ {
					t.cost[j] -= t.a[i][j]
				}
			}
		}
		if err := t.iterate(nil); err != nil {
			return Solution{}, err
		}
		// Objective value of phase 1 = -cost of constant term; compute
		// via basic artificials.
		sumArt := 0.0
		for i := 0; i < t.m; i++ {
			if artCols[t.basis[i]] {
				sumArt += t.b[i]
			}
		}
		if sumArt > 1e-6 {
			return Solution{}, ErrInfeasible
		}
		// Drive remaining (degenerate) artificials out of the basis.
		for i := 0; i < t.m; i++ {
			if !artCols[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < nVars+nSlack; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			_ = pivoted // a redundant row may keep its artificial at 0
		}
	}

	// Phase 2: original objective, artificial columns frozen.
	for j := 0; j < t.n; j++ {
		t.cost[j] = 0
	}
	for j := 0; j < nVars; j++ {
		t.cost[j] = p.c[j]
	}
	for i := 0; i < t.m; i++ {
		f := t.cost[t.basis[i]]
		if f == 0 {
			continue
		}
		for j := 0; j < t.n; j++ {
			t.cost[j] -= f * t.a[i][j]
		}
		t.cost[t.basis[i]] = 0
	}
	if err := t.iterate(func(col int) bool { return !artCols[col] }); err != nil {
		return Solution{}, err
	}

	x := make([]float64, nVars)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < nVars {
			x[t.basis[i]] = t.b[i]
		}
	}
	obj := 0.0
	for j := 0; j < nVars; j++ {
		obj += p.c[j] * x[j]
	}
	if p.maximize {
		obj = -obj
	}
	return Solution{X: x, Objective: obj}, nil
}
