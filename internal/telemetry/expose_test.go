package telemetry

import (
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one of everything, exercising
// label escaping, unlabelled series, gauge funcs and histogram buckets.
func goldenRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("rasc_demo_ops_total", "Operations performed.")
	c.Add(42)

	vec := r.CounterVec("rasc_demo_dropped_total", "Dropped units by cause.", "cause")
	vec.With("laxity").Add(3)
	vec.With("queue-full").Add(1)
	vec.With(`we"ird\cause` + "\n").Inc()

	g := r.Gauge("rasc_demo_queue_depth", "Units queued right now.")
	g.Set(7)

	r.GaugeFunc("rasc_demo_uptime_seconds", "Computed at scrape time.", func() float64 { return 12.5 })

	h := r.Histogram("rasc_demo_latency_seconds", "Delivery latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 3} {
		h.Observe(v)
	}

	hv := r.HistogramVec("rasc_demo_laxity_seconds", "Laxity by policy.", []float64{0, 0.05}, "policy")
	hv.With("llf").Observe(-0.01)
	hv.With("llf").Observe(0.02)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	got := goldenRegistry().String()
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionInvariants checks format properties independent of the
// golden file: escaping, monotone counters and cumulative buckets.
func TestExpositionInvariants(t *testing.T) {
	out := goldenRegistry().String()
	if !strings.Contains(out, `cause="we\"ird\\cause\n"`) {
		t.Errorf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE rasc_demo_ops_total counter") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	// Histogram buckets must be cumulative and end at +Inf == _count.
	checks := []struct{ line, reason string }{
		{`rasc_demo_latency_seconds_bucket{le="0.01"} 1`, "first bucket"},
		{`rasc_demo_latency_seconds_bucket{le="0.1"} 3`, "second bucket cumulative"},
		{`rasc_demo_latency_seconds_bucket{le="1"} 4`, "third bucket cumulative"},
		{`rasc_demo_latency_seconds_bucket{le="+Inf"} 5`, "+Inf bucket equals count"},
		{`rasc_demo_latency_seconds_count 5`, "count line"},
	}
	for _, c := range checks {
		if !strings.Contains(out, c.line) {
			t.Errorf("missing %s (%q):\n%s", c.reason, c.line, out)
		}
	}
	// Families must be sorted by name.
	idxDropped := strings.Index(out, "# TYPE rasc_demo_dropped_total")
	idxOps := strings.Index(out, "# TYPE rasc_demo_ops_total")
	idxUptime := strings.Index(out, "# TYPE rasc_demo_uptime_seconds")
	if !(idxDropped < idxOps && idxOps < idxUptime) {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, "rasc_demo_uptime_seconds 12.5") {
		t.Errorf("gauge func not evaluated:\n%s", out)
	}
}

func TestHandlerContentType(t *testing.T) {
	r := goldenRegistry()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentType)
	}
	if rec.Body.Len() == 0 {
		t.Fatal("empty body")
	}
}
