package monitor

import (
	"sort"
	"time"
)

// DefaultWindow is the default statistics window size h.
const DefaultWindow = 64

// ComponentStats is the per-component view a node reports to composers.
type ComponentStats struct {
	Service     string        `json:"service"`
	ArrivalRate float64       `json:"arrivalRate"` // data units per second
	MeanProc    time.Duration `json:"meanProc"`    // mean running time t_ci
	DropRatio   float64       `json:"dropRatio"`   // drops_n(ci) over the window
	Arrived     int64         `json:"arrived"`     // lifetime counters
	Processed   int64         `json:"processed"`
	Dropped     int64         `json:"dropped"`
}

// Report is the monitoring snapshot shipped to a composing node (the
// "performance metadata" of §3.3).
type Report struct {
	At         time.Duration             `json:"at"`
	InBpsCap   float64                   `json:"inBpsCap"`
	OutBpsCap  float64                   `json:"outBpsCap"`
	InBpsUsed  float64                   `json:"inBpsUsed"`
	OutBpsUsed float64                   `json:"outBpsUsed"`
	DropRatio  float64                   `json:"dropRatio"` // node-level, all components
	QueueLen   int                       `json:"queueLen"`
	Components map[string]ComponentStats `json:"components,omitempty"`

	// SpeedFactor is the node's CPU speed relative to the reference
	// (0 when the node does not report CPU). CPUFraction is the CPU's
	// busy fraction over the window. Together they extend the
	// availability vector beyond bandwidth — the paper's future work on
	// multiple resource constraints.
	SpeedFactor float64 `json:"speedFactor,omitempty"`
	CPUFraction float64 `json:"cpuFraction,omitempty"`
}

// AvailCPU returns the unused CPU fraction (0 when CPU is not reported).
func (r Report) AvailCPU() float64 {
	if r.SpeedFactor <= 0 {
		return 0
	}
	return max0(1 - r.CPUFraction)
}

// AvailIn returns the available input bandwidth A_n[0] = b_in.
func (r Report) AvailIn() float64 { return max0(r.InBpsCap - r.InBpsUsed) }

// AvailOut returns the available output bandwidth A_n[1] = b_out.
func (r Report) AvailOut() float64 { return max0(r.OutBpsCap - r.OutBpsUsed) }

// Availability returns the paper's availability vector A_n = [b_in, b_out].
func (r Report) Availability() []float64 { return []float64{r.AvailIn(), r.AvailOut()} }

// Utilization returns the larger of the input and output link utilization
// fractions, clamped to [0,1].
func (r Report) Utilization() float64 {
	u := 0.0
	if r.InBpsCap > 0 {
		u = r.InBpsUsed / r.InBpsCap
	}
	if r.OutBpsCap > 0 {
		if o := r.OutBpsUsed / r.OutBpsCap; o > u {
			u = o
		}
	}
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

type componentMonitor struct {
	service   string
	arrivals  *RateEstimator
	proc      *DurationWindow
	drops     *RatioWindow
	arrived   int64
	processed int64
	dropped   int64
}

// NodeMonitor maintains every window for one node.
type NodeMonitor struct {
	window     int
	inCap      float64
	outCap     float64
	inMeter    *ByteRateMeter
	outMeter   *ByteRateMeter
	busyMeter  *BusyMeter
	speed      float64
	cpus       int
	nodeDrops  *RatioWindow
	components map[string]*componentMonitor
	queueLen   func() int
}

// NewNodeMonitor creates a monitor for a node with the given access-link
// capacities (bits per second) and window size h (0 selects DefaultWindow).
func NewNodeMonitor(inBpsCap, outBpsCap float64, h int) *NodeMonitor {
	if h <= 0 {
		h = DefaultWindow
	}
	return &NodeMonitor{
		window:     h,
		inCap:      inBpsCap,
		outCap:     outBpsCap,
		inMeter:    NewByteRateMeter(h),
		outMeter:   NewByteRateMeter(h),
		busyMeter:  NewBusyMeter(h),
		nodeDrops:  NewRatioWindow(h),
		components: make(map[string]*componentMonitor),
	}
}

// SetCPU declares the node's CPU speed factor, enabling CPU reporting.
func (m *NodeMonitor) SetCPU(speedFactor float64) { m.speed = speedFactor }

// SetCPUCount declares how many execution contexts feed ObserveBusy. The
// busy meter accumulates the contexts' busy time jointly, so the reported
// CPUFraction is normalized by n to stay in [0, 1]. Engines only call this
// when running more than one data-plane shard; the default divisor is 1.
func (m *NodeMonitor) SetCPUCount(n int) {
	if n >= 1 {
		m.cpus = n
	}
}

// ObserveBusy records a completed CPU busy period of length d ending now.
func (m *NodeMonitor) ObserveBusy(now, d time.Duration) { m.busyMeter.Observe(now, d) }

// SetQueueLenFunc installs a callback reporting the scheduler queue length.
func (m *NodeMonitor) SetQueueLenFunc(f func() int) { m.queueLen = f }

func (m *NodeMonitor) component(key, service string) *componentMonitor {
	c, ok := m.components[key]
	if !ok {
		c = &componentMonitor{
			service:  service,
			arrivals: NewRateEstimator(m.window),
			proc:     NewDurationWindow(m.window),
			drops:    NewRatioWindow(m.window),
		}
		m.components[key] = c
	}
	return c
}

// ObserveArrival records a data unit of size bytes arriving for the
// component identified by key at time now.
func (m *NodeMonitor) ObserveArrival(key, service string, now time.Duration, size int) {
	m.inMeter.Observe(now, size)
	c := m.component(key, service)
	c.arrivals.Observe(now)
	c.arrived++
}

// ObserveProcessed records a completed execution taking proc time.
func (m *NodeMonitor) ObserveProcessed(key, service string, proc time.Duration) {
	c := m.component(key, service)
	c.proc.Observe(proc)
	c.processed++
	c.drops.Observe(false)
	m.nodeDrops.Observe(false)
}

// ObserveDrop records a dropped data unit for the component.
func (m *NodeMonitor) ObserveDrop(key, service string) {
	c := m.component(key, service)
	c.dropped++
	c.drops.Observe(true)
	m.nodeDrops.Observe(true)
}

// ObserveSend records size bytes leaving the node at time now.
func (m *NodeMonitor) ObserveSend(now time.Duration, size int) {
	m.outMeter.Observe(now, size)
}

// ArrivalRate returns the current arrival rate of a component (units/sec).
func (m *NodeMonitor) ArrivalRate(key string) float64 {
	if c, ok := m.components[key]; ok {
		return c.arrivals.Rate()
	}
	return 0
}

// Period returns the inferred inter-arrival period p_ci of a component.
func (m *NodeMonitor) Period(key string) time.Duration {
	if c, ok := m.components[key]; ok {
		return c.arrivals.Period()
	}
	return 0
}

// MeanProc returns the mean running time t_ci of a component.
func (m *NodeMonitor) MeanProc(key string) time.Duration {
	if c, ok := m.components[key]; ok {
		return c.proc.Mean()
	}
	return 0
}

// DropRatio returns the node-level drop ratio over the window.
func (m *NodeMonitor) DropRatio() float64 { return m.nodeDrops.Ratio() }

// Report assembles the full monitoring snapshot at time now.
func (m *NodeMonitor) Report(now time.Duration) Report {
	r := Report{
		At:          now,
		InBpsCap:    m.inCap,
		OutBpsCap:   m.outCap,
		InBpsUsed:   m.inMeter.Bps(now),
		OutBpsUsed:  m.outMeter.Bps(now),
		DropRatio:   m.nodeDrops.Ratio(),
		SpeedFactor: m.speed,
		CPUFraction: m.busyMeter.Fraction(now),
		Components:  make(map[string]ComponentStats, len(m.components)),
	}
	if m.cpus > 1 {
		r.CPUFraction /= float64(m.cpus)
	}
	if m.queueLen != nil {
		r.QueueLen = m.queueLen()
	}
	keys := make([]string, 0, len(m.components))
	for k := range m.components {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := m.components[k]
		r.Components[k] = ComponentStats{
			Service:     c.service,
			ArrivalRate: c.arrivals.Rate(),
			MeanProc:    c.proc.Mean(),
			DropRatio:   c.drops.Ratio(),
			Arrived:     c.arrived,
			Processed:   c.processed,
			Dropped:     c.dropped,
		}
	}
	export(r)
	return r
}
