package discovery

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/dht"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/simnet"
)

func newDirCluster(t *testing.T, n int, seed int64) (*simnet.Cluster, []*Directory) {
	t.Helper()
	c := simnet.New(simnet.Options{N: n, Seed: seed})
	dirs := make([]*Directory, n)
	for i, node := range c.Nodes {
		dirs[i] = New(node, dht.New(node, c.Clock), c.Clock)
	}
	return c, dirs
}

func TestAnnounceLookup(t *testing.T) {
	c, dirs := newDirCluster(t, 16, 1)
	dirs[3].Announce("transcode")
	dirs[7].Announce("transcode")
	dirs[9].Announce("filter")
	c.Sim.Run()
	var hosts []overlay.NodeInfo
	dirs[0].Lookup("transcode", time.Second, func(h []overlay.NodeInfo, err error) {
		if err != nil {
			t.Error(err)
		}
		hosts = h
	})
	c.Sim.Run()
	if len(hosts) != 2 {
		t.Fatalf("got %d hosts, want 2", len(hosts))
	}
	want := map[overlay.ID]bool{c.Nodes[3].ID(): true, c.Nodes[7].ID(): true}
	for _, h := range hosts {
		if !want[h.ID] {
			t.Fatalf("unexpected host %v", h.ID)
		}
	}
}

func TestLookupUnknownServiceEmpty(t *testing.T) {
	c, dirs := newDirCluster(t, 8, 2)
	ran := false
	dirs[0].Lookup("nope", time.Second, func(h []overlay.NodeInfo, err error) {
		ran = true
		if err != nil || len(h) != 0 {
			t.Errorf("h=%v err=%v", h, err)
		}
	})
	c.Sim.Run()
	if !ran {
		t.Fatal("callback never ran")
	}
}

func TestWithdraw(t *testing.T) {
	c, dirs := newDirCluster(t, 8, 3)
	dirs[1].Announce("agg")
	dirs[2].Announce("agg")
	c.Sim.Run()
	dirs[1].Withdraw("agg")
	c.Sim.Run()
	var hosts []overlay.NodeInfo
	dirs[4].Lookup("agg", time.Second, func(h []overlay.NodeInfo, err error) { hosts = h })
	c.Sim.Run()
	if len(hosts) != 1 || hosts[0].ID != c.Nodes[2].ID() {
		t.Fatalf("hosts = %v", hosts)
	}
	if dirs[1].Offers("agg") {
		t.Fatal("Offers still true after Withdraw")
	}
}

func TestLookupResultsSorted(t *testing.T) {
	c, dirs := newDirCluster(t, 16, 4)
	for i := 0; i < 8; i++ {
		dirs[i].Announce("svc")
	}
	c.Sim.Run()
	var hosts []overlay.NodeInfo
	dirs[15].Lookup("svc", time.Second, func(h []overlay.NodeInfo, err error) { hosts = h })
	c.Sim.Run()
	if len(hosts) != 8 {
		t.Fatalf("got %d hosts", len(hosts))
	}
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1].ID.Cmp(hosts[i].ID) >= 0 {
			t.Fatal("hosts not sorted by ID")
		}
	}
}

func TestLookupMany(t *testing.T) {
	c, dirs := newDirCluster(t, 16, 5)
	services := []string{"s0", "s1", "s2"}
	for i, svc := range services {
		for j := 0; j <= i; j++ {
			dirs[j].Announce(svc)
		}
	}
	c.Sim.Run()
	var got map[string][]overlay.NodeInfo
	dirs[10].LookupMany(append(services, "missing"), time.Second, func(m map[string][]overlay.NodeInfo, err error) {
		if err != nil {
			t.Error(err)
		}
		got = m
	})
	c.Sim.Run()
	if got == nil {
		t.Fatal("callback never ran")
	}
	for i, svc := range services {
		if len(got[svc]) != i+1 {
			t.Fatalf("%s has %d hosts, want %d", svc, len(got[svc]), i+1)
		}
	}
	if len(got["missing"]) != 0 {
		t.Fatal("missing service has hosts")
	}
}

func TestLookupManyEmptyList(t *testing.T) {
	_, dirs := newDirCluster(t, 4, 6)
	ran := false
	dirs[0].LookupMany(nil, time.Second, func(m map[string][]overlay.NodeInfo, err error) {
		ran = true
		if err != nil || len(m) != 0 {
			t.Errorf("m=%v err=%v", m, err)
		}
	})
	if !ran {
		t.Fatal("callback must run synchronously for empty input")
	}
}

func TestLocalServices(t *testing.T) {
	_, dirs := newDirCluster(t, 4, 7)
	dirs[0].Announce("zeta")
	dirs[0].Announce("alpha")
	got := dirs[0].LocalServices()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("LocalServices = %v", got)
	}
}

func TestReplicationDegreeSixteen(t *testing.T) {
	// Mirrors the paper's setup: 10 services, 5 per node on 32 nodes
	// yields an average replication degree of 16.
	c, dirs := newDirCluster(t, 32, 8)
	services := make([]string, 10)
	for i := range services {
		services[i] = fmt.Sprintf("svc-%d", i)
	}
	for i, d := range dirs {
		for k := 0; k < 5; k++ {
			d.Announce(services[(i*5+k)%10])
		}
	}
	c.Sim.Run()
	total := 0
	for _, svc := range services {
		var hosts []overlay.NodeInfo
		dirs[0].Lookup(svc, time.Second, func(h []overlay.NodeInfo, err error) { hosts = h })
		c.Sim.Run()
		total += len(hosts)
	}
	if avg := float64(total) / 10; avg != 16 {
		t.Fatalf("average replication degree = %.1f, want 16", avg)
	}
}
