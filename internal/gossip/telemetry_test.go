package gossip

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGossipMetricsCatalogue pins the rasc_gossip_* family catalogue
// (# HELP / # TYPE lines) exposed on /metrics. Values are process-global
// and order-dependent across tests, so the golden captures the catalogue,
// not samples.
func TestGossipMetricsCatalogue(t *testing.T) {
	tc := newGossipCluster(3, 2, testConfig(), false)
	tc.step(2 * tc.gs[0].Config().SyncInterval) // populate every family

	var got strings.Builder
	for _, line := range strings.Split(telemetryExposition(), "\n") {
		if strings.HasPrefix(line, "# HELP rasc_gossip_") || strings.HasPrefix(line, "# TYPE rasc_gossip_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "gossip_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("gossip catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	// The pre-resolved series themselves must be present with labels.
	exp := telemetryExposition()
	for _, series := range []string{
		`rasc_gossip_probes_total{result="ack"}`,
		`rasc_gossip_probes_total{result="indirect-ack"}`,
		`rasc_gossip_probes_total{result="timeout"}`,
		`rasc_gossip_members{state="alive"}`,
		`rasc_gossip_members{state="suspect"}`,
		`rasc_gossip_members{state="dead"}`,
		"rasc_gossip_digest_age_seconds_bucket",
		"rasc_gossip_convergence_rounds_bucket",
		"rasc_gossip_syncs_total",
		"rasc_gossip_suspicions_total",
		"rasc_gossip_deaths_total",
		"rasc_gossip_refutations_total",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}

// telemetryExposition scrapes the process-wide default registry.
func telemetryExposition() string { return telemetry.Default().String() }
