package experiment

import (
	"errors"
	"fmt"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/workload"
)

// ContentionConfig parameterizes the churn+contention tenancy scenario:
// a deployment whose admission gate budgets deliberately less capacity
// than the tenants demand, so the weighted fair-share allocation must
// choose who absorbs the shortfall.
type ContentionConfig struct {
	// Nodes and Seed size and seed the deployment (defaults 16, 1).
	Nodes int
	Seed  int64
	// CriticalApps and BestEffortApps are the tenant counts per class
	// (defaults 2 and 6). For Critical tenants to stay whole at
	// Contention c the class mix must satisfy
	// weight_c*(nCrit+nBest) > c*(weight_c*nCrit + nBest), which the
	// defaults do at the default weights and 2x contention.
	CriticalApps   int
	BestEffortApps int
	// RateUnits is each tenant's demand in data units/sec (default 10,
	// i.e. 100 Kbps at the default unit size).
	RateUnits int
	// Contention is aggregate demand over gate capacity (default 2: the
	// cluster admits half of what the tenants ask for).
	Contention float64
	// BurstSize flash-crowd applications of BurstRateUnits each
	// (defaults 20 and 100) hit one hot service after the first
	// measurement window. Their demand is far above any viable fair
	// share, so the gate must park or reject every one of them.
	BurstSize      int
	BurstRateUnits int
	// Composer names the composition algorithm (default "mincost").
	Composer string
	// Warmup runs after the tenants are submitted, before the first
	// measurement window, so admission-time cap reshuffles settle
	// (default 20s). Window is each measurement window (default 30s);
	// Settle the post-churn gap before the last window (default 30s).
	Warmup time.Duration
	Window time.Duration
	Settle time.Duration
}

func (c *ContentionConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CriticalApps == 0 {
		c.CriticalApps = 2
	}
	if c.BestEffortApps == 0 {
		c.BestEffortApps = 6
	}
	if c.RateUnits == 0 {
		c.RateUnits = 10
	}
	if c.Contention == 0 {
		c.Contention = 2
	}
	if c.BurstSize == 0 {
		c.BurstSize = 20
	}
	if c.BurstRateUnits == 0 {
		c.BurstRateUnits = 100
	}
	if c.Composer == "" {
		c.Composer = "mincost"
	}
	if c.Warmup == 0 {
		c.Warmup = 20 * time.Second
	}
	if c.Window == 0 {
		c.Window = 30 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = 30 * time.Second
	}
}

// TenantRun is one tenant application's measurements across the
// scenario's three windows: A under steady contention, B after the
// rejected flash-crowd burst, C after one Critical tenant departed.
type TenantRun struct {
	App       string
	Priority  spec.Priority
	DemandBps float64
	// CapBps is the fair-share cap at the end of the scenario (0 for
	// the churned tenant).
	CapBps float64
	// RateA/B/C are delivered rates in units/sec per window.
	RateA, RateB, RateC float64
	// BelowA/B/C are the seconds of rasc_app_time_below_requested
	// accrued per window — time the delivered rate sat below half the
	// tenant's *requested* (not capped) rate.
	BelowA, BelowB, BelowC float64
	// Churned marks the Critical tenant torn down before window C.
	Churned bool
}

// ContentionResults is a completed churn+contention scenario.
type ContentionResults struct {
	Config ContentionConfig
	// CapacityBps is the gate budget the scenario derived from the
	// configured contention factor.
	CapacityBps float64
	Apps        []TenantRun
	// BurstAdmitted/Queued/Rejected classify the flash-crowd verdicts.
	BurstAdmitted, BurstQueued, BurstRejected int
	// Totals is the gate's posture when the scenario ended; Decisions
	// the deployment journal including the admission spans.
	Totals    tenant.Totals
	Decisions []trace.Decision
}

// App returns the named tenant's measurements (nil when unknown).
func (r *ContentionResults) App(id string) *TenantRun {
	for i := range r.Apps {
		if r.Apps[i].App == id {
			return &r.Apps[i]
		}
	}
	return nil
}

// RunContention executes the churn+contention tenancy scenario:
//
//  1. Submit CriticalApps + BestEffortApps equal-demand tenants against
//     a gate budgeting 1/Contention of their aggregate demand. The
//     water-filling allocation satisfies the Critical class in full and
//     caps the BestEffort class to the remainder.
//  2. Measure window A: per-tenant delivered rate and below-requested
//     time. Isolation means Critical tenants accrue ~none of it while
//     the BestEffort class absorbs the whole shortfall.
//  3. Flash crowd: burst applications demanding far above any viable
//     share hit one hot service. The gate parks or rejects every one —
//     none composes, so no running tenant loses rate (window B).
//  4. Churn: one Critical tenant departs; the freed share flows to the
//     BestEffort class through fair_share_changed upgrades (window C).
func RunContention(cfg ContentionConfig) (*ContentionResults, error) {
	cfg.defaults()
	composer, err := NewComposer(cfg.Composer)
	if err != nil {
		return nil, err
	}
	catalog := services.Standard()

	// Build the tenant requests first so the gate budget derives from
	// their real aggregate demand.
	type app struct {
		origin int
		req    spec.Request
		graph  *core.ExecutionGraph
		run    TenantRun
	}
	gen := workload.NewGenerator(workload.Config{
		Services:    catalog.Names(),
		MinServices: 2, MaxServices: 3,
		RateUnits: cfg.RateUnits, MaxSubstreams: 1,
	}, cfg.Seed)
	apps := make([]*app, 0, cfg.CriticalApps+cfg.BestEffortApps)
	addApp := func(id string, pri spec.Priority, origin int) {
		req := gen.Next()
		req.ID, req.Priority = id, pri
		apps = append(apps, &app{origin: origin, req: req,
			run: TenantRun{App: id, Priority: pri, DemandBps: req.BitsPerSecond(req.TotalRate())}})
	}
	for i := 0; i < cfg.CriticalApps; i++ {
		addApp(fmt.Sprintf("crit-%d", i), spec.Critical, i%cfg.Nodes)
	}
	for i := 0; i < cfg.BestEffortApps; i++ {
		addApp(fmt.Sprintf("be-%d", i), spec.BestEffort, (cfg.CriticalApps+i)%cfg.Nodes)
	}
	var totalDemand float64
	for _, a := range apps {
		totalDemand += a.run.DemandBps
	}
	capacity := totalDemand / cfg.Contention

	topo := netsim.PlanetLabTopology(netsim.TopologyConfig{Nodes: cfg.Nodes}, cfg.Seed)
	sys := deploy.NewSystem(deploy.SystemOptions{
		Nodes: cfg.Nodes, Seed: cfg.Seed, Topology: topo,
		MaxLinkBacklog:   300 * time.Millisecond,
		CongestionJitter: 0.5,
		Catalog:          catalog,
		HeterogeneousCPU: true,
		Adaptation:       &stream.AdaptationConfig{Interval: 5 * time.Second},
		Tenancy: &tenant.Config{
			CapacityBps: capacity,
			// 1/4 floor: the BestEffort fair share under the default 2x
			// contention is 1/3 of demand — viable, so the class is
			// rate-capped in place instead of preempted.
			MinShareFraction: 0.25,
		},
	})

	const rpcTimeout = 10 * time.Second
	submit := func(origin int, req spec.Request, graph **core.ExecutionGraph) error {
		done := false
		var serr error
		sys.Engines[origin].Submit(req, composer, rpcTimeout, func(g *core.ExecutionGraph, err error) {
			done, serr = true, err
			if graph != nil && err == nil {
				*graph = g
			}
		})
		deadline := sys.Sim.Now() + 2*rpcTimeout
		for !done && sys.Sim.Now() < deadline {
			sys.Sim.RunUntil(sys.Sim.Now() + 100*time.Millisecond)
		}
		if !done {
			return fmt.Errorf("experiment: submission of %s did not complete", req.ID)
		}
		return serr
	}
	for _, a := range apps {
		if err := submit(a.origin, a.req, &a.graph); err != nil {
			return nil, fmt.Errorf("experiment: tenant %s not admitted: %w", a.req.ID, err)
		}
		sys.Sim.RunUntil(sys.Sim.Now() + 400*time.Millisecond)
	}
	sys.Sim.RunUntil(sys.Sim.Now() + cfg.Warmup)

	received := func(a *app) int64 {
		var n int64
		eng := sys.Engines[a.origin]
		for l := range a.req.Substreams {
			if s := eng.Sink(a.req.ID, l); s != nil {
				n += s.Received
			}
		}
		return n
	}
	window := func(set func(*TenantRun, float64, float64)) {
		type snap struct {
			recv  int64
			below float64
		}
		before := make([]snap, len(apps))
		for i, a := range apps {
			before[i] = snap{received(a), stream.AppTimeBelowSeconds(a.req.ID)}
		}
		sys.Sim.RunUntil(sys.Sim.Now() + cfg.Window)
		for i, a := range apps {
			d := received(a) - before[i].recv
			if d < 0 {
				// A mid-window recompose replaced the sinks and restarted
				// their counters; the post-restart count undercounts the
				// window but never goes negative.
				d = received(a)
			}
			set(&a.run, float64(d)/cfg.Window.Seconds(),
				stream.AppTimeBelowSeconds(a.req.ID)-before[i].below)
		}
	}

	res := &ContentionResults{Config: cfg, CapacityBps: capacity}
	window(func(r *TenantRun, rate, below float64) { r.RateA, r.BelowA = rate, below })

	// Flash crowd on the catalog's first service: demands this far above
	// any viable fair share must all park or bounce at the gate.
	burstGen := workload.NewGenerator(workload.Config{
		Services: catalog.Names(), RateUnits: cfg.BurstRateUnits,
	}, cfg.Seed+1)
	for i, req := range burstGen.FlashCrowd(cfg.BurstSize, catalog.Names()[0], spec.BestEffort) {
		err := submit(i%cfg.Nodes, req, nil)
		switch {
		case err == nil:
			res.BurstAdmitted++
		case errors.Is(err, tenant.ErrAdmissionQueued):
			res.BurstQueued++
		case errors.Is(err, tenant.ErrAdmissionRejected):
			res.BurstRejected++
		default:
			return nil, fmt.Errorf("experiment: burst %s failed oddly: %w", req.ID, err)
		}
	}
	window(func(r *TenantRun, rate, below float64) { r.RateB, r.BelowB = rate, below })

	// Churn: the first Critical tenant departs. Its released share flows
	// to the capped BestEffort class — fair_share_changed upgrades lift
	// their delivered rates in window C.
	churned := apps[0]
	churned.run.Churned = true
	sys.Engines[churned.origin].Teardown(churned.graph, rpcTimeout)
	sys.Sim.RunUntil(sys.Sim.Now() + cfg.Settle)
	window(func(r *TenantRun, rate, below float64) { r.RateC, r.BelowC = rate, below })

	for _, a := range apps {
		a.run.CapBps, _ = sys.Gate.CapBps(a.req.ID)
		res.Apps = append(res.Apps, a.run)
	}
	res.Totals = sys.Gate.Totals()
	res.Decisions = sys.Journal.Decisions()
	return res, nil
}
