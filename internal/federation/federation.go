package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/transport"
)

// Overlay RPC application names of the boundary protocol.
const (
	appQuery   = "fed.query"
	appHandoff = "fed.handoff"
	appRelease = "fed.release"
)

// Config wires a Coordinator to its node.
type Config struct {
	// Cluster is the local cluster's name.
	Cluster string
	// Node carries the boundary protocol's RPCs.
	Node *overlay.Node
	// Ledger is the cluster's boundary-capacity arbiter (shared by the
	// cluster's nodes in the simulator, border-local in a live node).
	Ledger *Ledger
	// Summaries supplies the freshest remote cluster summaries (from the
	// local or the cluster border's gossip instance).
	Summaries func() []gossip.ClusterSummary
	// LocalSummary answers remote discovery queries with this cluster's
	// own aggregate view.
	LocalSummary func() gossip.ClusterSummary
	// RPCTimeout bounds each boundary RPC (default 5s).
	RPCTimeout time.Duration
}

// HandoffRequest is the cross-boundary hand-off payload: everything the
// remote cluster needs to compose one substream locally on the origin's
// behalf. The request carries exactly one substream.
type HandoffRequest struct {
	App     string       `json:"app"`
	Request spec.Request `json:"request"`
	// Substream is the index the fragment will occupy in the stitched
	// graph (informational; the fragment itself is indexed 0).
	Substream int `json:"substream"`
	// Source and Dest are the origin-side endpoints; the remote composer
	// builds its flow graph between them so the stitched fragment passes
	// flow conservation end to end.
	Source       overlay.NodeInfo `json:"source"`
	Dest         overlay.NodeInfo `json:"dest"`
	SourceReport monitor.Report   `json:"sourceReport"`
	DestReport   monitor.Report   `json:"destReport"`
	FromCluster  string           `json:"fromCluster"`
	// DebitBps is the boundary-link debit both sides account.
	DebitBps float64 `json:"debitBps"`
	// Composer names the composition algorithm to run remotely.
	Composer string `json:"composer"`
}

// handoffReply returns the remotely composed fragment and the remote
// side's boundary credit (released via fed.release at teardown).
type handoffReply struct {
	Graph    *core.ExecutionGraph `json:"graph"`
	CreditID CreditID             `json:"creditId"`
	Cluster  string               `json:"cluster"`
}

// queryMsg asks "which cluster can host this service chain at this
// rate?" — the QueryStream-style discovery probe sent to a remote border
// before any capacity is reserved.
type queryMsg struct {
	App       string   `json:"app"`
	Services  []string `json:"services"`
	RateUnits int      `json:"rateUnits"`
	UnitBytes int      `json:"unitBytes"`
}

// queryReply is a remote border's answer.
type queryReply struct {
	OK          bool    `json:"ok"`
	Cluster     string  `json:"cluster"`
	HeadroomBps float64 `json:"headroomBps"`
	Reason      string  `json:"reason,omitempty"`
}

// releaseMsg refunds remote boundary credits after a teardown or a
// failed instantiation.
type releaseMsg struct {
	Credits []CreditID `json:"credits"`
}

// HandoffRef is one completed hand-off's accounting trail: the local and
// remote boundary credits that a teardown must refund.
type HandoffRef struct {
	App           string         `json:"app"`
	Substream     int            `json:"substream"`
	RemoteCluster string         `json:"remoteCluster"`
	RemoteAddr    transport.Addr `json:"remoteAddr"`
	DebitBps      float64        `json:"debitBps"`
	LocalCredit   CreditID       `json:"localCredit"`
	RemoteCredit  CreditID       `json:"remoteCredit"`
}

// Stats counts the coordinator's boundary activity.
type Stats struct {
	QueriesSent       int64 `json:"queriesSent"`
	QueriesServed     int64 `json:"queriesServed"`
	HandoffsOK        int64 `json:"handoffsOk"`
	HandoffsFailed    int64 `json:"handoffsFailed"`
	HandoffsSaturated int64 `json:"handoffsSaturated"`
	RemoteComposes    int64 `json:"remoteComposes"`
}

// ComposeFunc is the engine-side callback a coordinator invokes to
// compose a handed-off substream against the local cluster's state. done
// must be called exactly once (from the node's goroutine).
type ComposeFunc func(req HandoffRequest, done func(*core.ExecutionGraph, error))

// Coordinator runs one node's side of the federation protocol: origin
// side, it stitches per-cluster fragments into one execution graph;
// remote side, it answers discovery queries and hand-off handshakes.
// Like the rest of the protocol stack it is not internally synchronized
// (the Ledger is the exception): all methods run on the node's goroutine.
type Coordinator struct {
	cfg     Config
	compose ComposeFunc

	onSaturated []func(app, link string)

	// handoffs tracks committed cross-cluster hand-offs by request ID so
	// teardown refunds every credit.
	handoffs map[string][]HandoffRef
	stats    Stats
}

// New attaches a coordinator to its node and registers the boundary
// protocol's RPC handlers.
func New(cfg Config) *Coordinator {
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 5 * time.Second
	}
	c := &Coordinator{cfg: cfg, handoffs: make(map[string][]HandoffRef)}
	cfg.Node.RegisterRequest(appQuery, c.onQuery)
	cfg.Node.RegisterRequest(appHandoff, c.onHandoff)
	cfg.Node.RegisterRequest(appRelease, c.onRelease)
	return c
}

// Cluster returns the local cluster name.
func (c *Coordinator) Cluster() string { return c.cfg.Cluster }

// Ledger returns the cluster's boundary ledger.
func (c *Coordinator) Ledger() *Ledger { return c.cfg.Ledger }

// Stats returns the coordinator's activity counters.
func (c *Coordinator) Stats() Stats { return c.stats }

// SetComposeFunc installs the engine's local-compose callback (the
// remote side of a hand-off handshake).
func (c *Coordinator) SetComposeFunc(fn ComposeFunc) { c.compose = fn }

// OnBoundarySaturated registers a callback fired when a hand-off could
// not reserve boundary capacity — the control plane's
// boundary_link_saturated trigger.
func (c *Coordinator) OnBoundarySaturated(fn func(app, link string)) {
	c.onSaturated = append(c.onSaturated, fn)
}

// Handoffs lists the committed cross-cluster hand-offs, sorted by app
// then substream.
func (c *Coordinator) Handoffs() []HandoffRef {
	var out []HandoffRef
	for _, refs := range c.handoffs {
		out = append(out, refs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Substream < out[j].Substream
	})
	return out
}

// LinkName canonicalizes a cluster pair to the ledger's link key.
func LinkName(a, b string) string { return linkKey(a, b) }

// debitBps is the boundary-link debit of handing one substream across a
// boundary: the stream crosses twice (origin→remote cluster, remote
// cluster→destination).
func debitBps(rateUnits, unitBytes int) float64 {
	return 2 * float64(rateUnits) * float64(unitBytes) * 8
}

// candidate is one remote cluster ranked for a hand-off.
type candidate struct {
	cluster     string
	border      overlay.NodeInfo
	headroomBps float64
}

// ComposeFederated places a request substream by substream: each
// substream composes inside the local cluster when it can, and is handed
// off to the best-answering remote cluster when it cannot. localErr is
// the flat local composition's failure; when no remote candidate answers
// (or none accepts), the coordinator falls back to local-only semantics
// and reports that original error. done is called exactly once on the
// node's goroutine.
func (c *Coordinator) ComposeFederated(in core.Input, composer core.Composer, localErr error, done func(*core.ExecutionGraph, error)) {
	g := &core.ExecutionGraph{
		Request:  in.Request,
		Composer: "federated+" + composer.Name(),
		Source:   in.Source,
		Dest:     in.Dest,
	}
	// Fragment merging adjusts per-substream rates; never through the
	// caller's slice.
	g.Request.Substreams = append([]spec.Substream(nil), in.Request.Substreams...)

	var refs []HandoffRef
	fail := func(err error) {
		for _, ref := range refs {
			c.cfg.Ledger.Release(ref.LocalCredit)
			c.releaseRemote(ref)
		}
		done(nil, err)
	}

	var place func(l int)
	place = func(l int) {
		if l == len(g.Request.Substreams) {
			if len(refs) > 0 {
				c.handoffs[g.Request.ID] = append(c.handoffs[g.Request.ID], refs...)
			}
			done(g, nil)
			return
		}
		frag, err := composer.Compose(core.SubstreamInput(in, l))
		if err == nil {
			core.MergeFragment(g, frag, l)
			place(l + 1)
			return
		}
		if !errors.Is(err, core.ErrNoFeasiblePlacement) {
			fail(err)
			return
		}
		c.discover(in, l, func(cands []candidate) {
			var try func(i int)
			try = func(i int) {
				if i == len(cands) {
					fail(localErr)
					return
				}
				c.handoff(in, l, composer.Name(), cands[i], func(frag *core.ExecutionGraph, ref HandoffRef, err error) {
					if err != nil {
						try(i + 1)
						return
					}
					core.MergeFragment(g, frag, l)
					refs = append(refs, ref)
					place(l + 1)
				})
			}
			try(0)
		})
	}
	place(0)
}

// discover queries every remote cluster whose summary exports the
// substream's whole service chain, and ranks the positive answers by
// advertised headroom (ties to the lexicographically first cluster).
func (c *Coordinator) discover(in core.Input, l int, done func([]candidate)) {
	chain := in.Request.Substreams[l].Services
	var pool []gossip.ClusterSummary
	for _, s := range c.cfg.Summaries() {
		offersAll := true
		for _, svc := range chain {
			if !s.Offers(svc) {
				offersAll = false
				break
			}
		}
		if offersAll {
			pool = append(pool, s)
		}
	}
	if len(pool) == 0 {
		done(nil)
		return
	}
	q := c.encode(queryMsg{
		App:       in.Request.ID,
		Services:  chain,
		RateUnits: in.Request.Substreams[l].Rate,
		UnitBytes: in.Request.UnitBytes,
	})
	var cands []candidate
	remaining := len(pool)
	for _, s := range pool {
		s := s
		telQuerySent.Inc()
		c.stats.QueriesSent++
		c.cfg.Node.Request(s.Border.Addr, appQuery, q, c.cfg.RPCTimeout, func(resp []byte, err error) {
			if err == nil {
				var r queryReply
				if json.Unmarshal(resp, &r) == nil && r.OK {
					cands = append(cands, candidate{cluster: r.Cluster, border: s.Border, headroomBps: r.HeadroomBps})
				}
			}
			remaining--
			if remaining == 0 {
				sort.Slice(cands, func(i, j int) bool {
					if cands[i].headroomBps != cands[j].headroomBps {
						return cands[i].headroomBps > cands[j].headroomBps
					}
					return cands[i].cluster < cands[j].cluster
				})
				done(cands)
			}
		})
	}
}

// handoff reserves boundary capacity and runs the hand-off handshake
// with one remote cluster. A reservation or handshake failure refunds
// the local credit (exactly once) before reporting the error.
func (c *Coordinator) handoff(in core.Input, l int, composer string, cand candidate, done func(*core.ExecutionGraph, HandoffRef, error)) {
	sub := in.Request.Substreams[l]
	debit := debitBps(sub.Rate, in.Request.UnitBytes)
	localCredit, err := c.cfg.Ledger.Reserve(c.cfg.Cluster, cand.cluster, debit)
	if err != nil {
		c.stats.HandoffsSaturated++
		telHandoffSaturated.Inc()
		link := LinkName(c.cfg.Cluster, cand.cluster)
		for _, fn := range c.onSaturated {
			fn(in.Request.ID, link)
		}
		done(nil, HandoffRef{}, err)
		return
	}
	single := core.SubstreamInput(in, l)
	msg := HandoffRequest{
		App:          in.Request.ID,
		Request:      single.Request,
		Substream:    l,
		Source:       in.Source,
		Dest:         in.Dest,
		SourceReport: in.SourceReport,
		DestReport:   in.DestReport,
		FromCluster:  c.cfg.Cluster,
		DebitBps:     debit,
		Composer:     composer,
	}
	c.cfg.Node.Request(cand.border.Addr, appHandoff, c.encode(msg), c.cfg.RPCTimeout, func(resp []byte, err error) {
		if err != nil {
			c.cfg.Ledger.Release(localCredit)
			c.stats.HandoffsFailed++
			telHandoffFailed.Inc()
			done(nil, HandoffRef{}, err)
			return
		}
		var r handoffReply
		if uerr := json.Unmarshal(resp, &r); uerr != nil || r.Graph == nil {
			c.cfg.Ledger.Release(localCredit)
			c.stats.HandoffsFailed++
			telHandoffFailed.Inc()
			done(nil, HandoffRef{}, fmt.Errorf("federation: bad hand-off reply from %s", cand.cluster))
			return
		}
		c.stats.HandoffsOK++
		telHandoffOK.Inc()
		done(r.Graph, HandoffRef{
			App:           in.Request.ID,
			Substream:     l,
			RemoteCluster: r.Cluster,
			RemoteAddr:    cand.border.Addr,
			DebitBps:      debit,
			LocalCredit:   localCredit,
			RemoteCredit:  r.CreditID,
		}, nil)
	})
}

// ReleaseApp refunds every boundary credit held for a request: the local
// ledger synchronously, the remote clusters via fire-and-forget
// fed.release RPCs. Safe to call for requests without hand-offs, and
// idempotent — the ledger refunds each credit exactly once.
func (c *Coordinator) ReleaseApp(reqID string) {
	refs := c.handoffs[reqID]
	if len(refs) == 0 {
		return
	}
	delete(c.handoffs, reqID)
	for _, ref := range refs {
		c.cfg.Ledger.Release(ref.LocalCredit)
		c.releaseRemote(ref)
	}
}

// releaseRemote refunds one hand-off's remote-side credit.
func (c *Coordinator) releaseRemote(ref HandoffRef) {
	if ref.RemoteCredit == 0 || ref.RemoteAddr == "" {
		return
	}
	body := c.encode(releaseMsg{Credits: []CreditID{ref.RemoteCredit}})
	c.cfg.Node.Request(ref.RemoteAddr, appRelease, body, c.cfg.RPCTimeout, func([]byte, error) {})
}

// onQuery answers a remote cluster's discovery probe from the local
// cluster summary: can this cluster host the chain at the rate?
func (c *Coordinator) onQuery(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var q queryMsg
	if err := json.Unmarshal(body, &q); err != nil {
		respond(nil, "federation: bad query: "+err.Error())
		return
	}
	c.stats.QueriesServed++
	telQueryServed.Inc()
	r := queryReply{Cluster: c.cfg.Cluster}
	if c.cfg.LocalSummary == nil {
		respond(c.encode(r), "")
		return
	}
	s := c.cfg.LocalSummary()
	for _, svc := range q.Services {
		if !s.Offers(svc) {
			r.Reason = "service " + svc + " not offered"
			respond(c.encode(r), "")
			return
		}
	}
	need := float64(q.RateUnits) * float64(q.UnitBytes) * 8
	headroom := s.AggAvailOutBps
	if s.AggAvailInBps < headroom {
		headroom = s.AggAvailInBps
	}
	if headroom < need {
		r.Reason = "insufficient headroom"
		respond(c.encode(r), "")
		return
	}
	r.OK = true
	r.HeadroomBps = headroom
	respond(c.encode(r), "")
}

// onHandoff runs the remote side of the handshake: reserve the inbound
// boundary debit on this cluster's ledger, compose the substream against
// local state, and return the fragment with the credit to refund it by.
// A failed compose refunds the reservation before answering.
func (c *Coordinator) onHandoff(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var h HandoffRequest
	if err := json.Unmarshal(body, &h); err != nil {
		respond(nil, "federation: bad hand-off: "+err.Error())
		return
	}
	if c.compose == nil {
		respond(nil, "federation: node does not accept hand-offs")
		return
	}
	credit, err := c.cfg.Ledger.Reserve(h.FromCluster, c.cfg.Cluster, h.DebitBps)
	if err != nil {
		link := LinkName(h.FromCluster, c.cfg.Cluster)
		for _, fn := range c.onSaturated {
			fn(h.App, link)
		}
		respond(nil, err.Error())
		return
	}
	c.compose(h, func(g *core.ExecutionGraph, err error) {
		if err != nil {
			c.cfg.Ledger.Release(credit)
			respond(nil, err.Error())
			return
		}
		c.stats.RemoteComposes++
		telRemoteComposes.Inc()
		respond(c.encode(handoffReply{Graph: g, CreditID: credit, Cluster: c.cfg.Cluster}), "")
	})
}

// onRelease refunds remote-held credits after the origin's teardown.
func (c *Coordinator) onRelease(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m releaseMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "federation: bad release: "+err.Error())
		return
	}
	for _, id := range m.Credits {
		c.cfg.Ledger.Release(id)
	}
	respond(nil, "")
}

func (c *Coordinator) encode(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("federation: marshal: " + err.Error()) // protocol types are always marshalable
	}
	return b
}
