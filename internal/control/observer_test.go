package control

import (
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
)

// obsRecord is one observer callback, flattened for assertions.
type obsRecord struct {
	kind     string // "gate" | "launch" | "outcome"
	app      string
	gate     string
	latched  bool
	evKind   EventKind
	mode     string
	degraded []overlay.ID
	subs     []int
	upgrade  bool
	fellBack bool
	err      error
	backoff  time.Duration
}

type recObserver struct {
	records []obsRecord
}

func (r *recObserver) OnEventGate(app string, ev Event, gate string, latched bool) {
	r.records = append(r.records, obsRecord{kind: "gate", app: app, gate: gate, latched: latched, evKind: ev.Kind})
}

func (r *recObserver) OnLaunch(app, mode string, degraded []overlay.ID, subs []int, upgrade bool) {
	r.records = append(r.records, obsRecord{kind: "launch", app: app, mode: mode, degraded: degraded, subs: subs, upgrade: upgrade})
}

func (r *recObserver) OnOutcome(app, mode string, fellBack bool, err error, backoff time.Duration) {
	r.records = append(r.records, obsRecord{kind: "outcome", app: app, mode: mode, fellBack: fellBack, err: err, backoff: backoff})
}

// TestObserverCausalSequence checks the callbacks for one clean
// incremental reallocation arrive in causal order with the gate verdict,
// launch shape and outcome.
func TestObserverCausalSequence(t *testing.T) {
	obs := &recObserver{}
	c, clk, act := newTestController(t, Config{Observer: obs})
	act.appsOn[host(7)] = []string{"a"}
	c.Publish(Event{Kind: MemberDead, Host: host(7)})
	clk.advance(0)
	act.finish(t, nil)

	if len(obs.records) != 3 {
		t.Fatalf("records = %+v, want gate+launch+outcome", obs.records)
	}
	g, l, o := obs.records[0], obs.records[1], obs.records[2]
	if g.kind != "gate" || g.app != "a" || g.gate != GateNone || g.evKind != MemberDead {
		t.Fatalf("gate record = %+v", g)
	}
	if l.kind != "launch" || l.app != "a" || l.mode != "incremental" ||
		len(l.degraded) != 1 || l.degraded[0] != host(7) || l.subs != nil {
		t.Fatalf("launch record = %+v", l)
	}
	if o.kind != "outcome" || o.app != "a" || o.mode != "incremental" ||
		o.fellBack || o.err != nil || o.backoff != 0 {
		t.Fatalf("outcome record = %+v", o)
	}
}

// TestObserverGateVerdicts checks held events report the gate that held
// them and whether the work was latched.
func TestObserverGateVerdicts(t *testing.T) {
	obs := &recObserver{}
	c, clk, act := newTestController(t, Config{Observer: obs, DropHysteresis: 2})
	act.appsOn[host(3)] = []string{"a"}

	// First spike is absorbed by hysteresis: host-scoped, so no app yet.
	c.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	if len(obs.records) != 1 || obs.records[0].gate != GateHysteresis ||
		obs.records[0].app != "" || obs.records[0].latched {
		t.Fatalf("hysteresis record = %+v", obs.records)
	}

	// Second spike trips the strike threshold and launches; a member-death
	// during the inflight window is latched behind the inflight gate.
	c.Publish(Event{Kind: DropRatioSpike, Host: host(3)})
	clk.advance(0)
	c.Publish(Event{Kind: MemberDead, Host: host(3)})
	clk.advance(0)
	last := obs.records[len(obs.records)-1]
	if last.kind != "gate" || last.app != "a" || last.gate != GateInflight || !last.latched {
		t.Fatalf("inflight record = %+v", last)
	}
}

// TestObserverFallbackOutcome checks an infeasible incremental solve that
// fell back to full recompose reports mode "full" with fellBack set.
func TestObserverFallbackOutcome(t *testing.T) {
	obs := &recObserver{}
	c, clk, act := newTestController(t, Config{Observer: obs})
	act.appsOn[host(7)] = []string{"a"}
	c.Publish(Event{Kind: MemberDead, Host: host(7)})
	clk.advance(0)
	act.finish(t, core.ErrNoFeasiblePlacement) // incremental attempt
	act.finish(t, nil)                         // fallback recompose
	o := obs.records[len(obs.records)-1]
	if o.kind != "outcome" || o.mode != "full" || !o.fellBack || o.err != nil {
		t.Fatalf("outcome record = %+v", o)
	}
}

// TestObserverFailureBackoff checks a failed reallocation reports the
// armed retry backoff.
func TestObserverFailureBackoff(t *testing.T) {
	obs := &recObserver{}
	c, clk, act := newTestController(t, Config{Observer: obs, RetryBackoff: 5 * time.Second})
	act.appsOn[host(7)] = []string{"a"}
	c.Publish(Event{Kind: MemberDead, Host: host(7)})
	clk.advance(0)
	act.finish(t, errors.New("transport down"))
	o := obs.records[len(obs.records)-1]
	if o.kind != "outcome" || o.err == nil || o.backoff != 5*time.Second {
		t.Fatalf("outcome record = %+v", o)
	}
}

// TestAppStatuses checks the introspection snapshot reflects gate state:
// inflight while a reallocation runs, cooldown after it succeeds.
func TestAppStatuses(t *testing.T) {
	c, clk, act := newTestController(t, Config{Cooldown: 30 * time.Second})
	act.appsOn[host(7)] = []string{"a"}
	c.Publish(Event{Kind: MemberDead, Host: host(7)})
	clk.advance(0)

	sts := c.AppStatuses()
	if len(sts) != 1 || sts[0].App != "a" || !sts[0].Inflight {
		t.Fatalf("statuses during flight = %+v", sts)
	}
	act.finish(t, nil)
	sts = c.AppStatuses()
	if sts[0].Inflight || sts[0].CooldownRemaining != 30*time.Second {
		t.Fatalf("statuses after success = %+v", sts)
	}
	clk.advance(10 * time.Second)
	if got := c.AppStatuses()[0].CooldownRemaining; got != 20*time.Second {
		t.Fatalf("cooldown remaining = %v, want 20s", got)
	}
}
