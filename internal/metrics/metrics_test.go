package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %g, want %g", w.Var(), 32.0/7)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford must report zeros")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Var() != 0 {
		t.Fatalf("single observation: mean %g var %g", w.Mean(), w.Var())
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordMatchesNaive(t *testing.T) {
	prop := func(raw []int16) bool {
		var w Welford
		var xs []float64
		for _, r := range raw {
			x := float64(r)
			xs = append(xs, x)
			w.Add(x)
		}
		if len(xs) == 0 {
			return w.N() == 0
		}
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		if math.Abs(w.Mean()-mean) > 1e-6 {
			return false
		}
		if len(xs) < 2 {
			return true
		}
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		return math.Abs(w.Var()-ss/float64(len(xs)-1)) < 1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %g", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("p99 = %g", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %g", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 = %g", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramUnsortedInsertions(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	for _, i := range rng.Perm(1000) {
		h.Add(float64(i))
	}
	if got := h.Percentile(90); got != 899 {
		t.Fatalf("p90 = %g, want 899", got)
	}
	// Adding after a percentile query must re-sort.
	h.Add(-5)
	if got := h.Percentile(0); got != -5 {
		t.Fatalf("p0 after insert = %g", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Percentile(50); got != 50 {
		t.Fatalf("p50 = %g after merge", got)
	}
	a.Merge(nil) // must not panic
	var empty Histogram
	a.Merge(&empty)
	if a.N() != 100 {
		t.Fatal("merging empty changed N")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure 6", "rate", "requests", []int{50, 100})
	tb.Set("mincost", 50, 30)
	tb.Set("mincost", 100, 29)
	tb.Set("greedy", 50, 20)
	tb.Set("greedy", 100, 12)
	if got := tb.Get("mincost", 100); got != 29 {
		t.Fatalf("Get = %g", got)
	}
	if got := tb.Get("missing", 50); got != 0 {
		t.Fatalf("missing series Get = %g", got)
	}
	text := tb.String()
	for _, want := range []string{"Figure 6", "mincost", "greedy", "50", "100"} {
		if !strings.Contains(text, want) {
			t.Fatalf("table text missing %q:\n%s", want, text)
		}
	}
	csv := tb.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "rate,mincost,greedy" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "50,30,20" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestTableSetOverwrites(t *testing.T) {
	tb := NewTable("t", "x", "y", []int{1})
	tb.Set("a", 1, 5)
	tb.Set("a", 1, 7)
	if got := tb.Get("a", 1); got != 7 {
		t.Fatalf("Get = %g, want 7", got)
	}
	if len(tb.Series) != 1 {
		t.Fatalf("Series count = %d", len(tb.Series))
	}
}
