// Videostream: the paper's motivating scenario. A media stream must be
// transcoded, encrypted and watermarked at 200 Kbps — more than any single
// weak node can carry. RASC's min-cost composer splits the transcode
// stage across several component instances and sustains the rate; the
// greedy baseline, limited to one instance per service, must either
// reject the request or deliver it through a congested node.
package main

import (
	"fmt"
	"log"
	"time"

	"rasc.dev/rasc"
)

func main() {
	req := rasc.Request{
		ID:           "video-1",
		UnitBytes:    2500,            // 20 kbit units: 10 units/sec = 200 Kbps
		PlayoutDelay: 2 * time.Second, // client-side playback buffer
		Substreams: []rasc.Substream{
			// A constant frame rate with ±40% frame-size variation (VBR).
			{Services: []string{"transcode", "encrypt", "watermark"}, Rate: 10, Burstiness: 0.4},
		},
	}

	for _, composer := range []rasc.Composer{rasc.ComposerMinCost, rasc.ComposerGreedy} {
		// A tight deployment: 12 nodes with 120-450 Kbps access links,
		// so no single node can relay the full 200 Kbps stream along
		// with its other traffic.
		sys := rasc.New(
			rasc.WithNodes(12),
			rasc.WithSeed(7),
			rasc.WithLinkCapacity(1.2e5, 4.5e5),
		)
		fmt.Printf("=== %s ===\n", composer)
		comp, err := sys.Submit(0, req, composer)
		if err != nil {
			fmt.Printf("request rejected: %v\n\n", err)
			continue
		}
		fmt.Printf("composed onto %d hosts, %d component instance(s):\n",
			comp.NumHosts(), len(comp.Placements()))
		for _, p := range comp.Placements() {
			fmt.Printf("  stage %d %-10s on %s at %.0f units/sec\n",
				p.Stage, p.Service, p.Host.Addr, p.Rate)
		}
		sys.Run(30 * time.Second)
		s := comp.Stats()
		if s.Emitted == 0 {
			log.Fatal("source never emitted")
		}
		fmt.Printf("delivered %.1f%%, %.1f%% timely, delay %v, jitter %v, %d playback stalls\n\n",
			100*s.DeliveredFraction(), 100*s.TimelyFraction(),
			s.MeanDelay.Round(time.Millisecond), s.MeanJitter.Round(time.Millisecond), s.Stalls)
	}
}
