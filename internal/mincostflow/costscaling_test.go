package mincostflow

import (
	"math/rand"
	"testing"
)

func TestScalingSimplePath(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 10, 2)
	g.AddArc(1, 2, 5, 3)
	res, err := g.MinCostFlowScaling(0, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 25 {
		t.Fatalf("res = %+v, want flow 5 cost 25", res)
	}
}

func TestScalingPrefersCheaperPath(t *testing.T) {
	g := NewGraph(3)
	cheap := g.AddArc(0, 1, 3, 1)
	g.AddArc(0, 2, 10, 4)
	g.AddArc(2, 1, 10, 6)
	res, err := g.MinCostFlowScaling(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 || res.Cost != 23 {
		t.Fatalf("res = %+v, want flow 5 cost 23", res)
	}
	if g.Flow(cheap) != 3 {
		t.Fatalf("cheap arc carries %d, want 3", g.Flow(cheap))
	}
}

func TestScalingDegenerate(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 5, 1)
	if res, _ := g.MinCostFlowScaling(0, 0, 5); res.Flow != 0 {
		t.Fatal("s==t must carry nothing")
	}
	if res, _ := g.MinCostFlowScaling(0, 1, 0); res.Flow != 0 {
		t.Fatal("want=0 must carry nothing")
	}
	if _, err := g.MinCostFlowScaling(-1, 1, 1); err == nil {
		t.Fatal("bad endpoint accepted")
	}
}

func TestScalingRejectsNegativeCosts(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 5, -1)
	if _, err := g.MinCostFlowScaling(0, 1, 1); err == nil {
		t.Fatal("negative costs accepted")
	}
}

func TestScalingUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 5, 1)
	res, err := g.MinCostFlowScaling(0, 2, 5)
	if err != nil || res.Flow != 0 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
}

// TestScalingMatchesSSP cross-checks the two solvers on random graphs with
// non-negative costs: flows and costs must agree exactly.
func TestScalingMatchesSSP(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(7)
		type arcSpec struct {
			u, v int
			c, w int64
		}
		var arcs []arcSpec
		for i := 0; i < rng.Intn(16); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			arcs = append(arcs, arcSpec{u, v, int64(rng.Intn(9)), int64(rng.Intn(12))})
		}
		want := int64(1 + rng.Intn(12))
		build := func() *Graph {
			g := NewGraph(n)
			for _, a := range arcs {
				g.AddArc(a.u, a.v, a.c, a.w)
			}
			return g
		}
		g1, g2 := build(), build()
		r1, err1 := g1.MinCostFlow(0, n-1, want)
		r2, err2 := g2.MinCostFlowScaling(0, n-1, want)
		if err1 != nil || err2 != nil {
			t.Fatalf("trial %d: errs %v, %v", trial, err1, err2)
		}
		if r1.Flow != r2.Flow {
			t.Fatalf("trial %d: flows %d vs %d", trial, r1.Flow, r2.Flow)
		}
		if r1.Cost != r2.Cost {
			t.Fatalf("trial %d: costs %d vs %d (flow %d)", trial, r1.Cost, r2.Cost, r1.Flow)
		}
	}
}

// TestScalingFlowValid checks capacity and conservation invariants on the
// written-back flows.
func TestScalingFlowValid(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(6)
		g := NewGraph(n)
		type ref struct {
			id   ArcID
			u, v int
			cap  int64
		}
		var arcs []ref
		for i := 0; i < 14; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(8))
			arcs = append(arcs, ref{g.AddArc(u, v, c, int64(rng.Intn(6))), u, v, c})
		}
		res, err := g.MinCostFlowScaling(0, n-1, int64(1+rng.Intn(10)))
		if err != nil {
			t.Fatal(err)
		}
		net := make([]int64, n)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < 0 || f > a.cap {
				t.Fatalf("trial %d: flow %d outside [0,%d]", trial, f, a.cap)
			}
			net[a.u] -= f
			net[a.v] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("trial %d: conservation violated at %d", trial, v)
			}
		}
		if net[n-1] != res.Flow {
			t.Fatalf("trial %d: sink imbalance %d vs %d", trial, net[n-1], res.Flow)
		}
	}
}

func BenchmarkScalingVsSSP(b *testing.B) {
	build := func() *Graph {
		g := NewGraph(60)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 400; i++ {
			u, v := rng.Intn(60), rng.Intn(60)
			if u != v {
				g.AddArc(u, v, int64(5+rng.Intn(20)), int64(rng.Intn(1000)))
			}
		}
		return g
	}
	b.Run("ssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			if _, err := g.MinCostFlow(0, 59, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scaling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := build()
			if _, err := g.MinCostFlowScaling(0, 59, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
}
