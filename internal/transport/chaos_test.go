package transport

import (
	"errors"
	"strconv"
	"testing"
	"time"
)

// TestChaosSeededDeterminism: two wrappers with the same seed make the
// same drop decisions for the same send sequence.
func TestChaosSeededDeterminism(t *testing.T) {
	run := func() []bool {
		inner := newFakeEP()
		c := NewChaos(inner, ChaosConfig{Seed: 99, Drop: 0.5}, nil)
		outcomes := make([]bool, 100)
		for i := range outcomes {
			outcomes[i] = c.Send("peer", Message{Type: "m", Payload: []byte(strconv.Itoa(i))}) == nil
		}
		return outcomes
	}
	a, b := run(), run()
	delivered := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at send %d", i)
		}
		if a[i] {
			delivered++
		}
	}
	if delivered == 0 || delivered == len(a) {
		t.Fatalf("drop 0.5 delivered %d/%d — injection inactive", delivered, len(a))
	}
}

func TestChaosDropReturnsErrInjected(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Drop: 1}, nil)
	err := c.Send("peer", Message{Type: "m"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Send under Drop=1 = %v, want ErrInjected", err)
	}
	if got := len(inner.sentFrames()); got != 0 {
		t.Fatalf("%d frames reached the wire under Drop=1", got)
	}
}

func TestChaosSilentDrop(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Drop: 1, SilentDrop: true}, nil)
	if err := c.Send("peer", Message{Type: "m"}); err != nil {
		t.Fatalf("silent drop surfaced error %v", err)
	}
	if got := len(inner.sentFrames()); got != 0 {
		t.Fatalf("%d frames reached the wire under silent Drop=1", got)
	}
}

func TestChaosPartitionAndHeal(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1}, nil)
	dst := Addr("peer")
	c.Partition(dst)
	if err := c.Send(dst, Message{Type: "m"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Send into partition = %v, want ErrInjected", err)
	}
	// Other destinations are unaffected.
	if err := c.Send("other", Message{Type: "m"}); err != nil {
		t.Fatalf("Send to unpartitioned peer = %v", err)
	}
	c.Heal(dst)
	if err := c.Send(dst, Message{Type: "m"}); err != nil {
		t.Fatalf("Send after Heal = %v", err)
	}
	if got := len(inner.sentFrames()); got != 2 {
		t.Fatalf("%d frames delivered, want 2", got)
	}
}

func TestChaosDuplicate(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Duplicate: 1}, nil)
	if err := c.Send("peer", Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.sentFrames()); got != 2 {
		t.Fatalf("%d frames delivered under Duplicate=1, want 2", got)
	}
}

// TestChaosReorder: with Reorder=1 the first message is held and the
// second overtakes it on the wire.
func TestChaosReorder(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Reorder: 1}, nil)
	dst := Addr("peer")
	if err := c.Send(dst, Message{Type: "a"}); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.sentFrames()); got != 0 {
		t.Fatalf("held message reached the wire immediately (%d frames)", got)
	}
	if err := c.Send(dst, Message{Type: "b"}); err != nil {
		t.Fatal(err)
	}
	frames := inner.sentFrames()
	if len(frames) != 2 || frames[0].Type != "b" || frames[1].Type != "a" {
		t.Fatalf("wire order %v, want [b a]", frames)
	}
}

// TestChaosReorderWithDelay: reordering must still swap wire order when a
// configured Delay postpones delivery — the held message goes out just
// behind the overtaking one, not ahead of it.
func TestChaosReorderWithDelay(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Reorder: 1, Delay: 5 * time.Millisecond}, nil)
	dst := Addr("peer")
	if err := c.Send(dst, Message{Type: "a"}); err != nil { // held
		t.Fatal(err)
	}
	if err := c.Send(dst, Message{Type: "b"}); err != nil { // overtakes
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(inner.sentFrames()) == 2 })
	frames := inner.sentFrames()
	if frames[0].Type != "b" || frames[1].Type != "a" {
		t.Fatalf("wire order [%s %s], want [b a]", frames[0].Type, frames[1].Type)
	}
}

// TestChaosReorderFlushesHeld: a held message with no follow-up is flushed
// by the hold timer rather than lost.
func TestChaosReorderFlushesHeld(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Reorder: 1}, nil)
	if err := c.Send("peer", Message{Type: "a"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(inner.sentFrames()) == 1 })
}

func TestChaosDelay(t *testing.T) {
	inner := newFakeEP()
	c := NewChaos(inner, ChaosConfig{Seed: 1, Delay: 20 * time.Millisecond}, nil)
	start := time.Now()
	if err := c.Send("peer", Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	if got := len(inner.sentFrames()); got != 0 {
		t.Fatal("delayed message reached the wire immediately")
	}
	waitFor(t, func() bool { return len(inner.sentFrames()) == 1 })
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("delayed message arrived after %v, want >= ~20ms", elapsed)
	}
}
