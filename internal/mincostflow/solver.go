package mincostflow

import "sync"

// Solver carries the scratch state a min-cost-flow computation needs —
// distance, potential and parent arrays plus the Dijkstra heap for the
// successive-shortest-path solver, and the excess/copy arenas for the
// cost-scaling solver. Reusing one Solver across computations (or drawing
// one from the package pool with AcquireSolver) eliminates the per-solve
// allocations that dominate composition cost on small graphs.
//
// A Solver is not safe for concurrent use; pool it or keep it
// goroutine-local. The zero value is ready to use.
type Solver struct {
	// Successive-shortest-path scratch.
	pot      []int64
	dist     []int64
	prevNode []int
	prevArc  []int
	q        []pqItem

	// Cost-scaling scratch.
	excess  []int64
	inQueue []bool
	active  []int
	cadj    [][]carc
	maps    []arcMapping

	warm bool // a previous computation ran with this scratch
}

// solverPool recycles Solvers across compositions.
var solverPool = sync.Pool{New: func() interface{} { return new(Solver) }}

// AcquireSolver returns a Solver from the package pool; callers should
// Release it when the computation (and every read of its results) is done.
func AcquireSolver() *Solver { return solverPool.Get().(*Solver) }

// Release returns the solver to the package pool.
func (s *Solver) Release() { solverPool.Put(s) }

// Reused reports whether this solver has run at least one computation
// before — i.e. acquiring it hit warm pooled scratch rather than a fresh
// allocation.
func (s *Solver) Reused() bool { return s.warm }

// grow ensures the SSP scratch covers n nodes.
func (s *Solver) grow(n int) {
	if cap(s.pot) < n {
		s.pot = make([]int64, n)
		s.dist = make([]int64, n)
		s.prevNode = make([]int, n)
		s.prevArc = make([]int, n)
	}
	s.pot = s.pot[:n]
	s.dist = s.dist[:n]
	s.prevNode = s.prevNode[:n]
	s.prevArc = s.prevArc[:n]
}

// MinCostFlow routes up to want units from src to dst on g at minimum
// total cost using successive shortest paths, reusing the solver's
// scratch. It is semantically identical to Graph.MinCostFlow.
func (s *Solver) MinCostFlow(g *Graph, src, dst int, want int64) (Result, error) {
	defer func() { s.warm = true }()
	n := len(g.adj)
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return Result{}, errBadEndpoints(src, dst)
	}
	if src == dst || want <= 0 {
		return Result{}, nil
	}
	s.grow(n)
	for i := range s.pot {
		s.pot[i] = 0
	}
	if g.hasNegativeCost() {
		if !g.bellmanFord(src, s.pot) {
			return Result{}, ErrNegativeCycle
		}
	}
	var res Result
	for res.Flow < want {
		if !s.dijkstra(g, src, dst) {
			break // dst unreachable in the residual graph
		}
		// Update potentials with the new shortest distances.
		for v := 0; v < n; v++ {
			if s.dist[v] < inf {
				s.pot[v] += s.dist[v]
			}
		}
		// Find the bottleneck along the path.
		push := want - res.Flow
		for v := dst; v != src; v = s.prevNode[v] {
			a := &g.adj[s.prevNode[v]][s.prevArc[v]]
			if r := a.cap - a.flow; r < push {
				push = r
			}
		}
		// Apply the augmentation.
		for v := dst; v != src; v = s.prevNode[v] {
			a := &g.adj[s.prevNode[v]][s.prevArc[v]]
			a.flow += push
			g.adj[v][a.rev].flow -= push
			res.Cost += push * a.cost
		}
		res.Flow += push
		res.Iterations++
	}
	return res, nil
}

// dijkstra computes reduced-cost shortest paths from src into the solver's
// dist/prevNode/prevArc scratch; it returns true if dst is reachable. The
// heap is maintained inline (no container/heap interface boxing) so a
// solve performs zero allocations once the scratch is warm.
func (s *Solver) dijkstra(g *Graph, src, dst int) bool {
	n := len(g.adj)
	for i := 0; i < n; i++ {
		s.dist[i] = inf
		s.prevNode[i] = -1
	}
	s.dist[src] = 0
	s.q = s.q[:0]
	s.heapPush(pqItem{node: src, dist: 0})
	for len(s.q) > 0 {
		it := s.heapPop()
		if it.dist > s.dist[it.node] {
			continue
		}
		u := it.node
		for i := range g.adj[u] {
			a := &g.adj[u][i]
			if a.cap <= a.flow || s.pot[a.to] >= inf || s.pot[u] >= inf {
				continue
			}
			rc := a.cost + s.pot[u] - s.pot[a.to]
			if rc < 0 {
				rc = 0 // guard against rounding in caller-scaled costs
			}
			if nd := s.dist[u] + rc; nd < s.dist[a.to] {
				s.dist[a.to] = nd
				s.prevNode[a.to] = u
				s.prevArc[a.to] = i
				s.heapPush(pqItem{node: a.to, dist: nd})
			}
		}
	}
	return s.dist[dst] < inf
}

func (s *Solver) heapPush(it pqItem) {
	s.q = append(s.q, it)
	i := len(s.q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.q[parent].dist <= s.q[i].dist {
			break
		}
		s.q[parent], s.q[i] = s.q[i], s.q[parent]
		i = parent
	}
}

func (s *Solver) heapPop() pqItem {
	top := s.q[0]
	last := len(s.q) - 1
	s.q[0] = s.q[last]
	s.q = s.q[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && s.q[l].dist < s.q[small].dist {
			small = l
		}
		if r < last && s.q[r].dist < s.q[small].dist {
			small = r
		}
		if small == i {
			break
		}
		s.q[small], s.q[i] = s.q[i], s.q[small]
		i = small
	}
	return top
}
