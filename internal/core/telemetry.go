package core

import (
	"time"

	"rasc.dev/rasc/internal/telemetry"
)

// Runtime telemetry for the composition hot path (metric catalogue
// rasc_compose_*). Composition runs a few times per admitted request but
// its cost bounds how fast allocation can track runtime conditions, so
// its latency distribution is first-class.
var (
	telComposeDuration = telemetry.Default().Histogram(
		"rasc_compose_duration_seconds",
		"Wall-clock time one Compose call took, across all composers.", nil)
	telSolverReuse = telemetry.Default().Counter(
		"rasc_compose_solver_reuse_total",
		"Compositions that hit warm pooled min-cost-flow solver scratch instead of allocating fresh state.")
)

// observeCompose records one Compose call's duration; use as
// `defer observeCompose(time.Now())` at the top of a Compose method.
func observeCompose(start time.Time) {
	telComposeDuration.Observe(time.Since(start).Seconds())
}

// observeStats fills a caller-provided ComposeStats' duration; use as
// `defer observeStats(in.Stats, time.Now())` next to observeCompose.
// A nil stats is a no-op.
func observeStats(st *ComposeStats, start time.Time) {
	if st != nil {
		st.Duration = time.Since(start)
	}
}
