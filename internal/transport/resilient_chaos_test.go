package transport

import (
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestResilientThroughChaosEventualDelivery is the resilience soak: 10k
// control messages pushed through 30% drops plus reordering. Drops surface
// as errors to the retry pipeline (SilentDrop off), so every message must
// eventually land; reordering scrambles frame order but cannot lose frames.
// Run under -race (the CI transport job does).
func TestResilientThroughChaosEventualDelivery(t *testing.T) {
	recvTCP, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	recv := NewResilient(recvTCP, fastResilient())
	defer recv.Close()

	const n = 10000
	var mu sync.Mutex
	seen := make(map[int]bool, n)
	recv.SetHandler(func(from Addr, msg Message) {
		seq, err := strconv.Atoi(string(msg.Payload))
		if err != nil {
			t.Errorf("bad payload %q", msg.Payload)
			return
		}
		mu.Lock()
		seen[seq] = true // retries may duplicate; distinct coverage is the contract
		mu.Unlock()
	})

	sendTCP, err := NewTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(sendTCP, ChaosConfig{Seed: 42, Drop: 0.3, Reorder: 0.2}, nil)
	retriesBefore := telResRetries.Value()
	sender := NewResilient(chaos, ResilientConfig{
		QueueLen:     2 * n,
		RetryBase:    time.Millisecond,
		RetryMax:     10 * time.Millisecond,
		MaxRetries:   20,
		SendDeadline: time.Minute,
		// The soak is about retries, not fail-fast: a 30% drop rate will
		// exhaust some batches, and that must not wedge the whole run.
		Breaker: BreakerConfig{FailureThreshold: 1 << 30, OpenTimeout: time.Second},
	})
	defer sender.Close()

	dst := recv.Addr()
	for i := 0; i < n; i++ {
		if err := sender.Send(dst, Message{Type: "soak", Payload: []byte(strconv.Itoa(i))}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		mu.Lock()
		got := len(seen)
		mu.Unlock()
		if got == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("eventual delivery stalled: %d/%d distinct messages", got, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if telResRetries.Value() == retriesBefore {
		t.Fatal("30% drop produced zero retries — chaos faults never reached the retry pipeline")
	}
}

// TestResilientBreakerLifecycleOverPartition walks the breaker through its
// full state machine: a partition drives it closed→open, Send fails fast,
// healing plus the open-timeout admits a half-open probe, and the probe's
// success closes it again. Transitions are observed via OnBreakerChange.
func TestResilientBreakerLifecycleOverPartition(t *testing.T) {
	inner := newFakeEP()
	chaos := NewChaos(inner, ChaosConfig{Seed: 7}, nil)

	var mu sync.Mutex
	var transitions []BreakerState
	cfg := ResilientConfig{
		RetryBase:  time.Millisecond,
		RetryMax:   2 * time.Millisecond,
		MaxRetries: 1,
		// A roomy open window so the fail-fast assertion below cannot race
		// the window expiring under a slow -race scheduler.
		Breaker: BreakerConfig{FailureThreshold: 2, OpenTimeout: 300 * time.Millisecond},
		OnBreakerChange: func(peer Addr, state BreakerState) {
			mu.Lock()
			transitions = append(transitions, state)
			mu.Unlock()
		},
	}
	r := NewResilient(chaos, cfg)
	defer r.Close()

	dst := Addr("peer")
	chaos.Partition(dst)

	// Feed sends until repeated batch exhaustion opens the breaker. One
	// message at a time, with a pause, so each flush fails on its own and
	// the queue is empty once the breaker opens.
	waitFor(t, func() bool {
		if r.State(dst) == BreakerOpen {
			return true
		}
		r.Send(dst, Message{Type: "m"})
		time.Sleep(5 * time.Millisecond)
		return r.State(dst) == BreakerOpen
	})

	// While open (and inside the window), sends must fail fast.
	if err := r.Send(dst, Message{Type: "m"}); err != ErrPeerDown {
		t.Fatalf("Send with open breaker = %v, want ErrPeerDown", err)
	}

	chaos.Heal(dst)
	time.Sleep(cfg.Breaker.OpenTimeout + 20*time.Millisecond)

	// The next Send is admitted as the half-open probe; its success closes
	// the breaker.
	if err := r.Send(dst, Message{Type: "probe"}); err != nil {
		t.Fatalf("probe send = %v", err)
	}
	waitFor(t, func() bool { return r.State(dst) == BreakerClosed })
	waitFor(t, func() bool { return len(inner.sentFrames()) >= 1 })

	// The observer saw the full lifecycle, in order.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(transitions) >= 3
	})
	mu.Lock()
	defer mu.Unlock()
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	for i, st := range want {
		if transitions[i] != st {
			t.Fatalf("transition[%d] = %v, want %v (all: %v)", i, transitions[i], st, transitions)
		}
	}
}
