package transport

import (
	"errors"
	"time"
)

// BreakerState is a per-peer circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails sends fast; after OpenTimeout the next send is
	// allowed through as a half-open probe.
	BreakerOpen
	// BreakerHalfOpen lets exactly one batch probe the peer: success
	// closes the breaker, failure re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// ErrPeerDown is returned by Send while a peer's circuit breaker is open:
// recent sends to the peer failed and the backoff window has not elapsed.
// Callers should treat the peer as unreachable rather than retrying
// immediately.
var ErrPeerDown = errors.New("transport: peer circuit breaker open")

// BreakerConfig tunes the per-peer circuit breaker. The zero value selects
// the defaults noted on each field.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive send failures trip the
	// breaker open (default 5).
	FailureThreshold int
	// OpenTimeout is how long an open breaker rejects sends before
	// allowing a half-open probe (default 2s).
	OpenTimeout time.Duration
}

func (c *BreakerConfig) defaults() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 2 * time.Second
	}
}

// breaker is the closed → open → half-open state machine guarding one
// peer. It is not internally synchronized: the owning peer serializes all
// calls under its own lock.
type breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // wall time the breaker last opened
	probing  bool      // a half-open probe is in flight
	onChange func(from, to BreakerState)
}

func newBreaker(cfg BreakerConfig, onChange func(from, to BreakerState)) *breaker {
	cfg.defaults()
	return &breaker{cfg: cfg, onChange: onChange}
}

func (b *breaker) transition(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// allow reports whether a send may proceed right now, moving an expired
// open breaker to half-open. In half-open state only the single probe in
// flight is admitted.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenTimeout {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// abortProbe releases the half-open probe slot when the admitted probe was
// dropped before any send attempt (queue full, deadline shed, endpoint
// closing). No outcome was observed, so the state machine stays where it is
// and the next admitted send re-claims the slot. No-op when no probe is in
// flight.
func (b *breaker) abortProbe() {
	b.probing = false
}

// success records a delivered batch.
func (b *breaker) success() {
	b.failures = 0
	b.probing = false
	b.transition(BreakerClosed)
}

// failure records a batch whose retries were exhausted.
func (b *breaker) failure(now time.Time) {
	b.probing = false
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = now
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt = now
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		b.openedAt = now
	}
}
