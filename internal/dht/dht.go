// Package dht provides a replicated multi-value store on top of the Pastry
// overlay, playing the role FreePastry's object storage plays for RASC: a
// key (the SHA-1 of a service name) maps to the set of values (host
// records) published under it.
package dht

import (
	"encoding/json"
	"errors"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/overlay"
)

const appName = "dht"

// DefaultReplication is how many leaf-set neighbors receive a copy of each
// stored value.
const DefaultReplication = 4

// ErrTimeout is reported by Get when the key's root does not answer.
var ErrTimeout = errors.New("dht: lookup timed out")

type opKind string

const (
	opPut     opKind = "put"
	opRemove  opKind = "remove"
	opGet     opKind = "get"
	opReply   opKind = "reply"
	opReplica opKind = "replica"
)

// message is the DHT wire format, carried in overlay route/direct bodies.
type message struct {
	Op     opKind     `json:"op"`
	Key    overlay.ID `json:"key"`
	Value  []byte     `json:"v,omitempty"`
	Values [][]byte   `json:"vs,omitempty"`
	ReqID  uint64     `json:"r,omitempty"`
	Remove bool       `json:"rm,omitempty"`
}

type pendingGet struct {
	cb     func([][]byte, error)
	cancel func()
}

// Store is one node's participation in the DHT.
type Store struct {
	node    *overlay.Node
	clk     clock.Clock
	data    map[overlay.ID]map[string]time.Duration // value -> expiry (0 = never)
	pending map[uint64]*pendingGet
	nextReq uint64

	// Replication is the number of leaf-set members that receive copies
	// of values this node stores as root.
	Replication int
	// TTL, when positive, expires stored values that are not re-Put
	// within it. Publishers keep their registrations alive with
	// periodic refresh (discovery.Directory.StartRefresh); entries of
	// departed publishers then age out instead of lingering forever.
	TTL time.Duration
}

// New attaches a DHT store to an overlay node.
func New(node *overlay.Node, clk clock.Clock) *Store {
	s := &Store{
		node:        node,
		clk:         clk,
		data:        make(map[overlay.ID]map[string]time.Duration),
		pending:     make(map[uint64]*pendingGet),
		Replication: DefaultReplication,
	}
	node.Register(appName, s.deliver)
	return s
}

// Put publishes value under key. The value is routed to the key's root and
// replicated on the root's leaf set. Duplicate values are idempotent.
func (s *Store) Put(key overlay.ID, value []byte) {
	s.route(message{Op: opPut, Key: key, Value: value})
}

// Remove withdraws value from key's value set.
func (s *Store) Remove(key overlay.ID, value []byte) {
	s.route(message{Op: opRemove, Key: key, Value: value})
}

// Get fetches the value set for key. cb runs exactly once, either with the
// values (possibly empty) or with an error.
func (s *Store) Get(key overlay.ID, timeout time.Duration, cb func([][]byte, error)) {
	s.nextReq++
	id := s.nextReq
	p := &pendingGet{cb: cb}
	p.cancel = s.clk.After(timeout, func() {
		if _, ok := s.pending[id]; ok {
			delete(s.pending, id)
			// The key's route is suspect: probe-and-prune the local
			// next hop so a retry can take a live path.
			s.node.HealRoute(key, timeout/2+time.Millisecond, nil)
			cb(nil, ErrTimeout)
		}
	})
	s.pending[id] = p
	s.route(message{Op: opGet, Key: key, ReqID: id})
}

// LocalValues returns the live (unexpired) values this node stores for key
// (diagnostics and tests).
func (s *Store) LocalValues(key overlay.ID) [][]byte {
	now := s.clk.Now()
	var out [][]byte
	for v, expiry := range s.data[key] {
		if expiry != 0 && expiry <= now {
			continue
		}
		out = append(out, []byte(v))
	}
	return out
}

// pruneExpired removes aged-out values for key.
func (s *Store) pruneExpired(key overlay.ID) {
	set, ok := s.data[key]
	if !ok {
		return
	}
	now := s.clk.Now()
	for v, expiry := range set {
		if expiry != 0 && expiry <= now {
			delete(set, v)
		}
	}
	if len(set) == 0 {
		delete(s.data, key)
	}
}

// LocalKeys returns how many keys this node stores.
func (s *Store) LocalKeys() int { return len(s.data) }

func (s *Store) route(m message) {
	b, _ := json.Marshal(m)
	s.node.Route(m.Key, appName, b)
}

func (s *Store) deliver(_ overlay.ID, src overlay.NodeInfo, body []byte) {
	var m message
	if err := json.Unmarshal(body, &m); err != nil {
		return
	}
	switch m.Op {
	case opPut:
		s.store(m.Key, m.Value)
		s.replicate(m.Key, m.Value, false)
	case opRemove:
		s.erase(m.Key, m.Value)
		s.replicate(m.Key, m.Value, true)
	case opReplica:
		if m.Remove {
			s.erase(m.Key, m.Value)
		} else {
			s.store(m.Key, m.Value)
		}
	case opGet:
		reply := message{Op: opReply, Key: m.Key, ReqID: m.ReqID, Values: s.LocalValues(m.Key)}
		b, _ := json.Marshal(reply)
		s.node.Direct(src.Addr, appName, b)
	case opReply:
		p, ok := s.pending[m.ReqID]
		if !ok {
			return
		}
		delete(s.pending, m.ReqID)
		p.cancel()
		p.cb(m.Values, nil)
	}
}

func (s *Store) store(key overlay.ID, value []byte) {
	s.pruneExpired(key)
	set, ok := s.data[key]
	if !ok {
		set = make(map[string]time.Duration)
		s.data[key] = set
	}
	var expiry time.Duration
	if s.TTL > 0 {
		expiry = s.clk.Now() + s.TTL
	}
	set[string(value)] = expiry
}

func (s *Store) erase(key overlay.ID, value []byte) {
	if set, ok := s.data[key]; ok {
		delete(set, string(value))
		if len(set) == 0 {
			delete(s.data, key)
		}
	}
}

// replicate pushes a stored (or removed) value to the nearest leaf-set
// members so the data survives the root and remains findable after small
// ring changes.
func (s *Store) replicate(key overlay.ID, value []byte, remove bool) {
	m := message{Op: opReplica, Key: key, Value: value, Remove: remove}
	b, _ := json.Marshal(m)
	peers := s.node.Leafset()
	for i, peer := range peers {
		if i >= s.Replication {
			break
		}
		s.node.Direct(peer.Addr, appName, b)
	}
}
