package mincostflow

import (
	"math/rand"
	"testing"
)

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	a := g.AddArc(0, 1, 10, 2)
	b := g.AddArc(1, 2, 5, 3)
	res, err := g.MinCostFlow(0, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 {
		t.Fatalf("Flow = %d, want 5 (bottleneck)", res.Flow)
	}
	if res.Cost != 5*2+5*3 {
		t.Fatalf("Cost = %d, want 25", res.Cost)
	}
	if g.Flow(a) != 5 || g.Flow(b) != 5 {
		t.Fatalf("arc flows = %d, %d", g.Flow(a), g.Flow(b))
	}
	if g.Residual(a) != 5 || g.Residual(b) != 0 {
		t.Fatalf("residuals = %d, %d", g.Residual(a), g.Residual(b))
	}
}

func TestPrefersCheaperPath(t *testing.T) {
	// Two parallel 0→1 routes: direct cheap (cap 3, cost 1) and via 2
	// expensive (cost 10). Request 5 units: 3 go cheap, 2 expensive.
	g := NewGraph(3)
	cheap := g.AddArc(0, 1, 3, 1)
	e1 := g.AddArc(0, 2, 10, 4)
	e2 := g.AddArc(2, 1, 10, 6)
	res, err := g.MinCostFlow(0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 5 {
		t.Fatalf("Flow = %d", res.Flow)
	}
	if g.Flow(cheap) != 3 || g.Flow(e1) != 2 || g.Flow(e2) != 2 {
		t.Fatalf("split = %d / %d", g.Flow(cheap), g.Flow(e1))
	}
	if res.Cost != 3*1+2*10 {
		t.Fatalf("Cost = %d, want 23", res.Cost)
	}
}

func TestExactDemandStopsEarly(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 100, 1)
	res, err := g.MinCostFlow(0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 7 || res.Cost != 7 {
		t.Fatalf("res = %+v", res)
	}
}

func TestUnreachableSink(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 5, 1)
	res, err := g.MinCostFlow(0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 0 || res.Cost != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestDegenerateRequests(t *testing.T) {
	g := NewGraph(2)
	g.AddArc(0, 1, 5, 1)
	if res, _ := g.MinCostFlow(0, 0, 5); res.Flow != 0 {
		t.Fatal("s==t must carry no flow")
	}
	if res, _ := g.MinCostFlow(0, 1, 0); res.Flow != 0 {
		t.Fatal("want=0 must carry no flow")
	}
	if _, err := g.MinCostFlow(-1, 1, 5); err == nil {
		t.Fatal("bad endpoint must error")
	}
}

func TestNegativeCostArc(t *testing.T) {
	// 0→1 cost 5 or 0→2→1 with total cost -1: the negative route wins.
	g := NewGraph(3)
	exp := g.AddArc(0, 1, 10, 5)
	g.AddArc(0, 2, 10, 2)
	g.AddArc(2, 1, 10, -3)
	res, err := g.MinCostFlow(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != 10 || res.Cost != -10 {
		t.Fatalf("res = %+v, want flow 10 cost -10", res)
	}
	if g.Flow(exp) != 0 {
		t.Fatal("expensive arc should be unused")
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := NewGraph(3)
	g.AddArc(0, 1, 5, 1)
	g.AddArc(1, 2, 5, -4)
	g.AddArc(2, 1, 5, 1) // 1→2→1 cycles at cost -3
	if _, err := g.MinCostFlow(0, 2, 1); err != ErrNegativeCycle {
		t.Fatalf("err = %v, want ErrNegativeCycle", err)
	}
}

func TestResetFlows(t *testing.T) {
	g := NewGraph(2)
	a := g.AddArc(0, 1, 5, 1)
	if _, err := g.MinCostFlow(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	g.ResetFlows()
	if g.Flow(a) != 0 || g.Residual(a) != 5 {
		t.Fatal("ResetFlows did not clear flow")
	}
	res, err := g.MinCostFlow(0, 1, 5)
	if err != nil || res.Flow != 5 {
		t.Fatalf("rerun after ResetFlows: %+v, %v", res, err)
	}
}

func TestResetArena(t *testing.T) {
	g := NewGraph(4)
	g.AddArc(0, 1, 5, 1)
	g.AddArc(1, 3, 5, 1)
	if _, err := g.MinCostFlow(0, 3, 5); err != nil {
		t.Fatal(err)
	}
	// Recycle into a smaller graph: old arcs must be gone.
	g.Reset(2)
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d, want 2", g.NumNodes())
	}
	a := g.AddArc(0, 1, 7, 2)
	res, err := g.MinCostFlow(0, 1, 10)
	if err != nil || res.Flow != 7 || res.Cost != 14 {
		t.Fatalf("recycled solve = %+v, %v", res, err)
	}
	if g.Flow(a) != 7 {
		t.Fatalf("flow on recycled arc = %d", g.Flow(a))
	}
	// Growing past the old arena must also start clean.
	g.Reset(3)
	if n := g.AddNode(); n != 3 {
		t.Fatalf("AddNode after Reset = %d, want 3", n)
	}
	g.AddArc(0, 2, 3, 1)
	g.AddArc(2, 3, 3, 1)
	res, err = g.MinCostFlow(0, 3, 5)
	if err != nil || res.Flow != 3 || res.Cost != 6 {
		t.Fatalf("grown solve = %+v, %v", res, err)
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(1)
	v := g.AddNode()
	if v != 1 || g.NumNodes() != 2 {
		t.Fatalf("AddNode = %d, NumNodes = %d", v, g.NumNodes())
	}
	g.AddArc(0, v, 3, 1)
	res, _ := g.MinCostFlow(0, v, 10)
	if res.Flow != 3 {
		t.Fatalf("Flow = %d", res.Flow)
	}
}

func TestDecompose(t *testing.T) {
	g := NewGraph(4)
	g.AddArc(0, 1, 3, 1)
	g.AddArc(0, 2, 2, 2)
	g.AddArc(1, 3, 3, 1)
	g.AddArc(2, 3, 2, 1)
	res, err := g.MinCostFlow(0, 3, 5)
	if err != nil || res.Flow != 5 {
		t.Fatalf("res = %+v err = %v", res, err)
	}
	paths := g.Decompose(0, 3)
	var total int64
	for _, p := range paths {
		if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 3 {
			t.Fatalf("path endpoints wrong: %v", p.Nodes)
		}
		if p.Amount <= 0 {
			t.Fatalf("non-positive path amount: %+v", p)
		}
		total += p.Amount
	}
	if total != 5 {
		t.Fatalf("decomposed total = %d, want 5", total)
	}
	// Decompose must not disturb the stored flow.
	if res2 := g.Decompose(0, 3); len(res2) != len(paths) {
		t.Fatal("Decompose is not idempotent")
	}
}

// --- Reference implementation: Edmonds-Karp max-flow followed by
// Bellman-Ford negative-cycle cancelling. Used to cross-check SSP on random
// graphs.

type refGraph struct {
	n    int
	to   []int
	from []int
	cap  []int64
	cost []int64
	flow []int64
}

func newRef(n int) *refGraph { return &refGraph{n: n} }

func (r *refGraph) addArc(u, v int, c, w int64) {
	// forward
	r.from = append(r.from, u)
	r.to = append(r.to, v)
	r.cap = append(r.cap, c)
	r.cost = append(r.cost, w)
	r.flow = append(r.flow, 0)
	// backward
	r.from = append(r.from, v)
	r.to = append(r.to, u)
	r.cap = append(r.cap, 0)
	r.cost = append(r.cost, -w)
	r.flow = append(r.flow, 0)
}

func (r *refGraph) residual(e int) int64 { return r.cap[e] - r.flow[e] }

func (r *refGraph) push(e int, amt int64) {
	r.flow[e] += amt
	r.flow[e^1] -= amt
}

// maxFlowUpTo augments along BFS paths until flow reaches want or no path
// remains; returns the achieved flow.
func (r *refGraph) maxFlowUpTo(s, t int, want int64) int64 {
	var total int64
	for total < want {
		prevEdge := make([]int, r.n)
		for i := range prevEdge {
			prevEdge[i] = -1
		}
		prevEdge[s] = -2
		queue := []int{s}
		for len(queue) > 0 && prevEdge[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for e := 0; e < len(r.to); e++ {
				if r.from[e] == u && r.residual(e) > 0 && prevEdge[r.to[e]] == -1 {
					prevEdge[r.to[e]] = e
					queue = append(queue, r.to[e])
				}
			}
		}
		if prevEdge[t] == -1 {
			break
		}
		push := want - total
		for v := t; v != s; v = r.from[prevEdge[v]] {
			if res := r.residual(prevEdge[v]); res < push {
				push = res
			}
		}
		for v := t; v != s; v = r.from[prevEdge[v]] {
			r.push(prevEdge[v], push)
		}
		total += push
	}
	return total
}

// cancelNegativeCycles repeatedly finds a residual negative cycle with
// Bellman-Ford and saturates it.
func (r *refGraph) cancelNegativeCycles() {
	for {
		dist := make([]int64, r.n)
		prevEdge := make([]int, r.n)
		for i := range prevEdge {
			prevEdge[i] = -1
		}
		var cycleNode = -1
		for iter := 0; iter < r.n; iter++ {
			changed := false
			for e := 0; e < len(r.to); e++ {
				if r.residual(e) <= 0 {
					continue
				}
				if nd := dist[r.from[e]] + r.cost[e]; nd < dist[r.to[e]] {
					dist[r.to[e]] = nd
					prevEdge[r.to[e]] = e
					changed = true
					if iter == r.n-1 {
						cycleNode = r.to[e]
					}
				}
			}
			if !changed {
				return
			}
		}
		if cycleNode == -1 {
			return
		}
		// Walk back to land inside the cycle.
		v := cycleNode
		for i := 0; i < r.n; i++ {
			v = r.from[prevEdge[v]]
		}
		// Collect the cycle and its bottleneck.
		var cycle []int
		push := int64(1) << 60
		u := v
		for {
			e := prevEdge[u]
			cycle = append(cycle, e)
			if res := r.residual(e); res < push {
				push = res
			}
			u = r.from[e]
			if u == v {
				break
			}
		}
		for _, e := range cycle {
			r.push(e, push)
		}
	}
}

func (r *refGraph) totalCost() int64 {
	var c int64
	for e := 0; e < len(r.to); e += 2 {
		if r.flow[e] > 0 {
			c += r.flow[e] * r.cost[e]
		}
	}
	return c
}

// TestAgainstCycleCancelling cross-checks SSP against the independent
// reference on random graphs with non-negative costs.
func TestAgainstCycleCancelling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(6)
		arcs := rng.Intn(14)
		g := NewGraph(n)
		ref := newRef(n)
		for i := 0; i < arcs; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c, w := int64(rng.Intn(8)), int64(rng.Intn(12))
			g.AddArc(u, v, c, w)
			ref.addArc(u, v, c, w)
		}
		s, tt := 0, n-1
		want := int64(1 + rng.Intn(10))
		res, err := g.MinCostFlow(s, tt, want)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		refFlow := ref.maxFlowUpTo(s, tt, want)
		ref.cancelNegativeCycles()
		if res.Flow != refFlow {
			t.Fatalf("trial %d: flow %d vs reference %d", trial, res.Flow, refFlow)
		}
		if res.Cost != ref.totalCost() {
			t.Fatalf("trial %d: cost %d vs reference %d (flow %d)", trial, res.Cost, ref.totalCost(), res.Flow)
		}
	}
}

// TestFlowConservationProperty verifies capacity and conservation on random
// instances.
func TestFlowConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		g := NewGraph(n)
		type arcRef struct {
			id   ArcID
			u, v int
			cap  int64
		}
		var arcs []arcRef
		for i := 0; i < 16; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			c := int64(rng.Intn(9))
			arcs = append(arcs, arcRef{g.AddArc(u, v, c, int64(rng.Intn(5))), u, v, c})
		}
		res, err := g.MinCostFlow(0, n-1, int64(1+rng.Intn(12)))
		if err != nil {
			t.Fatal(err)
		}
		net := make([]int64, n)
		for _, a := range arcs {
			f := g.Flow(a.id)
			if f < 0 || f > a.cap {
				t.Fatalf("trial %d: flow %d outside [0,%d]", trial, f, a.cap)
			}
			net[a.u] -= f
			net[a.v] += f
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("trial %d: conservation violated at node %d (%d)", trial, v, net[v])
			}
		}
		if net[n-1] != res.Flow || net[0] != -res.Flow {
			t.Fatalf("trial %d: endpoint imbalance", trial)
		}
	}
}
