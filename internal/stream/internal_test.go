package stream

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
)

func TestSplitterProportions(t *testing.T) {
	s := newSplitter([]outSpec{
		{ToStage: 1, Rate: 6},
		{ToStage: 1, Rate: 4},
	})
	counts := [2]int{}
	for i := 0; i < 1000; i++ {
		out := s.next()
		if out.Rate == 6 {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	if counts[0] != 600 || counts[1] != 400 {
		t.Fatalf("split = %v, want exact 600/400", counts)
	}
}

func TestSplitterSingleTarget(t *testing.T) {
	s := newSplitter([]outSpec{{ToStage: 2, Rate: 5}})
	for i := 0; i < 10; i++ {
		if out := s.next(); out == nil || out.ToStage != 2 {
			t.Fatal("single-target splitter misrouted")
		}
	}
}

func TestSplitterEmpty(t *testing.T) {
	if newSplitter(nil).next() != nil {
		t.Fatal("empty splitter must return nil")
	}
	if newSplitter([]outSpec{{Rate: 0}}).next() != nil {
		t.Fatal("zero-rate splitter must return nil")
	}
}

// Property: over n×k units, each target receives its share ±1 regardless
// of the weight mix.
func TestSplitterShareProperty(t *testing.T) {
	prop := func(weights []uint8) bool {
		var outs []outSpec
		total := 0.0
		for _, w := range weights {
			if w == 0 {
				continue
			}
			outs = append(outs, outSpec{Rate: float64(w)})
			total += float64(w)
		}
		if len(outs) == 0 {
			return true
		}
		s := newSplitter(outs)
		counts := make(map[*outSpec]int)
		iterations := int(total) * 10
		for i := 0; i < iterations; i++ {
			counts[s.next()]++
		}
		for i := range outs {
			want := float64(iterations) * outs[i].Rate / total
			got := float64(counts[&outs[i]])
			if math.Abs(got-want) > 1.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSinkMetrics(t *testing.T) {
	s := newSink("r", 0, 2, 100*time.Millisecond, 100*time.Millisecond, 0)
	// First unit at t=1s, created at 0.4s: delay 600ms, counted timely.
	s.observe(dataMsg{Seq: 0, Created: 400 * time.Millisecond}, time.Second)
	// Second unit exactly on time.
	s.observe(dataMsg{Seq: 1, Created: 500 * time.Millisecond}, 1100*time.Millisecond)
	// Third unit 150ms late: jitter accrues, not timely (slack 100ms).
	s.observe(dataMsg{Seq: 2, Created: 600 * time.Millisecond}, 1350*time.Millisecond)
	// Fourth unit out of order (seq 1 again... use seq 1 < maxSeq 2).
	s.observe(dataMsg{Seq: 1, Created: 700 * time.Millisecond}, 1400*time.Millisecond)
	if s.Received != 4 {
		t.Fatalf("Received = %d", s.Received)
	}
	if s.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d", s.OutOfOrder)
	}
	if s.Timely != 2 {
		t.Fatalf("Timely = %d, want 2 (first + on-time)", s.Timely)
	}
	if s.TotalJitter != 150*time.Millisecond {
		t.Fatalf("TotalJitter = %v", s.TotalJitter)
	}
	if got := s.MeanDelay(); got <= 0 {
		t.Fatalf("MeanDelay = %v", got)
	}
	if f := s.OutOfOrderFraction(); f != 0.25 {
		t.Fatalf("OutOfOrderFraction = %g", f)
	}
	if f := s.TimelyFraction(); f != 0.5 {
		t.Fatalf("TimelyFraction = %g", f)
	}
}

func TestSinkPlayoutArithmetic(t *testing.T) {
	// Period 100ms, playout delay 300ms. First unit (seq 0) arrives at
	// 1s → playback of seq k at 1.3s + k*100ms.
	s := newSink("r", 0, 1, 100*time.Millisecond, 100*time.Millisecond, 300*time.Millisecond)
	s.observe(dataMsg{Seq: 0}, 1000*time.Millisecond)
	s.observe(dataMsg{Seq: 1}, 1100*time.Millisecond) // deadline 1.4s: fine
	s.observe(dataMsg{Seq: 2, Created: 0}, 1500*time.Millisecond)
	// Seq 2's deadline was 1.5s; arriving exactly at it is fine.
	if s.Stalls != 0 {
		t.Fatalf("Stalls = %d, want 0 so far", s.Stalls)
	}
	// Seq 3's deadline is 1.6s; arriving at 2.0s stalls and rebases:
	// new deadline(k) = 2.3s + (k-3)*100ms.
	s.observe(dataMsg{Seq: 3}, 2000*time.Millisecond)
	if s.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", s.Stalls)
	}
	// Seq 4 deadline 2.4s: arriving at 2.35s is fine after the rebase.
	s.observe(dataMsg{Seq: 4}, 2350*time.Millisecond)
	if s.Stalls != 1 {
		t.Fatalf("Stalls = %d after rebase, want 1", s.Stalls)
	}
	// Seq 5 deadline 2.5s: arriving at 2.6s stalls again.
	s.observe(dataMsg{Seq: 5}, 2600*time.Millisecond)
	if s.Stalls != 2 {
		t.Fatalf("Stalls = %d, want 2", s.Stalls)
	}
	if Snapshot(s).Stalls != 2 {
		t.Fatal("snapshot missing stalls")
	}
}

func TestSinkPlayoutDisabled(t *testing.T) {
	s := newSink("r", 0, 1, 100*time.Millisecond, 100*time.Millisecond, 0)
	s.observe(dataMsg{Seq: 0}, time.Second)
	s.observe(dataMsg{Seq: 1}, 10*time.Second) // hugely late
	if s.Stalls != 0 {
		t.Fatal("playout disabled must never stall")
	}
}

func TestSinkEmpty(t *testing.T) {
	s := newSink("r", 0, 1, time.Second, time.Second, 0)
	if s.MeanDelay() != 0 || s.MeanJitter() != 0 || s.TimelyFraction() != 0 || s.OutOfOrderFraction() != 0 {
		t.Fatal("empty sink must report zeros")
	}
}

func TestSnapshotCopies(t *testing.T) {
	s := newSink("r", 0, 1, time.Second, time.Second, 0)
	s.observe(dataMsg{Seq: 0}, time.Second)
	snap := Snapshot(s)
	if snap.Received != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestComponentKey(t *testing.T) {
	if componentKey("req", 1, 2) != "req/1/2" {
		t.Fatalf("componentKey = %q", componentKey("req", 1, 2))
	}
	if itoa(-42) != "-42" || itoa(0) != "0" || itoa(123) != "123" {
		t.Fatal("itoa broken")
	}
}

func TestGraphOuts(t *testing.T) {
	host := func(s string) overlay.NodeInfo {
		return overlay.NodeInfo{ID: overlay.HashID(s), Addr: "sim://x"}
	}
	g := &core.ExecutionGraph{
		Request: spec.Request{ID: "r", UnitBytes: 100, Substreams: []spec.Substream{
			{Services: []string{"a"}, Rate: 5},
		}},
		Edges: []core.Edge{
			{Substream: 0, FromStage: -1, ToStage: 0, From: host("src"), To: host("h1"), Rate: 3},
			{Substream: 0, FromStage: -1, ToStage: 0, From: host("src"), To: host("h2"), Rate: 2},
			{Substream: 0, FromStage: 0, ToStage: 1, From: host("h1"), To: host("dst"), Rate: 3},
			{Substream: 0, FromStage: 0, ToStage: 1, From: host("h2"), To: host("dst"), Rate: 2},
		},
	}
	byPlacement, sourceOuts := graphOuts(g)
	if len(sourceOuts[0]) != 2 {
		t.Fatalf("source outs = %v", sourceOuts)
	}
	key1 := componentKey("r", 0, 0) + "@" + host("h1").ID.String()
	if len(byPlacement[key1]) != 1 || byPlacement[key1][0].Rate != 3 {
		t.Fatalf("placement outs = %v", byPlacement[key1])
	}
}
