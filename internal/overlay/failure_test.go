package overlay

import (
	"fmt"
	"testing"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/netsim"
	"rasc.dev/rasc/internal/transport"
)

// killableCluster is like the test cluster but keeps transport endpoints
// so nodes can be fail-stopped.
type killableCluster struct {
	sim   *netsim.Simulator
	nodes []*Node
	eps   []transport.Endpoint
}

func newKillableCluster(t *testing.T, n int, seed int64) *killableCluster {
	t.Helper()
	sim := netsim.New(seed)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 10 * time.Millisecond },
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	c := &killableCluster{sim: sim}
	for i := 0; i < n; i++ {
		id := HashID(fmt.Sprintf("kc-%d-%d", seed, i))
		ep := mem.Endpoint(nw.AddNode(1e8, 1e8))
		c.eps = append(c.eps, ep)
		c.nodes = append(c.nodes, NewNode(id, ep, clk))
	}
	c.nodes[0].Bootstrap()
	for i := 1; i < n; i++ {
		c.nodes[i].Join(c.nodes[0].Addr(), nil)
		sim.Run()
	}
	for _, nd := range c.nodes {
		nd.Stabilize()
	}
	sim.Run()
	return c
}

// TestRouteAcksReRouteAroundDeadHop kills nodes and verifies every key
// still reaches the surviving root: forwarders detect the silent hop via
// the missing route ack, prune it and re-route.
func TestRouteAcksReRouteAroundDeadHop(t *testing.T) {
	c := newKillableCluster(t, 20, 31)
	// Kill five nodes at once (fail-stop).
	dead := map[ID]bool{}
	for _, i := range []int{3, 7, 11, 15, 19} {
		dead[c.nodes[i].ID()] = true
		c.eps[i].Close()
	}
	var survivors []*Node
	for _, nd := range c.nodes {
		if !dead[nd.ID()] {
			survivors = append(survivors, nd)
		}
	}
	root := func(key ID) *Node {
		best := survivors[0]
		for _, nd := range survivors[1:] {
			if Closer(key, nd.ID(), best.ID()) {
				best = nd
			}
		}
		return best
	}
	delivered := 0
	for trial := 0; trial < 30; trial++ {
		key := HashID(fmt.Sprintf("ack-key-%d", trial))
		var deliveredAt *Node
		for _, nd := range survivors {
			nd := nd
			nd.Register("ack", func(k ID, src NodeInfo, body []byte) { deliveredAt = nd })
		}
		survivors[trial%len(survivors)].Route(key, "ack", nil)
		c.sim.Run() // ack timeouts fire, hops pruned, message re-routed
		if deliveredAt == nil {
			t.Fatalf("key %v lost despite re-routing", key)
		}
		if deliveredAt != root(key) {
			t.Fatalf("key %v delivered at %v, want surviving root %v",
				key, deliveredAt.ID(), root(key).ID())
		}
		delivered++
	}
	if delivered != 30 {
		t.Fatalf("delivered %d of 30 keys", delivered)
	}
}

// TestHealRouteProbesAndPrunes verifies the explicit next-hop healing used
// by the DHT after lookup timeouts.
func TestHealRouteProbesAndPrunes(t *testing.T) {
	c := newKillableCluster(t, 8, 32)
	origin := c.nodes[0]
	// Find a key whose next hop from origin is a remote node; kill it.
	var key ID
	var hop NodeInfo
	for trial := 0; ; trial++ {
		key = HashID(fmt.Sprintf("heal-%d", trial))
		h, ok := origin.nextHop(key)
		if ok {
			hop = h
			break
		}
	}
	for i, nd := range c.nodes {
		if nd.ID() == hop.ID {
			c.eps[i].Close()
		}
	}
	healed := false
	origin.HealRoute(key, 500*time.Millisecond, func() { healed = true })
	c.sim.Run()
	if !healed {
		t.Fatal("HealRoute never completed")
	}
	if h, ok := origin.nextHop(key); ok && h.ID == hop.ID {
		t.Fatal("dead hop still in routing state after healing")
	}
}

// TestRouteAcksDetourAroundPartition: a partition between a forwarder and
// its next hop (both nodes alive) must be detected by the missing route
// ack and detoured, exactly like a dead hop.
func TestRouteAcksDetourAroundPartition(t *testing.T) {
	sim := netsim.New(71)
	nw := netsim.NewNetwork(sim, netsim.Config{
		Latency: func(a, b netsim.NodeID) time.Duration { return 10 * time.Millisecond },
	})
	mem := transport.NewMemNetwork(nw)
	clk := clock.Sim{S: sim}
	var nodes []*Node
	var netIDs []netsim.NodeID
	for i := 0; i < 12; i++ {
		id := HashID(fmt.Sprintf("part-%d", i))
		nid := nw.AddNode(1e8, 1e8)
		netIDs = append(netIDs, nid)
		nodes = append(nodes, NewNode(id, mem.Endpoint(nid), clk))
	}
	nodes[0].Bootstrap()
	for i := 1; i < len(nodes); i++ {
		nodes[i].Join(nodes[0].Addr(), nil)
		sim.Run()
	}
	for _, nd := range nodes {
		nd.Stabilize()
	}
	sim.Run()
	// Partition node 0 from half the overlay (but keep everyone alive).
	for i := 1; i < len(nodes); i += 2 {
		nw.SetPartition(netIDs[0], netIDs[i], true)
	}
	delivered := 0
	for trial := 0; trial < 15; trial++ {
		key := HashID(fmt.Sprintf("part-key-%d", trial))
		var got *Node
		for _, nd := range nodes {
			nd := nd
			nd.Register("part", func(ID, NodeInfo, []byte) { got = nd })
		}
		nodes[0].Route(key, "part", nil)
		sim.Run()
		if got != nil {
			delivered++
		}
	}
	// Every key must still be deliverable: node 0 detours through its
	// reachable half, which can reach everyone.
	if delivered != 15 {
		t.Fatalf("delivered %d of 15 keys across the partition", delivered)
	}
}
