package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6 → x=4, y=0, obj 12.
	p := NewMaximize([]float64{3, 2})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 12) {
		t.Fatalf("obj = %g, want 12", sol.Objective)
	}
	if !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSimpleMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x+y >= 10, x <= 6 → x=6, y=4, obj 24.
	p := NewMinimize([]float64{2, 3})
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 24) {
		t.Fatalf("obj = %g, want 24", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 4y s.t. x + y = 5, y >= 2 → x=3, y=2, obj 11.
	p := NewMinimize([]float64{1, 4})
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{0, 1}, GE, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 3) || !approx(sol.X[1], 2) {
		t.Fatalf("x = %v", sol.X)
	}
	if !approx(sol.Objective, 11) {
		t.Fatalf("obj = %g", sol.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewMinimize([]float64{1})
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewMaximize([]float64{1})
	p.AddConstraint([]float64{-1}, LE, 1) // x can grow forever
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// -x <= -3 means x >= 3; min x → 3.
	p := NewMinimize([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -3)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 3) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestDegenerateNoConstraints(t *testing.T) {
	// min x over x >= 0 with no constraints → 0.
	p := NewMinimize([]float64{1, 1})
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 0) {
		t.Fatalf("obj = %g", sol.Objective)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Two identical equalities should still solve.
	p := NewMinimize([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0]+sol.X[1], 2) {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestConstraintSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := NewMinimize([]float64{1, 2})
	p.AddConstraint([]float64{1}, LE, 1)
}

// TestTransportationProblem solves a classic balanced transportation
// instance with a known optimum.
func TestTransportationProblem(t *testing.T) {
	// Suppliers s1=20, s2=30; consumers d1=25, d2=25.
	// Costs: s1→d1:2 s1→d2:4 s2→d1:5 s2→d2:1.
	// Optimum: s1→d1 20, s2→d1 5, s2→d2 25 → 40+25+25 = 90.
	p := NewMinimize([]float64{2, 4, 5, 1})
	p.AddConstraint([]float64{1, 1, 0, 0}, LE, 20)
	p.AddConstraint([]float64{0, 0, 1, 1}, LE, 30)
	p.AddConstraint([]float64{1, 0, 1, 0}, EQ, 25)
	p.AddConstraint([]float64{0, 1, 0, 1}, EQ, 25)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Objective, 90) {
		t.Fatalf("obj = %g, want 90", sol.Objective)
	}
}

// TestAgainstBruteForceVertexEnumeration cross-checks random small LPs
// against enumeration of basic feasible points on a grid.
func TestAgainstBruteForce2D(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		c := []float64{float64(rng.Intn(9) + 1), float64(rng.Intn(9) + 1)}
		p := NewMinimize(c)
		type row struct {
			a, b, rhs float64
		}
		var rows []row
		// Random ≥ constraints keep the problem feasible-or-not in a
		// way brute force can check, plus a bounding box.
		for k := 0; k < 3; k++ {
			r := row{float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(20))}
			rows = append(rows, r)
			p.AddConstraint([]float64{r.a, r.b}, GE, r.rhs)
		}
		p.AddConstraint([]float64{1, 0}, LE, 30)
		p.AddConstraint([]float64{0, 1}, LE, 30)
		sol, err := p.Solve()
		// Brute force over a fine grid.
		best := math.Inf(1)
		feasible := false
		const step = 0.5
		for x := 0.0; x <= 30; x += step {
			for y := 0.0; y <= 30; y += step {
				ok := true
				for _, r := range rows {
					if r.a*x+r.b*y < r.rhs-1e-9 {
						ok = false
						break
					}
				}
				if ok {
					feasible = true
					if v := c[0]*x + c[1]*y; v < best {
						best = v
					}
				}
			}
		}
		if err == ErrInfeasible {
			if feasible {
				t.Fatalf("trial %d: solver infeasible but grid found a point", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feasible {
			continue // grid too coarse to certify; solver may be right
		}
		// The solver must do at least as well as the grid optimum.
		if sol.Objective > best+1e-6 {
			t.Fatalf("trial %d: solver obj %g worse than grid %g", trial, sol.Objective, best)
		}
	}
}
