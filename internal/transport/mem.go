package transport

import (
	"fmt"

	"rasc.dev/rasc/internal/netsim"
)

// MemNetwork binds transport endpoints to simulator network nodes. All
// message sends become simulated transmissions that consume link bandwidth
// and experience latency, jitter and loss according to the netsim
// configuration.
type MemNetwork struct {
	nw     *netsim.Network
	byAddr map[Addr]*memEndpoint
}

// NewMemNetwork wraps a simulated network.
func NewMemNetwork(nw *netsim.Network) *MemNetwork {
	return &MemNetwork{nw: nw, byAddr: make(map[Addr]*memEndpoint)}
}

// MemAddr returns the canonical address for simulator node id.
func MemAddr(id netsim.NodeID) Addr { return Addr(fmt.Sprintf("sim://%d", id)) }

// Endpoint binds an endpoint to the simulator node id. Binding the same
// node twice replaces the previous endpoint.
func (m *MemNetwork) Endpoint(id netsim.NodeID) Endpoint {
	ep := &memEndpoint{net: m, node: id, addr: MemAddr(id)}
	m.byAddr[ep.addr] = ep
	m.nw.SetHandler(id, func(from netsim.NodeID, size int, payload interface{}) {
		env, ok := payload.(memEnvelope)
		if !ok || ep.closed || ep.handler == nil {
			return
		}
		telMemIn.Inc()
		telMemInBytes.Add(uint64(size))
		ep.handler(env.from, env.msg)
	})
	m.nw.SetDropHandler(id, func(from netsim.NodeID, size int, payload interface{}) {
		env, ok := payload.(memEnvelope)
		if !ok || ep.closed || ep.dropHandler == nil {
			return
		}
		ep.dropHandler(env.from, env.msg)
	})
	return ep
}

type memEnvelope struct {
	from Addr
	msg  Message
}

type memEndpoint struct {
	net         *MemNetwork
	node        netsim.NodeID
	addr        Addr
	handler     Handler
	dropHandler Handler
	closed      bool
}

func (e *memEndpoint) Addr() Addr               { return e.addr }
func (e *memEndpoint) SetHandler(h Handler)     { e.handler = h }
func (e *memEndpoint) SetDropHandler(h Handler) { e.dropHandler = h }

func (e *memEndpoint) Send(to Addr, msg Message) error {
	if e.closed {
		return ErrClosed
	}
	dst, ok := e.net.byAddr[to]
	if !ok {
		telMemSendFails.Inc()
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	env := memEnvelope{from: e.addr, msg: msg}
	if msg.Datagram {
		if !e.net.nw.SendDroppable(e.node, dst.node, msg.WireSize(), env) {
			return ErrBacklog
		}
		telMemOut.Inc()
		telMemOutBytes.Add(uint64(msg.WireSize()))
		return nil
	}
	e.net.nw.Send(e.node, dst.node, msg.WireSize(), env)
	telMemOut.Inc()
	telMemOutBytes.Add(uint64(msg.WireSize()))
	return nil
}

func (e *memEndpoint) Close() error {
	e.closed = true
	delete(e.net.byAddr, e.addr)
	return nil
}
