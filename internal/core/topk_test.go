package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// topkInput builds a wide input: `hosts` candidates per stage with varied
// drop ratios and capacities, so pruning has something to cut.
func topkInput(hosts, rate int, chain ...string) Input {
	in := baseInput(req1(rate, chain...))
	rng := rand.New(rand.NewSource(99))
	var cands []Candidate
	for h := 0; h < hosts; h++ {
		cands = append(cands, cand(h, float64(40+rng.Intn(200))*kbit, float64(h%7)*0.01))
	}
	for _, svc := range chain {
		in.Candidates[svc] = cands
	}
	return in
}

// TestTopKZeroBitIdentical pins the fidelity contract: TopK=0 (the
// default) must produce output identical to the paper-faithful composer
// on a matrix of seeds and shapes, including scratch-pool reuse across
// calls.
func TestTopKZeroBitIdentical(t *testing.T) {
	for seed := 0; seed < 5; seed++ {
		for _, hosts := range []int{3, 8, 16} {
			in := topkInput(hosts, 10+seed, "filter", "transcode", "encrypt")
			full, err := (&MinCost{}).Compose(in)
			if err != nil {
				t.Fatalf("seed %d hosts %d: %v", seed, hosts, err)
			}
			again, err := (&MinCost{TopK: 0}).Compose(in)
			if err != nil {
				t.Fatalf("seed %d hosts %d: %v", seed, hosts, err)
			}
			if !reflect.DeepEqual(full, again) {
				t.Fatalf("seed %d hosts %d: TopK=0 output diverged:\n%+v\n%+v",
					seed, hosts, full, again)
			}
		}
	}
}

// TestTopKPrunedStillValid checks that a pruned composition satisfies the
// structural invariants and places only on the K cheapest candidates.
func TestTopKPrunedStillValid(t *testing.T) {
	in := topkInput(16, 8, "filter", "transcode")
	for _, k := range []int{1, 2, 4, 8} {
		g, err := (&MinCost{TopK: k}).Compose(in)
		if err != nil {
			t.Fatalf("TopK=%d: %v", k, err)
		}
		if err := CheckGraph(g, nil); err != nil {
			t.Fatalf("TopK=%d: %v", k, err)
		}
		perStage := map[int]map[string]bool{}
		for _, p := range g.Placements {
			if perStage[p.Stage] == nil {
				perStage[p.Stage] = map[string]bool{}
			}
			perStage[p.Stage][p.Host.ID.String()] = true
		}
		for stage, hosts := range perStage {
			if len(hosts) > k {
				t.Fatalf("TopK=%d: stage %d uses %d hosts", k, stage, len(hosts))
			}
		}
	}
}

// TestTopKCoversAllCandidatesEqualsFull verifies that K >= C routes the
// same total flow at the same cost as the full graph (the pruned graph is
// then the full graph, possibly reordered).
func TestTopKCoversAllCandidatesEqualsFull(t *testing.T) {
	in := topkInput(12, 9, "filter", "transcode")
	full, err := (&MinCost{}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := (&MinCost{TopK: 12}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	sum := func(g *ExecutionGraph) map[int]float64 {
		m := map[int]float64{}
		for _, p := range g.Placements {
			m[p.Stage] += p.Rate
		}
		return m
	}
	if !reflect.DeepEqual(sum(full), sum(pruned)) {
		t.Fatalf("per-stage totals diverged: %v vs %v", sum(full), sum(pruned))
	}
}

// TestTopKTooAggressiveRejects documents the fidelity trade-off: pruning
// below the split width the request needs makes composition fail where
// the full graph would succeed.
func TestTopKTooAggressiveRejects(t *testing.T) {
	in := baseInput(req1(30, "filter"))
	// Three hosts of 10 units each: only the 3-way split carries 30.
	in.Candidates["filter"] = []Candidate{
		cand(0, 100*kbit, 0.05),
		cand(1, 100*kbit, 0.01),
		cand(2, 100*kbit, 0.02),
	}
	if _, err := (&MinCost{}).Compose(in); err != nil {
		t.Fatalf("full graph: %v", err)
	}
	if _, err := (&MinCost{TopK: 2}).Compose(in); err == nil {
		t.Fatal("TopK=2 composed a rate only 3 hosts can carry")
	}
}

// TestComposeScratchReuseDeterministic hammers one MinCost through many
// back-to-back compositions of differently-shaped requests and checks
// each against a cold composer — the pooled scratch must never leak state
// between calls.
func TestComposeScratchReuseDeterministic(t *testing.T) {
	shapes := [][]string{
		{"filter"},
		{"filter", "transcode"},
		{"filter", "transcode", "encrypt"},
		{"transcode"},
	}
	m := &MinCost{}
	for i := 0; i < 40; i++ {
		chain := shapes[i%len(shapes)]
		in := topkInput(3+i%9, 5+i%6, chain...)
		got, err := m.Compose(in)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		want, err := (&MinCost{}).Compose(in)
		if err != nil {
			t.Fatalf("iter %d cold: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d (%v): warm scratch diverged from cold compose", i, chain)
		}
	}
}

// TestSolverOptionStillWorks exercises the scaling solver through the
// scratch path.
func TestSolverOptionStillWorks(t *testing.T) {
	in := topkInput(8, 10, "filter", "transcode")
	g, err := (&MinCost{Solver: "scaling"}).Compose(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckGraph(g, nil); err != nil {
		t.Fatal(err)
	}
}
