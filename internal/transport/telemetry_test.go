package transport

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTransportMetricsCatalogue pins the rasc_transport_* family catalogue
// (# HELP / # TYPE lines) exposed on /metrics. Values are process-global
// and order-dependent across tests, so the golden captures the catalogue,
// not samples.
func TestTransportMetricsCatalogue(t *testing.T) {
	// Materialize the breaker-state series: drive one peer's breaker open
	// through a hopeless endpoint.
	inner := newFakeEP()
	inner.setFails(-1)
	cfg := fastResilient()
	cfg.MaxRetries = 1
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenTimeout: time.Hour}
	r := NewResilient(inner, cfg)
	defer r.Close()
	if err := r.Send("peer", Message{Type: "m"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return r.State("peer") == BreakerOpen })
	// And one injected fault, so the chaos counter family has a child.
	c := NewChaos(newFakeEP(), ChaosConfig{Seed: 1, Drop: 1}, nil)
	c.Send("peer", Message{Type: "m"})

	var got strings.Builder
	for _, line := range strings.Split(telemetry.Default().String(), "\n") {
		if strings.HasPrefix(line, "# HELP rasc_transport_") || strings.HasPrefix(line, "# TYPE rasc_transport_") {
			got.WriteString(line)
			got.WriteString("\n")
		}
	}
	path := filepath.Join("testdata", "transport_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got.String() != string(want) {
		t.Errorf("transport catalogue mismatch\n--- got ---\n%s\n--- want ---\n%s", got.String(), want)
	}

	// Breaker and chaos series must be visible with their labels.
	exp := telemetry.Default().String()
	for _, series := range []string{
		`rasc_transport_breaker_peers{state="closed"}`,
		`rasc_transport_breaker_peers{state="open"}`,
		`rasc_transport_breaker_transitions_total{state="open"}`,
		`rasc_transport_dropped_total{cause="retries-exhausted"}`,
		`rasc_transport_chaos_injected_total{fault="drop"}`,
		"rasc_transport_queue_depth",
		"rasc_transport_batch_size_bucket",
		"rasc_transport_send_latency_seconds_bucket",
		"rasc_transport_retries_total",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("/metrics missing series %q", series)
		}
	}
}
