package stream

import "sort"

// flowCounters accumulates one engine's per-substream data-plane counters.
// Sources charge emissions, components charge forwards, and every drop
// cause (queue-full, laxity, uplink, downlink — including source uplink
// drops, which the legacy diagnostic counters never counted) charges the
// dropped fields, so emitted = delivered + dropped + in-flight holds per
// substream across a deployment.
type flowCounters struct {
	emittedUnits   int64
	emittedBytes   int64
	forwardedUnits int64
	forwardedBytes int64
	droppedUnits   int64
	droppedBytes   int64
}

// flowFor returns the engine's counters for a request substream, creating
// them on first use. Counters survive StopRequest (like sinks) so the
// statistics of a finished application remain readable.
func (e *Engine) flowFor(req string, substream int) *flowCounters {
	key := sinkKey(req, substream)
	f, ok := e.flows[key]
	if !ok {
		f = &flowCounters{}
		e.flows[key] = f
	}
	return f
}

// Throughput is one engine's typed data-plane snapshot for a request
// substream: how many units (and bytes) its local source emitted, its
// components forwarded downstream, its runtime dropped for any cause, and
// its local sink delivered. It replaces the ad-hoc EmittedUnits /
// EmittedBytes / Sink accessor trio; aggregate engine snapshots with
// Accumulate for a deployment-wide view.
type Throughput struct {
	Req       string `json:"req"`
	Substream int    `json:"substream"`

	EmittedUnits   int64 `json:"emittedUnits"`
	EmittedBytes   int64 `json:"emittedBytes"`
	ForwardedUnits int64 `json:"forwardedUnits"`
	ForwardedBytes int64 `json:"forwardedBytes"`
	DroppedUnits   int64 `json:"droppedUnits"`
	DroppedBytes   int64 `json:"droppedBytes"`
	DeliveredUnits int64 `json:"deliveredUnits"`
	DeliveredBytes int64 `json:"deliveredBytes"`
}

// Accumulate adds another engine's snapshot of the same substream into t.
func (t *Throughput) Accumulate(o Throughput) {
	t.EmittedUnits += o.EmittedUnits
	t.EmittedBytes += o.EmittedBytes
	t.ForwardedUnits += o.ForwardedUnits
	t.ForwardedBytes += o.ForwardedBytes
	t.DroppedUnits += o.DroppedUnits
	t.DroppedBytes += o.DroppedBytes
	t.DeliveredUnits += o.DeliveredUnits
	t.DeliveredBytes += o.DeliveredBytes
}

// Throughput returns this engine's data-plane snapshot for one request
// substream. Every field is local to this engine: the origin engine holds
// the emitted (and usually delivered) counters while intermediate hosts
// contribute forwards and drops.
func (e *Engine) Throughput(req string, substream int) Throughput {
	t := Throughput{Req: req, Substream: substream}
	if f, ok := e.flows[sinkKey(req, substream)]; ok {
		t.EmittedUnits = f.emittedUnits
		t.EmittedBytes = f.emittedBytes
		t.ForwardedUnits = f.forwardedUnits
		t.ForwardedBytes = f.forwardedBytes
		t.DroppedUnits = f.droppedUnits
		t.DroppedBytes = f.droppedBytes
	}
	if s := e.sinks[sinkKey(req, substream)]; s != nil {
		t.DeliveredUnits = s.Received
		t.DeliveredBytes = s.DeliveredBytes
	}
	return t
}

// Throughputs returns a snapshot for every substream this engine has
// touched (source, component or sink), sorted by request then substream.
func (e *Engine) Throughputs() []Throughput {
	seen := make(map[string]Throughput, len(e.flows)+len(e.sinks))
	add := func(req string, substream int) {
		k := sinkKey(req, substream)
		if _, ok := seen[k]; !ok {
			seen[k] = e.Throughput(req, substream)
		}
	}
	for _, s := range e.sources {
		add(s.req, s.substream)
	}
	for _, s := range e.sinks {
		add(s.Req, s.Substream)
	}
	for _, c := range e.comps {
		add(c.msg.Req, c.msg.Substream)
	}
	out := make([]Throughput, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Req != out[j].Req {
			return out[i].Req < out[j].Req
		}
		return out[i].Substream < out[j].Substream
	})
	return out
}

// DataPlaneStatus is the engine's data-plane posture for introspection:
// the effective configuration, per-shard queue depths, open batch state
// and the per-substream throughput snapshots.
type DataPlaneStatus struct {
	Config          DataPlaneConfig `json:"config"`
	ShardQueueLens  []int           `json:"shardQueueLens"`
	OpenBatches     int             `json:"openBatches"`
	OpenBatchUnits  int             `json:"openBatchUnits"`
	DropsQueueFull  int64           `json:"dropsQueueFull"`
	DropsLaxity     int64           `json:"dropsLaxity"`
	DropsUplink     int64           `json:"dropsUplink"`
	DropsDownlink   int64           `json:"dropsDownlink"`
	Throughputs     []Throughput    `json:"throughputs,omitempty"`
	SchedPolicyName string          `json:"schedPolicy"`
}

// DataPlaneStatus snapshots the engine's data plane. Like every engine
// method it must run on the engine's loop.
func (e *Engine) DataPlaneStatus() DataPlaneStatus {
	st := DataPlaneStatus{
		Config:          e.cfg.DataPlane,
		ShardQueueLens:  make([]int, len(e.shards)),
		OpenBatches:     len(e.batches),
		DropsQueueFull:  e.DropsQueueFull,
		DropsLaxity:     e.DropsLaxity,
		DropsUplink:     e.DropsUplink,
		DropsDownlink:   e.DropsDownlink,
		Throughputs:     e.Throughputs(),
		SchedPolicyName: e.shards[0].queue.Name(),
	}
	for i, sh := range e.shards {
		st.ShardQueueLens[i] = sh.queue.Len()
	}
	for _, b := range e.batches {
		st.OpenBatchUnits += len(b.units)
	}
	return st
}
