package core

import (
	"fmt"
	"sort"
	"time"

	"rasc.dev/rasc/internal/overlay"
)

// Random is the paper's first baseline: each service of each substream is
// placed, whole, on a uniformly random host that still has the bandwidth
// capacity to carry the substream's full rate. It never splits a service
// across instances.
type Random struct{}

// Name implements Composer.
func (Random) Name() string { return "random" }

// Compose implements Composer.
func (Random) Compose(in Input) (*ExecutionGraph, error) {
	defer observeCompose(time.Now())
	defer observeStats(in.Stats, time.Now())
	if in.Rand == nil {
		return nil, fmt.Errorf("core: Random composer needs Input.Rand")
	}
	return composeSingleInstance(in, "random", func(stage int, service string, feasible []Candidate) Candidate {
		return feasible[in.Rand.Intn(len(feasible))]
	})
}

// Greedy is the paper's second baseline: it iterates through the services
// and places each on the feasible node with the smallest drop ratio. The
// drop statistics are read once per composition, so the algorithm keeps
// stacking components onto the currently-best nodes until their capacity
// is exhausted — exactly the failure mode §4.2 describes.
type Greedy struct{}

// Name implements Composer.
func (Greedy) Name() string { return "greedy" }

// Compose implements Composer.
func (Greedy) Compose(in Input) (*ExecutionGraph, error) {
	defer observeCompose(time.Now())
	defer observeStats(in.Stats, time.Now())
	return composeSingleInstance(in, "greedy", func(stage int, service string, feasible []Candidate) Candidate {
		best := feasible[0]
		for _, c := range feasible[1:] {
			if c.Report.DropRatio < best.Report.DropRatio ||
				(c.Report.DropRatio == best.Report.DropRatio && c.Info.ID.Cmp(best.Info.ID) < 0) {
				best = c
			}
		}
		return best
	})
}

// composeSingleInstance implements the shared skeleton of both baselines:
// one component per service, full rate, bandwidth-capacity checked, host
// capacities decremented as components are placed.
func composeSingleInstance(in Input, name string, pick func(stage int, service string, feasible []Candidate) Candidate) (*ExecutionGraph, error) {
	if err := in.Request.Validate(); err != nil {
		return nil, err
	}
	g := &ExecutionGraph{
		Request:  in.Request,
		Composer: name,
		Source:   in.Source,
		Dest:     in.Dest,
	}
	caps := newCapTracker()
	caps.seed(in.Source.ID, int(in.SourceReport.AvailOut()*in.headroom()/unitBits(in.Request)))
	caps.seed(in.Dest.ID, int(in.DestReport.AvailIn()*in.headroom()/unitBits(in.Request)))
	for _, cands := range in.Candidates {
		for _, c := range cands {
			caps.seed(c.Info.ID, maxRateUnits(c.Report, in))
		}
	}
	for l, ss := range in.Request.Substreams {
		rate := ss.Rate
		if caps.get(in.Source.ID) < rate {
			return nil, fmt.Errorf("%w: source uplink exhausted", ErrNoFeasiblePlacement)
		}
		if caps.get(in.Dest.ID) < rate {
			return nil, fmt.Errorf("%w: destination downlink exhausted", ErrNoFeasiblePlacement)
		}
		prev := in.Source
		prevStage := -1
		for j, svc := range ss.Services {
			cands := in.Candidates[svc]
			// Deterministic candidate order before filtering.
			ordered := make([]Candidate, len(cands))
			copy(ordered, cands)
			sort.Slice(ordered, func(a, b int) bool {
				return ordered[a].Info.ID.Cmp(ordered[b].Info.ID) < 0
			})
			var feasible []Candidate
			for _, c := range ordered {
				if caps.get(c.Info.ID) >= rate {
					feasible = append(feasible, c)
				}
			}
			if len(feasible) == 0 {
				return nil, fmt.Errorf("%w: no host with capacity %d units/sec for %q (substream %d)",
					ErrNoFeasiblePlacement, rate, svc, l)
			}
			chosen := pick(j, svc, feasible)
			g.Placements = append(g.Placements, Placement{
				Substream: l, Stage: j, Service: svc, Host: chosen.Info, Rate: float64(rate),
			})
			g.Edges = append(g.Edges, Edge{
				Substream: l, FromStage: prevStage, ToStage: j,
				From: prev, To: chosen.Info, Rate: float64(rate),
			})
			caps.consume(chosen.Info.ID, rate)
			prev = chosen.Info
			prevStage = j
		}
		g.Edges = append(g.Edges, Edge{
			Substream: l, FromStage: prevStage, ToStage: len(ss.Services),
			From: prev, To: in.Dest, Rate: float64(rate),
		})
		caps.consume(in.Source.ID, rate)
		caps.consume(in.Dest.ID, rate)
	}
	if in.Stats != nil {
		in.Stats.Feasible = true
	}
	return g, nil
}

// hostSet returns the distinct hosts used by an execution graph
// (diagnostics for tests and reports).
func hostSet(g *ExecutionGraph) map[overlay.ID]bool {
	out := make(map[overlay.ID]bool)
	for _, p := range g.Placements {
		out[p.Host.ID] = true
	}
	return out
}

// NumHosts returns how many distinct hosts the graph's components run on.
func NumHosts(g *ExecutionGraph) int { return len(hostSet(g)) }
