package deploy

import (
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
)

func TestNewSystemPlacement(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 16, Seed: 1})
	if len(s.Engines) != 16 || len(s.Dirs) != 16 || len(s.Stores) != 16 {
		t.Fatal("system components missing")
	}
	for i, svcs := range s.Placement {
		if len(svcs) != 5 {
			t.Fatalf("node %d announced %d services, want 5", i, len(svcs))
		}
		seen := map[string]bool{}
		for _, svc := range svcs {
			if seen[svc] {
				t.Fatalf("node %d announced %q twice", i, svc)
			}
			seen[svc] = true
		}
	}
}

func TestNewSystemServicesDiscoverable(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 16, Seed: 2})
	// Count providers for each service through lookups from node 0.
	total := 0
	for _, svc := range services.Standard().Names() {
		var hosts []overlay.NodeInfo
		s.Dirs[0].Lookup(svc, 5*time.Second, func(h []overlay.NodeInfo, err error) {
			if err != nil {
				t.Errorf("%s: %v", svc, err)
			}
			hosts = h
		})
		s.Sim.Run()
		total += len(hosts)
	}
	if total != 16*5 {
		t.Fatalf("discoverable registrations = %d, want 80", total)
	}
}

func TestNewSystemHeterogeneousCPU(t *testing.T) {
	s := NewSystem(SystemOptions{Nodes: 8, Seed: 3, HeterogeneousCPU: true})
	speeds := map[float64]bool{}
	for _, e := range s.Engines {
		speeds[e.Config().SpeedFactor] = true
	}
	if len(speeds) < 4 {
		t.Fatalf("expected varied speed factors, got %d distinct", len(speeds))
	}
	s2 := NewSystem(SystemOptions{Nodes: 8, Seed: 3})
	for _, e := range s2.Engines {
		if e.Config().SpeedFactor != 1 {
			t.Fatal("homogeneous system must use speed factor 1")
		}
	}
}

func TestNewSystemServiceSubset(t *testing.T) {
	s := NewSystem(SystemOptions{
		Nodes:           6,
		Seed:            4,
		ServiceNames:    []string{"filter", "encrypt"},
		ServicesPerNode: 2,
	})
	for i, svcs := range s.Placement {
		if len(svcs) != 2 {
			t.Fatalf("node %d announced %v", i, svcs)
		}
	}
}

func TestNewSystemDeterministicPlacement(t *testing.T) {
	a := NewSystem(SystemOptions{Nodes: 8, Seed: 5})
	b := NewSystem(SystemOptions{Nodes: 8, Seed: 5})
	for i := range a.Placement {
		if len(a.Placement[i]) != len(b.Placement[i]) {
			t.Fatal("placement diverged")
		}
		for j := range a.Placement[i] {
			if a.Placement[i][j] != b.Placement[i][j] {
				t.Fatal("placement diverged")
			}
		}
	}
}

// failoverRecompositionDelay composes a single-service request whose
// component lands on a remote node, enables origin-side adaptation with a
// long check interval, kills the hosting node, and returns how much
// virtual time passes before the origin re-composes.
func failoverRecompositionDelay(t *testing.T, withGossip bool) time.Duration {
	t.Helper()
	s := NewSystem(SystemOptions{
		Nodes:        16,
		Seed:         7,
		EnableGossip: withGossip,
		// Above the topology's worst inter-site RTT so healthy members
		// are never falsely suspected.
		Gossip: gossip.Config{ProbeTimeout: 500 * time.Millisecond},
	})
	const origin = 0
	offered := map[string]bool{}
	for _, svc := range s.Placement[origin] {
		offered[svc] = true
	}
	var svc string
	for _, name := range services.Standard().Names() {
		if !offered[name] {
			svc = name
			break
		}
	}
	if svc == "" {
		t.Fatal("origin offers every service; cannot force a remote placement")
	}
	req := spec.Request{
		ID:         "failover",
		UnitBytes:  1250,
		Substreams: []spec.Substream{{Services: []string{svc}, Rate: 5}},
	}
	var graph *core.ExecutionGraph
	done := false
	s.Engines[origin].Submit(req, &core.MinCost{}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		graph, done = g, true
	})
	deadline := s.Sim.Now() + 60*time.Second
	for !done && s.Sim.Now() < deadline {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		t.Fatal("composition did not complete")
	}
	s.Engines[origin].EnableAdaptation(stream.AdaptationConfig{Interval: 15 * time.Second})
	victim := -1
	for _, p := range graph.Placements {
		for i, n := range s.Nodes {
			if i != origin && n.ID() == p.Host.ID {
				victim = i
			}
		}
	}
	if victim < 0 {
		t.Fatal("no remote placement to kill")
	}
	// Stream briefly so pre-failure delivery statistics exist.
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	s.Kill(victim)
	killedAt := s.Sim.Now()
	stop := killedAt + 120*time.Second
	for s.Engines[origin].Recompositions() == 0 && s.Sim.Now() < stop {
		s.Sim.RunUntil(s.Sim.Now() + 250*time.Millisecond)
	}
	if s.Engines[origin].Recompositions() == 0 {
		t.Fatal("origin never re-composed after the host was killed")
	}
	return s.Sim.Now() - killedAt
}

// failoverDipDuration builds a gossip-enabled deployment with the
// adaptation control plane armed, submits a two-substream application
// whose substreams land on disjoint remote hosts, kills the host carrying
// substream 0, and returns the cumulative virtual time the application's
// total delivered rate spends below 30% of its healthy level over the
// 40 seconds after the kill. The periodic check interval is far beyond
// the horizon, so gossip member-dead detection is the trigger in both
// modes; only the reallocation strategy differs. The threshold sits below
// the healthy substream's share, so time accrues only while delivery of
// BOTH substreams is disturbed — which is exactly what teardown-recompose
// causes and incremental reallocation avoids.
func failoverDipDuration(t *testing.T, fullOnly bool) time.Duration {
	t.Helper()
	adapt := stream.AdaptationConfig{Interval: 10 * time.Minute}
	adapt.Control.DisableIncremental = fullOnly
	s := NewSystem(SystemOptions{
		Nodes:        16,
		Seed:         7,
		EnableGossip: true,
		Gossip:       gossip.Config{ProbeTimeout: 500 * time.Millisecond},
		Adaptation:   &adapt,
	})
	const origin = 0
	// Two services the origin does not offer, so both substreams land on
	// remote hosts.
	offered := map[string]bool{}
	for _, svc := range s.Placement[origin] {
		offered[svc] = true
	}
	var remote []string
	for _, name := range services.Standard().Names() {
		if !offered[name] {
			remote = append(remote, name)
		}
	}
	if len(remote) < 2 {
		t.Fatal("origin offers too many services; cannot force remote placements")
	}
	req := spec.Request{
		ID:        "dip",
		UnitBytes: 1250,
		Substreams: []spec.Substream{
			{Services: []string{remote[0]}, Rate: 10},
			{Services: []string{remote[1]}, Rate: 10},
		},
	}
	var graph *core.ExecutionGraph
	done := false
	s.Engines[origin].Submit(req, &core.MinCost{}, 10*time.Second, func(g *core.ExecutionGraph, err error) {
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		graph, done = g, true
	})
	deadline := s.Sim.Now() + 60*time.Second
	for !done && s.Sim.Now() < deadline {
		s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
	}
	if !done {
		t.Fatal("composition did not complete")
	}
	// The victim: the host carrying substream 0's largest rate share. It
	// must not host any substream-1 placement, or the comparison would not
	// isolate the teardown of the healthy substream.
	byID := map[overlay.ID]int{}
	for i, n := range s.Nodes {
		byID[n.ID()] = i
	}
	victim, victimRate := -1, 0.0
	for _, p := range graph.Placements {
		if p.Substream == 0 && byID[p.Host.ID] != origin && p.Rate > victimRate {
			victim, victimRate = byID[p.Host.ID], p.Rate
		}
	}
	if victim < 0 {
		t.Fatal("no remote placement to kill")
	}
	for _, p := range graph.Placements {
		if p.Substream == 1 && byID[p.Host.ID] == victim {
			t.Fatalf("substreams share host %d; pick another seed", victim)
		}
	}
	// read returns per-substream delivered-unit counts, surviving the sink
	// replacement a full recompose performs.
	read := func(l int) int64 {
		if sk := s.Engines[origin].Sink(req.ID, l); sk != nil {
			return sk.Received
		}
		return 0
	}
	// Warm up, then measure the healthy per-window rate.
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)
	const window = 250 * time.Millisecond
	pre0, pre1 := read(0), read(1)
	s.Sim.RunUntil(s.Sim.Now() + 4*time.Second)
	windows := 4 * float64(time.Second) / float64(window)
	perWindow := float64(read(0)-pre0+read(1)-pre1) / windows
	if perWindow <= 0 {
		t.Fatal("no delivery before the kill")
	}
	threshold := 0.3 * perWindow

	s.Kill(victim)
	killedAt := s.Sim.Now()
	prev := [2]int64{read(0), read(1)}
	var below time.Duration
	horizon := killedAt + 40*time.Second
	for s.Sim.Now() < horizon {
		s.Sim.RunUntil(s.Sim.Now() + window)
		var delta int64
		for l := 0; l < 2; l++ {
			cur := read(l)
			d := cur - prev[l]
			if d < 0 {
				d = cur // the sink was replaced; count from its birth
			}
			prev[l] = cur
			delta += d
		}
		if float64(delta) < threshold {
			below += window
		}
	}
	// Both modes must have fully recovered by the end of the horizon.
	r0, r1 := read(0), read(1)
	s.Sim.RunUntil(s.Sim.Now() + 4*time.Second)
	postWindow := float64(read(0)-r0+read(1)-r1) / windows
	if postWindow < 0.7*perWindow {
		t.Fatalf("delivery never recovered: %.2f units/window post-failover, %.2f healthy",
			postWindow, perWindow)
	}
	if fullOnly && s.Engines[origin].Reallocations() != 0 {
		t.Fatal("full-only mode took the incremental path")
	}
	if !fullOnly {
		if s.Engines[origin].Reallocations() == 0 {
			t.Fatal("incremental mode recovered without a reallocation")
		}
	}
	return below
}

// TestIncrementalReallocationShortensFailoverDip is the acceptance check
// for the adaptation control plane: under an identical seed and failure,
// the delivered-rate dip with incremental reallocation must be strictly
// shorter than with teardown-and-recompose. Incremental reallocation
// re-solves only the killed host's substream and leaves the healthy one
// streaming, so total delivery never collapses; the full recompose tears
// both substreams down and rebuilds them, silencing the application
// entirely while it does.
func TestIncrementalReallocationShortensFailoverDip(t *testing.T) {
	incremental := failoverDipDuration(t, false)
	full := failoverDipDuration(t, true)
	if full == 0 {
		t.Fatal("full recompose produced no deep dip; the comparison is vacuous")
	}
	if incremental >= full {
		t.Fatalf("incremental dip %v, full-recompose dip %v; want incremental strictly shorter",
			incremental, full)
	}
	t.Logf("deep-dip time after kill: incremental=%v full-recompose=%v", incremental, full)
}

// TestGossipFailoverBeatsDegradationDetection is the acceptance check for
// the membership subsystem: a node failure detected by the gossip failure
// detector must trigger recomposition of the affected application
// strictly earlier (in virtual time) than the periodic delivery-rate
// degradation check alone.
func TestGossipFailoverBeatsDegradationDetection(t *testing.T) {
	gossipDelay := failoverRecompositionDelay(t, true)
	degradationDelay := failoverRecompositionDelay(t, false)
	if gossipDelay >= degradationDelay {
		t.Fatalf("gossip recomposed after %v, degradation detection after %v; want gossip strictly earlier",
			gossipDelay, degradationDelay)
	}
	t.Logf("recomposition delay after kill: gossip=%v degradation-only=%v", gossipDelay, degradationDelay)
}
