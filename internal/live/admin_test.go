package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// adminGet fetches a path from the admin server, retrying briefly while
// the goroutine serving the listener comes up.
func adminGet(t *testing.T, adm *AdminServer, path string) (int, string) {
	t.Helper()
	var lastErr error
	for i := 0; i < 20; i++ {
		resp, err := http.Get("http://" + adm.Addr() + path)
		if err != nil {
			lastErr = err
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}
	t.Fatalf("GET %s: %v", path, lastErr)
	return 0, ""
}

func TestAdminEndpoint(t *testing.T) {
	nodes := startCluster(t, 2, [][]string{{"filter"}, {"transcode"}})
	adm, err := nodes[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adm.Close() })

	code, body := adminGet(t, adm, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, body %s", code, body)
	}
	var st healthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if !st.Joined || !st.Listener || st.Peers < 1 {
		t.Fatalf("healthz = %+v, want joined with peers", st)
	}

	code, body = adminGet(t, adm, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	// One series from each instrumented subsystem must be present: the
	// scheduler registers at engine construction, transport counts the
	// join/stabilize traffic, and the scrape itself assembles a monitor
	// report.
	for _, want := range []string{
		"# TYPE rasc_sched_scheduled_total counter",
		`rasc_sched_scheduled_total{policy="llf"}`,
		"# TYPE rasc_stream_dropped_total counter",
		`rasc_stream_dropped_total{cause="laxity"}`,
		"# TYPE rasc_transport_messages_total counter",
		`rasc_transport_messages_total{transport="tcp",direction="in"}`,
		"# TYPE rasc_monitor_reports_total counter",
		"rasc_monitor_reports_total",
		"# TYPE rasc_live_active_requests gauge",
		"rasc_live_compose_attempts_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// pprof must answer on the same port.
	code, _ = adminGet(t, adm, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestHealthzBeforeListenerDeath(t *testing.T) {
	nodes := startCluster(t, 1, nil)
	adm, err := nodes[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adm.Close() })
	if code, _ := adminGet(t, adm, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d before close", code)
	}
	// Kill the protocol endpoint: liveness must go unhealthy while the
	// admin port still answers.
	nodes[0].ep.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get("http://" + adm.Addr() + "/healthz")
		if err != nil {
			t.Fatalf("admin died with the protocol listener: %v", err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz still %d after listener close", code)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestHealthzGossipSummary(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	adm, err := nodes[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adm.Close() })

	// The gossip view is seeded from the leaf set at startup, so all three
	// members appear alive immediately; digest dissemination needs protocol
	// round trips, so poll briefly for a non-negative age.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := adminGet(t, adm, "/healthz")
		var st healthStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		if st.Gossip == nil {
			t.Fatalf("healthz %q missing gossip summary", body)
		}
		if st.Gossip.Alive == 3 && st.Gossip.Suspect == 0 && st.Gossip.Dead == 0 &&
			st.Gossip.OldestDigestAgeMs >= 0 {
			if !strings.Contains(body, `"gossip"`) || !strings.Contains(body, `"oldestDigestAgeMs"`) {
				t.Fatalf("healthz body %q missing gossip JSON fields", body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip summary never converged: %+v", st.Gossip)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
