package stream_test

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
)

// engineView snapshots every engine's externally visible state: hosted
// component counts, origin application counts, and the full composition
// snapshots as JSON.
func engineView(t *testing.T, s *deploy.System) string {
	t.Helper()
	type view struct {
		Components int
		Origins    int
		Comps      json.RawMessage
	}
	views := make([]view, len(s.Engines))
	for i, e := range s.Engines {
		b, err := json.Marshal(e.CompositionSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		views[i] = view{Components: e.Components(), Origins: e.ActiveRequests(), Comps: b}
	}
	out, err := json.Marshal(views)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRejectedSubmitLeavesStateUntouched is the admission-accounting
// regression: a submit the gate turns away must cost no RPC and leave
// every engine's view bit-identical — the running tenant keeps its full
// allocation.
func TestRejectedSubmitLeavesStateUntouched(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 12, Seed: 31,
		// 120 Kbps budget: fits the 100 Kbps incumbent whole, and a
		// best-effort newcomer cannot displace it. No queue: infeasible
		// admissions are rejected outright.
		Tenancy: &tenant.Config{CapacityBps: 1.2e5, QueueCapacity: -1},
	})
	r1 := simpleRequest("ten-r1", 10, "filter", "transcode")
	submit(t, s, 0, r1, &core.MinCost{})
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)

	before := engineView(t, s)
	beforeTotals := s.Gate.Totals()

	r2 := simpleRequest("ten-r2", 20, "filter")
	r2.Priority = spec.BestEffort
	var gotErr error
	done := false
	s.Engines[1].Submit(r2, &core.MinCost{}, rpcTimeout, func(_ *core.ExecutionGraph, err error) {
		done, gotErr = true, err
	})
	runUntilDone(t, s, &done)
	if !errors.Is(gotErr, tenant.ErrAdmissionRejected) {
		t.Fatalf("submit error = %v, want ErrAdmissionRejected", gotErr)
	}
	var aerr *tenant.AdmissionError
	if !errors.As(gotErr, &aerr) || aerr.App != "ten-r2" {
		t.Fatalf("error not a typed AdmissionError for ten-r2: %v", gotErr)
	}
	s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)

	if after := engineView(t, s); after != before {
		t.Errorf("rejected submit changed engine state:\nbefore: %s\nafter:  %s", before, after)
	}
	afterTotals := s.Gate.Totals()
	if afterTotals.Admitted != beforeTotals.Admitted || afterTotals.Queued != 0 {
		t.Errorf("gate totals moved: before %+v after %+v", beforeTotals, afterTotals)
	}
	if afterTotals.Rejections != beforeTotals.Rejections+1 {
		t.Errorf("rejections = %d, want %d", afterTotals.Rejections, beforeTotals.Rejections+1)
	}
	if s.Gate.Has("ten-r2") {
		t.Error("gate still tracks the rejected application")
	}
	if cap, ok := s.Gate.CapBps("ten-r1"); !ok || cap < r1.BitsPerSecond(r1.TotalRate())-1 {
		t.Errorf("incumbent cap disturbed: %f (ok=%v)", cap, ok)
	}
}

// TestFailedInstantiationRollsBack is the capacity-accounting regression
// for the instantiation path: when composition places a component on a
// host that dies before acking, the partial instantiation is rolled back
// — hosts that acked drop their components, the origin registers
// nothing, and the tenant's admission is released.
func TestFailedInstantiationRollsBack(t *testing.T) {
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes: 12, Seed: 32,
		// Gossip-disseminated stats: composition keeps trusting a
		// just-killed host's digest until the failure detector catches
		// up, which is what steers a placement onto it.
		EnableGossip: true,
		Tenancy:      &tenant.Config{CapacityBps: 1e6},
	})
	// Let the membership protocol disseminate the initial digests.
	s.Sim.RunUntil(s.Sim.Now() + 12*time.Second)

	// Pick a service the origin does not offer, and one it could reach on
	// surviving hosts.
	offered := func(node int, svc string) bool {
		for _, sv := range s.Placement[node] {
			if sv == svc {
				return true
			}
		}
		return false
	}
	victim := ""
	for _, svc := range []string{"filter", "transcode", "aggregate", "encrypt", "compress"} {
		if !offered(0, svc) {
			victim = svc
			break
		}
	}
	if victim == "" {
		t.Skip("origin offers every probe service at this seed")
	}
	// Kill every host offering the victim service: the composer must
	// place it on a dead host, and that instantiation must time out.
	for i := 1; i < len(s.Engines); i++ {
		if offered(i, victim) {
			s.Kill(i)
		}
	}
	if offered(0, victim) {
		t.Fatal("origin offers the victim service; the local placement cannot fail")
	}

	before := make([]int, len(s.Engines))
	for i, e := range s.Engines {
		before[i] = e.Components()
	}

	req := simpleRequest("ten-roll", 5, victim)
	var gotErr error
	done := false
	s.Engines[0].Submit(req, &core.MinCost{}, rpcTimeout, func(_ *core.ExecutionGraph, err error) {
		done, gotErr = true, err
	})
	runUntilDone(t, s, &done)
	if gotErr == nil {
		t.Fatal("submit succeeded with every candidate host dead")
	}
	s.Sim.RunUntil(s.Sim.Now() + 5*time.Second)

	for i, e := range s.Engines {
		if e.Components() != before[i] {
			t.Errorf("engine %d holds %d components after the failed submit, had %d", i, e.Components(), before[i])
		}
	}
	if s.Engines[0].ActiveRequests() != 0 {
		t.Errorf("origin still tracks %d applications", s.Engines[0].ActiveRequests())
	}
	if s.Gate.Has("ten-roll") {
		t.Error("gate still holds the failed application's admission")
	}
	if tt := s.Gate.Totals(); tt.Admitted != 0 {
		t.Errorf("gate reports %d admitted tenants, want 0", tt.Admitted)
	}
}
