package live

import "rasc.dev/rasc/internal/telemetry"

// Runtime telemetry for the live node (metric catalogue rasc_live_*).
var (
	telComposeAttempts = telemetry.Default().Counter(
		"rasc_live_compose_attempts_total",
		"Composition attempts submitted from this node.")
	telComposeFailures = telemetry.Default().Counter(
		"rasc_live_compose_failures_total",
		"Composition attempts that failed (discovery, composition or instantiation).")
	telActiveRequests = telemetry.Default().Gauge(
		"rasc_live_active_requests",
		"Requests originated at this node that are currently active.")
)
