package tenant

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/trace"
)

// Sentinel errors for admission verdicts; match them with errors.Is. The
// concrete error carried by a Decision is an *AdmissionError wrapping one
// of these.
var (
	// ErrAdmissionRejected reports that the gate turned the application
	// away: admitting it would push a running tenant of equal or higher
	// priority below its guaranteed share, and the admission queue is
	// full (or disabled).
	ErrAdmissionRejected = errors.New("tenant: admission rejected")
	// ErrAdmissionQueued reports that the application was parked in the
	// admission queue; it will be submitted automatically when capacity
	// frees up.
	ErrAdmissionQueued = errors.New("tenant: admission queued")
)

// AdmissionError is the typed verdict of a failed admission.
type AdmissionError struct {
	App      string
	Priority spec.Priority
	// Queued distinguishes a parked application (retried automatically)
	// from a rejected one.
	Queued bool
	// DemandBps is the application's requested aggregate rate;
	// CapacityBps the gate's budget at decision time.
	DemandBps   float64
	CapacityBps float64
	Reason      string
}

func (e *AdmissionError) Error() string {
	verb := "rejected"
	if e.Queued {
		verb = "queued"
	}
	return fmt.Sprintf("tenant: %s %s (%s, %.0f bps of %.0f bps budget): %s",
		e.App, verb, e.Priority, e.DemandBps, e.CapacityBps, e.Reason)
}

// Unwrap makes errors.Is(err, ErrAdmissionRejected/ErrAdmissionQueued)
// work through the typed error.
func (e *AdmissionError) Unwrap() error {
	if e.Queued {
		return ErrAdmissionQueued
	}
	return ErrAdmissionRejected
}

// State is a tenant's admission state.
type State int

const (
	// StateAdmitted: the tenant holds a fair-share allocation and may run.
	StateAdmitted State = iota
	// StateQueued: the tenant waits in the admission queue.
	StateQueued
	// StateRejected: the tenant was turned away (not retained by the gate).
	StateRejected
)

// String returns the snake-free label used in snapshots and telemetry.
func (s State) String() string {
	switch s {
	case StateAdmitted:
		return "admitted"
	case StateQueued:
		return "queued"
	case StateRejected:
		return "rejected"
	}
	return "unknown"
}

// Owner receives the gate's asynchronous verdicts about a tenant it
// admitted. Implementations must not call back into the gate
// synchronously (the stream engine hops onto its own loop first).
type Owner interface {
	// TenantCapChanged reports that a fairness recompute moved the
	// tenant's rate cap (bits/sec); the owner should reallocate the
	// application to the new cap.
	TenantCapChanged(app string, capBps float64)
	// TenantPreempted reports that contention pushed the tenant out: the
	// owner should tear the application down; the gate holds it in the
	// admission queue.
	TenantPreempted(app string)
	// TenantPromoted reports that a queued tenant now fits: the owner
	// should submit the application.
	TenantPromoted(app string)
}

// Config parameterizes a Gate. The zero value is usable but admits
// nothing (zero capacity); set CapacityBps.
type Config struct {
	// CapacityBps is the aggregate cluster capacity the gate budgets, in
	// bits/sec. The gate's feasibility probe is a ledger against this
	// budget — cheap (no solver run), with the min-cost composer behind
	// it still the precise check (a composition that fails releases the
	// admission).
	CapacityBps float64
	// MaxTenants bounds concurrently admitted applications (0 =
	// unlimited).
	MaxTenants int
	// QueueCapacity bounds the admission queue (default 16; negative
	// disables queuing, so every infeasible admission is rejected).
	QueueCapacity int
	// MinShareFraction is the guaranteed floor: a tenant whose fair
	// share falls below this fraction of its demand is not viable — a
	// candidate is queued/rejected instead of admitted below it, and a
	// running tenant pushed below it by contention is preempted
	// (default 0.5, matching the adaptation plane's MinRateFraction).
	MinShareFraction float64
	// WeightCritical, WeightStandard and WeightBestEffort are the
	// water-filling weights of the priority classes (defaults 4, 2, 1).
	WeightCritical   float64
	WeightStandard   float64
	WeightBestEffort float64
	// Clock timestamps journal spans (optional; zero times without it).
	Clock clock.Clock
	// Journal, when set, records admit/reject/preempt/promote decisions
	// as first-class decision traces.
	Journal *trace.Journal
}

func (c *Config) defaults() {
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 16
	}
	if c.QueueCapacity < 0 {
		c.QueueCapacity = 0
	}
	if c.MinShareFraction <= 0 {
		c.MinShareFraction = 0.5
	}
	if c.WeightCritical <= 0 {
		c.WeightCritical = 4
	}
	if c.WeightStandard <= 0 {
		c.WeightStandard = 2
	}
	if c.WeightBestEffort <= 0 {
		c.WeightBestEffort = 1
	}
}

// Weight returns the configured water-filling weight of a class.
func (c *Config) Weight(p spec.Priority) float64 {
	switch p {
	case spec.Critical:
		return c.WeightCritical
	case spec.BestEffort:
		return c.WeightBestEffort
	}
	return c.WeightStandard
}

// Decision is the gate's verdict on one admission attempt.
type Decision struct {
	State State
	// CapBps is the admitted fair-share rate cap (≤ the demand); only
	// meaningful when State is StateAdmitted.
	CapBps float64
	// New reports a first admission; false for the idempotent re-admit
	// of an already-admitted application (a recompose resubmitting).
	New bool
	// Err is the typed *AdmissionError for queued/rejected verdicts.
	Err error
}

// tenantState is the gate's record of one tenant.
type tenantState struct {
	app         string
	pri         spec.Priority
	demandBps   float64
	capBps      float64
	owner       Owner
	state       State
	seq         int64 // admission order, for FIFO queue ties
	admittedAt  time.Duration
	preemptions int
}

// Status is a tenant's externally visible posture, served by the
// /debug/rasc/tenants endpoint and System.Tenants.
type Status struct {
	App       string  `json:"app"`
	Priority  string  `json:"priority"`
	State     string  `json:"state"`
	DemandBps float64 `json:"demandBps"`
	// CapBps is the current fair-share rate cap (admitted tenants only).
	CapBps float64 `json:"capBps,omitempty"`
	// Preemptions counts how many times contention pushed the tenant
	// back into the queue.
	Preemptions int           `json:"preemptions,omitempty"`
	AdmittedAt  time.Duration `json:"admittedAt,omitempty"`
}

// Totals is the gate's aggregate posture.
type Totals struct {
	Admitted    int     `json:"admitted"`
	Queued      int     `json:"queued"`
	CapacityBps float64 `json:"capacityBps"`
	// DemandBps is the aggregate requested rate of admitted tenants;
	// AllocatedBps the aggregate of their fair-share caps.
	DemandBps    float64 `json:"demandBps"`
	AllocatedBps float64 `json:"allocatedBps"`
	Preemptions  int64   `json:"preemptions"`
	Rejections   int64   `json:"rejections"`
}

// Gate is a per-cluster admission controller with weighted max-min
// fairness. All methods are safe for concurrent use; owner notifications
// fire outside the gate's lock, in deterministic order.
type Gate struct {
	cfg Config

	mu       sync.Mutex
	capacity float64
	admitted map[string]*tenantState
	queue    []*tenantState // rank-descending, FIFO within a class
	nextSeq  int64

	preemptions int64
	rejections  int64
}

// NewGate builds a gate budgeting cfg.CapacityBps.
func NewGate(cfg Config) *Gate {
	cfg.defaults()
	g := &Gate{cfg: cfg, capacity: cfg.CapacityBps, admitted: make(map[string]*tenantState)}
	telCapacity.Set(g.capacity)
	return g
}

// notifs collects owner notifications to deliver outside the lock.
type notifs struct {
	preempted []*tenantState
	capChange []*tenantState
	promoted  []*tenantState
}

func (n *notifs) deliver() {
	for _, t := range n.preempted {
		if t.owner != nil {
			t.owner.TenantPreempted(t.app)
		}
	}
	for _, t := range n.capChange {
		if t.owner != nil {
			t.owner.TenantCapChanged(t.app, t.capBps)
		}
	}
	for _, t := range n.promoted {
		if t.owner != nil {
			t.owner.TenantPromoted(t.app)
		}
	}
}

func (g *Gate) now() time.Duration {
	if g.cfg.Clock == nil {
		return 0
	}
	return g.cfg.Clock.Now()
}

// record writes one admission decision into the journal.
func (g *Gate) record(app, trigger, cause string, err error, attrs ...trace.Attr) {
	if g.cfg.Journal == nil {
		return
	}
	now := g.now()
	d := g.cfg.Journal.Begin(now, app, trigger, cause)
	d.Span(trigger, now, now, attrs...)
	d.Complete(now, "admission", err)
}

// Admit decides whether the application may run. The demand is the
// application's aggregate requested rate in bits/sec; the owner receives
// later cap changes, preemptions and (for queued tenants) the promotion.
// Re-admitting an already-admitted application is idempotent and returns
// its current cap — the path a recompose takes.
func (g *Gate) Admit(app string, pri spec.Priority, demandBps float64, owner Owner) Decision {
	g.mu.Lock()
	if t, ok := g.admitted[app]; ok {
		// Idempotent re-admit (recompose). A changed demand re-settles
		// the allocation; same demand just reports the standing cap.
		if t.demandBps != demandBps {
			t.demandBps = demandBps
			n := &notifs{}
			g.rebalanceLocked(n, t)
			g.refreshGaugesLocked()
			g.mu.Unlock()
			n.deliver()
			return Decision{State: StateAdmitted, CapBps: t.capBps}
		}
		cap := t.capBps
		g.mu.Unlock()
		return Decision{State: StateAdmitted, CapBps: cap}
	}
	for _, q := range g.queue {
		if q.app == app {
			err := g.admissionErrLocked(q, true, "already queued")
			g.mu.Unlock()
			return Decision{State: StateQueued, Err: err}
		}
	}

	cand := &tenantState{app: app, pri: pri, demandBps: demandBps, owner: owner, seq: g.nextSeq}
	g.nextSeq++

	if g.cfg.MaxTenants > 0 && len(g.admitted) >= g.cfg.MaxTenants {
		dec := g.parkLocked(cand, "tenant limit reached")
		g.refreshGaugesLocked()
		g.mu.Unlock()
		return dec
	}
	shares, victims, ok := g.solveLocked(cand, true)
	if !ok {
		dec := g.parkLocked(cand, "fair share below guaranteed floor")
		g.refreshGaugesLocked()
		g.mu.Unlock()
		return dec
	}
	n := &notifs{}
	g.commitLocked(cand, shares, victims, n)
	cand.state = StateAdmitted
	cand.admittedAt = g.now()
	telAdmissions.With("admitted").Inc()
	g.record(app, "admit", fmt.Sprintf("priority=%s demand=%.0fbps", pri, demandBps), nil,
		trace.A("priority", pri.String()),
		trace.AInt("demand_bps", int64(demandBps)),
		trace.AInt("cap_bps", int64(cand.capBps)),
		trace.AInt("victims", int64(len(victims))))
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
	return Decision{State: StateAdmitted, CapBps: cand.capBps, New: true}
}

// admissionErrLocked builds the typed verdict error.
func (g *Gate) admissionErrLocked(t *tenantState, queued bool, reason string) error {
	return &AdmissionError{
		App: t.app, Priority: t.pri, Queued: queued,
		DemandBps: t.demandBps, CapacityBps: g.capacity, Reason: reason,
	}
}

// parkLocked queues the candidate if there is room, else rejects it.
func (g *Gate) parkLocked(cand *tenantState, reason string) Decision {
	if len(g.queue) < g.cfg.QueueCapacity {
		cand.state = StateQueued
		g.enqueueLocked(cand)
		telAdmissions.With("queued").Inc()
		err := g.admissionErrLocked(cand, true, reason)
		g.record(cand.app, "admit", reason, err,
			trace.A("priority", cand.pri.String()),
			trace.AInt("demand_bps", int64(cand.demandBps)),
			trace.ABool("queued", true))
		return Decision{State: StateQueued, Err: err}
	}
	g.rejections++
	telAdmissions.With("rejected").Inc()
	err := g.admissionErrLocked(cand, false, reason)
	g.record(cand.app, "reject", reason, err,
		trace.A("priority", cand.pri.String()),
		trace.AInt("demand_bps", int64(cand.demandBps)))
	return Decision{State: StateRejected, Err: err}
}

// enqueueLocked inserts by priority rank (descending), FIFO within a
// class.
func (g *Gate) enqueueLocked(t *tenantState) {
	i := sort.Search(len(g.queue), func(i int) bool {
		if g.queue[i].pri.Rank() != t.pri.Rank() {
			return g.queue[i].pri.Rank() < t.pri.Rank()
		}
		return g.queue[i].seq > t.seq
	})
	g.queue = append(g.queue, nil)
	copy(g.queue[i+1:], g.queue[i:])
	g.queue[i] = t
}

// solveLocked computes the water-filling allocation with cand tentatively
// in the pool (cand nil = rebalance of the standing tenants). It returns
// the per-app shares and the tenants that must be preempted to make the
// allocation viable. ok is false when no viable allocation exists without
// degrading a tenant of rank ≥ cand's below the guaranteed floor.
//
// allowEvict false (queue promotions) demands a clean fit: no preemption,
// no floor violations.
func (g *Gate) solveLocked(cand *tenantState, allowEvict bool) (map[string]float64, []*tenantState, bool) {
	pool := make([]*tenantState, 0, len(g.admitted)+1)
	for _, t := range g.admitted {
		pool = append(pool, t)
	}
	if cand != nil {
		pool = append(pool, cand)
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].app < pool[j].app })
	var victims []*tenantState
	for {
		demands := make([]Demand, len(pool))
		for i, t := range pool {
			demands[i] = Demand{App: t.app, Bps: t.demandBps, Weight: g.cfg.Weight(t.pri)}
		}
		shares := FairShares(demands, g.capacity)
		viable := true
		for i, t := range pool {
			if shares[i] < g.cfg.MinShareFraction*t.demandBps-1e-9 {
				viable = false
				break
			}
		}
		if viable {
			out := make(map[string]float64, len(pool))
			for i, t := range pool {
				out[t.app] = shares[i]
			}
			return out, victims, true
		}
		if !allowEvict {
			return nil, nil, false
		}
		// Evict the lowest-ranked evictable tenant: below cand's rank in
		// admission mode, below the pool's top rank (and itself below
		// floor) in rebalance mode. Ties: largest demand frees the most,
		// then app for determinism.
		var best *tenantState
		bestIdx := -1
		for i, t := range pool {
			if t == cand {
				continue
			}
			if cand != nil {
				if t.pri.Rank() >= cand.pri.Rank() {
					continue
				}
			} else {
				if t.pri.Rank() >= maxRank(pool) || shares[i] >= g.cfg.MinShareFraction*t.demandBps-1e-9 {
					continue
				}
			}
			if best == nil || less(t, best) {
				best, bestIdx = t, i
			}
		}
		if best == nil {
			if cand == nil {
				// Rebalance with nothing to shed: the surviving class
				// shares the shortage below floor.
				out := make(map[string]float64, len(pool))
				for i, t := range pool {
					out[t.app] = shares[i]
				}
				return out, victims, true
			}
			return nil, nil, false
		}
		victims = append(victims, best)
		pool = append(pool[:bestIdx], pool[bestIdx+1:]...)
	}
}

// less orders eviction candidates: lowest rank first, then largest
// demand, then app ascending.
func less(a, b *tenantState) bool {
	if a.pri.Rank() != b.pri.Rank() {
		return a.pri.Rank() < b.pri.Rank()
	}
	if a.demandBps != b.demandBps {
		return a.demandBps > b.demandBps
	}
	return a.app < b.app
}

func maxRank(pool []*tenantState) int {
	r := 0
	for _, t := range pool {
		if t.pri.Rank() > r {
			r = t.pri.Rank()
		}
	}
	return r
}

// commitLocked applies a solved allocation: victims move to the queue,
// cand (if any) joins the admitted set, and cap changes are collected for
// delivery.
func (g *Gate) commitLocked(cand *tenantState, shares map[string]float64, victims []*tenantState, n *notifs) {
	telRecomputes.Inc()
	for _, v := range victims {
		delete(g.admitted, v.app)
		v.preemptions++
		g.preemptions++
		telPreemptions.Inc()
		g.record(v.app, "preempt", "displaced by higher-priority contention", nil,
			trace.A("priority", v.pri.String()),
			trace.AInt("preemptions", int64(v.preemptions)))
		if len(g.queue) < g.cfg.QueueCapacity {
			v.state = StateQueued
			v.seq = g.nextSeq // re-queue at the back of its class
			g.nextSeq++
			g.enqueueLocked(v)
		} else {
			v.state = StateRejected
			g.rejections++
			telAdmissions.With("rejected").Inc()
			g.record(v.app, "reject", "preempted with full admission queue",
				g.admissionErrLocked(v, false, "preempted with full admission queue"))
		}
		n.preempted = append(n.preempted, v)
	}
	if cand != nil {
		g.admitted[cand.app] = cand
	}
	apps := make([]string, 0, len(g.admitted))
	for app := range g.admitted {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		t := g.admitted[app]
		cap, ok := shares[app]
		if !ok {
			continue
		}
		if t == cand {
			t.capBps = cap
			continue
		}
		if math.Abs(cap-t.capBps) > 1e-6 {
			t.capBps = cap
			telCapChanges.Inc()
			n.capChange = append(n.capChange, t)
		}
	}
}

// rebalanceLocked re-settles the standing allocation (after a departure,
// demand update or capacity change), then promotes queued tenants that
// now fit cleanly.
func (g *Gate) rebalanceLocked(n *notifs, skipNotify *tenantState) {
	if len(g.admitted) > 0 {
		shares, victims, _ := g.solveLocked(nil, true)
		g.commitLocked(nil, shares, victims, n)
		if skipNotify != nil {
			kept := n.capChange[:0]
			for _, t := range n.capChange {
				if t != skipNotify {
					kept = append(kept, t)
				}
			}
			n.capChange = kept
		}
	}
	g.promoteLocked(n)
}

// promoteLocked admits queued tenants that fit without preemption, in
// priority order.
func (g *Gate) promoteLocked(n *notifs) {
	for i := 0; i < len(g.queue); {
		q := g.queue[i]
		if g.cfg.MaxTenants > 0 && len(g.admitted) >= g.cfg.MaxTenants {
			return
		}
		shares, _, ok := g.solveLocked(q, false)
		if !ok {
			i++
			continue
		}
		g.queue = append(g.queue[:i], g.queue[i+1:]...)
		g.commitLocked(q, shares, nil, n)
		q.state = StateAdmitted
		q.admittedAt = g.now()
		telAdmissions.With("promoted").Inc()
		g.record(q.app, "promote", "capacity freed", nil,
			trace.A("priority", q.pri.String()),
			trace.AInt("cap_bps", int64(q.capBps)))
		n.promoted = append(n.promoted, q)
	}
}

// Release removes the application from the gate — it finished, was torn
// down, or its composition failed — re-settling the remaining tenants'
// caps and promoting queued ones that now fit. Releasing an unknown or
// queued application just forgets it.
func (g *Gate) Release(app string) {
	g.mu.Lock()
	if _, ok := g.admitted[app]; ok {
		delete(g.admitted, app)
		n := &notifs{}
		g.rebalanceLocked(n, nil)
		g.refreshGaugesLocked()
		g.mu.Unlock()
		n.deliver()
		return
	}
	for i, q := range g.queue {
		if q.app == app {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			break
		}
	}
	g.refreshGaugesLocked()
	g.mu.Unlock()
}

// SetCapacity rebases the gate's budget (membership or provisioning
// change) and re-settles every allocation.
func (g *Gate) SetCapacity(bps float64) {
	g.mu.Lock()
	if bps < 0 {
		bps = 0
	}
	g.capacity = bps
	n := &notifs{}
	g.rebalanceLocked(n, nil)
	g.refreshGaugesLocked()
	g.mu.Unlock()
	n.deliver()
}

// AddCapacity adjusts the budget by delta (negative when a member died).
func (g *Gate) AddCapacity(delta float64) {
	g.mu.Lock()
	cap := g.capacity + delta
	g.mu.Unlock()
	g.SetCapacity(cap)
}

// CapacityBps returns the current budget.
func (g *Gate) CapacityBps() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity
}

// Has reports whether the gate still tracks the application (admitted or
// queued).
func (g *Gate) Has(app string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.admitted[app]; ok {
		return true
	}
	for _, q := range g.queue {
		if q.app == app {
			return true
		}
	}
	return false
}

// CapBps returns the application's current fair-share rate cap; ok is
// false when the application is not admitted.
func (g *Gate) CapBps(app string) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.admitted[app]
	if !ok {
		return 0, false
	}
	return t.capBps, true
}

// Totals returns the gate's aggregate posture.
func (g *Gate) Totals() Totals {
	g.mu.Lock()
	defer g.mu.Unlock()
	tt := Totals{
		Admitted: len(g.admitted), Queued: len(g.queue),
		CapacityBps: g.capacity, Preemptions: g.preemptions, Rejections: g.rejections,
	}
	for _, t := range g.admitted {
		tt.DemandBps += t.demandBps
		tt.AllocatedBps += t.capBps
	}
	return tt
}

// Snapshot lists every retained tenant: admitted ones sorted by app, then
// the queue in promotion order.
func (g *Gate) Snapshot() []Status {
	g.mu.Lock()
	defer g.mu.Unlock()
	apps := make([]string, 0, len(g.admitted))
	for app := range g.admitted {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	out := make([]Status, 0, len(apps)+len(g.queue))
	for _, app := range apps {
		t := g.admitted[app]
		out = append(out, Status{
			App: t.app, Priority: t.pri.String(), State: t.state.String(),
			DemandBps: t.demandBps, CapBps: t.capBps,
			Preemptions: t.preemptions, AdmittedAt: t.admittedAt,
		})
	}
	for _, t := range g.queue {
		out = append(out, Status{
			App: t.app, Priority: t.pri.String(), State: t.state.String(),
			DemandBps: t.demandBps, Preemptions: t.preemptions,
		})
	}
	return out
}

// refreshGaugesLocked re-derives the posture gauges.
func (g *Gate) refreshGaugesLocked() {
	counts := map[spec.Priority]int{}
	var demand float64
	for _, t := range g.admitted {
		counts[t.pri]++
		demand += t.demandBps
	}
	for _, p := range []spec.Priority{spec.Critical, spec.Standard, spec.BestEffort} {
		telActive.With(p.String()).Set(float64(counts[p]))
	}
	telQueued.Set(float64(len(g.queue)))
	telCapacity.Set(g.capacity)
	telDemand.Set(demand)
}

// CapRequest scales a request's substream rates down proportionally so
// the aggregate fits capBps, keeping every substream at least one
// unit/sec. A cap at or above the demand returns the request unchanged.
func CapRequest(req spec.Request, capBps float64) spec.Request {
	demand := req.BitsPerSecond(req.TotalRate())
	if capBps <= 0 || demand <= capBps {
		return req
	}
	f := capBps / demand
	subs := make([]spec.Substream, len(req.Substreams))
	copy(subs, req.Substreams)
	for i := range subs {
		r := int(math.Floor(float64(subs[i].Rate) * f))
		if r < 1 {
			r = 1
		}
		subs[i].Rate = r
	}
	req.Substreams = subs
	return req
}
