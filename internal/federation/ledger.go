// Package federation joins cluster-scoped composers into one system: a
// coordinator on every node discovers remote candidate clusters through
// border summaries and QueryStream-style probes, hands substreams across
// a cluster boundary with a reserve/compose/commit handshake, and keeps
// cross-cluster rate splitting consistent by crediting and debiting
// boundary-link capacity through a Ledger. Composition inside a cluster
// is untouched — a single-cluster deployment composes bit-identically to
// the flat MinCost composer.
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrBoundarySaturated is returned by Reserve when a hand-off's debit
// would push a boundary link past its capacity.
var ErrBoundarySaturated = errors.New("federation: boundary link saturated")

// CreditID names one boundary-capacity reservation.
type CreditID uint64

// boundaryLink is the accounting state of one inter-cluster link. The
// link is undirected: both clusters draw on the same capacity, matching
// a shared wide-area pipe.
type boundaryLink struct {
	key         string
	capacityBps float64
	reservedBps float64
	credits     int
}

// credit is one outstanding reservation.
type credit struct {
	link *boundaryLink
	bps  float64
}

// Ledger is the credit/debit account of boundary-link capacity. Each
// cluster runs one arbiter ledger (at its border in a live deployment;
// shared by the cluster's nodes in the simulator), so concurrent
// per-cluster solves reserve against one consistent view and can never
// oversubscribe a link. Reserve atomically checks-and-debits; Release
// refunds exactly once, no matter how many times a failure path retries
// it. Unlike most of the protocol stack the Ledger is internally
// synchronized: solves on different nodes of a cluster share it.
type Ledger struct {
	mu      sync.Mutex
	nextID  CreditID
	links   map[string]*boundaryLink
	credits map[CreditID]*credit
}

// NewLedger returns an empty ledger. Links without a configured capacity
// reject every reservation — capacity must be granted explicitly with
// SetLink.
func NewLedger() *Ledger {
	return &Ledger{
		links:   make(map[string]*boundaryLink),
		credits: make(map[CreditID]*credit),
	}
}

// linkKey canonicalizes an unordered cluster pair.
func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// SetLink grants the boundary link between clusters a and b the given
// capacity. Reservations already held are kept even if the new capacity
// is below the reserved total (they drain as hand-offs are released).
func (l *Ledger) SetLink(a, b string, capacityBps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := linkKey(a, b)
	link, ok := l.links[key]
	if !ok {
		link = &boundaryLink{key: key}
		l.links[key] = link
	}
	link.capacityBps = capacityBps
}

// Reserve debits bps of the a↔b boundary link and returns the credit to
// release it with. It fails with ErrBoundarySaturated when the link's
// reserved total would exceed its capacity (or no capacity was granted).
func (l *Ledger) Reserve(a, b string, bps float64) (CreditID, error) {
	if bps <= 0 {
		return 0, fmt.Errorf("federation: reserve %v bps on %s: rate must be positive", bps, linkKey(a, b))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	link, ok := l.links[linkKey(a, b)]
	if !ok || link.reservedBps+bps > link.capacityBps {
		telSaturated.Inc()
		return 0, fmt.Errorf("%w: %s", ErrBoundarySaturated, linkKey(a, b))
	}
	link.reservedBps += bps
	link.credits++
	l.nextID++
	id := l.nextID
	l.credits[id] = &credit{link: link, bps: bps}
	telReservedBps.Add(bps)
	telCreditsActive.Inc()
	return id, nil
}

// Release refunds a reservation. It reports whether the credit was still
// outstanding: releasing twice (a failed hand-off retried by two error
// paths) refunds exactly once.
func (l *Ledger) Release(id CreditID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.credits[id]
	if !ok {
		return false
	}
	delete(l.credits, id)
	c.link.reservedBps -= c.bps
	c.link.credits--
	telReservedBps.Add(-c.bps)
	telCreditsActive.Dec()
	return true
}

// LinkUsage is one boundary link's accounting snapshot.
type LinkUsage struct {
	// Link is the canonical "a|b" cluster pair.
	Link        string  `json:"link"`
	CapacityBps float64 `json:"capacityBps"`
	ReservedBps float64 `json:"reservedBps"`
	// Credits is the number of outstanding reservations.
	Credits int `json:"credits"`
}

// Usage snapshots every configured boundary link, sorted by link key.
func (l *Ledger) Usage() []LinkUsage {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LinkUsage, 0, len(l.links))
	for _, link := range l.links {
		out = append(out, LinkUsage{
			Link:        link.key,
			CapacityBps: link.capacityBps,
			ReservedBps: link.reservedBps,
			Credits:     link.credits,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}
