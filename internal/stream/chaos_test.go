package stream_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/deploy"
	"rasc.dev/rasc/internal/services"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/workload"
)

// TestChaosSoak drives a deployment through randomized submissions,
// teardowns and node failures for several virtual minutes, checking
// system-level invariants along the way: the simulator stays live, sinks
// never report impossible statistics, and torn-down requests release
// their components everywhere.
func TestChaosSoak(t *testing.T) {
	const nodes = 20
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes:          nodes,
		Seed:           99,
		MaxLinkBacklog: 300 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(1234))
	gen := workload.NewGenerator(workload.Config{
		Services:      services.Standard().Names(),
		MaxSubstreams: 2,
	}, 77)

	type liveApp struct {
		origin int
		graph  *core.ExecutionGraph
		req    spec.Request
	}
	var apps []liveApp
	dead := map[int]bool{}
	admitted, rejected, torn, kills := 0, 0, 0, 0

	for round := 0; round < 60; round++ {
		action := rng.Intn(10)
		switch {
		case action < 6: // submit a new request from a live node
			origin := rng.Intn(nodes)
			if dead[origin] {
				break
			}
			req := gen.Next()
			done := false
			var graph *core.ExecutionGraph
			s.Engines[origin].Submit(req, &core.MinCost{}, 8*time.Second, func(g *core.ExecutionGraph, err error) {
				done = true
				graph = g
			})
			for i := 0; i < 300 && !done; i++ {
				s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
			}
			if graph != nil {
				admitted++
				apps = append(apps, liveApp{origin: origin, graph: graph, req: req})
			} else {
				rejected++
			}
		case action < 8: // tear an application down
			if len(apps) == 0 {
				break
			}
			i := rng.Intn(len(apps))
			app := apps[i]
			if !dead[app.origin] {
				s.Engines[app.origin].Teardown(app.graph, 5*time.Second)
				torn++
			}
			apps = append(apps[:i], apps[i+1:]...)
		default: // kill a node (at most a quarter of the deployment)
			if kills >= nodes/4 {
				break
			}
			victim := 1 + rng.Intn(nodes-1) // keep node 0 alive
			if !dead[victim] {
				dead[victim] = true
				s.Kill(victim)
				kills++
			}
		}
		s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)

		// Invariants on every live application's statistics.
		for _, app := range apps {
			if dead[app.origin] {
				continue
			}
			for l := range app.req.Substreams {
				sink := s.Engines[app.origin].Sink(app.req.ID, l)
				if sink == nil {
					continue
				}
				emitted := s.Engines[app.origin].EmittedUnits(app.req.ID, l)
				if sink.Received > emitted {
					t.Fatalf("round %d: %s/%d received %d > emitted %d",
						round, app.req.ID, l, sink.Received, emitted)
				}
				if sink.Timely > sink.Received || sink.OutOfOrder > sink.Received {
					t.Fatalf("round %d: impossible sink counters %+v", round, sink)
				}
			}
		}
	}
	if admitted == 0 {
		t.Fatal("chaos run admitted nothing")
	}
	t.Logf("chaos: admitted=%d rejected=%d torndown=%d kills=%d virtual=%v",
		admitted, rejected, torn, kills, s.Sim.Now())

	// Drain in-flight control traffic, then verify live engines hold no
	// more components than the still-live applications account for.
	s.Sim.RunUntil(s.Sim.Now() + 10*time.Second)
	maxComponents := 0
	for _, app := range apps {
		for _, ss := range app.req.Substreams {
			// Splitting can at most double instances per stage in this
			// workload's capacity regime; use a generous bound.
			maxComponents += 4 * len(ss.Services)
		}
	}
	total := 0
	for i, e := range s.Engines {
		if dead[i] {
			continue
		}
		total += e.Components()
	}
	if total > maxComponents {
		t.Fatalf("component leak: %d live components for %d applications (bound %d)",
			total, len(apps), maxComponents)
	}
	// Determinism: a second identical run must produce identical totals.
	if testing.Short() {
		return
	}
	again := runChaosTotals(t)
	first := fmt.Sprintf("%d/%d/%d/%d", admitted, rejected, torn, kills)
	if again != first {
		t.Fatalf("chaos run not deterministic: %s vs %s", first, again)
	}
}

// runChaosTotals repeats the chaos schedule and returns its totals.
func runChaosTotals(t *testing.T) string {
	t.Helper()
	const nodes = 20
	s := deploy.NewSystem(deploy.SystemOptions{
		Nodes:          nodes,
		Seed:           99,
		MaxLinkBacklog: 300 * time.Millisecond,
	})
	rng := rand.New(rand.NewSource(1234))
	gen := workload.NewGenerator(workload.Config{
		Services:      services.Standard().Names(),
		MaxSubstreams: 2,
	}, 77)
	type liveApp struct {
		origin int
		graph  *core.ExecutionGraph
		req    spec.Request
	}
	var apps []liveApp
	dead := map[int]bool{}
	admitted, rejected, torn, kills := 0, 0, 0, 0
	for round := 0; round < 60; round++ {
		action := rng.Intn(10)
		switch {
		case action < 6:
			origin := rng.Intn(nodes)
			if dead[origin] {
				break
			}
			req := gen.Next()
			done := false
			var graph *core.ExecutionGraph
			s.Engines[origin].Submit(req, &core.MinCost{}, 8*time.Second, func(g *core.ExecutionGraph, err error) {
				done = true
				graph = g
			})
			for i := 0; i < 300 && !done; i++ {
				s.Sim.RunUntil(s.Sim.Now() + 100*time.Millisecond)
			}
			if graph != nil {
				admitted++
				apps = append(apps, liveApp{origin: origin, graph: graph, req: req})
			} else {
				rejected++
			}
		case action < 8:
			if len(apps) == 0 {
				break
			}
			i := rng.Intn(len(apps))
			app := apps[i]
			if !dead[app.origin] {
				s.Engines[app.origin].Teardown(app.graph, 5*time.Second)
				torn++
			}
			apps = append(apps[:i], apps[i+1:]...)
		default:
			if kills >= nodes/4 {
				break
			}
			victim := 1 + rng.Intn(nodes-1)
			if !dead[victim] {
				dead[victim] = true
				s.Kill(victim)
				kills++
			}
		}
		s.Sim.RunUntil(s.Sim.Now() + 2*time.Second)
	}
	return fmt.Sprintf("%d/%d/%d/%d", admitted, rejected, torn, kills)
}
