package tenant

import "math"

// This file is the incremental counterpart of the FairShares oracle: a
// persistent ordered structure over the admitted demand set keyed by
// saturation level (demand/weight, ties broken by app — exactly the
// oracle's sort order) with cached subtree demand/weight sums. The key
// property it exploits is that a weighted max-min allocation is fully
// described by one number, the final water level L: a tenant saturating
// at level l = d/w receives d when l ≤ L and L·w otherwise. Keeping the
// set sorted by l with prefix sums makes L an O(log n) binary descent —
// so a single join/leave/weight-change costs O(log n) instead of
// re-sorting the world — and makes "every tenant whose share can have
// moved" a suffix of the order, so cap fan-out costs O(changed).
//
// The structure is a treap: priorities are derived deterministically
// from the app name (FNV-1a) so the tree shape — and therefore float
// summation order — is reproducible across runs for the same tenant set.

// wfEntry is one admitted positive demand.
type wfEntry struct {
	app    string
	demand float64
	weight float64
	level  float64 // demand/weight: the water level at which it saturates
}

type wfNode struct {
	wfEntry
	prio        uint64
	left, right *wfNode
	sumD, sumW  float64 // subtree demand/weight sums
	size        int
}

// pull re-derives the subtree aggregates from the children.
func (n *wfNode) pull() {
	n.sumD, n.sumW, n.size = n.demand, n.weight, 1
	if l := n.left; l != nil {
		n.sumD += l.sumD
		n.sumW += l.sumW
		n.size += l.size
	}
	if r := n.right; r != nil {
		n.sumD += r.sumD
		n.sumW += r.sumW
		n.size += r.size
	}
}

// wfKeyLess orders entries by (level, app), matching the oracle's sort.
func wfKeyLess(l1 float64, a1 string, l2 float64, a2 string) bool {
	if l1 != l2 {
		return l1 < l2
	}
	return a1 < a2
}

// wfPrio derives the treap priority from the app name (inline FNV-1a,
// allocation-free).
func wfPrio(app string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(app); i++ {
		h ^= uint64(app[i])
		h *= prime64
	}
	return h
}

// wfSplit partitions t into keys < (level, app) and keys ≥ (level, app).
func wfSplit(t *wfNode, level float64, app string) (a, b *wfNode) {
	if t == nil {
		return nil, nil
	}
	if wfKeyLess(t.level, t.app, level, app) {
		a = t
		t.right, b = wfSplit(t.right, level, app)
		t.pull()
		return a, b
	}
	b = t
	a, t.left = wfSplit(t.left, level, app)
	t.pull()
	return a, b
}

// wfSplitAfter partitions t into keys ≤ (level, app) and keys > it.
func wfSplitAfter(t *wfNode, level float64, app string) (a, b *wfNode) {
	if t == nil {
		return nil, nil
	}
	if wfKeyLess(level, app, t.level, t.app) {
		b = t
		a, t.left = wfSplitAfter(t.left, level, app)
		t.pull()
		return a, b
	}
	a = t
	t.right, b = wfSplitAfter(t.right, level, app)
	t.pull()
	return a, b
}

func wfMerge(a, b *wfNode) *wfNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.right = wfMerge(a.right, b)
		a.pull()
		return a
	}
	b.left = wfMerge(a, b.left)
	b.pull()
	return b
}

// waterfill is the incremental allocator state. The zero value is an
// empty set. Not safe for concurrent use (the Gate's lock guards it).
type waterfill struct {
	root *wfNode
}

func (w *waterfill) size() int {
	if w.root == nil {
		return 0
	}
	return w.root.size
}

// totalDemand is the aggregate demand of entries in the set.
func (w *waterfill) totalDemand() float64 {
	if w.root == nil {
		return 0
	}
	return w.root.sumD
}

// insert adds an entry; the (level, app) key must not already be present
// (the gate keys tenants uniquely by app and removes before re-inserting
// on demand changes).
func (w *waterfill) insert(app string, demand, weight float64) {
	n := &wfNode{
		wfEntry: wfEntry{app: app, demand: demand, weight: weight, level: demand / weight},
		prio:    wfPrio(app),
	}
	n.pull()
	a, b := wfSplit(w.root, n.level, n.app)
	w.root = wfMerge(wfMerge(a, n), b)
}

// remove deletes the entry keyed by (demand/weight, app); it reports
// whether the entry was present.
func (w *waterfill) remove(app string, demand, weight float64) bool {
	level := demand / weight
	a, rest := wfSplit(w.root, level, app)
	mid, b := wfSplitAfter(rest, level, app)
	w.root = wfMerge(a, b)
	return mid != nil
}

// level returns the final water level L for the given capacity: a tenant
// saturating at l receives its demand when l ≤ L and L·weight otherwise.
// All demands satisfied is +Inf; non-positive capacity is 0.
//
// The computation is an O(log n) binary descent: walking the order, entry
// i is satisfied iff (capacity − D_<i)/(W − W_<i) ≥ l_i, where D_<i/W_<i
// are the demand/weight prefix sums before i. That predicate is monotone
// along the sorted order (once it fails it stays failed: every later
// entry saturates at a level at least as high while the numerator only
// shrinks), so the satisfied prefix boundary is found by descending the
// tree over the cached sums.
func (w *waterfill) level(capacity float64) float64 {
	if w.root == nil {
		return math.Inf(1)
	}
	if capacity <= 0 {
		return 0
	}
	if w.root.sumD <= capacity {
		return math.Inf(1)
	}
	totalW := w.root.sumW
	var prefD, prefW float64 // sums over the satisfied prefix found so far
	n := w.root
	for n != nil {
		leftD, leftW := 0.0, 0.0
		if n.left != nil {
			leftD, leftW = n.left.sumD, n.left.sumW
		}
		restW := totalW - (prefW + leftW)
		if restW > 0 && (capacity-(prefD+leftD))/restW >= n.level {
			// n is satisfied; so is everything before it. The boundary
			// is to the right.
			prefD += leftD + n.demand
			prefW += leftW + n.weight
			n = n.right
			continue
		}
		n = n.left
	}
	restW := totalW - prefW
	if restW <= 0 {
		// Everything satisfied — but then sumD ≤ capacity would have
		// returned above; guard against float drift.
		return math.Inf(1)
	}
	l := (capacity - prefD) / restW
	if l < 0 || math.IsNaN(l) {
		l = 0
	}
	return l
}

// wfShare is the closed-form share of one entry at water level L,
// clamped to [0, demand] against float drift.
func wfShare(e *wfEntry, level float64) float64 {
	if e.level <= level {
		return e.demand
	}
	s := level * e.weight
	if s > e.demand {
		return e.demand
	}
	if s < 0 || math.IsNaN(s) {
		return 0
	}
	return s
}

// maxEntry returns the entry with the highest saturation level (the
// worst share/demand ratio when unsatisfied), or nil when empty.
func (w *waterfill) maxEntry() *wfEntry {
	n := w.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return &n.wfEntry
}

// suffix visits, in key order, every entry whose saturation level is
// strictly above bound — for two water levels both ≥ bound these are the
// only entries whose share can differ. Costs O(log n + visited).
func (w *waterfill) suffix(bound float64, visit func(*wfEntry)) {
	wfSuffix(w.root, bound, visit)
}

func wfSuffix(n *wfNode, bound float64, visit func(*wfEntry)) {
	if n == nil {
		return
	}
	if n.level > bound {
		wfSuffix(n.left, bound, visit)
		visit(&n.wfEntry)
		wfAll(n.right, visit) // every right key sorts above n: all qualify
		return
	}
	// n and its whole left subtree saturate at or below bound.
	wfSuffix(n.right, bound, visit)
}

func wfAll(n *wfNode, visit func(*wfEntry)) {
	if n == nil {
		return
	}
	wfAll(n.left, visit)
	visit(&n.wfEntry)
	wfAll(n.right, visit)
}

// countAbove returns |{entries with level > bound}| in O(log n).
func (w *waterfill) countAbove(bound float64) int {
	n, c := w.root, 0
	for n != nil {
		if n.level > bound {
			c++
			if n.right != nil {
				c += n.right.size
			}
			n = n.left
		} else {
			n = n.right
		}
	}
	return c
}
