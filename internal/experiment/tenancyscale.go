package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
)

// TenancyScaleConfig parameterizes the tenancy-at-scale scenario: a gate
// with a per-host capacity ledger carrying a four-digit tenant
// population through admission, steady churn, host-death preemption
// storms and rejoin promotion storms, with every decision latency
// measured. It deliberately runs against the gate alone — no simulated
// network — so the numbers isolate the decision path the incremental
// allocator optimizes.
type TenancyScaleConfig struct {
	// Apps is the tenant population (default 1000). Hosts is the number
	// of ledger rows, standing in for simnet nodes (default 128).
	Apps  int
	Hosts int
	Seed  int64
	// Contention is aggregate demand over cluster capacity (default
	// 1.5), MinShareFraction the admission viability floor (default
	// 0.4 — high enough that the contended tail of the BestEffort class
	// parks, giving the storms something to preempt and promote).
	Contention       float64
	MinShareFraction float64
	// ChurnBatches release-then-admit cycles of BatchSize tenants each
	// (defaults 8 and 25) model steady application turnover.
	ChurnBatches int
	BatchSize    int
	// StormRounds (default 2) kill StormHostFraction (default 0.25) of
	// the hosts at once — a correlated failure whose capacity collapse
	// preempts the least-viable tenants — then rejoin them, promoting
	// the parked tenants back in one wave.
	StormRounds       int
	StormHostFraction float64
	// DeadHosts hosts (default 4) die permanently at the end, each with
	// a duplicated death verdict to exercise exactly-once release.
	DeadHosts int
	// RecomputeOps timed capacity perturbations (default 50) measure
	// the standalone recompute+fan-out latency.
	RecomputeOps int
	// DisableIncremental pins the full-recompute baseline;
	// FairShareDeadband forwards to the gate config.
	DisableIncremental bool
	FairShareDeadband  float64
}

func (c *TenancyScaleConfig) defaults() {
	if c.Apps == 0 {
		c.Apps = 1000
	}
	if c.Hosts == 0 {
		c.Hosts = 128
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Contention == 0 {
		c.Contention = 1.5
	}
	if c.MinShareFraction == 0 {
		c.MinShareFraction = 0.4
	}
	if c.ChurnBatches == 0 {
		c.ChurnBatches = 8
	}
	if c.BatchSize == 0 {
		c.BatchSize = 25
	}
	if c.StormRounds == 0 {
		c.StormRounds = 2
	}
	if c.StormHostFraction == 0 {
		c.StormHostFraction = 0.25
	}
	if c.DeadHosts == 0 {
		c.DeadHosts = 4
	}
	if c.RecomputeOps == 0 {
		c.RecomputeOps = 50
	}
}

// TenancyScaleResults is a completed scale run.
type TenancyScaleResults struct {
	Config TenancyScaleConfig
	// CapacityBps is the full-cluster budget before any host died.
	CapacityBps float64
	// TimedAdmits is the number of admission decisions behind the
	// latency percentiles (initial build plus churn re-admissions).
	TimedAdmits                  int
	AdmitP50, AdmitP95, AdmitMax time.Duration
	// RecomputeP50/P95 are over the RecomputeOps capacity
	// perturbations, each a full re-settle plus fan-out.
	RecomputeP50, RecomputeP95 time.Duration
	// Preempted/Promoted/CapNotices count owner callbacks delivered
	// across the whole scenario.
	Preempted, Promoted, CapNotices int64
	Stats                           tenant.GateStats
	// NotificationsPerRecompute is Stats.CapNotifications over
	// Stats.Recomputes — the fan-out amplification the deadband and
	// coalescing are meant to hold down.
	NotificationsPerRecompute float64
	Totals                    tenant.Totals
	Snapshot                  []tenant.Status
}

// scaleOwner counts owner callbacks; the same instance backs every
// tenant, so the totals are scenario-wide. The gate delivers
// notifications outside its lock but sequentially, so plain fields
// suffice.
type scaleOwner struct {
	capNotices, preempted, promoted int64
}

func (o *scaleOwner) TenantCapChanged(string, float64) { o.capNotices++ }
func (o *scaleOwner) TenantPreempted(string)           { o.preempted++ }
func (o *scaleOwner) TenantPromoted(string)            { o.promoted++ }

// durPercentile returns the q-quantile (0..1) of the sorted samples.
func durPercentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// RunTenancyScale executes the tenancy-at-scale scenario:
//
//  1. Register Hosts equal host budgets sized so the population's
//     aggregate demand over-subscribes the cluster by Contention.
//  2. Admit Apps tenants (10% Critical / 30% Standard / 60% BestEffort,
//     randomized demands); the contended BestEffort tail parks. Every
//     admission is wall-clock timed. A quarter of the admitted tenants
//     report placements, charging the ledger.
//  3. ChurnBatches cycles release BatchSize tenants and admit BatchSize
//     fresh ones — each release promotes parked tenants when viable.
//  4. StormRounds correlated host failures remove a quarter of the
//     hosts (preemption storm as capacity collapses), then rejoin them
//     (promotion storm as it recovers).
//  5. DeadHosts die permanently, each with a duplicate verdict — the
//     budget must come off exactly once.
//  6. RecomputeOps timed capacity perturbations measure the standalone
//     recompute+fan-out path.
func RunTenancyScale(cfg TenancyScaleConfig) (*TenancyScaleResults, error) {
	cfg.defaults()
	if cfg.DeadHosts+int(cfg.StormHostFraction*float64(cfg.Hosts)) >= cfg.Hosts {
		return nil, fmt.Errorf("experiment: %d hosts cannot absorb the storm and %d permanent deaths", cfg.Hosts, cfg.DeadHosts)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	own := &scaleOwner{}

	// The population's demands are drawn first so the host budgets can
	// be derived from real aggregate demand.
	pris := []spec.Priority{
		spec.Critical,
		spec.Standard, spec.Standard, spec.Standard,
		spec.BestEffort, spec.BestEffort, spec.BestEffort,
		spec.BestEffort, spec.BestEffort, spec.BestEffort,
	}
	nextID := 0
	draw := func() (string, spec.Priority, float64) {
		app := fmt.Sprintf("app-%05d", nextID)
		pri := pris[nextID%len(pris)]
		nextID++
		return app, pri, 1e5 + rng.Float64()*1.9e6
	}
	type ten struct {
		app    string
		pri    spec.Priority
		demand float64
	}
	pop := make([]ten, cfg.Apps)
	var totalDemand float64
	for i := range pop {
		app, pri, d := draw()
		pop[i] = ten{app, pri, d}
		totalDemand += d
	}
	capacity := totalDemand / cfg.Contention
	perHost := capacity / float64(cfg.Hosts)

	g := tenant.NewGate(tenant.Config{
		MinShareFraction:   cfg.MinShareFraction,
		QueueCapacity:      cfg.Apps,
		PerHostLedger:      true,
		DisableIncremental: cfg.DisableIncremental,
		FairShareDeadband:  cfg.FairShareDeadband,
	})
	hostID := func(i int) string { return fmt.Sprintf("host-%03d", i) }
	for i := 0; i < cfg.Hosts; i++ {
		g.UpsertHost(hostID(i), perHost)
	}
	// Storm and permanently dying hosts come off the front of the id
	// space; placements are charged onto the stable back half so a dead
	// host never strands a committed charge in this scenario (the gate
	// tolerates that too — it is just not what this run measures).
	stormHosts := int(cfg.StormHostFraction * float64(cfg.Hosts))
	if stormHosts == 0 {
		stormHosts = 1
	}
	stableFrom := stormHosts + cfg.DeadHosts

	admitLat := make([]time.Duration, 0, cfg.Apps+cfg.ChurnBatches*cfg.BatchSize)
	live := make([]string, 0, cfg.Apps)
	admitOne := func(t ten) {
		start := time.Now()
		dec := g.Admit(t.app, t.pri, t.demand, own)
		admitLat = append(admitLat, time.Since(start))
		if dec.State == tenant.StateRejected {
			return
		}
		live = append(live, t.app)
		// A quarter of the admitted tenants report a placement, charging
		// half their cap onto one stable host.
		if dec.State == tenant.StateAdmitted && len(live)%4 == 0 {
			host := hostID(stableFrom + rng.Intn(cfg.Hosts-stableFrom))
			g.SetPlacements(t.app, map[string]float64{host: dec.CapBps / 2})
		}
	}
	for _, t := range pop {
		admitOne(t)
	}

	// Steady churn: each batch releases BatchSize random tenants (each
	// release is a promotion opportunity for the parked queue) and
	// admits BatchSize fresh ones.
	for b := 0; b < cfg.ChurnBatches; b++ {
		for j := 0; j < cfg.BatchSize && len(live) > 0; j++ {
			i := rng.Intn(len(live))
			g.Release(live[i])
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		for j := 0; j < cfg.BatchSize; j++ {
			app, pri, d := draw()
			admitOne(ten{app, pri, d})
		}
	}

	// Correlated failure storms: a quarter of the hosts die at once —
	// the capacity collapse preempts the least-viable tenants — then
	// rejoin, promoting the parked queue back in one wave.
	for r := 0; r < cfg.StormRounds; r++ {
		for i := 0; i < stormHosts; i++ {
			g.RemoveHost(hostID(i))
		}
		g.RemoveHost(hostID(0)) // duplicate verdict mid-storm: no effect
		for i := 0; i < stormHosts; i++ {
			g.UpsertHost(hostID(i), perHost)
		}
	}

	// Permanent deaths, each verdict duplicated: the budget comes off
	// exactly once.
	for i := stormHosts; i < stormHosts+cfg.DeadHosts; i++ {
		g.RemoveHost(hostID(i))
		g.RemoveHost(hostID(i))
	}

	// Standalone recompute latency: capacity perturbations well beyond
	// any configured deadband, alternating sign so the budget holds.
	recompLat := make([]time.Duration, 0, cfg.RecomputeOps)
	delta := 0.004 * capacity
	for i := 0; i < cfg.RecomputeOps; i++ {
		d := delta
		if i%2 == 1 {
			d = -delta
		}
		start := time.Now()
		g.AddCapacity(d)
		recompLat = append(recompLat, time.Since(start))
	}

	res := &TenancyScaleResults{
		Config:      cfg,
		CapacityBps: capacity,
		TimedAdmits: len(admitLat),
		Preempted:   own.preempted,
		Promoted:    own.promoted,
		CapNotices:  own.capNotices,
		Stats:       g.Stats(),
		Totals:      g.Totals(),
		Snapshot:    g.Snapshot(),
	}
	sort.Slice(admitLat, func(i, j int) bool { return admitLat[i] < admitLat[j] })
	res.AdmitP50 = durPercentile(admitLat, 0.5)
	res.AdmitP95 = durPercentile(admitLat, 0.95)
	res.AdmitMax = durPercentile(admitLat, 1)
	sort.Slice(recompLat, func(i, j int) bool { return recompLat[i] < recompLat[j] })
	res.RecomputeP50 = durPercentile(recompLat, 0.5)
	res.RecomputeP95 = durPercentile(recompLat, 0.95)
	if res.Stats.Recomputes > 0 {
		res.NotificationsPerRecompute = float64(res.Stats.CapNotifications) / float64(res.Stats.Recomputes)
	}
	return res, nil
}
