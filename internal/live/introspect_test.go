package live

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/gossip"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/stream"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixtureJournal builds a journal with fixed virtual timestamps so the
// endpoint bodies are byte-stable: a converged incremental success for
// "chain" and a failed full recompose for "mesh".
func fixtureJournal() *trace.Journal {
	j := trace.NewJournal(8)

	a := j.Begin(100*time.Millisecond, "chain", "member_dead", "member dead: "+overlay.ID{7}.String())
	a.Span("decide", 100*time.Millisecond, 100*time.Millisecond,
		trace.A("mode", "incremental"), trace.A("degraded", overlay.ID{7}.String()))
	a.Span("solve", 100*time.Millisecond, 102*time.Millisecond,
		trace.AInt("candidates", 5), trace.AInt("iterations", 3), trace.ABool("feasible", true))
	a.Span("apply", 102*time.Millisecond, 110*time.Millisecond)
	a.Complete(110*time.Millisecond, "incremental", nil)
	j.Converge("chain", 450*time.Millisecond)

	b := j.Begin(200*time.Millisecond, "mesh", "rate_below_threshold", "substreams [0 1] below threshold")
	b.Span("decide", 200*time.Millisecond, 200*time.Millisecond, trace.A("mode", "full"))
	b.Complete(205*time.Millisecond, "full", core.ErrNoFeasiblePlacement)
	return j
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDecisionsHandler(t *testing.T) {
	srv := httptest.NewServer(DecisionsHandler(fixtureJournal()))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("decisions = %d", code)
	}
	checkGolden(t, "decisions.golden", body)

	code, body = get(t, srv, "/?format=text")
	if code != http.StatusOK {
		t.Fatalf("decisions text = %d", code)
	}
	checkGolden(t, "decisions_text.golden", body)

	// The app filter keeps the selected application only; total/evicted
	// still describe the whole journal.
	_, body = get(t, srv, "/?app=mesh")
	var filtered struct {
		Total     int64            `json:"total"`
		Decisions []trace.Decision `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatalf("filtered body %q: %v", body, err)
	}
	if filtered.Total != 2 || len(filtered.Decisions) != 1 || filtered.Decisions[0].App != "mesh" {
		t.Fatalf("filtered = %+v", filtered)
	}

	nilSrv := httptest.NewServer(DecisionsHandler(nil))
	defer nilSrv.Close()
	if code, _ := get(t, nilSrv, "/"); code != http.StatusServiceUnavailable {
		t.Fatalf("nil journal = %d, want 503", code)
	}
}

func TestCompositionHandler(t *testing.T) {
	node := func(i byte, addr string) overlay.NodeInfo {
		return overlay.NodeInfo{ID: overlay.ID{i}, Addr: transport.Addr(addr)}
	}
	snap := []stream.AppComposition{{
		App: "chain",
		Desired: spec.Request{
			ID:         "chain",
			UnitBytes:  1250,
			Substreams: []spec.Substream{{Services: []string{"filter", "transcode"}, Rate: 10}},
		},
		Graph: &core.ExecutionGraph{
			Request:  spec.Request{ID: "chain"},
			Composer: "mincost",
			Placements: []core.Placement{
				{Substream: 0, Stage: 0, Service: "filter", Host: node(1, "10.0.0.1:4000"), Rate: 10},
				{Substream: 0, Stage: 1, Service: "transcode", Host: node(2, "10.0.0.2:4000"), Rate: 10},
			},
			Edges: []core.Edge{
				{Substream: 0, FromStage: -1, ToStage: 0, From: node(9, "10.0.0.9:4000"), To: node(1, "10.0.0.1:4000"), Rate: 10},
			},
		},
	}}
	srv := httptest.NewServer(CompositionHandler(func() []stream.AppComposition { return snap }))
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("composition = %d", code)
	}
	checkGolden(t, "composition.golden", body)
}

func TestTraceHandler(t *testing.T) {
	b := trace.NewBuffer(64)
	for seq := int64(0); seq < 3; seq++ {
		at := time.Duration(seq) * 100 * time.Millisecond
		b.Append(trace.Event{At: at, Kind: trace.KindEmit, Node: "src", Req: "chain", Stage: -1, Seq: seq})
		b.Append(trace.Event{At: at + 20*time.Millisecond, Kind: trace.KindArrive, Node: "n1", Req: "chain", Stage: 0, Seq: seq})
		b.Append(trace.Event{At: at + 25*time.Millisecond, Kind: trace.KindForward, Node: "n1", Req: "chain", Stage: 0, Seq: seq})
		b.Append(trace.Event{At: at + 40*time.Millisecond, Kind: trace.KindDeliver, Node: "dst", Req: "chain", Stage: 1, Seq: seq})
	}
	srv := httptest.NewServer(TraceHandler(func() *trace.Buffer { return b }))
	defer srv.Close()

	if code, _ := get(t, srv, "/"); code != http.StatusBadRequest {
		t.Fatalf("missing req = %d, want 400", code)
	}

	code, body := get(t, srv, "/?req=chain&substream=0")
	if code != http.StatusOK {
		t.Fatalf("latencies = %d", code)
	}
	var hops []struct {
		Stage int    `json:"stage"`
		Count int    `json:"count"`
		Mean  string `json:"mean"`
	}
	if err := json.Unmarshal([]byte(body), &hops); err != nil {
		t.Fatalf("latencies body %q: %v", body, err)
	}
	if len(hops) != 2 || hops[0].Mean != "20ms" || hops[1].Mean != "15ms" {
		t.Fatalf("hops = %+v", hops)
	}

	code, body = get(t, srv, "/?req=chain&substream=0&seq=1")
	if code != http.StatusOK {
		t.Fatalf("timeline = %d", code)
	}
	for _, want := range []string{"emit", "arrive", "forward", "deliver"} {
		if !strings.Contains(body, want) {
			t.Errorf("timeline missing %q:\n%s", want, body)
		}
	}

	nilSrv := httptest.NewServer(TraceHandler(func() *trace.Buffer { return nil }))
	defer nilSrv.Close()
	if code, _ := get(t, nilSrv, "/?req=chain"); code != http.StatusServiceUnavailable {
		t.Fatalf("nil buffer = %d, want 503", code)
	}
}

func TestTenantsHandler(t *testing.T) {
	// No Clock: admission timestamps stay zero and the body is byte-stable.
	g := tenant.NewGate(tenant.Config{CapacityBps: 1e6, QueueCapacity: 4})
	g.Admit("vault", spec.Critical, 6e5, nil)
	g.Admit("batch", spec.BestEffort, 6e5, nil)
	g.Admit("etl", spec.BestEffort, 8e5, nil) // over budget: queued
	srv := httptest.NewServer(TenantsHandler(func() *tenant.Gate { return g }))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("tenants = %d", code)
	}
	checkGolden(t, "tenants.golden", body)

	_, body = get(t, srv, "/?app=batch")
	var filtered struct {
		Totals  tenant.Totals   `json:"totals"`
		Tenants []tenant.Status `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatalf("filtered body %q: %v", body, err)
	}
	if filtered.Totals.Admitted != 2 || len(filtered.Tenants) != 1 || filtered.Tenants[0].App != "batch" {
		t.Fatalf("filtered = %+v", filtered)
	}

	nilSrv := httptest.NewServer(TenantsHandler(func() *tenant.Gate { return nil }))
	defer nilSrv.Close()
	if code, _ := get(t, nilSrv, "/"); code != http.StatusServiceUnavailable {
		t.Fatalf("tenancy disabled = %d, want 503", code)
	}

	// With a per-host ledger the body grows a hosts section carrying each
	// host's capacity and committed budget.
	lg := tenant.NewGate(tenant.Config{PerHostLedger: true})
	lg.UpsertHost("h2", 4e5)
	lg.UpsertHost("h1", 6e5)
	lg.Admit("vault", spec.Critical, 5e5, nil)
	lg.SetPlacements("vault", map[string]float64{"h1": 5e5})
	ledgerSrv := httptest.NewServer(TenantsHandler(func() *tenant.Gate { return lg }))
	defer ledgerSrv.Close()
	_, body = get(t, ledgerSrv, "/")
	var withHosts struct {
		Hosts []tenant.HostBudget `json:"hosts"`
	}
	if err := json.Unmarshal([]byte(body), &withHosts); err != nil {
		t.Fatalf("ledger body %q: %v", body, err)
	}
	if len(withHosts.Hosts) != 2 || withHosts.Hosts[0].Host != "h1" || withHosts.Hosts[1].Host != "h2" {
		t.Fatalf("hosts = %+v, want h1 then h2", withHosts.Hosts)
	}
	if withHosts.Hosts[0].CommittedBps != 5e5 || withHosts.Hosts[0].CapacityBps != 6e5 {
		t.Fatalf("h1 budget = %+v", withHosts.Hosts[0])
	}
}

func TestClustersHandler(t *testing.T) {
	st := &ClustersStatus{
		Cluster: "c0",
		Local: gossip.ClusterSummary{
			Cluster:        "c0",
			Version:        4,
			At:             30 * time.Second,
			Members:        6,
			AggAvailInBps:  2.4e6,
			AggAvailOutBps: 1.8e6,
			BoundaryBps:    1e8,
			Services:       []string{"encrypt", "filter"},
			Border:         overlay.NodeInfo{ID: overlay.ID{1}, Addr: transport.Addr("10.0.0.1:4000"), Cluster: "c0"},
		},
		Remotes: []gossip.ClusterSummary{{
			Cluster:        "c1",
			Version:        3,
			At:             28 * time.Second,
			Members:        6,
			AggAvailInBps:  3.1e6,
			AggAvailOutBps: 2.2e6,
			BoundaryBps:    1e8,
			Services:       []string{"transcode"},
			Border:         overlay.NodeInfo{ID: overlay.ID{2}, Addr: transport.Addr("10.0.1.1:4000"), Cluster: "c1"},
		}},
		Links: []federation.LinkUsage{
			{Link: "c0|c1", CapacityBps: 1e8, ReservedBps: 2e5, Credits: 2},
		},
		Handoffs: []federation.HandoffRef{{
			App:           "chain",
			Substream:     0,
			RemoteCluster: "c1",
			RemoteAddr:    transport.Addr("10.0.1.1:4000"),
			DebitBps:      1e5,
			LocalCredit:   7,
			RemoteCredit:  3,
		}},
		Stats: federation.Stats{QueriesSent: 2, HandoffsOK: 1, RemoteComposes: 0},
	}
	srv := httptest.NewServer(ClustersHandler(func() *ClustersStatus { return st }))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("clusters = %d", code)
	}
	checkGolden(t, "clusters.golden", body)

	nilSrv := httptest.NewServer(ClustersHandler(func() *ClustersStatus { return nil }))
	defer nilSrv.Close()
	if code, _ := get(t, nilSrv, "/"); code != http.StatusServiceUnavailable {
		t.Fatalf("federation disabled = %d, want 503", code)
	}
}

func TestDataPlaneHandler(t *testing.T) {
	st := stream.DataPlaneStatus{
		Config:         stream.DataPlaneConfig{BatchUnits: 32, FlushInterval: 2 * time.Millisecond, Shards: 4},
		ShardQueueLens: []int{3, 0, 1, 0},
		OpenBatches:    2,
		OpenBatchUnits: 9,
		DropsQueueFull: 4,
		DropsUplink:    1,
		Throughputs: []stream.Throughput{
			{Req: "chain", Substream: 0, EmittedUnits: 100, EmittedBytes: 125000, ForwardedUnits: 95, ForwardedBytes: 118750, DroppedUnits: 5, DroppedBytes: 6250, DeliveredUnits: 95, DeliveredBytes: 118750},
			{Req: "mesh", Substream: 0, ForwardedUnits: 40, ForwardedBytes: 50000},
		},
		SchedPolicyName: "llf",
	}
	srv := httptest.NewServer(DataPlaneHandler(func() stream.DataPlaneStatus { return st }))
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("dataplane = %d", code)
	}
	checkGolden(t, "dataplane.golden", body)

	// The req filter keeps the selected application's throughputs only;
	// the engine-wide posture is unchanged.
	_, body = get(t, srv, "/?req=mesh")
	var filtered stream.DataPlaneStatus
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatalf("filtered body %q: %v", body, err)
	}
	if len(filtered.Throughputs) != 1 || filtered.Throughputs[0].Req != "mesh" {
		t.Fatalf("filtered throughputs = %+v", filtered.Throughputs)
	}
	if filtered.OpenBatches != 2 || filtered.DropsQueueFull != 4 {
		t.Fatalf("filtered posture = %+v", filtered)
	}
}

// TestAdminIntrospectionEndpoints checks a live node serves the decision
// journal, composition dump and the healthz control block out of the box,
// and reports unit tracing as disabled when no buffer was configured.
func TestAdminIntrospectionEndpoints(t *testing.T) {
	nodes := startCluster(t, 1, nil)
	adm, err := nodes[0].ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { adm.Close() })

	code, body := adminGet(t, adm, "/debug/rasc/decisions")
	if code != http.StatusOK {
		t.Fatalf("/debug/rasc/decisions = %d, body %s", code, body)
	}
	var dr struct {
		Total     int64            `json:"total"`
		Decisions []trace.Decision `json:"decisions"`
	}
	if err := json.Unmarshal([]byte(body), &dr); err != nil {
		t.Fatalf("decisions body %q: %v", body, err)
	}
	if dr.Total != 0 || len(dr.Decisions) != 0 {
		t.Fatalf("fresh node journal = %+v", dr)
	}

	if code, _ := adminGet(t, adm, "/debug/rasc/composition"); code != http.StatusOK {
		t.Fatalf("/debug/rasc/composition = %d", code)
	}
	code, body = adminGet(t, adm, "/debug/rasc/dataplane")
	if code != http.StatusOK {
		t.Fatalf("/debug/rasc/dataplane = %d, body %s", code, body)
	}
	var dp stream.DataPlaneStatus
	if err := json.Unmarshal([]byte(body), &dp); err != nil {
		t.Fatalf("dataplane body %q: %v", body, err)
	}
	if dp.Config.BatchUnits != 1 || dp.Config.Shards != 1 || len(dp.ShardQueueLens) != 1 {
		t.Fatalf("fresh node data plane = %+v", dp)
	}
	if code, _ := adminGet(t, adm, "/debug/rasc/trace?req=x"); code != http.StatusServiceUnavailable {
		t.Fatalf("/debug/rasc/trace without buffer = %d, want 503", code)
	}

	_, body = adminGet(t, adm, "/healthz")
	var st healthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if st.Control == nil || st.Control.Decisions != 0 || st.Control.Inflight != 0 {
		t.Fatalf("healthz control block = %+v (body %s)", st.Control, body)
	}
}
