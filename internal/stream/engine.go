package stream

import (
	"encoding/json"
	"math/rand"
	"time"

	"rasc.dev/rasc/internal/clock"
	"rasc.dev/rasc/internal/control"
	"rasc.dev/rasc/internal/core"
	"rasc.dev/rasc/internal/discovery"
	"rasc.dev/rasc/internal/federation"
	"rasc.dev/rasc/internal/monitor"
	"rasc.dev/rasc/internal/overlay"
	"rasc.dev/rasc/internal/sched"
	"rasc.dev/rasc/internal/spec"
	"rasc.dev/rasc/internal/tenant"
	"rasc.dev/rasc/internal/trace"
	"rasc.dev/rasc/internal/transport"
)

// Config parameterizes an Engine.
type Config struct {
	// InBps and OutBps are the node's access link capacities, published
	// in the availability vector.
	InBps, OutBps float64
	// SpeedFactor scales service processing times on this node
	// (1 = reference speed; <1 is slower hardware). Default 1.
	SpeedFactor float64
	// QueueCapacity bounds the scheduler's ready queue (default 128).
	QueueCapacity int
	// Window is the monitoring window size h (default monitor.DefaultWindow).
	Window int
	// SchedPolicy selects the scheduling discipline: "llf" (default),
	// "edf" or "fifo".
	SchedPolicy string
	// ProcJitter is the fractional random variation of processing times
	// (e.g. 0.2 for ±20%). Default 0.
	ProcJitter float64
	// TimelyFactor scales the period into the timeliness slack used by
	// sinks (default 1.0: a unit more than one period late is not
	// timely).
	TimelyFactor float64
	// StatsMaxAge makes the stats RPC serve a cached report refreshed at
	// most this often — an ablation of §3.2's continuous monitoring
	// ("it is essential to use feedback"). 0 serves fresh reports.
	StatsMaxAge time.Duration
	// KeepDelaySamples retains every delivered unit's end-to-end delay
	// in the sink for percentile analysis (costs memory proportional to
	// units delivered).
	KeepDelaySamples bool
	// DataPlane tunes the data-unit path (batching, flush deadline,
	// execution sharding). The zero value keeps the legacy per-unit
	// path, bit-identical to the pre-batching engine.
	DataPlane DataPlaneConfig
}

func (c *Config) defaults() {
	if c.SpeedFactor <= 0 {
		c.SpeedFactor = 1
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = 128
	}
	if c.TimelyFactor <= 0 {
		c.TimelyFactor = 1
	}
	c.DataPlane.normalize()
}

// component is a running instance of a service on this engine.
type component struct {
	key       string
	msg       instantiateMsg
	split     *splitter
	outCredit float64
	flow      *flowCounters
}

// unitTask is the payload carried through the scheduler queue.
type unitTask struct {
	comp *component
	msg  dataMsg
}

// Engine is one node's stream-processing runtime: it hosts components,
// runs the node's ready queue on a single simulated CPU, serves the stats
// and instantiation protocols, and (at the request origin) runs sources
// and sinks.
type Engine struct {
	node *overlay.Node
	clk  clock.Clock
	rng  *rand.Rand
	cfg  Config

	Monitor *monitor.NodeMonitor
	Dir     *discovery.Directory

	// shards are the execution contexts (ready queue + simulated core);
	// legacy single-context mode is exactly one shard. batches holds the
	// open per-destination unit batches of the batched wire path, and
	// flows the per-substream throughput counters behind Throughput().
	shards  []*engineShard
	batches map[transport.Addr]*unitBatch
	flows   map[string]*flowCounters

	comps   map[string]*component
	sinks   map[string]*Sink
	sources map[string]*source

	// origins tracks applications submitted from this engine, for the
	// adaptation plane.
	origins        map[string]*originState
	adaptCancel    func()
	availCancel    func()
	adaptCfg       *AdaptationConfig
	controller     *control.Controller
	recompositions int64
	reallocations  int64

	// journal and tracker record the adaptation decision plane: the
	// tracker observes the controller and writes causal traces into the
	// journal. composeCapture routes full-recompose solver stats from the
	// Submit pipeline back to the decision trace, keyed by request ID.
	journal        *trace.Journal
	tracker        *decisionTracker
	composeCapture map[string]*core.ComposeStats
	// availDown marks origin applications torn down by a full recompose
	// and not yet re-activated: the availability meter charges the whole
	// teardown-to-recompose window as below-threshold time (the app
	// delivers nothing while down), keyed to the last accrual instant.
	availDown map[string]time.Duration

	// tenantGate, when set, fronts the Submit path with admission control
	// and fair-share rate caps; pendingAdmission holds queued or preempted
	// submissions awaiting promotion.
	tenantGate       *tenant.Gate
	pendingAdmission map[string]pendingSubmit

	// statsProvider, when set, answers composition-time stats queries from
	// a locally converged view (the gossip digest store) instead of
	// per-host RPC fetches. Hosts the provider cannot answer for fall back
	// to the RPC path.
	statsProvider func(overlay.ID) (monitor.Report, bool)

	// fed, when set, federates composition: input is scoped to the
	// engine's cluster, substreams the local cluster cannot place are
	// handed across a boundary, and the engine composes fragments on
	// behalf of remote clusters. cluster is the coordinator's cluster
	// name; empty means a flat (non-federated) deployment.
	fed     *federation.Coordinator
	cluster string

	// tracer, when set, records per-unit events.
	tracer *trace.Buffer

	// statsCache serves bounded-age reports when StatsMaxAge is set.
	statsCache   []byte
	statsCacheAt time.Duration

	// Drop counters by cause (diagnostics).
	DropsQueueFull int64
	DropsLaxity    int64
	DropsUplink    int64
	DropsDownlink  int64

	// Catalog supplies service definitions for locally hosted services.
	Catalog map[string]spec.ServiceDef
}

// NewEngine attaches a stream runtime to an overlay node. dir may be nil
// for pure worker nodes that never submit requests.
func NewEngine(node *overlay.Node, clk clock.Clock, dir *discovery.Directory, catalog map[string]spec.ServiceDef, rng *rand.Rand, cfg Config) *Engine {
	cfg.defaults()
	e := &Engine{
		node:           node,
		clk:            clk,
		rng:            rng,
		cfg:            cfg,
		Monitor:        monitor.NewNodeMonitor(cfg.InBps, cfg.OutBps, cfg.Window),
		Dir:            dir,
		shards:         make([]*engineShard, cfg.DataPlane.Shards),
		batches:        make(map[transport.Addr]*unitBatch),
		flows:          make(map[string]*flowCounters),
		comps:          make(map[string]*component),
		sinks:          make(map[string]*Sink),
		sources:        make(map[string]*source),
		origins:        make(map[string]*originState),
		composeCapture: make(map[string]*core.ComposeStats),
		availDown:      make(map[string]time.Duration),
		Catalog:        catalog,
	}
	for i := range e.shards {
		e.shards[i] = &engineShard{queue: sched.NewPolicy(cfg.SchedPolicy, cfg.QueueCapacity)}
	}
	e.Monitor.SetQueueLenFunc(e.queueLen)
	e.Monitor.SetCPU(cfg.SpeedFactor)
	if cfg.DataPlane.Shards > 1 {
		// The busy meter accumulates across all shards; report utilization
		// relative to the shard count so CPUFraction stays in [0,1].
		e.Monitor.SetCPUCount(cfg.DataPlane.Shards)
	}
	node.Register(appData, e.onData)
	node.RegisterDropObserver(appData, e.onDataDropped)
	node.Register(appDataBatch, e.onDataBatch)
	node.RegisterDropObserver(appDataBatch, e.onDataBatchDropped)
	node.RegisterRequest(appInstantiate, e.onInstantiate)
	node.RegisterRequest(appTeardown, e.onTeardown)
	node.RegisterRequest(appStats, e.onStats)
	return e
}

// Node returns the engine's overlay node.
func (e *Engine) Node() *overlay.Node { return e.node }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Components returns the number of live component instances.
func (e *Engine) Components() int { return len(e.comps) }

// ActiveRequests returns the number of requests originated at this engine
// that are still running.
func (e *Engine) ActiveRequests() int { return len(e.origins) }

// ExportTelemetry refreshes the process-wide telemetry registry's monitor
// gauges from the engine's current window state (scrape handlers call this
// just before exposition). It must run on the engine's loop, like every
// other engine method.
func (e *Engine) ExportTelemetry() { e.Monitor.Report(e.clk.Now()) }

// SetTracer attaches an event buffer recording this engine's per-unit
// events (emit/arrive/process/forward/drop/deliver). Pass nil to detach.
func (e *Engine) SetTracer(b *trace.Buffer) { e.tracer = b }

// SetDecisionJournal installs the journal that receives this engine's
// adaptation decision traces. Deployments call it before enabling
// adaptation so every engine writes into one shared journal; without it a
// private journal of trace.DefaultJournalCapacity is created on first use.
// Decisions already in flight keep writing to the journal they started on.
func (e *Engine) SetDecisionJournal(j *trace.Journal) {
	e.journal = j
	if e.tracker != nil {
		e.tracker.journal = j
	}
}

// DecisionJournal returns the engine's decision journal, creating the
// default private one if none was set.
func (e *Engine) DecisionJournal() *trace.Journal {
	if e.journal == nil {
		e.journal = trace.NewJournal(trace.DefaultJournalCapacity)
	}
	return e.journal
}

// ensureTracker returns the engine's decision tracker, building it (and a
// default journal) on first use.
func (e *Engine) ensureTracker() *decisionTracker {
	if e.tracker == nil {
		e.tracker = newDecisionTracker(e.DecisionJournal(), e.clk)
	}
	return e.tracker
}

// traceEvent appends an event when tracing is on.
func (e *Engine) traceEvent(kind trace.Kind, m dataMsg, stage int, note string) {
	if e.tracer == nil {
		return
	}
	e.tracer.Append(trace.Event{
		At:        e.clk.Now(),
		Kind:      kind,
		Node:      string(e.node.Addr()),
		Req:       m.Req,
		Substream: m.Substream,
		Stage:     stage,
		Seq:       m.Seq,
		Note:      note,
	})
}

// SetStatsProvider installs a local source of candidate-host monitoring
// reports — gossip-fresh digests — consulted before the per-host stats RPC
// during composition. Pass nil to restore fetch-only behavior.
func (e *Engine) SetStatsProvider(fn func(overlay.ID) (monitor.Report, bool)) {
	e.statsProvider = fn
}

// Sink returns the sink for a request substream hosted at this engine, or
// nil.
//
// Deprecated: use Throughput, which carries delivered units and bytes in
// one snapshot alongside emissions, forwards and drops. Sink remains for
// callers that need the full latency/jitter detail.
func (e *Engine) Sink(req string, substream int) *Sink {
	return e.sinks[sinkKey(req, substream)]
}

// EmittedUnits returns how many data units the local source for a request
// substream has sent (0 when this engine hosts no such source, including
// after StopRequest removed it).
//
// Deprecated: use Throughput, whose counters survive source teardown.
func (e *Engine) EmittedUnits(req string, substream int) int64 {
	return emittedOf(e.sources[sinkKey(req, substream)])
}

// EmittedBytes returns the total bytes the local source for a request
// substream has sent.
//
// Deprecated: use Throughput, whose counters survive source teardown.
func (e *Engine) EmittedBytes(req string, substream int) int64 {
	if s := e.sources[sinkKey(req, substream)]; s != nil {
		return s.EmittedBytes
	}
	return 0
}

func sinkKey(req string, substream int) string { return req + "/" + itoa(substream) }

// onStats serves the monitoring report to composing nodes, optionally from
// a bounded-age cache (the stale-statistics ablation).
func (e *Engine) onStats(_ overlay.NodeInfo, _ []byte, respond func([]byte, string)) {
	now := e.clk.Now()
	if e.cfg.StatsMaxAge > 0 && e.statsCache != nil && now-e.statsCacheAt < e.cfg.StatsMaxAge {
		respond(e.statsCache, "")
		return
	}
	rep := e.Monitor.Report(now)
	b, err := json.Marshal(rep)
	if err != nil {
		respond(nil, "stream: marshal stats: "+err.Error())
		return
	}
	if e.cfg.StatsMaxAge > 0 {
		e.statsCache = b
		e.statsCacheAt = now
	}
	respond(b, "")
}

// onInstantiate creates one component instance.
func (e *Engine) onInstantiate(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m instantiateMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "stream: bad instantiate: "+err.Error())
		return
	}
	key := componentKey(m.Req, m.Substream, m.Stage)
	e.comps[key] = &component{
		key:   key,
		msg:   m,
		split: newSplitter(m.Outs),
		flow:  e.flowFor(m.Req, m.Substream),
	}
	respond([]byte("ok"), "")
}

// onTeardown removes a request's components and stops its sources.
func (e *Engine) onTeardown(_ overlay.NodeInfo, body []byte, respond func([]byte, string)) {
	var m teardownMsg
	if err := json.Unmarshal(body, &m); err != nil {
		respond(nil, "stream: bad teardown: "+err.Error())
		return
	}
	e.StopRequest(m.Req)
	respond([]byte("ok"), "")
}

// StopRequest stops local sources and removes local components of req.
// Sinks (and flow counters) are kept so their statistics remain readable.
func (e *Engine) StopRequest(req string) {
	e.StopSources(req)
	for key, c := range e.comps {
		if c.msg.Req == req {
			delete(e.comps, key)
		}
	}
	delete(e.origins, req)
}

// StopSources halts this engine's sources for req without tearing down its
// components or sinks, letting in-flight units drain — the conservation
// tests use it to quiesce a composition before auditing unit counts. Open
// batches are flushed so no unit lingers past its flush deadline.
func (e *Engine) StopSources(req string) {
	for key, src := range e.sources {
		if src.req == req {
			src.stopped = true
			delete(e.sources, key)
		}
	}
	e.flushAll()
}

// onDataDropped records a data unit lost at this node's downlink
// (receive-buffer overflow). The drop is attributed to the component the
// unit was addressed to, feeding the drop-ratio statistic exactly like a
// queue or deadline drop.
func (e *Engine) onDataDropped(_ overlay.ID, _ overlay.NodeInfo, body []byte) {
	var m dataMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return
	}
	e.dropArrival(m)
}

// dropArrival is the shared downlink-drop accounting for legacy and
// batched arrivals.
func (e *Engine) dropArrival(m dataMsg) {
	e.DropsDownlink++
	telDropDownlink.Inc()
	e.traceEvent(trace.KindDrop, m, m.Stage, "downlink")
	if s, ok := e.sinks[sinkKey(m.Req, m.Substream)]; ok && m.Stage == s.Stages {
		e.Monitor.ObserveDrop("sink:"+sinkKey(m.Req, m.Substream), "sink")
		f := e.flowFor(m.Req, m.Substream)
		f.droppedUnits++
		f.droppedBytes += int64(m.Size)
		return
	}
	key := componentKey(m.Req, m.Substream, m.Stage)
	if c, ok := e.comps[key]; ok {
		e.Monitor.ObserveDrop(key, c.msg.Service)
		c.flow.droppedUnits++
		c.flow.droppedBytes += int64(m.Size)
	}
}

// onData handles an arriving data unit: sink delivery or enqueue for a
// local component.
func (e *Engine) onData(_ overlay.ID, _ overlay.NodeInfo, body []byte) {
	var m dataMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return
	}
	e.handleUnit(m)
}

// handleUnit is the shared arrival path for legacy and batched units:
// sink delivery, or a pooled enqueue onto the unit's shard.
func (e *Engine) handleUnit(m dataMsg) {
	now := e.clk.Now()
	if s, ok := e.sinks[sinkKey(m.Req, m.Substream)]; ok && m.Stage == s.Stages {
		e.Monitor.ObserveArrival("sink:"+sinkKey(m.Req, m.Substream), "sink", now, m.Size)
		telDelivered.Inc()
		telDeliveryDelay.ObserveDuration(now - m.Created)
		e.traceEvent(trace.KindDeliver, m, m.Stage, "")
		s.observe(m, now)
		return
	}
	key := componentKey(m.Req, m.Substream, m.Stage)
	c, ok := e.comps[key]
	if !ok {
		return // stale unit for a torn-down component
	}
	e.Monitor.ObserveArrival(key, c.msg.Service, now, m.Size)
	e.traceEvent(trace.KindArrive, m, m.Stage, c.msg.Service)
	period := time.Duration(float64(time.Second) / c.msg.Rate)
	exec := e.Monitor.MeanProc(key)
	if exec == 0 {
		exec = e.scaledProc(c)
	}
	u, task := getUnit()
	u.ComponentKey = key
	u.Deadline = now + period
	u.ExecTime = exec
	u.Enqueued = now
	task.comp = c
	task.msg = m
	sh := e.shardFor(m.Req, m.Substream)
	if !sh.queue.Push(u) {
		e.DropsQueueFull++
		telDropQueueFull.Inc()
		e.traceEvent(trace.KindDrop, m, m.Stage, "queue-full")
		e.Monitor.ObserveDrop(key, c.msg.Service) // queue overflow
		c.flow.droppedUnits++
		c.flow.droppedBytes += int64(m.Size)
		putUnit(u)
		return
	}
	e.kick(sh)
}

// scaledProc returns the component's reference processing time adjusted
// for this node's speed.
func (e *Engine) scaledProc(c *component) time.Duration {
	return time.Duration(float64(c.msg.ProcHint) / e.cfg.SpeedFactor)
}

// kick runs one shard's CPU loop: if the shard is idle, drain up to
// BatchUnits ready units (dropping ones whose laxity went negative) and
// simulate their combined processing time in one timer span. With
// BatchUnits=1 this schedules exactly one unit per span — the legacy
// behavior, event for event.
func (e *Engine) kick(sh *engineShard) {
	if sh.busy {
		return
	}
	maxRun := 1
	if e.cfg.DataPlane.batching() {
		maxRun = e.cfg.DataPlane.BatchUnits
	}
	sh.runs = sched.DrainN(sh.queue, e.clk.Now(), maxRun, sh.runs[:0], func(d *sched.Unit) {
		task := d.Payload.(*unitTask)
		e.DropsLaxity++
		telDropLaxity.Inc()
		e.traceEvent(trace.KindDrop, task.msg, task.msg.Stage, "laxity")
		e.Monitor.ObserveDrop(d.ComponentKey, task.comp.msg.Service)
		task.comp.flow.droppedUnits++
		task.comp.flow.droppedBytes += int64(task.msg.Size)
		putUnit(d)
	})
	if len(sh.runs) == 0 {
		return
	}
	sh.procs = sh.procs[:0]
	var total time.Duration
	for _, u := range sh.runs {
		task := u.Payload.(*unitTask)
		proc := e.scaledProc(task.comp)
		if e.cfg.ProcJitter > 0 {
			f := 1 + e.cfg.ProcJitter*(2*e.rng.Float64()-1)
			proc = time.Duration(float64(proc) * f)
		}
		if proc <= 0 {
			proc = time.Microsecond
		}
		total += proc
		sh.procs = append(sh.procs, proc)
	}
	sh.busy = true
	e.clk.After(total, func() {
		// busy stays set until the drain scratch is fully consumed so a
		// re-entrant kick cannot clobber sh.runs mid-iteration.
		now := e.clk.Now()
		for i, u := range sh.runs {
			task := u.Payload.(*unitTask)
			telProcessed.Inc()
			e.Monitor.ObserveProcessed(u.ComponentKey, task.comp.msg.Service, sh.procs[i])
			e.Monitor.ObserveBusy(now, sh.procs[i])
			e.traceEvent(trace.KindProcess, task.msg, task.msg.Stage, task.comp.msg.Service)
			e.forward(task.comp, task.msg)
			putUnit(u)
		}
		sh.busy = false
		e.kick(sh)
	})
}

// forward produces the component's output units and sends them downstream
// according to the composed rate split. The rate ratio accumulates as a
// credit so non-unit ratios emit the right long-run rate.
func (e *Engine) forward(c *component, in dataMsg) {
	ratio := c.msg.RateRatio
	if ratio <= 0 {
		ratio = 1
	}
	c.outCredit += ratio
	const epsilon = 1e-9
	for c.outCredit >= 1-epsilon {
		c.outCredit--
		out := c.split.next()
		if out == nil {
			return
		}
		size := c.msg.BytesOut
		if size <= 0 {
			size = in.Size
		}
		pu := pendingUnit{
			msg: dataMsg{
				Req:       in.Req,
				Substream: in.Substream,
				Stage:     out.ToStage,
				Seq:       in.Seq,
				Created:   in.Created,
				Size:      size,
			},
			fromStage: in.Stage,
			key:       c.key,
			service:   c.msg.Service,
			flow:      c.flow,
		}
		if e.cfg.DataPlane.batching() {
			e.batchUnit(out.To, pu)
		} else {
			e.settleUnit(&pu, e.sendUnit(out.To, pu.msg))
		}
	}
}

// sendUnit transmits one data unit, padding the wire message to the unit's
// simulated size. It returns an error when the unit was dropped locally.
func (e *Engine) sendUnit(to overlay.NodeInfo, m dataMsg) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	pad := m.Size - len(body)
	if pad < 0 {
		pad = 0
	}
	if err := e.node.DirectPadded(to.Addr, appData, body, pad); err != nil {
		return err
	}
	// Charge the send meter only after the transport accepted the unit:
	// units refused at the uplink never consumed send capacity, and
	// counting them skewed OutBpsUsed upward exactly when the link was
	// congested.
	e.Monitor.ObserveSend(e.clk.Now(), m.Size)
	return nil
}
